package hash

import (
	"testing"
	"testing/quick"

	"repro/internal/pkt"
)

// allAggregates enumerates the ten aggregates of Table 3.1.
func allAggregates() []pkt.Aggregate {
	out := make([]pkt.Aggregate, pkt.NumAggregates)
	for a := range out {
		out[a] = pkt.Aggregate(a)
	}
	return out
}

// checkAggEquivalence asserts that the field-wise fast path produces
// exactly the hash of the serialized key for every aggregate — the
// oracle that guards the zero-allocation extraction refactor.
func checkAggEquivalence(t *testing.T, h *H3, p *pkt.Packet) {
	t.Helper()
	var buf []byte
	for _, a := range allAggregates() {
		buf = p.AppendAggKey(buf[:0], a)
		want := h.Hash(buf)
		if got := h.HashAgg(p, a); got != want {
			t.Fatalf("aggregate %v, packet %+v: HashAgg = %#x, byte-path Hash = %#x", a, *p, got, want)
		}
	}
}

func TestHashAggMatchesBytePath(t *testing.T) {
	// Property test over random packets and random H3 functions, across
	// all ten aggregates.
	seed := uint64(0)
	f := func(srcIP, dstIP uint32, srcPort, dstPort uint16, proto uint8) bool {
		seed++
		h := NewH3(seed)
		p := pkt.Packet{SrcIP: srcIP, DstIP: dstIP, SrcPort: srcPort, DstPort: dstPort, Proto: proto}
		var buf []byte
		for _, a := range allAggregates() {
			buf = p.AppendAggKey(buf[:0], a)
			if h.HashAgg(&p, a) != h.Hash(buf) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHashAggEdgeValues(t *testing.T) {
	// Boundary field values exercise every byte lane of the tables.
	h := NewH3(42)
	values32 := []uint32{0, 1, 0xff, 0xff00, 0xff0000, 0xff000000, 0xffffffff, 0x01020304}
	values16 := []uint16{0, 1, 0xff, 0xff00, 0xffff, 0x0102}
	values8 := []uint8{0, 1, 6, 17, 0xff}
	for _, s := range values32 {
		for _, d := range values32 {
			p := pkt.Packet{SrcIP: s, DstIP: d, SrcPort: values16[s%6], DstPort: values16[d%6], Proto: values8[(s+d)%5]}
			checkAggEquivalence(t, h, &p)
		}
	}
}

func TestHashAggPanicsOnUnknownAggregate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewH3(1).HashAgg(&pkt.Packet{}, pkt.Aggregate(42))
}

// FuzzHashAggEquivalence fuzzes the same bit-identity: for any packet
// header and any H3 seed, the field-wise path must equal the
// serialize-then-hash path on all ten aggregates.
func FuzzHashAggEquivalence(f *testing.F) {
	f.Add(uint64(1), uint32(0x0a000001), uint32(0xc0a80101), uint16(443), uint16(51234), uint8(6))
	f.Add(uint64(2), uint32(0), uint32(0), uint16(0), uint16(0), uint8(0))
	f.Add(uint64(3), uint32(0xffffffff), uint32(0xffffffff), uint16(0xffff), uint16(0xffff), uint8(0xff))
	f.Fuzz(func(t *testing.T, seed uint64, srcIP, dstIP uint32, srcPort, dstPort uint16, proto uint8) {
		h := NewH3(seed)
		p := pkt.Packet{SrcIP: srcIP, DstIP: dstIP, SrcPort: srcPort, DstPort: dstPort, Proto: proto}
		var buf []byte
		for _, a := range allAggregates() {
			buf = p.AppendAggKey(buf[:0], a)
			if got, want := h.HashAgg(&p, a), h.Hash(buf); got != want {
				t.Fatalf("aggregate %v: HashAgg = %#x, byte-path Hash = %#x", a, got, want)
			}
		}
	})
}

func BenchmarkHashAggFieldWise(b *testing.B) {
	h := NewH3(1)
	p := pkt.Packet{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 443, DstPort: 51234, Proto: 6}
	b.ReportAllocs()
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= h.HashAgg(&p, pkt.Agg5Tuple)
	}
	_ = acc
}

func BenchmarkHashAggBytePath(b *testing.B) {
	h := NewH3(1)
	p := pkt.Packet{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 443, DstPort: 51234, Proto: 6}
	buf := make([]byte, 0, 16)
	b.ReportAllocs()
	var acc uint64
	for i := 0; i < b.N; i++ {
		buf = p.AppendAggKey(buf[:0], pkt.Agg5Tuple)
		acc ^= h.Hash(buf)
	}
	_ = acc
}
