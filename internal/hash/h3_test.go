package hash

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func key(i uint64) []byte {
	k := make([]byte, KeySize)
	binary.BigEndian.PutUint64(k, i)
	return k
}

func TestH3Deterministic(t *testing.T) {
	a := NewH3(7)
	b := NewH3(7)
	for i := uint64(0); i < 100; i++ {
		if a.Hash(key(i)) != b.Hash(key(i)) {
			t.Fatalf("same seed produced different hashes for key %d", i)
		}
	}
}

func TestH3SeedsDiffer(t *testing.T) {
	a := NewH3(1)
	b := NewH3(2)
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if a.Hash(key(i)) == b.Hash(key(i)) {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("independent functions collided on %d/1000 keys", same)
	}
}

func TestH3ZeroKeyHashesToZero(t *testing.T) {
	// H3 is linear over GF(2): the all-zero key always maps to 0. This
	// is a structural property of the family, not a defect.
	h := NewH3(99)
	if got := h.Hash(make([]byte, KeySize)); got != 0 {
		t.Fatalf("zero key hashed to %#x, want 0", got)
	}
}

func TestH3Linearity(t *testing.T) {
	// H3 over GF(2) satisfies h(a XOR b) = h(a) XOR h(b).
	h := NewH3(5)
	f := func(a, b [KeySize]byte) bool {
		var x [KeySize]byte
		for i := range x {
			x[i] = a[i] ^ b[i]
		}
		return h.Hash(x[:]) == h.Hash(a[:])^h.Hash(b[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestH3UnitRange(t *testing.T) {
	h := NewH3(3)
	f := func(k [KeySize]byte) bool {
		u := h.Unit(k[:])
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestH3UnitUniformity(t *testing.T) {
	// Chi-square-ish check: bucket 100k sequential keys into 16 bins;
	// each bin should get close to 1/16.
	h := NewH3(11)
	const n = 100000
	var bins [16]int
	for i := uint64(0); i < n; i++ {
		bins[int(h.Unit(key(i))*16)]++
	}
	want := float64(n) / 16
	for i, c := range bins {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bin %d has %d entries, want %.0f +/- 10%%", i, c, want)
		}
	}
}

func TestH3ShortAndLongKeys(t *testing.T) {
	h := NewH3(13)
	short := []byte{1, 2, 3}
	if h.Hash(short) == 0 {
		t.Error("short key unexpectedly hashed to 0")
	}
	long := make([]byte, KeySize+5)
	long[0] = 1
	trunc := make([]byte, KeySize)
	trunc[0] = 1
	if h.Hash(long) != h.Hash(trunc) {
		t.Error("long key not truncated to KeySize")
	}
}

func TestH3AvalancheOnSingleBit(t *testing.T) {
	// Flipping one input bit should flip ~half the output bits on
	// average across many keys.
	h := NewH3(17)
	total := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		k := key(uint64(i) * 2654435761)
		h1 := h.Hash(k)
		k[i%KeySize] ^= 1 << uint(i%8)
		h2 := h.Hash(k)
		d := h1 ^ h2
		for ; d != 0; d &= d - 1 {
			total++
		}
	}
	avg := float64(total) / trials
	if avg < 24 || avg > 40 {
		t.Fatalf("average flipped output bits = %.1f, want near 32", avg)
	}
}

func TestXorShiftDeterminism(t *testing.T) {
	a := NewXorShift(123)
	b := NewXorShift(123)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestXorShiftZeroSeed(t *testing.T) {
	x := NewXorShift(0)
	if x.Uint64() == 0 && x.Uint64() == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}

func TestXorShiftFloat64Range(t *testing.T) {
	x := NewXorShift(42)
	for i := 0; i < 10000; i++ {
		v := x.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestXorShiftIntn(t *testing.T) {
	x := NewXorShift(42)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := x.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestXorShiftIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewXorShift(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	x := NewXorShift(7)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := x.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestParetoTail(t *testing.T) {
	x := NewXorShift(9)
	const n = 100000
	xm, alpha := 1.0, 1.5
	below := 0
	for i := 0; i < n; i++ {
		v := x.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto below scale: %v", v)
		}
		// P(X <= 2) = 1 - (xm/2)^alpha ~ 0.6464 for alpha=1.5.
		if v <= 2 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.6464) > 0.01 {
		t.Errorf("P(X<=2) = %v, want ~0.6464", frac)
	}
}

func TestExpMean(t *testing.T) {
	x := NewXorShift(31)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += x.Exp(2)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want 0.5", mean)
	}
}

func BenchmarkH3Hash(b *testing.B) {
	h := NewH3(1)
	k := key(123456789)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Hash(k)
	}
}
