package hash

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/pkt"
)

// TestAggHashesConcurrentReaders pins the read-only concurrency
// contract documented on H3: many goroutines bulk-hashing disjoint
// slices of the same packet run through one shared H3 must reproduce
// the sequential AggHashes output exactly. This is the property the
// chunk-parallel sketch stage leans on when it shares an extractor's
// H3 functions across workers. Run under -race in CI.
func TestAggHashesConcurrentReaders(t *testing.T) {
	const n = 4096
	pkts := make([]pkt.Packet, n)
	rng := NewXorShift(77)
	for i := range pkts {
		pkts[i] = pkt.Packet{
			SrcIP:   uint32(rng.Uint64()),
			DstIP:   uint32(rng.Uint64()),
			SrcPort: uint16(rng.Uint64()),
			DstPort: uint16(rng.Uint64()),
			Proto:   uint8(rng.Uint64()),
		}
	}
	for a := 0; a < pkt.NumAggregates; a++ {
		h := NewH3(uint64(a) + 1)
		want := h.AggHashes(nil, pkts, pkt.Aggregate(a))

		const workers = 8
		chunk := (n + workers - 1) / workers
		out := make([][]uint64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lo := min(w*chunk, n)
				hi := min(lo+chunk, n)
				out[w] = h.AggHashes(nil, pkts[lo:hi], pkt.Aggregate(a))
			}(w)
		}
		wg.Wait()

		var got []uint64
		for _, part := range out {
			got = append(got, part...)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("aggregate %d: concurrent chunked AggHashes diverged from sequential", a)
		}
	}
}
