// Package hash implements the H3 family of universal hash functions used
// by the Flowwise flow-sampling mechanism (thesis §4.2, [27]) and the
// multi-resolution bitmap counters.
//
// An H3 function over b-bit keys is defined by a random b×w bit matrix Q;
// the hash of key x is the XOR of the rows of Q selected by the 1-bits of
// x. The implementation precomputes, for every byte position and byte
// value, the XOR of the corresponding eight rows, so hashing a key costs
// one table lookup and one XOR per key byte — a deterministic worst case,
// which is the property the load shedding system relies on.
package hash

import (
	"math"

	"repro/internal/pkt"
)

// KeySize is the number of bytes in a canonical 5-tuple flow key:
// source IP (4), destination IP (4), source port (2), destination
// port (2) and protocol (1).
const KeySize = 13

// H3 is a member of the H3 universal hash family over KeySize-byte keys
// producing 64-bit values. The zero value is unusable; construct with
// NewH3.
//
// An H3 value is immutable between Reseed calls: Hash, HashAgg and
// AggHashes only read the lookup table, so any number of goroutines may
// hash through the same H3 concurrently (into distinct dst buffers for
// AggHashes). This read-only contract is what lets the engine's
// chunk-parallel front stage share one extractor's H3 functions across
// sketch workers. Reseed is the single mutator and must not run
// concurrently with hashing.
type H3 struct {
	table [KeySize][256]uint64
}

// NewH3 draws a random H3 function using the given seed. Two H3 values
// built from the same seed are identical; different seeds yield
// independent functions with overwhelming probability.
func NewH3(seed uint64) *H3 {
	h := &H3{}
	h.Reseed(seed)
	return h
}

// Reseed redraws the function in place from seed: afterwards h is
// indistinguishable from NewH3(seed). Callers that redraw every
// measurement interval (the flow sampler, per §4.2) reseed instead of
// reallocating the 26 KB lookup table each time.
func (h *H3) Reseed(seed uint64) {
	rng := NewXorShift(seed)
	// Draw the 8 rows of Q covering each byte position, then fold them
	// into the 256-entry lookup table for that position.
	for pos := 0; pos < KeySize; pos++ {
		var rows [8]uint64
		for bit := range rows {
			rows[bit] = rng.Uint64()
		}
		for v := 0; v < 256; v++ {
			var acc uint64
			for bit := 0; bit < 8; bit++ {
				if v&(1<<uint(bit)) != 0 {
					acc ^= rows[bit]
				}
			}
			h.table[pos][v] = acc
		}
	}
}

// Hash returns the 64-bit H3 hash of a KeySize-byte key. Keys shorter
// than KeySize are hashed over their length; longer keys are truncated.
func (h *H3) Hash(key []byte) uint64 {
	n := len(key)
	if n > KeySize {
		n = KeySize
	}
	var acc uint64
	for i := 0; i < n; i++ {
		acc ^= h.table[i][key[i]]
	}
	return acc
}

// Unit maps a key to the half-open unit interval [0, 1), the form used
// for sampling decisions: a packet is selected when Unit(key) < rate.
func (h *H3) Unit(key []byte) float64 {
	return float64(h.Hash(key)>>11) / float64(1<<53)
}

// Uint32 returns the high 32 bits of the hash, convenient for indexing
// bitmap buckets.
func (h *H3) Uint32(key []byte) uint32 {
	return uint32(h.Hash(key) >> 32)
}

// HashAgg returns the H3 hash of packet p's key for aggregate a,
// bit-identical to Hash(p.AppendAggKey(nil, a)) — XORing the
// per-(position,byte) tables of the key's fixed layout directly from
// the header fields, with no serialization buffer in between. This is
// the per-packet fast path of feature extraction (§3.2.1: one hash and
// one bitmap write per aggregate); the byte-slice Hash stays as the
// equivalence oracle.
func (h *H3) HashAgg(p *pkt.Packet, a pkt.Aggregate) uint64 {
	switch a {
	case pkt.AggSrcIP:
		return h.u32(0, p.SrcIP)
	case pkt.AggDstIP:
		return h.u32(0, p.DstIP)
	case pkt.AggProto:
		return h.table[0][p.Proto]
	case pkt.AggSrcDstIP:
		return h.u32(0, p.SrcIP) ^ h.u32(4, p.DstIP)
	case pkt.AggSrcPortProto:
		return h.u16(0, p.SrcPort) ^ h.table[2][p.Proto]
	case pkt.AggDstPortProto:
		return h.u16(0, p.DstPort) ^ h.table[2][p.Proto]
	case pkt.AggSrcIPSrcPortProto:
		return h.u32(0, p.SrcIP) ^ h.u16(4, p.SrcPort) ^ h.table[6][p.Proto]
	case pkt.AggDstIPDstPortProto:
		return h.u32(0, p.DstIP) ^ h.u16(4, p.DstPort) ^ h.table[6][p.Proto]
	case pkt.AggSrcDstPortProto:
		return h.u16(0, p.SrcPort) ^ h.u16(2, p.DstPort) ^ h.table[4][p.Proto]
	case pkt.Agg5Tuple:
		return h.u32(0, p.SrcIP) ^ h.u32(4, p.DstIP) ^
			h.u16(8, p.SrcPort) ^ h.u16(10, p.DstPort) ^ h.table[12][p.Proto]
	default:
		panic("hash: unknown aggregate")
	}
}

// AggHashes fills dst (grown if needed, overwritten, returned) with the
// Mix64-finalized H3 hash of every packet's aggregate-a key:
// dst[i] = Mix64(HashAgg(&pkts[i], a)). This is the bulk form the
// feature extractor's hot loop uses: the aggregate switch is resolved
// once per batch instead of once per packet, and each case body is a
// tight loop of table lookups and XORs that streams the packet slice
// through a single cache-resident lookup table.
func (h *H3) AggHashes(dst []uint64, pkts []pkt.Packet, a pkt.Aggregate) []uint64 {
	if cap(dst) < len(pkts) {
		dst = make([]uint64, len(pkts))
	}
	dst = dst[:len(pkts)]
	switch a {
	case pkt.AggSrcIP:
		for i := range pkts {
			dst[i] = Mix64(h.u32(0, pkts[i].SrcIP))
		}
	case pkt.AggDstIP:
		for i := range pkts {
			dst[i] = Mix64(h.u32(0, pkts[i].DstIP))
		}
	case pkt.AggProto:
		for i := range pkts {
			dst[i] = Mix64(h.table[0][pkts[i].Proto])
		}
	case pkt.AggSrcDstIP:
		for i := range pkts {
			dst[i] = Mix64(h.u32(0, pkts[i].SrcIP) ^ h.u32(4, pkts[i].DstIP))
		}
	case pkt.AggSrcPortProto:
		for i := range pkts {
			dst[i] = Mix64(h.u16(0, pkts[i].SrcPort) ^ h.table[2][pkts[i].Proto])
		}
	case pkt.AggDstPortProto:
		for i := range pkts {
			dst[i] = Mix64(h.u16(0, pkts[i].DstPort) ^ h.table[2][pkts[i].Proto])
		}
	case pkt.AggSrcIPSrcPortProto:
		for i := range pkts {
			dst[i] = Mix64(h.u32(0, pkts[i].SrcIP) ^ h.u16(4, pkts[i].SrcPort) ^ h.table[6][pkts[i].Proto])
		}
	case pkt.AggDstIPDstPortProto:
		for i := range pkts {
			dst[i] = Mix64(h.u32(0, pkts[i].DstIP) ^ h.u16(4, pkts[i].DstPort) ^ h.table[6][pkts[i].Proto])
		}
	case pkt.AggSrcDstPortProto:
		for i := range pkts {
			dst[i] = Mix64(h.u16(0, pkts[i].SrcPort) ^ h.u16(2, pkts[i].DstPort) ^ h.table[4][pkts[i].Proto])
		}
	case pkt.Agg5Tuple:
		for i := range pkts {
			p := &pkts[i]
			dst[i] = Mix64(h.u32(0, p.SrcIP) ^ h.u32(4, p.DstIP) ^
				h.u16(8, p.SrcPort) ^ h.u16(10, p.DstPort) ^ h.table[12][p.Proto])
		}
	default:
		panic("hash: unknown aggregate")
	}
	return dst
}

// u32 hashes a big-endian 32-bit field whose serialization starts at
// key byte pos.
func (h *H3) u32(pos int, v uint32) uint64 {
	return h.table[pos][byte(v>>24)] ^ h.table[pos+1][byte(v>>16)] ^
		h.table[pos+2][byte(v>>8)] ^ h.table[pos+3][byte(v)]
}

// u16 hashes a big-endian 16-bit field whose serialization starts at
// key byte pos.
func (h *H3) u16(pos int, v uint16) uint64 {
	return h.table[pos][byte(v>>8)] ^ h.table[pos+1][byte(v)]
}

// Mix64 applies the splitmix64 finalizer to x. H3 is linear over GF(2),
// so key sets that form a dense linear subspace (sequential integers,
// say) map to hash sets with too-regular bit patterns, which biases
// bitmap-based distinct counting. Passing H3 output through Mix64 breaks
// that linearity; the counting path always does.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// XorShift is a xorshift64* pseudo-random generator. It is tiny, fast,
// allocation free and fully deterministic per seed, which is all the
// monitoring pipeline needs (math/rand would work too, but a local
// generator keeps hot paths free of interface indirection).
type XorShift struct {
	state uint64
}

// NewXorShift returns a generator seeded with seed (0 is remapped so the
// state never sticks at the xorshift fixed point).
func NewXorShift(seed uint64) *XorShift {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &XorShift{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (x *XorShift) Uint64() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545f4914f6cdd1d
}

// Int63 returns a non-negative pseudo-random 63-bit integer. Together
// with Seed and Uint64 it lets XorShift serve as a math/rand.Source64,
// so stdlib samplers (e.g. rand.Zipf) can draw from it.
func (x *XorShift) Int63() int64 {
	return int64(x.Uint64() >> 1)
}

// Seed resets the generator state, satisfying math/rand.Source.
func (x *XorShift) Seed(seed int64) {
	if seed == 0 {
		x.state = 0x9e3779b97f4a7c15
		return
	}
	x.state = uint64(seed)
}

// State returns the raw generator state, so a checkpoint can capture
// the stream position exactly (see SetState).
func (x *XorShift) State() uint64 { return x.state }

// SetState restores a state previously returned by State: the generator
// then continues the identical draw sequence. A zero state is remapped
// the same way NewXorShift remaps a zero seed, so a restored generator
// can never stick at the xorshift fixed point.
func (x *XorShift) SetState(s uint64) {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	x.state = s
}

// Float64 returns a uniform value in [0, 1).
func (x *XorShift) Float64() float64 {
	return float64(x.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *XorShift) Intn(n int) int {
	if n <= 0 {
		panic("hash: Intn with non-positive bound")
	}
	return int(x.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate via the Box-Muller
// transform. Used to add measurement noise to the simulated cycle
// counter.
func (x *XorShift) NormFloat64() float64 {
	// Box-Muller needs u1 in (0,1]; keep drawing until non-zero.
	u1 := x.Float64()
	for u1 == 0 {
		u1 = x.Float64()
	}
	u2 := x.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Pareto returns a Pareto-distributed variate with scale xm > 0 and
// shape alpha > 0, used for heavy-tailed flow sizes in the traffic
// generator.
func (x *XorShift) Pareto(xm, alpha float64) float64 {
	u := x.Float64()
	for u == 0 {
		u = x.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Exp returns an exponentially distributed variate with the given rate.
func (x *XorShift) Exp(rate float64) float64 {
	u := x.Float64()
	for u == 0 {
		u = x.Float64()
	}
	return -math.Log(u) / rate
}
