package game

import (
	"math"
	"testing"

	"repro/internal/sched"
)

func symmetricPlayers(n int, capacity float64) []Player {
	ps := make([]Player, n)
	for i := range ps {
		ps[i] = Player{Name: string(rune('a' + i)), Demand: capacity, Claim: capacity / float64(n)}
	}
	return ps
}

func strategies() []sched.Strategy {
	return []sched.Strategy{sched.MMFSCPU{}, sched.MMFSPkt{}}
}

func TestFairShareIsEquilibrium(t *testing.T) {
	// Theorem 5.1: all players claiming C/|Q| is a Nash equilibrium.
	const capacity = 900.0
	for _, strat := range strategies() {
		ps := symmetricPlayers(3, capacity)
		if !IsEquilibrium(ps, capacity, strat, 90) {
			t.Errorf("%s: C/|Q| profile is not an equilibrium", strat.Name())
		}
	}
}

func TestOverclaimingGetsDisabled(t *testing.T) {
	// Proof case 1: a player claiming more than C/|Q| while others hold
	// the equilibrium gets payoff 0 (it has the largest minimum demand
	// and is disabled first).
	const capacity = 900.0
	for _, strat := range strategies() {
		ps := symmetricPlayers(3, capacity)
		ps[0].Claim = capacity/3 + 50
		u := Payoffs(ps, capacity, strat)
		if u[0] != 0 {
			t.Errorf("%s: over-claimer payoff = %v, want 0", strat.Name(), u[0])
		}
	}
}

func TestUnderclaimingNeverGains(t *testing.T) {
	// Proof case 2: claiming less than C/|Q| cannot beat the fair share.
	const capacity = 900.0
	for _, strat := range strategies() {
		ps := symmetricPlayers(3, capacity)
		fair := Payoffs(ps, capacity, strat)[0]
		for _, claim := range []float64{0, 50, 150, 250} {
			ps[0].Claim = claim
			if u := Payoffs(ps, capacity, strat)[0]; u > fair+1e-9 {
				t.Errorf("%s: under-claim %v earned %v > fair %v", strat.Name(), claim, u, fair)
			}
		}
	}
}

func TestUnderProvisionedProfileNotEquilibrium(t *testing.T) {
	// Σa < C leaves spare cycles: some player wants to claim more, so
	// the profile is not an equilibrium (proof case 2 of uniqueness).
	const capacity = 900.0
	for _, strat := range strategies() {
		ps := symmetricPlayers(3, capacity)
		for i := range ps {
			ps[i].Claim = 100 // sum 300 < 900
		}
		if IsEquilibrium(ps, capacity, strat, 90) {
			t.Errorf("%s: under-provisioned profile wrongly an equilibrium", strat.Name())
		}
	}
}

func TestPayoffsRespectCapacity(t *testing.T) {
	const capacity = 500.0
	for _, strat := range strategies() {
		ps := symmetricPlayers(4, capacity)
		u := Payoffs(ps, capacity, strat)
		var sum float64
		for _, v := range u {
			sum += v
		}
		if sum > capacity*(1+1e-9) {
			t.Errorf("%s: payoffs %v exceed capacity", strat.Name(), sum)
		}
	}
}

func TestBestResponseFindsFairShare(t *testing.T) {
	const capacity = 900.0
	for _, strat := range strategies() {
		ps := symmetricPlayers(3, capacity)
		_, best := BestResponse(ps, 0, capacity, strat, 90)
		fair := capacity / 3
		if math.Abs(best-fair) > fair*0.02 {
			t.Errorf("%s: best-response payoff %v, want ~%v", strat.Name(), best, fair)
		}
	}
}

func TestAccuracyModels(t *testing.T) {
	if LightAccuracy(0) != 0 {
		t.Error("light accuracy at rate 0 must be 0 (disabled)")
	}
	if LightAccuracy(1) != 1 {
		t.Error("light accuracy at rate 1 must be 1")
	}
	if got := LightAccuracy(0.2); math.Abs(got-0.96) > 1e-12 {
		t.Errorf("light accuracy(0.2) = %v, want 0.96", got)
	}
	if HeavyAccuracy(0.3) != 0.3 {
		t.Error("heavy accuracy should equal the rate")
	}
	if HeavyAccuracy(2) != 1 || HeavyAccuracy(-1) != 0 {
		t.Error("heavy accuracy not clamped")
	}
}

func TestSimulateFigure51Shape(t *testing.T) {
	// The Figure 5.1 headline: mmfs_pkt yields a (weakly) higher
	// minimum accuracy than mmfs_cpu across the (mq, K) plane, with the
	// largest gaps at moderate overload and small mq.
	qs := LightHeavySet(10, 0)
	total := TotalCost(qs)
	anyGap := false
	for _, k := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		capacity := total * (1 - k)
		cpu := Simulate(qs, capacity, sched.MMFSCPU{})
		pkt := Simulate(qs, capacity, sched.MMFSPkt{})
		if pkt.Min < cpu.Min-1e-9 {
			t.Errorf("K=%v: mmfs_pkt min %v below mmfs_cpu %v", k, pkt.Min, cpu.Min)
		}
		if pkt.Min > cpu.Min+0.01 {
			anyGap = true
		}
		if math.Abs(pkt.Avg-cpu.Avg) > 0.25 {
			t.Errorf("K=%v: average accuracies diverge too much: %v vs %v", k, pkt.Avg, cpu.Avg)
		}
	}
	if !anyGap {
		t.Error("mmfs_pkt never beat mmfs_cpu on minimum accuracy")
	}
}

func TestSimulateNoOverload(t *testing.T) {
	qs := LightHeavySet(10, 0.1)
	res := Simulate(qs, TotalCost(qs), sched.MMFSPkt{})
	if res.Avg != 1 || res.Min != 1 {
		t.Fatalf("no-overload accuracies = %v/%v, want 1/1", res.Avg, res.Min)
	}
}

func TestSimulateInfiniteOverload(t *testing.T) {
	// K = 1: zero capacity, every query disabled, accuracy 0.
	qs := LightHeavySet(10, 0.2)
	res := Simulate(qs, 0, sched.MMFSPkt{})
	if res.Avg != 0 || res.Min != 0 {
		t.Fatalf("K=1 accuracies = %v/%v, want 0/0", res.Avg, res.Min)
	}
}

func TestLightHeavySet(t *testing.T) {
	qs := LightHeavySet(10, 0.3)
	if len(qs) != 11 {
		t.Fatalf("set size = %d", len(qs))
	}
	if qs[0].Cost != 10*qs[1].Cost {
		t.Fatal("heavy query should cost 10x a light one")
	}
	if TotalCost(qs) != qs[0].Cost*2 {
		t.Fatalf("total cost = %v, want heavy + 10 lights = 2x heavy", TotalCost(qs))
	}
}
