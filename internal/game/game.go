// Package game models the resource allocation game of thesis §5.3–5.4:
// queries are players whose action is the minimum CPU demand they claim
// (a_q = m_q·d̂_q) and whose payoff (Equation 5.7) is the number of
// cycles the max-min fair scheduler actually allocates. Theorem 5.1
// shows the game has a single Nash equilibrium where every player
// demands C/|Q|; this package verifies that computationally and runs
// the light/heavy accuracy simulations behind Figures 5.1 and 5.2.
package game

import (
	"math"

	"repro/internal/sched"
)

// Player is one query in the allocation game.
type Player struct {
	Name   string
	Demand float64 // full-rate demand d̂_q in cycles
	Claim  float64 // claimed minimum demand a_q = m_q·d̂_q in cycles
}

// Payoffs evaluates Equation 5.7 for every player under the given
// max-min strategy: the scheduler receives demands with minimum rates
// m_q = a_q/d̂_q and the payoff is each player's allocated cycles.
func Payoffs(players []Player, capacity float64, strat sched.Strategy) []float64 {
	demands := make([]sched.Demand, len(players))
	for i, p := range players {
		min := 0.0
		if p.Demand > 0 {
			min = p.Claim / p.Demand
		}
		if min > 1 {
			min = 1
		}
		if min < 0 {
			min = 0
		}
		demands[i] = sched.Demand{Name: p.Name, Cycles: p.Demand, MinRate: min}
	}
	allocs := strat.Allocate(demands, capacity)
	out := make([]float64, len(players))
	for i, a := range allocs {
		out[i] = a.Cycles
	}
	return out
}

// BestResponse searches a claim grid for player i's payoff-maximizing
// action, holding every other player's claim fixed. It returns the best
// claim and its payoff.
func BestResponse(players []Player, i int, capacity float64, strat sched.Strategy, gridSteps int) (claim, payoff float64) {
	best := -1.0
	bestClaim := 0.0
	maxClaim := players[i].Demand
	for s := 0; s <= gridSteps; s++ {
		c := maxClaim * float64(s) / float64(gridSteps)
		trial := make([]Player, len(players))
		copy(trial, players)
		trial[i].Claim = c
		u := Payoffs(trial, capacity, strat)[i]
		if u > best+1e-9 {
			best = u
			bestClaim = c
		}
	}
	return bestClaim, best
}

// Epsilon is the tolerance used by IsEquilibrium: a profile is an
// ε-equilibrium when no unilateral deviation on the grid improves a
// player's payoff by more than ε relative to the capacity.
const Epsilon = 1e-6

// IsEquilibrium reports whether the players' current claims form a Nash
// equilibrium up to grid resolution: no player can improve its payoff
// by deviating to any grid claim.
func IsEquilibrium(players []Player, capacity float64, strat sched.Strategy, gridSteps int) bool {
	base := Payoffs(players, capacity, strat)
	for i := range players {
		_, best := BestResponse(players, i, capacity, strat, gridSteps)
		if best > base[i]+Epsilon*capacity {
			return false
		}
	}
	return true
}

// SimQuery is a query in the Figure 5.1/5.2 accuracy simulation.
type SimQuery struct {
	Name     string
	Cost     float64                    // cycles to process the interval at rate 1
	MinRate  float64                    // m_q
	Accuracy func(rate float64) float64 // accuracy as a function of the applied rate
}

// LightAccuracy is the simulated accuracy of the thesis' "light" query
// (§5.4): tolerant to sampling, emulating the counter query.
func LightAccuracy(rate float64) float64 {
	if rate <= 0 {
		return 0
	}
	return 1 - (1-rate)*0.05
}

// HeavyAccuracy is the simulated accuracy of the "heavy" query:
// proportional to the sampling rate, emulating the trace query.
func HeavyAccuracy(rate float64) float64 {
	if rate < 0 {
		return 0
	}
	if rate > 1 {
		return 1
	}
	return rate
}

// SimResult summarizes one simulated allocation.
type SimResult struct {
	Avg   float64
	Min   float64
	Rates []float64
}

// Simulate allocates capacity across the simulated queries with the
// given strategy and evaluates the resulting accuracies.
func Simulate(qs []SimQuery, capacity float64, strat sched.Strategy) SimResult {
	demands := make([]sched.Demand, len(qs))
	for i, q := range qs {
		demands[i] = sched.Demand{Name: q.Name, Cycles: q.Cost, MinRate: q.MinRate}
	}
	allocs := strat.Allocate(demands, capacity)
	res := SimResult{Min: math.Inf(1), Rates: make([]float64, len(qs))}
	for i, a := range allocs {
		res.Rates[i] = a.Rate
		acc := qs[i].Accuracy(a.Rate)
		res.Avg += acc
		if acc < res.Min {
			res.Min = acc
		}
	}
	if len(qs) > 0 {
		res.Avg /= float64(len(qs))
	} else {
		res.Min = 0
	}
	return res
}

// LightHeavySet builds the §5.4 scenario: one heavy query ten times the
// cost of each of n light queries, all sharing the same minimum rate.
func LightHeavySet(nLight int, minRate float64) []SimQuery {
	const lightCost = 100.0
	qs := []SimQuery{{
		Name: "heavy", Cost: 10 * lightCost, MinRate: minRate, Accuracy: HeavyAccuracy,
	}}
	for i := 0; i < nLight; i++ {
		qs = append(qs, SimQuery{
			Name: "light", Cost: lightCost, MinRate: minRate, Accuracy: LightAccuracy,
		})
	}
	return qs
}

// TotalCost sums the full-rate costs of the simulated queries.
func TotalCost(qs []SimQuery) float64 {
	var t float64
	for _, q := range qs {
		t += q.Cost
	}
	return t
}
