package system

import (
	"math"

	"repro/internal/core"
	"repro/internal/custom"
	"repro/internal/features"
	"repro/internal/pkt"
	"repro/internal/sampling"
	"repro/internal/sched"
)

// coldStartRate is the sampling rate applied before the predictor has
// any history at all.
const coldStartRate = 0.05

// step processes one batch through the full pipeline: capture-buffer
// admission, platform overhead, feature extraction, prediction, the
// shedding decision, per-query sampling, query execution and controller
// feedback (Algorithm 1).
func (s *System) step(bin int, b *pkt.Batch) BinStats {
	st := BinStats{
		Start:     b.Start,
		WirePkts:  b.Packets(),
		WireBytes: b.Bytes(),
		Rates:     make([]float64, len(s.qs)),
		QueryUsed: make([]float64, len(s.qs)),
		QueryPred: make([]float64, len(s.qs)),
	}
	capacity := s.gov.Capacity()
	unlimited := math.IsInf(capacity, 1)

	// 1. Capture buffer: when the system lags more than the buffer can
	// hold, incoming packets are dropped without control before the
	// system ever sees them ("DAG drops").
	admitted := b.Pkts
	bufferLoss := false
	if !unlimited {
		occ := s.gov.Delay() / capacity
		st.BufferBins = occ
		// Soft signal at 75% occupancy: the §4.1 "predefined value"
		// that resets rtthresh before any packet is lost.
		if occ > 0.75*s.cfg.BufferBins {
			bufferLoss = true
		}
		if excess := occ - s.cfg.BufferBins; excess > 0 {
			dropFrac := math.Min(1, excess)
			nDrop := int(dropFrac * float64(len(admitted)))
			st.DropPkts = nDrop
			admitted = admitted[nDrop:]
		}
	}
	st.AdmitPkts = len(admitted)
	ab := pkt.Batch{Start: b.Start, Bin: b.Bin, Pkts: admitted}

	// 2. Platform overhead (como_cycles): capture, filtering, memory
	// and storage management, with rare spikes for disk interference.
	overhead := comoPerBin + comoPerPkt*float64(len(admitted))
	if s.noise.Float64() < diskSpikeProb {
		overhead += comoPerBin * diskSpikeFactor
	}

	// 3+4. Feature extraction and prediction (predictive scheme only).
	var fv features.Vector
	var predSum float64
	predictive := s.cfg.Scheme == Predictive && !unlimited
	if s.cfg.Scheme == Predictive {
		opsBefore := s.globalExt.Ops
		fv = s.globalExt.Extract(&ab)
		overhead += feCostPerOp * float64(s.globalExt.Ops-opsBefore)
		for i, rq := range s.qs {
			var fit, fcbf int64
			if rq.mlr != nil {
				fcbf, fit = rq.mlr.FCBFOps, rq.mlr.FitOps
			}
			p := rq.pred.Predict(fv)
			if rq.mlr != nil {
				overhead += fcbfCostPerOp*float64(rq.mlr.FCBFOps-fcbf) + mlrCostPerOp*float64(rq.mlr.FitOps-fit)
			}
			st.QueryPred[i] = p
			predSum += p
		}
	}
	st.Predicted = predSum

	// 5. Decide per-query rates.
	avail := s.gov.Avail(overhead)
	st.Avail = avail
	rates := make([]float64, len(s.qs))
	for i := range rates {
		rates[i] = 1
	}
	switch s.cfg.Scheme {
	case Predictive:
		if predictive {
			s.decidePredictive(avail, st.QueryPred, rates)
		}
	case Reactive:
		if !unlimited {
			// Eq. 4.1: srate_t = min(1, max(α, srate_{t-1} ·
			// (avail_t − delay)/consumed_{t-1})), where avail is just
			// capacity minus overhead and delay is only the previous
			// bin's overshoot — the reactive baseline has no notion of
			// accumulated backlog, which is exactly why it overruns its
			// buffers under sustained overload (Fig. 4.2c).
			rAvail := capacity - overhead - s.reactiveDelay
			r := 1.0
			if s.lastConsumed > 0 {
				r = s.reactiveRate * rAvail / s.lastConsumed
			}
			r = math.Min(1, math.Max(s.cfg.ReactiveMinRate, r))
			s.reactiveRate = r
			for i := range rates {
				rates[i] = r
			}
		}
	case Original, NoShed:
		// No sampling: the buffer is the only defence.
	}

	// 6. Re-extract features of the shed stream once, shared across
	// queries (§5.5.4: "the traffic features could be recomputed just
	// once"). The shared vector approximates every sampled query's
	// stream; per-query interval state is maintained by merging the
	// shared batch bitmaps, which costs no re-hashing.
	var usedSum, shedCycles, allocSum float64
	if s.cfg.Scheme == Predictive {
		repRate, nSampled := 0.0, 0
		for i, r := range rates {
			if r < 1 && !(s.qs[i].shed != nil && s.qs[i].shed.Mode() == custom.ModeCustom) {
				repRate += r
				nSampled++
			}
		}
		if nSampled > 0 {
			repRate /= float64(nSampled)
			sampled := s.shedSamp.Sample(ab.Pkts, repRate)
			sb := pkt.Batch{Start: ab.Start, Bin: ab.Bin, Pkts: sampled}
			opsBefore := s.shedExt.Ops
			s.shedExt.Extract(&sb)
			shedCycles += feCostPerOp * float64(s.shedExt.Ops-opsBefore)
			shedCycles += sampleCostPerPkt * float64(len(ab.Pkts))
		}
	}

	// 7. Shed and run each query.
	minRate := 1.0
	for i, rq := range s.qs {
		rate := rates[i]
		qb := ab
		effRate := rate // the rate the query is told was applied

		if rq.shed != nil && s.cfg.Scheme == Predictive {
			switch rq.shed.Mode() {
			case custom.ModeCustom:
				// Custom shedding: the query sheds internally; the
				// batch is delivered whole and the query assumes no
				// packet loss. A zero allocation withholds the batch
				// entirely (the query is disabled for this bin).
				s.manager.Apply(rq.shed, rate)
				effRate = 1
				if rate <= 0 {
					qb.Pkts = nil
				}
			case custom.ModePoliced:
				// The system took shedding away: enforced packet
				// sampling (§6.1.1).
				s.manager.Apply(rq.shed, rate)
				if rate < 1 {
					qb.Pkts = rq.psamp.Sample(ab.Pkts, rate)
				}
			case custom.ModeDisabled:
				s.manager.Apply(rq.shed, 0)
				rate = 0
				qb.Pkts = nil
				effRate = 1
			}
		} else if rate < 1 {
			switch rq.q.Method() {
			case sampling.Flow:
				qb.Pkts = rq.fsamp.Sample(ab.Pkts, rate)
			default:
				qb.Pkts = rq.psamp.Sample(ab.Pkts, rate)
			}
		}
		rq.rate = rate
		st.Rates[i] = rate
		if rate < minRate {
			minRate = rate
		}

		// Run the query.
		ops := rq.q.Process(&qb, effRate)
		base := s.cfg.Cost.Cycles(ops)
		measured, spiked := s.measure(base)
		st.QueryUsed[i] = measured
		usedSum += measured
		allocSum += st.QueryPred[i] * rate

		// 8. Update the query's prediction history with the features of
		// its (possibly shed) stream (Algorithm 1 lines 12, 16). The
		// distinct counts come from the shared extractors; the scalar
		// packet/byte features are the query's own. A custom-shedding
		// query whose batch was withheld (rate 0) processed nothing and
		// contributes no observation — pairing full-batch features with
		// its residual cost would poison the model.
		if s.cfg.Scheme == Predictive {
			customMode := rq.shed != nil && rq.shed.Mode() == custom.ModeCustom
			if !(customMode && rate <= 0) {
				var qf features.Vector
				if rate >= 1 || customMode {
					// Stream identical to the full batch: merge, don't rescan.
					qf = rq.ext.ExtractFromBatchOf(s.globalExt, fv[features.IdxPackets], fv[features.IdxBytes])
				} else {
					nb := pkt.Batch{Pkts: qb.Pkts}
					qf = rq.ext.ExtractFromBatchOf(s.shedExt, float64(len(qb.Pkts)), float64(nb.Bytes()))
				}
				if spiked {
					// §3.2.4: measurements corrupted by context switches
					// are replaced with the prediction in the MLR history.
					rq.pred.Observe(qf, st.QueryPred[i]*rate)
				} else {
					rq.pred.Observe(qf, measured)
				}
			}
			if rq.shed != nil {
				s.manager.Audit(rq.shed, measured, st.QueryPred[i])
			}
		}
	}
	st.Used = usedSum
	st.Shed = shedCycles
	st.Overhead = overhead
	st.Alloc = allocSum
	st.GlobalRate = minRate

	// 9. Controller feedback.
	if !unlimited {
		s.reactiveDelay = math.Max(0, usedSum+overhead+shedCycles-capacity)
		s.gov.Observe(core.Feedback{
			Predicted:   predSum,
			AllocCycles: allocSum,
			UsedCycles:  usedSum,
			ShedCycles:  shedCycles,
			Overhead:    overhead,
			QueryAvail:  avail,
			BufferLoss:  bufferLoss,
		})
		s.lastConsumed = usedSum
	}
	return st
}

// decidePredictive fills rates according to the configured strategy (or
// the Chapter 4 single global rate when no strategy is set).
func (s *System) decidePredictive(avail float64, preds []float64, rates []float64) {
	var predSum float64
	for _, p := range preds {
		predSum += p
	}
	if predSum <= 0 {
		// Cold start: no model yet (first batch ever). Processing blind
		// at full rate can cost many times the bin budget before the
		// first observation lands; admit a conservative trickle instead
		// so the first history points are cheap and informative.
		for i := range rates {
			rates[i] = coldStartRate
		}
		return
	}
	if s.cfg.Strategy == nil {
		rate := 1.0
		if s.gov.NeedShed(avail, predSum) {
			rate = s.gov.Rate(avail, predSum)
		}
		for i := range rates {
			rates[i] = rate
		}
		return
	}
	budget := s.gov.QueryBudget(avail)
	demands := make([]sched.Demand, len(s.qs))
	for i, rq := range s.qs {
		demand := preds[i]
		if rq.shed != nil {
			// The custom manager's correction factor converts the
			// (shed-regime) prediction into a demand estimate.
			demand = s.manager.Demand(rq.shed, preds[i])
		}
		demands[i] = sched.Demand{
			Name:    rq.q.Name(),
			Cycles:  demand,
			MinRate: rq.q.MinRate(),
		}
	}
	for i, a := range s.cfg.Strategy.Allocate(demands, budget) {
		rates[i] = a.Rate
	}
}

// measure converts true cycles into a measured value, adding the noise
// and occasional spikes of TSC-based measurement (§3.2.4).
func (s *System) measure(base float64) (measured float64, spiked bool) {
	m := base
	if s.cfg.NoiseSigma > 0 {
		m *= math.Exp(s.cfg.NoiseSigma*s.noise.NormFloat64() - s.cfg.NoiseSigma*s.cfg.NoiseSigma/2)
	}
	if s.cfg.SpikeProb > 0 && s.noise.Float64() < s.cfg.SpikeProb {
		m *= s.cfg.SpikeFactor
		return m, true
	}
	return m, false
}
