package bitmap

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hash"
)

func TestDirectEmpty(t *testing.T) {
	d := NewDirect(64)
	if got := d.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %v, want 0", got)
	}
	if d.Ones() != 0 {
		t.Fatalf("empty bitmap has %d ones", d.Ones())
	}
}

func TestDirectRoundsUpToPowerOfTwo(t *testing.T) {
	d := NewDirect(1000)
	if d.Size() != 1024 {
		t.Fatalf("size = %d, want 1024", d.Size())
	}
	d = NewDirect(1)
	if d.Size() != 64 {
		t.Fatalf("minimum size = %d, want 64", d.Size())
	}
}

func TestDirectSingleItem(t *testing.T) {
	d := NewDirect(1024)
	d.Insert(12345)
	d.Insert(12345) // duplicate must not change anything
	if d.Ones() != 1 {
		t.Fatalf("ones = %d, want 1", d.Ones())
	}
	est := d.Estimate()
	if math.Abs(est-1) > 0.01 {
		t.Fatalf("estimate = %v, want ~1", est)
	}
}

func TestDirectLinearCountingAccuracy(t *testing.T) {
	h := hash.NewH3(1)
	d := NewDirect(8192)
	const n = 2000
	buf := make([]byte, hash.KeySize)
	for i := 0; i < n; i++ {
		buf[0] = byte(i)
		buf[1] = byte(i >> 8)
		buf[2] = byte(i >> 16)
		d.Insert(hash.Mix64(h.Hash(buf)))
	}
	est := d.Estimate()
	if math.Abs(est-n)/n > 0.05 {
		t.Fatalf("estimate = %v, want %d +/- 5%%", est, n)
	}
}

func TestDirectReset(t *testing.T) {
	d := NewDirect(64)
	d.Insert(1)
	d.Reset()
	if d.Ones() != 0 {
		t.Fatal("Reset did not clear bits")
	}
}

func TestDirectMerge(t *testing.T) {
	a := NewDirect(256)
	b := NewDirect(256)
	a.Insert(1)
	b.Insert(2)
	a.MergeFrom(b)
	if a.Ones() != 2 {
		t.Fatalf("merged ones = %d, want 2", a.Ones())
	}
}

func TestDirectMergePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDirect(64).MergeFrom(NewDirect(128))
}

func TestDirectSaturatedEstimateFinite(t *testing.T) {
	d := NewDirect(64)
	for i := uint64(0); i < 64; i++ {
		d.Insert(i)
	}
	est := d.Estimate()
	if math.IsInf(est, 0) || math.IsNaN(est) {
		t.Fatalf("saturated estimate not finite: %v", est)
	}
}

func TestMultiResNeedsTwoLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiRes(64, 1)
}

func TestMultiResEmpty(t *testing.T) {
	m := DefaultMultiRes()
	if got := m.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %v, want 0", got)
	}
}

func TestMultiResAccuracyAcrossMagnitudes(t *testing.T) {
	// The headline property: ~constant relative error from hundreds to
	// hundreds of thousands of distinct items with one configuration.
	h := hash.NewH3(2)
	buf := make([]byte, hash.KeySize)
	for _, n := range []int{100, 1000, 10000, 100000, 500000} {
		m := DefaultMultiRes()
		for i := 0; i < n; i++ {
			buf[0] = byte(i)
			buf[1] = byte(i >> 8)
			buf[2] = byte(i >> 16)
			buf[3] = byte(i >> 24)
			m.Insert(hash.Mix64(h.Hash(buf)))
		}
		est := m.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		if relErr > 0.05 {
			t.Errorf("n=%d: estimate=%.0f relErr=%.3f, want <= 0.05", n, est, relErr)
		}
	}
}

func TestMultiResDuplicatesIgnored(t *testing.T) {
	h := hash.NewH3(3)
	m := DefaultMultiRes()
	buf := make([]byte, hash.KeySize)
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 500; i++ {
			buf[0] = byte(i)
			buf[1] = byte(i >> 8)
			m.Insert(hash.Mix64(h.Hash(buf)))
		}
	}
	est := m.Estimate()
	if math.Abs(est-500)/500 > 0.05 {
		t.Fatalf("estimate with duplicates = %v, want ~500", est)
	}
}

func TestMultiResMergeCountsUnion(t *testing.T) {
	h := hash.NewH3(4)
	a := DefaultMultiRes()
	b := DefaultMultiRes()
	buf := make([]byte, hash.KeySize)
	// a gets items [0,3000), b gets [2000,5000): union is 5000.
	for i := 0; i < 3000; i++ {
		buf[0], buf[1] = byte(i), byte(i>>8)
		a.Insert(hash.Mix64(h.Hash(buf)))
	}
	for i := 2000; i < 5000; i++ {
		buf[0], buf[1] = byte(i), byte(i>>8)
		b.Insert(hash.Mix64(h.Hash(buf)))
	}
	a.MergeFrom(b)
	est := a.Estimate()
	if math.Abs(est-5000)/5000 > 0.05 {
		t.Fatalf("union estimate = %v, want ~5000", est)
	}
}

func TestMultiResMergePanicsOnGeometryMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiRes(64, 4).MergeFrom(NewMultiRes(64, 5))
}

func TestMultiResReset(t *testing.T) {
	m := NewMultiRes(64, 4)
	m.Insert(123)
	m.Reset()
	if m.Estimate() != 0 {
		t.Fatal("Reset did not clear the counter")
	}
}

func TestMultiResMemoryBytes(t *testing.T) {
	m := NewMultiRes(4096, 16)
	if got := m.MemoryBytes(); got != 16*4096/8 {
		t.Fatalf("MemoryBytes = %d", got)
	}
}

func TestMultiResLevelDistribution(t *testing.T) {
	// Level i (i < last) should receive a 2^-(i+1) slice of hash space.
	m := NewMultiRes(64, 8)
	counts := make([]int, 8)
	rng := hash.NewXorShift(5)
	const n = 1 << 18
	for i := 0; i < n; i++ {
		counts[m.level(rng.Uint64())]++
	}
	for i := 0; i < 6; i++ {
		want := float64(n) / math.Pow(2, float64(i+1))
		if math.Abs(float64(counts[i])-want) > want*0.1+10 {
			t.Errorf("level %d count = %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestMultiResMergeCommutative(t *testing.T) {
	// Estimate(a OR b) must equal Estimate(b OR a).
	f := func(xs, ys []uint64) bool {
		a1 := NewMultiRes(256, 8)
		b1 := NewMultiRes(256, 8)
		a2 := NewMultiRes(256, 8)
		b2 := NewMultiRes(256, 8)
		for _, x := range xs {
			a1.Insert(x)
			a2.Insert(x)
		}
		for _, y := range ys {
			b1.Insert(y)
			b2.Insert(y)
		}
		a1.MergeFrom(b1)
		b2.MergeFrom(a2)
		return a1.Estimate() == b2.Estimate()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultiResMonotoneUnderInsertionProperty(t *testing.T) {
	// Inserting more items never decreases the estimate by a meaningful
	// amount (small decreases can't happen at all: set bits only grow).
	m := NewMultiRes(256, 8)
	rng := hash.NewXorShift(6)
	prev := 0.0
	for i := 0; i < 5000; i++ {
		m.Insert(rng.Uint64())
		if i%500 == 0 {
			est := m.Estimate()
			if est < prev {
				t.Fatalf("estimate decreased from %v to %v", prev, est)
			}
			prev = est
		}
	}
}

// scanOnes popcounts a word slice — the reference the incremental
// counters are checked against.
func scanOnes(words []uint64) int {
	n := 0
	for _, w := range words {
		n += popcount(w)
	}
	return n
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

func TestDirectOnesIncremental(t *testing.T) {
	// The incremental set-bit count must track the actual words through
	// inserts (including duplicates), merges and resets.
	d := NewDirect(512)
	o := NewDirect(512)
	rng := hash.NewXorShift(11)
	for i := 0; i < 2000; i++ {
		d.Insert(rng.Uint64() % 700) // force collisions
		o.Insert(rng.Uint64() % 700)
		if i%251 == 0 {
			d.MergeFrom(o)
		}
		if got, want := d.Ones(), scanOnes(d.words); got != want {
			t.Fatalf("step %d: Ones = %d, scan = %d", i, got, want)
		}
	}
	d.Reset()
	if d.Ones() != 0 || scanOnes(d.words) != 0 {
		t.Fatal("Reset left bits or a stale count behind")
	}
}

// refMultiRes is the pre-flat-layout MultiRes algorithm, one Direct per
// component, kept as the equivalence oracle for the rewrite.
type refMultiRes struct {
	comps  []*Direct
	levels int
}

func newRefMultiRes(nbits, levels int) *refMultiRes {
	r := &refMultiRes{comps: make([]*Direct, levels), levels: levels}
	for i := range r.comps {
		r.comps[i] = NewDirect(nbits)
	}
	return r
}

func (r *refMultiRes) level(h uint64) int {
	lv := 0
	for lv < r.levels-1 && h&(1<<uint(lv)) != 0 {
		lv++
	}
	return lv
}

func (r *refMultiRes) Insert(h uint64) {
	lv := r.level(h)
	r.comps[lv].Insert(h >> uint(lv+1))
}

func (r *refMultiRes) Estimate() float64 {
	base := 0
	for base < r.levels-1 {
		fill := float64(scanOnes(r.comps[base].words)) / float64(r.comps[base].Size())
		if fill <= saturationFill {
			break
		}
		base++
	}
	var sum float64
	for i := base; i < r.levels; i++ {
		sum += linearCount(r.comps[i].size, scanOnes(r.comps[i].words))
	}
	return sum * math.Pow(2, float64(base))
}

func TestMultiResMatchesReferenceImplementation(t *testing.T) {
	// The flat-layout counter must be bit-identical to the per-component
	// Direct implementation across inserts, resets and merges.
	f := func(xs, ys []uint64, seed uint64) bool {
		m := NewMultiRes(256, 8)
		ref := newRefMultiRes(256, 8)
		for _, x := range xs {
			m.Insert(x)
			ref.Insert(x)
		}
		if m.Estimate() != ref.Estimate() {
			return false
		}
		m.Reset()
		ref = newRefMultiRes(256, 8)
		other := NewMultiRes(256, 8)
		for _, y := range ys {
			other.Insert(y)
			ref.Insert(y)
		}
		m.MergeFrom(other)
		return m.Estimate() == ref.Estimate()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultiResDirtyTracking(t *testing.T) {
	m := NewMultiRes(256, 8)
	rng := hash.NewXorShift(13)
	for round := 0; round < 5; round++ {
		for i := 0; i < 300; i++ {
			m.Insert(rng.Uint64())
		}
		// dirty must list exactly the nonzero words, without duplicates.
		seen := make(map[int32]bool, len(m.dirty))
		for _, idx := range m.dirty {
			if seen[idx] {
				t.Fatalf("round %d: duplicate dirty index %d", round, idx)
			}
			seen[idx] = true
			if m.words[idx] == 0 {
				t.Fatalf("round %d: dirty index %d is zero", round, idx)
			}
		}
		nonzero := 0
		for i, w := range m.words {
			if w != 0 {
				nonzero++
				if !seen[int32(i)] {
					t.Fatalf("round %d: nonzero word %d not tracked dirty", round, i)
				}
			}
		}
		if nonzero != len(m.dirty) {
			t.Fatalf("round %d: %d nonzero words, %d dirty entries", round, nonzero, len(m.dirty))
		}
		// Per-component counts must match a scan of the flat array.
		for lv := 0; lv < m.levels; lv++ {
			if got, want := m.ones[lv], scanOnes(m.words[lv*m.wpc:(lv+1)*m.wpc]); got != want {
				t.Fatalf("round %d: component %d ones = %d, scan = %d", round, lv, got, want)
			}
		}
		m.Reset()
		if len(m.dirty) != 0 || scanOnes(m.words) != 0 {
			t.Fatalf("round %d: Reset left state behind", round)
		}
	}
}

func TestMultiResNoAllocSteadyState(t *testing.T) {
	m := DefaultMultiRes()
	rng := hash.NewXorShift(17)
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 2000; i++ {
			m.Insert(rng.Uint64())
		}
		m.Estimate()
		m.Reset()
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocations = %v, want 0", allocs)
	}
}

func BenchmarkMultiResInsert(b *testing.B) {
	m := DefaultMultiRes()
	rng := hash.NewXorShift(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Insert(rng.Uint64())
	}
}

func BenchmarkMultiResEstimate(b *testing.B) {
	m := DefaultMultiRes()
	rng := hash.NewXorShift(1)
	for i := 0; i < 100000; i++ {
		m.Insert(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Estimate()
	}
}
