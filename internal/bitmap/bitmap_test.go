package bitmap

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hash"
)

func TestDirectEmpty(t *testing.T) {
	d := NewDirect(64)
	if got := d.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %v, want 0", got)
	}
	if d.Ones() != 0 {
		t.Fatalf("empty bitmap has %d ones", d.Ones())
	}
}

func TestDirectRoundsUpToPowerOfTwo(t *testing.T) {
	d := NewDirect(1000)
	if d.Size() != 1024 {
		t.Fatalf("size = %d, want 1024", d.Size())
	}
	d = NewDirect(1)
	if d.Size() != 64 {
		t.Fatalf("minimum size = %d, want 64", d.Size())
	}
}

func TestDirectSingleItem(t *testing.T) {
	d := NewDirect(1024)
	d.Insert(12345)
	d.Insert(12345) // duplicate must not change anything
	if d.Ones() != 1 {
		t.Fatalf("ones = %d, want 1", d.Ones())
	}
	est := d.Estimate()
	if math.Abs(est-1) > 0.01 {
		t.Fatalf("estimate = %v, want ~1", est)
	}
}

func TestDirectLinearCountingAccuracy(t *testing.T) {
	h := hash.NewH3(1)
	d := NewDirect(8192)
	const n = 2000
	buf := make([]byte, hash.KeySize)
	for i := 0; i < n; i++ {
		buf[0] = byte(i)
		buf[1] = byte(i >> 8)
		buf[2] = byte(i >> 16)
		d.Insert(hash.Mix64(h.Hash(buf)))
	}
	est := d.Estimate()
	if math.Abs(est-n)/n > 0.05 {
		t.Fatalf("estimate = %v, want %d +/- 5%%", est, n)
	}
}

func TestDirectReset(t *testing.T) {
	d := NewDirect(64)
	d.Insert(1)
	d.Reset()
	if d.Ones() != 0 {
		t.Fatal("Reset did not clear bits")
	}
}

func TestDirectMerge(t *testing.T) {
	a := NewDirect(256)
	b := NewDirect(256)
	a.Insert(1)
	b.Insert(2)
	a.MergeFrom(b)
	if a.Ones() != 2 {
		t.Fatalf("merged ones = %d, want 2", a.Ones())
	}
}

func TestDirectMergePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDirect(64).MergeFrom(NewDirect(128))
}

func TestDirectSaturatedEstimateFinite(t *testing.T) {
	d := NewDirect(64)
	for i := uint64(0); i < 64; i++ {
		d.Insert(i)
	}
	est := d.Estimate()
	if math.IsInf(est, 0) || math.IsNaN(est) {
		t.Fatalf("saturated estimate not finite: %v", est)
	}
}

func TestMultiResNeedsTwoLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiRes(64, 1)
}

func TestMultiResEmpty(t *testing.T) {
	m := DefaultMultiRes()
	if got := m.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %v, want 0", got)
	}
}

func TestMultiResAccuracyAcrossMagnitudes(t *testing.T) {
	// The headline property: ~constant relative error from hundreds to
	// hundreds of thousands of distinct items with one configuration.
	h := hash.NewH3(2)
	buf := make([]byte, hash.KeySize)
	for _, n := range []int{100, 1000, 10000, 100000, 500000} {
		m := DefaultMultiRes()
		for i := 0; i < n; i++ {
			buf[0] = byte(i)
			buf[1] = byte(i >> 8)
			buf[2] = byte(i >> 16)
			buf[3] = byte(i >> 24)
			m.Insert(hash.Mix64(h.Hash(buf)))
		}
		est := m.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		if relErr > 0.05 {
			t.Errorf("n=%d: estimate=%.0f relErr=%.3f, want <= 0.05", n, est, relErr)
		}
	}
}

func TestMultiResDuplicatesIgnored(t *testing.T) {
	h := hash.NewH3(3)
	m := DefaultMultiRes()
	buf := make([]byte, hash.KeySize)
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 500; i++ {
			buf[0] = byte(i)
			buf[1] = byte(i >> 8)
			m.Insert(hash.Mix64(h.Hash(buf)))
		}
	}
	est := m.Estimate()
	if math.Abs(est-500)/500 > 0.05 {
		t.Fatalf("estimate with duplicates = %v, want ~500", est)
	}
}

func TestMultiResMergeCountsUnion(t *testing.T) {
	h := hash.NewH3(4)
	a := DefaultMultiRes()
	b := DefaultMultiRes()
	buf := make([]byte, hash.KeySize)
	// a gets items [0,3000), b gets [2000,5000): union is 5000.
	for i := 0; i < 3000; i++ {
		buf[0], buf[1] = byte(i), byte(i>>8)
		a.Insert(hash.Mix64(h.Hash(buf)))
	}
	for i := 2000; i < 5000; i++ {
		buf[0], buf[1] = byte(i), byte(i>>8)
		b.Insert(hash.Mix64(h.Hash(buf)))
	}
	a.MergeFrom(b)
	est := a.Estimate()
	if math.Abs(est-5000)/5000 > 0.05 {
		t.Fatalf("union estimate = %v, want ~5000", est)
	}
}

func TestMultiResMergePanicsOnGeometryMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiRes(64, 4).MergeFrom(NewMultiRes(64, 5))
}

func TestMultiResReset(t *testing.T) {
	m := NewMultiRes(64, 4)
	m.Insert(123)
	m.Reset()
	if m.Estimate() != 0 {
		t.Fatal("Reset did not clear the counter")
	}
}

func TestMultiResMemoryBytes(t *testing.T) {
	m := NewMultiRes(4096, 16)
	if got := m.MemoryBytes(); got != 16*4096/8 {
		t.Fatalf("MemoryBytes = %d", got)
	}
}

func TestMultiResLevelDistribution(t *testing.T) {
	// Level i (i < last) should receive a 2^-(i+1) slice of hash space.
	m := NewMultiRes(64, 8)
	counts := make([]int, 8)
	rng := hash.NewXorShift(5)
	const n = 1 << 18
	for i := 0; i < n; i++ {
		counts[m.level(rng.Uint64())]++
	}
	for i := 0; i < 6; i++ {
		want := float64(n) / math.Pow(2, float64(i+1))
		if math.Abs(float64(counts[i])-want) > want*0.1+10 {
			t.Errorf("level %d count = %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestMultiResMergeCommutative(t *testing.T) {
	// Estimate(a OR b) must equal Estimate(b OR a).
	f := func(xs, ys []uint64) bool {
		a1 := NewMultiRes(256, 8)
		b1 := NewMultiRes(256, 8)
		a2 := NewMultiRes(256, 8)
		b2 := NewMultiRes(256, 8)
		for _, x := range xs {
			a1.Insert(x)
			a2.Insert(x)
		}
		for _, y := range ys {
			b1.Insert(y)
			b2.Insert(y)
		}
		a1.MergeFrom(b1)
		b2.MergeFrom(a2)
		return a1.Estimate() == b2.Estimate()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultiResMonotoneUnderInsertionProperty(t *testing.T) {
	// Inserting more items never decreases the estimate by a meaningful
	// amount (small decreases can't happen at all: set bits only grow).
	m := NewMultiRes(256, 8)
	rng := hash.NewXorShift(6)
	prev := 0.0
	for i := 0; i < 5000; i++ {
		m.Insert(rng.Uint64())
		if i%500 == 0 {
			est := m.Estimate()
			if est < prev {
				t.Fatalf("estimate decreased from %v to %v", prev, est)
			}
			prev = est
		}
	}
}

func BenchmarkMultiResInsert(b *testing.B) {
	m := DefaultMultiRes()
	rng := hash.NewXorShift(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Insert(rng.Uint64())
	}
}

func BenchmarkMultiResEstimate(b *testing.B) {
	m := DefaultMultiRes()
	rng := hash.NewXorShift(1)
	for i := 0; i < 100000; i++ {
		m.Insert(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Estimate()
	}
}
