// Package bitmap implements the bitmap distinct-counting algorithms the
// feature-extraction subsystem relies on (thesis §3.2.1, citing Estan,
// Varghese and Fisk, "Bitmap algorithms for counting active flows on
// high speed links").
//
// Two counters are provided:
//
//   - Direct: a single bitmap evaluated with linear counting. Accurate
//     while the number of distinct items stays well below the bitmap
//     size.
//   - MultiRes: a multi-resolution bitmap — a stack of components each
//     responsible for a geometrically shrinking slice of the hash space —
//     that keeps the relative counting error roughly constant across
//     many orders of magnitude while bounding memory and guaranteeing a
//     deterministic number of memory accesses per insertion (the
//     property that makes feature extraction safe on the fast path).
//
// Both counters ingest 64-bit hashes; the caller chooses the hash
// function (the monitoring pipeline uses hash.H3).
//
// Both counters maintain their set-bit counts incrementally on Insert
// and MergeFrom, so Ones and Estimate never scan the bit array, and
// MultiRes additionally tracks which words have been written so Reset
// costs O(words touched) rather than O(total size). The per-batch hot
// loop therefore pays exactly one word read-modify-write per insertion
// and nothing proportional to the configured bitmap size.
package bitmap

import (
	"fmt"
	"math"
	"math/bits"
)

// linearCount is the linear-counting estimator shared by both bitmap
// kinds: b * ln(b / zeros) for a b-bit map with the given number of set
// bits. A saturated bitmap (no zero bits) returns b * ln(b), the
// largest value the estimator can express.
func linearCount(size uint64, ones int) float64 {
	if ones == 0 {
		// b * ln(b/b) is exactly 0; skipping the Log call matters because
		// MultiRes.Estimate visits every component and most are empty.
		return 0
	}
	zeros := float64(int(size) - ones)
	b := float64(size)
	if zeros < 1 {
		zeros = 1
	}
	return b * math.Log(b/zeros)
}

// roundSize rounds a bit count up to a power of two, minimum 64 (one
// word), the granularity both bitmap kinds allocate at.
func roundSize(nbits int) uint64 {
	size := uint64(64)
	for size < uint64(nbits) {
		size <<= 1
	}
	return size
}

// Direct is a plain bitmap with linear-counting estimation. The zero
// value is unusable; construct with NewDirect.
type Direct struct {
	words []uint64
	size  uint64 // number of bits, power of two
	mask  uint64
	ones  int // set-bit count, maintained incrementally
}

// NewDirect returns a bitmap with at least the requested number of bits
// (rounded up to a power of two, minimum 64).
func NewDirect(nbits int) *Direct {
	size := roundSize(nbits)
	return &Direct{
		words: make([]uint64, size/64),
		size:  size,
		mask:  size - 1,
	}
}

// Insert records the item identified by hash h.
func (d *Direct) Insert(h uint64) {
	bit := h & d.mask
	m := uint64(1) << (bit & 63)
	if d.words[bit>>6]&m == 0 {
		d.words[bit>>6] |= m
		d.ones++
	}
}

// Ones returns the number of set bits. The count is maintained on
// Insert and MergeFrom, so this is O(1) — SuperSources calls it (via
// Estimate) once per tracked source per interval, and the old full-scan
// implementation made that quadratic in practice.
func (d *Direct) Ones() int { return d.ones }

// Size returns the bitmap size in bits.
func (d *Direct) Size() int { return int(d.size) }

// Estimate returns the linear-counting estimate of the number of
// distinct items inserted: b * ln(b / zeros). A saturated bitmap (no
// zero bits) returns b * ln(b), the largest value the estimator can
// express.
func (d *Direct) Estimate() float64 {
	return linearCount(d.size, d.ones)
}

// Reset clears all bits.
func (d *Direct) Reset() {
	for i := range d.words {
		d.words[i] = 0
	}
	d.ones = 0
}

// MergeFrom ORs another bitmap of identical size into d. It panics if the
// sizes differ.
func (d *Direct) MergeFrom(o *Direct) {
	if d.size != o.size {
		panic(fmt.Sprintf("bitmap: merging direct bitmaps of different sizes %d and %d", d.size, o.size))
	}
	for i, w := range o.words {
		old := d.words[i]
		nw := old | w
		if nw != old {
			d.ones += bits.OnesCount64(nw) - bits.OnesCount64(old)
			d.words[i] = nw
		}
	}
}

// saturationFill is the component fill ratio beyond which linear
// counting degrades too much and the estimator advances to the next
// (coarser-coverage) component.
const saturationFill = 0.9

// MultiRes is a multi-resolution bitmap. Component i (i < c-1) receives
// items whose hash has exactly i trailing one bits, i.e. a 2^-(i+1)
// slice of the hash space; the last component receives everything with
// at least c-1 trailing ones (a 2^-(c-1) slice). At estimation time the
// coarsest usable ("base") component is located and the linear-counting
// estimates of components base..c-1 are summed and rescaled by 2^base.
//
// All components live in one flat contiguous word array (component i
// occupies words [i*wpc, (i+1)*wpc)), with two pieces of bookkeeping
// maintained on every write:
//
//   - ones[i]: the set-bit count of component i, so Estimate is
//     O(levels) instead of a full popcount scan;
//   - dirty: the indices of the nonzero words, appended exactly when a
//     word transitions zero→nonzero, so Reset zeroes only the words a
//     sparse batch actually touched and MergeFrom visits only the
//     source's nonzero words.
//
// The zero value is unusable; construct with NewMultiRes.
type MultiRes struct {
	words  []uint64 // levels × wpc, flat
	ones   []int    // per-component set-bit counts
	dirty  []int32  // indices of nonzero words (no duplicates)
	nbits  int      // requested per-component size, kept for geometry checks
	size   uint64   // actual per-component size in bits (power of two, ≥64)
	mask   uint64
	wpc    int // words per component (power of two)
	wshift int // log2(wpc)
	levels int
}

// NewMultiRes returns a multi-resolution bitmap with the given number of
// components ("levels"), each holding nbits bits. Inserting costs one
// bitmap write regardless of parameters. The dirty-word list is
// preallocated at full capacity, so the counter never allocates after
// construction.
func NewMultiRes(nbits, levels int) *MultiRes {
	if levels < 2 {
		panic("bitmap: MultiRes needs at least 2 levels")
	}
	size := roundSize(nbits)
	wpc := int(size / 64)
	return &MultiRes{
		words:  make([]uint64, levels*wpc),
		ones:   make([]int, levels),
		dirty:  make([]int32, 0, levels*wpc),
		nbits:  nbits,
		size:   size,
		mask:   size - 1,
		wpc:    wpc,
		wshift: bits.TrailingZeros(uint(wpc)),
		levels: levels,
	}
}

// DefaultMultiRes returns a counter dimensioned for the monitoring
// pipeline: counting errors around 1% for cardinalities from tens to a
// few million, matching the dimensioning described in §3.2.1.
func DefaultMultiRes() *MultiRes { return NewMultiRes(4096, 16) }

// level returns the component index for hash h.
func (m *MultiRes) level(h uint64) int {
	tz := bits.TrailingZeros64(^h) // number of trailing one bits in h
	if tz >= m.levels-1 {
		return m.levels - 1
	}
	return tz
}

// Insert records the item identified by hash h.
func (m *MultiRes) Insert(h uint64) {
	lv := m.level(h)
	// The bits that chose the level are no longer uniform; index the
	// component with the remaining high bits.
	bit := (h >> uint(lv+1)) & m.mask
	idx := lv*m.wpc + int(bit>>6)
	mask := uint64(1) << (bit & 63)
	w := m.words[idx]
	if w&mask != 0 {
		return
	}
	if w == 0 {
		m.dirty = append(m.dirty, int32(idx))
	}
	m.words[idx] = w | mask
	m.ones[lv]++
}

// InsertMany records every item in hs — Insert unrolled into a single
// call with the hot fields held in locals, which is what the
// per-aggregate extraction loop feeds (one hash slice per batch per
// aggregate). Equivalent to calling Insert on each element in order.
func (m *MultiRes) InsertMany(hs []uint64) {
	words, ones, dirty := m.words, m.ones, m.dirty
	last, mask, wshift := m.levels-1, m.mask, uint(m.wshift)
	for _, h := range hs {
		lv := bits.TrailingZeros64(^h)
		if lv > last {
			lv = last
		}
		bit := (h >> uint(lv+1)) & mask
		idx := lv<<wshift + int(bit>>6)
		shift := bit & 63
		w := words[idx]
		// Branchless on the duplicate check: a repeated item at level 0 is
		// a coin flip on real traffic, and a mispredicted branch there
		// costs more than the unconditional (idempotent) store.
		words[idx] = w | 1<<shift
		ones[lv] += int(^w>>shift) & 1
		if w == 0 {
			dirty = append(dirty, int32(idx))
		}
	}
	m.dirty = dirty
}

// Estimate returns the estimated number of distinct items inserted. It
// reads only the per-component set-bit counts — O(levels), independent
// of the bitmap size.
func (m *MultiRes) Estimate() float64 {
	base := 0
	for base < m.levels-1 {
		fill := float64(m.ones[base]) / float64(m.size)
		if fill <= saturationFill {
			break
		}
		base++
	}
	var sum float64
	for i := base; i < m.levels; i++ {
		sum += linearCount(m.size, m.ones[i])
	}
	return sum * math.Pow(2, float64(base))
}

// Reset clears every component. Only the words recorded dirty are
// zeroed, so a sparse batch pays for the words it wrote, not for the
// configured capacity.
func (m *MultiRes) Reset() {
	for _, idx := range m.dirty {
		m.words[idx] = 0
	}
	m.dirty = m.dirty[:0]
	for i := range m.ones {
		m.ones[i] = 0
	}
}

// MergeFrom ORs another multi-resolution bitmap with identical geometry
// into m; the result counts the union of the two insert streams. Only
// o's nonzero words are visited, which is what makes the per-batch
// interval merge cheap for sparse batches. It panics if the geometries
// differ.
func (m *MultiRes) MergeFrom(o *MultiRes) {
	if m.nbits != o.nbits || m.levels != o.levels {
		panic("bitmap: merging MultiRes bitmaps with different geometry")
	}
	for _, idx := range o.dirty {
		old := m.words[idx]
		nw := old | o.words[idx]
		if nw == old {
			continue
		}
		if old == 0 {
			m.dirty = append(m.dirty, idx)
		}
		m.ones[int(idx)/m.wpc] += bits.OnesCount64(nw) - bits.OnesCount64(old)
		m.words[idx] = nw
	}
}

// MemoryBytes returns the memory footprint of the bitmap payload.
func (m *MultiRes) MemoryBytes() int {
	return m.levels * m.nbits / 8
}
