// Package bitmap implements the bitmap distinct-counting algorithms the
// feature-extraction subsystem relies on (thesis §3.2.1, citing Estan,
// Varghese and Fisk, "Bitmap algorithms for counting active flows on
// high speed links").
//
// Two counters are provided:
//
//   - Direct: a single bitmap evaluated with linear counting. Accurate
//     while the number of distinct items stays well below the bitmap
//     size.
//   - MultiRes: a multi-resolution bitmap — a stack of components each
//     responsible for a geometrically shrinking slice of the hash space —
//     that keeps the relative counting error roughly constant across
//     many orders of magnitude while bounding memory and guaranteeing a
//     deterministic number of memory accesses per insertion (the
//     property that makes feature extraction safe on the fast path).
//
// Both counters ingest 64-bit hashes; the caller chooses the hash
// function (the monitoring pipeline uses hash.H3).
package bitmap

import (
	"fmt"
	"math"
	"math/bits"
)

// Direct is a plain bitmap with linear-counting estimation. The zero
// value is unusable; construct with NewDirect.
type Direct struct {
	words []uint64
	size  uint64 // number of bits, power of two
	mask  uint64
}

// NewDirect returns a bitmap with at least the requested number of bits
// (rounded up to a power of two, minimum 64).
func NewDirect(nbits int) *Direct {
	size := uint64(64)
	for size < uint64(nbits) {
		size <<= 1
	}
	return &Direct{
		words: make([]uint64, size/64),
		size:  size,
		mask:  size - 1,
	}
}

// Insert records the item identified by hash h.
func (d *Direct) Insert(h uint64) {
	bit := h & d.mask
	d.words[bit/64] |= 1 << (bit % 64)
}

// Ones returns the number of set bits.
func (d *Direct) Ones() int {
	n := 0
	for _, w := range d.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Size returns the bitmap size in bits.
func (d *Direct) Size() int { return int(d.size) }

// Estimate returns the linear-counting estimate of the number of
// distinct items inserted: b * ln(b / zeros). A saturated bitmap (no
// zero bits) returns b * ln(b), the largest value the estimator can
// express.
func (d *Direct) Estimate() float64 {
	zeros := float64(int(d.size) - d.Ones())
	b := float64(d.size)
	if zeros < 1 {
		zeros = 1
	}
	return b * math.Log(b/zeros)
}

// Reset clears all bits.
func (d *Direct) Reset() {
	for i := range d.words {
		d.words[i] = 0
	}
}

// MergeFrom ORs another bitmap of identical size into d. It panics if the
// sizes differ.
func (d *Direct) MergeFrom(o *Direct) {
	if d.size != o.size {
		panic(fmt.Sprintf("bitmap: merging direct bitmaps of different sizes %d and %d", d.size, o.size))
	}
	for i, w := range o.words {
		d.words[i] |= w
	}
}

// saturationFill is the component fill ratio beyond which linear
// counting degrades too much and the estimator advances to the next
// (coarser-coverage) component.
const saturationFill = 0.9

// MultiRes is a multi-resolution bitmap. Component i (i < c-1) receives
// items whose hash has exactly i trailing one bits, i.e. a 2^-(i+1)
// slice of the hash space; the last component receives everything with
// at least c-1 trailing ones (a 2^-(c-1) slice). At estimation time the
// coarsest usable ("base") component is located and the linear-counting
// estimates of components base..c-1 are summed and rescaled by 2^base.
//
// The zero value is unusable; construct with NewMultiRes.
type MultiRes struct {
	comps  []*Direct
	nbits  int
	levels int
}

// NewMultiRes returns a multi-resolution bitmap with the given number of
// components ("levels"), each holding nbits bits. Inserting costs one
// bitmap write regardless of parameters.
func NewMultiRes(nbits, levels int) *MultiRes {
	if levels < 2 {
		panic("bitmap: MultiRes needs at least 2 levels")
	}
	m := &MultiRes{
		comps:  make([]*Direct, levels),
		nbits:  nbits,
		levels: levels,
	}
	for i := range m.comps {
		m.comps[i] = NewDirect(nbits)
	}
	return m
}

// DefaultMultiRes returns a counter dimensioned for the monitoring
// pipeline: counting errors around 1% for cardinalities from tens to a
// few million, matching the dimensioning described in §3.2.1.
func DefaultMultiRes() *MultiRes { return NewMultiRes(4096, 16) }

// level returns the component index for hash h.
func (m *MultiRes) level(h uint64) int {
	tz := bits.TrailingZeros64(^h) // number of trailing one bits in h
	if tz >= m.levels-1 {
		return m.levels - 1
	}
	return tz
}

// Insert records the item identified by hash h.
func (m *MultiRes) Insert(h uint64) {
	lv := m.level(h)
	// The bits that chose the level are no longer uniform; index the
	// component with the remaining high bits.
	m.comps[lv].Insert(h >> uint(lv+1))
}

// Estimate returns the estimated number of distinct items inserted.
func (m *MultiRes) Estimate() float64 {
	base := 0
	for base < m.levels-1 {
		fill := float64(m.comps[base].Ones()) / float64(m.comps[base].Size())
		if fill <= saturationFill {
			break
		}
		base++
	}
	var sum float64
	for i := base; i < m.levels; i++ {
		sum += m.comps[i].Estimate()
	}
	return sum * math.Pow(2, float64(base))
}

// Reset clears every component.
func (m *MultiRes) Reset() {
	for _, c := range m.comps {
		c.Reset()
	}
}

// MergeFrom ORs another multi-resolution bitmap with identical geometry
// into m; the result counts the union of the two insert streams. It
// panics if the geometries differ.
func (m *MultiRes) MergeFrom(o *MultiRes) {
	if m.nbits != o.nbits || m.levels != o.levels {
		panic("bitmap: merging MultiRes bitmaps with different geometry")
	}
	for i := range m.comps {
		m.comps[i].MergeFrom(o.comps[i])
	}
}

// MemoryBytes returns the memory footprint of the bitmap payload.
func (m *MultiRes) MemoryBytes() int {
	return m.levels * m.nbits / 8
}
