// Package sampling implements the load shedding mechanisms of thesis
// §4.2: uniform packet sampling and hash-based flow sampling (Flowwise,
// [43]) with a fresh H3 function drawn every measurement interval to
// prevent bias and deliberate evasion.
package sampling

import (
	"repro/internal/hash"
	"repro/internal/pkt"
)

// Method identifies how excess load is shed for a query (Table 2.2).
type Method int

const (
	// None disables shedding for the query.
	None Method = iota
	// Packet selects individual packets with probability equal to the
	// sampling rate.
	Packet
	// Flow selects entire 5-tuple flows with probability equal to the
	// sampling rate (Flowwise hash-based selection).
	Flow
	// Custom delegates shedding to the query itself (Chapter 6).
	Custom
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case None:
		return "none"
	case Packet:
		return "packet"
	case Flow:
		return "flow"
	case Custom:
		return "custom"
	default:
		return "unknown"
	}
}

// PacketSampler selects packets independently with the requested
// probability. The zero value is unusable; construct with
// NewPacketSampler.
type PacketSampler struct {
	rng *hash.XorShift
}

// NewPacketSampler returns a sampler seeded deterministically.
func NewPacketSampler(seed uint64) *PacketSampler {
	return &PacketSampler{rng: hash.NewXorShift(seed)}
}

// State returns the sampler's RNG state for a checkpoint.
func (s *PacketSampler) State() uint64 { return s.rng.State() }

// SetState restores a state returned by State: the sampler then makes
// the identical selection sequence a never-checkpointed one would.
func (s *PacketSampler) SetState(st uint64) { s.rng.SetState(st) }

// Sample returns the packets of b selected with probability rate. A
// rate >= 1 returns the input slice itself (no copy — shedding nothing
// is free), so the result may alias the caller's batch; consistent with
// the trace.Source ownership contract, treat both as read-only. A rate
// <= 0 selects nothing. Use SampleInto on the hot path to avoid the
// per-call allocation.
func (s *PacketSampler) Sample(pkts []pkt.Packet, rate float64) []pkt.Packet {
	if rate >= 1 {
		return pkts
	}
	if rate <= 0 {
		return nil
	}
	return s.SampleInto(make([]pkt.Packet, 0, int(float64(len(pkts))*rate)+1), pkts, rate)
}

// SampleInto is Sample writing the selection into dst (truncated, grown
// only when capacity runs out) — the allocation-free form for callers
// that own a per-sampler scratch slice. The RNG draw sequence, and
// therefore the selection, is identical to Sample's: one draw per input
// packet when 0 < rate < 1, none otherwise. A rate >= 1 returns the
// input slice itself, bypassing dst.
func (s *PacketSampler) SampleInto(dst []pkt.Packet, pkts []pkt.Packet, rate float64) []pkt.Packet {
	if rate >= 1 {
		return pkts
	}
	dst = dst[:0]
	if rate <= 0 {
		return dst
	}
	for i := range pkts {
		if s.rng.Float64() < rate {
			dst = append(dst, pkts[i])
		}
	}
	return dst
}

// FlowSampler implements Flowwise sampling: a packet is selected when
// the H3 hash of its 5-tuple, mapped to [0,1), falls below the sampling
// rate, so whole flows are kept or dropped together without caching any
// per-flow state. StartInterval draws a fresh hash function, as §4.2
// prescribes, once per measurement interval.
type FlowSampler struct {
	seed     uint64
	interval uint64
	h        *hash.H3
}

// NewFlowSampler returns a flow sampler; call StartInterval before the
// first use of each measurement interval.
func NewFlowSampler(seed uint64) *FlowSampler {
	fs := &FlowSampler{seed: seed}
	fs.StartInterval()
	return fs
}

// StartInterval re-draws the hash function for a new measurement
// interval, reseeding the existing table in place.
func (s *FlowSampler) StartInterval() {
	s.interval++
	if s.h == nil {
		s.h = new(hash.H3)
	}
	s.h.Reseed(s.seed + s.interval*0x9e3779b97f4a7c15)
}

// Interval returns the interval counter a checkpoint must carry: the
// hash function is a pure function of (seed, interval), so the counter
// is the sampler's entire mutable state.
func (s *FlowSampler) Interval() uint64 { return s.interval }

// SetInterval restores a counter returned by Interval and re-derives
// the interval's hash function from it, so a restored sampler keeps or
// drops exactly the flows the original would have.
func (s *FlowSampler) SetInterval(interval uint64) {
	s.interval = interval
	if s.h == nil {
		s.h = new(hash.H3)
	}
	s.h.Reseed(s.seed + s.interval*0x9e3779b97f4a7c15)
}

// Keep reports whether the flow of p is selected at the given rate.
func (s *FlowSampler) Keep(p *pkt.Packet, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	k := p.FlowKey()
	return s.h.Unit(k[:]) < rate
}

// Sample returns the packets of b whose flows are selected at the given
// rate. Like PacketSampler.Sample, a rate >= 1 aliases the input slice;
// treat both as read-only. Use SampleInto on the hot path to avoid the
// per-call allocation.
func (s *FlowSampler) Sample(pkts []pkt.Packet, rate float64) []pkt.Packet {
	if rate >= 1 {
		return pkts
	}
	if rate <= 0 {
		return nil
	}
	return s.SampleInto(make([]pkt.Packet, 0, int(float64(len(pkts))*rate)+1), pkts, rate)
}

// SampleInto is Sample writing the selection into dst (truncated, grown
// only when capacity runs out) — the allocation-free form for callers
// that own a per-sampler scratch slice. Selection is hash-based and
// stateless per packet, so it is identical to Sample's. A rate >= 1
// returns the input slice itself, bypassing dst.
func (s *FlowSampler) SampleInto(dst []pkt.Packet, pkts []pkt.Packet, rate float64) []pkt.Packet {
	if rate >= 1 {
		return pkts
	}
	dst = dst[:0]
	if rate <= 0 {
		return dst
	}
	for i := range pkts {
		if s.Keep(&pkts[i], rate) {
			dst = append(dst, pkts[i])
		}
	}
	return dst
}
