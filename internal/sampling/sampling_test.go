package sampling

import (
	"math"
	"testing"
	"time"

	"repro/internal/pkt"
	"repro/internal/trace"
)

func genPackets(n int) []pkt.Packet {
	out := make([]pkt.Packet, n)
	for i := range out {
		out[i] = pkt.Packet{
			SrcIP:   uint32(i % 97),
			DstIP:   uint32(i % 13),
			SrcPort: uint16(i % 31),
			DstPort: 80,
			Proto:   pkt.ProtoTCP,
			Size:    100,
		}
	}
	return out
}

func TestMethodStrings(t *testing.T) {
	cases := map[Method]string{None: "none", Packet: "packet", Flow: "flow", Custom: "custom", Method(9): "unknown"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestPacketSampleRateOne(t *testing.T) {
	s := NewPacketSampler(1)
	in := genPackets(100)
	out := s.Sample(in, 1)
	if len(out) != 100 {
		t.Fatalf("rate 1 dropped packets: %d", len(out))
	}
}

func TestPacketSampleRateZero(t *testing.T) {
	s := NewPacketSampler(1)
	if out := s.Sample(genPackets(100), 0); out != nil {
		t.Fatalf("rate 0 kept %d packets", len(out))
	}
}

func TestPacketSampleUnbiased(t *testing.T) {
	s := NewPacketSampler(2)
	in := genPackets(200000)
	out := s.Sample(in, 0.3)
	frac := float64(len(out)) / float64(len(in))
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("sampled fraction = %v, want 0.3", frac)
	}
}

func TestPacketSampleDeterministic(t *testing.T) {
	a := NewPacketSampler(7)
	b := NewPacketSampler(7)
	in := genPackets(1000)
	oa := a.Sample(in, 0.5)
	ob := b.Sample(in, 0.5)
	if len(oa) != len(ob) {
		t.Fatal("same seed sampled differently")
	}
}

func TestFlowSampleKeepsWholeFlows(t *testing.T) {
	fs := NewFlowSampler(3)
	g := trace.NewGenerator(trace.Config{Seed: 1, Duration: 2 * time.Second, PacketsPerSec: 10000})
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		kept := map[pkt.FlowKey]bool{}
		dropped := map[pkt.FlowKey]bool{}
		out := fs.Sample(b.Pkts, 0.5)
		for i := range out {
			kept[out[i].FlowKey()] = true
		}
		for i := range b.Pkts {
			k := b.Pkts[i].FlowKey()
			if !kept[k] {
				dropped[k] = true
			}
		}
		for k := range kept {
			if dropped[k] {
				t.Fatalf("flow %v partially sampled", k)
			}
		}
	}
}

func TestFlowSampleRateProportionOfFlows(t *testing.T) {
	fs := NewFlowSampler(5)
	// 10000 single-packet flows.
	in := make([]pkt.Packet, 10000)
	for i := range in {
		in[i] = pkt.Packet{SrcIP: uint32(i), DstIP: 1, SrcPort: uint16(i), DstPort: 80, Proto: pkt.ProtoTCP}
	}
	out := fs.Sample(in, 0.25)
	frac := float64(len(out)) / float64(len(in))
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("flow-sampled fraction = %v, want 0.25", frac)
	}
}

func TestFlowSamplerIntervalRedraw(t *testing.T) {
	fs := NewFlowSampler(9)
	in := genPackets(5000)
	before := len(fs.Sample(in, 0.5))
	fs.StartInterval()
	after := len(fs.Sample(in, 0.5))
	// A redrawn hash function must make different selections: identical
	// counts for every flow set would be astronomically unlikely, but we
	// compare membership to be explicit.
	if before == after {
		same := true
		a := fs.Sample(in, 0.5)
		fs.StartInterval()
		b := fs.Sample(in, 0.5)
		if len(a) != len(b) {
			same = false
		} else {
			for i := range a {
				if a[i].SrcIP != b[i].SrcIP {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("hash function not redrawn across intervals")
		}
	}
}

func TestFlowSampleEdgeRates(t *testing.T) {
	fs := NewFlowSampler(11)
	in := genPackets(50)
	if got := fs.Sample(in, 1); len(got) != 50 {
		t.Fatal("rate 1 must keep everything")
	}
	if got := fs.Sample(in, 0); got != nil {
		t.Fatal("rate 0 must drop everything")
	}
	p := in[0]
	if !fs.Keep(&p, 1) {
		t.Fatal("Keep(rate=1) = false")
	}
	if fs.Keep(&p, 0) {
		t.Fatal("Keep(rate=0) = true")
	}
}

// TestSampleAliasesInputAtFullRate pins the ownership semantics the
// trace.Source contract documents: at rate >= 1 both samplers return
// the input slice itself (no copy), so callers must treat the result —
// and the input — as read-only. If this ever changes to a copy, the
// contract note on Sample and on trace.Source must change with it.
func TestSampleAliasesInputAtFullRate(t *testing.T) {
	in := genPackets(32)
	ps := NewPacketSampler(1)
	if got := ps.Sample(in, 1); len(got) != len(in) || &got[0] != &in[0] {
		t.Fatal("PacketSampler.Sample(rate>=1) must return the input slice unchanged")
	}
	fs := NewFlowSampler(2)
	if got := fs.Sample(in, 1.5); len(got) != len(in) || &got[0] != &in[0] {
		t.Fatal("FlowSampler.Sample(rate>=1) must return the input slice unchanged")
	}
	// Below full rate the result must NOT alias the input's backing
	// array, so a query mutating nothing can still re-slice freely.
	if got := ps.Sample(in, 0.5); len(got) > 0 && &got[0] == &in[0] {
		t.Fatal("sampled output aliases the input slice head")
	}
}

func BenchmarkFlowSample(b *testing.B) {
	fs := NewFlowSampler(1)
	in := genPackets(2500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs.Sample(in, 0.5)
	}
}

// TestSampleIntoZeroAllocSteadyState is the PR 5 allocation guard for
// the samplers: with a warmed caller-owned scratch, SampleInto must not
// allocate, and it must select exactly the packets Sample does.
func TestSampleIntoZeroAllocSteadyState(t *testing.T) {
	pkts := genPackets(4096)
	ps := NewPacketSampler(5)
	var dst []pkt.Packet
	dst = ps.SampleInto(dst, pkts, 0.4) // warm up the scratch
	allocs := testing.AllocsPerRun(20, func() {
		dst = ps.SampleInto(dst, pkts, 0.4)
	})
	if allocs != 0 {
		t.Fatalf("PacketSampler.SampleInto steady-state allocations = %v, want 0", allocs)
	}

	fs := NewFlowSampler(5)
	var fdst []pkt.Packet
	fdst = fs.SampleInto(fdst, pkts, 0.4)
	allocs = testing.AllocsPerRun(20, func() {
		fdst = fs.SampleInto(fdst, pkts, 0.4)
	})
	if allocs != 0 {
		t.Fatalf("FlowSampler.SampleInto steady-state allocations = %v, want 0", allocs)
	}
}

// TestSampleIntoMatchesSample pins the equivalence contract: same RNG
// stream, same selection.
func TestSampleIntoMatchesSample(t *testing.T) {
	pkts := genPackets(2048)
	for _, rate := range []float64{-0.1, 0, 0.25, 0.7, 1, 1.5} {
		a, b := NewPacketSampler(9), NewPacketSampler(9)
		var dst []pkt.Packet
		for round := 0; round < 3; round++ {
			want := a.Sample(pkts, rate)
			dst = b.SampleInto(dst, pkts, rate)
			if len(want) != len(dst) {
				t.Fatalf("rate %v round %d: lengths %d vs %d", rate, round, len(want), len(dst))
			}
			for i := range want {
				if want[i].SrcIP != dst[i].SrcIP || want[i].DstIP != dst[i].DstIP ||
					want[i].SrcPort != dst[i].SrcPort || want[i].Ts != dst[i].Ts {
					t.Fatalf("rate %v round %d: packet %d differs", rate, round, i)
				}
			}
		}
		fa, fb := NewFlowSampler(9), NewFlowSampler(9)
		want := fa.Sample(pkts, rate)
		dst = fb.SampleInto(dst, pkts, rate)
		if len(want) != len(dst) {
			t.Fatalf("flow rate %v: lengths %d vs %d", rate, len(want), len(dst))
		}
	}
}
