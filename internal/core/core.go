// Package core implements the decision logic of the predictive load
// shedding scheme (thesis Chapter 4, Algorithm 1): when to shed load,
// how much to shed, the EWMA corrections for prediction error and
// shedding overhead, and the TCP-slow-start-style buffer discovery that
// lets the system safely exceed its per-bin cycle budget while buffers
// absorb the delay.
package core

import "math"

// EWMAWeight is the weight α used for the error and overhead averages;
// the thesis sets it to 0.9 "to quickly react to changes" (§4.3).
const EWMAWeight = 0.9

// Governor tracks the controller state of Algorithm 1 across time bins.
// It is deliberately free of any knowledge about queries or traffic: it
// consumes aggregate cycle numbers and produces a shedding decision.
//
// The zero value is unusable; construct with NewGovernor.
type Governor struct {
	capacity float64 // cycles per time bin (time_bin × CPU frequency)

	errEWMA float64 // êrror — EWMA of past positive prediction error
	lsEWMA  float64 // l̂s_cycles — EWMA of load shedding overhead
	delay   float64 // cycles the system currently lags real time
	rtt     float64 // rtthresh — discovered safe delay budget
	ssthr   float64 // slow-start threshold (∞ until first loss)

	rttStep float64 // growth quantum for rtthresh
	rttCap  float64 // upper bound for rtthresh
}

// NewGovernor returns a governor for a system with the given per-bin
// cycle capacity.
func NewGovernor(capacity float64) *Governor {
	return &Governor{
		capacity: capacity,
		ssthr:    math.Inf(1),
		rttStep:  capacity * 0.01,
		rttCap:   capacity * 2,
	}
}

// Capacity returns the per-bin cycle budget.
func (g *Governor) Capacity() float64 { return g.capacity }

// SetCapacity changes the per-bin cycle budget (used by experiments
// that sweep the overload level K).
func (g *Governor) SetCapacity(c float64) {
	g.capacity = c
	g.rttStep = c * 0.01
	g.rttCap = c * 2
}

// SetRTTCap bounds the buffer-discovery threshold. The monitoring
// system sets it from the capture-buffer size so the discovered delay
// allowance can never walk the system into its drop region.
func (g *Governor) SetRTTCap(cycles float64) {
	if cycles < g.rttStep {
		cycles = g.rttStep
	}
	g.rttCap = cycles
	if g.rtt > g.rttCap {
		g.rtt = g.rttCap
	}
}

// State is the complete controller state of a Governor, exported so a
// monitor can be checkpointed and restored mid-deployment (shard drain/
// rebalance). Every field of Algorithm 1's controller is here: dropping
// any of them (delay and rtt especially, which carry across measurement
// intervals) would make a restored shard diverge from one that never
// restarted.
type State struct {
	Capacity float64
	ErrEWMA  float64
	LsEWMA   float64
	Delay    float64
	RTT      float64
	SSThr    float64
	RTTStep  float64
	RTTCap   float64
}

// Snapshot captures the controller state.
func (g *Governor) Snapshot() State {
	return State{
		Capacity: g.capacity,
		ErrEWMA:  g.errEWMA,
		LsEWMA:   g.lsEWMA,
		Delay:    g.delay,
		RTT:      g.rtt,
		SSThr:    g.ssthr,
		RTTStep:  g.rttStep,
		RTTCap:   g.rttCap,
	}
}

// Restore overwrites the controller with a state captured by Snapshot.
func (g *Governor) Restore(st State) {
	g.capacity = st.Capacity
	g.errEWMA = st.ErrEWMA
	g.lsEWMA = st.LsEWMA
	g.delay = st.Delay
	g.rtt = st.RTT
	g.ssthr = st.SSThr
	g.rttStep = st.RTTStep
	g.rttCap = st.RTTCap
}

// Err returns the current prediction-error EWMA êrror.
func (g *Governor) Err() float64 { return g.errEWMA }

// ShedOverhead returns the current shedding-overhead EWMA l̂s_cycles.
func (g *Governor) ShedOverhead() float64 { return g.lsEWMA }

// Delay returns the accumulated delay in cycles.
func (g *Governor) Delay() float64 { return g.delay }

// RTThresh returns the discovered safe-delay threshold.
func (g *Governor) RTThresh() float64 { return g.rtt }

// Avail computes the cycles available for query processing this bin
// (Algorithm 1, line 7): capacity minus platform and prediction
// overhead, corrected by the buffer-discovery allowance rtthresh minus
// the current delay.
func (g *Governor) Avail(overhead float64) float64 {
	return g.capacity - overhead + (g.rtt - g.delay)
}

// NeedShed reports whether load shedding is required (line 8): the
// error-inflated prediction exceeds the available cycles.
func (g *Governor) NeedShed(avail, predicted float64) bool {
	return avail < predicted*(1+g.errEWMA)
}

// Rate computes the global sampling rate (line 9): the fraction of the
// error-inflated predicted load that fits in the available cycles after
// reserving the shedding overhead.
func (g *Governor) Rate(avail, predicted float64) float64 {
	if predicted <= 0 {
		return 1
	}
	r := (avail - g.lsEWMA) / (predicted * (1 + g.errEWMA))
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// QueryBudget returns the cycle budget a per-query strategy (Chapter 5)
// may distribute: the available cycles minus the shedding overhead,
// deflated by the prediction-error margin.
func (g *Governor) QueryBudget(avail float64) float64 {
	b := (avail - g.lsEWMA) / (1 + g.errEWMA)
	if b < 0 {
		return 0
	}
	return b
}

// Feedback carries one bin's measurements back into the governor.
type Feedback struct {
	Predicted   float64 // Σ predicted query cycles at full rate
	AllocCycles float64 // Σ predicted query cycles at the applied rates
	UsedCycles  float64 // Σ cycles actually consumed by queries
	ShedCycles  float64 // cycles spent sampling and re-extracting features
	Overhead    float64 // platform + prediction subsystem cycles
	QueryAvail  float64 // the Avail() value used for the decision
	BufferLoss  bool    // capture buffer exceeded its occupancy limit
}

// Observe folds a bin's measurements into the controller state:
// prediction-error EWMA (line 17), shedding-overhead EWMA (line 13),
// the running delay, and the buffer-discovery threshold (§4.1).
func (g *Governor) Observe(fb Feedback) {
	// Prediction error: only under-prediction is dangerous, hence the
	// max(0, ·) — over-prediction wastes a little capacity but cannot
	// overflow buffers.
	// A bin where nothing was allocated (full shed) carries no signal
	// about prediction quality — the residual cost is the fixed
	// per-batch overhead, not a prediction miss.
	if fb.UsedCycles > 0 && fb.AllocCycles > 0 {
		instErr := math.Max(0, 1-fb.AllocCycles/fb.UsedCycles)
		g.errEWMA = EWMAWeight*instErr + (1-EWMAWeight)*g.errEWMA
	}
	g.lsEWMA = EWMAWeight*fb.ShedCycles + (1-EWMAWeight)*g.lsEWMA

	total := fb.Overhead + fb.ShedCycles + fb.UsedCycles
	g.delay = math.Max(0, g.delay+total-g.capacity)

	switch {
	case fb.BufferLoss:
		// Loss: back off like TCP — remember half the current threshold
		// and restart discovery from zero.
		g.ssthr = g.rtt / 2
		g.rtt = 0
	case fb.UsedCycles < fb.QueryAvail:
		// Queries left cycles on the table: the system can afford more
		// delay. Exponential growth below ssthr, linear above.
		if g.rtt < g.ssthr {
			g.rtt = math.Max(g.rttStep, 2*g.rtt)
		} else {
			g.rtt += g.rttStep
		}
		if g.rtt > g.rttCap {
			g.rtt = g.rttCap
		}
	}
}

// DrainDrop removes cycles of pending work from the delay accounting
// when packets are dropped before processing (their work will never
// happen).
func (g *Governor) DrainDrop(cycles float64) {
	g.delay = math.Max(0, g.delay-cycles)
}
