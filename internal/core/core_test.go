package core

import (
	"math"
	"testing"
)

func TestAvailBasic(t *testing.T) {
	g := NewGovernor(1000)
	if got := g.Avail(100); got != 900 {
		t.Fatalf("Avail = %v, want 900", got)
	}
}

func TestNeedShed(t *testing.T) {
	g := NewGovernor(1000)
	if g.NeedShed(900, 800) {
		t.Fatal("no shedding needed when prediction fits")
	}
	if !g.NeedShed(900, 1000) {
		t.Fatal("shedding needed when prediction exceeds avail")
	}
}

func TestNeedShedInflatesByError(t *testing.T) {
	g := NewGovernor(1000)
	// Teach the governor a 25% under-prediction: alloc 800, used 1067.
	g.Observe(Feedback{AllocCycles: 800, UsedCycles: 1066.67, QueryAvail: 900})
	if g.Err() <= 0.2 {
		t.Fatalf("error EWMA = %v, want > 0.2", g.Err())
	}
	// Prediction 800 fits raw availability 900 but not with the margin.
	if !g.NeedShed(900, 800) {
		t.Fatal("error margin ignored")
	}
}

func TestRateClamped(t *testing.T) {
	g := NewGovernor(1000)
	if got := g.Rate(500, 1000); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("rate = %v, want 0.5", got)
	}
	if got := g.Rate(-100, 1000); got != 0 {
		t.Fatalf("negative avail rate = %v, want 0", got)
	}
	if got := g.Rate(5000, 1000); got != 1 {
		t.Fatalf("ample avail rate = %v, want 1", got)
	}
	if got := g.Rate(100, 0); got != 1 {
		t.Fatalf("zero prediction rate = %v, want 1", got)
	}
}

func TestRateReservesShedOverhead(t *testing.T) {
	g := NewGovernor(1000)
	for i := 0; i < 50; i++ {
		g.Observe(Feedback{ShedCycles: 100, UsedCycles: 500, AllocCycles: 500, QueryAvail: 0})
	}
	if math.Abs(g.ShedOverhead()-100) > 1 {
		t.Fatalf("shed overhead EWMA = %v, want ~100", g.ShedOverhead())
	}
	// avail 600, pred 1000: rate = (600-100)/1000 = 0.5.
	if got := g.Rate(600, 1000); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("rate = %v, want ~0.5", got)
	}
}

func TestDelayAccumulatesAndDrains(t *testing.T) {
	g := NewGovernor(1000)
	g.Observe(Feedback{UsedCycles: 1500, QueryAvail: 1000}) // 500 over
	if math.Abs(g.Delay()-500) > 1e-9 {
		t.Fatalf("delay = %v, want 500", g.Delay())
	}
	g.Observe(Feedback{UsedCycles: 700, QueryAvail: 1000}) // 300 under
	if math.Abs(g.Delay()-200) > 1e-9 {
		t.Fatalf("delay = %v, want 200", g.Delay())
	}
	g.Observe(Feedback{UsedCycles: 0, QueryAvail: 1000})
	if g.Delay() != 0 {
		t.Fatalf("delay = %v, want 0 (never negative)", g.Delay())
	}
}

func TestDelayReducesAvail(t *testing.T) {
	g := NewGovernor(1000)
	g.Observe(Feedback{UsedCycles: 1400, QueryAvail: 1500}) // delay 400, rtt grows
	avail := g.Avail(0)
	if avail >= 1000 {
		t.Fatalf("avail = %v, should be cut by delay", avail)
	}
}

func TestRTThreshSlowStart(t *testing.T) {
	g := NewGovernor(1000)
	// Repeated underuse grows rtthresh exponentially from the step.
	g.Observe(Feedback{UsedCycles: 100, QueryAvail: 900})
	first := g.RTThresh()
	if first != 10 { // 1% of capacity
		t.Fatalf("first rtthresh = %v, want 10", first)
	}
	g.Observe(Feedback{UsedCycles: 100, QueryAvail: 900})
	if g.RTThresh() != 20 {
		t.Fatalf("rtthresh = %v, want doubled to 20", g.RTThresh())
	}
}

func TestRTThreshBackoffOnLoss(t *testing.T) {
	g := NewGovernor(1000)
	for i := 0; i < 6; i++ {
		g.Observe(Feedback{UsedCycles: 100, QueryAvail: 900})
	}
	grown := g.RTThresh()
	if grown <= 100 {
		t.Fatalf("rtthresh did not grow: %v", grown)
	}
	g.Observe(Feedback{UsedCycles: 100, QueryAvail: 900, BufferLoss: true})
	if g.RTThresh() != 0 {
		t.Fatalf("rtthresh = %v after loss, want 0", g.RTThresh())
	}
	// Growth resumes exponentially until ssthr = grown/2, then linearly.
	prev := 0.0
	for i := 0; i < 30; i++ {
		g.Observe(Feedback{UsedCycles: 100, QueryAvail: 900})
		cur := g.RTThresh()
		if cur > grown/2 && cur-prev > 10+1e-9 {
			t.Fatalf("growth above ssthr should be linear: %v -> %v", prev, cur)
		}
		prev = cur
	}
}

func TestRTThreshCapped(t *testing.T) {
	g := NewGovernor(1000)
	for i := 0; i < 1000; i++ {
		g.Observe(Feedback{UsedCycles: 100, QueryAvail: 900})
	}
	if g.RTThresh() > 2000 {
		t.Fatalf("rtthresh = %v exceeds the 2x-capacity default cap", g.RTThresh())
	}
}

func TestSetRTTCap(t *testing.T) {
	g := NewGovernor(1000)
	for i := 0; i < 100; i++ {
		g.Observe(Feedback{UsedCycles: 100, QueryAvail: 900})
	}
	g.SetRTTCap(500)
	if g.RTThresh() > 500 {
		t.Fatalf("SetRTTCap did not clamp current rtthresh: %v", g.RTThresh())
	}
	for i := 0; i < 100; i++ {
		g.Observe(Feedback{UsedCycles: 100, QueryAvail: 900})
	}
	if g.RTThresh() > 500 {
		t.Fatalf("rtthresh grew past the configured cap: %v", g.RTThresh())
	}
	// A cap below the growth step is floored at the step.
	g.SetRTTCap(1)
	if g.RTThresh() > 10 {
		t.Fatalf("rtthresh = %v, want <= step", g.RTThresh())
	}
}

func TestQueryBudget(t *testing.T) {
	g := NewGovernor(1000)
	if got := g.QueryBudget(500); got != 500 {
		t.Fatalf("budget = %v, want 500 with zero error/overhead", got)
	}
	if got := g.QueryBudget(-10); got != 0 {
		t.Fatalf("budget = %v, want 0 for negative avail", got)
	}
}

func TestDrainDrop(t *testing.T) {
	g := NewGovernor(1000)
	g.Observe(Feedback{UsedCycles: 2000, QueryAvail: 1000})
	g.DrainDrop(500)
	if math.Abs(g.Delay()-500) > 1e-9 {
		t.Fatalf("delay = %v, want 500", g.Delay())
	}
	g.DrainDrop(1e9)
	if g.Delay() != 0 {
		t.Fatal("DrainDrop went negative")
	}
}

func TestSetCapacity(t *testing.T) {
	g := NewGovernor(1000)
	g.SetCapacity(2000)
	if g.Capacity() != 2000 {
		t.Fatal("SetCapacity did not apply")
	}
	if got := g.Avail(0); got != 2000 {
		t.Fatalf("Avail = %v after capacity change", got)
	}
}

func TestErrEWMADecays(t *testing.T) {
	g := NewGovernor(1000)
	g.Observe(Feedback{AllocCycles: 500, UsedCycles: 1000, QueryAvail: 0}) // 50% error
	peak := g.Err()
	for i := 0; i < 50; i++ {
		g.Observe(Feedback{AllocCycles: 1000, UsedCycles: 1000, QueryAvail: 0})
	}
	if g.Err() >= peak/10 {
		t.Fatalf("error EWMA did not decay: %v -> %v", peak, g.Err())
	}
}
