package custom

import "repro/internal/queries"

// ShedderQuery is a query that implements the custom shedding contract,
// the type the misbehaving wrappers below decorate.
type ShedderQuery interface {
	queries.Query
	Shedder
}

// Selfish wraps a custom-shedding query and silently ignores every shed
// request — the adversary of §6.3.4 that tries to keep its full share of
// the CPU. The enforcement policy must detect and police it.
type Selfish struct {
	ShedderQuery
}

// NewSelfish returns a selfish clone of q.
func NewSelfish(q ShedderQuery) *Selfish { return &Selfish{ShedderQuery: q} }

// Name implements queries.Query, marking the clone.
func (s *Selfish) Name() string { return s.ShedderQuery.Name() + "-selfish" }

// ShedTo implements Shedder by doing nothing: the query pretends to
// comply while continuing to process everything.
func (s *Selfish) ShedTo(float64) {}

// Buggy wraps a custom-shedding query whose shedding implementation is
// broken (§6.3.5): it sheds far less than asked, as an incorrectly
// implemented load shedding method would.
type Buggy struct {
	ShedderQuery
}

// NewBuggy returns a buggy clone of q.
func NewBuggy(q ShedderQuery) *Buggy { return &Buggy{ShedderQuery: q} }

// Name implements queries.Query, marking the clone.
func (b *Buggy) Name() string { return b.ShedderQuery.Name() + "-buggy" }

// ShedTo implements Shedder incorrectly: the requested fraction is
// inflated so the query sheds roughly a third of what it should.
func (b *Buggy) ShedTo(frac float64) {
	f := frac*0.7 + 0.3 // always keeps at least 30% effort too much
	if f > 1 {
		f = 1
	}
	b.ShedderQuery.ShedTo(f)
}
