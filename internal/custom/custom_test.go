package custom

import (
	"testing"

	"repro/internal/queries"
)

// fakeShedder records the fractions it was asked to shed to.
type fakeShedder struct {
	asked []float64
}

func (f *fakeShedder) ShedTo(frac float64) { f.asked = append(f.asked, frac) }

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{ModeCustom: "custom", ModePoliced: "policed", ModeDisabled: "disabled", Mode(9): "unknown"}
	for m, w := range want {
		if m.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), w)
		}
	}
}

func TestRegisterDefaults(t *testing.T) {
	m := NewManager(nil)
	st := m.Register("q", &fakeShedder{}, 0.1)
	if st.Mode() != ModeCustom || st.Frac() != 1 || st.Corr() != 1 {
		t.Fatalf("fresh state = mode %v frac %v corr %v", st.Mode(), st.Frac(), st.Corr())
	}
	if len(m.States()) != 1 || st.Name() != "q" {
		t.Fatal("registration bookkeeping wrong")
	}
}

func TestApplyForwardsFraction(t *testing.T) {
	m := NewManager(nil)
	sh := &fakeShedder{}
	st := m.Register("q", sh, 0.1)
	m.Apply(st, 0.4)
	if len(sh.asked) != 1 || sh.asked[0] != 0.4 {
		t.Fatalf("ShedTo calls = %v", sh.asked)
	}
	if st.Frac() != 0.4 {
		t.Fatalf("Frac = %v", st.Frac())
	}
}

func TestApplyClampsRate(t *testing.T) {
	m := NewManager(nil)
	sh := &fakeShedder{}
	st := m.Register("q", sh, 0.1)
	m.Apply(st, 2)
	if sh.asked[0] != 1 {
		t.Fatalf("rate not clamped: %v", sh.asked)
	}
	// A non-positive rate means "disabled this bin": no shed request is
	// forwarded because no traffic will be delivered.
	m.Apply(st, -0.5)
	if len(sh.asked) != 1 {
		t.Fatalf("disabled bin still forwarded a shed request: %v", sh.asked)
	}
	if st.Frac() != 1 {
		t.Fatalf("disabled bin changed the standing fraction: %v", st.Frac())
	}
}

func TestDemandInflatesByFraction(t *testing.T) {
	m := NewManager(nil)
	st := m.Register("q", &fakeShedder{}, 0.1)
	m.Apply(st, 0.5)
	if got := m.Demand(st, 100); got != 200 {
		t.Fatalf("Demand = %v, want 200", got)
	}
	// Floor at MinFrac to avoid blow-ups.
	m.Apply(st, 0.001)
	if got := m.Demand(st, 100); got > 100/DefaultPolicy().MinFrac+1 {
		t.Fatalf("Demand = %v, not floored", got)
	}
}

func TestCompliantQueryStaysCustom(t *testing.T) {
	// A genuinely compliant fake: its cost follows the requested
	// fraction (full cost 200 cycles), so both the audit and the
	// responsiveness probes stay satisfied.
	m := NewManager(nil)
	sh := &fakeShedder{}
	st := m.Register("q", sh, 0.1)
	const full = 200.0
	frac := 1.0
	for i := 0; i < 300; i++ {
		pred := full * frac // the model tracks the current regime
		m.Demand(st, pred)
		m.Apply(st, 0.5)
		frac = sh.asked[len(sh.asked)-1]
		m.Audit(st, full*frac*1.05, pred)
	}
	if st.Mode() != ModeCustom {
		t.Fatalf("compliant query escalated to %v", st.Mode())
	}
}

func TestProbeCatchesUnresponsiveQuery(t *testing.T) {
	// A selfish fake: cost stays at full no matter what was asked. The
	// responsiveness probe must police it even though its demand
	// inflation keeps the bin-wise audit ratios unsuspicious.
	m := NewManager(nil)
	st := m.Register("q", &fakeShedder{}, 0.1)
	const full = 200.0
	for i := 0; i < 300 && st.Mode() == ModeCustom; i++ {
		m.Demand(st, full) // model keeps seeing the full cost
		m.Apply(st, 0.5)
		m.Audit(st, full, full)
	}
	if st.Mode() == ModeCustom {
		t.Fatal("unresponsive query never policed")
	}
}

func TestSelfishQueryGetsPoliced(t *testing.T) {
	m := NewManager(nil)
	st := m.Register("q", &fakeShedder{}, 0.1)
	for i := 0; i < 50 && st.Mode() == ModeCustom; i++ {
		m.Demand(st, 100)
		m.Apply(st, 0.5)
		// Selfish: keeps using the full demand (200) despite alloc 100.
		m.Audit(st, 200, 100)
	}
	if st.Mode() != ModePoliced {
		t.Fatalf("selfish query not policed: %v after 50 bins", st.Mode())
	}
}

func TestPolicedEscalatesToDisabled(t *testing.T) {
	m := NewManager(nil)
	sh := &fakeShedder{}
	st := m.Register("q", sh, 0.1)
	for i := 0; i < 500 && st.Mode() != ModeDisabled; i++ {
		m.Demand(st, 100)
		m.Apply(st, 0.5)
		m.Audit(st, 300, 100)
	}
	if st.Mode() != ModeDisabled {
		t.Fatalf("persistent violator never disabled: %v", st.Mode())
	}
}

func TestDisabledReturnsToPolicedAfterPenalty(t *testing.T) {
	pol := DefaultPolicy()
	pol.PenaltyBins = 5
	m := NewManager(&pol)
	st := m.Register("q", &fakeShedder{}, 0.1)
	// Drive to disabled.
	for i := 0; i < 500 && st.Mode() != ModeDisabled; i++ {
		m.Demand(st, 100)
		m.Apply(st, 0.5)
		m.Audit(st, 300, 100)
	}
	if st.Mode() != ModeDisabled {
		t.Fatal("setup failed: not disabled")
	}
	for i := 0; i < 5; i++ {
		m.Audit(st, 0, 0) // penalty ticks
	}
	if st.Mode() != ModePoliced {
		t.Fatalf("penalty did not expire: %v", st.Mode())
	}
}

func TestPolicingResetsQueryShedding(t *testing.T) {
	m := NewManager(nil)
	sh := &fakeShedder{}
	st := m.Register("q", sh, 0.1)
	for i := 0; i < 50 && st.Mode() == ModeCustom; i++ {
		m.Demand(st, 100)
		m.Apply(st, 0.5)
		m.Audit(st, 300, 100)
	}
	if st.Mode() != ModePoliced {
		t.Fatal("setup failed")
	}
	// The last ShedTo call must be the reset to full effort.
	if last := sh.asked[len(sh.asked)-1]; last != 1 {
		t.Fatalf("policing did not reset internal shedding: last ShedTo(%v)", last)
	}
	// Apply in policed mode must not call ShedTo again.
	n := len(sh.asked)
	m.Apply(st, 0.3)
	if len(sh.asked) != n {
		t.Fatal("Apply still forwards to a policed query")
	}
}

func TestFullRateNeverViolates(t *testing.T) {
	m := NewManager(nil)
	st := m.Register("q", &fakeShedder{}, 0.1)
	for i := 0; i < 100; i++ {
		m.Demand(st, 100)
		m.Apply(st, 1.0)
		m.Audit(st, 500, 100) // way over, but nothing was shed
	}
	if st.Mode() != ModeCustom {
		t.Fatalf("query escalated at full rate: %v", st.Mode())
	}
}

func TestViolationsLeak(t *testing.T) {
	pol := DefaultPolicy()
	pol.ProbeInterval = 0 // isolate the leaky counter from probing
	m := NewManager(&pol)
	st := m.Register("q", &fakeShedder{}, 0.1)
	// Alternate one violation with one clean bin: the leaky counter
	// should never reach the limit.
	for i := 0; i < 100; i++ {
		m.Demand(st, 100)
		m.Apply(st, 0.5)
		if i%2 == 0 {
			m.Audit(st, 200, 100)
		} else {
			m.Audit(st, 100, 100)
		}
	}
	if st.Mode() != ModeCustom {
		t.Fatalf("alternating violations escalated: %v", st.Mode())
	}
}

func TestCorrTracksRatio(t *testing.T) {
	pol := DefaultPolicy()
	pol.ProbeInterval = 0 // keep the requested fraction steady
	m := NewManager(&pol)
	st := m.Register("q", &fakeShedder{}, 0.1)
	for i := 0; i < 300; i++ {
		m.Demand(st, 100)
		m.Apply(st, 0.5)
		m.Audit(st, 130, 100) // consistently 1.3x expected
	}
	if got := st.Corr(); got < 1.25 || got > 1.35 {
		t.Fatalf("correction factor = %v, want ~1.3", got)
	}
	if st.LastExpected != 100 || st.LastActual != 130 {
		t.Fatalf("audit pair = %v/%v", st.LastExpected, st.LastActual)
	}
}

func TestSelfishWrapperIgnoresShed(t *testing.T) {
	p2p := queries.NewP2PDetector(queries.Config{})
	s := NewSelfish(p2p)
	s.ShedTo(0.1)
	if p2p.InspectFraction() != 1 {
		t.Fatalf("selfish wrapper leaked ShedTo: frac=%v", p2p.InspectFraction())
	}
	if s.Name() != "p2p-detector-selfish" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestBuggyWrapperShedsTooLittle(t *testing.T) {
	p2p := queries.NewP2PDetector(queries.Config{})
	b := NewBuggy(p2p)
	b.ShedTo(0.2)
	if got := p2p.InspectFraction(); got < 0.4 {
		t.Fatalf("buggy wrapper shed too much: frac=%v", got)
	}
	b.ShedTo(1.0)
	if got := p2p.InspectFraction(); got != 1 {
		t.Fatalf("buggy wrapper at full rate: %v", got)
	}
	if b.Name() != "p2p-detector-buggy" {
		t.Fatalf("Name = %q", b.Name())
	}
}

func TestWrappersSatisfyShedderQuery(t *testing.T) {
	var _ ShedderQuery = NewSelfish(queries.NewP2PDetector(queries.Config{}))
	var _ ShedderQuery = NewBuggy(queries.NewP2PDetector(queries.Config{}))
}
