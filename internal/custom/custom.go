// Package custom implements the custom load shedding protocol of thesis
// Chapter 6: queries that are not robust to traffic sampling may shed
// excess load themselves, and the monitoring system audits their actual
// against expected resource consumption and polices the ones that shed
// too little — whether from inherent limitations, bugs, or malice.
//
// The enforcement ladder (§6.1.1) is:
//
//	ModeCustom  — the query sheds via ShedTo; the system audits.
//	ModePoliced — the query violated its allocation repeatedly; the
//	              system takes over and applies packet sampling.
//	ModeDisabled — continued violations; the query is suspended for a
//	              penalty period, then returns to ModePoliced.
package custom

// debugProbe prints probe evaluations; only ever set by tests.
var debugProbe = false

// Shedder is the contract a query implements to shed its own load: the
// system asks it to reduce consumption to the given fraction of its
// unshed cost.
type Shedder interface {
	ShedTo(frac float64)
}

// Mode is a query's position on the enforcement ladder.
type Mode int

// Enforcement modes.
const (
	ModeCustom Mode = iota
	ModePoliced
	ModeDisabled
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeCustom:
		return "custom"
	case ModePoliced:
		return "policed"
	case ModeDisabled:
		return "disabled"
	default:
		return "unknown"
	}
}

// Policy holds the enforcement tunables.
type Policy struct {
	// Tolerance is the allowed relative overuse before a bin counts as
	// a violation.
	Tolerance float64
	// ViolationLimit is the violation count that triggers escalation.
	ViolationLimit int
	// PenaltyBins is how long a disabled query stays suspended.
	PenaltyBins int
	// CorrAlpha is the EWMA weight of the actual/expected consumption
	// ratio (the correction factor of §6.1.2).
	CorrAlpha float64
	// MinFrac floors the demand inflation 1/frac for queries that do
	// not declare a minimum rate.
	MinFrac float64
	// ProbeInterval is how many shed bins pass between responsiveness
	// probes; 0 disables probing.
	ProbeInterval int
	// ProbeBins is how many active bins a probe holds its halved
	// request; query cost follows shed requests with a lag of a few
	// bins (inspection decisions bind at flow creation), so a one-bin
	// probe would flag every compliant query.
	ProbeBins int
	// ProbeFailLimit is how many consecutive failed probes trigger
	// policing.
	ProbeFailLimit int
}

// DefaultPolicy returns the enforcement settings used in the
// evaluation.
func DefaultPolicy() Policy {
	return Policy{
		Tolerance:      0.6,
		ViolationLimit: 10,
		PenaltyBins:    100,
		CorrAlpha:      0.1,
		MinFrac:        0.05,
		ProbeInterval:  30,
		ProbeBins:      8,
		ProbeFailLimit: 3,
	}
}

// State is the manager's per-query record.
type State struct {
	name    string
	shedder Shedder
	minFrac float64 // the query's minimum tolerable fraction (its m_q)

	mode       Mode
	frac       float64 // shed fraction currently requested from the query
	lastRate   float64 // rate the scheduler decided last bin
	lastFrac   float64 // fraction actually requested from the query
	lastDemand float64 // demand used for that decision
	corr       float64 // EWMA of actual/expected consumption
	violations int
	penalty    int // bins left in ModeDisabled

	// Responsiveness probe (see Audit): every ProbeInterval shed bins
	// the request is halved for ProbeBins active bins; a query whose
	// mean cost does not follow is not actually shedding.
	probeCountdown int
	probeLeft      int     // active probe bins remaining (0 = idle)
	probeApplied   bool    // the current bin ran at the probe fraction
	probeSum       float64 // Σ used over probe bins
	probeCnt       int
	baseEWMA       float64 // EWMA of used on active, non-probe bins
	baseSeeded     bool
	probeFails     int

	// LastExpected and LastActual expose the most recent audit pair,
	// the series plotted in Figure 6.3.
	LastExpected float64
	LastActual   float64
}

// Mode returns the query's enforcement mode.
func (st *State) Mode() Mode { return st.mode }

// Frac returns the shed fraction currently requested.
func (st *State) Frac() float64 { return st.frac }

// Corr returns the correction factor (EWMA of actual/expected).
func (st *State) Corr() float64 { return st.corr }

// Violations returns the current leaky violation count.
func (st *State) Violations() int { return st.violations }

// Name returns the registered query name.
func (st *State) Name() string { return st.name }

// Manager runs the custom shedding protocol for any number of queries.
type Manager struct {
	policy Policy
	states []*State
}

// NewManager returns a manager; a nil policy selects DefaultPolicy.
func NewManager(p *Policy) *Manager {
	pol := DefaultPolicy()
	if p != nil {
		pol = *p
	}
	return &Manager{policy: pol}
}

// Register adds a query to the protocol and returns its state handle.
// minRate is the query's minimum sampling rate m_q, which for a
// custom-shedding query bounds the effort fraction the system may
// request.
func (m *Manager) Register(name string, sh Shedder, minRate float64) *State {
	if minRate <= 0 || minRate > 1 {
		minRate = m.policy.MinFrac
	}
	st := &State{name: name, shedder: sh, minFrac: minRate, frac: 1, lastFrac: 1, corr: 1}
	m.states = append(m.states, st)
	return st
}

// States returns all registered states (for reporting).
func (m *Manager) States() []*State { return m.states }

// StartInterval ticks interval-grained bookkeeping; penalties are
// bin-grained and handled in Audit.
func (m *Manager) StartInterval() {}

// Demand converts the predictor's estimate — which reflects the query's
// *current* shed regime — into the full-effort demand the scheduler
// needs, by inflating with the inverse shed fraction (§6.1.2). Outside
// custom mode the query is shed by sampling, so the prediction already
// is the demand.
func (m *Manager) Demand(st *State, pred float64) float64 {
	if st.mode != ModeCustom {
		st.lastDemand = pred
		return pred
	}
	f := st.frac
	if f < st.minFrac {
		f = st.minFrac
	}
	d := pred / f
	st.lastDemand = d
	return d
}

// Apply executes the scheduler's decision for a custom-shedding query:
// the allocated rate becomes the requested shed fraction, floored at
// the query's minimum (cost assumed proportional to effort; the next
// bin's audit corrects the residual). A zero rate means the scheduler
// disabled the query for this batch; no shed request is made because no
// traffic will be delivered.
func (m *Manager) Apply(st *State, rate float64) {
	st.lastRate = rate
	if st.mode != ModeCustom {
		return
	}
	if rate <= 0 {
		st.lastFrac = 0
		st.probeApplied = false
		return
	}
	if rate > 1 {
		rate = 1
	}
	target := rate
	if target < st.minFrac {
		target = st.minFrac
	}
	// Shed immediately but recover gradually: the prediction model
	// cannot observe the effort fraction, so a slowly varying fraction
	// keeps the query's cost regime quasi-stationary and predictable.
	if target < st.frac {
		st.frac = target
	} else {
		st.frac += 0.15 * (target - st.frac)
	}
	ask := st.frac
	st.probeApplied = false
	if st.probeLeft > 0 {
		// Responsiveness probe: halve the request while the probe holds.
		ask = st.frac / 2
		if ask < 0.05 {
			ask = 0.05
		}
		st.probeApplied = true
	}
	st.lastFrac = ask
	st.shedder.ShedTo(ask)
}

// Audit compares the query's measured consumption against what its
// allocation permitted, updates the correction factor, and walks the
// enforcement ladder on repeated violations.
func (m *Manager) Audit(st *State, used, pred float64) {
	// Penalty countdown for disabled queries.
	if st.mode == ModeDisabled {
		st.penalty--
		if st.penalty <= 0 {
			st.mode = ModePoliced
			st.violations = 0
		}
		return
	}

	// Responsiveness probe accounting. On active non-probe bins the
	// query's consumption feeds a baseline EWMA; during a probe the
	// consumption is accumulated; when the probe completes, the mean
	// probe-period consumption is compared against the baseline. A
	// compliant query asked to halve its effort lands well below the
	// baseline (with a few bins of lag); one that ignores shed requests
	// stays at it.
	switch {
	case st.probeApplied:
		st.probeSum += used
		st.probeCnt++
		st.probeLeft--
		if st.probeLeft == 0 && st.probeCnt > 0 && st.baseSeeded && st.baseEWMA > 0 {
			response := (st.probeSum / float64(st.probeCnt)) / st.baseEWMA
			if debugProbe {
				println("probe", st.name, "resp%", int(response*100), "fails", st.probeFails)
			}
			st.probeSum, st.probeCnt = 0, 0
			if response > 0.85 {
				st.probeFails++
			} else {
				st.probeFails = 0
			}
			if m.policy.ProbeFailLimit > 0 && st.probeFails >= m.policy.ProbeFailLimit {
				st.probeFails = 0
				st.mode = ModePoliced
				st.frac = 1
				st.shedder.ShedTo(1)
				return
			}
		}
	case st.lastRate > 0 && st.probeLeft == 0:
		if st.baseSeeded {
			st.baseEWMA = 0.2*used + 0.8*st.baseEWMA
		} else {
			st.baseEWMA = used
			st.baseSeeded = true
		}
		if m.policy.ProbeInterval > 0 && st.lastFrac < 0.9 && st.mode == ModeCustom {
			st.probeCountdown++
			if st.probeCountdown >= m.policy.ProbeInterval {
				st.probeCountdown = 0
				st.probeLeft = m.policy.ProbeBins
				st.probeSum, st.probeCnt = 0, 0
			}
		}
	case st.lastRate <= 0 && st.probeLeft == 0 && m.policy.ProbeInterval > 0 && st.mode == ModeCustom:
		// Starved queries still accumulate toward a probe, so a query
		// that only gets occasional grants is probed on the very bins
		// it would binge on.
		st.probeCountdown++
		if st.probeCountdown >= m.policy.ProbeInterval {
			st.probeCountdown = 0
			st.probeLeft = m.policy.ProbeBins
			st.probeSum, st.probeCnt = 0, 0
		}
	}

	// Expected consumption: the fraction actually requested times the
	// demand estimate. A disabled bin (lastRate 0) delivers no traffic
	// and expects only residual cost.
	expected := st.lastFrac * st.lastDemand
	if st.mode == ModePoliced {
		expected = st.lastRate * st.lastDemand // enforced sampling
	}
	st.LastExpected = expected
	st.LastActual = used
	if expected > 0 {
		ratio := used / expected
		st.corr = m.policy.CorrAlpha*ratio + (1-m.policy.CorrAlpha)*st.corr
	}

	// Violations only matter when the system actually asked for
	// shedding: at full effort there is nothing to evade. The small
	// absolute floor keeps a query whose allocation collapsed (tiny
	// expected) from being unscorable.
	sheddingAsked := st.lastRate > 0 && st.lastFrac < 0.95
	if st.mode == ModePoliced {
		sheddingAsked = st.lastRate > 0 && st.lastRate < 0.95
	}
	allowance := expected*(1+m.policy.Tolerance) + 0.02*st.lastDemand
	if sheddingAsked && st.lastDemand > 0 && used > allowance {
		st.violations++
	} else {
		// Clean bins leak violations away twice as fast as dirty bins
		// accumulate them, so prediction lag around rate transitions
		// cannot slowly walk a compliant query into policing.
		st.violations -= 2
		if st.violations < 0 {
			st.violations = 0
		}
	}
	if st.violations >= m.policy.ViolationLimit {
		st.violations = 0
		switch st.mode {
		case ModeCustom:
			// Take shedding away from the query: reset its internal
			// shedding and fall back to enforced packet sampling.
			st.mode = ModePoliced
			st.frac = 1
			st.shedder.ShedTo(1)
		case ModePoliced:
			st.mode = ModeDisabled
			st.penalty = m.policy.PenaltyBins
		}
	}
}

// SetDebugProbe toggles probe-evaluation logging (test helper).
func SetDebugProbe(v bool) { debugProbe = v }
