// Package pkt defines the packet, flow-key and batch types that flow
// through the monitoring pipeline, mirroring CoMo's unified packet
// stream (thesis §2.1.2). Timestamps are virtual: the whole system is
// trace-clocked, so a nanosecond int64 carries all the time information
// the pipeline needs and experiments are deterministic.
package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"
)

// Protocol numbers (IANA) used by the generator and queries.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// TCP flag bits carried in Packet.TCPFlags.
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// Packet is one captured packet. Size is the wire length; Payload holds
// up to SnapLen bytes of application payload (nil in header-only
// traces), like a snaplen-limited capture.
type Packet struct {
	Ts       int64 // virtual capture time, nanoseconds
	SrcIP    uint32
	DstIP    uint32
	SrcPort  uint16
	DstPort  uint16
	Proto    uint8
	TCPFlags uint8
	Size     int // wire length in bytes
	Payload  []byte
}

// SnapLen is the maximum payload bytes captured per packet.
const SnapLen = 256

// FlowKeySize is the length in bytes of a serialized 5-tuple key.
const FlowKeySize = 13

// FlowKey is the canonical serialized 5-tuple: src IP, dst IP, src
// port, dst port, protocol. It is comparable and therefore usable as a
// map key.
type FlowKey [FlowKeySize]byte

// FlowKey returns the packet's 5-tuple key.
func (p *Packet) FlowKey() FlowKey {
	var k FlowKey
	binary.BigEndian.PutUint32(k[0:4], p.SrcIP)
	binary.BigEndian.PutUint32(k[4:8], p.DstIP)
	binary.BigEndian.PutUint16(k[8:10], p.SrcPort)
	binary.BigEndian.PutUint16(k[10:12], p.DstPort)
	k[12] = p.Proto
	return k
}

// String renders the key in src -> dst form for logs and tests.
func (k FlowKey) String() string {
	src := netip.AddrFrom4([4]byte(k[0:4]))
	dst := netip.AddrFrom4([4]byte(k[4:8]))
	sp := binary.BigEndian.Uint16(k[8:10])
	dp := binary.BigEndian.Uint16(k[10:12])
	return fmt.Sprintf("%s:%d -> %s:%d /%d", src, sp, dst, dp, k[12])
}

// Aggregate identifies one of the traffic aggregates of Table 3.1 —
// the header-field combinations over which the feature extractor counts
// unique/new/repeated items.
type Aggregate int

// The ten aggregates of Table 3.1, in table order.
const (
	AggSrcIP Aggregate = iota
	AggDstIP
	AggProto
	AggSrcDstIP
	AggSrcPortProto
	AggDstPortProto
	AggSrcIPSrcPortProto
	AggDstIPDstPortProto
	AggSrcDstPortProto
	Agg5Tuple

	NumAggregates = 10
)

var aggregateNames = [NumAggregates]string{
	"src-ip",
	"dst-ip",
	"proto",
	"src-dst-ip",
	"src-port-proto",
	"dst-port-proto",
	"src-ip-src-port-proto",
	"dst-ip-dst-port-proto",
	"src-dst-port-proto",
	"5-tuple",
}

// String returns the thesis name for the aggregate.
func (a Aggregate) String() string {
	if a < 0 || int(a) >= NumAggregates {
		return fmt.Sprintf("aggregate(%d)", int(a))
	}
	return aggregateNames[a]
}

// AppendAggKey appends the packet's key bytes for aggregate a to buf and
// returns the extended slice. Keys are fixed-width per aggregate so the
// caller can reuse one buffer across packets.
func (p *Packet) AppendAggKey(buf []byte, a Aggregate) []byte {
	switch a {
	case AggSrcIP:
		return binary.BigEndian.AppendUint32(buf, p.SrcIP)
	case AggDstIP:
		return binary.BigEndian.AppendUint32(buf, p.DstIP)
	case AggProto:
		return append(buf, p.Proto)
	case AggSrcDstIP:
		buf = binary.BigEndian.AppendUint32(buf, p.SrcIP)
		return binary.BigEndian.AppendUint32(buf, p.DstIP)
	case AggSrcPortProto:
		buf = binary.BigEndian.AppendUint16(buf, p.SrcPort)
		return append(buf, p.Proto)
	case AggDstPortProto:
		buf = binary.BigEndian.AppendUint16(buf, p.DstPort)
		return append(buf, p.Proto)
	case AggSrcIPSrcPortProto:
		buf = binary.BigEndian.AppendUint32(buf, p.SrcIP)
		buf = binary.BigEndian.AppendUint16(buf, p.SrcPort)
		return append(buf, p.Proto)
	case AggDstIPDstPortProto:
		buf = binary.BigEndian.AppendUint32(buf, p.DstIP)
		buf = binary.BigEndian.AppendUint16(buf, p.DstPort)
		return append(buf, p.Proto)
	case AggSrcDstPortProto:
		buf = binary.BigEndian.AppendUint16(buf, p.SrcPort)
		buf = binary.BigEndian.AppendUint16(buf, p.DstPort)
		return append(buf, p.Proto)
	case Agg5Tuple:
		k := p.FlowKey()
		return append(buf, k[:]...)
	default:
		panic(fmt.Sprintf("pkt: unknown aggregate %d", int(a)))
	}
}

// Batch is the set of packets collected during one time bin (§2.4). The
// monitoring system processes one batch at a time; 100 ms is the bin
// used throughout the thesis.
type Batch struct {
	Start time.Duration // offset of the bin start from trace start
	Bin   time.Duration // bin length
	Pkts  []Packet

	// Bytes() cache: cachedFor holds len(Pkts)+1 at the time the sum was
	// taken (0 = no cache), so shrinking Pkts — what sampling and
	// admission drops do — invalidates it for free. Callers that replace
	// Pkts with a different slice of the same length must use a fresh
	// Batch value. The cache makes Bytes unsafe for concurrent use on a
	// shared *Batch; the pipeline only calls it on goroutine-local
	// batches.
	cachedBytes int
	cachedFor   int
}

// Packets returns the number of packets in the batch.
func (b *Batch) Packets() int { return len(b.Pkts) }

// Bytes returns the total wire bytes in the batch, summing once and
// serving repeat calls from a cache keyed on the packet count.
func (b *Batch) Bytes() int {
	if b.cachedFor == len(b.Pkts)+1 {
		return b.cachedBytes
	}
	n := 0
	for i := range b.Pkts {
		n += b.Pkts[i].Size
	}
	b.cachedBytes, b.cachedFor = n, len(b.Pkts)+1
	return n
}

// CapturedBytes returns the total captured payload bytes in the batch,
// which is what payload-scanning queries actually touch.
func (b *Batch) CapturedBytes() int {
	n := 0
	for i := range b.Pkts {
		n += len(b.Pkts[i].Payload)
	}
	return n
}

// IPv4 builds a uint32 address from dotted quads, for readable tests
// and generator configs.
func IPv4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}
