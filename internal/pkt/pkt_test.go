package pkt

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func samplePacket() Packet {
	return Packet{
		Ts:      123,
		SrcIP:   IPv4(10, 0, 0, 1),
		DstIP:   IPv4(192, 168, 1, 2),
		SrcPort: 12345,
		DstPort: 80,
		Proto:   ProtoTCP,
		Size:    1500,
	}
}

func TestFlowKeyLayout(t *testing.T) {
	p := samplePacket()
	k := p.FlowKey()
	if k[0] != 10 || k[3] != 1 {
		t.Errorf("src ip bytes wrong: %v", k[0:4])
	}
	if k[4] != 192 || k[7] != 2 {
		t.Errorf("dst ip bytes wrong: %v", k[4:8])
	}
	if got := uint16(k[8])<<8 | uint16(k[9]); got != 12345 {
		t.Errorf("src port = %d", got)
	}
	if got := uint16(k[10])<<8 | uint16(k[11]); got != 80 {
		t.Errorf("dst port = %d", got)
	}
	if k[12] != ProtoTCP {
		t.Errorf("proto = %d", k[12])
	}
}

func TestFlowKeyString(t *testing.T) {
	p := samplePacket()
	s := p.FlowKey().String()
	for _, want := range []string{"10.0.0.1", "192.168.1.2", "12345", "80", "/6"} {
		if !strings.Contains(s, want) {
			t.Errorf("FlowKey string %q missing %q", s, want)
		}
	}
}

func TestFlowKeyInjectiveOnFields(t *testing.T) {
	f := func(sip, dip uint32, sp, dp uint16, proto uint8) bool {
		p1 := Packet{SrcIP: sip, DstIP: dip, SrcPort: sp, DstPort: dp, Proto: proto}
		p2 := p1
		p2.SrcPort ^= 1
		return p1.FlowKey() != p2.FlowKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateNames(t *testing.T) {
	if AggSrcIP.String() != "src-ip" {
		t.Errorf("AggSrcIP = %q", AggSrcIP.String())
	}
	if Agg5Tuple.String() != "5-tuple" {
		t.Errorf("Agg5Tuple = %q", Agg5Tuple.String())
	}
	if got := Aggregate(99).String(); !strings.Contains(got, "99") {
		t.Errorf("out-of-range aggregate = %q", got)
	}
}

func TestAppendAggKeyWidths(t *testing.T) {
	p := samplePacket()
	wants := map[Aggregate]int{
		AggSrcIP:             4,
		AggDstIP:             4,
		AggProto:             1,
		AggSrcDstIP:          8,
		AggSrcPortProto:      3,
		AggDstPortProto:      3,
		AggSrcIPSrcPortProto: 7,
		AggDstIPDstPortProto: 7,
		AggSrcDstPortProto:   5,
		Agg5Tuple:            FlowKeySize,
	}
	for a, want := range wants {
		got := p.AppendAggKey(nil, a)
		if len(got) != want {
			t.Errorf("%v key width = %d, want %d", a, len(got), want)
		}
	}
}

func TestAppendAggKeyReusesBuffer(t *testing.T) {
	p := samplePacket()
	buf := make([]byte, 0, 64)
	k1 := p.AppendAggKey(buf, AggSrcDstIP)
	k2 := p.AppendAggKey(buf, AggSrcDstIP)
	if &k1[0] != &k2[0] {
		t.Skip("allocator moved the buffer; nothing to assert")
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("repeated extraction differs")
		}
	}
}

func TestAppendAggKeyDistinguishesDirections(t *testing.T) {
	p := samplePacket()
	rev := p
	rev.SrcIP, rev.DstIP = p.DstIP, p.SrcIP
	fw := p.AppendAggKey(nil, AggSrcDstIP)
	bw := rev.AppendAggKey(nil, AggSrcDstIP)
	if string(fw) == string(bw) {
		t.Fatal("src-dst-ip aggregate must be direction sensitive")
	}
}

func TestAppendAggKeyPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := samplePacket()
	p.AppendAggKey(nil, Aggregate(42))
}

func TestBatchAccounting(t *testing.T) {
	b := Batch{
		Start: 0,
		Bin:   100 * time.Millisecond,
		Pkts: []Packet{
			{Size: 100, Payload: []byte("abc")},
			{Size: 200},
			{Size: 300, Payload: []byte("xy")},
		},
	}
	if b.Packets() != 3 {
		t.Errorf("Packets = %d", b.Packets())
	}
	if b.Bytes() != 600 {
		t.Errorf("Bytes = %d", b.Bytes())
	}
	if b.Bytes() != 600 {
		t.Errorf("cached Bytes = %d", b.Bytes())
	}
	if b.CapturedBytes() != 5 {
		t.Errorf("CapturedBytes = %d", b.CapturedBytes())
	}
}

func TestBatchBytesCacheInvalidatedByShrink(t *testing.T) {
	b := Batch{Pkts: []Packet{{Size: 100}, {Size: 200}, {Size: 300}}}
	if b.Bytes() != 600 {
		t.Fatalf("Bytes = %d", b.Bytes())
	}
	// Sampling and admission drops shrink Pkts; the cache must notice.
	sampled := b
	sampled.Pkts = b.Pkts[:1]
	if sampled.Bytes() != 100 {
		t.Fatalf("shrunk Bytes = %d, want 100", sampled.Bytes())
	}
	sampled.Pkts = nil
	if sampled.Bytes() != 0 {
		t.Fatalf("empty Bytes = %d, want 0", sampled.Bytes())
	}
	// The original batch's cache is unaffected by the copy.
	if b.Bytes() != 600 {
		t.Fatalf("original Bytes = %d", b.Bytes())
	}
}

func TestBatchBytesEmpty(t *testing.T) {
	var b Batch
	if b.Bytes() != 0 {
		t.Fatalf("empty Bytes = %d", b.Bytes())
	}
}

func TestIPv4(t *testing.T) {
	if IPv4(1, 2, 3, 4) != 0x01020304 {
		t.Fatalf("IPv4 = %#x", IPv4(1, 2, 3, 4))
	}
}
