// Package sched implements the load shedding strategies that decide
// *where* to shed load — which sampling rate each query receives for a
// batch, given its predicted demand, its minimum sampling rate
// constraint and the cycle budget.
//
// Three strategies are provided, matching the thesis evaluation:
//
//   - EqualRates: one global sampling rate for every query (Chapter 4),
//     optionally disabling queries whose minimum rate cannot be met
//     (the eq_srates baseline of §5.5.3).
//   - MMFSCPU: max-min fair share of CPU cycles with minimum-rate floors
//     (§5.2.1).
//   - MMFSPkt: max-min fair share of packet access (§5.2.2) — the
//     thesis' preferred strategy, because processed packets correlate
//     with accuracy better than allocated cycles.
//
// When the minimum demands Σ m_q·d̂_q exceed the capacity, all
// strategies disable queries largest-minimum-demand-first (§5.2.1),
// the rule that yields the Nash equilibrium of §5.3.
package sched

import (
	"math"
	"slices"
)

// Demand describes one query's state for a scheduling decision.
type Demand struct {
	Name    string
	Cycles  float64 // predicted cycles to process the batch at rate 1 (d̂_q)
	MinRate float64 // minimum sampling rate constraint (m_q)
}

// Allocation is a strategy's decision for one query, index-aligned with
// the input demands.
type Allocation struct {
	Rate   float64 // sampling rate in [0,1]; 0 means disabled this batch
	Cycles float64 // cycles allocated (Rate · d̂_q)
}

// Strategy selects per-query sampling rates subject to a cycle budget.
type Strategy interface {
	Name() string
	Allocate(demands []Demand, capacity float64) []Allocation
}

// Workspace holds the scratch buffers of an allocation decision so a
// per-bin caller (the load shedding engine decides every 100 ms)
// allocates nothing in steady state. The zero value is ready to use; a
// Workspace is not safe for concurrent use.
type Workspace struct {
	out    []Allocation
	active []bool
	items  []minItem
}

func (ws *Workspace) allocations(n int) []Allocation {
	if cap(ws.out) < n {
		ws.out = make([]Allocation, n)
	}
	out := ws.out[:n]
	clear(out)
	return out
}

// mask returns a length-n boolean scratch with unspecified contents;
// callers initialize every element.
func (ws *Workspace) mask(n int) []bool {
	if cap(ws.active) < n {
		ws.active = make([]bool, n)
	}
	return ws.active[:n]
}

// AllocateInto is s.Allocate with every intermediate — the result
// slice included — taken from ws. The returned slice is owned by ws and
// valid until its next use. Strategies outside this package fall back
// to a plain Allocate call.
func AllocateInto(s Strategy, demands []Demand, capacity float64, ws *Workspace) []Allocation {
	switch st := s.(type) {
	case EqualRates:
		return st.allocate(demands, capacity, ws)
	case MMFSCPU:
		return st.allocate(demands, capacity, ws)
	case MMFSPkt:
		return st.allocate(demands, capacity, ws)
	default:
		return s.Allocate(demands, capacity)
	}
}

type minItem struct {
	idx int
	min float64
}

// disableLargest deactivates queries until the remaining minimum
// demands fit in the capacity; it returns the active set as a boolean
// mask (owned by ws). Queries with the largest m_q·d̂_q go first, which
// penalizes over-claiming (§5.2.1).
func disableLargest(demands []Demand, capacity float64, ws *Workspace) []bool {
	active := ws.mask(len(demands))
	if cap(ws.items) < len(demands) {
		ws.items = make([]minItem, len(demands))
	}
	items := ws.items[:len(demands)]
	var sum float64
	for i, d := range demands {
		active[i] = true
		items[i] = minItem{idx: i, min: d.MinRate * d.Cycles}
		sum += items[i].min
	}
	if sum <= capacity {
		return active
	}
	// Largest minimum demand first; ties broken by name then index for
	// determinism.
	slices.SortFunc(items, func(a, b minItem) int {
		if a.min != b.min {
			if a.min > b.min {
				return -1
			}
			return 1
		}
		na, nb := demands[a.idx].Name, demands[b.idx].Name
		if na != nb {
			if na > nb {
				return -1
			}
			return 1
		}
		return b.idx - a.idx
	})
	for _, it := range items {
		if sum <= capacity {
			break
		}
		active[it.idx] = false
		sum -= it.min
	}
	return active
}

// EqualRates applies the same sampling rate to every query: the Chapter
// 4 behaviour. With RespectMinRates set, queries whose minimum exceeds
// the global rate are disabled for the batch and the rate is recomputed
// over the survivors (§5.5.3's eq_srates).
type EqualRates struct {
	RespectMinRates bool
}

// Name implements Strategy.
func (s EqualRates) Name() string {
	if s.RespectMinRates {
		return "eq_srates"
	}
	return "equal"
}

// Allocate implements Strategy.
func (s EqualRates) Allocate(demands []Demand, capacity float64) []Allocation {
	var ws Workspace
	return s.allocate(demands, capacity, &ws)
}

func (s EqualRates) allocate(demands []Demand, capacity float64, ws *Workspace) []Allocation {
	out := ws.allocations(len(demands))
	active := ws.mask(len(demands))
	for i := range active {
		active[i] = true
	}
	for {
		var total float64
		for i, d := range demands {
			if active[i] {
				total += d.Cycles
			}
		}
		rate := 1.0
		if total > capacity {
			rate = capacity / total
			if rate < 0 {
				rate = 0
			}
		}
		if !s.RespectMinRates {
			for i, d := range demands {
				out[i] = Allocation{Rate: rate, Cycles: rate * d.Cycles}
			}
			return out
		}
		// Disable every query whose minimum the global rate cannot
		// satisfy, then recompute for the survivors.
		changed := false
		for i, d := range demands {
			if active[i] && rate < d.MinRate {
				active[i] = false
				changed = true
			}
		}
		if !changed {
			for i, d := range demands {
				if active[i] {
					out[i] = Allocation{Rate: rate, Cycles: rate * d.Cycles}
				} else {
					out[i] = Allocation{}
				}
			}
			return out
		}
	}
}

// MMFSCPU allocates cycles max-min fairly with per-query floors
// m_q·d̂_q and ceilings d̂_q (§5.2.1). The water level λ such that
// Σ clamp(λ, floor, ceiling) = capacity is found by bisection.
type MMFSCPU struct{}

// Name implements Strategy.
func (MMFSCPU) Name() string { return "mmfs_cpu" }

// Allocate implements Strategy.
func (s MMFSCPU) Allocate(demands []Demand, capacity float64) []Allocation {
	var ws Workspace
	return s.allocate(demands, capacity, &ws)
}

func (MMFSCPU) allocate(demands []Demand, capacity float64, ws *Workspace) []Allocation {
	out := ws.allocations(len(demands))
	active := disableLargest(demands, capacity, ws)

	var sumFull, hi float64
	for i, d := range demands {
		if active[i] {
			sumFull += d.Cycles
			if d.Cycles > hi {
				hi = d.Cycles
			}
		}
	}
	fill := func(level float64) float64 {
		var sum float64
		for i, d := range demands {
			if !active[i] {
				continue
			}
			sum += clamp(level, d.MinRate*d.Cycles, d.Cycles)
		}
		return sum
	}
	level := hi
	if sumFull > capacity {
		lo := 0.0
		for iter := 0; iter < 64; iter++ {
			mid := (lo + level) / 2
			if fill(mid) > capacity {
				level = mid
			} else {
				lo = mid
			}
		}
	}
	for i, d := range demands {
		if !active[i] {
			continue
		}
		c := clamp(level, d.MinRate*d.Cycles, d.Cycles)
		rate := 1.0
		if d.Cycles > 0 {
			rate = c / d.Cycles
		}
		out[i] = Allocation{Rate: rate, Cycles: c}
	}
	return out
}

// MMFSPkt allocates sampling rates max-min fairly in terms of access to
// the packet stream (§5.2.2–5.2.3): one water-level rate r with
// per-query floors m_q and ceiling 1, such that Σ clamp(r, m_q, 1)·d̂_q
// equals the capacity.
type MMFSPkt struct{}

// Name implements Strategy.
func (MMFSPkt) Name() string { return "mmfs_pkt" }

// Allocate implements Strategy.
func (s MMFSPkt) Allocate(demands []Demand, capacity float64) []Allocation {
	var ws Workspace
	return s.allocate(demands, capacity, &ws)
}

func (MMFSPkt) allocate(demands []Demand, capacity float64, ws *Workspace) []Allocation {
	out := ws.allocations(len(demands))
	active := disableLargest(demands, capacity, ws)

	var sumFull float64
	for i, d := range demands {
		if active[i] {
			sumFull += d.Cycles
		}
	}
	spend := func(r float64) float64 {
		var sum float64
		for i, d := range demands {
			if !active[i] {
				continue
			}
			sum += clamp(r, d.MinRate, 1) * d.Cycles
		}
		return sum
	}
	rate := 1.0
	if sumFull > capacity {
		lo := 0.0
		for iter := 0; iter < 64; iter++ {
			mid := (lo + rate) / 2
			if spend(mid) > capacity {
				rate = mid
			} else {
				lo = mid
			}
		}
	}
	for i, d := range demands {
		if !active[i] {
			continue
		}
		r := clamp(rate, d.MinRate, 1)
		out[i] = Allocation{Rate: r, Cycles: r * d.Cycles}
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if hi < lo {
		hi = lo
	}
	return math.Min(math.Max(x, lo), hi)
}
