package sched

import "math"

// GrantsWithFloor turns a cross-shard allocation into final per-shard
// cycle grants: every allocation is floored at floorFrac of an equal
// share of total, and whatever the floored allocations leave unused is
// spread equally on top. Floors are reserved before the surplus is
// spread, so the grants sum to total and under-loaded shards keep
// headroom for the next surge; the only overshoot, bounded by the
// floors themselves, happens when the floors alone exceed total.
//
// The budget coordinator calls this every heartbeat with the shards'
// demand allocations; the floor keeps a shard the policy zeroed out
// (disabled largest-first under extreme pressure) able to drain its
// backlog accounting rather than divide by nothing.
//
// The result is written into dst (grown only when its capacity is
// short) and returned. allocs must be non-empty.
func GrantsWithFloor(dst []float64, allocs []Allocation, total, floorFrac float64) []float64 {
	n := len(allocs)
	floor := floorFrac * total / float64(n)
	var used float64
	for _, a := range allocs {
		used += math.Max(a.Cycles, floor)
	}
	surplus := math.Max(0, total-used) / float64(n)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i, a := range allocs {
		dst[i] = math.Max(a.Cycles, floor) + surplus
	}
	return dst
}
