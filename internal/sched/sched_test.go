package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hash"
)

func demands() []Demand {
	return []Demand{
		{Name: "cheap", Cycles: 100, MinRate: 0.05},
		{Name: "mid", Cycles: 500, MinRate: 0.20},
		{Name: "heavy", Cycles: 1000, MinRate: 0.50},
	}
}

func totalCycles(allocs []Allocation) float64 {
	var s float64
	for _, a := range allocs {
		s += a.Cycles
	}
	return s
}

func checkInvariants(t *testing.T, name string, ds []Demand, allocs []Allocation, capacity float64) {
	t.Helper()
	if len(allocs) != len(ds) {
		t.Fatalf("%s: allocation count mismatch", name)
	}
	if got := totalCycles(allocs); got > capacity*(1+1e-9)+1e-9 {
		t.Errorf("%s: allocated %v cycles, capacity %v", name, got, capacity)
	}
	for i, a := range allocs {
		if a.Rate < 0 || a.Rate > 1+1e-12 {
			t.Errorf("%s: rate[%d] = %v out of range", name, i, a.Rate)
		}
		// The plain "equal" strategy is the Chapter 4 design that
		// deliberately ignores minimum rates; the invariant holds for
		// every other strategy.
		if name != "equal" && a.Rate > 0 && a.Rate < ds[i].MinRate-1e-9 {
			t.Errorf("%s: rate[%d] = %v below minimum %v without disabling", name, i, a.Rate, ds[i].MinRate)
		}
		if math.Abs(a.Cycles-a.Rate*ds[i].Cycles) > 1e-6*math.Max(1, ds[i].Cycles) {
			t.Errorf("%s: cycles[%d] inconsistent with rate", name, i)
		}
	}
}

func allStrategies() []Strategy {
	return []Strategy{
		EqualRates{},
		EqualRates{RespectMinRates: true},
		MMFSCPU{},
		MMFSPkt{},
	}
}

func TestNoOverloadGivesFullRates(t *testing.T) {
	ds := demands()
	for _, s := range allStrategies() {
		allocs := s.Allocate(ds, 1e9)
		for i, a := range allocs {
			if a.Rate != 1 {
				t.Errorf("%s: rate[%d] = %v with infinite capacity", s.Name(), i, a.Rate)
			}
		}
	}
}

func TestInvariantsUnderOverload(t *testing.T) {
	ds := demands()
	for _, s := range allStrategies() {
		for _, c := range []float64{1600, 800, 400, 200, 100, 10} {
			checkInvariants(t, s.Name(), ds, s.Allocate(ds, c), c)
		}
	}
}

func TestEqualRatesGlobalRate(t *testing.T) {
	ds := demands() // total 1600
	allocs := EqualRates{}.Allocate(ds, 800)
	for i, a := range allocs {
		if math.Abs(a.Rate-0.5) > 1e-9 {
			t.Errorf("rate[%d] = %v, want 0.5", i, a.Rate)
		}
	}
}

func TestEqualRatesIgnoresMinWithoutFlag(t *testing.T) {
	ds := demands()
	allocs := EqualRates{}.Allocate(ds, 160) // global rate 0.1 < heavy's 0.5
	if allocs[2].Rate >= ds[2].MinRate {
		t.Fatal("plain equal-rates should not respect minimums")
	}
}

func TestEqSratesDisablesUnsatisfiable(t *testing.T) {
	ds := demands()
	// Capacity 160: global rate over all three would be 0.1, below mid's
	// 0.2 and heavy's 0.5 -> both disabled; survivors get min(1, 160/100).
	allocs := EqualRates{RespectMinRates: true}.Allocate(ds, 160)
	if allocs[1].Rate != 0 || allocs[2].Rate != 0 {
		t.Fatalf("expected mid+heavy disabled: %+v", allocs)
	}
	if allocs[0].Rate != 1 {
		t.Fatalf("cheap should run at full rate: %+v", allocs[0])
	}
}

func TestMMFSDisablesLargestMinDemandFirst(t *testing.T) {
	ds := demands()
	// Minimum demands: 5, 100, 500 cycles. Capacity 120 forces heavy
	// out (500), keeps cheap+mid (105).
	for _, s := range []Strategy{MMFSCPU{}, MMFSPkt{}} {
		allocs := s.Allocate(ds, 120)
		if allocs[2].Rate != 0 {
			t.Errorf("%s: heavy not disabled: %+v", s.Name(), allocs)
		}
		if allocs[0].Rate == 0 || allocs[1].Rate == 0 {
			t.Errorf("%s: survivors wrongly disabled: %+v", s.Name(), allocs)
		}
	}
}

func TestMMFSCPUWaterLevel(t *testing.T) {
	ds := []Demand{
		{Name: "a", Cycles: 100, MinRate: 0},
		{Name: "b", Cycles: 1000, MinRate: 0},
	}
	// Capacity 300: water level 200 would give a=100 (capped), b=200.
	allocs := MMFSCPU{}.Allocate(ds, 300)
	if math.Abs(allocs[0].Cycles-100) > 1 {
		t.Errorf("a cycles = %v, want ~100 (its full demand)", allocs[0].Cycles)
	}
	if math.Abs(allocs[1].Cycles-200) > 1 {
		t.Errorf("b cycles = %v, want ~200", allocs[1].Cycles)
	}
}

func TestMMFSCPUPenalizesExpensiveQuery(t *testing.T) {
	// CPU fairness gives equal cycles: the heavy query ends with a much
	// lower sampling rate than the light one.
	ds := []Demand{
		{Name: "light", Cycles: 100, MinRate: 0},
		{Name: "heavy", Cycles: 1000, MinRate: 0},
	}
	allocs := MMFSCPU{}.Allocate(ds, 220)
	if allocs[0].Rate <= allocs[1].Rate {
		t.Fatalf("light rate %v should exceed heavy rate %v", allocs[0].Rate, allocs[1].Rate)
	}
}

func TestMMFSPktEqualizesRates(t *testing.T) {
	// Packet fairness gives equal rates regardless of per-query cost.
	ds := []Demand{
		{Name: "light", Cycles: 100, MinRate: 0},
		{Name: "heavy", Cycles: 1000, MinRate: 0},
	}
	allocs := MMFSPkt{}.Allocate(ds, 550)
	if math.Abs(allocs[0].Rate-allocs[1].Rate) > 1e-6 {
		t.Fatalf("rates differ: %v vs %v", allocs[0].Rate, allocs[1].Rate)
	}
	if math.Abs(allocs[0].Rate-0.5) > 1e-6 {
		t.Fatalf("rate = %v, want 0.5", allocs[0].Rate)
	}
}

func TestMMFSPktPinsAtMinimum(t *testing.T) {
	ds := []Demand{
		{Name: "tolerant", Cycles: 500, MinRate: 0.01},
		{Name: "demanding", Cycles: 500, MinRate: 0.8},
	}
	// Capacity 500: global rate 0.5 < demanding's minimum, so demanding
	// pins at 0.8 (400 cycles) and tolerant gets the remaining 100.
	allocs := MMFSPkt{}.Allocate(ds, 500)
	if math.Abs(allocs[1].Rate-0.8) > 1e-6 {
		t.Fatalf("demanding rate = %v, want pinned 0.8", allocs[1].Rate)
	}
	if math.Abs(allocs[0].Rate-0.2) > 1e-3 {
		t.Fatalf("tolerant rate = %v, want ~0.2", allocs[0].Rate)
	}
}

func TestZeroCapacityDisablesEverythingWithMinimums(t *testing.T) {
	ds := demands()
	for _, s := range allStrategies() {
		allocs := s.Allocate(ds, 0)
		if got := totalCycles(allocs); got > 1e-9 {
			t.Errorf("%s: allocated %v cycles at zero capacity", s.Name(), got)
		}
	}
}

func TestZeroCostQueryAlwaysRuns(t *testing.T) {
	ds := []Demand{
		{Name: "free", Cycles: 0, MinRate: 0.5},
		{Name: "heavy", Cycles: 1000, MinRate: 0.1},
	}
	for _, s := range []Strategy{MMFSCPU{}, MMFSPkt{}} {
		allocs := s.Allocate(ds, 500)
		if allocs[0].Rate == 0 {
			t.Errorf("%s: free query disabled", s.Name())
		}
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[string]bool{}
	for _, s := range allStrategies() {
		names[s.Name()] = true
	}
	for _, want := range []string{"equal", "eq_srates", "mmfs_cpu", "mmfs_pkt"} {
		if !names[want] {
			t.Errorf("missing strategy %q", want)
		}
	}
}

func TestInvariantsProperty(t *testing.T) {
	rng := hash.NewXorShift(1)
	f := func(n uint8, capFrac uint8) bool {
		q := int(n%8) + 1
		ds := make([]Demand, q)
		var total float64
		for i := range ds {
			ds[i] = Demand{
				Name:    string(rune('a' + i)),
				Cycles:  rng.Float64() * 1e6,
				MinRate: rng.Float64(),
			}
			total += ds[i].Cycles
		}
		capacity := total * float64(capFrac) / 255
		for _, s := range allStrategies() {
			allocs := s.Allocate(ds, capacity)
			if totalCycles(allocs) > capacity*(1+1e-9)+1e-6 {
				return false
			}
			for i, a := range allocs {
				if a.Rate < 0 || a.Rate > 1+1e-9 {
					return false
				}
				if s.Name() != "equal" && a.Rate > 0 && a.Rate < ds[i].MinRate-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMMFSPktBeatsCPUOnMinimumRate(t *testing.T) {
	// The Chapter 5 headline: with one heavy and many light queries,
	// packet fairness yields a higher minimum sampling rate.
	ds := []Demand{{Name: "heavy", Cycles: 1000, MinRate: 0}}
	for i := 0; i < 10; i++ {
		ds = append(ds, Demand{Name: string(rune('a' + i)), Cycles: 100, MinRate: 0})
	}
	capacity := 1000.0 // half of the 2000 total
	minRate := func(allocs []Allocation) float64 {
		m := 1.0
		for _, a := range allocs {
			if a.Rate < m {
				m = a.Rate
			}
		}
		return m
	}
	cpuMin := minRate(MMFSCPU{}.Allocate(ds, capacity))
	pktMin := minRate(MMFSPkt{}.Allocate(ds, capacity))
	if pktMin <= cpuMin {
		t.Fatalf("mmfs_pkt min rate %v should exceed mmfs_cpu %v", pktMin, cpuMin)
	}
}
