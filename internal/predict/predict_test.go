package predict

import (
	"math"
	"testing"

	"repro/internal/features"
	"repro/internal/hash"
	"repro/internal/stats"
)

// synth fills a feature vector with zeros except the given indices.
func synth(vals map[int]float64) features.Vector {
	v := make(features.Vector, features.NumFeatures)
	for i, x := range vals {
		v[i] = x
	}
	return v
}

func TestHistoryRing(t *testing.T) {
	h := NewHistory(3)
	if h.Len() != 0 {
		t.Fatal("new history not empty")
	}
	for i := 0; i < 5; i++ {
		h.Add(synth(map[int]float64{0: float64(i)}), float64(i))
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	costs := h.Costs()
	sum := 0.0
	for _, c := range costs {
		sum += c
	}
	if sum != 2+3+4 {
		t.Fatalf("ring kept wrong elements: %v", costs)
	}
}

func TestHistoryCopiesVectors(t *testing.T) {
	h := NewHistory(2)
	v := synth(map[int]float64{0: 1})
	h.Add(v, 10)
	v[0] = 999
	if got := h.Column(0)[0]; got != 1 {
		t.Fatalf("history aliased caller's vector: %v", got)
	}
}

func TestHistoryPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistory(0)
}

func TestFCBFPhase1Threshold(t *testing.T) {
	rng := hash.NewXorShift(1)
	n := 100
	relevant := make([]float64, n)
	noise := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		relevant[i] = float64(i)
		noise[i] = rng.NormFloat64()
		y[i] = 3*relevant[i] + 0.01*rng.NormFloat64()
	}
	sel := FCBF([][]float64{noise, relevant}, y, 0.6)
	if len(sel) != 1 || sel[0] != 1 {
		t.Fatalf("FCBF selected %v, want [1]", sel)
	}
}

func TestFCBFRemovesRedundant(t *testing.T) {
	n := 100
	x := make([]float64, n)
	dup := make([]float64, n)
	y := make([]float64, n)
	rng := hash.NewXorShift(2)
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
		dup[i] = 2 * x[i] // perfectly redundant
		y[i] = 5 * x[i]
	}
	sel := FCBF([][]float64{x, dup}, y, 0.6)
	if len(sel) != 1 {
		t.Fatalf("FCBF kept redundant feature: %v", sel)
	}
}

func TestFCBFKeepsComplementaryFeatures(t *testing.T) {
	n := 200
	rng := hash.NewXorShift(3)
	a := make([]float64, n)
	b := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
		y[i] = a[i] + b[i]
	}
	sel := FCBF([][]float64{a, b}, y, 0.3)
	if len(sel) != 2 {
		t.Fatalf("FCBF dropped a complementary feature: %v", sel)
	}
}

func TestFCBFFallsBackToBest(t *testing.T) {
	n := 50
	rng := hash.NewXorShift(4)
	weak := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		weak[i] = rng.NormFloat64()
		y[i] = 0.3*weak[i] + rng.NormFloat64()
	}
	sel := FCBF([][]float64{weak}, y, 0.99)
	if len(sel) != 1 || sel[0] != 0 {
		t.Fatalf("FCBF fallback = %v, want [0]", sel)
	}
}

func TestFCBFEmptyInput(t *testing.T) {
	if sel := FCBF(nil, nil, 0.5); sel != nil {
		t.Fatalf("FCBF(nil) = %v", sel)
	}
}

func TestMLRColdStartUsesMean(t *testing.T) {
	m := NewMLR(DefaultHistory, DefaultThreshold)
	f := synth(map[int]float64{features.IdxPackets: 100})
	if got := m.Predict(f); got != 0 {
		t.Fatalf("cold prediction = %v, want 0", got)
	}
	m.Observe(f, 500)
	m.Observe(f, 700)
	if got := m.Predict(f); got != 600 {
		t.Fatalf("fallback prediction = %v, want mean 600", got)
	}
}

func TestMLRLearnsLinearCost(t *testing.T) {
	// Cost = 1000 + 50*packets + 2*new5tuple, exactly the structure the
	// predictor is built for.
	m := NewMLR(DefaultHistory, DefaultThreshold)
	rng := hash.NewXorShift(5)
	i5 := features.IdxNew(9) // new 5-tuple
	for i := 0; i < 60; i++ {
		pkts := 1000 + 500*rng.Float64()
		nf := 100 + 300*rng.Float64()
		f := synth(map[int]float64{features.IdxPackets: pkts, i5: nf})
		m.Observe(f, 1000+50*pkts+2*nf)
	}
	pkts, nf := 1200.0, 250.0
	f := synth(map[int]float64{features.IdxPackets: pkts, i5: nf})
	want := 1000 + 50*pkts + 2*nf
	got := m.Predict(f)
	if stats.RelErr(got, want) > 0.02 {
		t.Fatalf("prediction = %v, want %v (+/-2%%)", got, want)
	}
	sel := m.Selected()
	foundPkts := false
	for _, j := range sel {
		if j == features.IdxPackets {
			foundPkts = true
		}
	}
	if !foundPkts {
		t.Fatalf("selected features %v missing packets", sel)
	}
}

func TestMLRNeverNegative(t *testing.T) {
	m := NewMLR(20, 0.6)
	rng := hash.NewXorShift(6)
	for i := 0; i < 20; i++ {
		pkts := rng.Float64() * 10
		m.Observe(synth(map[int]float64{features.IdxPackets: pkts}), pkts*2)
	}
	// Extrapolate far below the observed range.
	got := m.Predict(synth(map[int]float64{features.IdxPackets: -1e6}))
	if got < 0 {
		t.Fatalf("negative prediction: %v", got)
	}
}

func TestMLRTracksRegimeChange(t *testing.T) {
	// After the window slides past a cost-regime change, predictions
	// must follow the new regime.
	m := NewMLR(30, DefaultThreshold)
	f := func(p float64) features.Vector {
		return synth(map[int]float64{features.IdxPackets: p})
	}
	rng := hash.NewXorShift(7)
	for i := 0; i < 30; i++ {
		p := 100 + rng.Float64()*50
		m.Observe(f(p), 10*p)
	}
	for i := 0; i < 30; i++ { // new regime: cost doubles
		p := 100 + rng.Float64()*50
		m.Observe(f(p), 20*p)
	}
	got := m.Predict(f(120))
	if stats.RelErr(got, 2400) > 0.05 {
		t.Fatalf("post-change prediction = %v, want ~2400", got)
	}
}

func TestSLRLine(t *testing.T) {
	s := NewSLR(50, features.IdxPackets)
	for i := 0; i < 50; i++ {
		p := float64(100 + i)
		s.Observe(synth(map[int]float64{features.IdxPackets: p}), 7*p+30)
	}
	got := s.Predict(synth(map[int]float64{features.IdxPackets: 200}))
	if stats.RelErr(got, 7*200+30) > 0.01 {
		t.Fatalf("SLR prediction = %v, want %v", got, 7*200+30)
	}
}

func TestSLRConstantFeature(t *testing.T) {
	s := NewSLR(10, features.IdxPackets)
	for i := 0; i < 10; i++ {
		s.Observe(synth(map[int]float64{features.IdxPackets: 5}), 100)
	}
	if got := s.Predict(synth(map[int]float64{features.IdxPackets: 5})); got != 100 {
		t.Fatalf("constant-feature SLR = %v, want 100", got)
	}
}

func TestSLRMissesMultiFeatureCost(t *testing.T) {
	// Costs driven by a feature SLR doesn't watch: MLR should beat SLR.
	slr := NewSLR(DefaultHistory, features.IdxPackets)
	mlr := NewMLR(DefaultHistory, DefaultThreshold)
	rng := hash.NewXorShift(8)
	iBytes := features.IdxBytes
	var fLast features.Vector
	var wantLast float64
	for i := 0; i < 60; i++ {
		pkts := 1000 + rng.Float64()*100 // nearly constant
		bytes := 1e5 + 9e5*rng.Float64() // the real driver
		f := synth(map[int]float64{features.IdxPackets: pkts, iBytes: bytes})
		cost := 0.1 * bytes
		slr.Observe(f, cost)
		mlr.Observe(f, cost)
		fLast, wantLast = f, cost
	}
	errSLR := stats.RelErr(slr.Predict(fLast), wantLast)
	errMLR := stats.RelErr(mlr.Predict(fLast), wantLast)
	if errMLR > errSLR {
		t.Fatalf("MLR (%v) worse than SLR (%v) on byte-driven cost", errMLR, errSLR)
	}
}

func TestEWMAPredictor(t *testing.T) {
	e := NewEWMA(0.5)
	if got := e.Predict(nil); got != 0 {
		t.Fatalf("cold EWMA = %v", got)
	}
	e.Observe(nil, 100)
	e.Observe(nil, 200)
	if got := e.Predict(nil); got != 150 {
		t.Fatalf("EWMA = %v, want 150", got)
	}
}

func TestEWMALagsStepChange(t *testing.T) {
	// Structural property the thesis exploits: EWMA cannot anticipate a
	// step it hasn't seen.
	e := NewEWMA(DefaultEWMAAlpha)
	for i := 0; i < 100; i++ {
		e.Observe(nil, 100)
	}
	// The traffic doubles; prediction still says 100.
	if got := e.Predict(nil); math.Abs(got-100) > 1e-9 {
		t.Fatalf("EWMA = %v, want 100", got)
	}
	e.Observe(nil, 200)
	got := e.Predict(nil)
	if got >= 200 || got <= 100 {
		t.Fatalf("EWMA after one step = %v, want between 100 and 200", got)
	}
}

func TestLastPredictor(t *testing.T) {
	l := NewLast()
	if l.Predict(nil) != 0 {
		t.Fatal("cold Last != 0")
	}
	l.Observe(nil, 42)
	if l.Predict(nil) != 42 {
		t.Fatal("Last did not track")
	}
	l.Observe(nil, 7)
	if l.Predict(nil) != 7 {
		t.Fatal("Last did not update")
	}
}

func TestPredictorNames(t *testing.T) {
	cases := map[string]Predictor{
		"mlr":  NewMLR(10, 0.6),
		"slr":  NewSLR(10, 0),
		"ewma": NewEWMA(0.3),
		"last": NewLast(),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}

func BenchmarkMLRPredict(b *testing.B) {
	m := NewMLR(DefaultHistory, DefaultThreshold)
	rng := hash.NewXorShift(1)
	for i := 0; i < DefaultHistory; i++ {
		f := make(features.Vector, features.NumFeatures)
		for j := range f {
			f[j] = rng.Float64() * 1000
		}
		m.Observe(f, rng.Float64()*1e6)
	}
	f := make(features.Vector, features.NumFeatures)
	for j := range f {
		f[j] = rng.Float64() * 1000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(f)
	}
}

// TestMLRFitZeroAllocSteadyState is the PR 5 allocation guard for the
// prediction path: once the history ring and the fit scratch are warm,
// the refit-on-every-prediction loop (Predict + Observe) must not
// allocate at all.
func TestMLRFitZeroAllocSteadyState(t *testing.T) {
	m := NewMLR(DefaultHistory, DefaultThreshold)
	f := make(features.Vector, features.NumFeatures)
	rng := hash.NewXorShift(7)
	fill := func() {
		for j := range f {
			f[j] = rng.Float64() * 1000
		}
	}
	// Warm up: fill the ring past capacity and run fits at full history
	// so every scratch buffer reaches steady-state size.
	for i := 0; i < DefaultHistory+8; i++ {
		fill()
		m.Observe(f, 5000+2*f[features.IdxPackets]+3*f[features.IdxBytes])
		m.Predict(f)
	}
	allocs := testing.AllocsPerRun(20, func() {
		fill()
		m.Predict(f)
		m.Observe(f, 5000+2*f[features.IdxPackets]+3*f[features.IdxBytes])
	})
	if allocs != 0 {
		t.Fatalf("MLR fit/observe steady-state allocations = %v, want 0", allocs)
	}
	if len(m.Selected()) == 0 {
		t.Fatal("warm MLR selected no features; the guard exercised the cold path only")
	}
}

func TestHistoryTruncateKeepsNewest(t *testing.T) {
	h := NewHistory(5)
	for i := 0; i < 7; i++ { // costs 2..6 survive the ring
		h.Add(synth(map[int]float64{0: float64(i)}), float64(i))
	}
	h.Truncate(2)
	if h.Len() != 2 {
		t.Fatalf("Len = %d after Truncate(2), want 2", h.Len())
	}
	costs := h.Costs()
	if costs[0] != 5 || costs[1] != 6 {
		t.Fatalf("kept costs %v, want [5 6] (newest, oldest-first)", costs)
	}
	if got := h.Column(0); got[0] != 5 || got[1] != 6 {
		t.Fatalf("kept features %v, want [5 6]", got)
	}
	// The ring refills in place after a truncation.
	for i := 10; i < 14; i++ {
		h.Add(synth(map[int]float64{0: float64(i)}), float64(i))
	}
	if h.Len() != 5 {
		t.Fatalf("Len = %d after refill, want 5", h.Len())
	}
	sum := 0.0
	for _, c := range h.Costs() {
		sum += c
	}
	if sum != 6+10+11+12+13 {
		t.Fatalf("refilled ring holds %v", h.Costs())
	}
	h.Truncate(-1)
	if h.Len() != 0 {
		t.Fatalf("Truncate(-1) left %d observations", h.Len())
	}
}

func TestHistoryDiscountOlder(t *testing.T) {
	h := NewHistory(4)
	if h.Weighted() {
		t.Fatal("fresh history claims weights")
	}
	for i := 0; i < 4; i++ {
		h.Add(synth(map[int]float64{0: float64(i)}), float64(i))
	}
	h.DiscountOlder(2, 0.25)
	if !h.Weighted() {
		t.Fatal("discounted history claims unweighted")
	}
	w := h.WeightsInto(nil)
	// Slot order == insertion order here (no wrap): 0,1 discounted.
	want := []float64{0.25, 0.25, 1, 1}
	for i := range w {
		if w[i] != want[i] {
			t.Fatalf("weights = %v, want %v", w, want)
		}
	}
	// Compounding.
	h.DiscountOlder(3, 0.5)
	if got := h.WeightsInto(nil)[0]; got != 0.125 {
		t.Fatalf("compounded weight = %v, want 0.125", got)
	}
	// Overwriting a discounted slot resets its weight.
	for i := 0; i < 4; i++ {
		h.Add(synth(map[int]float64{0: 9}), 9)
	}
	if h.Weighted() {
		t.Fatalf("weights after full overwrite: %v", h.WeightsInto(nil))
	}
}

func TestHistoryStateCarriesWeights(t *testing.T) {
	h := NewHistory(4)
	for i := 0; i < 6; i++ {
		h.Add(synth(map[int]float64{0: float64(i)}), float64(i))
	}
	h.DiscountOlder(1, 0.1)
	st := h.State()
	if st.Weights == nil {
		t.Fatal("state dropped the weights")
	}
	h2 := NewHistory(4)
	if err := h2.SetState(st); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	if !h2.Weighted() {
		t.Fatal("restored history claims unweighted")
	}
	a, b := h.WeightsInto(nil), h2.WeightsInto(nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored weights %v != %v", b, a)
		}
	}
	// Unweighted states restore as unweighted, including pre-weights
	// snapshots where gob leaves Weights nil.
	h3 := NewHistory(4)
	st.Weights = nil
	if err := h3.SetState(st); err != nil {
		t.Fatalf("SetState (nil weights): %v", err)
	}
	if h3.Weighted() {
		t.Fatal("nil-weight state restored as weighted")
	}
	st.Weights = []float64{1, 1}
	if err := h3.SetState(st); err == nil {
		t.Fatal("SetState accepted a weight-length mismatch")
	}
}

// TestMLRNotifyChangeAdaptsFaster pins the point of the whole hook: after
// a coefficient change, a notified model re-converges on the new regime
// immediately, while the plain window needs the old regime to slide out.
func TestMLRNotifyChangeAdaptsFaster(t *testing.T) {
	run := func(notify bool) []float64 {
		m := NewMLR(DefaultHistory, DefaultThreshold)
		rng := hash.NewXorShift(11)
		f := func() features.Vector {
			return synth(map[int]float64{features.IdxPackets: 1000 + 500*rng.Float64()})
		}
		for i := 0; i < DefaultHistory; i++ {
			v := f()
			m.Observe(v, 10*v[features.IdxPackets])
		}
		// A handful of post-change observations land before any real
		// detector would fire; NotifyChange keeps exactly those.
		for i := 0; i < 8; i++ {
			v := f()
			m.Observe(v, 25*v[features.IdxPackets])
		}
		if notify {
			m.NotifyChange()
		}
		errs := make([]float64, 12)
		for i := range errs {
			v := f()
			want := 25 * v[features.IdxPackets] // new regime
			errs[i] = stats.RelErr(m.Predict(v), want)
			m.Observe(v, want)
		}
		return errs
	}
	off := run(false)
	on := run(true)
	// A few bins in, the notified model must be locked on while the
	// plain window is still dominated by stale observations.
	if on[8] > 0.05 {
		t.Fatalf("notified model still off at bin 8: relerr %v (%v)", on[8], on)
	}
	if off[8] < 3*on[8] {
		t.Fatalf("plain window recovered suspiciously fast: off %v vs on %v", off[8], on[8])
	}
}

// TestMLRUnweightedPathUnchanged pins the bit-identity contract: a model
// whose history never saw a discount predicts exactly like one built
// before weights existed — and a fully overwritten (hence unweighted
// again) history returns to that exact path.
func TestMLRUnweightedPathUnchanged(t *testing.T) {
	mk := func() (*MLR, *hash.XorShift) {
		return NewMLR(30, DefaultThreshold), hash.NewXorShift(13)
	}
	feed := func(m *MLR, rng *hash.XorShift, n int) []float64 {
		out := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			v := synth(map[int]float64{
				features.IdxPackets: 1000 + 500*rng.Float64(),
				features.IdxBytes:   40000 + 9000*rng.Float64(),
			})
			out = append(out, m.Predict(v))
			m.Observe(v, 3*v[features.IdxPackets]+0.1*v[features.IdxBytes])
		}
		return out
	}
	a, rngA := mk()
	b, rngB := mk()
	pa := feed(a, rngA, 40)
	// b takes a discount + full overwrite detour before the same tail.
	b.NotifyChange()
	pb := feed(b, rngB, 40)
	for i := 31; i < 40; i++ { // history fully overwritten after 30 adds
		if pa[i] != pb[i] {
			t.Fatalf("prediction %d differs after weights washed out: %v != %v", i, pa[i], pb[i])
		}
	}
	if b.History().Weighted() {
		t.Fatal("overwritten history still weighted")
	}
}

// The weighted refit must be as allocation-free as the plain one once
// its sqrt-weight scratch exists.
func TestMLRWeightedFitZeroAllocSteadyState(t *testing.T) {
	m := NewMLR(DefaultHistory, DefaultThreshold)
	f := make(features.Vector, features.NumFeatures)
	rng := hash.NewXorShift(17)
	fill := func() {
		for j := range f {
			f[j] = rng.Float64() * 1000
		}
	}
	for i := 0; i < DefaultHistory+8; i++ {
		fill()
		m.Observe(f, 5000+2*f[features.IdxPackets])
		m.Predict(f)
	}
	m.NotifyChange() // lazily allocates weights + sqrt scratch
	fill()
	m.Predict(f)
	if !m.History().Weighted() {
		t.Fatal("NotifyChange left the history unweighted")
	}
	allocs := testing.AllocsPerRun(20, func() {
		fill()
		m.Predict(f)
		m.Observe(f, 5000+2*f[features.IdxPackets])
	})
	if allocs != 0 {
		t.Fatalf("weighted MLR fit steady-state allocations = %v, want 0", allocs)
	}
}
