// Package predict implements the resource-usage prediction of thesis
// Chapter 3: an on-line multiple linear regression over a sliding
// history of (feature vector, cost) observations, with Fast
// Correlation-Based Filter feature selection, plus the two baseline
// predictors the chapter compares against (EWMA and simple linear
// regression) and the last-value predictor used by the reactive load
// shedding baseline.
package predict

import (
	"fmt"
	"math"

	"repro/internal/features"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// Predictor estimates the processing cost of a batch from its traffic
// features. Implementations treat the monitored query as a black box:
// they see only feature vectors and realized costs.
type Predictor interface {
	// Predict returns the estimated cost (in cycles) of processing the
	// batch whose features are f.
	Predict(f features.Vector) float64
	// Observe feeds back the measured cost of the batch whose features
	// are f, extending the model's history.
	Observe(f features.Vector, cost float64)
	// Name identifies the method ("mlr", "slr", "ewma", ...).
	Name() string
}

// History is a sliding window of (features, cost) observations — the
// "n" of Equation 3.2. The zero value is unusable; construct with
// NewHistory.
type History struct {
	capacity int
	feats    []features.Vector
	costs    []float64
	next     int
	full     bool

	// weights stays nil until the first DiscountOlder call, so the
	// common unweighted history adds no work to Add and lets the MLR
	// fit take its exact historical code path (bit-identity when change
	// detection is off or has never fired). weighted counts the slots
	// whose weight differs from 1.
	weights  []float64
	weighted int

	// Truncate scratch: slice headers and scalars for the time-order
	// compaction, allocated on the first truncation (a rare event, not
	// the steady state).
	tFeats []features.Vector
	tCosts []float64
	tW     []float64
}

// NewHistory returns a history holding up to n observations.
func NewHistory(n int) *History {
	if n < 1 {
		panic("predict: history capacity must be positive")
	}
	return &History{
		capacity: n,
		feats:    make([]features.Vector, n),
		costs:    make([]float64, n),
	}
}

// Add appends an observation, evicting the oldest when full. The vector
// is copied into a ring slot that is reused across evictions, so a
// warmed-up history never allocates.
func (h *History) Add(f features.Vector, cost float64) {
	slot := h.feats[h.next]
	if cap(slot) < len(f) {
		slot = make(features.Vector, len(f))
	}
	slot = slot[:len(f)]
	copy(slot, f)
	h.feats[h.next] = slot
	h.costs[h.next] = cost
	if h.weights != nil && h.weights[h.next] != 1 {
		h.weights[h.next] = 1
		h.weighted--
	}
	h.next = (h.next + 1) % h.capacity
	if h.next == 0 {
		h.full = true
	}
}

// Len returns the number of stored observations.
func (h *History) Len() int {
	if h.full {
		return h.capacity
	}
	return h.next
}

// Cap returns the history capacity.
func (h *History) Cap() int { return h.capacity }

// Costs returns the stored costs (unspecified order; OLS and Pearson
// are order-invariant). The returned slice is freshly allocated; use
// CostsInto on the hot path.
func (h *History) Costs() []float64 { return h.CostsInto(nil) }

// CostsInto writes the stored costs into dst (grown only when its
// capacity is short) and returns it — the allocation-free form of
// Costs.
func (h *History) CostsInto(dst []float64) []float64 {
	n := h.Len()
	dst = linalg.GrowFloats(dst, n)
	copy(dst, h.costs[:n])
	return dst
}

// Column returns feature j across the stored observations, matching the
// order of Costs. The returned slice is freshly allocated; use
// ColumnInto on the hot path.
func (h *History) Column(j int) []float64 { return h.ColumnInto(nil, j) }

// ColumnInto writes feature j across the stored observations into dst
// (grown only when its capacity is short) and returns it.
func (h *History) ColumnInto(dst []float64, j int) []float64 {
	n := h.Len()
	dst = linalg.GrowFloats(dst, n)
	for i := 0; i < n; i++ {
		dst[i] = h.feats[i][j]
	}
	return dst
}

// MeanCost returns the average stored cost (0 when empty), the cold
// start fallback prediction. The ring's cost slice is averaged directly
// (means are order-invariant), so no copy is made.
func (h *History) MeanCost() float64 {
	return stats.Mean(h.costs[:h.Len()])
}

// Weighted reports whether any stored observation carries a weight
// other than 1 — the gate the MLR fit uses to choose between the plain
// OLS path (bit-identical to the pre-change-detection engine) and the
// weighted solve.
func (h *History) Weighted() bool { return h.weighted > 0 }

// WeightsInto writes the per-observation weights into dst in slot order
// (matching CostsInto/ColumnInto) and returns it. An unweighted history
// yields all ones.
func (h *History) WeightsInto(dst []float64) []float64 {
	n := h.Len()
	dst = linalg.GrowFloats(dst, n)
	if h.weights == nil {
		for i := range dst {
			dst[i] = 1
		}
		return dst
	}
	copy(dst, h.weights[:n])
	return dst
}

// DiscountOlder multiplies the weight of every observation except the
// newest keep by w, so a change verdict can demote the pre-change
// regime to a weak regularizer instead of deleting it outright.
// Repeated discounts compound. The weight array is allocated lazily on
// the first call — change verdicts are rare events, not steady state.
func (h *History) DiscountOlder(keep int, w float64) {
	n := h.Len()
	if keep < 0 {
		keep = 0
	}
	if keep >= n {
		return
	}
	if h.weights == nil {
		h.weights = make([]float64, h.capacity)
		for i := range h.weights {
			h.weights[i] = 1
		}
	}
	for back := keep; back < n; back++ {
		slot := ((h.next-1-back)%h.capacity + h.capacity) % h.capacity
		if h.weights[slot] == 1 {
			h.weighted++
		}
		h.weights[slot] *= w
		if h.weights[slot] == 1 { // w == 1: nothing actually changed
			h.weighted--
		}
	}
}

// Truncate drops every observation except the newest keep, compacting
// them into slots 0..keep-1 in time order. Evicted slots park their
// feature buffers for reuse, so the ring re-fills without reallocating.
func (h *History) Truncate(keep int) {
	n := h.Len()
	if keep < 0 {
		keep = 0
	}
	if keep >= n {
		return
	}
	if h.tFeats == nil {
		h.tFeats = make([]features.Vector, h.capacity)
		h.tCosts = make([]float64, h.capacity)
		h.tW = make([]float64, h.capacity)
	}
	start := 0
	if h.full {
		start = h.next
	}
	for l := 0; l < n; l++ { // time order, oldest first
		s := (start + l) % h.capacity
		h.tFeats[l], h.tCosts[l] = h.feats[s], h.costs[s]
		if h.weights != nil {
			h.tW[l] = h.weights[s]
		} else {
			h.tW[l] = 1
		}
	}
	h.weighted = 0
	for i := 0; i < keep; i++ { // kept: the newest keep, oldest-of-kept first
		h.feats[i], h.costs[i] = h.tFeats[n-keep+i], h.tCosts[n-keep+i]
		if h.weights != nil {
			h.weights[i] = h.tW[n-keep+i]
			if h.weights[i] != 1 {
				h.weighted++
			}
		}
	}
	for i := keep; i < h.capacity; i++ {
		if i < n {
			h.feats[i] = h.tFeats[i-keep] // evicted buffer, parked for reuse
		}
		h.costs[i] = 0
		if h.weights != nil {
			h.weights[i] = 1
		}
	}
	for i := range h.tFeats {
		h.tFeats[i] = nil // don't pin buffers from the scratch
	}
	h.next = keep
	h.full = false
}

// HistoryState is the portable form of a History: the raw ring layout,
// slot order included. The slot order matters for bit-identity — OLS
// and Pearson iterate the ring in slot order, and floating-point sums
// depend on summation order — so a checkpoint must round-trip the ring
// as laid out, not merely the logical window.
type HistoryState struct {
	Feats [][]float64
	Costs []float64
	Next  int
	Full  bool
	// Weights is nil for an unweighted history (including every
	// snapshot taken before change detection existed — gob decodes the
	// missing field as nil, which restores correctly).
	Weights []float64
}

// State deep-copies the ring for a checkpoint.
func (h *History) State() HistoryState {
	st := HistoryState{
		Feats: make([][]float64, h.capacity),
		Costs: make([]float64, h.capacity),
		Next:  h.next,
		Full:  h.full,
	}
	copy(st.Costs, h.costs)
	for i, f := range h.feats {
		if f != nil {
			st.Feats[i] = append([]float64(nil), f...)
		}
	}
	if h.weights != nil {
		st.Weights = append([]float64(nil), h.weights...)
	}
	return st
}

// SetState restores a ring captured by State into a history of the same
// capacity, preserving the slot layout exactly.
func (h *History) SetState(st HistoryState) error {
	if len(st.Feats) != h.capacity || len(st.Costs) != h.capacity {
		return fmt.Errorf("predict: history state capacity %d does not match %d", len(st.Feats), h.capacity)
	}
	if st.Next < 0 || st.Next >= h.capacity {
		return fmt.Errorf("predict: history state next=%d out of range for capacity %d", st.Next, h.capacity)
	}
	if st.Weights != nil && len(st.Weights) != h.capacity {
		return fmt.Errorf("predict: history state has %d weights for capacity %d", len(st.Weights), h.capacity)
	}
	copy(h.costs, st.Costs)
	for i, f := range st.Feats {
		if f == nil {
			h.feats[i] = nil
			continue
		}
		slot := h.feats[i]
		if cap(slot) < len(f) {
			slot = make(features.Vector, len(f))
		}
		slot = slot[:len(f)]
		copy(slot, f)
		h.feats[i] = slot
	}
	if st.Weights == nil {
		h.weights = nil
		h.weighted = 0
	} else {
		if h.weights == nil {
			h.weights = make([]float64, h.capacity)
		}
		copy(h.weights, st.Weights)
		h.weighted = 0
		for _, w := range h.weights {
			if w != 1 {
				h.weighted++
			}
		}
	}
	h.next = st.Next
	h.full = st.Full
	return nil
}

// FCBF selects relevant, non-redundant predictors from cols (one slice
// per candidate feature, all of equal length) for response y. It is the
// thesis' variant of the Fast Correlation-Based Filter (§3.2.3): the
// goodness measure is the absolute Pearson coefficient rather than
// symmetrical uncertainty.
//
// Phase 1 keeps features with |r(X_j, y)| >= threshold (falling back to
// the single best feature if none qualifies). Phase 2 walks the
// survivors in descending relevance and removes every later feature
// whose correlation with an earlier survivor exceeds its own
// correlation with the response.
func FCBF(cols [][]float64, y []float64, threshold float64) []int {
	var sc fcbfScratch
	return sc.selectInto(nil, cols, y, threshold)
}

// fcbfCand is one phase-1 survivor: a feature index and its relevance.
type fcbfCand struct {
	idx int
	r   float64
}

// fcbfScratch holds the FCBF intermediates so the per-bin refit reuses
// them instead of allocating. The zero value is ready to use.
type fcbfScratch struct {
	cands   []fcbfCand
	removed []bool
}

// selectInto is FCBF appending the selected indices to out (usually a
// reused slice truncated to zero length) with all intermediates taken
// from the scratch. Same algorithm, same output, no steady-state
// allocation.
func (sc *fcbfScratch) selectInto(out []int, cols [][]float64, y []float64, threshold float64) []int {
	type cand = fcbfCand
	cands := sc.cands[:0]
	best := cand{idx: -1}
	for j, col := range cols {
		r := stats.Pearson(col, y)
		if r < 0 {
			r = -r
		}
		if r > best.r {
			best = cand{idx: j, r: r}
		}
		if r >= threshold {
			cands = append(cands, cand{idx: j, r: r})
		}
	}
	sc.cands = cands
	if len(cands) == 0 {
		if best.idx < 0 {
			return out
		}
		return append(out, best.idx)
	}
	// Descending relevance (stable on ties by original index).
	for i := 1; i < len(cands); i++ {
		for k := i; k > 0 && (cands[k].r > cands[k-1].r ||
			(cands[k].r == cands[k-1].r && cands[k].idx < cands[k-1].idx)); k-- {
			cands[k], cands[k-1] = cands[k-1], cands[k]
		}
	}
	if cap(sc.removed) < len(cands) {
		sc.removed = make([]bool, len(cands))
	}
	removed := sc.removed[:len(cands)]
	clear(removed)
	for i := range cands {
		if removed[i] {
			continue
		}
		for j := i + 1; j < len(cands); j++ {
			if removed[j] {
				continue
			}
			r := stats.Pearson(cols[cands[i].idx], cols[cands[j].idx])
			if r < 0 {
				r = -r
			}
			// The epsilon absorbs rounding in the two Pearson
			// computations; without it an exactly-duplicated column can
			// survive its own redundancy check.
			if r >= cands[j].r-1e-9 {
				removed[j] = true
			}
		}
	}
	for i, c := range cands {
		if !removed[i] {
			out = append(out, c.idx)
		}
	}
	return out
}

// MLR is the thesis' predictor: FCBF feature selection plus an
// SVD-solved multiple linear regression, refitted on every prediction so
// the model tracks traffic changes (§3.1). Construct with NewMLR.
type MLR struct {
	hist      *History
	threshold float64

	// MinHistory is the observation count below which Predict falls
	// back to the mean observed cost (a fresh model with fewer rows
	// than predictors is meaningless).
	MinHistory int

	// ChangeKeep is how many of the newest observations NotifyChange
	// preserves at full weight (0 selects MinHistory). ChangeDiscount
	// is the factor applied to everything older: 0 selects
	// DefaultChangeDiscount, a negative value truncates the old regime
	// outright instead of down-weighting it.
	ChangeKeep     int
	ChangeDiscount float64

	selected []int
	coef     []float64 // intercept followed by per-selected coefficients

	// Fit scratch, reused across predictions so the per-bin refit is
	// allocation-free in steady state (§3.1 refits on every prediction;
	// the thesis requires the prediction subsystem's own overhead to
	// stay negligible).
	y      []float64   // response vector
	colBuf []float64   // flat backing of cols: NumFeatures × n
	cols   [][]float64 // per-feature views into colBuf
	sw     []float64   // sqrt-weights for the weighted solve
	fcbf   fcbfScratch
	a      linalg.Matrix // design matrix, reshaped in place
	ws     linalg.Workspace

	// Op counters for the overhead accounting of Table 3.4.
	FCBFOps int64 // scalar multiplies spent in correlation scans
	FitOps  int64 // scalar multiplies spent in the OLS solve
}

// DefaultHistory and DefaultThreshold are the operating point chosen in
// §3.3.1: 60 batches (6 s) of history and an FCBF threshold of 0.6.
const (
	DefaultHistory   = 60
	DefaultThreshold = 0.6
)

// DefaultChangeDiscount is the weight left on pre-change observations
// after a NotifyChange: small enough that the fresh regime dominates the
// fit immediately (a full 60-slot window of discounted rows amounts to
// well under one effective observation), non-zero so the old rows still
// condition the solve while the new window is thin.
const DefaultChangeDiscount = 0.01

// NewMLR returns an MLR predictor with the given history length and
// FCBF threshold.
func NewMLR(history int, threshold float64) *MLR {
	return &MLR{
		hist:       NewHistory(history),
		threshold:  threshold,
		MinHistory: 8,
	}
}

// Name implements Predictor.
func (m *MLR) Name() string { return "mlr" }

// Observe implements Predictor.
func (m *MLR) Observe(f features.Vector, cost float64) { m.hist.Add(f, cost) }

// History exposes the predictor's observation window (used by the load
// shedding system to overwrite context-switch-corrupted measurements
// with predictions, §3.2.4).
func (m *MLR) History() *History { return m.hist }

// Selected returns the feature indices chosen by the last fit.
func (m *MLR) Selected() []int { return m.selected }

// Predict implements Predictor: select features, fit OLS on the current
// history and evaluate the model at f. The refit runs entirely in the
// predictor's scratch buffers: after warm-up it performs no allocations.
func (m *MLR) Predict(f features.Vector) float64 {
	n := m.hist.Len()
	if n < m.MinHistory {
		return m.hist.MeanCost()
	}
	// Scratch is sized for a full history up front so the n = MinHistory
	// .. capacity ramp-up does not re-grow it at every new length.
	if cap(m.y) < m.hist.Cap() {
		m.y = make([]float64, 0, m.hist.Cap())
	}
	m.y = m.hist.CostsInto(m.y)
	y := m.y
	if cap(m.cols) < features.NumFeatures {
		m.cols = make([][]float64, features.NumFeatures)
	}
	cols := m.cols[:features.NumFeatures]
	if cap(m.colBuf) < features.NumFeatures*m.hist.Cap() {
		m.colBuf = make([]float64, features.NumFeatures*m.hist.Cap())
	}
	m.colBuf = m.colBuf[:features.NumFeatures*n]
	for j := range cols {
		cols[j] = m.hist.ColumnInto(m.colBuf[j*n:j*n:(j+1)*n], j)
	}
	m.selected = m.fcbf.selectInto(m.selected[:0], cols, y, m.threshold)
	m.FCBFOps += int64(n * features.NumFeatures)
	if len(m.selected) == 0 {
		return m.hist.MeanCost()
	}

	// Weighted fit (only after a change verdict down-weighted part of
	// the window): scale the response and the design matrix rows by
	// sqrt(weight), so the ordinary least-squares solve minimizes the
	// weighted residual sum and the discounted pre-change regime barely
	// tugs on the coefficients. Selection above ran on the *raw*
	// columns — Pearson over sqrt-scaled data is dominated by the
	// weight pattern itself (every column "correlates" through the
	// small-row/large-row structure), which floods the model with
	// spurious predictors. An unweighted history skips all of this and
	// takes the historical code path bit for bit.
	weighted := m.hist.Weighted()
	var sw []float64
	if weighted {
		if cap(m.sw) < m.hist.Cap() {
			m.sw = make([]float64, 0, m.hist.Cap())
		}
		m.sw = m.hist.WeightsInto(m.sw)
		sw = m.sw
		for i := 0; i < n; i++ {
			sw[i] = math.Sqrt(sw[i])
			y[i] *= sw[i]
		}
	}

	p := len(m.selected)
	a := &m.a
	a.Reshape(n, p+1)
	for i := 0; i < n; i++ {
		if weighted {
			a.Set(i, 0, sw[i]) // intercept column scaled like the rest
			for k, j := range m.selected {
				a.Set(i, k+1, cols[j][i]*sw[i])
			}
			continue
		}
		a.Set(i, 0, 1)
		for k, j := range m.selected {
			a.Set(i, k+1, cols[j][i])
		}
	}
	m.coef = m.ws.LeastSquares(m.coef[:0], a, y)
	m.FitOps += int64(n * (p + 1) * (p + 1))

	pred := m.coef[0]
	for k, j := range m.selected {
		pred += m.coef[k+1] * f[j]
	}
	if pred < 0 {
		pred = 0
	}
	return pred
}

// NotifyChange tells the predictor an external change detector decided
// the traffic regime shifted: the newest ChangeKeep observations stay
// at full weight and everything older is discounted by ChangeDiscount
// (or truncated when ChangeDiscount < 0). The next Predict refits on
// the reshaped window — with fewer than MinHistory full-weight rows the
// weighted solve still runs, but the discounted old regime contributes
// almost nothing, so the model effectively restarts from the post-change
// observations.
func (m *MLR) NotifyChange() {
	keep := m.ChangeKeep
	if keep == 0 {
		keep = m.MinHistory
	}
	switch {
	case m.ChangeDiscount < 0:
		m.hist.Truncate(keep)
	case m.ChangeDiscount == 0:
		m.hist.DiscountOlder(keep, DefaultChangeDiscount)
	default:
		m.hist.DiscountOlder(keep, m.ChangeDiscount)
	}
}

// SLR is the simple linear regression baseline (§3.4.1): one fixed
// predictor variable, the packet count unless configured otherwise.
type SLR struct {
	hist    *History
	Feature int
}

// NewSLR returns an SLR predictor over the given history length using
// feature index feat (typically features.IdxPackets).
func NewSLR(history, feat int) *SLR {
	return &SLR{hist: NewHistory(history), Feature: feat}
}

// Name implements Predictor.
func (s *SLR) Name() string { return "slr" }

// History exposes the predictor's observation window for checkpoints.
func (s *SLR) History() *History { return s.hist }

// Observe implements Predictor.
func (s *SLR) Observe(f features.Vector, cost float64) { s.hist.Add(f, cost) }

// Predict implements Predictor using the closed-form OLS line fit.
func (s *SLR) Predict(f features.Vector) float64 {
	n := s.hist.Len()
	if n < 2 {
		return s.hist.MeanCost()
	}
	xs := s.hist.Column(s.Feature)
	ys := s.hist.Costs()
	mx, my := stats.Mean(xs), stats.Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return my
	}
	b1 := sxy / sxx
	b0 := my - b1*mx
	pred := b0 + b1*f[s.Feature]
	if pred < 0 {
		pred = 0
	}
	return pred
}

// EWMA is the exponentially weighted moving average baseline (§3.4.1,
// Equation 3.4). It ignores traffic features entirely — which is
// exactly why it trails traffic changes.
type EWMA struct {
	avg *stats.EWMA
}

// DefaultEWMAAlpha is the weight the thesis found best (Figure 3.10).
const DefaultEWMAAlpha = 0.3

// NewEWMA returns an EWMA predictor with the given weight.
func NewEWMA(alpha float64) *EWMA {
	return &EWMA{avg: stats.NewEWMA(alpha)}
}

// Name implements Predictor.
func (e *EWMA) Name() string { return "ewma" }

// State returns the average and seeded flag for a checkpoint.
func (e *EWMA) State() (value float64, seeded bool) {
	return e.avg.Value(), e.avg.Seeded()
}

// Restore sets the average and seeded flag captured by State.
func (e *EWMA) Restore(value float64, seeded bool) { e.avg.Restore(value, seeded) }

// Observe implements Predictor.
func (e *EWMA) Observe(_ features.Vector, cost float64) { e.avg.Update(cost) }

// Predict implements Predictor.
func (e *EWMA) Predict(_ features.Vector) float64 { return e.avg.Value() }

// Last predicts that the next batch costs exactly what the previous one
// did — the implicit model of the reactive load shedding baseline
// (§4.5.1).
type Last struct {
	cost float64
}

// NewLast returns a last-value predictor.
func NewLast() *Last { return &Last{} }

// Name implements Predictor.
func (l *Last) Name() string { return "last" }

// Observe implements Predictor.
func (l *Last) Observe(_ features.Vector, cost float64) { l.cost = cost }

// Predict implements Predictor.
func (l *Last) Predict(_ features.Vector) float64 { return l.cost }
