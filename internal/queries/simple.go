package queries

import (
	"time"

	"repro/internal/pkt"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// ---------------------------------------------------------------------
// counter — traffic load in packets and bytes (Table 2.2, cost: low).

// CounterResult is the counter query's per-interval answer: estimated
// (sampling-corrected) packet and byte totals.
type CounterResult struct {
	Packets float64
	Bytes   float64
}

// Counter counts packets and bytes per measurement interval, scaling by
// the inverse sampling rate to estimate its unsampled output.
type Counter struct {
	cfg  Config
	pkts float64
	byts float64
}

// NewCounter returns a counter query.
func NewCounter(cfg Config) *Counter { return &Counter{cfg: cfg} }

// Name implements Query.
func (q *Counter) Name() string { return "counter" }

// Method implements Query.
func (q *Counter) Method() sampling.Method { return sampling.Packet }

// MinRate implements Query (Table 5.2).
func (q *Counter) MinRate() float64 { return 0.03 }

// Interval implements Query.
func (q *Counter) Interval() time.Duration { return q.cfg.interval() }

// Process implements Query.
func (q *Counter) Process(b *pkt.Batch, rate float64) Ops {
	inv := 1.0
	if rate > 0 && rate < 1 {
		inv = 1 / rate
	}
	for i := range b.Pkts {
		q.pkts += inv
		q.byts += float64(b.Pkts[i].Size) * inv
	}
	return Ops{Packets: int64(len(b.Pkts)), Lookups: int64(len(b.Pkts))}
}

// Flush implements Query.
func (q *Counter) Flush() (Result, Ops) {
	r := CounterResult{Packets: q.pkts, Bytes: q.byts}
	q.pkts, q.byts = 0, 0
	return r, Ops{Flushes: 2}
}

// Error implements Query: the mean of the packet and byte relative
// errors.
func (q *Counter) Error(got, ref Result) float64 {
	g, r := got.(CounterResult), ref.(CounterResult)
	return (stats.RelErr(g.Packets, r.Packets) + stats.RelErr(g.Bytes, r.Bytes)) / 2
}

// Reset implements Query.
func (q *Counter) Reset() { q.pkts, q.byts = 0, 0 }

// ---------------------------------------------------------------------
// application — port-based application classification (cost: low).

// AppClass is a coarse application class assigned by port.
type AppClass int

// Application classes distinguished by the port map.
const (
	AppWeb AppClass = iota
	AppDNS
	AppMail
	AppP2P
	AppOther
	numAppClasses
)

var appNames = [numAppClasses]string{"web", "dns", "mail", "p2p", "other"}

// String returns the class name.
func (a AppClass) String() string { return appNames[a] }

// classifyPort maps a destination port to an application class.
func classifyPort(dport uint16) AppClass {
	switch dport {
	case 80, 443, 8080:
		return AppWeb
	case 53:
		return AppDNS
	case 25, 110, 143:
		return AppMail
	case 6881, 6346, 4662, 1214:
		return AppP2P
	default:
		return AppOther
	}
}

// AppCounts holds the estimated totals for one application class.
type AppCounts struct {
	Packets float64
	Bytes   float64
}

// ApplicationResult is the per-interval breakdown by application class.
type ApplicationResult struct {
	Apps [numAppClasses]AppCounts
}

// Application classifies packets into application classes by port and
// accumulates scaled per-class packet and byte counts.
type Application struct {
	cfg  Config
	apps [numAppClasses]AppCounts
}

// NewApplication returns an application-breakdown query.
func NewApplication(cfg Config) *Application { return &Application{cfg: cfg} }

// Name implements Query.
func (q *Application) Name() string { return "application" }

// Method implements Query.
func (q *Application) Method() sampling.Method { return sampling.Packet }

// MinRate implements Query (Table 5.2).
func (q *Application) MinRate() float64 { return 0.03 }

// Interval implements Query.
func (q *Application) Interval() time.Duration { return q.cfg.interval() }

// Process implements Query.
func (q *Application) Process(b *pkt.Batch, rate float64) Ops {
	inv := 1.0
	if rate > 0 && rate < 1 {
		inv = 1 / rate
	}
	for i := range b.Pkts {
		p := &b.Pkts[i]
		a := classifyPort(p.DstPort)
		q.apps[a].Packets += inv
		q.apps[a].Bytes += float64(p.Size) * inv
	}
	n := int64(len(b.Pkts))
	return Ops{Packets: n, Lookups: n}
}

// Flush implements Query.
func (q *Application) Flush() (Result, Ops) {
	r := ApplicationResult{Apps: q.apps}
	q.apps = [numAppClasses]AppCounts{}
	return r, Ops{Flushes: int64(numAppClasses)}
}

// Error implements Query: the average of per-class packet and byte
// relative errors weighted by the class's share of reference packets
// (§2.2.1).
func (q *Application) Error(got, ref Result) float64 {
	g, r := got.(ApplicationResult), ref.(ApplicationResult)
	var totalRefPkts float64
	for _, c := range r.Apps {
		totalRefPkts += c.Packets
	}
	if totalRefPkts == 0 {
		return 0
	}
	var err float64
	for a := 0; a < int(numAppClasses); a++ {
		w := r.Apps[a].Packets / totalRefPkts
		e := (stats.RelErr(g.Apps[a].Packets, r.Apps[a].Packets) +
			stats.RelErr(g.Apps[a].Bytes, r.Apps[a].Bytes)) / 2
		err += w * e
	}
	return err
}

// Reset implements Query.
func (q *Application) Reset() { q.apps = [numAppClasses]AppCounts{} }

// ---------------------------------------------------------------------
// high-watermark — high watermark of link utilization (cost: low).

// hwmBucket is the sub-interval resolution at which utilization is
// tracked; the watermark is the maximum bucket volume in the interval.
const hwmBucket = 100 * time.Millisecond

// HighWatermarkResult is the per-interval answer: the peak bytes seen in
// any single bucket, sampling-corrected.
type HighWatermarkResult struct {
	WatermarkBytes float64
}

// HighWatermark tracks the peak short-term link utilization per
// measurement interval.
type HighWatermark struct {
	cfg     Config
	buckets map[int64]float64
}

// NewHighWatermark returns a high-watermark query.
func NewHighWatermark(cfg Config) *HighWatermark {
	return &HighWatermark{cfg: cfg, buckets: make(map[int64]float64)}
}

// Name implements Query.
func (q *HighWatermark) Name() string { return "high-watermark" }

// Method implements Query.
func (q *HighWatermark) Method() sampling.Method { return sampling.Packet }

// MinRate implements Query (Table 5.2).
func (q *HighWatermark) MinRate() float64 { return 0.15 }

// Interval implements Query.
func (q *HighWatermark) Interval() time.Duration { return q.cfg.interval() }

// Process implements Query.
func (q *HighWatermark) Process(b *pkt.Batch, rate float64) Ops {
	inv := 1.0
	if rate > 0 && rate < 1 {
		inv = 1 / rate
	}
	for i := range b.Pkts {
		p := &b.Pkts[i]
		q.buckets[p.Ts/int64(hwmBucket)] += float64(p.Size) * inv
	}
	n := int64(len(b.Pkts))
	return Ops{Packets: n, Lookups: n}
}

// Flush implements Query.
func (q *HighWatermark) Flush() (Result, Ops) {
	var wm float64
	for _, v := range q.buckets {
		if v > wm {
			wm = v
		}
	}
	n := int64(len(q.buckets))
	clear(q.buckets)
	return HighWatermarkResult{WatermarkBytes: wm}, Ops{Flushes: n}
}

// Error implements Query.
func (q *HighWatermark) Error(got, ref Result) float64 {
	g, r := got.(HighWatermarkResult), ref.(HighWatermarkResult)
	return stats.RelErr(g.WatermarkBytes, r.WatermarkBytes)
}

// Reset implements Query.
func (q *HighWatermark) Reset() { clear(q.buckets) }
