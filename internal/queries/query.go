// Package queries implements the ten CoMo traffic queries of thesis
// Table 2.2 behind a black-box interface, together with the instrumented
// cost model that stands in for the paper's TSC cycle measurements.
//
// Each query really executes its data-structure work (hash tables,
// prefix aggregation, Boyer-Moore scans, fan-out bitmaps) and counts the
// basic operations it performs; a CostModel maps operation counts to
// synthetic CPU cycles. The load shedding system sees only the final
// cycle number, preserving the paper's black-box contract, while the
// per-query relation between traffic features and cost (new flows for
// flows, bytes for pattern-search, packets for counter, ...) emerges
// from real execution rather than being scripted.
package queries

import (
	"time"

	"repro/internal/pkt"
	"repro/internal/sampling"
)

// Ops counts the basic operations performed by a query while processing
// traffic. Field semantics follow §3.1's observation that query cost is
// dominated by "basic operations used to maintain its state".
type Ops struct {
	Packets int64 // packets touched
	Bytes   int64 // payload bytes scanned or copied
	Lookups int64 // state lookups / in-place updates
	Inserts int64 // new state entries created
	Sorts   int64 // comparison steps in ranking structures
	Flushes int64 // entries written out / cleared at interval end
}

// Add returns the element-wise sum of o and p.
func (o Ops) Add(p Ops) Ops {
	return Ops{
		Packets: o.Packets + p.Packets,
		Bytes:   o.Bytes + p.Bytes,
		Lookups: o.Lookups + p.Lookups,
		Inserts: o.Inserts + p.Inserts,
		Sorts:   o.Sorts + p.Sorts,
		Flushes: o.Flushes + p.Flushes,
	}
}

// CostModel maps operation counts to cycles. The defaults are tuned so
// the ten queries reproduce the relative cost ordering of Figure 2.2
// (pattern-search and p2p-detector byte-bound and expensive, counter and
// application packet-bound and cheap, flows driven by flow arrivals).
type CostModel struct {
	PerPacket float64
	PerByte   float64
	PerLookup float64
	PerInsert float64
	PerSort   float64
	PerFlush  float64
	PerBatch  float64 // fixed per-batch overhead of invoking the query
}

// DefaultCostModel returns the coefficients used across the evaluation.
func DefaultCostModel() CostModel {
	return CostModel{
		PerPacket: 60,
		PerByte:   22,
		PerLookup: 160,
		PerInsert: 540,
		PerSort:   90,
		PerFlush:  170,
		PerBatch:  12000,
	}
}

// Cycles converts operation counts into cycles.
func (c CostModel) Cycles(o Ops) float64 {
	return c.PerBatch +
		c.PerPacket*float64(o.Packets) +
		c.PerByte*float64(o.Bytes) +
		c.PerLookup*float64(o.Lookups) +
		c.PerInsert*float64(o.Inserts) +
		c.PerSort*float64(o.Sorts) +
		c.PerFlush*float64(o.Flushes)
}

// Result is a query's answer for one measurement interval. Concrete
// types are defined per query; accuracy evaluation type-asserts them.
type Result interface{}

// Query is a monitoring application plugged into the system — a black
// box from the load shedder's point of view (§2.1.3). Queries are not
// safe for concurrent use; the monitoring system is single-threaded per
// the CoMo capture-process model.
type Query interface {
	// Name returns the query's Table 2.2 name.
	Name() string
	// Method returns the shedding mechanism the query selected at
	// configuration time (Table 2.2).
	Method() sampling.Method
	// MinRate returns the minimum sampling rate m_q the query tolerates
	// (Table 5.2), the only accuracy information users must provide.
	MinRate() float64
	// Interval returns the measurement interval at which results are
	// flushed.
	Interval() time.Duration
	// Process consumes a (possibly sampled) batch. rate is the sampling
	// rate already applied to the batch, which the query may use to
	// estimate its unsampled output (§2.2). It returns the operations
	// performed.
	Process(b *pkt.Batch, rate float64) Ops
	// Flush ends the current measurement interval, returning the
	// interval's result and the flush operations.
	Flush() (Result, Ops)
	// Error computes the accuracy error in [0, 1] of result got against
	// the reference (lossless) result ref, per §2.2.1.
	Error(got, ref Result) float64
	// Reset discards all state, returning the query to construction
	// time.
	Reset()
}

// ResultRecycler is an optional Query extension for consumers that do
// not retain interval results: FlushInto is Flush reusing the storage
// (maps, slices) of a previous interval's result for the new one. prev
// must be a Result previously returned by this query — after the call
// it must no longer be read — or nil, which makes FlushInto equivalent
// to Flush. The reported values are identical either way; only the
// backing storage differs.
type ResultRecycler interface {
	FlushInto(prev Result) (Result, Ops)
}

// Config carries the tunables shared by query constructors.
type Config struct {
	Interval time.Duration // measurement interval; 1 s if zero
	Seed     uint64        // seed for any internal randomized structure
}

func (c Config) interval() time.Duration {
	if c.Interval == 0 {
		return time.Second
	}
	return c.Interval
}

// methodOverride reports a different shedding method for an existing
// query. It deliberately hides any custom-shedding methods of the
// wrapped query (the interface embedding only promotes Query methods),
// so a Custom-capable query wrapped to Packet or Flow is shed by
// sampling — which is how the Figure 6.1/6.2 method ablation works.
type methodOverride struct {
	Query
	m sampling.Method
}

// Method implements Query.
func (w methodOverride) Method() sampling.Method { return w.m }

// WithMethod returns a view of q that requests shedding method m.
func WithMethod(q Query, m sampling.Method) Query {
	return methodOverride{Query: q, m: m}
}

// StandardSet returns fresh instances of the seven queries used in the
// Chapter 3/4 evaluation: application, counter, flows, high-watermark,
// pattern-search, top-k and trace.
func StandardSet(cfg Config) []Query {
	return []Query{
		NewApplication(cfg),
		NewCounter(cfg),
		NewFlows(cfg),
		NewHighWatermark(cfg),
		NewPatternSearch(cfg, nil),
		NewTopK(cfg, 0),
		NewTraceQuery(cfg),
	}
}

// FullSet returns fresh instances of all ten Table 2.2 queries, the set
// used in the Chapter 5/6 evaluation.
func FullSet(cfg Config) []Query {
	return []Query{
		NewApplication(cfg),
		NewAutofocus(cfg, 0),
		NewCounter(cfg),
		NewFlows(cfg),
		NewHighWatermark(cfg),
		NewP2PDetector(cfg),
		NewPatternSearch(cfg, nil),
		NewSuperSources(cfg, 0),
		NewTopK(cfg, 0),
		NewTraceQuery(cfg),
	}
}
