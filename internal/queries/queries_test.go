package queries

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/pkt"
	"repro/internal/sampling"
	"repro/internal/trace"
)

func mkBatch(pkts ...pkt.Packet) *pkt.Batch {
	return &pkt.Batch{Bin: 100 * time.Millisecond, Pkts: pkts}
}

func tcp(src, dst uint32, sp, dp uint16, size int) pkt.Packet {
	return pkt.Packet{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: pkt.ProtoTCP, Size: size}
}

func TestOpsAdd(t *testing.T) {
	a := Ops{Packets: 1, Bytes: 2, Lookups: 3, Inserts: 4, Sorts: 5, Flushes: 6}
	b := Ops{Packets: 10, Bytes: 20, Lookups: 30, Inserts: 40, Sorts: 50, Flushes: 60}
	got := a.Add(b)
	want := Ops{Packets: 11, Bytes: 22, Lookups: 33, Inserts: 44, Sorts: 55, Flushes: 66}
	if got != want {
		t.Fatalf("Add = %+v", got)
	}
}

func TestCostModelCycles(t *testing.T) {
	m := CostModel{PerPacket: 1, PerByte: 2, PerLookup: 3, PerInsert: 4, PerSort: 5, PerFlush: 6, PerBatch: 100}
	got := m.Cycles(Ops{Packets: 1, Bytes: 1, Lookups: 1, Inserts: 1, Sorts: 1, Flushes: 1})
	if got != 100+1+2+3+4+5+6 {
		t.Fatalf("Cycles = %v", got)
	}
}

func TestCostModelRelativeOrdering(t *testing.T) {
	// Figure 2.2's shape: byte-scanning queries dwarf counter-style
	// queries on payload traffic.
	g := trace.NewGenerator(trace.Config{Seed: 1, Duration: 2 * time.Second, PacketsPerSec: 10000, Payload: true})
	model := DefaultCostModel()
	cost := map[string]float64{}
	qs := FullSet(Config{})
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for _, q := range qs {
			cost[q.Name()] += model.Cycles(q.Process(&b, 1))
		}
	}
	if cost["p2p-detector"] < 2*cost["counter"] {
		t.Errorf("p2p-detector (%.0f) should be far more expensive than counter (%.0f)", cost["p2p-detector"], cost["counter"])
	}
	if cost["pattern-search"] < 2*cost["counter"] {
		t.Errorf("pattern-search (%.0f) should be far more expensive than counter (%.0f)", cost["pattern-search"], cost["counter"])
	}
	if cost["counter"] <= 0 || cost["application"] <= 0 {
		t.Error("cheap queries must still cost something")
	}
}

func TestCounterExactWithoutSampling(t *testing.T) {
	q := NewCounter(Config{})
	q.Process(mkBatch(tcp(1, 2, 3, 80, 100), tcp(1, 2, 3, 80, 300)), 1)
	res, _ := q.Flush()
	r := res.(CounterResult)
	if r.Packets != 2 || r.Bytes != 400 {
		t.Fatalf("result = %+v", r)
	}
}

func TestCounterScalesBySamplingRate(t *testing.T) {
	q := NewCounter(Config{})
	q.Process(mkBatch(tcp(1, 2, 3, 80, 100)), 0.5)
	res, _ := q.Flush()
	r := res.(CounterResult)
	if r.Packets != 2 || r.Bytes != 200 {
		t.Fatalf("scaled result = %+v", r)
	}
}

func TestCounterErrorSymmetricComponents(t *testing.T) {
	q := NewCounter(Config{})
	got := CounterResult{Packets: 90, Bytes: 100}
	ref := CounterResult{Packets: 100, Bytes: 100}
	if e := q.Error(got, ref); math.Abs(e-0.05) > 1e-9 {
		t.Fatalf("error = %v, want 0.05", e)
	}
}

func TestCounterFlushResets(t *testing.T) {
	q := NewCounter(Config{})
	q.Process(mkBatch(tcp(1, 2, 3, 80, 100)), 1)
	q.Flush()
	res, _ := q.Flush()
	r := res.(CounterResult)
	if r.Packets != 0 {
		t.Fatal("Flush did not reset state")
	}
}

func TestApplicationClassification(t *testing.T) {
	q := NewApplication(Config{})
	q.Process(mkBatch(
		tcp(1, 2, 999, 80, 100),   // web
		tcp(1, 2, 999, 443, 200),  // web
		tcp(1, 2, 999, 53, 50),    // dns
		tcp(1, 2, 999, 6881, 400), // p2p
		tcp(1, 2, 999, 12345, 60), // other
	), 1)
	res, _ := q.Flush()
	r := res.(ApplicationResult)
	if r.Apps[AppWeb].Packets != 2 || r.Apps[AppWeb].Bytes != 300 {
		t.Errorf("web = %+v", r.Apps[AppWeb])
	}
	if r.Apps[AppDNS].Packets != 1 {
		t.Errorf("dns = %+v", r.Apps[AppDNS])
	}
	if r.Apps[AppP2P].Bytes != 400 {
		t.Errorf("p2p = %+v", r.Apps[AppP2P])
	}
	if r.Apps[AppOther].Packets != 1 {
		t.Errorf("other = %+v", r.Apps[AppOther])
	}
}

func TestApplicationErrorWeighted(t *testing.T) {
	q := NewApplication(Config{})
	var ref, got ApplicationResult
	ref.Apps[AppWeb] = AppCounts{Packets: 90, Bytes: 900}
	ref.Apps[AppDNS] = AppCounts{Packets: 10, Bytes: 100}
	got.Apps[AppWeb] = AppCounts{Packets: 90, Bytes: 900} // exact
	got.Apps[AppDNS] = AppCounts{Packets: 5, Bytes: 50}   // 50% off
	// Weighted: 0.9*0 + 0.1*0.5 = 0.05.
	if e := q.Error(got, ref); math.Abs(e-0.05) > 1e-9 {
		t.Fatalf("error = %v, want 0.05", e)
	}
}

func TestFlowsCountsDistinct(t *testing.T) {
	q := NewFlows(Config{})
	q.Process(mkBatch(
		tcp(1, 2, 10, 80, 100),
		tcp(1, 2, 10, 80, 100), // same flow
		tcp(1, 2, 11, 80, 100), // new flow
	), 1)
	res, _ := q.Flush()
	if r := res.(FlowsResult); r.Flows != 2 {
		t.Fatalf("flows = %v, want 2", r.Flows)
	}
}

func TestFlowsScalesByRate(t *testing.T) {
	q := NewFlows(Config{})
	q.Process(mkBatch(tcp(1, 2, 10, 80, 100)), 0.25)
	res, _ := q.Flush()
	if r := res.(FlowsResult); r.Flows != 4 {
		t.Fatalf("scaled flows = %v, want 4", r.Flows)
	}
}

func TestFlowsOpsCountInserts(t *testing.T) {
	q := NewFlows(Config{})
	ops := q.Process(mkBatch(
		tcp(1, 2, 10, 80, 100),
		tcp(1, 2, 10, 80, 100),
		tcp(1, 2, 11, 80, 100),
	), 1)
	if ops.Inserts != 2 || ops.Lookups != 3 {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestFlowsPrefersFlowSampling(t *testing.T) {
	if NewFlows(Config{}).Method() != sampling.Flow {
		t.Fatal("flows should use flow sampling")
	}
}

func TestHighWatermark(t *testing.T) {
	q := NewHighWatermark(Config{})
	b := mkBatch(
		pkt.Packet{Ts: 0, Size: 100},
		pkt.Packet{Ts: int64(50 * time.Millisecond), Size: 100},
		pkt.Packet{Ts: int64(150 * time.Millisecond), Size: 500},
	)
	q.Process(b, 1)
	res, _ := q.Flush()
	if r := res.(HighWatermarkResult); r.WatermarkBytes != 500 {
		t.Fatalf("watermark = %v, want 500", r.WatermarkBytes)
	}
}

func TestTraceQueryCountsAll(t *testing.T) {
	q := NewTraceQuery(Config{})
	q.Process(mkBatch(tcp(1, 2, 3, 80, 100), tcp(1, 2, 3, 80, 200)), 1)
	res, _ := q.Flush()
	r := res.(TraceResult)
	if r.Packets != 2 || r.Bytes != 300 {
		t.Fatalf("trace result = %+v", r)
	}
}

func TestTraceErrorIsProcessedFraction(t *testing.T) {
	q := NewTraceQuery(Config{})
	e := q.Error(TraceResult{Packets: 30}, TraceResult{Packets: 100})
	if math.Abs(e-0.7) > 1e-9 {
		t.Fatalf("error = %v, want 0.7", e)
	}
	if q.Error(TraceResult{}, TraceResult{}) != 0 {
		t.Fatal("empty reference should give zero error")
	}
}

func TestPatternSearchFindsEmbedded(t *testing.T) {
	q := NewPatternSearch(Config{}, []byte("NEEDLE"))
	pay := append(bytes.Repeat([]byte{'x'}, 50), []byte("xxNEEDLEyy")...)
	b := mkBatch(
		pkt.Packet{Size: 100, Payload: pay},
		pkt.Packet{Size: 100, Payload: bytes.Repeat([]byte{'z'}, 60)},
	)
	q.Process(b, 1)
	res, _ := q.Flush()
	r := res.(PatternResult)
	if r.Matches != 1 {
		t.Fatalf("matches = %v, want 1", r.Matches)
	}
	if r.Processed != 2 {
		t.Fatalf("processed = %v, want 2", r.Processed)
	}
}

func TestPatternSearchHorspoolAgainstOracle(t *testing.T) {
	q := NewPatternSearch(Config{}, []byte("abcab"))
	texts := [][]byte{
		[]byte(""),
		[]byte("abcab"),
		[]byte("xabcabx"),
		[]byte("abcabcab"),
		[]byte("ababababab"),
		[]byte("aaaaaaabcab"),
		[]byte("abca"),
		bytes.Repeat([]byte("abc"), 100),
	}
	for _, text := range texts {
		found, _ := q.search(text)
		if found != q.ContainsPattern(text) {
			t.Errorf("search(%q) = %v, oracle disagrees", text, found)
		}
	}
}

func TestPatternSearchScansAllBytes(t *testing.T) {
	q := NewPatternSearch(Config{}, []byte("NEEDLE"))
	text := bytes.Repeat([]byte{'q'}, 500)
	_, scanned := q.search(text)
	if scanned != 500 {
		t.Fatalf("scanned = %d, want full payload charge", scanned)
	}
}

func TestTopKRanking(t *testing.T) {
	q := NewTopK(Config{}, 2)
	q.Process(mkBatch(
		tcp(1, 100, 5, 80, 1000),
		tcp(1, 200, 5, 80, 500),
		tcp(1, 300, 5, 80, 2500),
		tcp(1, 100, 5, 80, 1000),
	), 1)
	res, _ := q.Flush()
	r := res.(TopKResult)
	if len(r.List) != 2 {
		t.Fatalf("list length = %d", len(r.List))
	}
	if r.List[0].IP != 300 || r.List[1].IP != 100 {
		t.Fatalf("ranking wrong: %+v", r.List)
	}
	if r.List[1].Bytes != 2000 {
		t.Fatalf("bytes for ip 100 = %v, want 2000", r.List[1].Bytes)
	}
}

func TestTopKErrorZeroWhenIdentical(t *testing.T) {
	q := NewTopK(Config{}, 3)
	q.Process(mkBatch(
		tcp(1, 100, 5, 80, 1000),
		tcp(1, 200, 5, 80, 900),
		tcp(1, 300, 5, 80, 800),
		tcp(1, 400, 5, 80, 100),
	), 1)
	res, _ := q.Flush()
	if e := q.Error(res, res); e != 0 {
		t.Fatalf("self-error = %v", e)
	}
}

func TestTopKMisrankedPairs(t *testing.T) {
	q := NewTopK(Config{}, 2)
	ref := TopKResult{All: map[uint32]float64{1: 100, 2: 90, 3: 80, 4: 10}}
	// Sampled run reports {1, 4}: destination 4 (true 10) beats nothing;
	// 2 (90) and 3 (80) both outrank 4 -> 2 misranked pairs.
	got := TopKResult{List: []TopKEntry{{IP: 1}, {IP: 4}}}
	if n := q.MisrankedPairs(got, ref); n != 2 {
		t.Fatalf("misranked = %d, want 2", n)
	}
	if e := q.Error(got, ref); math.Abs(e-0.5) > 1e-9 {
		t.Fatalf("normalized error = %v, want 2/4", e)
	}
}

func TestAutofocusReportsHeavyCluster(t *testing.T) {
	q := NewAutofocus(Config{}, 0.1)
	// One /24 with dominant traffic, background spread wide.
	var pkts []pkt.Packet
	heavy := pkt.IPv4(147, 83, 9, 0)
	for i := 0; i < 50; i++ {
		// Spread across the /24 so no single host crosses the threshold
		// but the subnet as a whole does.
		pkts = append(pkts, tcp(1, heavy|uint32(i%50), 5, 80, 1000))
	}
	for i := 0; i < 50; i++ {
		pkts = append(pkts, tcp(1, pkt.IPv4(10, byte(i), byte(i), byte(i)), 5, 80, 10))
	}
	q.Process(mkBatch(pkts...), 1)
	res, _ := q.Flush()
	r := res.(AutofocusResult)
	found := false
	for _, c := range r.Clusters {
		if c.Len == 24 && c.Prefix == heavy {
			found = true
		}
	}
	if !found {
		t.Fatalf("heavy /24 not reported: %+v", r.Clusters)
	}
}

func TestAutofocusResidualSubtraction(t *testing.T) {
	q := NewAutofocus(Config{}, 0.3)
	// A single /32 carries 60% of traffic; its /24 parent carries no
	// residual beyond it and must not be double reported.
	var pkts []pkt.Packet
	host := pkt.IPv4(147, 83, 9, 7)
	for i := 0; i < 60; i++ {
		pkts = append(pkts, tcp(1, host, 5, 80, 100))
	}
	for i := 0; i < 40; i++ {
		pkts = append(pkts, tcp(1, pkt.IPv4(10, byte(i), 0, byte(i)), 5, 80, 100))
	}
	q.Process(mkBatch(pkts...), 1)
	res, _ := q.Flush()
	r := res.(AutofocusResult)
	for _, c := range r.Clusters {
		if c.Len == 24 && c.Prefix == (host&0xffffff00) {
			t.Fatalf("parent /24 reported despite no residual: %+v", r.Clusters)
		}
	}
	if len(r.Clusters) == 0 || r.Clusters[0].Prefix != host || r.Clusters[0].Len != 32 {
		t.Fatalf("host cluster missing: %+v", r.Clusters)
	}
}

func TestAutofocusErrorJaccard(t *testing.T) {
	q := NewAutofocus(Config{}, 0)
	a := AutofocusResult{Clusters: []Cluster{{Prefix: 1, Len: 24}, {Prefix: 2, Len: 24}}}
	b := AutofocusResult{Clusters: []Cluster{{Prefix: 1, Len: 24}}}
	if e := q.Error(a, a); e != 0 {
		t.Fatalf("identical error = %v", e)
	}
	if e := q.Error(b, a); math.Abs(e-0.5) > 1e-9 {
		t.Fatalf("half-overlap error = %v, want 0.5", e)
	}
}

func TestSuperSourcesFindsScanner(t *testing.T) {
	q := NewSuperSources(Config{}, 3)
	var pkts []pkt.Packet
	scanner := pkt.IPv4(203, 0, 113, 1)
	for i := 0; i < 300; i++ {
		pkts = append(pkts, tcp(scanner, uint32(i)*2654435761, 5, 80, 40))
	}
	for i := 0; i < 50; i++ {
		pkts = append(pkts, tcp(pkt.IPv4(10, 0, 0, byte(i)), pkt.IPv4(147, 83, 1, 1), 5, 80, 100))
	}
	q.Process(mkBatch(pkts...), 1)
	res, _ := q.Flush()
	r := res.(SuperSourcesResult)
	if len(r.Top) == 0 || r.Top[0].IP != scanner {
		t.Fatalf("scanner not ranked first: %+v", r.Top)
	}
	if math.Abs(r.Top[0].FanOut-300)/300 > 0.1 {
		t.Fatalf("fan-out estimate %v, want ~300", r.Top[0].FanOut)
	}
}

func TestSuperSourcesErrorMissingSource(t *testing.T) {
	q := NewSuperSources(Config{}, 2)
	ref := SuperSourcesResult{
		Top: []SuperSource{{IP: 1, FanOut: 100}, {IP: 2, FanOut: 50}},
		All: map[uint32]float64{1: 100, 2: 50},
	}
	got := SuperSourcesResult{All: map[uint32]float64{1: 100}}
	// Source 1 exact (err 0), source 2 missing (err 1) -> avg 0.5.
	if e := q.Error(got, ref); math.Abs(e-0.5) > 1e-9 {
		t.Fatalf("error = %v, want 0.5", e)
	}
}

func p2pBatch(sig []byte, dport uint16) *pkt.Batch {
	pay := make([]byte, 100)
	copy(pay, sig)
	return mkBatch(pkt.Packet{
		SrcIP: 1, DstIP: 2, SrcPort: 5000, DstPort: dport,
		Proto: pkt.ProtoTCP, Size: 140, Payload: pay,
	})
}

func TestP2PDetectorSignature(t *testing.T) {
	q := NewP2PDetector(Config{})
	q.Process(p2pBatch(trace.SigBitTorrent, 50000), 1) // non-canonical port
	res, _ := q.Flush()
	r := res.(P2PResult)
	if len(r.Detected) != 1 || r.Count != 1 {
		t.Fatalf("signature flow not detected: %+v", r)
	}
}

func TestP2PDetectorIgnoresCleanFlow(t *testing.T) {
	q := NewP2PDetector(Config{})
	pay := bytes.Repeat([]byte{'a'}, 100)
	q.Process(mkBatch(pkt.Packet{SrcIP: 1, DstIP: 2, SrcPort: 5, DstPort: 80, Proto: pkt.ProtoTCP, Size: 140, Payload: pay}), 1)
	res, _ := q.Flush()
	if r := res.(P2PResult); len(r.Detected) != 0 {
		t.Fatalf("clean flow detected as P2P: %+v", r)
	}
}

func TestP2PDetectorStopsScanningAfterDecision(t *testing.T) {
	q := NewP2PDetector(Config{})
	pay := bytes.Repeat([]byte{'a'}, 100)
	mk := func() *pkt.Batch {
		return mkBatch(pkt.Packet{SrcIP: 1, DstIP: 2, SrcPort: 5, DstPort: 80, Proto: pkt.ProtoTCP, Size: 140, Payload: append([]byte{}, pay...)})
	}
	q.Process(mk(), 1)
	q.Process(mk(), 1)
	ops := q.Process(mk(), 1) // third packet: flow decided, no scan
	if ops.Bytes != 0 {
		t.Fatalf("decided flow still scanned: %+v", ops)
	}
}

func TestP2PDetectorCustomShedding(t *testing.T) {
	q := NewP2PDetector(Config{Seed: 3})
	q.ShedTo(0)
	// With zero inspection every canonical-port flow is still caught by
	// the port heuristic, at zero byte cost.
	ops := q.Process(p2pBatch(trace.SigBitTorrent, 6881), 1)
	if ops.Bytes != 0 {
		t.Fatalf("shed flow still scanned payload: %+v", ops)
	}
	res, _ := q.Flush()
	if r := res.(P2PResult); len(r.Detected) != 1 {
		t.Fatalf("port heuristic missed canonical flow: %+v", r)
	}
	// But ephemeral-port P2P flows are lost without payload inspection.
	q.ShedTo(0)
	q.Process(p2pBatch(trace.SigGnutella, 43210), 1)
	res, _ = q.Flush()
	if r := res.(P2PResult); len(r.Detected) != 0 {
		t.Fatalf("port heuristic should miss ephemeral flow: %+v", r)
	}
}

func TestP2PDetectorShedToClamps(t *testing.T) {
	q := NewP2PDetector(Config{})
	q.ShedTo(5)
	if q.InspectFraction() != 1 {
		t.Fatal("ShedTo did not clamp high")
	}
	q.ShedTo(-1)
	if q.InspectFraction() != 0 {
		t.Fatal("ShedTo did not clamp low")
	}
}

func TestP2PErrorMetric(t *testing.T) {
	q := NewP2PDetector(Config{})
	p1 := tcp(1, 2, 3, 80, 0)
	p2 := tcp(1, 2, 4, 80, 0)
	k1 := p1.FlowKey()
	k2 := p2.FlowKey()
	ref := P2PResult{Detected: map[pkt.FlowKey]bool{k1: true, k2: true}}
	got := P2PResult{Detected: map[pkt.FlowKey]bool{k1: true}}
	if e := q.Error(got, ref); math.Abs(e-0.5) > 1e-9 {
		t.Fatalf("error = %v, want 0.5", e)
	}
}

func TestStandardAndFullSets(t *testing.T) {
	std := StandardSet(Config{})
	if len(std) != 7 {
		t.Fatalf("standard set size = %d", len(std))
	}
	full := FullSet(Config{})
	if len(full) != 10 {
		t.Fatalf("full set size = %d", len(full))
	}
	names := map[string]bool{}
	for _, q := range full {
		if names[q.Name()] {
			t.Fatalf("duplicate query %q", q.Name())
		}
		names[q.Name()] = true
		if q.MinRate() <= 0 || q.MinRate() > 1 {
			t.Errorf("%s min rate out of range: %v", q.Name(), q.MinRate())
		}
		if q.Interval() != time.Second {
			t.Errorf("%s default interval = %v", q.Name(), q.Interval())
		}
	}
}

func TestAllQueriesSelfErrorZero(t *testing.T) {
	// Processing identical traffic twice must give zero error for every
	// query: the accuracy metrics are grounded at equality.
	g := trace.NewGenerator(trace.Config{Seed: 2, Duration: time.Second, PacketsPerSec: 8000, Payload: true})
	batches := trace.Record(g)
	run := func() map[string]Result {
		out := map[string]Result{}
		for _, q := range FullSet(Config{Seed: 5}) {
			for i := range batches {
				q.Process(&batches[i], 1)
			}
			res, _ := q.Flush()
			out[q.Name()] = res
		}
		return out
	}
	a, b := run(), run()
	for _, q := range FullSet(Config{Seed: 5}) {
		if e := q.Error(a[q.Name()], b[q.Name()]); e != 0 {
			t.Errorf("%s self-error = %v, want 0", q.Name(), e)
		}
	}
}

func TestResetClearsEveryQuery(t *testing.T) {
	g := trace.NewGenerator(trace.Config{Seed: 4, Duration: time.Second, PacketsPerSec: 5000, Payload: true})
	batches := trace.Record(g)
	for _, q := range FullSet(Config{Seed: 5}) {
		for i := range batches {
			q.Process(&batches[i], 1)
		}
		q.Reset()
		resEmpty, _ := q.Flush()
		q2 := cloneByName(q.Name())
		resFresh, _ := q2.Flush()
		if e := q.Error(resEmpty, resFresh); e != 0 {
			t.Errorf("%s state survived Reset (err=%v)", q.Name(), e)
		}
	}
}

func cloneByName(name string) Query {
	for _, q := range FullSet(Config{Seed: 5}) {
		if q.Name() == name {
			return q
		}
	}
	return nil
}

func BenchmarkFullSetProcess(b *testing.B) {
	g := trace.NewGenerator(trace.Config{Seed: 1, Duration: time.Hour, PacketsPerSec: 25000, Payload: true})
	batch, _ := g.NextBatch()
	qs := FullSet(Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			q.Process(&batch, 1)
		}
	}
}

// ---------------------------------------------------------------------
// Allocation-regression guards (the PR 5 analogue of the PR 4
// extraction guards): the steady-state per-batch path of every query
// must be allocation-free, and the recycling interval rotation must
// cost at most the one interface box its Result requires.

// allocBatch generates a realistic payload-bearing batch for the
// steady-state guards.
func allocBatch(t testing.TB) *pkt.Batch {
	t.Helper()
	g := trace.NewGenerator(trace.Config{
		Seed: 9, Duration: 2 * time.Second, PacketsPerSec: 20000,
		Payload: true, P2PFrac: 0.2, ScanFrac: 0.05,
	})
	b, ok := g.NextBatch()
	if !ok || len(b.Pkts) == 0 {
		t.Fatal("empty benchmark batch")
	}
	return &b
}

func TestQueryProcessZeroAllocSteadyState(t *testing.T) {
	b := allocBatch(t)
	for _, q := range FullSet(Config{Seed: 1}) {
		q := q
		// Warm up: one full interval cycle populates the tables, the
		// pools and any scratch at their steady-state sizes, and a second
		// Process re-fills the cleared tables.
		q.Process(b, 1)
		var prev Result
		if rec, ok := q.(ResultRecycler); ok {
			prev, _ = rec.FlushInto(nil)
			_ = prev
		} else {
			q.Flush()
		}
		q.Process(b, 1)
		allocs := testing.AllocsPerRun(10, func() {
			q.Process(b, 1)
		})
		if allocs != 0 {
			t.Errorf("%s: Process steady-state allocations = %v, want 0", q.Name(), allocs)
		}
	}
}

func TestQueryFlushIntoRecyclesStorage(t *testing.T) {
	b := allocBatch(t)
	for _, q := range FullSet(Config{Seed: 2}) {
		rec, ok := q.(ResultRecycler)
		if !ok {
			continue
		}
		// Warm up two result generations so the ping-pong storage exists.
		q.Process(b, 1)
		prev, _ := rec.FlushInto(nil)
		q.Process(b, 1)
		prev, _ = rec.FlushInto(prev)
		// Steady state: one interval rotation may cost only the interface
		// box of the returned Result (its maps and slices are recycled).
		allocs := testing.AllocsPerRun(10, func() {
			q.Process(b, 1)
			prev, _ = rec.FlushInto(prev)
		})
		if allocs > 1 {
			t.Errorf("%s: FlushInto interval rotation allocations = %v, want <= 1", q.Name(), allocs)
		}
	}
}

// TestFlushIntoMatchesFlush pins the recycling contract: for the same
// traffic, FlushInto must report exactly the values Flush does.
func TestFlushIntoMatchesFlush(t *testing.T) {
	b := allocBatch(t)
	mk := func(seed uint64) []Query { return FullSet(Config{Seed: seed}) }
	plain := mk(3)
	recyc := mk(3)
	var prevs []Result
	for round := 0; round < 3; round++ {
		for i := range plain {
			plain[i].Process(b, 1)
			recyc[i].Process(b, 1)
		}
		if round == 0 {
			prevs = make([]Result, len(plain))
		}
		for i := range plain {
			want, wops := plain[i].Flush()
			rec, ok := recyc[i].(ResultRecycler)
			if !ok {
				got, gops := recyc[i].Flush()
				if !resultsEqual(got, want) || gops != wops {
					t.Fatalf("%s round %d: Flush diverged", plain[i].Name(), round)
				}
				continue
			}
			got, gops := rec.FlushInto(prevs[i])
			prevs[i] = got
			if gops != wops {
				t.Fatalf("%s round %d: ops diverged: %+v vs %+v", plain[i].Name(), round, gops, wops)
			}
			if !resultsEqual(got, want) {
				t.Fatalf("%s round %d: FlushInto result diverged from Flush", plain[i].Name(), round)
			}
		}
	}
}

// resultsEqual compares two query results structurally; map iteration
// order and backing storage are irrelevant by construction.
func resultsEqual(a, b Result) bool {
	return reflect.DeepEqual(a, b)
}
