package queries

import (
	"bytes"
	"time"

	"repro/internal/pkt"
	"repro/internal/sampling"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// trace — full-payload packet collection (Table 2.2, cost: medium).

// TraceResult is the per-interval answer: how many packets and bytes
// were collected. No unsampled estimate exists (§2.2.1), so the values
// are raw.
type TraceResult struct {
	Packets float64
	Bytes   float64
}

// TraceQuery collects (counts, in this reproduction) every packet that
// matches its filter, paying a per-byte copy cost like the disk-bound
// original.
type TraceQuery struct {
	cfg  Config
	pkts float64
	byts float64
}

// NewTraceQuery returns a trace query.
func NewTraceQuery(cfg Config) *TraceQuery { return &TraceQuery{cfg: cfg} }

// Name implements Query.
func (q *TraceQuery) Name() string { return "trace" }

// Method implements Query.
func (q *TraceQuery) Method() sampling.Method { return sampling.Packet }

// MinRate implements Query (Table 5.2).
func (q *TraceQuery) MinRate() float64 { return 0.10 }

// Interval implements Query.
func (q *TraceQuery) Interval() time.Duration { return q.cfg.interval() }

// Process implements Query.
func (q *TraceQuery) Process(b *pkt.Batch, _ float64) Ops {
	var ops Ops
	for i := range b.Pkts {
		p := &b.Pkts[i]
		q.pkts++
		q.byts += float64(p.Size)
		ops.Bytes += int64(len(p.Payload)) + 40 // payload copy plus header record
	}
	ops.Packets = int64(len(b.Pkts))
	return ops
}

// Flush implements Query.
func (q *TraceQuery) Flush() (Result, Ops) {
	r := TraceResult{Packets: q.pkts, Bytes: q.byts}
	q.pkts, q.byts = 0, 0
	return r, Ops{Flushes: 1}
}

// Error implements Query: one minus the fraction of packets processed
// relative to the lossless run (§2.2.1 — no unsampled recovery exists).
func (q *TraceQuery) Error(got, ref Result) float64 {
	g, r := got.(TraceResult), ref.(TraceResult)
	if r.Packets == 0 {
		return 0
	}
	frac := g.Packets / r.Packets
	if frac > 1 {
		frac = 1
	}
	return 1 - frac
}

// Reset implements Query.
func (q *TraceQuery) Reset() { q.pkts, q.byts = 0, 0 }

// ---------------------------------------------------------------------
// pattern-search — byte-sequence identification in payloads (cost: high).

// PatternResult is the per-interval answer.
type PatternResult struct {
	Processed float64 // packets scanned
	Matches   float64 // packets containing the pattern
}

// PatternSearch scans every captured payload for a byte pattern with
// the Boyer-Moore-Horspool algorithm, the [23] strategy of Table 2.2.
// Its cost is linear in bytes processed.
type PatternSearch struct {
	cfg       Config
	pattern   []byte
	skip      [256]int
	processed float64
	matches   float64
}

// NewPatternSearch returns a pattern-search query; a nil pattern
// defaults to the generator's HTTP pattern so matches actually occur.
func NewPatternSearch(cfg Config, pattern []byte) *PatternSearch {
	if len(pattern) == 0 {
		pattern = trace.PatternHTTP
	}
	q := &PatternSearch{cfg: cfg, pattern: pattern}
	q.buildSkip()
	return q
}

func (q *PatternSearch) buildSkip() {
	m := len(q.pattern)
	for i := range q.skip {
		q.skip[i] = m
	}
	for i := 0; i < m-1; i++ {
		q.skip[q.pattern[i]] = m - 1 - i
	}
}

// search reports whether the pattern occurs in text, returning the
// number of byte positions examined (charged to the cost model: the
// whole payload must be read from memory even when Horspool shifts).
func (q *PatternSearch) search(text []byte) (found bool, scanned int) {
	m := len(q.pattern)
	n := len(text)
	if m == 0 || n < m {
		return false, n
	}
	i := 0
	for i <= n-m {
		j := m - 1
		for j >= 0 && text[i+j] == q.pattern[j] {
			j--
		}
		if j < 0 {
			return true, n
		}
		i += q.skip[text[i+m-1]]
	}
	return false, n
}

// Name implements Query.
func (q *PatternSearch) Name() string { return "pattern-search" }

// Method implements Query.
func (q *PatternSearch) Method() sampling.Method { return sampling.Packet }

// MinRate implements Query (Table 5.2).
func (q *PatternSearch) MinRate() float64 { return 0.10 }

// Interval implements Query.
func (q *PatternSearch) Interval() time.Duration { return q.cfg.interval() }

// Process implements Query.
func (q *PatternSearch) Process(b *pkt.Batch, _ float64) Ops {
	var ops Ops
	for i := range b.Pkts {
		p := &b.Pkts[i]
		q.processed++
		if len(p.Payload) > 0 {
			found, scanned := q.search(p.Payload)
			ops.Bytes += int64(scanned)
			if found {
				q.matches++
			}
		}
	}
	ops.Packets = int64(len(b.Pkts))
	return ops
}

// Flush implements Query.
func (q *PatternSearch) Flush() (Result, Ops) {
	r := PatternResult{Processed: q.processed, Matches: q.matches}
	q.processed, q.matches = 0, 0
	return r, Ops{Flushes: 1}
}

// Error implements Query: one minus the fraction of packets processed
// (§2.2.1).
func (q *PatternSearch) Error(got, ref Result) float64 {
	g, r := got.(PatternResult), ref.(PatternResult)
	if r.Processed == 0 {
		return 0
	}
	frac := g.Processed / r.Processed
	if frac > 1 {
		frac = 1
	}
	return 1 - frac
}

// Reset implements Query.
func (q *PatternSearch) Reset() { q.processed, q.matches = 0, 0 }

// ContainsPattern reports whether text contains the query's pattern;
// exported for tests.
func (q *PatternSearch) ContainsPattern(text []byte) bool {
	// bytes.Contains is the oracle the Horspool implementation is
	// tested against; the query itself uses search for realistic cost.
	return bytes.Contains(text, q.pattern)
}
