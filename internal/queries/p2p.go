package queries

import (
	"bytes"
	"time"

	"repro/internal/hash"
	"repro/internal/pkt"
	"repro/internal/sampling"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// p2p-detector — signature-based P2P flow detection ([121, 83], cost:
// high). This is the flagship query of Chapter 6: it is *not* robust to
// traffic sampling (a dropped first data packet loses the signature for
// good), so it ships a custom load shedding method.

// p2pSignatures are the payload signatures the detector matches,
// aligned with what the traffic generator embeds.
var p2pSignatures = [][]byte{trace.SigBitTorrent, trace.SigGnutella, trace.SigED2K}

// isP2PPort reports whether p is one of the canonical P2P ports used by
// the fallback heuristic. It sits on the per-packet path for every
// custom-shed flow, so it compiles to a handful of compares instead of
// the map probe (hash, bucket walk, possible cache miss) it replaced.
func isP2PPort(p uint16) bool {
	switch p {
	case 6881, 6346, 4662, 1214:
		return true
	}
	return false
}

// p2pInspectPackets is how many payload-carrying packets per flow are
// scanned before the flow is declared non-P2P.
const p2pInspectPackets = 2

// P2PResult is the per-interval answer: the set of flows identified as
// P2P plus the (scaled, when the custom shedder is active) estimated
// count.
type P2PResult struct {
	Detected map[pkt.FlowKey]bool
	Count    float64
}

type p2pFlowState struct {
	inspected int
	isP2P     bool
	decided   bool
}

// P2PDetector tracks per-flow state and scans the first payload packets
// of each flow against the signature set. Cost is dominated by the
// per-byte signature scan, making it the most expensive query in the
// set (Figure 2.2).
//
// Custom load shedding (Chapter 6): when ShedTo(f) is called with
// f < 1, the detector inspects payloads only for the fraction f of
// flows selected by a hash of the flow key, and classifies the rest by
// the port heuristic alone — far cheaper, and far more accurate than
// dropping packets, because every flow still gets classified.
type P2PDetector struct {
	cfg          Config
	h3           *hash.H3
	flows        map[pkt.FlowKey]*p2pFlowState
	inspectFrac  float64
	sigDetected  float64
	portDetected float64
	// free pools flow-state values across intervals; newState refills it
	// a slab at a time so per-flow state costs one allocation per slab,
	// and only until the pool reflects the steady-state flow count.
	free []*p2pFlowState
}

// p2pStateSlab is how many flow states are allocated at once when the
// pool runs dry.
const p2pStateSlab = 64

// newState returns a zeroed flow state from the pool.
func (q *P2PDetector) newState() *p2pFlowState {
	if len(q.free) == 0 {
		slab := make([]p2pFlowState, p2pStateSlab)
		for i := range slab {
			q.free = append(q.free, &slab[i])
		}
	}
	st := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	return st
}

// NewP2PDetector returns a P2P detector.
func NewP2PDetector(cfg Config) *P2PDetector {
	return &P2PDetector{
		cfg:         cfg,
		h3:          hash.NewH3(cfg.Seed + 0x9279),
		flows:       make(map[pkt.FlowKey]*p2pFlowState),
		inspectFrac: 1,
	}
}

// Name implements Query.
func (q *P2PDetector) Name() string { return "p2p-detector" }

// Method implements Query: the detector asks for custom shedding.
func (q *P2PDetector) Method() sampling.Method { return sampling.Custom }

// MinRate implements Query (Table 6.1 scenario; the detector tolerates
// moderate shedding through its custom method).
func (q *P2PDetector) MinRate() float64 { return 0.30 }

// Interval implements Query.
func (q *P2PDetector) Interval() time.Duration { return q.cfg.interval() }

// ShedTo implements the custom load shedding contract of Chapter 6: the
// system asks the query to reduce its resource usage to fraction f of
// the unshed load; the detector responds by restricting payload
// inspection to a hash-selected fraction of flows.
func (q *P2PDetector) ShedTo(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	q.inspectFrac = f
}

// InspectFraction returns the current custom shedding fraction.
func (q *P2PDetector) InspectFraction() float64 { return q.inspectFrac }

func (q *P2PDetector) inspects(k pkt.FlowKey) bool {
	if q.inspectFrac >= 1 {
		return true
	}
	if q.inspectFrac <= 0 {
		return false
	}
	return q.h3.Unit(k[:]) < q.inspectFrac
}

// Process implements Query.
func (q *P2PDetector) Process(b *pkt.Batch, _ float64) Ops {
	var ops Ops
	for i := range b.Pkts {
		p := &b.Pkts[i]
		k := p.FlowKey()
		ops.Lookups++
		st, ok := q.flows[k]
		if !ok {
			st = q.newState()
			q.flows[k] = st
			ops.Inserts++
			if !q.inspects(k) {
				// Custom-shed flow: classify by port alone, now.
				st.decided = true
				if isP2PPort(p.DstPort) {
					st.isP2P = true
					q.portDetected++
				}
			}
		}
		if st.decided || len(p.Payload) == 0 {
			continue
		}
		// Signature scan of an undecided, inspected flow.
		ops.Bytes += int64(len(p.Payload)) * int64(len(p2pSignatures))
		for _, sig := range p2pSignatures {
			if bytes.Contains(p.Payload, sig) {
				st.isP2P = true
				st.decided = true
				q.sigDetected++
				break
			}
		}
		if !st.decided {
			st.inspected++
			if st.inspected >= p2pInspectPackets {
				st.decided = true // non-P2P: signatures absent
			}
		}
	}
	ops.Packets = int64(len(b.Pkts))
	return ops
}

// Flush implements Query.
func (q *P2PDetector) Flush() (Result, Ops) { return q.FlushInto(nil) }

// FlushInto implements ResultRecycler: flow states are zeroed back into
// the pool, the flow table is cleared in place and the detected set
// reuses prev's map when given. Reported values are identical to
// Flush's.
func (q *P2PDetector) FlushInto(prev Result) (Result, Ops) {
	var detected map[pkt.FlowKey]bool
	if p, ok := prev.(P2PResult); ok && p.Detected != nil {
		detected = p.Detected
		clear(detected)
	} else {
		detected = make(map[pkt.FlowKey]bool)
	}
	for k, st := range q.flows {
		if st.isP2P {
			detected[k] = true
		}
		*st = p2pFlowState{}
		q.free = append(q.free, st)
	}
	count := q.sigDetected + q.portDetected
	n := int64(len(q.flows))
	clear(q.flows)
	q.sigDetected, q.portDetected = 0, 0
	return P2PResult{Detected: detected, Count: count}, Ops{Flushes: n}
}

// Error implements Query: one minus the fraction of the reference's
// P2P flows correctly identified (§2.2.1).
func (q *P2PDetector) Error(got, ref Result) float64 {
	g, r := got.(P2PResult), ref.(P2PResult)
	if len(r.Detected) == 0 {
		return 0
	}
	hits := 0
	for k := range g.Detected {
		if r.Detected[k] {
			hits++
		}
	}
	return 1 - float64(hits)/float64(len(r.Detected))
}

// Reset implements Query.
func (q *P2PDetector) Reset() {
	for _, st := range q.flows {
		*st = p2pFlowState{}
		q.free = append(q.free, st)
	}
	clear(q.flows)
	q.sigDetected, q.portDetected = 0, 0
	q.inspectFrac = 1
}
