package queries

import (
	"cmp"
	"slices"
	"time"

	"repro/internal/bitmap"
	"repro/internal/hash"
	"repro/internal/pkt"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// ---------------------------------------------------------------------
// autofocus — high-volume traffic clusters per subnet ([55], cost: med).

// DefaultAutofocusThreshold is the fraction of interval traffic a
// cluster must carry (after subtracting reported descendants) to be
// reported.
const DefaultAutofocusThreshold = 0.05

// Cluster is one reported traffic cluster: a destination prefix and its
// residual volume.
type Cluster struct {
	Prefix uint32 // network-order prefix, host bits zero
	Len    int    // prefix length: 32, 24, 16 or 8
	Bytes  float64
}

// AutofocusResult is the per-interval answer: the reported clusters in
// descending volume order.
type AutofocusResult struct {
	Clusters []Cluster
	Total    float64
}

// Autofocus implements uni-dimensional autofocus over destination
// prefixes: per-interval byte counts are aggregated at /32 and rolled up
// to /24, /16 and /8; clusters whose residual volume (own traffic minus
// already-reported descendants) exceeds the threshold are reported,
// most-specific first.
type Autofocus struct {
	cfg       Config
	threshold float64
	table     map[uint32]float64 // per-/32 bytes, scaled

	// Flush-time scratch, reused every interval so the per-flush
	// hierarchy walk stops allocating: lvlBuf[i] is the sorted
	// aggregation at levels[i] (level 0 mirrors the table) and repBuf[i]
	// the reported volumes at levels[i], also sorted by prefix. Sorted
	// slices rather than maps because the roll-up and residual
	// arithmetic is floating-point: under sampling the scaled byte
	// counts are inexact, so summing in map iteration order would make
	// every flush's low bits — and with a near-threshold cluster, the
	// reported set itself — vary from run to run.
	lvlBuf [4][]afEntry
	repBuf [4][]afEntry
}

// afEntry is one prefix's volume in the flush scratch.
type afEntry struct {
	prefix uint32
	bytes  float64
}

// NewAutofocus returns an autofocus query; threshold <= 0 selects
// DefaultAutofocusThreshold.
func NewAutofocus(cfg Config, threshold float64) *Autofocus {
	if threshold <= 0 {
		threshold = DefaultAutofocusThreshold
	}
	return &Autofocus{cfg: cfg, threshold: threshold, table: make(map[uint32]float64)}
}

// Name implements Query.
func (q *Autofocus) Name() string { return "autofocus" }

// Method implements Query.
func (q *Autofocus) Method() sampling.Method { return sampling.Packet }

// MinRate implements Query (Table 5.2).
func (q *Autofocus) MinRate() float64 { return 0.69 }

// Interval implements Query.
func (q *Autofocus) Interval() time.Duration { return q.cfg.interval() }

// Process implements Query.
func (q *Autofocus) Process(b *pkt.Batch, rate float64) Ops {
	inv := 1.0
	if rate > 0 && rate < 1 {
		inv = 1 / rate
	}
	var ops Ops
	for i := range b.Pkts {
		p := &b.Pkts[i]
		ops.Lookups++
		if _, ok := q.table[p.DstIP]; !ok {
			ops.Inserts++
		}
		q.table[p.DstIP] += float64(p.Size) * inv
	}
	ops.Packets = int64(len(b.Pkts))
	return ops
}

// Flush implements Query: roll the /32 table up the prefix hierarchy
// and report clusters whose residual volume exceeds the threshold.
func (q *Autofocus) Flush() (Result, Ops) { return q.FlushInto(nil) }

// FlushInto implements ResultRecycler: the roll-up slices are
// query-owned scratch reused per interval, the /32 table is cleared in
// place, and the reported cluster slice reuses prev's storage when
// given. Reported values are identical to Flush's. Every accumulation
// walks prefixes in sorted order so the flush is bit-reproducible (see
// the scratch fields' comment).
func (q *Autofocus) FlushInto(prev Result) (Result, Ops) {
	var clusters []Cluster
	if p, ok := prev.(AutofocusResult); ok {
		clusters = p.Clusters[:0]
	}

	lvl0 := q.lvlBuf[0][:0]
	for ip, v := range q.table {
		lvl0 = append(lvl0, afEntry{ip, v})
	}
	slices.SortFunc(lvl0, func(a, b afEntry) int { return cmp.Compare(a.prefix, b.prefix) })
	q.lvlBuf[0] = lvl0

	var total float64
	for i := range lvl0 {
		total += lvl0[i].bytes
	}
	thresh := q.threshold * total

	levels := [4]int{32, 24, 16, 8}
	for li := 1; li < len(levels); li++ {
		// The finer level is sorted, so each coarse prefix's children
		// form a contiguous run and the roll-up comes out sorted too.
		mask := prefixMask(levels[li])
		out := q.lvlBuf[li][:0]
		for _, e := range q.lvlBuf[li-1] {
			p := e.prefix & mask
			if n := len(out); n > 0 && out[n-1].prefix == p {
				out[n-1].bytes += e.bytes
			} else {
				out = append(out, afEntry{p, e.bytes})
			}
		}
		q.lvlBuf[li] = out
	}

	ops := Ops{Flushes: int64(len(q.table))}
	for li, plen := range levels {
		rep := q.repBuf[li][:0]
		mask := prefixMask(plen)
		for _, e := range q.lvlBuf[li] {
			residual := e.bytes
			// Subtract descendants already reported at finer levels:
			// each repBuf is sorted by prefix, so a coarse prefix's
			// descendants are the range [prefix, prefix|^mask].
			hi := e.prefix | ^mask
			for lj := 0; lj < li; lj++ {
				r := q.repBuf[lj]
				lo, _ := slices.BinarySearchFunc(r, e.prefix, func(re afEntry, p uint32) int {
					return cmp.Compare(re.prefix, p)
				})
				for k := lo; k < len(r) && r[k].prefix <= hi; k++ {
					residual -= r[k].bytes
				}
			}
			ops.Sorts++
			if residual >= thresh && thresh > 0 {
				clusters = append(clusters, Cluster{Prefix: e.prefix, Len: plen, Bytes: residual})
				rep = append(rep, afEntry{e.prefix, e.bytes})
			}
		}
		q.repBuf[li] = rep
	}
	slices.SortFunc(clusters, func(a, b Cluster) int {
		if a.Bytes != b.Bytes {
			if a.Bytes > b.Bytes {
				return -1
			}
			return 1
		}
		if a.Len != b.Len {
			return cmp.Compare(b.Len, a.Len)
		}
		return cmp.Compare(a.Prefix, b.Prefix)
	})
	clear(q.table)
	return AutofocusResult{Clusters: clusters, Total: total}, ops
}

func prefixMask(plen int) uint32 {
	if plen <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(plen))
}

// Error implements Query. The thesis measures autofocus error through
// the delta report of [55]; lacking the original tooling we use the
// Jaccard distance between reported cluster identity sets, which is 0
// for identical reports and grows as sampling perturbs the clusters
// (substitution documented in DESIGN.md).
func (q *Autofocus) Error(got, ref Result) float64 {
	g, r := got.(AutofocusResult), ref.(AutofocusResult)
	type key struct {
		p uint32
		l int
	}
	set := make(map[key]bool, len(g.Clusters))
	for _, c := range g.Clusters {
		set[key{c.Prefix, c.Len}] = true
	}
	inter, union := 0, len(set)
	for _, c := range r.Clusters {
		k := key{c.Prefix, c.Len}
		if set[k] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// Reset implements Query.
func (q *Autofocus) Reset() { clear(q.table) }

// ---------------------------------------------------------------------
// super-sources — sources with the largest fan-out ([139], cost: med).

// DefaultSuperSourcesTop is how many sources are reported.
const DefaultSuperSourcesTop = 10

// SuperSource is one reported source with its estimated fan-out.
type SuperSource struct {
	IP     uint32
	FanOut float64
}

// SuperSourcesResult is the per-interval answer: the top sources by
// estimated distinct-destination count, plus the full per-source
// estimates for error evaluation.
type SuperSourcesResult struct {
	Top []SuperSource
	All map[uint32]float64
}

// SuperSources estimates per-source fan-out (distinct destinations)
// with a small direct bitmap per source, as in [139]. It prefers flow
// sampling: fan-out scales by the inverse flow-sampling rate.
type SuperSources struct {
	cfg   Config
	top   int
	table map[uint32]*bitmap.Direct
	// Packet-weighted mean sampling rate over the interval; the
	// per-source distinct sets span batches with different rates, so no
	// single batch's rate is the right corrector.
	rateSum float64
	pktSum  float64

	// free pools the per-source bitmaps across intervals (reset, not
	// reallocated, at flush) and sortScratch the flush-time ranking
	// buffer; the reported Top is a copy of its head, so the buffer
	// never escapes into a result.
	free        []*bitmap.Direct
	sortScratch []SuperSource
}

// NewSuperSources returns a super-sources query reporting the top n
// sources (DefaultSuperSourcesTop when n <= 0).
func NewSuperSources(cfg Config, n int) *SuperSources {
	if n <= 0 {
		n = DefaultSuperSourcesTop
	}
	return &SuperSources{cfg: cfg, top: n, table: make(map[uint32]*bitmap.Direct)}
}

// Name implements Query.
func (q *SuperSources) Name() string { return "super-sources" }

// Method implements Query.
func (q *SuperSources) Method() sampling.Method { return sampling.Flow }

// MinRate implements Query (Table 5.2).
func (q *SuperSources) MinRate() float64 { return 0.93 }

// Interval implements Query.
func (q *SuperSources) Interval() time.Duration { return q.cfg.interval() }

// Process implements Query.
func (q *SuperSources) Process(b *pkt.Batch, rate float64) Ops {
	if rate > 0 && rate <= 1 {
		q.rateSum += rate * float64(len(b.Pkts))
		q.pktSum += float64(len(b.Pkts))
	}
	var ops Ops
	for i := range b.Pkts {
		p := &b.Pkts[i]
		ops.Lookups++
		bm, ok := q.table[p.SrcIP]
		if !ok {
			if n := len(q.free); n > 0 {
				bm = q.free[n-1]
				q.free = q.free[:n-1]
			} else {
				bm = bitmap.NewDirect(512)
			}
			q.table[p.SrcIP] = bm
			ops.Inserts++
		}
		bm.Insert(hash.Mix64(uint64(p.DstIP)*0x9e3779b97f4a7c15 + uint64(p.DstPort)))
	}
	ops.Packets = int64(len(b.Pkts))
	return ops
}

// Flush implements Query.
func (q *SuperSources) Flush() (Result, Ops) { return q.FlushInto(nil) }

// FlushInto implements ResultRecycler: the ranking is built and sorted
// in the query's scratch buffer, the reported Top and All reuse prev's
// storage (fresh when prev is nil), and the per-source bitmaps are
// reset into the free pool for the next interval. Reported values are
// identical to Flush's.
func (q *SuperSources) FlushInto(prev Result) (Result, Ops) {
	var pr SuperSourcesResult
	if p, ok := prev.(SuperSourcesResult); ok {
		pr = p
	}
	inv := 1.0
	if q.pktSum > 0 {
		if r := q.rateSum / q.pktSum; r > 0 && r < 1 {
			inv = 1 / r
		}
	}
	all := pr.All
	if all == nil {
		all = make(map[uint32]float64, len(q.table))
	} else {
		clear(all)
	}
	srcs := q.sortScratch[:0]
	for ip, bm := range q.table {
		f := bm.Estimate() * inv
		all[ip] = f
		srcs = append(srcs, SuperSource{IP: ip, FanOut: f})
	}
	slices.SortFunc(srcs, func(a, b SuperSource) int {
		if a.FanOut != b.FanOut {
			if a.FanOut > b.FanOut {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.IP, b.IP)
	})
	n := len(srcs)
	logn := 0
	for v := n; v > 1; v >>= 1 {
		logn++
	}
	ops := Ops{Sorts: int64(n * logn), Flushes: int64(n)}
	q.sortScratch = srcs
	if n > q.top {
		srcs = srcs[:q.top]
	}
	for _, bm := range q.table {
		bm.Reset()
		q.free = append(q.free, bm)
	}
	clear(q.table)
	q.rateSum, q.pktSum = 0, 0
	return SuperSourcesResult{Top: append(pr.Top[:0], srcs...), All: all}, ops
}

// Error implements Query: the average relative error of the fan-out
// estimates over the reference's top sources; a source the sampled run
// never saw contributes error 1 ([139] metric, §2.2.1).
func (q *SuperSources) Error(got, ref Result) float64 {
	g, r := got.(SuperSourcesResult), ref.(SuperSourcesResult)
	if len(r.Top) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.Top {
		gv, ok := g.All[s.IP]
		if !ok {
			sum++
			continue
		}
		sum += stats.RelErr(gv, s.FanOut)
	}
	return stats.Clamp(sum/float64(len(r.Top)), 0, 1)
}

// Reset implements Query.
func (q *SuperSources) Reset() {
	for _, bm := range q.table {
		bm.Reset()
		q.free = append(q.free, bm)
	}
	clear(q.table)
	q.rateSum, q.pktSum = 0, 0
}
