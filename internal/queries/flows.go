package queries

import (
	"cmp"
	"slices"
	"time"

	"repro/internal/pkt"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// ---------------------------------------------------------------------
// flows — per-flow classification and active flow count (Table 2.2).

// FlowsResult is the per-interval answer: the sampling-corrected count
// of active 5-tuple flows.
type FlowsResult struct {
	Flows float64
}

// Flows tracks active 5-tuple flows in a hash table. Its cost is driven
// by flow arrivals (entry creation), which is exactly the structure the
// MLR predictor must discover (Figure 3.3). It prefers flow sampling:
// with Flowwise selection, len(table)/rate is an unbiased flow-count
// estimate, whereas packet sampling loses short flows entirely.
type Flows struct {
	cfg   Config
	table map[pkt.FlowKey]struct{}
	est   float64 // running sampling-corrected flow count
}

// NewFlows returns a flows query.
func NewFlows(cfg Config) *Flows {
	return &Flows{cfg: cfg, table: make(map[pkt.FlowKey]struct{})}
}

// Name implements Query.
func (q *Flows) Name() string { return "flows" }

// Method implements Query.
func (q *Flows) Method() sampling.Method { return sampling.Flow }

// MinRate implements Query (Table 5.2).
func (q *Flows) MinRate() float64 { return 0.05 }

// Interval implements Query.
func (q *Flows) Interval() time.Duration { return q.cfg.interval() }

// Process implements Query. New flows are scaled by the inverse of the
// rate in force when they were first seen: the sampling rate changes
// from batch to batch, so scaling the final table size by any single
// rate would bias the count.
func (q *Flows) Process(b *pkt.Batch, rate float64) Ops {
	inv := 1.0
	if rate > 0 && rate < 1 {
		inv = 1 / rate
	}
	var ops Ops
	for i := range b.Pkts {
		k := b.Pkts[i].FlowKey()
		ops.Lookups++
		if _, ok := q.table[k]; !ok {
			q.table[k] = struct{}{}
			q.est += inv
			ops.Inserts++
		}
	}
	ops.Packets = int64(len(b.Pkts))
	return ops
}

// Flush implements Query. The flow table is cleared in place: its
// buckets stay warm for the next interval, so steady-state processing
// stops paying map-growth allocations every interval.
func (q *Flows) Flush() (Result, Ops) {
	n := len(q.table)
	clear(q.table)
	est := q.est
	q.est = 0
	return FlowsResult{Flows: est}, Ops{Flushes: int64(n)}
}

// Error implements Query.
func (q *Flows) Error(got, ref Result) float64 {
	g, r := got.(FlowsResult), ref.(FlowsResult)
	return stats.RelErr(g.Flows, r.Flows)
}

// Reset implements Query.
func (q *Flows) Reset() {
	clear(q.table)
	q.est = 0
}

// ---------------------------------------------------------------------
// top-k — ranking of the top-k destination addresses by volume.

// DefaultTopK is the ranking depth when the constructor receives 0.
const DefaultTopK = 20

// TopKEntry is one ranked destination.
type TopKEntry struct {
	IP    uint32
	Bytes float64
}

// TopKResult is the per-interval answer: the reported ranking plus the
// full per-destination table (needed by the misranked-pair metric).
type TopKResult struct {
	List []TopKEntry
	All  map[uint32]float64
}

// TopK ranks destination addresses by estimated byte volume.
type TopK struct {
	cfg   Config
	k     int
	table map[uint32]float64
	// scratch is the flush-time ranking buffer; the reported List is a
	// fresh (or recycled) copy of its head, so the buffer itself never
	// escapes into a result.
	scratch []TopKEntry
}

// NewTopK returns a top-k query; k <= 0 selects DefaultTopK.
func NewTopK(cfg Config, k int) *TopK {
	if k <= 0 {
		k = DefaultTopK
	}
	return &TopK{cfg: cfg, k: k, table: make(map[uint32]float64)}
}

// Name implements Query.
func (q *TopK) Name() string { return "top-k" }

// Method implements Query.
func (q *TopK) Method() sampling.Method { return sampling.Packet }

// MinRate implements Query (Table 5.2).
func (q *TopK) MinRate() float64 { return 0.57 }

// Interval implements Query.
func (q *TopK) Interval() time.Duration { return q.cfg.interval() }

// K returns the ranking depth.
func (q *TopK) K() int { return q.k }

// Process implements Query.
func (q *TopK) Process(b *pkt.Batch, rate float64) Ops {
	inv := 1.0
	if rate > 0 && rate < 1 {
		inv = 1 / rate
	}
	var ops Ops
	for i := range b.Pkts {
		p := &b.Pkts[i]
		ops.Lookups++
		if _, ok := q.table[p.DstIP]; !ok {
			ops.Inserts++
		}
		q.table[p.DstIP] += float64(p.Size) * inv
	}
	ops.Packets = int64(len(b.Pkts))
	return ops
}

// Flush implements Query.
func (q *TopK) Flush() (Result, Ops) { return q.FlushInto(nil) }

// FlushInto implements ResultRecycler: the interval's ranking is built
// and sorted in the query's scratch buffer, the reported list is copied
// into prev's storage (fresh when prev is nil) and prev's table becomes
// the next working table, so two result generations ping-pong with no
// steady-state allocation. Reported values are identical to Flush's.
func (q *TopK) FlushInto(prev Result) (Result, Ops) {
	var pr TopKResult
	if p, ok := prev.(TopKResult); ok {
		pr = p
	}
	entries := q.scratch[:0]
	for ip, bytes := range q.table {
		entries = append(entries, TopKEntry{IP: ip, Bytes: bytes})
	}
	slices.SortFunc(entries, func(a, b TopKEntry) int {
		if a.Bytes != b.Bytes {
			if a.Bytes > b.Bytes {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.IP, b.IP)
	})
	// Charge the sort n·log n comparison steps.
	n := len(entries)
	logn := 0
	for v := n; v > 1; v >>= 1 {
		logn++
	}
	ops := Ops{Sorts: int64(n * logn), Flushes: int64(n)}
	q.scratch = entries
	if n > q.k {
		entries = entries[:q.k]
	}
	next := pr.All
	if next == nil {
		next = make(map[uint32]float64, len(q.table))
	} else {
		clear(next)
	}
	r := TopKResult{List: append(pr.List[:0], entries...), All: q.table}
	q.table = next
	return r, ops
}

// Error implements Query: the misranked-pair metric of [12], normalized
// by k² so it composes with the [0,1] accuracy model of Chapter 5. A
// pair is misranked when a destination inside the reported list carries
// less reference traffic than one left outside it.
func (q *TopK) Error(got, ref Result) float64 {
	return float64(q.MisrankedPairs(got, ref)) / float64(q.k*q.k)
}

// MisrankedPairs returns the raw misranked-pair count, the form Table
// 4.1 reports.
func (q *TopK) MisrankedPairs(got, ref Result) int {
	g, r := got.(TopKResult), ref.(TopKResult)
	inList := make(map[uint32]bool, len(g.List))
	minIn := 0.0
	first := true
	for _, e := range g.List {
		inList[e.IP] = true
		v := r.All[e.IP]
		if first || v < minIn {
			minIn = v
			first = false
		}
	}
	// Count outside destinations whose true volume beats an in-list
	// destination's true volume.
	pairs := 0
	for ip, v := range r.All {
		if inList[ip] {
			continue
		}
		for _, e := range g.List {
			if v > r.All[e.IP] {
				pairs++
			}
		}
	}
	if pairs > q.k*q.k {
		pairs = q.k * q.k
	}
	return pairs
}

// Reset implements Query.
func (q *TopK) Reset() { clear(q.table) }
