package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/pkt"
)

// writeTraceHeader starts a trace file the way a spooling capture does:
// header first, batches appended as they complete.
func writeTraceHeader(t *testing.T, f *os.File, bin time.Duration) {
	t.Helper()
	if _, err := f.Write(fileMagic[:]); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(f, binary.LittleEndian, int64(bin)); err != nil {
		t.Fatal(err)
	}
}

// TestTailFollowsGrowingFile appends batches — one of them in two torn
// halves — while a TailSource reads, and requires every batch to arrive
// complete and byte-identical.
func TestTailFollowsGrowingFile(t *testing.T) {
	cfg := shortCfg(5)
	cfg.Payload = true
	want := Record(NewGenerator(cfg))
	path := filepath.Join(t.TempDir(), "grow.lstrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	writeTraceHeader(t, f, DefaultTimeBin)
	if err := writeBatch(f, &want[0]); err != nil {
		t.Fatal(err)
	}

	ts, err := TailFile(path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	got0, ok := ts.NextBatch()
	if !ok {
		t.Fatalf("first batch not delivered: %v", ts.Err())
	}

	// Torn write: half of batch 1 now, the rest (plus batch 2) shortly.
	var enc bytes.Buffer
	if err := writeBatch(&enc, &want[1]); err != nil {
		t.Fatal(err)
	}
	half := enc.Len() / 2
	if _, err := f.Write(enc.Bytes()[:half]); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		f.Write(enc.Bytes()[half:])
		writeBatch(f, &want[2])
	}()

	got1, ok := ts.NextBatch()
	if !ok {
		t.Fatalf("torn batch not delivered after completion: %v", ts.Err())
	}
	got2, ok := ts.NextBatch()
	if !ok {
		t.Fatalf("appended batch not delivered: %v", ts.Err())
	}
	sameBatches(t, []pkt.Batch{got0, got1, got2}, want[:3])
	if ts.Err() != nil {
		t.Fatalf("unexpected error: %v", ts.Err())
	}
}

// TestTailCorruptFails pins the error split: a structurally implausible
// record ends the stream with ErrCorrupt instead of polling forever.
func TestTailCorruptFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.lstrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	writeTraceHeader(t, f, DefaultTimeBin)
	// A batch header claiming an absurd packet count.
	if err := binary.Write(f, binary.LittleEndian, int64(0)); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(f, binary.LittleEndian, uint32(maxBatchPackets+1)); err != nil {
		t.Fatal(err)
	}

	ts, err := TailFile(path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if _, ok := ts.NextBatch(); ok {
		t.Fatal("corrupt batch delivered")
	}
	if !errors.Is(ts.Err(), ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", ts.Err())
	}
}

// TestTailCloseUnblocks pins the shutdown contract: Close wakes a
// NextBatch waiting for the writer, with no error recorded.
func TestTailCloseUnblocks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idle.lstrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	writeTraceHeader(t, f, DefaultTimeBin)

	ts, err := TailFile(path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	go func() {
		_, ok := ts.NextBatch()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if ok {
			t.Fatal("NextBatch returned a batch from an empty closed tail")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("NextBatch still blocked after Close")
	}
	if ts.Err() != nil {
		t.Fatalf("clean Close left error: %v", ts.Err())
	}
}

// TestTailReset replays from the start: everything written so far reads
// back identically after a Reset.
func TestTailReset(t *testing.T) {
	want := Record(NewGenerator(shortCfg(6)))
	path := filepath.Join(t.TempDir(), "reset.lstrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	writeTraceHeader(t, f, DefaultTimeBin)
	for i := range want[:2] {
		if err := writeBatch(f, &want[i]); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	ts, err := TailFile(path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	a0, _ := ts.NextBatch()
	a1, _ := ts.NextBatch()
	ts.Reset()
	b0, _ := ts.NextBatch()
	b1, _ := ts.NextBatch()
	sameBatches(t, []pkt.Batch{a0, a1}, want[:2])
	sameBatches(t, []pkt.Batch{b0, b1}, want[:2])
}
