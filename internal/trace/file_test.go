package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/pkt"
)

// recordedTrace writes a short payload-bearing trace and returns its
// bytes plus the expected batches.
func recordedTrace(t *testing.T, seed uint64) ([]byte, []pkt.Batch) {
	t.Helper()
	cfg := shortCfg(seed)
	cfg.Payload = true
	g := NewGenerator(cfg)
	var buf bytes.Buffer
	if err := WriteAll(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), Record(g)
}

func sameBatches(t *testing.T, got, want []pkt.Batch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("batch count: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Start != want[i].Start || len(got[i].Pkts) != len(want[i].Pkts) {
			t.Fatalf("batch %d header mismatch", i)
		}
		for j := range want[i].Pkts {
			a, b := got[i].Pkts[j], want[i].Pkts[j]
			if a.Ts != b.Ts || a.SrcIP != b.SrcIP || a.DstIP != b.DstIP ||
				a.SrcPort != b.SrcPort || a.DstPort != b.DstPort ||
				a.Proto != b.Proto || a.TCPFlags != b.TCPFlags ||
				a.Size != b.Size || !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("batch %d packet %d mismatch", i, j)
			}
		}
	}
}

func drain(src Source) []pkt.Batch {
	var out []pkt.Batch
	for {
		b, ok := src.NextBatch()
		if !ok {
			return out
		}
		out = append(out, b)
	}
}

func TestFileSourceMatchesReadAll(t *testing.T) {
	raw, want := recordedTrace(t, 31)
	fs, err := NewFileSource(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if fs.TimeBin() != DefaultTimeBin {
		t.Fatalf("TimeBin = %v, want %v", fs.TimeBin(), DefaultTimeBin)
	}
	sameBatches(t, drain(fs), want)
	if fs.Err() != nil {
		t.Fatalf("clean end of file left Err = %v", fs.Err())
	}
	// Reset must replay identically — that is what makes a FileSource a
	// deterministic Source usable for reference runs.
	fs.Reset()
	sameBatches(t, drain(fs), want)
	if fs.Err() != nil {
		t.Fatalf("second pass left Err = %v", fs.Err())
	}
}

func TestFileSourceTruncated(t *testing.T) {
	raw, _ := recordedTrace(t, 32)
	for _, cut := range []int{7, 100, len(raw) / 2} {
		fs, err := NewFileSource(bytes.NewReader(raw[:len(raw)-cut]))
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		drain(fs)
		if !errors.Is(fs.Err(), io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: Err = %v, want ErrUnexpectedEOF", cut, fs.Err())
		}
	}
}

func TestFileSourceRejectsGarbageHeader(t *testing.T) {
	if _, err := NewFileSource(bytes.NewReader([]byte("not a trace file at all"))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := NewFileSource(bytes.NewReader([]byte("LS"))); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

// corruptCountFile returns a structurally valid header followed by a
// batch whose packet count claims npkts with no packet data behind it.
func corruptCountFile(npkts uint32) []byte {
	var buf bytes.Buffer
	buf.Write(fileMagic[:])
	binary.Write(&buf, binary.LittleEndian, int64(DefaultTimeBin))
	binary.Write(&buf, binary.LittleEndian, int64(0)) // startNs
	binary.Write(&buf, binary.LittleEndian, npkts)
	return buf.Bytes()
}

// TestReadAllCorruptCount is the regression test for the unvalidated
// allocation: a batch header claiming 2^32-1 packets used to demand a
// ~270 GB allocation before the first read failed. It must now fail
// with a format error (and, below the cap, with ErrUnexpectedEOF after
// only a bounded chunk was allocated).
func TestReadAllCorruptCount(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader(corruptCountFile(0xffffffff))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	// A count under the plausibility cap but past end of file must be a
	// truncation error, reached without allocating count packets.
	if _, err := ReadAll(bytes.NewReader(corruptCountFile(maxBatchPackets))); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestFileSourceCorruptCount(t *testing.T) {
	fs, err := NewFileSource(bytes.NewReader(corruptCountFile(0xffffffff)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.NextBatch(); ok {
		t.Fatal("corrupt batch delivered")
	}
	if !errors.Is(fs.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", fs.Err())
	}
}

func TestReadAllCorruptPayloadLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(fileMagic[:])
	binary.Write(&buf, binary.LittleEndian, int64(DefaultTimeBin))
	binary.Write(&buf, binary.LittleEndian, int64(0))  // startNs
	binary.Write(&buf, binary.LittleEndian, uint32(1)) // one packet
	buf.Write(make([]byte, 26))                        // zeroed packet header
	binary.Write(&buf, binary.LittleEndian, uint16(pkt.SnapLen+1))
	if _, err := ReadAll(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadAllTruncatedIsUnexpectedEOF(t *testing.T) {
	raw, _ := recordedTrace(t, 33)
	if _, err := ReadAll(bytes.NewReader(raw[:len(raw)-7])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestGeneratorMaxBins(t *testing.T) {
	cfg := shortCfg(34) // Duration 3 s = 30 bins
	cfg.MaxBins = 7
	if got := len(drain(NewGenerator(cfg))); got != 7 {
		t.Fatalf("MaxBins=7 produced %d batches", got)
	}

	// Unbounded: the generator keeps producing well past the
	// Duration-derived count, and Reset still reproduces the stream.
	cfg.MaxBins = -1
	g := NewGenerator(cfg)
	first := make([]pkt.Batch, 0, 40)
	for i := 0; i < 40; i++ {
		b, ok := g.NextBatch()
		if !ok {
			t.Fatalf("unbounded generator ended at bin %d", i)
		}
		first = append(first, b)
	}
	g.Reset()
	for i := 0; i < 40; i++ {
		b, ok := g.NextBatch()
		if !ok {
			t.Fatalf("reset unbounded generator ended at bin %d", i)
		}
		if b.Start != first[i].Start || len(b.Pkts) != len(first[i].Pkts) {
			t.Fatalf("bin %d not reproduced after Reset", i)
		}
	}
}

// TestMemorySourceAliasesStorage pins the Source ownership contract:
// MemorySource returns its stored slice (replays would otherwise copy
// the whole trace every run), and consumers are bound to read-only use.
func TestMemorySourceAliasesStorage(t *testing.T) {
	batches := []pkt.Batch{{Bin: DefaultTimeBin, Pkts: []pkt.Packet{{SrcIP: 1}, {SrcIP: 2}}}}
	m := NewMemorySource(batches, DefaultTimeBin)
	b, ok := m.NextBatch()
	if !ok {
		t.Fatal("no batch")
	}
	if &b.Pkts[0] != &batches[0].Pkts[0] {
		t.Fatal("MemorySource copied its storage; the contract documents aliasing precisely so it does not have to")
	}
}

func TestFileSourceBatchesAreFresh(t *testing.T) {
	raw, _ := recordedTrace(t, 35)
	fs, err := NewFileSource(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	a, ok := fs.NextBatch()
	if !ok || len(a.Pkts) == 0 {
		t.Fatal("no first batch")
	}
	save := a.Pkts[0]
	payload := append([]byte(nil), save.Payload...)
	fs.NextBatch() // must not touch the batch already delivered
	got := a.Pkts[0]
	if got.Ts != save.Ts || got.SrcIP != save.SrcIP || got.Size != save.Size ||
		!bytes.Equal(got.Payload, payload) {
		t.Fatal("FileSource mutated a delivered batch")
	}
}
