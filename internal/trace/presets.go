package trace

import "time"

// Presets approximating the datasets of Table 2.3/2.4. Rates are the
// papers' average packet rates; the scale argument multiplies the packet
// rate (and implicitly every derived volume) so experiments can trade
// fidelity for runtime. scale=1 reproduces the paper's average rates;
// the experiment harness defaults to smaller scales.
//
// The traces differ along the axes that matter to the system: packet
// rate, payload presence, burstiness and flow-arrival intensity.

func scaled(pps float64, scale float64) float64 {
	if scale <= 0 {
		scale = 1
	}
	return pps * scale
}

// CESCA1 models the CESCA-I capture: Catalan research network uplink,
// headers only, ~57.6 kpps, moderate burstiness.
func CESCA1(seed uint64, dur time.Duration, scale float64) Config {
	return Config{
		Seed:             seed,
		Duration:         dur,
		PacketsPerSec:    scaled(57600, scale),
		DiurnalAmplitude: 0.15,
		DiurnalPeriod:    8 * time.Minute,
		NoiseSigma:       0.10,
		Payload:          false,
	}
}

// CESCA2 models the CESCA-II capture: same vantage point with full
// payloads, ~27.4 kpps, lighter average load.
func CESCA2(seed uint64, dur time.Duration, scale float64) Config {
	return Config{
		Seed:             seed,
		Duration:         dur,
		PacketsPerSec:    scaled(27400, scale),
		DiurnalAmplitude: 0.12,
		DiurnalPeriod:    8 * time.Minute,
		NoiseSigma:       0.10,
		Payload:          true,
	}
}

// Abilene models the ABILENE backbone trace: higher aggregate rate,
// headers only, smoother backbone mixing.
func Abilene(seed uint64, dur time.Duration, scale float64) Config {
	return Config{
		Seed:             seed,
		Duration:         dur,
		PacketsPerSec:    scaled(74000, scale),
		DiurnalAmplitude: 0.10,
		DiurnalPeriod:    15 * time.Minute,
		NoiseSigma:       0.08,
		Clients:          60000,
		Servers:          8000,
		Payload:          false,
	}
}

// CENIC models the CENIC HPR backbone trace: moderate average with the
// largest peak-to-average ratio in the dataset (936 vs 249 Mbps), hence
// the heavy burst noise.
func CENIC(seed uint64, dur time.Duration, scale float64) Config {
	return Config{
		Seed:             seed,
		Duration:         dur,
		PacketsPerSec:    scaled(33000, scale),
		DiurnalAmplitude: 0.20,
		DiurnalPeriod:    5 * time.Minute,
		NoiseSigma:       0.35,
		Clients:          40000,
		Servers:          5000,
		Payload:          false,
	}
}

// UPC1 models the UPC-I access-link capture with payloads, ~52.9 kpps.
func UPC1(seed uint64, dur time.Duration, scale float64) Config {
	return Config{
		Seed:             seed,
		Duration:         dur,
		PacketsPerSec:    scaled(52900, scale),
		DiurnalAmplitude: 0.15,
		DiurnalPeriod:    10 * time.Minute,
		NoiseSigma:       0.12,
		Payload:          true,
	}
}

// UPC2 models the UPC-II online execution (Table 2.4), used by the
// Chapter 6 operational experiments.
func UPC2(seed uint64, dur time.Duration, scale float64) Config {
	return Config{
		Seed:             seed,
		Duration:         dur,
		PacketsPerSec:    scaled(34000, scale),
		DiurnalAmplitude: 0.10,
		DiurnalPeriod:    10 * time.Minute,
		NoiseSigma:       0.15,
		Payload:          true,
	}
}
