package trace

import (
	"time"

	"repro/internal/hash"
	"repro/internal/pkt"
)

// Anomaly injects synthetic attack traffic on top of the base stream.
// Implementations must be stateless with respect to bins: the generator
// hands them a bin-specific deterministic RNG, so replaying a trace
// reproduces the exact same attack packets regardless of call order.
type Anomaly interface {
	// Inject appends the anomaly's packets for the bin [t0, t1) to out
	// and returns the extended slice.
	Inject(t0, t1 time.Duration, rng *hash.XorShift, out []pkt.Packet) []pkt.Packet
}

// DDoS is a packet flood against a single target. With OnOff > 0 the
// attack alternates OnOff on, OnOff off ("goes idle every other second",
// §3.4.3), producing the highly variable workload used to stress the
// predictors. Spoofed floods randomize source addresses and ports per
// packet, which is what blows up flow-state queries.
type DDoS struct {
	Start      time.Duration
	Duration   time.Duration
	PPS        float64       // packet rate while "on"
	Target     uint32        // destination address
	TargetPort uint16        // destination port
	OnOff      time.Duration // half-period of the on/off square wave; 0 = always on
	Spoofed    bool          // randomize src IP/port per packet
	SrcIP      uint32        // fixed source when not spoofed
	Proto      uint8         // defaults to TCP
	TCPFlags   uint8         // e.g. pkt.FlagSYN for SYN floods
	Size       int           // packet size; defaults to 40
}

// NewSYNFlood returns a spoofed TCP SYN flood against target:port, the
// attack of §4.5.5.
func NewSYNFlood(start, dur time.Duration, pps float64, target uint32, port uint16) *DDoS {
	return &DDoS{
		Start: start, Duration: dur, PPS: pps,
		Target: target, TargetPort: port,
		Spoofed: true, TCPFlags: pkt.FlagSYN,
	}
}

// NewOnOffDDoS returns the spoofed on/off DDoS of §3.4.3 (1 s on, 1 s
// off) that targets the monitoring system's predictors.
func NewOnOffDDoS(start, dur time.Duration, pps float64, target uint32) *DDoS {
	return &DDoS{
		Start: start, Duration: dur, PPS: pps,
		Target: target, TargetPort: 80,
		OnOff: time.Second, Spoofed: true, TCPFlags: pkt.FlagSYN,
	}
}

// Inject implements Anomaly.
func (d *DDoS) Inject(t0, t1 time.Duration, rng *hash.XorShift, out []pkt.Packet) []pkt.Packet {
	proto := d.Proto
	if proto == 0 {
		proto = pkt.ProtoTCP
	}
	size := d.Size
	if size == 0 {
		size = 40
	}
	end := d.Start + d.Duration
	step := time.Duration(float64(time.Second) / d.PPS)
	if step <= 0 {
		step = time.Nanosecond
	}
	for t := t0; t < t1; t += step {
		if t < d.Start || t >= end {
			continue
		}
		if d.OnOff > 0 {
			phase := (t - d.Start) / d.OnOff
			if phase%2 == 1 {
				continue // off half-period
			}
		}
		p := pkt.Packet{
			Ts:       int64(t) + int64(rng.Intn(int(step)+1)),
			DstIP:    d.Target,
			DstPort:  d.TargetPort,
			Proto:    proto,
			TCPFlags: d.TCPFlags,
			Size:     size,
		}
		if d.Spoofed {
			p.SrcIP = uint32(rng.Uint64())
			p.SrcPort = uint16(1024 + rng.Intn(64000))
		} else {
			p.SrcIP = d.SrcIP
			p.SrcPort = uint16(1024 + rng.Intn(64000))
		}
		out = append(out, p)
	}
	return out
}

// Worm emulates an outbreak: a growing pool of infected hosts probing
// random destinations on a fixed port with a signature payload (§3.4.3:
// "a large number of packets from many different source and destinations
// while keeping the destination port number fixed").
type Worm struct {
	Start    time.Duration
	Duration time.Duration
	PPS      float64 // probe rate at full outbreak
	DstPort  uint16
	Payload  []byte // signature carried by every probe; PatternWorm if nil
	Infected int    // infected pool size at full outbreak (default 500)
}

// Inject implements Anomaly.
func (w *Worm) Inject(t0, t1 time.Duration, rng *hash.XorShift, out []pkt.Packet) []pkt.Packet {
	payload := w.Payload
	if payload == nil {
		payload = PatternWorm
	}
	pool := w.Infected
	if pool == 0 {
		pool = 500
	}
	end := w.Start + w.Duration
	for t := t0; t < t1; {
		if t < w.Start || t >= end {
			break
		}
		// Outbreak growth: rate and pool ramp with elapsed fraction.
		frac := float64(t-w.Start) / float64(w.Duration)
		rate := w.PPS * (0.1 + 0.9*frac)
		step := time.Duration(float64(time.Second) / rate)
		if step <= 0 {
			step = time.Nanosecond
		}
		infected := 1 + int(frac*float64(pool))
		src := pkt.IPv4(172, 16, byte(rng.Intn(infected)>>8), byte(rng.Intn(infected)))
		body := make([]byte, len(payload))
		copy(body, payload)
		out = append(out, pkt.Packet{
			Ts:       int64(t),
			SrcIP:    src,
			DstIP:    uint32(rng.Uint64()),
			SrcPort:  uint16(1024 + rng.Intn(64000)),
			DstPort:  w.DstPort,
			Proto:    pkt.ProtoTCP,
			TCPFlags: pkt.FlagSYN | pkt.FlagPSH,
			Size:     40 + len(payload),
			Payload:  body,
		})
		t += step
	}
	return out
}

// ByteBurst sends bursts of maximum-size packets between two fixed
// hosts, the attack aimed at byte-driven queries such as trace and
// pattern-search (§3.4.3).
type ByteBurst struct {
	Start    time.Duration
	Duration time.Duration
	PPS      float64
	Payload  bool // attach SnapLen payload bytes
}

// Inject implements Anomaly.
func (bb *ByteBurst) Inject(t0, t1 time.Duration, rng *hash.XorShift, out []pkt.Packet) []pkt.Packet {
	end := bb.Start + bb.Duration
	step := time.Duration(float64(time.Second) / bb.PPS)
	if step <= 0 {
		step = time.Nanosecond
	}
	for t := t0; t < t1; t += step {
		if t < bb.Start || t >= end {
			continue
		}
		p := pkt.Packet{
			Ts:       int64(t),
			SrcIP:    pkt.IPv4(198, 51, 100, 1),
			DstIP:    pkt.IPv4(198, 51, 100, 2),
			SrcPort:  40000,
			DstPort:  9,
			Proto:    pkt.ProtoTCP,
			TCPFlags: pkt.FlagACK | pkt.FlagPSH,
			Size:     1500,
		}
		if bb.Payload {
			body := make([]byte, pkt.SnapLen)
			for i := 0; i < len(body); i += 8 {
				v := rng.Uint64()
				for j := 0; j < 8 && i+j < len(body); j++ {
					body[i+j] = byte(v>>(8*uint(j))) & 0x7f
				}
			}
			p.Payload = body
		}
		out = append(out, p)
	}
	return out
}
