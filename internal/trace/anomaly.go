package trace

import (
	"time"

	"repro/internal/hash"
	"repro/internal/pkt"
)

// Anomaly injects synthetic attack traffic on top of the base stream.
// Implementations must be stateless with respect to bins: the generator
// hands them a bin-specific deterministic RNG, so replaying a trace
// reproduces the exact same attack packets regardless of call order.
type Anomaly interface {
	// Inject appends the anomaly's packets for the bin [t0, t1) to out
	// and returns the extended slice.
	Inject(t0, t1 time.Duration, rng *hash.XorShift, out []pkt.Packet) []pkt.Packet
}

// DDoS is a packet flood against a single target. With OnOff > 0 the
// attack alternates OnOff on, OnOff off ("goes idle every other second",
// §3.4.3), producing the highly variable workload used to stress the
// predictors. Spoofed floods randomize source addresses and ports per
// packet, which is what blows up flow-state queries.
type DDoS struct {
	Start      time.Duration
	Duration   time.Duration
	PPS        float64       // packet rate while "on"
	Target     uint32        // destination address
	TargetPort uint16        // destination port
	OnOff      time.Duration // half-period of the on/off square wave; 0 = always on
	Spoofed    bool          // randomize src IP/port per packet
	SrcIP      uint32        // fixed source when not spoofed
	Proto      uint8         // defaults to TCP
	TCPFlags   uint8         // e.g. pkt.FlagSYN for SYN floods
	Size       int           // packet size; defaults to 40
}

// NewSYNFlood returns a spoofed TCP SYN flood against target:port, the
// attack of §4.5.5.
func NewSYNFlood(start, dur time.Duration, pps float64, target uint32, port uint16) *DDoS {
	return &DDoS{
		Start: start, Duration: dur, PPS: pps,
		Target: target, TargetPort: port,
		Spoofed: true, TCPFlags: pkt.FlagSYN,
	}
}

// NewOnOffDDoS returns the spoofed on/off DDoS of §3.4.3 (1 s on, 1 s
// off) that targets the monitoring system's predictors.
func NewOnOffDDoS(start, dur time.Duration, pps float64, target uint32) *DDoS {
	return &DDoS{
		Start: start, Duration: dur, PPS: pps,
		Target: target, TargetPort: 80,
		OnOff: time.Second, Spoofed: true, TCPFlags: pkt.FlagSYN,
	}
}

// Inject implements Anomaly.
func (d *DDoS) Inject(t0, t1 time.Duration, rng *hash.XorShift, out []pkt.Packet) []pkt.Packet {
	proto := d.Proto
	if proto == 0 {
		proto = pkt.ProtoTCP
	}
	size := d.Size
	if size == 0 {
		size = 40
	}
	end := d.Start + d.Duration
	step := time.Duration(float64(time.Second) / d.PPS)
	if step <= 0 {
		step = time.Nanosecond
	}
	for t := t0; t < t1; t += step {
		if t < d.Start || t >= end {
			continue
		}
		if d.OnOff > 0 {
			phase := (t - d.Start) / d.OnOff
			if phase%2 == 1 {
				continue // off half-period
			}
		}
		p := pkt.Packet{
			Ts:       int64(t) + int64(rng.Intn(int(step)+1)),
			DstIP:    d.Target,
			DstPort:  d.TargetPort,
			Proto:    proto,
			TCPFlags: d.TCPFlags,
			Size:     size,
		}
		if d.Spoofed {
			p.SrcIP = uint32(rng.Uint64())
			p.SrcPort = uint16(1024 + rng.Intn(64000))
		} else {
			p.SrcIP = d.SrcIP
			p.SrcPort = uint16(1024 + rng.Intn(64000))
		}
		out = append(out, p)
	}
	return out
}

// Worm emulates an outbreak: a growing pool of infected hosts probing
// random destinations on a fixed port with a signature payload (§3.4.3:
// "a large number of packets from many different source and destinations
// while keeping the destination port number fixed").
type Worm struct {
	Start    time.Duration
	Duration time.Duration
	PPS      float64 // probe rate at full outbreak
	DstPort  uint16
	Payload  []byte // signature carried by every probe; PatternWorm if nil
	Infected int    // infected pool size at full outbreak (default 500)
}

// Inject implements Anomaly.
func (w *Worm) Inject(t0, t1 time.Duration, rng *hash.XorShift, out []pkt.Packet) []pkt.Packet {
	payload := w.Payload
	if payload == nil {
		payload = PatternWorm
	}
	pool := w.Infected
	if pool == 0 {
		pool = 500
	}
	end := w.Start + w.Duration
	for t := t0; t < t1; {
		if t < w.Start || t >= end {
			break
		}
		// Outbreak growth: rate and pool ramp with elapsed fraction.
		frac := float64(t-w.Start) / float64(w.Duration)
		rate := w.PPS * (0.1 + 0.9*frac)
		step := time.Duration(float64(time.Second) / rate)
		if step <= 0 {
			step = time.Nanosecond
		}
		infected := 1 + int(frac*float64(pool))
		src := pkt.IPv4(172, 16, byte(rng.Intn(infected)>>8), byte(rng.Intn(infected)))
		body := make([]byte, len(payload))
		copy(body, payload)
		out = append(out, pkt.Packet{
			Ts:       int64(t),
			SrcIP:    src,
			DstIP:    uint32(rng.Uint64()),
			SrcPort:  uint16(1024 + rng.Intn(64000)),
			DstPort:  w.DstPort,
			Proto:    pkt.ProtoTCP,
			TCPFlags: pkt.FlagSYN | pkt.FlagPSH,
			Size:     40 + len(payload),
			Payload:  body,
		})
		t += step
	}
	return out
}

// ByteBurst sends bursts of maximum-size packets between two fixed
// hosts, the attack aimed at byte-driven queries such as trace and
// pattern-search (§3.4.3).
type ByteBurst struct {
	Start    time.Duration
	Duration time.Duration
	PPS      float64
	Payload  bool // attach SnapLen payload bytes
}

// GradualDrift is a slow regime change rather than an attack: web-like
// flows ramp in linearly over RampUp and then *persist* until
// Start+Duration. Unlike the DDoS/burst anomalies, nothing here is
// individually anomalous — the injected flows mimic the generator's own
// web traffic (client/server pools, port mix, flow lengths, packet-size
// distribution), so in the header-derived feature basis the drift is
// just more of the same traffic. What changes is invisible to every
// feature: the new flows carry no payload, so the bytes↔payload-cost
// relation the MLR learned from the base traffic silently breaks. A
// fixed-window predictor can neither separate the regimes (the drift is
// collinear with volume) nor forget the old one quickly — exactly the
// concept-drift case change detection exists for.
type GradualDrift struct {
	Start        time.Duration
	RampUp       time.Duration // linear ramp from 0 to PPS; default Duration/4
	Duration     time.Duration // total lifetime including the ramp
	PPS          float64       // steady rate after the ramp
	Clients      int           // mimic client pool; default 20000 (the generator's default)
	Servers      int           // mimic server pool; default 2000
	MeanFlowPkts int           // mean packets per injected flow; default 8
}

// NewGradualDrift returns a drift that ramps over the first quarter of
// dur and persists for the rest.
func NewGradualDrift(start, dur time.Duration, pps float64) *GradualDrift {
	return &GradualDrift{Start: start, RampUp: dur / 4, Duration: dur, PPS: pps}
}

// Inject implements Anomaly.
func (g *GradualDrift) Inject(t0, t1 time.Duration, rng *hash.XorShift, out []pkt.Packet) []pkt.Packet {
	clients := g.Clients
	if clients == 0 {
		clients = 20000
	}
	servers := g.Servers
	if servers == 0 {
		servers = 2000
	}
	mean := g.MeanFlowPkts
	if mean == 0 {
		mean = 8
	}
	ramp := g.RampUp
	if ramp == 0 {
		ramp = g.Duration / 4
	}
	lo, hi := t0, t1
	if lo < g.Start {
		lo = g.Start
	}
	if end := g.Start + g.Duration; hi > end {
		hi = end
	}
	if hi <= lo {
		return out
	}
	// The ramp factor is evaluated at the window midpoint: bins are two
	// orders of magnitude shorter than any sensible ramp.
	frac := 1.0
	if mid := lo + (hi-lo)/2; ramp > 0 && mid-g.Start < ramp {
		frac = float64(mid-g.Start) / float64(ramp)
	}
	budget := int(g.PPS*frac*(hi-lo).Seconds() + 0.5)
	window := float64(hi - lo)
	for emitted := 0; emitted < budget; {
		flowLen := 1 + rng.Intn(2*mean-1)
		if flowLen > budget-emitted {
			flowLen = budget - emitted
		}
		ci := rng.Intn(clients)
		src := pkt.IPv4(10, byte(ci>>16), byte(ci>>8), byte(ci))
		// Cubed uniform approximates the generator's Zipf popularity.
		u := rng.Float64()
		si := int(float64(servers) * u * u * u)
		if si >= servers {
			si = servers - 1
		}
		dst := pkt.IPv4(147, 83, byte(si>>8), byte(si))
		sport := uint16(1024 + rng.Intn(64000))
		var dport uint16
		switch w := rng.Float64(); {
		case w < 0.7:
			dport = 80
		case w < 0.85:
			dport = 443
		default:
			dport = 8080
		}
		for i := 0; i < flowLen; i++ {
			p := pkt.Packet{
				Ts:      int64(lo) + int64(rng.Float64()*window),
				SrcIP:   src,
				DstIP:   dst,
				SrcPort: sport,
				DstPort: dport,
				Proto:   pkt.ProtoTCP,
			}
			if i == 0 {
				p.TCPFlags = pkt.FlagSYN
				p.Size = 40
			} else {
				// The generator's web-flow size mix, payload-free.
				switch v := rng.Float64(); {
				case v < 0.35:
					p.Size = 40 + rng.Intn(24)
					p.TCPFlags = pkt.FlagACK
				case v < 0.52:
					p.Size = 400 + rng.Intn(300)
					p.TCPFlags = pkt.FlagACK | pkt.FlagPSH
				default:
					p.Size = 1320 + rng.Intn(181)
					p.TCPFlags = pkt.FlagACK | pkt.FlagPSH
				}
			}
			out = append(out, p)
			emitted++
		}
	}
	return out
}

// FlashCrowd is a sudden popular-destination skew: a large legitimate
// client population converges on one server, the rate spiking over Rise
// and then decaying linearly back to zero by Start+Duration. Request
// packets are small, sources are drawn from a wide client pool, and
// everything lands on Target:TargetPort — destination-concentration
// features shift hard while source diversity explodes.
type FlashCrowd struct {
	Start      time.Duration
	Duration   time.Duration
	Rise       time.Duration // ramp-up to peak; default Duration/5
	PPS        float64       // peak request rate
	Target     uint32        // the suddenly popular destination
	TargetPort uint16        // default 80
	Clients    int           // client pool size; default 5000
	Size       int           // request size; default 120
}

// NewFlashCrowd returns a flash crowd peaking at pps against target.
func NewFlashCrowd(start, dur time.Duration, pps float64, target uint32) *FlashCrowd {
	return &FlashCrowd{Start: start, Duration: dur, PPS: pps, Target: target}
}

// Inject implements Anomaly.
func (fc *FlashCrowd) Inject(t0, t1 time.Duration, rng *hash.XorShift, out []pkt.Packet) []pkt.Packet {
	port := fc.TargetPort
	if port == 0 {
		port = 80
	}
	clients := fc.Clients
	if clients == 0 {
		clients = 5000
	}
	size := fc.Size
	if size == 0 {
		size = 120
	}
	rise := fc.Rise
	if rise == 0 {
		rise = fc.Duration / 5
	}
	end := fc.Start + fc.Duration
	for t := t0; t < t1; {
		if t < fc.Start {
			t = fc.Start
			continue
		}
		if t >= end {
			break
		}
		el := t - fc.Start
		var frac float64
		if el < rise {
			frac = float64(el) / float64(rise)
		} else {
			frac = 1 - float64(el-rise)/float64(end-fc.Start-rise)
		}
		rate := fc.PPS * frac
		if rate < 1 {
			rate = 1
		}
		step := time.Duration(float64(time.Second) / rate)
		if step <= 0 {
			step = time.Nanosecond
		}
		c := rng.Intn(clients)
		p := pkt.Packet{
			Ts:      int64(t) + int64(rng.Intn(int(step)+1)),
			SrcIP:   pkt.IPv4(100, 66, byte(c>>8), byte(c)),
			DstIP:   fc.Target,
			SrcPort: uint16(1024 + rng.Intn(64000)),
			DstPort: port,
			Proto:   pkt.ProtoTCP,
			Size:    size + rng.Intn(64),
		}
		if rng.Float64() < 0.2 {
			p.TCPFlags = pkt.FlagSYN
		} else {
			p.TCPFlags = pkt.FlagACK | pkt.FlagPSH
		}
		out = append(out, p)
		t += step
	}
	return out
}

// TopologyShift is a re-hashed address space: from Start, a constant
// PPS of otherwise ordinary traffic appears between address pools the
// monitor has never seen (clients in 198.18/15, servers in 198.19/16 —
// the benchmarking ranges). Every interval rotation keeps discovering
// "new" sources and destinations, so the new-address features stay
// elevated for as long as the shift lasts — the signature of a routing
// or renumbering event rather than an attack.
type TopologyShift struct {
	Start    time.Duration
	Duration time.Duration
	PPS      float64
	Sources  int // shifted client pool; default 30000
	Servers  int // shifted server pool; default 1000
}

// NewTopologyShift returns an abrupt, persistent address-space shift.
func NewTopologyShift(start, dur time.Duration, pps float64) *TopologyShift {
	return &TopologyShift{Start: start, Duration: dur, PPS: pps}
}

// Inject implements Anomaly.
func (ts *TopologyShift) Inject(t0, t1 time.Duration, rng *hash.XorShift, out []pkt.Packet) []pkt.Packet {
	sources := ts.Sources
	if sources == 0 {
		sources = 30000
	}
	servers := ts.Servers
	if servers == 0 {
		servers = 1000
	}
	end := ts.Start + ts.Duration
	step := time.Duration(float64(time.Second) / ts.PPS)
	if step <= 0 {
		step = time.Nanosecond
	}
	for t := t0; t < t1; t += step {
		if t < ts.Start || t >= end {
			continue
		}
		s := rng.Intn(sources)
		d := rng.Intn(servers)
		size := 64
		if rng.Float64() < 0.3 {
			size = 1000 + rng.Intn(500)
		}
		p := pkt.Packet{
			Ts:      int64(t) + int64(rng.Intn(int(step)+1)),
			SrcIP:   pkt.IPv4(198, 18, byte(s>>8), byte(s)),
			DstIP:   pkt.IPv4(198, 19, byte(d>>8), byte(d)),
			SrcPort: uint16(1024 + rng.Intn(64000)),
			DstPort: 80,
			Proto:   pkt.ProtoTCP,
			Size:    size,
		}
		if rng.Float64() < 0.1 {
			p.TCPFlags = pkt.FlagSYN
		} else {
			p.TCPFlags = pkt.FlagACK
		}
		out = append(out, p)
	}
	return out
}

// Inject implements Anomaly.
func (bb *ByteBurst) Inject(t0, t1 time.Duration, rng *hash.XorShift, out []pkt.Packet) []pkt.Packet {
	end := bb.Start + bb.Duration
	step := time.Duration(float64(time.Second) / bb.PPS)
	if step <= 0 {
		step = time.Nanosecond
	}
	for t := t0; t < t1; t += step {
		if t < bb.Start || t >= end {
			continue
		}
		p := pkt.Packet{
			Ts:       int64(t),
			SrcIP:    pkt.IPv4(198, 51, 100, 1),
			DstIP:    pkt.IPv4(198, 51, 100, 2),
			SrcPort:  40000,
			DstPort:  9,
			Proto:    pkt.ProtoTCP,
			TCPFlags: pkt.FlagACK | pkt.FlagPSH,
			Size:     1500,
		}
		if bb.Payload {
			body := make([]byte, pkt.SnapLen)
			for i := 0; i < len(body); i += 8 {
				v := rng.Uint64()
				for j := 0; j < 8 && i+j < len(body); j++ {
					body[i+j] = byte(v>>(8*uint(j))) & 0x7f
				}
			}
			p.Payload = body
		}
		out = append(out, p)
	}
	return out
}
