package trace

import (
	"container/heap"
	"math"
	"math/rand"
	"time"

	"repro/internal/hash"
	"repro/internal/pkt"
)

// Config parameterizes the synthetic traffic generator. Zero fields are
// replaced by defaults (see withDefaults); presets for the thesis
// datasets live in presets.go.
type Config struct {
	Seed     uint64
	Duration time.Duration // total trace length (virtual time)
	TimeBin  time.Duration // batch duration; DefaultTimeBin if zero

	// MaxBins overrides the batch count derived from Duration: > 0
	// produces exactly MaxBins batches, < 0 streams forever (the
	// unbounded source for long-running Stream deployments — pair it
	// with a bounded sink, never with Run or Record), 0 defers to
	// Duration. Traffic shape (diurnal swing, bursts) is unaffected.
	MaxBins int

	// Load.
	PacketsPerSec    float64       // long-term average packet rate
	DiurnalAmplitude float64       // relative amplitude of the slow sinusoidal load swing [0,1)
	DiurnalPeriod    time.Duration // period of the slow swing
	NoiseSigma       float64       // lognormal sigma of per-bin burst noise

	// FlowMixSigma modulates the flow arrival rate independently of the
	// packet rate (lognormal, per bin). Real traffic's flows-per-packet
	// ratio varies — route changes, scan waves, application shifts —
	// which is what keeps flow-arrival features informative to the
	// predictor instead of collinear with the packet count.
	FlowMixSigma float64

	// Flash bursts: multi-bin load surges (alpha flows, flash crowds)
	// that give real traces their "peaks orders of magnitude above the
	// average" character (§1.2). Each bin starts a burst with
	// probability BurstProb; bursts last ~BurstBins bins and multiply
	// the load by ~BurstFactor.
	BurstProb   float64 // per-bin start probability (default 0.008)
	BurstFactor float64 // mean load multiplier during a burst (default 3)
	BurstBins   float64 // mean burst length in bins (default 6)

	// Flow structure.
	MeanFlowPkts float64 // mean packets per (non-trivial) flow
	ParetoShape  float64 // flow-size tail index (smaller = heavier)
	MaxFlowPkts  int     // cap on packets per flow
	FlowPktRate  float64 // mean within-flow packet rate (pkts/s)

	// Address structure.
	Clients  int     // client address pool size
	Servers  int     // server address pool size
	ZipfS    float64 // server popularity skew (must be > 1)
	Scanners int     // scanner host pool size (drives super-sources)

	// Traffic mix.
	P2PFrac     float64 // fraction of flows that are P2P (signature-bearing when Payload)
	ScanFrac    float64 // fraction of flows that are scans (1 SYN to a random host)
	PatternFrac float64 // fraction of web flows embedding PatternHTTP

	// Payload capture.
	Payload bool // generate payload bytes (up to pkt.SnapLen)

	// Anomalies injected on top of the base traffic.
	Anomalies []Anomaly
}

// Application signatures embedded in generated payloads. The
// p2p-detector query matches the P2P ones; pattern-search defaults to
// PatternHTTP.
var (
	SigBitTorrent = []byte("\x13BitTorrent protocol")
	SigGnutella   = []byte("GNUTELLA CONNECT/0.6")
	SigED2K       = []byte{0xe3, 0x97, 0x00, 0x00, 0x00, 0x01}
	PatternHTTP   = []byte("GET /index.html HTTP/1.1")
	PatternWorm   = []byte("GET /default.ida?NNNNNNNN")
)

func (c Config) withDefaults() Config {
	if c.TimeBin == 0 {
		c.TimeBin = DefaultTimeBin
	}
	if c.Duration == 0 {
		c.Duration = 30 * time.Second
	}
	if c.PacketsPerSec == 0 {
		c.PacketsPerSec = 20000
	}
	if c.DiurnalPeriod == 0 {
		c.DiurnalPeriod = 10 * time.Minute
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.12
	}
	if c.FlowMixSigma == 0 {
		c.FlowMixSigma = 0.25
	}
	if c.BurstProb == 0 {
		c.BurstProb = 0.008
	}
	if c.BurstFactor == 0 {
		c.BurstFactor = 3
	}
	if c.BurstBins == 0 {
		c.BurstBins = 6
	}
	if c.MeanFlowPkts == 0 {
		c.MeanFlowPkts = 14
	}
	if c.ParetoShape == 0 {
		c.ParetoShape = 1.35
	}
	if c.MaxFlowPkts == 0 {
		c.MaxFlowPkts = 2000
	}
	if c.FlowPktRate == 0 {
		c.FlowPktRate = 25
	}
	if c.Clients == 0 {
		c.Clients = 20000
	}
	if c.Servers == 0 {
		c.Servers = 2000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.25
	}
	if c.Scanners == 0 {
		c.Scanners = 6
	}
	if c.P2PFrac == 0 {
		c.P2PFrac = 0.08
	}
	if c.ScanFrac == 0 {
		c.ScanFrac = 0.02
	}
	if c.PatternFrac == 0 {
		c.PatternFrac = 0.05
	}
	return c
}

type flowClass int

const (
	classWeb flowClass = iota
	classDNS
	classMail
	classP2P
	classScan
	classOther
)

// genFlow is one active flow inside the generator.
type genFlow struct {
	next      time.Duration // time of the flow's next packet
	gap       float64       // mean inter-packet gap, seconds
	remaining int
	src, dst  uint32
	sport     uint16
	dport     uint16
	proto     uint8
	class     flowClass
	first     bool   // next packet is the flow's first (SYN for TCP)
	sig       []byte // signature to embed in the first data packet
	sigSent   bool
}

type flowHeap []*genFlow

func (h flowHeap) Len() int            { return len(h) }
func (h flowHeap) Less(i, j int) bool  { return h[i].next < h[j].next }
func (h flowHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *flowHeap) Push(x interface{}) { *h = append(*h, x.(*genFlow)) }
func (h *flowHeap) Pop() interface{} {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return f
}

// Generator is a deterministic synthetic traffic source implementing
// Source. Construct with NewGenerator.
type Generator struct {
	cfg      Config
	rng      *hash.XorShift
	zipf     *rand.Zipf
	active   flowHeap
	bin      int
	nbins    int
	meanFlow float64 // calibrated mean packets per flow

	burstLeft   int     // bins remaining in the current flash burst
	burstfactor float64 // load multiplier of the current burst

	// free pools retired flow states (a finished flow's struct is reused
	// by a later spawn) and pktCap predicts the next batch's size from
	// the previous one's, so steady-state generation costs one
	// right-sized packet-slice allocation per batch and no per-flow
	// ones. Neither affects the generated traffic: recycled flows are
	// zero-reset and capacity is invisible to consumers.
	free   []*genFlow
	pktCap int
}

// NewGenerator returns a generator for the given config.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{cfg: cfg}
	g.calibrate()
	g.Reset()
	return g
}

// calibrate estimates the realized mean packets per flow by sampling the
// flow-spawn distribution with throwaway generators. The analytic mix
// mean is biased by heavy-tail truncation and discretization; converting
// the target packet rate into a flow arrival rate with the empirical
// mean keeps the realized rate within a few percent of the target.
func (g *Generator) calibrate() {
	g.rng = hash.NewXorShift(g.cfg.Seed + 0xca11b)
	g.zipf = rand.NewZipf(rand.New(hash.NewXorShift(g.cfg.Seed+0xca11c)), g.cfg.ZipfS, 1, uint64(g.cfg.Servers-1))
	const n = 5000
	var total int64
	for i := 0; i < n; i++ {
		total += int64(g.spawnFlow().remaining)
	}
	g.meanFlow = float64(total) / n
}

// Config returns the effective (default-filled) configuration.
func (g *Generator) Config() Config { return g.cfg }

// TimeBin implements Source.
func (g *Generator) TimeBin() time.Duration { return g.cfg.TimeBin }

// Reset implements Source: the generator restarts from a pristine,
// seed-determined state.
func (g *Generator) Reset() {
	g.rng = hash.NewXorShift(g.cfg.Seed + 0x5ca1ab1e)
	g.zipf = rand.NewZipf(rand.New(hash.NewXorShift(g.cfg.Seed+0x21bf)), g.cfg.ZipfS, 1, uint64(g.cfg.Servers-1))
	g.free = append(g.free, g.active...) // abandoned flows are reusable
	g.active = g.active[:0]
	heap.Init(&g.active)
	g.bin = 0
	switch {
	case g.cfg.MaxBins > 0:
		g.nbins = g.cfg.MaxBins
	case g.cfg.MaxBins < 0:
		g.nbins = -1 // unbounded
	default:
		g.nbins = int(g.cfg.Duration / g.cfg.TimeBin)
	}
	g.burstLeft = 0
	g.burstfactor = 1
	g.warmup()
}

// warmup seeds the active-flow set with the steady state: flows that
// arrived during the window before t=0 are spawned in the past and
// fast-forwarded, discarding their pre-trace packets. Without this the
// first seconds of every trace would ramp up from an empty network.
func (g *Generator) warmup() {
	window := g.maxFlowDur()
	arrivalRate := g.cfg.PacketsPerSec / g.meanFlow // flows per second
	n := g.poisson(arrivalRate * window.Seconds())
	for i := 0; i < n; i++ {
		f := g.spawnFlow()
		f.next = -time.Duration(g.rng.Float64() * float64(window))
		for f.next < 0 && f.remaining > 0 {
			f.remaining--
			f.first = false
			f.next += time.Duration(g.rng.Exp(1/f.gap) * float64(time.Second))
		}
		if f.remaining > 0 {
			heap.Push(&g.active, f)
		}
	}
}

// NextBatch implements Source.
func (g *Generator) NextBatch() (pkt.Batch, bool) {
	if g.nbins >= 0 && g.bin >= g.nbins {
		return pkt.Batch{}, false
	}
	t0 := time.Duration(g.bin) * g.cfg.TimeBin
	t1 := t0 + g.cfg.TimeBin
	binSec := g.cfg.TimeBin.Seconds()

	// Per-bin load multiplier: slow diurnal swing times bursty noise
	// times the current flash burst, if any.
	mult := 1 + g.cfg.DiurnalAmplitude*math.Sin(2*math.Pi*t0.Seconds()/g.cfg.DiurnalPeriod.Seconds())
	mult *= math.Exp(g.cfg.NoiseSigma*g.rng.NormFloat64() - g.cfg.NoiseSigma*g.cfg.NoiseSigma/2)
	if g.burstLeft > 0 {
		g.burstLeft--
		mult *= g.burstfactor
	} else if g.cfg.BurstProb > 0 && g.rng.Float64() < g.cfg.BurstProb {
		g.burstLeft = 1 + int(g.rng.Exp(1/g.cfg.BurstBins))
		g.burstfactor = 1 + g.rng.Exp(1/(g.cfg.BurstFactor-1))
		mult *= g.burstfactor
	}
	if mult < 0.05 {
		mult = 0.05
	}

	// Spawn new flows for this bin (Poisson arrivals, uniform in bin).
	// The flow-mix modulation moves the flow arrival rate independently
	// of the packet rate.
	flowMult := math.Exp(g.cfg.FlowMixSigma*g.rng.NormFloat64() - g.cfg.FlowMixSigma*g.cfg.FlowMixSigma/2)
	meanArrivals := g.cfg.PacketsPerSec * mult * flowMult / g.meanFlow * binSec
	for i, n := 0, g.poisson(meanArrivals); i < n; i++ {
		f := g.spawnFlow()
		f.next = t0 + time.Duration(g.rng.Float64()*float64(g.cfg.TimeBin))
		heap.Push(&g.active, f)
	}

	// Drain every packet due before the end of the bin. The slice is
	// sized from the previous batch (traffic is locally stationary, so
	// that is a tight predictor even across bursts) and handed off to
	// the consumer: batches may be recorded and retained, so the backing
	// array cannot be reused — only the flow states can.
	b := pkt.Batch{Start: t0, Bin: g.cfg.TimeBin}
	if g.pktCap > 0 {
		b.Pkts = make([]pkt.Packet, 0, g.pktCap+g.pktCap/8+1)
	}
	for g.active.Len() > 0 && g.active[0].next < t1 {
		f := heap.Pop(&g.active).(*genFlow)
		b.Pkts = append(b.Pkts, g.makePacket(f))
		f.remaining--
		if f.remaining > 0 {
			f.next += time.Duration(g.rng.Exp(1/f.gap) * float64(time.Second))
			heap.Push(&g.active, f)
		} else {
			g.free = append(g.free, f)
		}
	}
	// Anomalies on top, then restore time order.
	for i, a := range g.cfg.Anomalies {
		arng := hash.NewXorShift(g.cfg.Seed ^ (uint64(g.bin)+1)*0x9e3779b97f4a7c15 ^ (uint64(i)+1)*0xc2b2ae3d27d4eb4f)
		b.Pkts = a.Inject(t0, t1, arng, b.Pkts)
	}
	sortBatch(&b)
	// Record the size prediction after anomaly injection, so bursty bins
	// presize for the attack traffic too.
	g.pktCap = len(b.Pkts)

	g.bin++
	return b, true
}

func (g *Generator) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := lambda + math.Sqrt(lambda)*g.rng.NormFloat64()
		if n < 0 {
			return 0
		}
		return int(n + 0.5)
	}
	limit := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= g.rng.Float64()
		if p < limit {
			return k
		}
		k++
	}
}

func (g *Generator) clientIP() uint32 {
	i := g.rng.Intn(g.cfg.Clients)
	return pkt.IPv4(10, byte(i>>16), byte(i>>8), byte(i))
}

func (g *Generator) serverIP() uint32 {
	j := int(g.zipf.Uint64())
	return pkt.IPv4(147, 83, byte(j>>8), byte(j))
}

func (g *Generator) scannerIP() uint32 {
	i := g.rng.Intn(g.cfg.Scanners)
	return pkt.IPv4(203, 0, 113, byte(i+1))
}

func (g *Generator) randomIP() uint32 {
	return uint32(g.rng.Uint64())
}

// flowLen draws a Pareto flow length with the configured mean.
func (g *Generator) flowLen(mean float64) int {
	// Pareto with shape a>1 has mean xm*a/(a-1); solve xm for our mean.
	a := g.cfg.ParetoShape
	xm := mean * (a - 1) / a
	n := int(g.rng.Pareto(xm, a) + 0.5)
	if n < 1 {
		n = 1
	}
	if n > g.cfg.MaxFlowPkts {
		n = g.cfg.MaxFlowPkts
	}
	return n
}

func (g *Generator) spawnFlow() *genFlow {
	c := g.cfg
	u := g.rng.Float64()
	var f *genFlow
	if n := len(g.free); n > 0 {
		f = g.free[n-1]
		g.free = g.free[:n-1]
		*f = genFlow{first: true, proto: pkt.ProtoTCP}
	} else {
		f = &genFlow{first: true, proto: pkt.ProtoTCP}
	}
	switch {
	case u < c.ScanFrac:
		f.class = classScan
		f.src = g.scannerIP()
		f.dst = g.randomIP()
		f.sport = uint16(1024 + g.rng.Intn(64000))
		f.dport = uint16(1 + g.rng.Intn(1024))
		f.remaining = 1 + g.rng.Intn(2)
	case u < c.ScanFrac+c.P2PFrac:
		f.class = classP2P
		f.src = g.clientIP()
		f.dst = g.serverIP() // peers modelled inside the server pool
		f.sport = uint16(1024 + g.rng.Intn(64000))
		switch g.rng.Intn(3) {
		case 0:
			f.dport, f.sig = 6881, SigBitTorrent
		case 1:
			f.dport, f.sig = 6346, SigGnutella
		default:
			f.dport, f.sig = 4662, SigED2K
		}
		// A share of P2P traffic hides on ephemeral ports, so port
		// heuristics alone cannot reach full detection accuracy.
		if g.rng.Float64() < 0.3 {
			f.dport = uint16(10000 + g.rng.Intn(50000))
		}
		f.remaining = g.flowLen(2.5 * c.MeanFlowPkts)
	case u < c.ScanFrac+c.P2PFrac+0.12:
		f.class = classDNS
		f.proto = pkt.ProtoUDP
		f.src = g.clientIP()
		f.dst = g.serverIP()
		f.sport = uint16(1024 + g.rng.Intn(64000))
		f.dport = 53
		f.remaining = 1 + g.rng.Intn(2)
	case u < c.ScanFrac+c.P2PFrac+0.12+0.05:
		f.class = classMail
		f.src = g.clientIP()
		f.dst = g.serverIP()
		f.sport = uint16(1024 + g.rng.Intn(64000))
		f.dport = 25
		f.remaining = g.flowLen(10)
	default:
		f.class = classWeb
		f.src = g.clientIP()
		f.dst = g.serverIP()
		f.sport = uint16(1024 + g.rng.Intn(64000))
		switch {
		case g.rng.Float64() < 0.7:
			f.dport = 80
		case g.rng.Float64() < 0.85:
			f.dport = 443
		default:
			f.dport = 8080
		}
		if g.rng.Float64() < c.PatternFrac {
			f.sig = PatternHTTP
		}
		f.remaining = g.flowLen(c.MeanFlowPkts)
	}
	// Within-flow pacing: draw a bounded flow duration so every flow can
	// complete within the trace (otherwise the heavy tail silently
	// truncates and the realized packet rate falls short), with a
	// lognormal spread and a floor at the configured per-flow rate.
	dur := g.maxFlowDur().Seconds() * math.Pow(g.rng.Float64(), 2)
	rate := float64(f.remaining) / math.Max(dur, 1e-3)
	base := c.FlowPktRate * math.Exp(0.5*g.rng.NormFloat64())
	if rate < base {
		rate = base
	}
	f.gap = 1 / rate
	return f
}

// maxFlowDur bounds how long a flow may live: a third of the trace,
// capped at 15 s and floored at 500 ms.
func (g *Generator) maxFlowDur() time.Duration {
	d := g.cfg.Duration / 3
	if d > 15*time.Second {
		d = 15 * time.Second
	}
	if d < 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	return d
}

func (g *Generator) pktSize(f *genFlow) int {
	if f.first && f.proto == pkt.ProtoTCP {
		return 40
	}
	switch f.class {
	case classDNS:
		return 60 + g.rng.Intn(90)
	case classScan:
		return 40 + g.rng.Intn(20)
	}
	u := g.rng.Float64()
	switch {
	case u < 0.35:
		return 40 + g.rng.Intn(24) // acks and control
	case u < 0.52:
		return 400 + g.rng.Intn(300)
	default:
		return 1320 + g.rng.Intn(181) // near-MTU data
	}
}

func (g *Generator) makePacket(f *genFlow) pkt.Packet {
	size := g.pktSize(f)
	p := pkt.Packet{
		Ts:      int64(f.next),
		SrcIP:   f.src,
		DstIP:   f.dst,
		SrcPort: f.sport,
		DstPort: f.dport,
		Proto:   f.proto,
		Size:    size,
	}
	if f.proto == pkt.ProtoTCP {
		if f.first {
			p.TCPFlags = pkt.FlagSYN
		} else {
			p.TCPFlags = pkt.FlagACK
			if size > 100 {
				p.TCPFlags |= pkt.FlagPSH
			}
		}
	}
	if g.cfg.Payload && size > 100 {
		n := size - 40
		if n > pkt.SnapLen {
			n = pkt.SnapLen
		}
		p.Payload = g.fillPayload(n, f)
	}
	f.first = false
	return p
}

// fillPayload produces n pseudo-random payload bytes, embedding the
// flow's signature once at the front of its first data packet.
func (g *Generator) fillPayload(n int, f *genFlow) []byte {
	buf := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := g.rng.Uint64()
		for j := 0; j < 8 && i+j < n; j++ {
			buf[i+j] = byte(v >> (8 * uint(j)))
		}
	}
	// Keep payload printable-ish so accidental signature collisions are
	// impossible: clear the top bit.
	for i := range buf {
		buf[i] &= 0x7f
		if buf[i] == 0x13 { // BitTorrent signature lead byte
			buf[i] = 0x14
		}
	}
	if f.sig != nil && !f.sigSent && n >= len(f.sig) {
		copy(buf, f.sig)
		f.sigSent = true
	}
	return buf
}
