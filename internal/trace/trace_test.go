package trace

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/pkt"
)

func shortCfg(seed uint64) Config {
	return Config{
		Seed:          seed,
		Duration:      3 * time.Second,
		PacketsPerSec: 5000,
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(shortCfg(1))
	b := NewGenerator(shortCfg(1))
	for {
		ba, oka := a.NextBatch()
		bb, okb := b.NextBatch()
		if oka != okb {
			t.Fatal("generators disagree on trace length")
		}
		if !oka {
			break
		}
		if len(ba.Pkts) != len(bb.Pkts) {
			t.Fatalf("batch sizes differ: %d vs %d", len(ba.Pkts), len(bb.Pkts))
		}
		for i := range ba.Pkts {
			pa, pb := ba.Pkts[i], bb.Pkts[i]
			if pa.Ts != pb.Ts || pa.SrcIP != pb.SrcIP || pa.DstIP != pb.DstIP ||
				pa.SrcPort != pb.SrcPort || pa.Size != pb.Size {
				t.Fatalf("packet %d differs", i)
			}
		}
	}
}

func TestGeneratorResetReproduces(t *testing.T) {
	g := NewGenerator(shortCfg(2))
	first, _ := g.NextBatch()
	for {
		if _, ok := g.NextBatch(); !ok {
			break
		}
	}
	g.Reset()
	again, ok := g.NextBatch()
	if !ok {
		t.Fatal("no batch after Reset")
	}
	if len(first.Pkts) != len(again.Pkts) {
		t.Fatalf("first batch differs after Reset: %d vs %d packets", len(first.Pkts), len(again.Pkts))
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a, _ := NewGenerator(shortCfg(1)).NextBatch()
	b, _ := NewGenerator(shortCfg(99)).NextBatch()
	if len(a.Pkts) == len(b.Pkts) {
		same := true
		for i := range a.Pkts {
			if a.Pkts[i].SrcIP != b.Pkts[i].SrcIP {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traffic")
		}
	}
}

func TestGeneratorBatchCount(t *testing.T) {
	g := NewGenerator(shortCfg(3))
	n := 0
	for {
		if _, ok := g.NextBatch(); !ok {
			break
		}
		n++
	}
	if n != 30 { // 3 s / 100 ms
		t.Fatalf("got %d batches, want 30", n)
	}
}

func TestGeneratorRateNearTarget(t *testing.T) {
	cfg := Config{Seed: 4, Duration: 10 * time.Second, PacketsPerSec: 8000}
	st := Measure(NewGenerator(cfg))
	if math.Abs(st.AvgPPS-8000)/8000 > 0.25 {
		t.Fatalf("avg pps = %.0f, want 8000 +/- 25%%", st.AvgPPS)
	}
	if st.AvgMbps < 10 {
		t.Fatalf("avg load %.1f Mbps implausibly low", st.AvgMbps)
	}
}

func TestGeneratorPacketsOrdered(t *testing.T) {
	g := NewGenerator(shortCfg(5))
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for i := 1; i < len(b.Pkts); i++ {
			if b.Pkts[i].Ts < b.Pkts[i-1].Ts {
				t.Fatal("packets out of time order")
			}
		}
		lo, hi := int64(b.Start), int64(b.Start+b.Bin)
		for _, p := range b.Pkts {
			if p.Ts < lo || p.Ts >= hi {
				t.Fatalf("packet ts %d outside bin [%d, %d)", p.Ts, lo, hi)
			}
		}
	}
}

func TestGeneratorPayloadOnlyWhenEnabled(t *testing.T) {
	g := NewGenerator(Config{Seed: 6, Duration: time.Second, PacketsPerSec: 5000})
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for _, p := range b.Pkts {
			if p.Payload != nil {
				t.Fatal("payload generated with Payload=false")
			}
		}
	}
	g = NewGenerator(Config{Seed: 6, Duration: time.Second, PacketsPerSec: 5000, Payload: true})
	seen := false
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for _, p := range b.Pkts {
			if len(p.Payload) > 0 {
				seen = true
				if len(p.Payload) > pkt.SnapLen {
					t.Fatalf("payload exceeds snaplen: %d", len(p.Payload))
				}
			}
		}
	}
	if !seen {
		t.Fatal("no payloads generated with Payload=true")
	}
}

func TestGeneratorEmbedsSignatures(t *testing.T) {
	g := NewGenerator(Config{
		Seed: 7, Duration: 5 * time.Second, PacketsPerSec: 8000,
		Payload: true, P2PFrac: 0.2,
	})
	found := 0
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for _, p := range b.Pkts {
			if bytes.HasPrefix(p.Payload, SigBitTorrent) ||
				bytes.HasPrefix(p.Payload, SigGnutella) ||
				bytes.HasPrefix(p.Payload, SigED2K) {
				found++
			}
		}
	}
	if found < 10 {
		t.Fatalf("found only %d signature packets, want >= 10", found)
	}
}

func TestGeneratorTCPFirstPacketIsSYN(t *testing.T) {
	g := NewGenerator(shortCfg(8))
	syns := 0
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for _, p := range b.Pkts {
			if p.Proto == pkt.ProtoTCP && p.TCPFlags&pkt.FlagSYN != 0 {
				syns++
				if p.Size != 40 {
					t.Fatalf("SYN packet size = %d, want 40", p.Size)
				}
			}
		}
	}
	if syns == 0 {
		t.Fatal("no SYN packets seen")
	}
}

func TestDDoSInjection(t *testing.T) {
	target := pkt.IPv4(147, 83, 1, 1)
	cfg := shortCfg(9)
	cfg.Anomalies = []Anomaly{NewSYNFlood(time.Second, time.Second, 20000, target, 80)}
	g := NewGenerator(cfg)
	inWindow, outWindow := 0, 0
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for _, p := range b.Pkts {
			if p.DstIP == target && p.TCPFlags&pkt.FlagSYN != 0 && p.DstPort == 80 {
				ts := time.Duration(p.Ts)
				if ts >= time.Second && ts < 2*time.Second {
					inWindow++
				} else {
					outWindow++
				}
			}
		}
	}
	if inWindow < 15000 {
		t.Fatalf("flood packets in window = %d, want ~20000", inWindow)
	}
	if outWindow > 100 {
		t.Fatalf("flood packets outside window = %d", outWindow)
	}
}

func TestOnOffDDoSIdlesEveryOtherSecond(t *testing.T) {
	target := pkt.IPv4(147, 83, 1, 1)
	cfg := Config{Seed: 10, Duration: 4 * time.Second, PacketsPerSec: 1000}
	cfg.Anomalies = []Anomaly{NewOnOffDDoS(0, 4*time.Second, 10000, target)}
	g := NewGenerator(cfg)
	perSecond := make([]int, 4)
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for _, p := range b.Pkts {
			if p.DstIP == target && p.TCPFlags&pkt.FlagSYN != 0 {
				perSecond[time.Duration(p.Ts)/time.Second]++
			}
		}
	}
	if perSecond[0] < 5000 || perSecond[2] < 5000 {
		t.Fatalf("on seconds too quiet: %v", perSecond)
	}
	if perSecond[1] > 100 || perSecond[3] > 100 {
		t.Fatalf("off seconds not idle: %v", perSecond)
	}
}

func TestWormInjection(t *testing.T) {
	cfg := shortCfg(11)
	cfg.Payload = true
	cfg.Anomalies = []Anomaly{&Worm{Start: 0, Duration: 3 * time.Second, PPS: 5000, DstPort: 80}}
	g := NewGenerator(cfg)
	probes := 0
	srcs := map[uint32]bool{}
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for _, p := range b.Pkts {
			if bytes.Contains(p.Payload, PatternWorm) {
				probes++
				srcs[p.SrcIP] = true
			}
		}
	}
	if probes < 1000 {
		t.Fatalf("worm probes = %d, want >= 1000", probes)
	}
	if len(srcs) < 20 {
		t.Fatalf("worm sources = %d, want many", len(srcs))
	}
}

func TestByteBurstInjection(t *testing.T) {
	cfg := shortCfg(12)
	cfg.Anomalies = []Anomaly{&ByteBurst{Start: time.Second, Duration: time.Second, PPS: 5000}}
	g := NewGenerator(cfg)
	big := 0
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for _, p := range b.Pkts {
			if p.Size == 1500 && p.DstPort == 9 {
				big++
			}
		}
	}
	if big < 4000 {
		t.Fatalf("burst packets = %d, want ~5000", big)
	}
}

func TestMemorySourceRoundTrip(t *testing.T) {
	batches := Record(NewGenerator(shortCfg(13)))
	src := NewMemorySource(batches, DefaultTimeBin)
	n := 0
	for {
		if _, ok := src.NextBatch(); !ok {
			break
		}
		n++
	}
	if n != len(batches) {
		t.Fatalf("replayed %d batches, stored %d", n, len(batches))
	}
	src.Reset()
	if _, ok := src.NextBatch(); !ok {
		t.Fatal("MemorySource did not reset")
	}
}

func TestFileRoundTrip(t *testing.T) {
	cfg := shortCfg(14)
	cfg.Payload = true
	g := NewGenerator(cfg)
	var buf bytes.Buffer
	if err := WriteAll(&buf, g); err != nil {
		t.Fatal(err)
	}
	rd, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Record(g)
	got := rd.Batches
	if len(got) != len(want) {
		t.Fatalf("batch count: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Start != want[i].Start || len(got[i].Pkts) != len(want[i].Pkts) {
			t.Fatalf("batch %d header mismatch", i)
		}
		for j := range want[i].Pkts {
			a, b := got[i].Pkts[j], want[i].Pkts[j]
			if a.Ts != b.Ts || a.SrcIP != b.SrcIP || a.Size != b.Size || !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("batch %d packet %d mismatch", i, j)
			}
		}
	}
}

func TestReadAllRejectsGarbage(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("not a trace file at all"))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadAllTruncated(t *testing.T) {
	g := NewGenerator(shortCfg(15))
	var buf bytes.Buffer
	if err := WriteAll(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-7]
	if _, err := ReadAll(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated file read without error")
	}
}

func TestPresetsProduceTraffic(t *testing.T) {
	presets := map[string]Config{
		"cesca1":  CESCA1(1, time.Second, 0.1),
		"cesca2":  CESCA2(1, time.Second, 0.1),
		"abilene": Abilene(1, time.Second, 0.1),
		"cenic":   CENIC(1, time.Second, 0.1),
		"upc1":    UPC1(1, time.Second, 0.1),
		"upc2":    UPC2(1, time.Second, 0.1),
	}
	for name, cfg := range presets {
		st := Measure(NewGenerator(cfg))
		if st.Packets == 0 {
			t.Errorf("%s: produced no packets", name)
		}
		if name == "cesca2" || name == "upc1" || name == "upc2" {
			if !cfg.Payload {
				t.Errorf("%s should carry payloads", name)
			}
		}
	}
}

func TestMeasureStats(t *testing.T) {
	st := Measure(NewGenerator(shortCfg(16)))
	if st.Batches != 30 {
		t.Errorf("batches = %d", st.Batches)
	}
	if st.MinMbps > st.AvgMbps || st.AvgMbps > st.MaxMbps {
		t.Errorf("mbps ordering violated: min=%v avg=%v max=%v", st.MinMbps, st.AvgMbps, st.MaxMbps)
	}
	if st.Duration != 3*time.Second {
		t.Errorf("duration = %v", st.Duration)
	}
}

func BenchmarkGenerator(b *testing.B) {
	g := NewGenerator(Config{Seed: 1, Duration: time.Hour, PacketsPerSec: 25000})
	b.ReportAllocs()
	pkts := 0
	for i := 0; i < b.N; i++ {
		batch, ok := g.NextBatch()
		if !ok {
			g.Reset()
			continue
		}
		pkts += len(batch.Pkts)
	}
	if b.N > 0 {
		b.ReportMetric(float64(pkts)/float64(b.N), "pkts/batch")
	}
}

func TestSplitFlowsPartitionsEveryPacket(t *testing.T) {
	g := NewGenerator(shortCfg(17))
	whole := Measure(g)
	links := SplitFlows(g, 3, 7)
	if len(links) != 3 {
		t.Fatalf("got %d links, want 3", len(links))
	}
	total, nonEmpty := 0, 0
	for _, l := range links {
		st := Measure(l)
		if st.Batches != whole.Batches {
			t.Fatalf("link batch count %d, want %d (splitter must keep bin alignment)", st.Batches, whole.Batches)
		}
		total += st.Packets
		if st.Packets > 0 {
			nonEmpty++
		}
	}
	if total != whole.Packets {
		t.Fatalf("links carry %d packets, source had %d — splitter lost or duplicated traffic", total, whole.Packets)
	}
	if nonEmpty != 3 {
		t.Fatalf("only %d of 3 links carry traffic", nonEmpty)
	}
}

func TestSplitFlowsIsFlowConsistent(t *testing.T) {
	g := NewGenerator(shortCfg(18))
	links := SplitFlows(g, 4, 9)
	seen := map[pkt.FlowKey]int{}
	for li, l := range links {
		for {
			b, ok := l.NextBatch()
			if !ok {
				break
			}
			for i := range b.Pkts {
				k := b.Pkts[i].FlowKey()
				if prev, ok := seen[k]; ok && prev != li {
					t.Fatalf("flow %v split across links %d and %d", k, prev, li)
				}
				seen[k] = li
			}
		}
	}
	if len(seen) < 100 {
		t.Fatalf("only %d flows observed, trace too small to trust", len(seen))
	}
}

func TestSplitFlowsDeterministic(t *testing.T) {
	a := SplitFlows(NewGenerator(shortCfg(19)), 2, 3)
	b := SplitFlows(NewGenerator(shortCfg(19)), 2, 3)
	for l := range a {
		for {
			ba, oka := a[l].NextBatch()
			bb, okb := b[l].NextBatch()
			if oka != okb {
				t.Fatal("split lengths disagree")
			}
			if !oka {
				break
			}
			if len(ba.Pkts) != len(bb.Pkts) {
				t.Fatalf("link %d batch sizes differ", l)
			}
			for i := range ba.Pkts {
				if ba.Pkts[i].Ts != bb.Pkts[i].Ts || ba.Pkts[i].SrcIP != bb.Pkts[i].SrcIP {
					t.Fatalf("link %d packet %d differs between identical splits", l, i)
				}
			}
		}
	}
	// A different seed must route flows differently.
	c := SplitFlows(NewGenerator(shortCfg(19)), 2, 4)
	a[0].Reset()
	c[0].Reset()
	ba, _ := a[0].NextBatch()
	bc, _ := c[0].NextBatch()
	if len(ba.Pkts) == len(bc.Pkts) {
		same := true
		for i := range ba.Pkts {
			if ba.Pkts[i].SrcIP != bc.Pkts[i].SrcIP {
				same = false
				break
			}
		}
		if same && len(ba.Pkts) > 0 {
			t.Fatal("different splitter seeds routed identically")
		}
	}
}

func TestAsymmetricMixShape(t *testing.T) {
	links := AsymmetricMix(1, 4*time.Second, 0.1, 3)
	if len(links) != 3 {
		t.Fatalf("got %d links", len(links))
	}
	if len(links[0].Config.Anomalies) == 0 {
		t.Fatal("link 0 carries no attack")
	}
	for i := 1; i < 3; i++ {
		if len(links[i].Config.Anomalies) != 0 {
			t.Fatalf("calm link %d carries an anomaly", i)
		}
	}
	// The hot link must actually dominate: compare measured packet load.
	hot := Measure(NewGenerator(links[0].Config))
	calm := Measure(NewGenerator(links[1].Config))
	if hot.Packets <= calm.Packets {
		t.Fatalf("hot link %d pkts not above calm link %d", hot.Packets, calm.Packets)
	}
}
