package trace

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/pkt"
)

// driftPkts returns the injected drift packets per half-second bucket.
func driftBuckets(t *testing.T, cfg Config, match func(pkt.Packet) bool) []int {
	t.Helper()
	g := NewGenerator(cfg)
	buckets := make([]int, cfg.Duration/(500*time.Millisecond))
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for _, p := range b.Pkts {
			if match(p) {
				i := int(time.Duration(p.Ts) / (500 * time.Millisecond))
				if i >= 0 && i < len(buckets) {
					buckets[i]++
				}
			}
		}
	}
	return buckets
}

func TestGradualDriftRampsAndPersists(t *testing.T) {
	// The drift mimics base traffic by design, so it is identified by
	// volume: a tiny base rate makes the totals tell the story.
	cfg := Config{Seed: 21, Duration: 6 * time.Second, PacketsPerSec: 200, Payload: true}
	cfg.Anomalies = []Anomaly{NewGradualDrift(time.Second, 5*time.Second, 8000)}
	buckets := driftBuckets(t, cfg, func(pkt.Packet) bool { return true })
	// Only the ~200 pps base before Start.
	if buckets[0] > 500 || buckets[1] > 500 {
		t.Fatalf("traffic before drift start: %v", buckets)
	}
	// Monotone-ish ramp over the first quarter (1s..2.25s), then a
	// sustained plateau near PPS/2 per half-second bucket to the end.
	if buckets[2] >= buckets[4] {
		t.Fatalf("no ramp: bucket2=%d bucket4=%d (%v)", buckets[2], buckets[4], buckets)
	}
	for i := 5; i < len(buckets); i++ {
		if buckets[i] < 3400 {
			t.Fatalf("plateau bucket %d = %d, want ~4100 (%v)", i, buckets[i], buckets)
		}
	}
	// The regime change itself: drift flows blend into the base address
	// pools and port mix but never carry payload, so on a payload base
	// the payload-free data packets are the drift — and they dominate.
	g := NewGenerator(cfg)
	bare, carrying := 0, 0
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for _, p := range b.Pkts {
			if p.Size <= 100 {
				continue
			}
			if len(p.Payload) != 0 {
				carrying++
				continue
			}
			bare++
			if p.SrcIP>>24 != 10 || p.DstIP>>16 != 147<<8|83 {
				t.Fatalf("drift packet outside the base address pools: %x -> %x", p.SrcIP, p.DstIP)
			}
			if p.DstPort != 80 && p.DstPort != 443 && p.DstPort != 8080 {
				t.Fatalf("drift packet outside the base web-port mix: %d", p.DstPort)
			}
		}
	}
	if bare < 5*carrying || bare < 10000 {
		t.Fatalf("payload-free drift should dominate data packets: bare=%d carrying=%d", bare, carrying)
	}
}

func TestFlashCrowdSkewsOneDestination(t *testing.T) {
	target := pkt.IPv4(147, 83, 9, 9)
	cfg := Config{Seed: 22, Duration: 6 * time.Second, PacketsPerSec: 2000}
	cfg.Anomalies = []Anomaly{NewFlashCrowd(time.Second, 5*time.Second, 10000, target)}
	g := NewGenerator(cfg)
	srcs := map[uint32]bool{}
	hits := 0
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for _, p := range b.Pkts {
			if p.DstIP == target {
				hits++
				srcs[p.SrcIP] = true
			}
		}
	}
	if hits < 10000 {
		t.Fatalf("flash-crowd requests = %d, want many", hits)
	}
	if len(srcs) < 1000 {
		t.Fatalf("flash-crowd client diversity = %d sources, want >= 1000", len(srcs))
	}
	// Rise then decay: the peak bucket sits early, the tail is quiet.
	buckets := driftBuckets(t, cfg, func(p pkt.Packet) bool { return p.DstIP == target })
	peak, peakAt := 0, 0
	for i, n := range buckets {
		if n > peak {
			peak, peakAt = n, i
		}
	}
	if peakAt > 5 {
		t.Fatalf("peak bucket at %d, want early rise (%v)", peakAt, buckets)
	}
	last := buckets[len(buckets)-1]
	if last*4 > peak {
		t.Fatalf("no decay: last=%d peak=%d (%v)", last, peak, buckets)
	}
}

func TestTopologyShiftUsesFreshAddressSpace(t *testing.T) {
	cfg := Config{Seed: 23, Duration: 4 * time.Second, PacketsPerSec: 2000}
	cfg.Anomalies = []Anomaly{NewTopologyShift(time.Second, 3*time.Second, 6000)}
	g := NewGenerator(cfg)
	srcs := map[uint32]bool{}
	dsts := map[uint32]bool{}
	shifted, before := 0, 0
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		for _, p := range b.Pkts {
			if p.SrcIP>>16 == 198<<8|18 {
				if time.Duration(p.Ts) < time.Second {
					before++
				}
				shifted++
				srcs[p.SrcIP] = true
				dsts[p.DstIP] = true
			}
		}
	}
	if before > 0 {
		t.Fatalf("%d shifted packets before Start", before)
	}
	if shifted < 12000 {
		t.Fatalf("shifted packets = %d, want ~18000", shifted)
	}
	if len(srcs) < 5000 || len(dsts) < 500 {
		t.Fatalf("address diversity src=%d dst=%d, want a re-hashed space", len(srcs), len(dsts))
	}
	for d := range dsts {
		if d>>16 != 198<<8|19 {
			t.Fatalf("shifted dst outside 198.19/16: %x", d)
		}
	}
}

func TestNewAnomaliesDeterministic(t *testing.T) {
	mk := func() Config {
		cfg := shortCfg(24)
		cfg.Anomalies = []Anomaly{
			NewGradualDrift(0, 3*time.Second, 3000),
			NewFlashCrowd(time.Second, 2*time.Second, 3000, pkt.IPv4(147, 83, 9, 9)),
			NewTopologyShift(500*time.Millisecond, 2*time.Second, 3000),
		}
		return cfg
	}
	a, b := NewGenerator(mk()), NewGenerator(mk())
	for {
		ba, oka := a.NextBatch()
		bb, okb := b.NextBatch()
		if oka != okb {
			t.Fatal("batch counts differ")
		}
		if !oka {
			break
		}
		if len(ba.Pkts) != len(bb.Pkts) {
			t.Fatalf("batch sizes differ: %d vs %d", len(ba.Pkts), len(bb.Pkts))
		}
		for i := range ba.Pkts {
			if !reflect.DeepEqual(ba.Pkts[i], bb.Pkts[i]) {
				t.Fatalf("packet %d differs: %+v vs %+v", i, ba.Pkts[i], bb.Pkts[i])
			}
		}
	}
}
