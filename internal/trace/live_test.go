package trace

import (
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/pkt"
)

// TestLiveFrameRoundTrip pins the wire framing: appendFrame's encoding
// decodes to the identical packet, payload included.
func TestLiveFrameRoundTrip(t *testing.T) {
	cfg := shortCfg(3)
	cfg.Payload = true
	batches := Record(NewGenerator(cfg))
	l := &LiveSource{}
	var buf []byte
	var want []pkt.Packet
	for i := range batches {
		for j := range batches[i].Pkts {
			buf = appendFrame(buf, &batches[i].Pkts[j])
			want = append(want, batches[i].Pkts[j])
		}
	}
	got := l.decodeFrames(buf, nil)
	if l.BadFrames() != 0 {
		t.Fatalf("%d bad frames decoding a clean encoding", l.BadFrames())
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d packets, encoded %d", len(got), len(want))
	}
	for i := range want {
		if pktKey(&got[i]) != pktKey(&want[i]) {
			t.Fatalf("packet %d mismatch:\ngot  %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// pktKey is a comparable fingerprint of every encoded field.
func pktKey(p *pkt.Packet) string {
	return fmt.Sprintf("%d/%d/%d/%d/%d/%d/%d/%d/%x",
		p.Ts, p.SrcIP, p.DstIP, p.SrcPort, p.DstPort, p.Proto, p.TCPFlags, p.Size, p.Payload)
}

// drainLive reads batches until n packets arrived or the deadline
// passes, then closes the source and drains the tail of the stream.
func drainLive(t *testing.T, l *LiveSource, n int, deadline time.Duration) []pkt.Packet {
	t.Helper()
	var got []pkt.Packet
	timeout := time.After(deadline)
	for len(got) < n {
		done := make(chan pkt.Batch, 1)
		go func() {
			b, ok := l.NextBatch()
			if !ok {
				close(done)
				return
			}
			done <- b
		}()
		select {
		case b, ok := <-done:
			if !ok {
				t.Fatal("stream ended early")
			}
			got = append(got, b.Pkts...)
		case <-timeout:
			l.Close()
			t.Fatalf("timed out with %d/%d packets", len(got), n)
		}
	}
	l.Close()
	for {
		b, ok := l.NextBatch()
		if !ok {
			break
		}
		got = append(got, b.Pkts...)
	}
	return got
}

// TestLiveUnixgramEndToEnd sends a generated trace over a unixgram
// socket — reliable, so delivery is exact — and requires the listener
// to reproduce every packet, batched by wall clock and Ts-sorted
// within each bin.
func TestLiveUnixgramEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.sock")
	l, err := ListenLive("unixgram", path, LiveConfig{Bin: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortCfg(7)
	cfg.Duration = time.Second
	cfg.Payload = true
	batches := Record(NewGenerator(cfg))
	snd, err := DialLive("unixgram", path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	sent := 0
	for i := range batches {
		if err := snd.SendBatch(&batches[i]); err != nil {
			t.Fatal(err)
		}
		for j := range batches[i].Pkts {
			want[pktKey(&batches[i].Pkts[j])]++
			sent++
		}
	}
	if err := snd.Close(); err != nil {
		t.Fatal(err)
	}

	got := drainLive(t, l, sent, 10*time.Second)
	if l.Err() != nil {
		t.Fatalf("listener error: %v", l.Err())
	}
	if l.BadFrames() != 0 {
		t.Fatalf("%d bad frames on a clean sender", l.BadFrames())
	}
	if len(got) != sent {
		t.Fatalf("received %d packets, sent %d", len(got), sent)
	}
	for i := range got {
		k := pktKey(&got[i])
		if want[k] == 0 {
			t.Fatalf("received packet never sent: %+v", got[i])
		}
		want[k]--
	}
}

// TestLiveUDPDelivers exercises the UDP path. UDP may drop under
// pressure even on loopback, so the assertions are loss-tolerant: some
// packets arrive intact, none are mangled, nothing is invented.
func TestLiveUDPDelivers(t *testing.T) {
	l, err := ListenLive("udp", "127.0.0.1:0", LiveConfig{Bin: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	batches := Record(NewGenerator(shortCfg(9)))
	snd, err := DialLive("udp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	sent := 0
	for i := range batches {
		if err := snd.SendBatch(&batches[i]); err != nil {
			t.Fatal(err)
		}
		for j := range batches[i].Pkts {
			want[pktKey(&batches[i].Pkts[j])]++
			sent++
		}
	}
	snd.Close()

	// Give the kernel a moment to deliver, then take what arrived.
	time.Sleep(100 * time.Millisecond)
	l.Close()
	var got []pkt.Packet
	for {
		b, ok := l.NextBatch()
		if !ok {
			break
		}
		got = append(got, b.Pkts...)
	}
	if l.BadFrames() != 0 {
		t.Fatalf("%d bad frames on a clean sender", l.BadFrames())
	}
	if len(got) == 0 {
		t.Fatal("no packets arrived over loopback UDP")
	}
	if len(got) > sent {
		t.Fatalf("received %d packets, only sent %d", len(got), sent)
	}
	for i := range got {
		k := pktKey(&got[i])
		if want[k] == 0 {
			t.Fatalf("received packet never sent: %+v", got[i])
		}
		want[k]--
	}
}

// TestLiveBadFramesCounted feeds garbage datagrams and requires them to
// be rejected and counted, not delivered as packets.
func TestLiveBadFramesCounted(t *testing.T) {
	l, err := ListenLive("udp", "127.0.0.1:0", LiveConfig{Bin: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := net.Dial("udp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame length prefix smaller than any record, then noise.
	if _, err := conn.Write([]byte{10, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	// A plausible prefix whose record is truncated.
	if _, err := conn.Write([]byte{40, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.BadFrames() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("bad frames not counted: %d", l.BadFrames())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Nothing decodable arrived, so the next bins must be empty.
	b, ok := l.NextBatch()
	if ok && len(b.Pkts) != 0 {
		t.Fatalf("garbage decoded into %d packets", len(b.Pkts))
	}
}

// TestLiveCloseUnblocksNextBatch pins the cancellation contract the
// serving mode relies on: Close wakes a NextBatch waiting on a silent
// link, and the stream ends without error.
func TestLiveCloseUnblocksNextBatch(t *testing.T) {
	l, err := ListenLive("udp", "127.0.0.1:0", LiveConfig{Bin: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	go func() {
		_, ok := l.NextBatch()
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if ok {
			t.Fatal("NextBatch returned a batch from a closed silent listener")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("NextBatch still blocked after Close")
	}
	if l.Err() != nil {
		t.Fatalf("clean Close left error: %v", l.Err())
	}
}
