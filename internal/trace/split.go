package trace

import (
	"repro/internal/hash"
	"repro/internal/pkt"
)

// SplitFlows partitions src into n per-link sources by hashing each
// packet's 5-tuple: link = H3(flow key) mod n. The split is
// deterministic per seed and flow-consistent — every packet of a flow
// lands on the same link, the way a flow-aware load balancer feeds a
// bank of monitors. The whole trace is materialized (src is drained
// once and reset), so the returned sources are independent and safe
// for concurrent consumption by cluster shards.
func SplitFlows(src Source, n int, seed uint64) []*MemorySource {
	if n < 1 {
		panic("trace: split into fewer than 1 link")
	}
	h := hash.NewH3(seed + 0x11f7)
	src.Reset()
	outs := make([][]pkt.Batch, n)
	for {
		b, ok := src.NextBatch()
		if !ok {
			break
		}
		parts := make([][]pkt.Packet, n)
		for i := range b.Pkts {
			k := b.Pkts[i].FlowKey()
			link := int(h.Hash(k[:]) % uint64(n))
			parts[link] = append(parts[link], b.Pkts[i])
		}
		for l := 0; l < n; l++ {
			outs[l] = append(outs[l], pkt.Batch{Start: b.Start, Bin: b.Bin, Pkts: parts[l]})
		}
	}
	src.Reset()
	srcs := make([]*MemorySource, n)
	for l := 0; l < n; l++ {
		srcs[l] = NewMemorySource(outs[l], src.TimeBin())
	}
	return srcs
}
