package trace

// live.go — live packet ingest: a Source backed by a datagram socket
// (UDP or unixgram) instead of a file or generator, for the serving
// deployment of cmd/lsd. Probes forward captured packets as
// length-prefixed frames; the listener accumulates them into wall-clock
// time bins and delivers one batch per bin, silent bins included, so
// the engine's bin cadence tracks real time the way a CoMo capture
// process's does.
//
// Wire framing (little endian, matching the trace file format):
//
//	frame:  frameLen uint16   // length of the record that follows
//	record: ts i64, srcIP u32, dstIP u32, srcPort u16, dstPort u16,
//	        proto u8, flags u8, size u32, payloadLen u16, payload
//
// A datagram carries any number of back-to-back frames. Frames are
// validated individually: a frame whose length or payload bound is
// implausible ends decoding of that datagram (datagram boundaries make
// resynchronization automatic) and increments BadFrames; well-formed
// neighbours in earlier frames are kept. Lost datagrams are simply
// absent — UDP loss shows up as missing packets, the same way a
// saturated capture card drops on the wire.
//
// A LiveSource intentionally breaks the Source determinism contract
// (live traffic cannot be replayed): Reset is a no-op and NextBatch
// blocks until the next wall-clock bin closes. Close unblocks a pending
// NextBatch, which is how a serving process cancels a stream that is
// waiting on a silent link.

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pkt"
)

// frameHdrLen is the fixed-size prefix of one framed packet record:
// the 26-byte packet header plus the u16 payload length.
const frameHdrLen = 28

// maxDatagram bounds the datagrams LiveSender packs; 8 KB stays under
// the default unixgram SO_SNDBUF and fragments at most a handful of
// ways on loopback UDP.
const maxDatagram = 8192

// LiveConfig parameterizes a live listener.
type LiveConfig struct {
	// Bin is the wall-clock batch duration; DefaultTimeBin if zero.
	Bin time.Duration
	// Backlog is the depth of the delivered-batch channel between the
	// listener goroutine and NextBatch (default 16 bins). When the
	// consumer falls further behind, whole bins are dropped and counted
	// in DroppedBins — the ingest analogue of a capture-buffer overflow.
	Backlog int
}

// LiveSource is a Source fed by a datagram socket. Construct with
// ListenLive; feed with LiveSender (or anything emitting the frame
// format above); stop with Close.
type LiveSource struct {
	conn  net.PacketConn
	bin   time.Duration
	out   chan pkt.Batch
	quit  chan struct{}
	wg    sync.WaitGroup
	start time.Time

	unixPath string // non-empty: socket file to unlink on Close

	closing   atomic.Bool
	badFrames atomic.Int64
	dropBins  atomic.Int64

	mu  sync.Mutex
	err error
}

// ListenLive opens a datagram listener on network ("udp", "udp4",
// "udp6" or "unixgram") and address, and starts binning received
// packets immediately.
func ListenLive(network, address string, cfg LiveConfig) (*LiveSource, error) {
	switch network {
	case "udp", "udp4", "udp6", "unixgram":
	default:
		return nil, fmt.Errorf("trace: live ingest supports udp/unixgram, not %q", network)
	}
	conn, err := net.ListenPacket(network, address)
	if err != nil {
		return nil, err
	}
	if cfg.Bin <= 0 {
		cfg.Bin = DefaultTimeBin
	}
	if cfg.Backlog <= 0 {
		cfg.Backlog = 16
	}
	l := &LiveSource{
		conn:  conn,
		bin:   cfg.Bin,
		out:   make(chan pkt.Batch, cfg.Backlog),
		quit:  make(chan struct{}),
		start: time.Now(),
	}
	if network == "unixgram" {
		l.unixPath = address
	}
	l.wg.Add(1)
	go l.listen()
	return l, nil
}

// Addr returns the bound address (useful with ":0" UDP listeners).
func (l *LiveSource) Addr() net.Addr { return l.conn.LocalAddr() }

// listen is the ingest goroutine: it reads datagrams until the bin's
// wall-clock deadline, emits the accumulated batch, and repeats. It
// owns the out channel and closes it on exit.
func (l *LiveSource) listen() {
	defer l.wg.Done()
	defer close(l.out)
	buf := make([]byte, maxDatagram)
	binIdx := 0
	binEnd := l.start.Add(l.bin)
	var cur []pkt.Packet
	for {
		l.conn.SetReadDeadline(binEnd)
		n, _, err := l.conn.ReadFrom(buf)
		if n > 0 {
			cur = l.decodeFrames(buf[:n], cur)
		}
		if err == nil {
			continue
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			// Bin boundary. Emit the bin (empty ones included — a silent
			// link still advances wall-clock time), then catch up if the
			// process stalled across several bins.
			cur = l.emit(cur, binIdx)
			binIdx++
			binEnd = binEnd.Add(l.bin)
			for !time.Now().Before(binEnd) {
				cur = l.emit(cur, binIdx)
				binIdx++
				binEnd = binEnd.Add(l.bin)
			}
			continue
		}
		// Closed (Close set the flag first) or a genuine socket error:
		// flush the partial bin and end the stream.
		if len(cur) > 0 {
			l.emit(cur, binIdx)
		}
		if !l.closing.Load() {
			l.mu.Lock()
			l.err = err
			l.mu.Unlock()
		}
		return
	}
}

// emit finalizes one bin and hands it to the consumer. It returns the
// packet scratch for the next bin: nil after a successful hand-off (the
// consumer owns the slice now), the same storage recycled when the bin
// was dropped because the consumer is too far behind.
func (l *LiveSource) emit(cur []pkt.Packet, binIdx int) []pkt.Packet {
	b := pkt.Batch{Start: time.Duration(binIdx) * l.bin, Bin: l.bin, Pkts: cur}
	sortBatch(&b)
	select {
	case l.out <- b:
		return nil
	default:
		l.dropBins.Add(1)
		return cur[:0]
	}
}

// decodeFrames appends every well-formed frame in one datagram to dst.
func (l *LiveSource) decodeFrames(data []byte, dst []pkt.Packet) []pkt.Packet {
	for len(data) >= 2 {
		flen := int(binary.LittleEndian.Uint16(data[0:2]))
		data = data[2:]
		if flen < frameHdrLen || flen > len(data) {
			l.badFrames.Add(1)
			return dst
		}
		rec := data[:flen]
		data = data[flen:]
		var p pkt.Packet
		p.Ts = int64(binary.LittleEndian.Uint64(rec[0:8]))
		p.SrcIP = binary.LittleEndian.Uint32(rec[8:12])
		p.DstIP = binary.LittleEndian.Uint32(rec[12:16])
		p.SrcPort = binary.LittleEndian.Uint16(rec[16:18])
		p.DstPort = binary.LittleEndian.Uint16(rec[18:20])
		p.Proto = rec[20]
		p.TCPFlags = rec[21]
		p.Size = int(binary.LittleEndian.Uint32(rec[22:26]))
		plen := int(binary.LittleEndian.Uint16(rec[26:28]))
		if plen > pkt.SnapLen || frameHdrLen+plen != flen {
			l.badFrames.Add(1)
			return dst
		}
		if plen > 0 {
			p.Payload = append([]byte(nil), rec[28:28+plen]...)
		}
		dst = append(dst, p)
	}
	if len(data) != 0 {
		l.badFrames.Add(1)
	}
	return dst
}

// NextBatch implements Source: it blocks until the next wall-clock bin
// closes (or drains a buffered one) and reports ok=false once Close has
// ended the stream and every buffered bin is consumed.
func (l *LiveSource) NextBatch() (pkt.Batch, bool) {
	b, ok := <-l.out
	return b, ok
}

// Reset implements Source. Live traffic cannot rewind; Reset is a
// no-op so the engine's run setup works unchanged.
func (l *LiveSource) Reset() {}

// TimeBin implements Source.
func (l *LiveSource) TimeBin() time.Duration { return l.bin }

// Err returns the socket error that ended the stream, nil after a
// clean Close.
func (l *LiveSource) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// BadFrames counts frames rejected by validation since start.
func (l *LiveSource) BadFrames() int64 { return l.badFrames.Load() }

// DroppedBins counts whole bins discarded because the consumer lagged
// more than the backlog.
func (l *LiveSource) DroppedBins() int64 { return l.dropBins.Load() }

// Close stops the listener: the socket closes (unblocking a pending
// read), the ingest goroutine flushes its partial bin and exits, and
// NextBatch drains whatever was buffered before reporting ok=false.
// A unixgram socket file is removed.
func (l *LiveSource) Close() error {
	if !l.closing.CompareAndSwap(false, true) {
		return nil
	}
	err := l.conn.Close()
	l.wg.Wait()
	if l.unixPath != "" {
		os.Remove(l.unixPath)
	}
	return err
}

// LiveSender forwards batches to a live listener, packing frames
// back-to-back into datagrams. It is the probe half of the ingest pair:
// cmd/lsd -feed uses it to replay a generator or trace file into a
// serving monitor, and tests use it as the reference encoder.
type LiveSender struct {
	conn net.Conn
	buf  []byte
}

// DialLive connects a sender to a live listener's network and address.
func DialLive(network, address string) (*LiveSender, error) {
	conn, err := net.Dial(network, address)
	if err != nil {
		return nil, err
	}
	return &LiveSender{conn: conn, buf: make([]byte, 0, maxDatagram)}, nil
}

// SendBatch transmits every packet of b, flushing a datagram whenever
// the next frame would overflow it.
func (s *LiveSender) SendBatch(b *pkt.Batch) error {
	for i := range b.Pkts {
		p := &b.Pkts[i]
		need := 2 + frameHdrLen + len(p.Payload)
		if len(s.buf)+need > maxDatagram {
			if err := s.flush(); err != nil {
				return err
			}
		}
		s.buf = appendFrame(s.buf, p)
	}
	return s.flush()
}

func (s *LiveSender) flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	_, err := s.conn.Write(s.buf)
	s.buf = s.buf[:0]
	return err
}

// Close flushes and closes the sender's socket.
func (s *LiveSender) Close() error {
	ferr := s.flush()
	cerr := s.conn.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// appendFrame encodes one packet as a length-prefixed frame.
func appendFrame(dst []byte, p *pkt.Packet) []byte {
	var hdr [2 + frameHdrLen]byte
	binary.LittleEndian.PutUint16(hdr[0:2], uint16(frameHdrLen+len(p.Payload)))
	binary.LittleEndian.PutUint64(hdr[2:10], uint64(p.Ts))
	binary.LittleEndian.PutUint32(hdr[10:14], p.SrcIP)
	binary.LittleEndian.PutUint32(hdr[14:18], p.DstIP)
	binary.LittleEndian.PutUint16(hdr[18:20], p.SrcPort)
	binary.LittleEndian.PutUint16(hdr[20:22], p.DstPort)
	hdr[22] = p.Proto
	hdr[23] = p.TCPFlags
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(p.Size))
	binary.LittleEndian.PutUint16(hdr[28:30], uint16(len(p.Payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, p.Payload...)
}
