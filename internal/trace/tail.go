package trace

// tail.go — tail-follow replay of a growing trace file: a Source that
// delivers batches as a writer appends them, for feeding a live monitor
// from a capture process that spools to disk. It reuses the trace file
// format and readBatch verbatim; the only new mechanics are remembering
// the offset of the last complete batch and rewinding to it when a read
// runs into the file's current end (a clean EOF at a batch boundary or
// a torn, partially-written record — both mean "wait and retry", not
// "stream over").

import (
	"bufio"
	"errors"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/pkt"
)

// DefaultTailPoll is how often a TailSource re-checks a file that had
// no complete batch ready.
const DefaultTailPoll = 50 * time.Millisecond

// TailSource follows a growing trace file. Construct with TailFile;
// stop with Close, which unblocks a NextBatch waiting for more data.
// Like every file source it is single-consumer.
type TailSource struct {
	f    *os.File
	br   *bufio.Reader
	bin  time.Duration
	off  int64 // offset of the first unconsumed batch
	poll time.Duration

	quit      chan struct{}
	closeOnce sync.Once

	err error
}

// TailFile opens path for tail-follow replay. The file's 16-byte header
// must already be written (a spooling capture writes it first); poll <= 0
// selects DefaultTailPoll.
func TailFile(path string, poll time.Duration) (*TailSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fs, err := NewFileSource(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if poll <= 0 {
		poll = DefaultTailPoll
	}
	return &TailSource{
		f:    f,
		br:   bufio.NewReaderSize(f, 1<<20),
		bin:  fs.TimeBin(),
		off:  headerSize,
		poll: poll,
		quit: make(chan struct{}),
	}, nil
}

// NextBatch implements Source: it returns the next complete batch,
// blocking (in poll-sized naps) while the writer is still appending it.
// ok=false means Close was called or the file is corrupt — Err
// distinguishes the two.
func (t *TailSource) NextBatch() (pkt.Batch, bool) {
	if t.err != nil {
		return pkt.Batch{}, false
	}
	for {
		if _, err := t.f.Seek(t.off, io.SeekStart); err != nil {
			return t.fail(err)
		}
		t.br.Reset(t.f)
		b, err := readBatch(t.br, t.bin)
		switch {
		case err == nil:
			t.off += encodedBatchSize(&b)
			return b, true
		case err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF):
			// At (or past) the file's current end: the writer has not
			// finished this batch. Wait and re-read from the same offset.
			select {
			case <-t.quit:
				return pkt.Batch{}, false
			case <-time.After(t.poll):
			}
		default:
			return t.fail(err)
		}
	}
}

func (t *TailSource) fail(err error) (pkt.Batch, bool) {
	select {
	case <-t.quit:
		// A concurrent Close raced the read; a closed-file error is the
		// expected way out, not a stream failure.
		return pkt.Batch{}, false
	default:
	}
	t.err = err
	return pkt.Batch{}, false
}

// Reset implements Source: it rewinds to the first batch, replaying
// everything written so far before following new appends again.
func (t *TailSource) Reset() {
	t.off = headerSize
	t.err = nil
}

// TimeBin implements Source.
func (t *TailSource) TimeBin() time.Duration { return t.bin }

// Err returns the read or format error that ended the stream, nil
// after a clean Close.
func (t *TailSource) Err() error { return t.err }

// Close stops the tail: a NextBatch sleeping for more data wakes and
// reports ok=false, and the file handle is released.
func (t *TailSource) Close() error {
	var err error
	t.closeOnce.Do(func() {
		close(t.quit)
		err = t.f.Close()
	})
	return err
}

// encodedBatchSize is the exact on-disk size of a batch: the 12-byte
// batch header plus, per packet, the 26-byte record header, the 2-byte
// payload length and the payload itself.
func encodedBatchSize(b *pkt.Batch) int64 {
	n := int64(12)
	for i := range b.Pkts {
		n += 28 + int64(len(b.Pkts[i].Payload))
	}
	return n
}
