package trace

import (
	"fmt"
	"time"

	"repro/internal/pkt"
)

// LinkPreset pairs a link name with a traffic profile for multi-link
// (cluster) runs.
type LinkPreset struct {
	Name   string
	Config Config
}

// AsymmetricMix returns n link profiles for the headline cluster
// scenario: link 0 is a CESCA-I-like link swamped by a spoofed on/off
// DDoS for the middle half of the run, while the remaining links carry
// calm CESCA-II-like traffic. Overload lands on exactly one link, so a
// per-link shedder must shed hard there while the others idle — the
// situation a global budget coordinator resolves by moving the idle
// links' cycles to the attacked one.
func AsymmetricMix(seed uint64, dur time.Duration, scale float64, n int) []LinkPreset {
	if n < 1 {
		panic("trace: asymmetric mix needs at least 1 link")
	}
	out := make([]LinkPreset, n)
	hot := CESCA1(seed, dur, scale)
	hot.Anomalies = []Anomaly{
		NewOnOffDDoS(dur/4, dur/2, 4*hot.PacketsPerSec, pkt.IPv4(147, 83, 1, 1)),
	}
	out[0] = LinkPreset{Name: "ddos-link", Config: hot}
	for i := 1; i < n; i++ {
		cfg := CESCA2(seed+uint64(i)*0x9e37, dur, scale)
		out[i] = LinkPreset{Name: fmt.Sprintf("calm-link%d", i), Config: cfg}
	}
	return out
}
