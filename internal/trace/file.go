package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/pkt"
)

// Binary trace file format (little endian):
//
//	magic   [8]byte  "LSTRACE1"
//	binNs   int64    batch duration in nanoseconds
//	batches:
//	  startNs int64
//	  npkts   uint32
//	  packets: ts int64, srcIP u32, dstIP u32, srcPort u16, dstPort u16,
//	           proto u8, flags u8, size u32, payloadLen u16, payload
//
// The format exists so generated workloads can be stored once and
// replayed byte-identically across schemes and machines, mirroring the
// thesis' use of packet traces "for the sake of reproducibility" (§2.3.2).

var fileMagic = [8]byte{'L', 'S', 'T', 'R', 'A', 'C', 'E', '1'}

// ErrBadMagic is returned when reading a file that is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic (not a trace file)")

// WriteAll drains src and writes every batch to w, then resets src.
func WriteAll(w io.Writer, src Source) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(src.TimeBin())); err != nil {
		return err
	}
	src.Reset()
	defer src.Reset()
	for {
		b, ok := src.NextBatch()
		if !ok {
			break
		}
		if err := writeBatch(bw, &b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeBatch(w io.Writer, b *pkt.Batch) error {
	if err := binary.Write(w, binary.LittleEndian, int64(b.Start)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(b.Pkts))); err != nil {
		return err
	}
	var hdr [26]byte
	for i := range b.Pkts {
		p := &b.Pkts[i]
		binary.LittleEndian.PutUint64(hdr[0:8], uint64(p.Ts))
		binary.LittleEndian.PutUint32(hdr[8:12], p.SrcIP)
		binary.LittleEndian.PutUint32(hdr[12:16], p.DstIP)
		binary.LittleEndian.PutUint16(hdr[16:18], p.SrcPort)
		binary.LittleEndian.PutUint16(hdr[18:20], p.DstPort)
		hdr[20] = p.Proto
		hdr[21] = p.TCPFlags
		binary.LittleEndian.PutUint32(hdr[22:26], uint32(p.Size))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if len(p.Payload) > 0xffff {
			return fmt.Errorf("trace: payload too large (%d bytes)", len(p.Payload))
		}
		var plen [2]byte
		binary.LittleEndian.PutUint16(plen[:], uint16(len(p.Payload)))
		if _, err := w.Write(plen[:]); err != nil {
			return err
		}
		if _, err := w.Write(p.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll parses a trace file into a replayable MemorySource.
func ReadAll(r io.Reader) (*MemorySource, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != fileMagic {
		return nil, ErrBadMagic
	}
	var binNs int64
	if err := binary.Read(br, binary.LittleEndian, &binNs); err != nil {
		return nil, err
	}
	var batches []pkt.Batch
	for {
		b, err := readBatch(br, time.Duration(binNs))
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		batches = append(batches, b)
	}
	return NewMemorySource(batches, time.Duration(binNs)), nil
}

func readBatch(r io.Reader, bin time.Duration) (pkt.Batch, error) {
	var startNs int64
	if err := binary.Read(r, binary.LittleEndian, &startNs); err != nil {
		return pkt.Batch{}, err // io.EOF here is the clean end of trace
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return pkt.Batch{}, unexpected(err)
	}
	b := pkt.Batch{Start: time.Duration(startNs), Bin: bin, Pkts: make([]pkt.Packet, n)}
	var hdr [26]byte
	for i := range b.Pkts {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return pkt.Batch{}, unexpected(err)
		}
		p := &b.Pkts[i]
		p.Ts = int64(binary.LittleEndian.Uint64(hdr[0:8]))
		p.SrcIP = binary.LittleEndian.Uint32(hdr[8:12])
		p.DstIP = binary.LittleEndian.Uint32(hdr[12:16])
		p.SrcPort = binary.LittleEndian.Uint16(hdr[16:18])
		p.DstPort = binary.LittleEndian.Uint16(hdr[18:20])
		p.Proto = hdr[20]
		p.TCPFlags = hdr[21]
		p.Size = int(binary.LittleEndian.Uint32(hdr[22:26]))
		var plen [2]byte
		if _, err := io.ReadFull(r, plen[:]); err != nil {
			return pkt.Batch{}, unexpected(err)
		}
		if l := binary.LittleEndian.Uint16(plen[:]); l > 0 {
			p.Payload = make([]byte, l)
			if _, err := io.ReadFull(r, p.Payload); err != nil {
				return pkt.Batch{}, unexpected(err)
			}
		}
	}
	return b, nil
}

// unexpected upgrades a mid-record EOF to ErrUnexpectedEOF so truncated
// files are distinguishable from clean ends.
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
