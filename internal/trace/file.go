package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/pkt"
)

// Binary trace file format (little endian):
//
//	magic   [8]byte  "LSTRACE1"
//	binNs   int64    batch duration in nanoseconds
//	batches:
//	  startNs int64
//	  npkts   uint32
//	  packets: ts int64, srcIP u32, dstIP u32, srcPort u16, dstPort u16,
//	           proto u8, flags u8, size u32, payloadLen u16, payload
//
// payloadLen never exceeds pkt.SnapLen: captures are snaplen-limited,
// and both writer and readers enforce the bound.
//
// The format exists so generated workloads can be stored once and
// replayed byte-identically across schemes and machines, mirroring the
// thesis' use of packet traces "for the sake of reproducibility" (§2.3.2).

var fileMagic = [8]byte{'L', 'S', 'T', 'R', 'A', 'C', 'E', '1'}

// ErrBadMagic is returned when reading a file that is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic (not a trace file)")

// ErrCorrupt is returned (wrapped, with detail) when a trace file's
// structure is implausible — e.g. a batch header claiming more packets
// than any real capture holds. Distinguishing it from ErrUnexpectedEOF
// matters operationally: a truncated file can be re-transferred, a
// corrupt one must be regenerated.
var ErrCorrupt = errors.New("trace: corrupt trace file")

// maxBatchPackets bounds the per-batch packet count a reader accepts.
// A batch is one 100 ms bin; 2^26 packets is ~670 Mpps sustained, far
// beyond any link this system models. The bound exists so a corrupt or
// malicious count field cannot demand a multi-GB allocation before the
// first packet read fails.
const maxBatchPackets = 1 << 26

// allocChunkPackets caps the packet-slice capacity allocated up front
// from an unvalidated count: the reader allocates at most this many
// packets before bytes proving the batch exists have been consumed, so
// a truncated file fails with a small allocation, not count×40 bytes.
const allocChunkPackets = 1 << 16

// WriteAll drains src and writes every batch to w, then resets src.
func WriteAll(w io.Writer, src Source) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(src.TimeBin())); err != nil {
		return err
	}
	src.Reset()
	defer src.Reset()
	for {
		b, ok := src.NextBatch()
		if !ok {
			break
		}
		if err := writeBatch(bw, &b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeBatch(w io.Writer, b *pkt.Batch) error {
	if err := binary.Write(w, binary.LittleEndian, int64(b.Start)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(b.Pkts))); err != nil {
		return err
	}
	var hdr [26]byte
	for i := range b.Pkts {
		p := &b.Pkts[i]
		binary.LittleEndian.PutUint64(hdr[0:8], uint64(p.Ts))
		binary.LittleEndian.PutUint32(hdr[8:12], p.SrcIP)
		binary.LittleEndian.PutUint32(hdr[12:16], p.DstIP)
		binary.LittleEndian.PutUint16(hdr[16:18], p.SrcPort)
		binary.LittleEndian.PutUint16(hdr[18:20], p.DstPort)
		hdr[20] = p.Proto
		hdr[21] = p.TCPFlags
		binary.LittleEndian.PutUint32(hdr[22:26], uint32(p.Size))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if len(p.Payload) > pkt.SnapLen {
			return fmt.Errorf("trace: payload exceeds snaplen (%d > %d bytes)", len(p.Payload), pkt.SnapLen)
		}
		var plen [2]byte
		binary.LittleEndian.PutUint16(plen[:], uint16(len(p.Payload)))
		if _, err := w.Write(plen[:]); err != nil {
			return err
		}
		if _, err := w.Write(p.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll parses a trace file into a replayable MemorySource.
func ReadAll(r io.Reader) (*MemorySource, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != fileMagic {
		return nil, ErrBadMagic
	}
	var binNs int64
	if err := binary.Read(br, binary.LittleEndian, &binNs); err != nil {
		return nil, err
	}
	var batches []pkt.Batch
	for {
		b, err := readBatch(br, time.Duration(binNs))
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		batches = append(batches, b)
	}
	return NewMemorySource(batches, time.Duration(binNs)), nil
}

func readBatch(r io.Reader, bin time.Duration) (pkt.Batch, error) {
	var startNs int64
	if err := binary.Read(r, binary.LittleEndian, &startNs); err != nil {
		return pkt.Batch{}, err // io.EOF here is the clean end of trace
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return pkt.Batch{}, unexpected(err)
	}
	if n > maxBatchPackets {
		return pkt.Batch{}, fmt.Errorf("%w: batch claims %d packets (max %d)", ErrCorrupt, n, maxBatchPackets)
	}
	b := pkt.Batch{Start: time.Duration(startNs), Bin: bin}
	b.Pkts = make([]pkt.Packet, 0, min(int(n), allocChunkPackets))
	var hdr [26]byte
	for i := 0; i < int(n); i++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return pkt.Batch{}, unexpected(err)
		}
		var p pkt.Packet
		p.Ts = int64(binary.LittleEndian.Uint64(hdr[0:8]))
		p.SrcIP = binary.LittleEndian.Uint32(hdr[8:12])
		p.DstIP = binary.LittleEndian.Uint32(hdr[12:16])
		p.SrcPort = binary.LittleEndian.Uint16(hdr[16:18])
		p.DstPort = binary.LittleEndian.Uint16(hdr[18:20])
		p.Proto = hdr[20]
		p.TCPFlags = hdr[21]
		p.Size = int(binary.LittleEndian.Uint32(hdr[22:26]))
		var plen [2]byte
		if _, err := io.ReadFull(r, plen[:]); err != nil {
			return pkt.Batch{}, unexpected(err)
		}
		if l := binary.LittleEndian.Uint16(plen[:]); l > 0 {
			if l > pkt.SnapLen {
				return pkt.Batch{}, fmt.Errorf("%w: payload length %d exceeds snaplen %d", ErrCorrupt, l, pkt.SnapLen)
			}
			p.Payload = make([]byte, l)
			if _, err := io.ReadFull(r, p.Payload); err != nil {
				return pkt.Batch{}, unexpected(err)
			}
		}
		b.Pkts = append(b.Pkts, p)
	}
	return b, nil
}

// unexpected upgrades a mid-record EOF to ErrUnexpectedEOF so truncated
// files are distinguishable from clean ends.
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// FileSource streams a trace file one batch at a time: only the batch
// being delivered is resident, so a file of any size replays in memory
// bounded by its largest batch — the on-disk counterpart of an online
// capture. ReadAll remains the right choice for small traces that are
// replayed many times (references, experiments); FileSource is the
// right choice for long-running Stream deployments.
//
// A FileSource is deterministic like every Source: Reset seeks back to
// the first batch, so repeated replays deliver identical packets.
// It is not safe for concurrent use; cluster shards must each open
// their own.
type FileSource struct {
	r       io.ReadSeeker
	br      *bufio.Reader
	bin     time.Duration
	dataOff int64
	err     error
	closer  io.Closer
}

// headerSize is the byte offset of the first batch: magic + binNs.
const headerSize = int64(len(fileMagic)) + 8

// NewFileSource validates the header of r and returns a streaming
// source positioned at the first batch.
func NewFileSource(r io.ReadSeeker) (*FileSource, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, unexpected(err)
	}
	if magic != fileMagic {
		return nil, ErrBadMagic
	}
	var binNs int64
	if err := binary.Read(br, binary.LittleEndian, &binNs); err != nil {
		return nil, unexpected(err)
	}
	if binNs <= 0 {
		return nil, fmt.Errorf("%w: non-positive time bin %d ns", ErrCorrupt, binNs)
	}
	return &FileSource{r: r, br: br, bin: time.Duration(binNs), dataOff: headerSize}, nil
}

// OpenFile opens path as a streaming trace source; Close releases the
// file handle.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fs, err := NewFileSource(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	fs.closer = f
	return fs, nil
}

// NextBatch implements Source. At end of file it reports ok=false; a
// read or format error also ends the stream and is retained for Err.
// The returned batch is freshly allocated and owned by the caller.
func (f *FileSource) NextBatch() (pkt.Batch, bool) {
	if f.err != nil {
		return pkt.Batch{}, false
	}
	b, err := readBatch(f.br, f.bin)
	if err == io.EOF {
		return pkt.Batch{}, false
	}
	if err != nil {
		f.err = err
		return pkt.Batch{}, false
	}
	return b, true
}

// Reset implements Source: it seeks back to the first batch. A sticky
// read error is cleared (the stream is restarted from scratch); a seek
// failure is retained and leaves the source ended.
func (f *FileSource) Reset() {
	if _, err := f.r.Seek(f.dataOff, io.SeekStart); err != nil {
		f.err = err
		return
	}
	f.br.Reset(f.r)
	f.err = nil
}

// TimeBin implements Source.
func (f *FileSource) TimeBin() time.Duration { return f.bin }

// Err returns the first read, format or seek error that ended the
// stream, or nil after a clean end of file. Because the Source
// interface's NextBatch cannot report errors, callers that accept
// untrusted files should check Err when the stream ends.
func (f *FileSource) Err() error { return f.err }

// Close releases the underlying file when the source was opened with
// OpenFile; otherwise it is a no-op.
func (f *FileSource) Close() error {
	if f.closer == nil {
		return nil
	}
	return f.closer.Close()
}
