// Package trace generates, stores and replays synthetic packet traces.
//
// The thesis evaluates on real captures (CESCA, ABILENE, CENIC, UPC —
// Table 2.3/2.4) that we cannot redistribute; this package substitutes a
// seeded synthetic generator whose traffic shares the statistical
// structure that drives query cost and feature dynamics: heavy-tailed
// flow sizes, empirical packet-size mix, Zipf server popularity,
// application port mix, bursty load modulation and optional payloads
// carrying application signatures. Anomaly injectors reproduce the
// attacks used in §3.4.3, §4.5.5 and §6.3.2. Everything is deterministic
// per seed, so "collecting a reference trace" is just replaying the same
// source.
package trace

import (
	"cmp"
	"slices"
	"time"

	"repro/internal/pkt"
)

// DefaultTimeBin is the batch duration used throughout the thesis.
const DefaultTimeBin = 100 * time.Millisecond

// Source produces a trace one batch at a time. Implementations must be
// deterministic: Reset followed by the same sequence of NextBatch calls
// yields identical packets, which is how reference (ground-truth) runs
// are obtained.
type Source interface {
	// NextBatch returns the next batch, or ok=false at end of trace.
	//
	// Ownership: the returned packet slice MAY alias storage the source
	// retains and replays (MemorySource does; samplers likewise return
	// the input slice unchanged at rate >= 1). Consumers must therefore
	// treat the batch as read-only — no mutating packets in place, no
	// appending to the slice — and copy if they need either. Everything
	// downstream of the engine honours this: the pipeline only ever
	// re-slices and reads. In exchange, implementations must not touch
	// a delivered batch's packets afterwards either (delivering a fresh
	// or immutable slice each call), so the caller may keep it across
	// NextBatch calls without copying.
	NextBatch() (b pkt.Batch, ok bool)
	// Reset rewinds the source to the beginning of the trace.
	Reset()
	// TimeBin returns the batch duration.
	TimeBin() time.Duration
}

// MemorySource replays a fixed slice of batches. It serves as the
// in-memory form of a recorded trace and as a convenient test double.
type MemorySource struct {
	Batches []pkt.Batch
	Bin     time.Duration
	next    int
}

// NewMemorySource wraps batches in a Source with the given bin length.
func NewMemorySource(batches []pkt.Batch, bin time.Duration) *MemorySource {
	return &MemorySource{Batches: batches, Bin: bin}
}

// NextBatch implements Source. The returned batch aliases the stored
// packet slice (replays would otherwise have to copy the whole trace
// every run); per the Source contract the caller must treat it as
// read-only.
func (m *MemorySource) NextBatch() (pkt.Batch, bool) {
	if m.next >= len(m.Batches) {
		return pkt.Batch{}, false
	}
	b := m.Batches[m.next]
	m.next++
	return b, true
}

// Reset implements Source.
func (m *MemorySource) Reset() { m.next = 0 }

// TimeBin implements Source.
func (m *MemorySource) TimeBin() time.Duration { return m.Bin }

// Record drains src and returns all its batches, resetting src first.
// It is the standard way to capture a reference trace for accuracy
// comparisons.
func Record(src Source) []pkt.Batch {
	src.Reset()
	var out []pkt.Batch
	for {
		b, ok := src.NextBatch()
		if !ok {
			break
		}
		out = append(out, b)
	}
	src.Reset()
	return out
}

// sortBatch orders packets by timestamp; injection appends attack
// packets out of order and queries such as high-watermark assume
// time-ordered delivery.
func sortBatch(b *pkt.Batch) {
	// Stable sort, so packets of equal timestamp keep generation order;
	// the generic form avoids sort.SliceStable's per-call boxing.
	slices.SortStableFunc(b.Pkts, func(x, y pkt.Packet) int { return cmp.Compare(x.Ts, y.Ts) })
}

// Stats summarizes a trace the way Table 2.3 reports its datasets.
type Stats struct {
	Batches  int
	Packets  int
	Bytes    int64
	Duration time.Duration
	AvgMbps  float64
	MaxMbps  float64
	MinMbps  float64
	AvgPPS   float64
}

// Measure drains src and computes summary statistics, resetting the
// source afterwards.
func Measure(src Source) Stats {
	src.Reset()
	defer src.Reset()
	var s Stats
	bin := src.TimeBin().Seconds()
	first := true
	for {
		b, ok := src.NextBatch()
		if !ok {
			break
		}
		s.Batches++
		s.Packets += b.Packets()
		bytes := b.Bytes()
		s.Bytes += int64(bytes)
		mbps := float64(bytes) * 8 / bin / 1e6
		if mbps > s.MaxMbps {
			s.MaxMbps = mbps
		}
		if first || mbps < s.MinMbps {
			s.MinMbps = mbps
		}
		first = false
	}
	s.Duration = time.Duration(s.Batches) * src.TimeBin()
	if sec := s.Duration.Seconds(); sec > 0 {
		s.AvgMbps = float64(s.Bytes) * 8 / sec / 1e6
		s.AvgPPS = float64(s.Packets) / sec
	}
	return s
}
