// Package linalg provides the small dense linear algebra kernel the
// prediction subsystem needs: a matrix type, a singular value
// decomposition and an SVD-backed least-squares solver. The thesis
// (§3.2.2) solves the OLS system with SVD precisely because it remains
// well-behaved on over- or under-determined and multicollinear systems,
// and so does this implementation.
//
// The SVD uses one-sided Jacobi rotations, which is compact, numerically
// robust and comfortably fast at the sizes the predictor produces
// (n ≈ 60 history rows by p ≈ a dozen selected features).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Reshape resizes m in place to rows×cols with all elements zero,
// reusing the backing array when its capacity suffices. It is the
// allocation-free alternative to NewMatrix for callers that solve many
// systems of varying shape with one long-lived matrix.
func (m *Matrix) Reshape(rows, cols int) {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
		clear(m.Data)
	}
	m.Rows, m.Cols = rows, cols
}

// MulVec returns m · x. It panics if len(x) != m.Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// SVDResult holds a thin SVD: A = U · diag(S) · Vᵀ with U of shape
// (Rows×Cols), S of length Cols (descending) and V of shape (Cols×Cols).
type SVDResult struct {
	U *Matrix
	S []float64
	V *Matrix
}

// Workspace holds the scratch buffers of the SVD and least-squares
// solvers so repeated solves — the MLR predictor refits on every
// prediction — allocate nothing after the first call. The zero value is
// ready to use; buffers grow to the largest problem seen and are reused
// in place. A Workspace is not safe for concurrent use, and the
// matrices returned by its svd method are owned by the workspace (valid
// until its next use).
type Workspace struct {
	g, u, v, pad Matrix
	s, rhs       []float64
}

// GrowFloats returns dst resized to n, reusing capacity when possible.
// Contents are unspecified; callers overwrite every element. It is the
// shared grow-scratch helper of the prediction path's in-place solvers.
func GrowFloats(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// SVD computes the thin singular value decomposition of a, which must
// have Rows >= Cols (the least-squares caller guarantees this by
// construction; pad with zero rows otherwise). The result owns freshly
// allocated matrices; use a Workspace for the allocation-free form.
func SVD(a *Matrix) SVDResult {
	var ws Workspace
	return ws.svd(a)
}

// svd is SVD computing into the workspace's buffers. The returned
// matrices and singular values alias the workspace and stay valid until
// its next use.
func (ws *Workspace) svd(a *Matrix) SVDResult {
	if a.Rows < a.Cols {
		panic("linalg: SVD requires rows >= cols")
	}
	m, n := a.Rows, a.Cols
	// Columns of g are rotated until mutually orthogonal.
	g := &ws.g
	g.Reshape(m, n)
	copy(g.Data, a.Data)
	v := &ws.v
	v.Reshape(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 60
	// Convergence when every column pair is orthogonal to machine
	// precision relative to the column norms.
	eps := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					gp := g.At(i, p)
					gq := g.At(i, q)
					alpha += gp * gp
					beta += gq * gq
					gamma += gp * gq
				}
				if gamma == 0 || gamma*gamma <= eps*eps*alpha*beta {
					continue
				}
				rotated = true
				// Jacobi rotation that zeroes the (p,q) column inner
				// product.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					gp := g.At(i, p)
					gq := g.At(i, q)
					g.Set(i, p, c*gp-s*gq)
					g.Set(i, q, s*gp+c*gq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Singular values are the column norms of g; U's columns are the
	// normalized columns.
	ws.s = GrowFloats(ws.s, n)
	s := ws.s
	u := &ws.u
	u.Reshape(m, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += g.At(i, j) * g.At(i, j)
		}
		norm = math.Sqrt(norm)
		s[j] = norm
		if norm > 0 {
			for i := 0; i < m; i++ {
				u.Set(i, j, g.At(i, j)/norm)
			}
		}
	}

	// Sort singular values (and matching columns) in descending order.
	for i := 0; i < n; i++ {
		maxJ := i
		for j := i + 1; j < n; j++ {
			if s[j] > s[maxJ] {
				maxJ = j
			}
		}
		if maxJ != i {
			s[i], s[maxJ] = s[maxJ], s[i]
			swapCols(u, i, maxJ)
			swapCols(v, i, maxJ)
		}
	}
	return SVDResult{U: u, S: s, V: v}
}

func swapCols(m *Matrix, a, b int) {
	for i := 0; i < m.Rows; i++ {
		va, vb := m.At(i, a), m.At(i, b)
		m.Set(i, a, vb)
		m.Set(i, b, va)
	}
}

// rcondTol is the relative tolerance under which singular values are
// treated as zero by the least-squares solver, which is what makes
// multicollinear predictor sets harmless (§3.2.2 assumption (i) becomes
// a non-issue).
const rcondTol = 1e-10

// LeastSquares returns the minimum-norm x minimizing ‖A·x − b‖₂, solved
// through the SVD pseudo-inverse. It panics when len(b) != A.Rows.
func LeastSquares(a *Matrix, b []float64) []float64 {
	var ws Workspace
	return ws.LeastSquares(nil, a, b)
}

// LeastSquares is the allocation-free form of the package-level
// LeastSquares: the solve's intermediates live in the workspace and the
// solution is written into dst (grown only when its capacity is short).
// The returned slice is the solution; it does not alias the workspace.
func (ws *Workspace) LeastSquares(dst []float64, a *Matrix, b []float64) []float64 {
	if len(b) != a.Rows {
		panic("linalg: LeastSquares dimension mismatch")
	}
	work := a
	rhs := b
	if a.Rows < a.Cols {
		// Pad with zero rows so SVD's thin-shape requirement holds; the
		// minimum-norm solution is unchanged.
		work = &ws.pad
		work.Reshape(a.Cols, a.Cols)
		copy(work.Data, a.Data)
		ws.rhs = GrowFloats(ws.rhs, a.Cols)
		rhs = ws.rhs
		clear(rhs)
		copy(rhs, b)
	}
	svd := ws.svd(work)
	n := work.Cols
	x := GrowFloats(dst, n)
	clear(x)
	if len(svd.S) == 0 || svd.S[0] == 0 {
		return x
	}
	tol := svd.S[0] * rcondTol
	for k := 0; k < n; k++ {
		if svd.S[k] <= tol {
			continue
		}
		// coefficient along v_k: (u_k · b) / s_k
		var ub float64
		for i := 0; i < work.Rows; i++ {
			ub += svd.U.At(i, k) * rhs[i]
		}
		ub /= svd.S[k]
		for j := 0; j < n; j++ {
			x[j] += ub * svd.V.At(j, k)
		}
	}
	return x
}
