package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hash"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases original")
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestSVDIdentity(t *testing.T) {
	m := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 1)
	}
	svd := SVD(m)
	for i, s := range svd.S {
		if !almostEq(s, 1, 1e-12) {
			t.Fatalf("singular value %d = %v, want 1", i, s)
		}
	}
}

func TestSVDKnownSingularValues(t *testing.T) {
	// diag(3, 2, 1) embedded in a 4x3 matrix.
	m := NewMatrix(4, 3)
	m.Set(0, 0, 3)
	m.Set(1, 1, 2)
	m.Set(2, 2, 1)
	svd := SVD(m)
	want := []float64{3, 2, 1}
	for i := range want {
		if !almostEq(svd.S[i], want[i], 1e-10) {
			t.Fatalf("S[%d] = %v, want %v", i, svd.S[i], want[i])
		}
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := hash.NewXorShift(1)
	m, n := 8, 5
	a := NewMatrix(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	svd := SVD(a)
	// Reconstruct A = U S V^T and compare elementwise.
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += svd.U.At(i, k) * svd.S[k] * svd.V.At(j, k)
			}
			if !almostEq(sum, a.At(i, j), 1e-9) {
				t.Fatalf("reconstruction (%d,%d): %v vs %v", i, j, sum, a.At(i, j))
			}
		}
	}
}

func TestSVDOrthogonality(t *testing.T) {
	rng := hash.NewXorShift(2)
	a := NewMatrix(10, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	svd := SVD(a)
	// U^T U = I and V^T V = I.
	for p := 0; p < 4; p++ {
		for q := 0; q < 4; q++ {
			var uu, vv float64
			for i := 0; i < 10; i++ {
				uu += svd.U.At(i, p) * svd.U.At(i, q)
			}
			for i := 0; i < 4; i++ {
				vv += svd.V.At(i, p) * svd.V.At(i, q)
			}
			want := 0.0
			if p == q {
				want = 1
			}
			if !almostEq(uu, want, 1e-9) {
				t.Fatalf("U^T U (%d,%d) = %v", p, q, uu)
			}
			if !almostEq(vv, want, 1e-9) {
				t.Fatalf("V^T V (%d,%d) = %v", p, q, vv)
			}
		}
	}
}

func TestSVDDescendingOrder(t *testing.T) {
	rng := hash.NewXorShift(3)
	a := NewMatrix(12, 6)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	svd := SVD(a)
	for i := 1; i < len(svd.S); i++ {
		if svd.S[i] > svd.S[i-1]+1e-12 {
			t.Fatalf("singular values not descending: %v", svd.S)
		}
	}
}

func TestSVDPanicsOnWideMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SVD(NewMatrix(2, 3))
}

func TestSVDRankDeficient(t *testing.T) {
	// Two identical columns: one singular value must be ~0.
	a := NewMatrix(5, 2)
	for i := 0; i < 5; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, float64(i+1))
	}
	svd := SVD(a)
	if svd.S[1] > 1e-10*svd.S[0] {
		t.Fatalf("rank-deficient matrix has S = %v", svd.S)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 2 + 3x sampled exactly.
	a := NewMatrix(4, 2)
	b := make([]float64, 4)
	for i := 0; i < 4; i++ {
		x := float64(i)
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2 + 3*x
	}
	coef := LeastSquares(a, b)
	if !almostEq(coef[0], 2, 1e-9) || !almostEq(coef[1], 3, 1e-9) {
		t.Fatalf("coef = %v, want [2 3]", coef)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy line: the residual of the LS fit must not exceed the
	// residual of the true generating coefficients.
	rng := hash.NewXorShift(4)
	n := 50
	a := NewMatrix(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i)
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 5 + 0.5*x + 0.1*rng.NormFloat64()
	}
	coef := LeastSquares(a, b)
	ssFit := residual(a, coef, b)
	ssTrue := residual(a, []float64{5, 0.5}, b)
	if ssFit > ssTrue+1e-9 {
		t.Fatalf("LS residual %v exceeds true-coefficient residual %v", ssFit, ssTrue)
	}
	if math.Abs(coef[1]-0.5) > 0.01 {
		t.Fatalf("slope = %v, want ~0.5", coef[1])
	}
}

func residual(a *Matrix, x, b []float64) float64 {
	pred := a.MulVec(x)
	var ss float64
	for i := range b {
		d := pred[i] - b[i]
		ss += d * d
	}
	return ss
}

func TestLeastSquaresMulticollinear(t *testing.T) {
	// Duplicate predictor columns: SVD pseudo-inverse must return a
	// finite solution that still fits the data.
	n := 20
	a := NewMatrix(n, 3)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i)
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		a.Set(i, 2, x) // exact duplicate of column 1
		b[i] = 1 + 4*x
	}
	coef := LeastSquares(a, b)
	for _, c := range coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("non-finite coefficient: %v", coef)
		}
	}
	if ss := residual(a, coef, b); ss > 1e-9 {
		t.Fatalf("multicollinear fit residual = %v", ss)
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	// More unknowns than equations: minimum-norm solution must satisfy
	// the equations.
	a := NewMatrix(2, 4)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 2, 1)
	a.Set(1, 3, 1)
	b := []float64{5, 3}
	x := LeastSquares(a, b)
	got := a.MulVec(x)
	if !almostEq(got[0], 5, 1e-9) || !almostEq(got[1], 3, 1e-9) {
		t.Fatalf("underdetermined solve misses: %v", got)
	}
}

func TestLeastSquaresZeroMatrix(t *testing.T) {
	a := NewMatrix(3, 2)
	x := LeastSquares(a, []float64{1, 2, 3})
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("zero matrix solution = %v, want zeros", x)
	}
}

func TestLeastSquaresPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LeastSquares(NewMatrix(3, 2), []float64{1, 2})
}

func TestSVDPropertySingularValuesNonNegative(t *testing.T) {
	rng := hash.NewXorShift(7)
	f := func(seed uint16) bool {
		m := 3 + int(seed%8)
		n := 1 + int(seed%uint16(m))
		if n > m {
			n = m
		}
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64() * 100
		}
		svd := SVD(a)
		for _, s := range svd.S {
			if s < 0 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLeastSquares60x12(b *testing.B) {
	rng := hash.NewXorShift(1)
	a := NewMatrix(60, 12)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	y := make([]float64, 60)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LeastSquares(a, y)
	}
}
