package experiments

import (
	"time"

	"repro/internal/pkt"
	"repro/internal/queries"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/pkg/loadshed"
)

func init() {
	register("fig4.1", "CDF of CPU usage per batch (predictive / original / reactive)", fig41)
	register("fig4.2", "Link load, uncontrolled drops and unsampled packets per scheme", fig42)
	register("fig4.3", "Average accuracy error in the query answers per scheme", fig43)
	register("fig4.4", "CPU usage after load shedding (stacked) and predicted load", fig44)
	register("fig4.5-6", "CPU usage and errors with/without shedding under a SYN flood", fig456)
	register("tab4.1", "Breakdown of accuracy error per query and scheme", tab41)
}

// ch4Setup bundles the shared scenario of the Chapter 4 evaluation: a
// busy CESCA-style trace whose query demand is about twice the system
// capacity, with a modest capture buffer.
type ch4Setup struct {
	cfg      Config
	dur      time.Duration
	capacity float64
	ref      *loadshed.RunResult
}

func newCh4Setup(cfg Config) *ch4Setup {
	dur := cfg.dur(30 * time.Second)
	s := &ch4Setup{cfg: cfg, dur: dur}
	s.capacity = loadshed.CapacityForOverload(s.src(), s.mkQs(), cfg.Seed+90, 2)
	s.ref = loadshed.Reference(s.src(), s.mkQs(), cfg.Seed+90)
	return s
}

func (s *ch4Setup) src() trace.Source {
	pps := trace.CESCA2(s.cfg.Seed, s.dur, s.cfg.Scale).PacketsPerSec
	return srcCESCA2(s.cfg, s.dur,
		trace.NewOnOffDDoS(s.dur/4, s.dur/2, 4*pps, pkt.IPv4(147, 83, 1, 1)))
}

func (s *ch4Setup) mkQs() []queries.Query {
	return queries.StandardSet(queries.Config{Seed: s.cfg.Seed})
}

func (s *ch4Setup) run(scheme loadshed.Scheme) *loadshed.RunResult {
	return loadshed.New(loadshed.Config{
		Scheme:     scheme,
		Capacity:   s.capacity,
		Seed:       s.cfg.Seed + 91,
		BufferBins: 2, // the thesis' 200 ms buffer emulation
	}, s.mkQs()).Run(s.src())
}

var ch4Schemes = []loadshed.Scheme{loadshed.Predictive, loadshed.Original, loadshed.Reactive}

func fig41(cfg Config) (*Result, error) {
	s := newCh4Setup(cfg)
	fig := Figure{
		ID: "fig4.1", Title: "CDF of per-batch CPU usage",
		XLabel: "cycles/batch", YLabel: "F(cpu usage)",
	}
	notes := []string{fmtF(s.capacity, 0) + " cycles available per batch"}
	for _, sch := range ch4Schemes {
		res := s.run(sch)
		pts := stats.CDF(res.UsedPerBin())
		ser := Series{Name: sch.String()}
		step := 1
		if len(pts) > 200 {
			step = len(pts) / 200
		}
		for i := 0; i < len(pts); i += step {
			ser.X = append(ser.X, pts[i].X)
			ser.Y = append(ser.Y, pts[i].F)
		}
		fig.Series = append(fig.Series, ser)
		over := stats.CDFAt(res.UsedPerBin(), s.capacity)
		notes = append(notes, sch.String()+": P(used > capacity) = "+fmtPct(1-over))
	}
	return &Result{Figures: []Figure{fig}, Notes: notes}, nil
}

func fig42(cfg Config) (*Result, error) {
	s := newCh4Setup(cfg)
	var figs []Figure
	notes := []string{}
	for _, sch := range ch4Schemes {
		res := s.run(sch)
		total := Series{Name: "total packets"}
		drops := Series{Name: "dag drops"}
		unsampled := Series{Name: "unsampled"}
		// Aggregate to 1 s buckets as the figure does.
		for i := 0; i < len(res.Bins); i += 10 {
			var tp, dp, up float64
			for j := i; j < i+10 && j < len(res.Bins); j++ {
				b := res.Bins[j]
				tp += float64(b.WirePkts)
				dp += float64(b.DropPkts)
				up += (1 - b.GlobalRate) * float64(b.AdmitPkts)
			}
			x := float64(i) / 10
			total.X, total.Y = append(total.X, x), append(total.Y, tp)
			drops.X, drops.Y = append(drops.X, x), append(drops.Y, dp)
			unsampled.X, unsampled.Y = append(unsampled.X, x), append(unsampled.Y, up)
		}
		figs = append(figs, Figure{
			ID: "fig4.2-" + sch.String(), Title: "load and losses (" + sch.String() + ")",
			XLabel: "time (s)", YLabel: "packets/s",
			Series: []Series{total, drops, unsampled},
		})
		notes = append(notes, sch.String()+": total drops "+
			fmtPct(float64(res.TotalDrops())/float64(res.TotalWirePkts())))
	}
	return &Result{Figures: figs, Notes: notes}, nil
}

func fig43(cfg Config) (*Result, error) {
	s := newCh4Setup(cfg)
	t := Table{
		ID: "fig4.3", Title: "average error across metric queries",
		Columns: []string{"scheme", "avg error"},
	}
	metricQueries := []string{"application", "counter", "flows", "high-watermark", "top-k"}
	for _, sch := range ch4Schemes {
		res := s.run(sch)
		errs := loadshed.MeanErrors(s.mkQs(), res, s.ref)
		var avg float64
		for _, q := range metricQueries {
			avg += errs[q]
		}
		t.Rows = append(t.Rows, []string{sch.String(), fmtPct(avg / float64(len(metricQueries)))})
	}
	return &Result{Tables: []Table{t},
		Notes: []string{"paper shape: predictive < 2%, original and reactive far worse"}}, nil
}

func fig44(cfg Config) (*Result, error) {
	s := newCh4Setup(cfg)
	res := s.run(loadshed.Predictive)
	como := Series{Name: "como+prediction"}
	shed := Series{Name: "+load shedding"}
	query := Series{Name: "+queries"}
	predicted := Series{Name: "predicted (unshed)"}
	capLine := Series{Name: "capacity"}
	for i, b := range res.Bins {
		x := float64(i) / 10
		como.X, como.Y = append(como.X, x), append(como.Y, b.Overhead)
		shed.X, shed.Y = append(shed.X, x), append(shed.Y, b.Overhead+b.Shed)
		query.X, query.Y = append(query.X, x), append(query.Y, b.Overhead+b.Shed+b.Used)
		predicted.X, predicted.Y = append(predicted.X, x), append(predicted.Y, b.Predicted)
		capLine.X, capLine.Y = append(capLine.X, x), append(capLine.Y, s.capacity)
	}
	return &Result{Figures: []Figure{{
		ID: "fig4.4", Title: "stacked CPU usage after shedding vs predicted demand",
		XLabel: "time (s)", YLabel: "cycles/bin",
		Series: []Series{como, shed, query, predicted, capLine},
	}}}, nil
}

func fig456(cfg Config) (*Result, error) {
	// Single flows query; a SYN flood doubles its load for a third of
	// the run; capacity fixed so the flood overloads the loadshed.
	dur := cfg.dur(30 * time.Second)
	pps := trace.CESCA1(cfg.Seed, dur, cfg.Scale).PacketsPerSec
	mkSrc := func() trace.Source {
		return srcCESCA1(cfg, dur, trace.NewSYNFlood(dur/3, dur/3, 3*pps, pkt.IPv4(147, 83, 1, 1), 80))
	}
	mkFlow := func() []queries.Query { return []queries.Query{queries.NewFlows(queries.Config{Seed: cfg.Seed})} }
	mkPkt := func() []queries.Query {
		return []queries.Query{queries.WithMethod(queries.NewFlows(queries.Config{Seed: cfg.Seed}), sampling.Packet)}
	}

	// Capacity: overhead (reserved at flood packet rates — capture and
	// feature extraction cannot be shed) plus 1.3x the normal-traffic
	// query demand, so only the flood overloads the query budget. The
	// thesis experiment set the availability threshold manually in the
	// same spirit (§4.5.5).
	ovh, normal := loadshed.MeasureLoad(srcCESCA1(cfg, dur), mkFlow(), cfg.Seed+92)
	capacity := 4*ovh + normal*1.3
	ref := loadshed.Reference(mkSrc(), mkFlow(), cfg.Seed+92)

	runOne := func(scheme loadshed.Scheme, mk func() []queries.Query) (*loadshed.RunResult, []float64) {
		res := loadshed.New(loadshed.Config{
			Scheme: scheme, Capacity: capacity, Seed: cfg.Seed + 93, BufferBins: 2,
		}, mk()).Run(mkSrc())
		errs := loadshed.Errors(mkFlow(), res, ref)["flows"]
		return res, errs
	}
	shedFlow, errFlow := runOne(loadshed.Predictive, mkFlow)
	_, errPkt := runOne(loadshed.Predictive, mkPkt)
	noShed, errNone := runOne(loadshed.Original, mkFlow)

	cpuShed := Series{Name: "load shedding"}
	cpuNone := Series{Name: "no load shedding"}
	capLine := Series{Name: "cpu threshold"}
	for i := range shedFlow.Bins {
		x := float64(i) / 10
		cpuShed.X, cpuShed.Y = append(cpuShed.X, x), append(cpuShed.Y, shedFlow.Bins[i].Used)
		cpuNone.X, cpuNone.Y = append(cpuNone.X, x), append(cpuNone.Y, noShed.Bins[i].Used)
		capLine.X, capLine.Y = append(capLine.X, x), append(capLine.Y, capacity)
	}
	errSeries := func(name string, es []float64) Series {
		s := Series{Name: name}
		for i, e := range es {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, e)
		}
		return s
	}
	return &Result{Figures: []Figure{
		{
			ID: "fig4.5a", Title: "CPU usage with and without load shedding (SYN flood)",
			XLabel: "time (s)", YLabel: "cycles/bin",
			Series: []Series{cpuShed, cpuNone, capLine},
		},
		{
			ID: "fig4.5b", Title: "flows-query error with and without load shedding",
			XLabel: "interval", YLabel: "relative error",
			Series: []Series{
				errSeries("flow sampling", errFlow),
				errSeries("packet sampling", errPkt),
				errSeries("no load shedding", errNone),
			},
		},
	}, Notes: []string{
		"mean error — flow sampling: " + fmtPct(stats.Mean(errFlow)) +
			", packet sampling: " + fmtPct(stats.Mean(errPkt)) +
			", no shedding: " + fmtPct(stats.Mean(errNone)),
		"paper shape: flow < packet << none",
	}}, nil
}

func tab41(cfg Config) (*Result, error) {
	s := newCh4Setup(cfg)
	t := Table{
		ID: "tab4.1", Title: "accuracy error per query and scheme (mean ± stdev)",
		Columns: []string{"query", "predictive", "original", "reactive"},
	}
	perScheme := map[string]map[string][]float64{}
	for _, sch := range ch4Schemes {
		res := s.run(sch)
		perScheme[sch.String()] = loadshed.Errors(s.mkQs(), res, s.ref)
	}
	for _, q := range []string{"application", "counter", "flows", "high-watermark", "top-k"} {
		row := []string{q}
		for _, sch := range ch4Schemes {
			es := perScheme[sch.String()][q]
			row = append(row, fmtPct(stats.Mean(es))+" ±"+fmtPct(stats.Stdev(es)))
		}
		t.Rows = append(t.Rows, row)
	}
	return &Result{Tables: []Table{t},
		Notes: []string{"trace and pattern-search omitted: their error is 1 − processed fraction by definition (§2.2.1)"}}, nil
}
