package experiments

import (
	"time"

	"repro/internal/pkt"
	"repro/internal/predict"
	"repro/internal/queries"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("fig2.2", "Average cost per second of the CoMo queries (CESCA-II)", fig22)
	register("fig3.1", "CPU usage of an unknown query under an anomaly vs packets/bytes/flows", fig31)
	register("fig3.3", "Scatter of CPU usage vs packets, bucketed by new 5-tuples (flows query)", fig33)
	register("fig3.4", "SLR vs MLR predictions over time (flows query)", fig34)
	register("fig3.5", "Prediction error vs cost as a function of history and FCBF threshold", fig35)
	register("fig3.6", "Prediction error by query vs history and FCBF threshold", fig36)
	register("fig3.7", "Prediction error over time (CESCA-I and CESCA-II)", fig37)
	register("fig3.8", "Prediction error over time (ABILENE and CENIC)", fig38)
	register("fig3.9", "EWMA vs SLR predictions (counter query)", fig39)
	register("fig3.10", "EWMA prediction error vs weight alpha", fig310)
	register("fig3.11", "EWMA and SLR prediction error over time (CESCA-II)", fig311)
	register("fig3.12", "MLR+FCBF maximum and 95th-percentile error over time (CESCA-II)", fig312)
	register("fig3.13-15", "EWMA / SLR / MLR predictions under a spoofed on/off DDoS (flows query)", fig31315)
	register("tab3.2", "Prediction error and selected features by query across traces", tab32)
	register("tab3.3", "EWMA, SLR and MLR+FCBF error statistics per query (CESCA-II)", tab33)
	register("tab3.4", "Prediction overhead breakdown", tab34)
}

// warmupBins excluded from error statistics: one history window.
const warmupBins = predict.DefaultHistory

func fig22(cfg Config) (*Result, error) {
	dur := cfg.dur(10 * time.Second)
	src := srcCESCA2(cfg, dur)
	qs := queries.FullSet(queries.Config{Seed: cfg.Seed})
	model := queries.DefaultCostModel()
	cost := map[string]float64{}
	src.Reset()
	for {
		b, ok := src.NextBatch()
		if !ok {
			break
		}
		for _, q := range qs {
			cost[q.Name()] += model.Cycles(q.Process(&b, 1))
		}
	}
	sec := dur.Seconds()
	t := Table{
		ID: "fig2.2", Title: "average cost per second (cycles/s)",
		Columns: []string{"query", "cycles/s"},
	}
	fig := Figure{ID: "fig2.2", Title: "per-query cost", XLabel: "query index", YLabel: "cycles/s"}
	s := Series{Name: "cost"}
	for i, name := range sortedKeys(cost) {
		t.Rows = append(t.Rows, []string{name, fmtF(cost[name]/sec, 0)})
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, cost[name]/sec)
	}
	fig.Series = []Series{s}
	return &Result{Tables: []Table{t}, Figures: []Figure{fig}}, nil
}

func fig31(cfg Config) (*Result, error) {
	dur := cfg.dur(20 * time.Second)
	flood := trace.NewSYNFlood(dur/3, dur/3, 4*trace.CESCA1(cfg.Seed, dur, cfg.Scale).PacketsPerSec,
		pkt.IPv4(147, 83, 1, 1), 80)
	src := srcCESCA1(cfg, dur, flood)
	q := queries.NewFlows(queries.Config{Seed: cfg.Seed})
	model := queries.DefaultCostModel()

	var cpu, pkts, bytes, flows Series
	cpu.Name, pkts.Name, bytes.Name, flows.Name = "cpu-cycles", "packets", "bytes", "5-tuple flows"
	bin := 0
	src.Reset()
	for {
		b, ok := src.NextBatch()
		if !ok {
			break
		}
		if bin%10 == 0 {
			q.Flush()
		}
		exact := map[pkt.FlowKey]bool{}
		for i := range b.Pkts {
			exact[b.Pkts[i].FlowKey()] = true
		}
		x := float64(bin) / 10
		cpu.X, cpu.Y = append(cpu.X, x), append(cpu.Y, model.Cycles(q.Process(&b, 1)))
		pkts.X, pkts.Y = append(pkts.X, x), append(pkts.Y, float64(b.Packets()))
		bytes.X, bytes.Y = append(bytes.X, x), append(bytes.Y, float64(b.Bytes()))
		flows.X, flows.Y = append(flows.X, x), append(flows.Y, float64(len(exact)))
		bin++
	}
	return &Result{
		Figures: []Figure{{
			ID: "fig3.1", Title: "unknown-query CPU vs candidate features",
			XLabel: "time (s)", YLabel: "per-batch value",
			Series: []Series{cpu, pkts, bytes, flows},
		}},
		Notes: []string{"the flows series tracks the CPU series through the anomaly; packets and bytes do not"},
	}, nil
}

func fig33(cfg Config) (*Result, error) {
	dur := cfg.dur(30 * time.Second)
	src := srcCESCA2(cfg, dur)
	q := queries.NewFlows(queries.Config{Seed: cfg.Seed})
	model := queries.DefaultCostModel()
	type obs struct{ pkts, cost, newFlows float64 }
	var all []obs
	seen := map[pkt.FlowKey]bool{}
	bin := 0
	src.Reset()
	for {
		b, ok := src.NextBatch()
		if !ok {
			break
		}
		if bin%10 == 0 {
			q.Flush()
			seen = map[pkt.FlowKey]bool{}
		}
		newFlows := 0
		for i := range b.Pkts {
			k := b.Pkts[i].FlowKey()
			if !seen[k] {
				seen[k] = true
				newFlows++
			}
		}
		all = append(all, obs{
			pkts:     float64(b.Packets()),
			cost:     model.Cycles(q.Process(&b, 1)),
			newFlows: float64(newFlows),
		})
		bin++
	}
	// Bucket by new-flow count like the figure's legend.
	var thresholds []float64
	{
		var nf []float64
		for _, o := range all {
			nf = append(nf, o.newFlows)
		}
		thresholds = []float64{stats.Percentile(nf, 25), stats.Percentile(nf, 50), stats.Percentile(nf, 75)}
	}
	buckets := make([]Series, 4)
	names := []string{"new5t<p25", "p25..p50", "p50..p75", ">=p75"}
	for i := range buckets {
		buckets[i].Name = names[i]
	}
	for _, o := range all {
		bi := 3
		switch {
		case o.newFlows < thresholds[0]:
			bi = 0
		case o.newFlows < thresholds[1]:
			bi = 1
		case o.newFlows < thresholds[2]:
			bi = 2
		}
		buckets[bi].X = append(buckets[bi].X, o.pkts)
		buckets[bi].Y = append(buckets[bi].Y, o.cost)
	}
	return &Result{Figures: []Figure{{
		ID: "fig3.3", Title: "CPU vs packets per batch, stratified by new 5-tuples",
		XLabel: "packets/batch", YLabel: "cpu cycles",
		Series: buckets,
	}}}, nil
}

func fig34(cfg Config) (*Result, error) {
	dur := cfg.dur(20 * time.Second)
	qs := []queries.Query{queries.NewFlows(queries.Config{Seed: cfg.Seed})}
	mlr := runPrediction(srcCESCA2(cfg, dur), qs, mkMLR(predict.DefaultHistory, predict.DefaultThreshold), warmupBins)
	qs2 := []queries.Query{queries.NewFlows(queries.Config{Seed: cfg.Seed})}
	slr := runPrediction(srcCESCA2(cfg, dur), qs2, mkSLR(), warmupBins)

	window := 50 // 5 s, like the figure
	start := warmupBins
	mk := func(name string, ys []float64) Series {
		s := Series{Name: name}
		for i := start; i < start+window && i < len(ys); i++ {
			s.X = append(s.X, float64(i)/10)
			s.Y = append(s.Y, ys[i])
		}
		return s
	}
	return &Result{Figures: []Figure{
		{
			ID: "fig3.4a", Title: "predictions over time (flows query)",
			XLabel: "time (s)", YLabel: "cpu cycles",
			Series: []Series{mk("actual", mlr.Actual[0]), mk("mlr", mlr.Pred[0]), mk("slr", slr.Pred[0])},
		},
		{
			ID: "fig3.4b", Title: "relative error over time",
			XLabel: "time (s)", YLabel: "relative error",
			Series: []Series{
				mkErrSeries("mlr", mlr.Pred[0], mlr.Actual[0], start, window),
				mkErrSeries("slr", slr.Pred[0], slr.Actual[0], start, window),
			},
		},
	}}, nil
}

func mkErrSeries(name string, pred, actual []float64, start, window int) Series {
	s := Series{Name: name}
	for i := start; i < start+window && i < len(pred); i++ {
		s.X = append(s.X, float64(i)/10)
		s.Y = append(s.Y, stats.RelErr(pred[i], actual[i]))
	}
	return s
}

func fig35(cfg Config) (*Result, error) {
	dur := cfg.dur(20 * time.Second)
	histories := []int{10, 20, 40, 60, 100, 200}
	thresholds := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9}
	if cfg.Quick {
		histories = []int{10, 60, 200}
		thresholds = []float64{0, 0.6, 0.9}
	}
	mkQs := func() []queries.Query { return queries.StandardSet(queries.Config{Seed: cfg.Seed}) }

	var hist Series
	histCost := Series{Name: "cost(history)"}
	hist.Name = "error(history)"
	for _, n := range histories {
		r := runPrediction(srcCESCA2(cfg, dur), mkQs(), mkMLR(n, predict.DefaultThreshold), n+10)
		hist.X = append(hist.X, float64(n)/10) // seconds of history
		hist.Y = append(hist.Y, r.meanErr())
		histCost.X = append(histCost.X, float64(n)/10)
		histCost.Y = append(histCost.Y, (r.FCBFCycles+r.MLRCycles)/float64(r.Bins))
	}
	var thr Series
	thrCost := Series{Name: "cost(threshold)"}
	thr.Name = "error(threshold)"
	for _, th := range thresholds {
		r := runPrediction(srcCESCA2(cfg, dur), mkQs(), mkMLR(predict.DefaultHistory, th), warmupBins)
		thr.X = append(thr.X, th)
		thr.Y = append(thr.Y, r.meanErr())
		thrCost.X = append(thrCost.X, th)
		thrCost.Y = append(thrCost.Y, (r.FCBFCycles+r.MLRCycles)/float64(r.Bins))
	}
	return &Result{Figures: []Figure{
		{ID: "fig3.5a", Title: "error and cost vs MLR history", XLabel: "history (s)", YLabel: "error / cycles-per-bin", Series: []Series{hist, histCost}},
		{ID: "fig3.5b", Title: "error and cost vs FCBF threshold", XLabel: "threshold", YLabel: "error / cycles-per-bin", Series: []Series{thr, thrCost}},
	}}, nil
}

func fig36(cfg Config) (*Result, error) {
	dur := cfg.dur(20 * time.Second)
	histories := []int{10, 60, 200}
	thresholds := []float64{0, 0.6, 0.9}
	mkQs := func() []queries.Query { return queries.StandardSet(queries.Config{Seed: cfg.Seed}) }

	var histSeries, thrSeries []Series
	perQuery := map[string]*Series{}
	for _, n := range histories {
		r := runPrediction(srcCESCA2(cfg, dur), mkQs(), mkMLR(n, predict.DefaultThreshold), n+10)
		for qi, name := range r.Queries {
			s, ok := perQuery[name]
			if !ok {
				s = &Series{Name: name}
				perQuery[name] = s
			}
			s.X = append(s.X, float64(n)/10)
			s.Y = append(s.Y, stats.Mean(r.Err[qi]))
		}
	}
	for _, name := range sortedKeysSeries(perQuery) {
		histSeries = append(histSeries, *perQuery[name])
	}
	perQuery = map[string]*Series{}
	for _, th := range thresholds {
		r := runPrediction(srcCESCA2(cfg, dur), mkQs(), mkMLR(predict.DefaultHistory, th), warmupBins)
		for qi, name := range r.Queries {
			s, ok := perQuery[name]
			if !ok {
				s = &Series{Name: name}
				perQuery[name] = s
			}
			s.X = append(s.X, th)
			s.Y = append(s.Y, stats.Mean(r.Err[qi]))
		}
	}
	for _, name := range sortedKeysSeries(perQuery) {
		thrSeries = append(thrSeries, *perQuery[name])
	}
	return &Result{Figures: []Figure{
		{ID: "fig3.6a", Title: "per-query error vs history", XLabel: "history (s)", YLabel: "relative error", Series: histSeries},
		{ID: "fig3.6b", Title: "per-query error vs FCBF threshold", XLabel: "threshold", YLabel: "relative error", Series: thrSeries},
	}}, nil
}

func sortedKeysSeries(m map[string]*Series) []string {
	tmp := map[string]float64{}
	for k := range m {
		tmp[k] = 0
	}
	return sortedKeys(tmp)
}

func errOverTime(cfg Config, src trace.Source) Figure {
	qs := queries.StandardSet(queries.Config{Seed: cfg.Seed})
	r := runPrediction(src, qs, mkMLR(predict.DefaultHistory, predict.DefaultThreshold), warmupBins)
	xs, avg, max := r.avgErrPerBin()
	return Figure{
		XLabel: "time (s)", YLabel: "relative error",
		Series: []Series{{Name: "average", X: xs, Y: avg}, {Name: "max", X: xs, Y: max}},
	}
}

func fig37(cfg Config) (*Result, error) {
	dur := cfg.dur(30 * time.Second)
	f1 := errOverTime(cfg, srcCESCA1(cfg, dur))
	f1.ID, f1.Title = "fig3.7a", "prediction error over time (CESCA-I)"
	f2 := errOverTime(cfg, srcCESCA2(cfg, dur))
	f2.ID, f2.Title = "fig3.7b", "prediction error over time (CESCA-II)"
	n1 := stats.Mean(f1.Series[0].Y)
	n2 := stats.Mean(f2.Series[0].Y)
	return &Result{
		Figures: []Figure{f1, f2},
		Notes: []string{
			"mean error CESCA-I: " + fmtPct(n1) + " (paper ~0.65%)",
			"mean error CESCA-II: " + fmtPct(n2) + " (paper ~1.2%)",
		},
	}, nil
}

func fig38(cfg Config) (*Result, error) {
	dur := cfg.dur(30 * time.Second)
	f1 := errOverTime(cfg, srcAbilene(cfg, dur))
	f1.ID, f1.Title = "fig3.8a", "prediction error over time (ABILENE)"
	f2 := errOverTime(cfg, srcCENIC(cfg, dur))
	f2.ID, f2.Title = "fig3.8b", "prediction error over time (CENIC)"
	return &Result{Figures: []Figure{f1, f2}}, nil
}

func fig39(cfg Config) (*Result, error) {
	dur := cfg.dur(10 * time.Second)
	mkQ := func() []queries.Query { return []queries.Query{queries.NewCounter(queries.Config{Seed: cfg.Seed})} }
	ewma := runPrediction(srcCESCA2(cfg, dur), mkQ(), mkEWMA(predict.DefaultEWMAAlpha), 10)
	slr := runPrediction(srcCESCA2(cfg, dur), mkQ(), mkSLR(), 10)
	window, start := 50, 10
	mk := func(name string, ys []float64) Series {
		s := Series{Name: name}
		for i := start; i < start+window && i < len(ys); i++ {
			s.X = append(s.X, float64(i)/10)
			s.Y = append(s.Y, ys[i])
		}
		return s
	}
	return &Result{Figures: []Figure{{
		ID: "fig3.9", Title: "EWMA vs SLR predictions (counter)",
		XLabel: "time (s)", YLabel: "cpu cycles",
		Series: []Series{mk("actual", slr.Actual[0]), mk("slr", slr.Pred[0]), mk("ewma", ewma.Pred[0])},
	}}}, nil
}

func fig310(cfg Config) (*Result, error) {
	dur := cfg.dur(20 * time.Second)
	s := Series{Name: "ewma error"}
	for _, alpha := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		r := runPrediction(srcCESCA2(cfg, dur), queries.StandardSet(queries.Config{Seed: cfg.Seed}), mkEWMA(alpha), 10)
		s.X = append(s.X, alpha)
		s.Y = append(s.Y, r.meanErr())
	}
	return &Result{Figures: []Figure{{
		ID: "fig3.10", Title: "EWMA error vs weight", XLabel: "alpha", YLabel: "relative error",
		Series: []Series{s},
	}}}, nil
}

func fig311(cfg Config) (*Result, error) {
	dur := cfg.dur(30 * time.Second)
	mkQs := func() []queries.Query { return queries.StandardSet(queries.Config{Seed: cfg.Seed}) }
	ew := runPrediction(srcCESCA2(cfg, dur), mkQs(), mkEWMA(predict.DefaultEWMAAlpha), 10)
	sl := runPrediction(srcCESCA2(cfg, dur), mkQs(), mkSLR(), 10)
	xs1, avg1, _ := ew.avgErrPerBin()
	xs2, avg2, _ := sl.avgErrPerBin()
	return &Result{Figures: []Figure{{
		ID: "fig3.11", Title: "EWMA and SLR error over time (CESCA-II)",
		XLabel: "time (s)", YLabel: "average relative error",
		Series: []Series{{Name: "ewma", X: xs1, Y: avg1}, {Name: "slr", X: xs2, Y: avg2}},
	}}}, nil
}

func fig312(cfg Config) (*Result, error) {
	dur := cfg.dur(30 * time.Second)
	r := runPrediction(srcCESCA2(cfg, dur), queries.StandardSet(queries.Config{Seed: cfg.Seed}),
		mkMLR(predict.DefaultHistory, predict.DefaultThreshold), warmupBins)
	xs, _, _ := r.avgErrPerBin()
	// Per-bin max and 95th percentile across queries, then a rolling max
	// over 10 s windows as the figure does.
	n := len(xs)
	maxS := Series{Name: "max (10s windows)"}
	p95S := Series{Name: "95th percentile"}
	var window []float64
	for bin := 0; bin < n; bin++ {
		var binVals []float64
		for q := range r.Err {
			binVals = append(binVals, r.Err[q][bin])
		}
		window = append(window, stats.Max(binVals))
		p95S.X = append(p95S.X, xs[bin])
		p95S.Y = append(p95S.Y, stats.Percentile(binVals, 95))
		if len(window) == 100 || bin == n-1 {
			maxS.X = append(maxS.X, xs[bin])
			maxS.Y = append(maxS.Y, stats.Max(window))
			window = window[:0]
		}
	}
	return &Result{Figures: []Figure{{
		ID: "fig3.12", Title: "MLR+FCBF max and 95th-percentile error",
		XLabel: "time (s)", YLabel: "relative error",
		Series: []Series{maxS, p95S},
	}}}, nil
}

func fig31315(cfg Config) (*Result, error) {
	dur := cfg.dur(30 * time.Second)
	target := pkt.IPv4(147, 83, 1, 1)
	pps := trace.CESCA2(cfg.Seed, dur, cfg.Scale).PacketsPerSec
	mkSrc := func() trace.Source {
		return srcCESCA2(cfg, dur, trace.NewOnOffDDoS(dur/3, dur/3, 3*pps, target))
	}
	mkQ := func() []queries.Query { return []queries.Query{queries.NewFlows(queries.Config{Seed: cfg.Seed})} }

	var figs []Figure
	notes := []string{}
	for _, m := range []struct {
		id, name string
		mk       predictorMaker
	}{
		{"fig3.13", "ewma", mkEWMA(predict.DefaultEWMAAlpha)},
		{"fig3.14", "slr", mkSLR()},
		{"fig3.15", "mlr+fcbf", mkMLR(predict.DefaultHistory, predict.DefaultThreshold)},
	} {
		r := runPrediction(mkSrc(), mkQ(), m.mk, warmupBins)
		actual := Series{Name: "actual"}
		predS := Series{Name: "predicted"}
		errS := Series{Name: "error"}
		for i := warmupBins; i < len(r.Actual[0]); i++ {
			x := float64(i) / 10
			actual.X, actual.Y = append(actual.X, x), append(actual.Y, r.Actual[0][i])
			predS.X, predS.Y = append(predS.X, x), append(predS.Y, r.Pred[0][i])
			errS.X, errS.Y = append(errS.X, x), append(errS.Y, stats.RelErr(r.Pred[0][i], r.Actual[0][i]))
		}
		figs = append(figs, Figure{
			ID: m.id, Title: m.name + " prediction under on/off DDoS (flows)",
			XLabel: "time (s)", YLabel: "cpu cycles / error",
			Series: []Series{actual, predS, errS},
		})
		notes = append(notes, m.name+" mean error: "+fmtPct(r.meanErr()))
	}
	return &Result{Figures: figs, Notes: notes}, nil
}

func tab32(cfg Config) (*Result, error) {
	dur := cfg.dur(30 * time.Second)
	traces := []struct {
		name string
		mk   func() trace.Source
	}{
		{"CESCA-I", func() trace.Source { return srcCESCA1(cfg, dur) }},
		{"CESCA-II", func() trace.Source { return srcCESCA2(cfg, dur) }},
		{"ABILENE", func() trace.Source { return srcAbilene(cfg, dur) }},
		{"CENIC", func() trace.Source { return srcCENIC(cfg, dur) }},
	}
	if cfg.Quick {
		traces = traces[:2]
	}
	t := Table{
		ID: "tab3.2", Title: "MLR+FCBF prediction error by query",
		Columns: []string{"trace", "query", "mean", "stdev", "selected features"},
	}
	for _, tr := range traces {
		r := runPrediction(tr.mk(), queries.StandardSet(queries.Config{Seed: cfg.Seed}),
			mkMLR(predict.DefaultHistory, predict.DefaultThreshold), warmupBins)
		for qi, name := range r.Queries {
			t.Rows = append(t.Rows, []string{
				tr.name, name,
				fmtF(stats.Mean(r.Err[qi]), 4),
				fmtF(stats.Stdev(r.Err[qi]), 4),
				r.topFeatures(qi, 2),
			})
		}
	}
	return &Result{Tables: []Table{t}}, nil
}

func tab33(cfg Config) (*Result, error) {
	dur := cfg.dur(30 * time.Second)
	mkQs := func() []queries.Query { return queries.StandardSet(queries.Config{Seed: cfg.Seed}) }
	runs := map[string]*predRun{
		"ewma": runPrediction(srcCESCA2(cfg, dur), mkQs(), mkEWMA(predict.DefaultEWMAAlpha), 10),
		"slr":  runPrediction(srcCESCA2(cfg, dur), mkQs(), mkSLR(), 10),
		"mlr":  runPrediction(srcCESCA2(cfg, dur), mkQs(), mkMLR(predict.DefaultHistory, predict.DefaultThreshold), warmupBins),
	}
	t := Table{
		ID: "tab3.3", Title: "error statistics per query and method",
		Columns: []string{"query", "ewma mean", "ewma sd", "slr mean", "slr sd", "mlr mean", "mlr sd"},
	}
	for qi, name := range runs["mlr"].Queries {
		row := []string{name}
		for _, m := range []string{"ewma", "slr", "mlr"} {
			row = append(row, fmtF(stats.Mean(runs[m].Err[qi]), 4), fmtF(stats.Stdev(runs[m].Err[qi]), 4))
		}
		t.Rows = append(t.Rows, row)
	}
	return &Result{Tables: []Table{t},
		Notes: []string{"expected shape: mlr < slr < ewma on average; slr worst on byte-driven queries"}}, nil
}

func tab34(cfg Config) (*Result, error) {
	dur := cfg.dur(30 * time.Second)
	r := runPrediction(srcCESCA2(cfg, dur), queries.StandardSet(queries.Config{Seed: cfg.Seed}),
		mkMLR(predict.DefaultHistory, predict.DefaultThreshold), warmupBins)
	// Total processing cost: queries plus the prediction subsystem.
	var queryCycles float64
	for qi := range r.Actual {
		queryCycles += stats.Sum(r.Actual[qi])
	}
	total := queryCycles + r.PredictCycles
	t := Table{
		ID: "tab3.4", Title: "prediction overhead breakdown (fraction of total cycles)",
		Columns: []string{"phase", "overhead"},
		Rows: [][]string{
			{"feature extraction", fmtPct(r.FeatureCycles / total)},
			{"fcbf", fmtPct(r.FCBFCycles / total)},
			{"mlr", fmtPct(r.MLRCycles / total)},
			{"total", fmtPct(r.PredictCycles / total)},
		},
	}
	return &Result{Tables: []Table{t},
		Notes: []string{"paper: feature extraction 9.07%, fcbf 1.70%, mlr 0.20%, total 10.97%"}}, nil
}
