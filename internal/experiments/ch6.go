package experiments

import (
	"fmt"
	"time"

	"repro/internal/custom"
	"repro/internal/pkt"
	"repro/internal/queries"
	"repro/internal/sampling"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/pkg/loadshed"
)

func init() {
	register("fig6.1-2", "p2p-detector cost and accuracy under packet / flow / custom shedding", fig612)
	register("fig6.3", "Actual vs expected consumption of the custom-shed p2p-detector", fig63)
	register("fig6.4", "Accuracy vs sampling rate (high-watermark, top-k, p2p-detector)", fig64)
	register("fig6.5", "Average and minimum accuracy vs overload with and without custom shedding", fig65)
	register("fig6.6-7", "Timeline: eq_srates without custom shedding vs mmfs_pkt with it", fig667)
	register("fig6.8", "System performance under a massive spoofed DDoS", fig68)
	register("fig6.9", "System behaviour under new query arrivals", fig69)
	register("fig6.10", "Selfish p2p-detector clones arriving periodically", fig610)
	register("fig6.11", "Buggy p2p-detector clones arriving periodically", fig611)
	register("fig6.12-14", "Online execution: CPU, buffer, accuracy and shedding rate over time", fig61214)
	register("tab6.2", "Accuracy by query for the online execution", tab62)
}

// ch6Qs is the Chapter 6 validation set: p2p-detector plus companions.
func ch6Qs(seed uint64) []queries.Query {
	return []queries.Query{
		queries.NewP2PDetector(queries.Config{Seed: seed}),
		queries.NewCounter(queries.Config{Seed: seed}),
		queries.NewFlows(queries.Config{Seed: seed}),
		queries.NewHighWatermark(queries.Config{Seed: seed}),
		queries.NewTopK(queries.Config{Seed: seed}, 0),
	}
}

func ch6Src(cfg Config, dur time.Duration, anomalies ...trace.Anomaly) *trace.Generator {
	c := trace.UPC2(cfg.Seed, dur, cfg.Scale)
	c.P2PFrac = 0.15
	c.Anomalies = anomalies
	return trace.NewGenerator(c)
}

func fig612(cfg Config) (*Result, error) {
	dur := cfg.dur(20 * time.Second)
	type variant struct {
		name   string
		mk     func() []queries.Query
		custom bool
	}
	base := func(method sampling.Method) func() []queries.Query {
		return func() []queries.Query {
			qs := ch6Qs(cfg.Seed)
			if method != sampling.Custom {
				qs[0] = queries.WithMethod(qs[0], method)
			}
			return qs
		}
	}
	variants := []variant{
		{"packet-sampling", base(sampling.Packet), false},
		{"flow-sampling", base(sampling.Flow), false},
		{"custom", base(sampling.Custom), true},
	}
	capacity2x := loadshed.CapacityForOverload(ch6Src(cfg, dur), ch6Qs(cfg.Seed), cfg.Seed+60, 2)
	ref := loadshed.Reference(ch6Src(cfg, dur), ch6Qs(cfg.Seed), cfg.Seed+60)

	costT := Table{
		ID: "fig6.1", Title: "p2p-detector mean prediction and usage per bin",
		Columns: []string{"method", "mean predicted", "mean used", "mean rate"},
	}
	accT := Table{
		ID: "fig6.2", Title: "p2p-detector accuracy error per method",
		Columns: []string{"method", "mean error"},
	}
	for _, v := range variants {
		res := loadshed.New(loadshed.Config{
			Scheme: loadshed.Predictive, Capacity: capacity2x,
			Seed: cfg.Seed + 61, Strategy: sched.MMFSPkt{},
			CustomShedding: v.custom,
		}, v.mk()).Run(ch6Src(cfg, dur))
		var pred, used, rate float64
		for _, b := range res.Bins {
			pred += b.QueryPred[0]
			used += b.QueryUsed[0]
			rate += b.Rates[0]
		}
		n := float64(len(res.Bins))
		costT.Rows = append(costT.Rows, []string{
			v.name, fmtF(pred/n, 0), fmtF(used/n, 0), fmtF(rate/n, 2),
		})
		errs := loadshed.Errors(ch6Qs(cfg.Seed), res, ref)["p2p-detector"]
		accT.Rows = append(accT.Rows, []string{v.name, fmtPct(stats.Mean(errs))})
	}
	return &Result{Tables: []Table{costT, accT}, Notes: []string{
		"paper shape: custom shedding error well below packet and flow sampling at equal budget",
	}}, nil
}

func fig63(cfg Config) (*Result, error) {
	dur := cfg.dur(20 * time.Second)
	capacity2x := loadshed.CapacityForOverload(ch6Src(cfg, dur), ch6Qs(cfg.Seed), cfg.Seed+62, 2)
	sys := loadshed.New(loadshed.Config{
		Scheme: loadshed.Predictive, Capacity: capacity2x,
		Seed: cfg.Seed + 63, Strategy: sched.MMFSPkt{}, CustomShedding: true,
	}, ch6Qs(cfg.Seed))
	expected := Series{Name: "expected"}
	actual := Series{Name: "actual"}
	corr := Series{Name: "correction factor"}
	probe := func(bin int) {
		for _, st := range sys.CustomStates() {
			x := float64(bin) / 10
			expected.X, expected.Y = append(expected.X, x), append(expected.Y, st.LastExpected)
			actual.X, actual.Y = append(actual.X, x), append(actual.Y, st.LastActual)
			corr.X, corr.Y = append(corr.X, x), append(corr.Y, st.Corr())
		}
	}
	// Re-create with the probe wired in.
	sys = loadshed.New(loadshed.Config{
		Scheme: loadshed.Predictive, Capacity: capacity2x,
		Seed: cfg.Seed + 63, Strategy: sched.MMFSPkt{}, CustomShedding: true,
		Probe: probe,
	}, ch6Qs(cfg.Seed))
	// The probe captures everything this figure needs; stream with a
	// discard sink rather than accumulating a RunResult nobody reads.
	sys.Stream(ch6Src(cfg, dur), loadshed.DiscardSink{})
	return &Result{Figures: []Figure{{
		ID: "fig6.3", Title: "actual vs expected consumption (custom p2p-detector)",
		XLabel: "time (s)", YLabel: "cycles / ratio",
		Series: []Series{expected, actual, corr},
	}}}, nil
}

func fig64(cfg Config) (*Result, error) {
	dur := cfg.dur(10 * time.Second)
	rates := []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0}
	if cfg.Quick {
		rates = []float64{0.05, 0.3, 0.7, 1.0}
	}
	fig := Figure{ID: "fig6.4", Title: "accuracy vs packet sampling rate", XLabel: "sampling rate", YLabel: "accuracy"}
	for _, name := range []string{"high-watermark", "top-k", "p2p-detector"} {
		s := Series{Name: name}
		for _, rate := range rates {
			s.X = append(s.X, rate)
			s.Y = append(s.Y, stats.Clamp(1-sampledError(cfg, dur, name, rate), 0, 1))
		}
		fig.Series = append(fig.Series, s)
	}
	return &Result{Figures: []Figure{fig}, Notes: []string{
		"paper shape: p2p-detector degrades ~linearly with the rate; high-watermark is robust",
	}}, nil
}

func fig65(cfg Config) (*Result, error) {
	dur := cfg.dur(15 * time.Second)
	grid := kGrid(cfg.Quick)
	mkQs := func() []queries.Query { return ch6Qs(cfg.Seed) }
	demand := loadshed.MeasureCapacity(ch6Src(cfg, dur), mkQs(), cfg.Seed+64)
	ref := loadshed.Reference(ch6Src(cfg, dur), mkQs(), cfg.Seed+64)

	avgFig := Figure{ID: "fig6.5a", Title: "average accuracy vs K", XLabel: "K", YLabel: "accuracy"}
	minFig := Figure{ID: "fig6.5b", Title: "minimum accuracy vs K", XLabel: "K", YLabel: "accuracy"}
	for _, withCustom := range []bool{false, true} {
		name := "sampling-only"
		if withCustom {
			name = "with-custom"
		}
		avgS, minS := Series{Name: name}, Series{Name: name}
		for _, k := range grid {
			res := loadshed.New(loadshed.Config{
				Scheme: loadshed.Predictive, Capacity: demand * (1 - k),
				Seed: cfg.Seed + 65, Strategy: sched.MMFSPkt{},
				CustomShedding: withCustom,
			}, mkQs()).Run(ch6Src(cfg, dur))
			accs := loadshed.Accuracies(mkQs(), res, ref, 10)
			avg, min, _ := meanAccuracy(accs)
			avgS.X, avgS.Y = append(avgS.X, k), append(avgS.Y, avg)
			minS.X, minS.Y = append(minS.X, k), append(minS.Y, min)
		}
		avgFig.Series = append(avgFig.Series, avgS)
		minFig.Series = append(minFig.Series, minS)
	}
	return &Result{Figures: []Figure{avgFig, minFig}}, nil
}

// timelineFigure summarizes one run as the Chapter 6 timeline plots do.
func timelineFigure(id, title string, res *loadshed.RunResult, accs map[string][]float64) Figure {
	rate := Series{Name: "mean sampling rate"}
	drops := Series{Name: "drops/s"}
	for i := 0; i < len(res.Bins); i += 10 {
		var r, d float64
		n := 0
		for j := i; j < i+10 && j < len(res.Bins); j++ {
			r += stats.Mean(res.Bins[j].Rates)
			d += float64(res.Bins[j].DropPkts)
			n++
		}
		rate.X, rate.Y = append(rate.X, float64(i)/10), append(rate.Y, r/float64(n))
		drops.X, drops.Y = append(drops.X, float64(i)/10), append(drops.Y, d)
	}
	acc := Series{Name: "avg accuracy"}
	nIv := 0
	for _, as := range accs {
		if len(as) > nIv {
			nIv = len(as)
		}
	}
	for iv := 0; iv < nIv; iv++ {
		var sum float64
		n := 0
		for _, as := range accs {
			if iv < len(as) {
				sum += as[iv]
				n++
			}
		}
		if n > 0 {
			acc.X, acc.Y = append(acc.X, float64(iv)), append(acc.Y, sum/float64(n))
		}
	}
	return Figure{ID: id, Title: title, XLabel: "time (s) / interval", YLabel: "rate / drops / accuracy",
		Series: []Series{rate, drops, acc}}
}

func fig667(cfg Config) (*Result, error) {
	dur := cfg.dur(20 * time.Second)
	mkQs := func() []queries.Query { return ch6Qs(cfg.Seed) }
	capacity2x := loadshed.CapacityForOverload(ch6Src(cfg, dur), mkQs(), cfg.Seed+66, 2)
	ref := loadshed.Reference(ch6Src(cfg, dur), mkQs(), cfg.Seed+66)

	var figs []Figure
	var notes []string
	for _, v := range []struct {
		id, name string
		strat    sched.Strategy
		withCust bool
	}{
		{"fig6.6", "eq_srates, no custom shedding", sched.EqualRates{RespectMinRates: true}, false},
		{"fig6.7", "mmfs_pkt with custom shedding", sched.MMFSPkt{}, true},
	} {
		res := loadshed.New(loadshed.Config{
			Scheme: loadshed.Predictive, Capacity: capacity2x,
			Seed: cfg.Seed + 67, Strategy: v.strat, CustomShedding: v.withCust,
		}, mkQs()).Run(ch6Src(cfg, dur))
		accs := loadshed.Accuracies(mkQs(), res, ref, 10)
		figs = append(figs, timelineFigure(v.id, v.name, res, accs))
		avg, min, _ := meanAccuracy(accs)
		notes = append(notes, fmt.Sprintf("%s: avg accuracy %.3f, min %.3f", v.name, avg, min))
	}
	return &Result{Figures: figs, Notes: notes}, nil
}

func fig68(cfg Config) (*Result, error) {
	dur := cfg.dur(30 * time.Second)
	pps := trace.UPC2(cfg.Seed, dur, cfg.Scale).PacketsPerSec
	ddos := trace.NewOnOffDDoS(dur/3, dur/3, 8*pps, pkt.IPv4(147, 83, 1, 1))
	mkQs := func() []queries.Query { return ch6Qs(cfg.Seed) }
	ovh, normal := loadshed.MeasureLoad(ch6Src(cfg, dur), mkQs(), cfg.Seed+68) // normal-traffic load
	ref := loadshed.Reference(ch6Src(cfg, dur, ddos), mkQs(), cfg.Seed+68)
	res := loadshed.New(loadshed.Config{
		Scheme: loadshed.Predictive, Capacity: ovh + normal*1.2,
		Seed: cfg.Seed + 69, Strategy: sched.MMFSPkt{}, CustomShedding: true,
		BufferBins: 2,
	}, mkQs()).Run(ch6Src(cfg, dur, ddos))
	accs := loadshed.Accuracies(mkQs(), res, ref, 10)
	fig := timelineFigure("fig6.8", "massive spoofed on/off DDoS", res, accs)
	return &Result{Figures: []Figure{fig}, Notes: []string{
		fmt.Sprintf("uncontrolled drops: %d of %d packets", res.TotalDrops(), res.TotalWirePkts()),
	}}, nil
}

func fig69(cfg Config) (*Result, error) {
	dur := cfg.dur(30 * time.Second)
	bins := int(dur / trace.DefaultTimeBin)
	mkBase := func() []queries.Query {
		return []queries.Query{
			queries.NewCounter(queries.Config{Seed: cfg.Seed}),
			queries.NewFlows(queries.Config{Seed: cfg.Seed}),
		}
	}
	capacity2x := loadshed.CapacityForOverload(ch6Src(cfg, dur), ch6Qs(cfg.Seed), cfg.Seed+70, 2)
	res := loadshed.New(loadshed.Config{
		Scheme: loadshed.Predictive, Capacity: capacity2x,
		Seed: cfg.Seed + 71, Strategy: sched.MMFSPkt{}, CustomShedding: true,
		Arrivals: []loadshed.Arrival{
			{AtBin: bins / 4, Make: func() queries.Query { return queries.NewTopK(queries.Config{Seed: cfg.Seed}, 0) }},
			{AtBin: bins / 2, Make: func() queries.Query { return queries.NewP2PDetector(queries.Config{Seed: cfg.Seed}) }},
		},
	}, mkBase()).Run(ch6Src(cfg, dur))

	rate := Series{Name: "mean rate"}
	nq := Series{Name: "active queries"}
	for i, b := range res.Bins {
		rate.X, rate.Y = append(rate.X, float64(i)/10), append(rate.Y, stats.Mean(b.Rates))
		nq.X, nq.Y = append(nq.X, float64(i)/10), append(nq.Y, float64(len(b.Rates)))
	}
	return &Result{Figures: []Figure{{
		ID: "fig6.9", Title: "query arrivals", XLabel: "time (s)", YLabel: "rate / query count",
		Series: []Series{rate, nq},
	}}, Notes: []string{
		fmt.Sprintf("drops: %d (the system re-converges after each arrival)", res.TotalDrops()),
	}}, nil
}

// misbehaverTimeline runs the fig6.10/6.11 scenario with the given
// wrapper applied to arriving p2p clones.
func misbehaverTimeline(cfg Config, id, title string, wrap func(custom.ShedderQuery) queries.Query) (*Result, error) {
	dur := cfg.dur(30 * time.Second)
	bins := int(dur / trace.DefaultTimeBin)
	mkQs := func() []queries.Query { return ch6Qs(cfg.Seed) }
	capacity2x := loadshed.CapacityForOverload(ch6Src(cfg, dur), mkQs(), cfg.Seed+72, 2)
	ref := loadshed.Reference(ch6Src(cfg, dur), mkQs(), cfg.Seed+72)
	arrive := func() queries.Query {
		return wrap(queries.NewP2PDetector(queries.Config{Seed: cfg.Seed + 5}))
	}
	sys := loadshed.New(loadshed.Config{
		Scheme: loadshed.Predictive, Capacity: capacity2x,
		Seed: cfg.Seed + 73, Strategy: sched.MMFSPkt{}, CustomShedding: true,
		Arrivals: []loadshed.Arrival{
			{AtBin: bins / 3, Make: arrive},
			{AtBin: 2 * bins / 3, Make: arrive},
		},
	}, mkQs())
	res := sys.Run(ch6Src(cfg, dur))
	accs := loadshed.Accuracies(mkQs(), res, ref, 10)
	fig := timelineFigure(id, title, res, accs)

	notes := []string{}
	for _, st := range sys.CustomStates() {
		notes = append(notes, fmt.Sprintf("%s: final mode %v, corr %.2f", st.Name(), st.Mode(), st.Corr()))
	}
	avg, _, byQ := meanAccuracy(accs)
	notes = append(notes, fmt.Sprintf("resident avg accuracy %.3f (counter %.3f)", avg, byQ["counter"]))
	return &Result{Figures: []Figure{fig}, Notes: notes}, nil
}

func fig610(cfg Config) (*Result, error) {
	return misbehaverTimeline(cfg, "fig6.10", "selfish p2p clones arriving",
		func(q custom.ShedderQuery) queries.Query { return custom.NewSelfish(q) })
}

func fig611(cfg Config) (*Result, error) {
	return misbehaverTimeline(cfg, "fig6.11", "buggy p2p clones arriving",
		func(q custom.ShedderQuery) queries.Query { return custom.NewBuggy(q) })
}

// onlineRun is the shared fig6.12-14 / tab6.2 execution.
func onlineRun(cfg Config) (*loadshed.RunResult, *loadshed.RunResult, func() []queries.Query, float64) {
	dur := cfg.dur(40 * time.Second)
	mkQs := func() []queries.Query { return queries.FullSet(queries.Config{Seed: cfg.Seed}) }
	capacity2x := loadshed.CapacityForOverload(ch6Src(cfg, dur), mkQs(), cfg.Seed+74, 2)
	ref := loadshed.Reference(ch6Src(cfg, dur), mkQs(), cfg.Seed+74)
	res := loadshed.New(loadshed.Config{
		Scheme: loadshed.Predictive, Capacity: capacity2x,
		Seed: cfg.Seed + 75, Strategy: sched.MMFSPkt{}, CustomShedding: true,
	}, mkQs()).Run(ch6Src(cfg, dur))
	return res, ref, mkQs, capacity2x
}

func fig61214(cfg Config) (*Result, error) {
	res, ref, mkQs, capacity := onlineRun(cfg)

	cpu := Figure{ID: "fig6.12", Title: "CPU after shedding (stacked) and predicted", XLabel: "time (s)", YLabel: "cycles/bin"}
	overhead := Series{Name: "overhead"}
	withShed := Series{Name: "+shedding"}
	withQueries := Series{Name: "+queries"}
	predicted := Series{Name: "predicted"}
	capLine := Series{Name: "capacity"}
	buffer := Series{Name: "buffer occupancy (bins)"}
	for i, b := range res.Bins {
		x := float64(i) / 10
		overhead.X, overhead.Y = append(overhead.X, x), append(overhead.Y, b.Overhead)
		withShed.X, withShed.Y = append(withShed.X, x), append(withShed.Y, b.Overhead+b.Shed)
		withQueries.X, withQueries.Y = append(withQueries.X, x), append(withQueries.Y, b.Overhead+b.Shed+b.Used)
		predicted.X, predicted.Y = append(predicted.X, x), append(predicted.Y, b.Predicted)
		capLine.X, capLine.Y = append(capLine.X, x), append(capLine.Y, capacity)
		buffer.X, buffer.Y = append(buffer.X, x), append(buffer.Y, b.BufferBins)
	}
	cpu.Series = []Series{overhead, withShed, withQueries, predicted, capLine}

	buf := Figure{ID: "fig6.13", Title: "buffer occupancy and drops", XLabel: "time (s)", YLabel: "bins / packets"}
	drops := Series{Name: "drops"}
	for i, b := range res.Bins {
		drops.X, drops.Y = append(drops.X, float64(i)/10), append(drops.Y, float64(b.DropPkts))
	}
	buf.Series = []Series{buffer, drops}

	accs := loadshed.Accuracies(mkQs(), res, ref, 10)
	accFig := timelineFigure("fig6.14", "overall accuracy and shedding rate", res, accs)

	avg, min, _ := meanAccuracy(accs)
	return &Result{Figures: []Figure{cpu, buf, accFig}, Notes: []string{
		fmt.Sprintf("avg accuracy %.3f, min %.3f, drops %d", avg, min, res.TotalDrops()),
	}}, nil
}

func tab62(cfg Config) (*Result, error) {
	res, ref, mkQs, _ := onlineRun(cfg)
	accs := loadshed.Accuracies(mkQs(), res, ref, 10)
	t := Table{
		ID: "tab6.2", Title: "accuracy by query (mean ± stdev)",
		Columns: []string{"query", "accuracy"},
	}
	for _, q := range mkQs() {
		as := accs[q.Name()]
		t.Rows = append(t.Rows, []string{
			q.Name(), fmtF(stats.Mean(as), 3) + " ±" + fmtF(stats.Stdev(as), 3),
		})
	}
	return &Result{Tables: []Table{t}}, nil
}
