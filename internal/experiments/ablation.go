package experiments

import (
	"time"

	"repro/internal/pkt"
	"repro/internal/queries"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/pkg/loadshed"
)

// ch4DDoSSrc is the busy Chapter 4 scenario: CESCA-II plus a spoofed
// on/off DDoS for half the run.
func ch4DDoSSrc(cfg Config, dur time.Duration) trace.Source {
	pps := trace.CESCA2(cfg.Seed, dur, cfg.Scale).PacketsPerSec
	return srcCESCA2(cfg, dur,
		trace.NewOnOffDDoS(dur/4, dur/2, 4*pps, pkt.IPv4(147, 83, 1, 1)))
}

// strategyKinds enumerates the Chapter 5 strategies plus the Chapter 4
// single global rate (nil).
func strategyKinds() []struct {
	name  string
	strat sched.Strategy
} {
	return []struct {
		name  string
		strat sched.Strategy
	}{
		{"global-rate", nil},
		{"eq_srates", sched.EqualRates{RespectMinRates: true}},
		{"mmfs_cpu", sched.MMFSCPU{}},
		{"mmfs_pkt", sched.MMFSPkt{}},
	}
}

func init() {
	register("ablation-predictor", "Ablation: which predictor drives the shedder (mlr / slr / ewma / last)", ablationPredictor)
	register("ablation-strategy", "Ablation: global rate vs per-query strategies at 2x overload", ablationStrategy)
}

// ablationPredictor swaps the cost predictor inside the otherwise
// unchanged predictive load shedding loadshed. The paper argues (Ch. 3)
// that MLR+FCBF is the piece that makes predictive shedding work; this
// ablation shows what the full system loses with each cheaper model.
func ablationPredictor(cfg Config) (*Result, error) {
	dur := cfg.dur(20 * time.Second)
	mkQs := func() []queries.Query { return queries.StandardSet(queries.Config{Seed: cfg.Seed}) }
	capacity := loadshed.CapacityForOverload(ch4DDoSSrc(cfg, dur), mkQs(), cfg.Seed+110, 2)
	ref := loadshed.Reference(ch4DDoSSrc(cfg, dur), mkQs(), cfg.Seed+110)

	t := Table{
		ID: "ablation-predictor", Title: "predictive shedding with different cost models",
		Columns: []string{"predictor", "drops", "avg metric error", "mean rate"},
	}
	metricQueries := []string{"application", "counter", "flows", "high-watermark", "top-k"}
	for _, kind := range []string{"mlr", "slr", "ewma"} {
		res := loadshed.New(loadshed.Config{
			Scheme:        loadshed.Predictive,
			Capacity:      capacity,
			Seed:          cfg.Seed + 111,
			BufferBins:    2,
			PredictorKind: kind,
		}, mkQs()).Run(ch4DDoSSrc(cfg, dur))
		errs := loadshed.MeanErrors(mkQs(), res, ref)
		var avg float64
		for _, q := range metricQueries {
			avg += errs[q]
		}
		var rates []float64
		for _, b := range res.Bins {
			rates = append(rates, b.GlobalRate)
		}
		t.Rows = append(t.Rows, []string{
			kind,
			fmtPct(float64(res.TotalDrops()) / float64(res.TotalWirePkts())),
			fmtPct(avg / float64(len(metricQueries))),
			fmtF(stats.Mean(rates), 3),
		})
	}
	return &Result{Tables: []Table{t}, Notes: []string{
		"expected shape: mlr lowest drops and error; ewma worst under the anomaly",
	}}, nil
}

// ablationStrategy isolates the Chapter 5 scheduler choice with the
// rest of the system fixed.
func ablationStrategy(cfg Config) (*Result, error) {
	dur := cfg.dur(15 * time.Second)
	mkQs := func() []queries.Query { return queries.FullSet(queries.Config{Seed: cfg.Seed}) }
	capacity := loadshed.CapacityForOverload(srcCESCA2(cfg, dur), mkQs(), cfg.Seed+112, 2)
	ref := loadshed.Reference(srcCESCA2(cfg, dur), mkQs(), cfg.Seed+112)

	t := Table{
		ID: "ablation-strategy", Title: "strategy choice at 2x overload (accuracy avg / min)",
		Columns: []string{"strategy", "avg accuracy", "min accuracy", "disabled query-bins"},
	}
	for _, kd := range strategyKinds() {
		res := loadshed.New(loadshed.Config{
			Scheme:         loadshed.Predictive,
			Capacity:       capacity,
			Seed:           cfg.Seed + 113,
			Strategy:       kd.strat,
			CustomShedding: true,
		}, mkQs()).Run(srcCESCA2(cfg, dur))
		accs := loadshed.Accuracies(mkQs(), res, ref, 10)
		avg, min, _ := meanAccuracy(accs)
		disabled := 0
		for _, b := range res.Bins {
			for _, r := range b.Rates {
				if r == 0 {
					disabled++
				}
			}
		}
		t.Rows = append(t.Rows, []string{kd.name, fmtF(avg, 3), fmtF(min, 3), fmtF(float64(disabled), 0)})
	}
	return &Result{Tables: []Table{t}}, nil
}
