package experiments

// robust.go — the anomaly-robustness suite. Not a thesis figure: the
// paper evaluates prediction accuracy on stationary traces and argues
// robustness qualitatively (§3.3.3's history window "forgets" old
// traffic). This experiment makes that argument quantitative, and
// measures how much the online change detector (internal/detect,
// Config.ChangeDetection) improves on pure forgetting: for each
// anomaly in the catalog it runs the predictive system with the
// detector off and on and reports pre-anomaly error, post-anomaly
// error, and how many bins each run needs to shake off the stale
// regime.
//
// The gradual drift is the interesting case by construction: it mimics
// the base traffic's address pools, port mix and size distribution but
// carries no payload, so it is collinear with the base traffic in
// feature space — the regression cannot dodge it with one separating
// coefficient, and recovery speed is governed by how fast the stale
// history leaves the fit. That is exactly what the detector
// accelerates (history truncation on its change verdict), and what
// TestDriftDetectorRecovery pins as a >= 2x speedup.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/detect"
	"repro/internal/pkt"
	"repro/internal/queries"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/pkg/loadshed"
)

func init() {
	register("robust", "Anomaly robustness: MLR accuracy under drift / flash crowd / topology shift, detector off vs on", robustExp)
}

// robustQs: pattern-search is the anomaly victim (its cost is linear in
// payload bytes, which every anomaly in the catalog decouples from the
// header features), flanked by the standard cheap companions.
func robustQs(seed uint64) []queries.Query {
	return []queries.Query{
		queries.NewPatternSearch(queries.Config{Seed: seed}, nil),
		queries.NewCounter(queries.Config{Seed: seed}),
		queries.NewFlows(queries.Config{Seed: seed}),
	}
}

// robustSys mirrors the drift regression test's operating point:
// predictive scheme, unlimited capacity and no measurement noise (so
// per-bin error is exactly model error), a long history window (the
// quantity the detector's truncation shortcuts), and the detector
// tuned for small-trace scales — residual tests arbitrate, the
// distribution distance is a backstop for gross shifts, truncation on
// a verdict so feature selection re-runs on the new regime only.
func robustSys(cfg Config, detectOn bool) *loadshed.System {
	return loadshed.New(loadshed.Config{
		Scheme:          loadshed.Predictive,
		Strategy:        sched.MMFSPkt{},
		Seed:            cfg.Seed + 90,
		Capacity:        math.Inf(1),
		NoiseSigma:      -1,
		Workers:         1,
		HistoryLen:      120,
		ChangeDetection: detectOn,
		Detect: detect.Config{
			ResidualDelta:  0.05,
			ResidualLambda: 1.5,
			DistThreshold:  12,
			Cooldown:       40,
		},
		ChangeDiscount: -1,
	}, robustQs(cfg.Seed))
}

func robustExp(cfg Config) (*Result, error) {
	dur := cfg.dur(20 * time.Second)
	start := 2 * dur / 5 // anomaly onset at 40% of the run
	rest := dur - start
	basePPS := trace.CESCA2(cfg.Seed, dur, cfg.Scale).PacketsPerSec

	type scenario struct {
		name string
		mk   func() trace.Anomaly
	}
	scenarios := []scenario{
		{"gradual-drift", func() trace.Anomaly {
			return trace.NewGradualDrift(start, rest, 1.5*basePPS)
		}},
		{"flash-crowd", func() trace.Anomaly {
			return trace.NewFlashCrowd(start, rest, 2*basePPS, pkt.IPv4(147, 83, 9, 9))
		}},
		{"topology-shift", func() trace.Anomaly {
			return trace.NewTopologyShift(start, rest, basePPS)
		}},
	}

	tab := Table{
		ID:    "robust",
		Title: "MLR accuracy under anomalies, change detector off vs on",
		Columns: []string{
			"anomaly", "detector", "pre err", "post err", "recovery bins", "verdicts",
		},
	}
	var fig Figure

	for _, sc := range scenarios {
		// Seed offset 30 puts the default run (Seed 1) on the exact
		// trace TestDriftDetectorRecovery pins.
		tc := trace.CESCA2(cfg.Seed+30, dur, cfg.Scale)
		tc.Anomalies = []trace.Anomaly{sc.mk()}
		g := trace.NewGenerator(tc)
		batches := trace.Record(g)
		bin := g.TimeBin()
		startBin := int(start / bin)
		// The regime keeps moving through the anomaly's own ramp (a
		// quarter of its span, like GradualDrift's default); "post"
		// starts once it settles.
		settled := startBin + int(rest/4/bin)

		relErr := func(res *loadshed.RunResult) []float64 {
			e := make([]float64, len(res.Bins))
			for i, b := range res.Bins {
				used := math.Max(b.QueryUsed[0], 1)
				e[i] = math.Abs(b.QueryPred[0]-used) / used
			}
			return e
		}
		mean := func(e []float64, lo, hi int) float64 {
			if lo < 0 {
				lo = 0
			}
			if hi > len(e) {
				hi = len(e)
			}
			if lo >= hi {
				return math.NaN()
			}
			var s float64
			for _, v := range e[lo:hi] {
				s += v
			}
			return s / float64(hi-lo)
		}

		type outcome struct {
			err      []float64
			verdicts int
		}
		runs := map[bool]outcome{}
		for _, on := range []bool{false, true} {
			res := robustSys(cfg, on).Run(trace.NewMemorySource(batches, bin))
			o := outcome{err: relErr(res)}
			for _, b := range res.Bins {
				if b.Change {
					o.verdicts++
				}
			}
			runs[on] = o
		}

		// Recovery, calibrated as in TestDriftDetectorRecovery: the
		// contamination level is the detector-off error through the
		// anomaly onset, and a run has recovered once its mean error
		// since the regime settled drops to half of that.
		contamination := mean(runs[false].err, startBin, settled+10)
		recovery := func(e []float64) int {
			for b := settled + 10; b < len(e); b++ {
				if mean(e, settled, b+1) <= contamination/2 {
					return b - startBin
				}
			}
			return len(e) - startBin
		}

		for _, on := range []bool{false, true} {
			o := runs[on]
			state := "off"
			if on {
				state = "on"
			}
			// Recovery time is only meaningful when the anomaly
			// actually contaminated the model; a mild one (error never
			// left the baseline's neighbourhood) has nothing to
			// recover from.
			rec := "mild"
			pre := mean(o.err, startBin/2, startBin)
			if contamination > 3*mean(runs[false].err, startBin/2, startBin) {
				rec = fmt.Sprintf("%d", recovery(o.err))
			}
			tab.Rows = append(tab.Rows, []string{
				sc.name, state,
				fmtPct(pre),
				fmtPct(mean(o.err, settled, len(o.err))),
				rec,
				fmt.Sprintf("%d", o.verdicts),
			})
		}

		if sc.name == "gradual-drift" {
			fig = Figure{
				ID:     "robust-drift",
				Title:  "Prediction error through a gradual drift, detector off vs on",
				XLabel: "time (s)",
				YLabel: "relative prediction error",
			}
			for _, on := range []bool{false, true} {
				name := "detector off"
				if on {
					name = "detector on"
				}
				s := Series{Name: name}
				for i, v := range runs[on].err {
					s.X = append(s.X, float64(i)*bin.Seconds())
					s.Y = append(s.Y, v)
				}
				fig.Series = append(fig.Series, s)
			}
		}
	}

	return &Result{Tables: []Table{tab}, Figures: []Figure{fig}, Notes: []string{
		"gradual-drift is collinear with the base traffic in feature space: recovery is history-bound",
		"expected shape: detector-on recovers at least 2x faster on the drift (pinned by TestDriftDetectorRecovery)",
	}}, nil
}
