package experiments

import (
	"fmt"
	"time"

	"repro/internal/game"
	"repro/internal/queries"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/pkg/loadshed"
)

func init() {
	register("fig5.1", "Simulated mmfs_pkt − mmfs_cpu accuracy difference (1 heavy + 10 light)", fig51)
	register("fig5.2", "Measured mmfs_pkt − mmfs_cpu accuracy difference (1 trace + 10 counter)", fig52)
	register("fig5.3", "Accuracy of queries as a function of the sampling rate", fig53)
	register("fig5.4", "Average and minimum accuracy of five strategies vs overload level", fig54)
	register("fig5.5", "Autofocus accuracy over time at K = 0.2 per strategy", fig55)
	register("tab5.2", "Minimum sampling rates and accuracy at K = 0.5 per system", tab52)
	register("nash", "Empirical verification of the Nash equilibrium (Theorem 5.1)", nashExp)
}

func kGrid(quick bool) []float64 {
	if quick {
		return []float64{0, 0.25, 0.5, 0.75, 0.95}
	}
	return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
}

func fig51(cfg Config) (*Result, error) {
	grid := kGrid(cfg.Quick)
	avgT := Table{ID: "fig5.1a", Title: "avg accuracy difference (mmfs_pkt − mmfs_cpu)", Columns: []string{"mq \\ K"}}
	minT := Table{ID: "fig5.1b", Title: "min accuracy difference (mmfs_pkt − mmfs_cpu)", Columns: []string{"mq \\ K"}}
	for _, k := range grid {
		avgT.Columns = append(avgT.Columns, fmtF(k, 2))
		minT.Columns = append(minT.Columns, fmtF(k, 2))
	}
	maxMinGap := 0.0
	for _, mq := range grid {
		avgRow := []string{fmtF(mq, 2)}
		minRow := []string{fmtF(mq, 2)}
		qs := game.LightHeavySet(10, mq)
		total := game.TotalCost(qs)
		for _, k := range grid {
			capacity := total * (1 - k)
			cpu := game.Simulate(qs, capacity, sched.MMFSCPU{})
			pkt := game.Simulate(qs, capacity, sched.MMFSPkt{})
			avgRow = append(avgRow, fmtF(pkt.Avg-cpu.Avg, 3))
			minRow = append(minRow, fmtF(pkt.Min-cpu.Min, 3))
			if d := pkt.Min - cpu.Min; d > maxMinGap {
				maxMinGap = d
			}
		}
		avgT.Rows = append(avgT.Rows, avgRow)
		minT.Rows = append(minT.Rows, minRow)
	}
	return &Result{Tables: []Table{avgT, minT}, Notes: []string{
		"positive values show mmfs_pkt above mmfs_cpu; max min-accuracy gap = " + fmtF(maxMinGap, 3),
		"paper shape: near-zero average differences, clearly positive minimum differences",
	}}, nil
}

func fig52(cfg Config) (*Result, error) {
	dur := cfg.dur(10 * time.Second)
	grid := kGrid(true) // the measured surface is expensive; keep coarse
	mkQs := func() []queries.Query {
		qs := []queries.Query{queries.NewTraceQuery(queries.Config{Seed: cfg.Seed})}
		for i := 0; i < 10; i++ {
			qs = append(qs, queries.NewCounter(queries.Config{Seed: cfg.Seed + uint64(i)}))
		}
		return qs
	}
	// All counters share a name; rename via interval index is overkill —
	// accuracy aggregation below works on indices instead.
	demand := loadshed.MeasureCapacity(srcCESCA2(cfg, dur), mkQs(), cfg.Seed+95)
	ref := loadshed.Reference(srcCESCA2(cfg, dur), mkQs(), cfg.Seed+95)

	measure := func(strat sched.Strategy, k float64) (avg, min float64) {
		res := loadshed.New(loadshed.Config{
			Scheme: loadshed.Predictive, Capacity: demand * (1 - k),
			Seed: cfg.Seed + 96, Strategy: strat,
		}, mkQs()).Run(srcCESCA2(cfg, dur))
		metric := mkQs()
		min = 1
		var sum float64
		for qi, mq := range metric {
			var errs []float64
			for iv := range res.Intervals {
				if qi < len(res.Intervals[iv].Results) && qi < len(ref.Intervals[iv].Results) {
					errs = append(errs, mq.Error(res.Intervals[iv].Results[qi], ref.Intervals[iv].Results[qi]))
				}
			}
			acc := 1 - stats.Clamp(stats.Mean(errs), 0, 1)
			sum += acc
			if acc < min {
				min = acc
			}
		}
		return sum / float64(len(metric)), min
	}

	avgT := Table{ID: "fig5.2a", Title: "measured avg accuracy difference", Columns: []string{"K", "pkt−cpu avg", "pkt−cpu min"}}
	for _, k := range grid {
		cpuAvg, cpuMin := measure(sched.MMFSCPU{}, k)
		pktAvg, pktMin := measure(sched.MMFSPkt{}, k)
		avgT.Rows = append(avgT.Rows, []string{
			fmtF(k, 2), fmtF(pktAvg-cpuAvg, 3), fmtF(pktMin-cpuMin, 3),
		})
	}
	return &Result{Tables: []Table{avgT}, Notes: []string{
		"1 trace + 10 counter queries; positive min differences confirm the simulation (Fig 5.1)",
	}}, nil
}

func fig53(cfg Config) (*Result, error) {
	dur := cfg.dur(10 * time.Second)
	rates := []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0}
	if cfg.Quick {
		rates = []float64{0.05, 0.3, 0.7, 1.0}
	}
	names := []string{"counter", "flows", "top-k", "autofocus"}
	fig := Figure{ID: "fig5.3", Title: "accuracy vs sampling rate", XLabel: "sampling rate", YLabel: "accuracy"}
	for _, name := range names {
		s := Series{Name: name}
		for _, rate := range rates {
			acc := 1 - sampledError(cfg, dur, name, rate)
			s.X = append(s.X, rate)
			s.Y = append(s.Y, stats.Clamp(acc, 0, 1))
		}
		fig.Series = append(fig.Series, s)
	}
	return &Result{Figures: []Figure{fig}}, nil
}

// sampledError runs query `name` at a fixed packet-sampling rate over
// the CESCA-II source and returns its mean per-interval error versus a
// lossless run.
func sampledError(cfg Config, dur time.Duration, name string, rate float64) float64 {
	mk := func() queries.Query {
		for _, q := range queries.FullSet(queries.Config{Seed: cfg.Seed}) {
			if q.Name() == name {
				return q
			}
		}
		panic("unknown query " + name)
	}
	run := func(rate float64) []queries.Result {
		src := srcCESCA2(cfg, dur)
		src.Reset()
		q := mk()
		samp := newRateSampler(cfg.Seed + 97)
		var out []queries.Result
		bin := 0
		for {
			b, ok := src.NextBatch()
			if !ok {
				break
			}
			if bin > 0 && bin%10 == 0 {
				r, _ := q.Flush()
				out = append(out, r)
				samp.startInterval()
			}
			sb := b
			if rate < 1 {
				sb.Pkts = samp.sample(q, b.Pkts, rate)
			}
			q.Process(&sb, rate)
			bin++
		}
		r, _ := q.Flush()
		return append(out, r)
	}
	ref := run(1)
	got := run(rate)
	metric := mk()
	var errs []float64
	for i := range got {
		if i < len(ref) {
			errs = append(errs, stats.Clamp(metric.Error(got[i], ref[i]), 0, 1))
		}
	}
	return stats.Mean(errs)
}

func fig54(cfg Config) (*Result, error) {
	dur := cfg.dur(15 * time.Second)
	grid := kGrid(cfg.Quick)
	mkQs := func() []queries.Query { return queries.FullSet(queries.Config{Seed: cfg.Seed}) }
	demand := loadshed.MeasureCapacity(srcCESCA2(cfg, dur), mkQs(), cfg.Seed+98)
	ref := loadshed.Reference(srcCESCA2(cfg, dur), mkQs(), cfg.Seed+98)

	kind := []struct {
		name   string
		scheme loadshed.Scheme
		strat  sched.Strategy
		buffer float64
	}{
		{"no_lshed", loadshed.NoShed, nil, 2},
		{"reactive", loadshed.Reactive, nil, 2},
		{"eq_srates", loadshed.Predictive, sched.EqualRates{RespectMinRates: true}, 0},
		{"mmfs_cpu", loadshed.Predictive, sched.MMFSCPU{}, 0},
		{"mmfs_pkt", loadshed.Predictive, sched.MMFSPkt{}, 0},
	}
	avgFig := Figure{ID: "fig5.4a", Title: "average accuracy vs K", XLabel: "overload level K", YLabel: "accuracy"}
	minFig := Figure{ID: "fig5.4b", Title: "minimum accuracy vs K", XLabel: "overload level K", YLabel: "accuracy"}
	for _, kd := range kind {
		avgS := Series{Name: kd.name}
		minS := Series{Name: kd.name}
		for _, k := range grid {
			res := loadshed.New(loadshed.Config{
				Scheme: kd.scheme, Capacity: demand * (1 - k),
				Seed: cfg.Seed + 99, Strategy: kd.strat,
				BufferBins: kd.buffer, CustomShedding: true,
			}, mkQs()).Run(srcCESCA2(cfg, dur))
			accs := loadshed.Accuracies(mkQs(), res, ref, 10)
			avg, min, _ := meanAccuracy(accs)
			avgS.X, avgS.Y = append(avgS.X, k), append(avgS.Y, avg)
			minS.X, minS.Y = append(minS.X, k), append(minS.Y, min)
		}
		avgFig.Series = append(avgFig.Series, avgS)
		minFig.Series = append(minFig.Series, minS)
	}
	return &Result{Figures: []Figure{avgFig, minFig}, Notes: []string{
		"paper shape: mmfs strategies dominate; mmfs_pkt highest minimum accuracy",
	}}, nil
}

func fig55(cfg Config) (*Result, error) {
	dur := cfg.dur(20 * time.Second)
	const k = 0.2
	mkQs := func() []queries.Query { return queries.FullSet(queries.Config{Seed: cfg.Seed}) }
	demand := loadshed.MeasureCapacity(srcCESCA2(cfg, dur), mkQs(), cfg.Seed+100)
	ref := loadshed.Reference(srcCESCA2(cfg, dur), mkQs(), cfg.Seed+100)

	fig := Figure{ID: "fig5.5", Title: "autofocus accuracy over time (K=0.2)", XLabel: "interval", YLabel: "accuracy"}
	for _, kd := range []struct {
		name   string
		scheme loadshed.Scheme
		strat  sched.Strategy
		buffer float64
	}{
		{"no_lshed", loadshed.NoShed, nil, 2},
		{"eq_srates", loadshed.Predictive, sched.EqualRates{RespectMinRates: true}, 0},
		{"mmfs_cpu", loadshed.Predictive, sched.MMFSCPU{}, 0},
		{"mmfs_pkt", loadshed.Predictive, sched.MMFSPkt{}, 0},
	} {
		res := loadshed.New(loadshed.Config{
			Scheme: kd.scheme, Capacity: demand * (1 - k),
			Seed: cfg.Seed + 101, Strategy: kd.strat,
			BufferBins: kd.buffer, CustomShedding: true,
		}, mkQs()).Run(srcCESCA2(cfg, dur))
		accs := loadshed.Accuracies(mkQs(), res, ref, 10)["autofocus"]
		s := Series{Name: kd.name}
		for i, a := range accs {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, a)
		}
		fig.Series = append(fig.Series, s)
	}
	return &Result{Figures: []Figure{fig}}, nil
}

func tab52(cfg Config) (*Result, error) {
	dur := cfg.dur(15 * time.Second)
	const k = 0.5
	mkQs := func() []queries.Query { return queries.FullSet(queries.Config{Seed: cfg.Seed}) }
	demand := loadshed.MeasureCapacity(srcCESCA2(cfg, dur), mkQs(), cfg.Seed+102)
	ref := loadshed.Reference(srcCESCA2(cfg, dur), mkQs(), cfg.Seed+102)

	kinds := []struct {
		name   string
		scheme loadshed.Scheme
		strat  sched.Strategy
		buffer float64
	}{
		{"no_lshed", loadshed.NoShed, nil, 2},
		{"reactive", loadshed.Reactive, nil, 2},
		{"eq_srates", loadshed.Predictive, sched.EqualRates{RespectMinRates: true}, 0},
		{"mmfs_cpu", loadshed.Predictive, sched.MMFSCPU{}, 0},
		{"mmfs_pkt", loadshed.Predictive, sched.MMFSPkt{}, 0},
	}
	perKind := map[string]map[string]float64{}
	for _, kd := range kinds {
		res := loadshed.New(loadshed.Config{
			Scheme: kd.scheme, Capacity: demand * (1 - k),
			Seed: cfg.Seed + 103, Strategy: kd.strat,
			BufferBins: kd.buffer, CustomShedding: true,
		}, mkQs()).Run(srcCESCA2(cfg, dur))
		_, _, byQuery := meanAccuracy(loadshed.Accuracies(mkQs(), res, ref, 10))
		perKind[kd.name] = byQuery
	}
	t := Table{
		ID: "tab5.2", Title: "mq and average accuracy at K=0.5",
		Columns: []string{"query", "mq", "no_lshed", "reactive", "eq_srates", "mmfs_cpu", "mmfs_pkt"},
	}
	for _, q := range mkQs() {
		row := []string{q.Name(), fmtF(q.MinRate(), 2)}
		for _, kd := range kinds {
			row = append(row, fmtF(perKind[kd.name][q.Name()], 2))
		}
		t.Rows = append(t.Rows, row)
	}
	return &Result{Tables: []Table{t}}, nil
}

func nashExp(cfg Config) (*Result, error) {
	const capacity = 900.0
	t := Table{
		ID: "nash", Title: "best-response payoffs around the C/|Q| profile",
		Columns: []string{"strategy", "players", "fair payoff", "best deviation payoff", "equilibrium"},
	}
	for _, strat := range []sched.Strategy{sched.MMFSCPU{}, sched.MMFSPkt{}} {
		for _, n := range []int{2, 3, 5} {
			ps := make([]game.Player, n)
			for i := range ps {
				ps[i] = game.Player{Name: fmt.Sprintf("q%d", i), Demand: capacity, Claim: capacity / float64(n)}
			}
			fair := game.Payoffs(ps, capacity, strat)[0]
			_, best := game.BestResponse(ps, 0, capacity, strat, 90)
			eq := game.IsEquilibrium(ps, capacity, strat, 90)
			t.Rows = append(t.Rows, []string{
				strat.Name(), fmt.Sprintf("%d", n), fmtF(fair, 1), fmtF(best, 1), fmt.Sprintf("%v", eq),
			})
		}
	}
	return &Result{Tables: []Table{t},
		Notes: []string{"Theorem 5.1: the C/|Q| profile is the unique Nash equilibrium"}}, nil
}
