package experiments

import (
	"time"

	"repro/internal/features"
	"repro/internal/pkt"
	"repro/internal/predict"
	"repro/internal/queries"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/pkg/loadshed"
)

// Trace builders for the dataset presets at experiment scale.

func srcCESCA1(cfg Config, dur time.Duration, anomalies ...trace.Anomaly) *trace.Generator {
	c := trace.CESCA1(cfg.Seed, dur, cfg.Scale)
	c.Anomalies = anomalies
	return trace.NewGenerator(c)
}

func srcCESCA2(cfg Config, dur time.Duration, anomalies ...trace.Anomaly) *trace.Generator {
	c := trace.CESCA2(cfg.Seed, dur, cfg.Scale)
	c.Anomalies = anomalies
	return trace.NewGenerator(c)
}

func srcAbilene(cfg Config, dur time.Duration) *trace.Generator {
	return trace.NewGenerator(trace.Abilene(cfg.Seed, dur, cfg.Scale))
}

func srcCENIC(cfg Config, dur time.Duration) *trace.Generator {
	return trace.NewGenerator(trace.CENIC(cfg.Seed, dur, cfg.Scale))
}

func srcUPC2(cfg Config, dur time.Duration, anomalies ...trace.Anomaly) *trace.Generator {
	c := trace.UPC2(cfg.Seed, dur, cfg.Scale)
	c.Anomalies = anomalies
	return trace.NewGenerator(c)
}

// predRun is a standalone prediction experiment: queries run at full
// rate (no shedding, no measurement noise — §3.3 isolates the predictor
// from noise sources) while a predictor per query estimates each
// batch's cost from its features before it runs.
type predRun struct {
	Queries []string
	// Err[q][bin] is the relative prediction error after warmup.
	Err [][]float64
	// Pred and Actual hold the raw per-bin series.
	Pred   [][]float64
	Actual [][]float64
	// Features[q][f] counts how often feature f was selected (MLR only).
	Features []map[int]int
	// PredictCycles estimates the cost of running the prediction itself
	// (feature extraction + selection + fit), in cost-model cycles.
	PredictCycles float64
	// FeatureCycles / FCBFCycles / MLRCycles break PredictCycles down.
	FeatureCycles, FCBFCycles, MLRCycles float64
	Bins                                 int
}

// predictorMaker builds a fresh predictor per query.
type predictorMaker func() predict.Predictor

func mkMLR(history int, threshold float64) predictorMaker {
	return func() predict.Predictor { return predict.NewMLR(history, threshold) }
}

func mkSLR() predictorMaker {
	return func() predict.Predictor { return predict.NewSLR(predict.DefaultHistory, features.IdxPackets) }
}

func mkEWMA(alpha float64) predictorMaker {
	return func() predict.Predictor { return predict.NewEWMA(alpha) }
}

// Cost coefficients matching the system package's prediction-overhead
// accounting (Table 3.4).
const (
	expFeCostPerOp   = 25.0
	expFCBFCostPerOp = 4.0
	expMLRCostPerOp  = 6.0
)

// runPrediction drives the standalone prediction loop. warmup bins are
// excluded from the error series (the model needs history before its
// errors are meaningful).
func runPrediction(src trace.Source, qs []queries.Query, mk predictorMaker, warmup int) *predRun {
	src.Reset()
	model := queries.DefaultCostModel()
	ext := features.NewExtractor(0xfe)
	ext.StartInterval()

	r := &predRun{}
	preds := make([]predict.Predictor, len(qs))
	for i, q := range qs {
		q.Reset()
		preds[i] = mk()
		r.Queries = append(r.Queries, q.Name())
		r.Err = append(r.Err, nil)
		r.Pred = append(r.Pred, nil)
		r.Actual = append(r.Actual, nil)
		r.Features = append(r.Features, map[int]int{})
	}

	interval := qs[0].Interval()
	binsPerInterval := int(interval / src.TimeBin())
	if binsPerInterval < 1 {
		binsPerInterval = 1
	}

	bin := 0
	for {
		b, ok := src.NextBatch()
		if !ok {
			break
		}
		if bin > 0 && bin%binsPerInterval == 0 {
			for _, q := range qs {
				q.Flush()
			}
			ext.StartInterval()
		}
		opsBefore := ext.Ops
		fv := ext.Extract(&b)
		r.FeatureCycles += expFeCostPerOp * float64(ext.Ops-opsBefore)

		for i, q := range qs {
			var fcbf, fit int64
			mlr, isMLR := preds[i].(*predict.MLR)
			if isMLR {
				fcbf, fit = mlr.FCBFOps, mlr.FitOps
			}
			p := preds[i].Predict(fv)
			if isMLR {
				r.FCBFCycles += expFCBFCostPerOp * float64(mlr.FCBFOps-fcbf)
				r.MLRCycles += expMLRCostPerOp * float64(mlr.FitOps-fit)
				for _, f := range mlr.Selected() {
					r.Features[i][f]++
				}
			}
			actual := model.Cycles(q.Process(&b, 1))
			preds[i].Observe(fv, actual)
			r.Pred[i] = append(r.Pred[i], p)
			r.Actual[i] = append(r.Actual[i], actual)
			if bin >= warmup {
				r.Err[i] = append(r.Err[i], stats.RelErr(p, actual))
			}
		}
		bin++
	}
	r.Bins = bin
	r.PredictCycles = r.FeatureCycles + r.FCBFCycles + r.MLRCycles
	return r
}

// avgErrPerBin averages the per-query error series bin-wise.
func (r *predRun) avgErrPerBin() (xs, avg, max []float64) {
	if len(r.Err) == 0 {
		return nil, nil, nil
	}
	n := len(r.Err[0])
	for bin := 0; bin < n; bin++ {
		var sum, mx float64
		for q := range r.Err {
			e := r.Err[q][bin]
			sum += e
			if e > mx {
				mx = e
			}
		}
		xs = append(xs, float64(bin)/10) // seconds
		avg = append(avg, sum/float64(len(r.Err)))
		max = append(max, mx)
	}
	return xs, avg, max
}

// meanErr returns the mean error across all queries and bins.
func (r *predRun) meanErr() float64 {
	var all []float64
	for _, es := range r.Err {
		all = append(all, es...)
	}
	return stats.Mean(all)
}

// topFeatures names the most frequently selected features of query qi.
func (r *predRun) topFeatures(qi, n int) string {
	type fc struct {
		f, c int
	}
	var fcs []fc
	for f, c := range r.Features[qi] {
		fcs = append(fcs, fc{f, c})
	}
	for i := 1; i < len(fcs); i++ {
		for j := i; j > 0 && (fcs[j].c > fcs[j-1].c || (fcs[j].c == fcs[j-1].c && fcs[j].f < fcs[j-1].f)); j-- {
			fcs[j], fcs[j-1] = fcs[j-1], fcs[j]
		}
	}
	if len(fcs) > n {
		fcs = fcs[:n]
	}
	out := ""
	for i, x := range fcs {
		if i > 0 {
			out += ", "
		}
		out += features.Name(x.f)
	}
	return out
}

// schemeRun runs one scheme over a source and returns the result plus
// per-query mean errors against a reference.
func schemeRun(cfg loadshed.Config, src trace.Source, mkQs func() []queries.Query, ref *loadshed.RunResult) (*loadshed.RunResult, map[string]float64) {
	res := loadshed.New(cfg, mkQs()).Run(src)
	errs := loadshed.MeanErrors(mkQs(), res, ref)
	return res, errs
}

// meanAccuracy summarizes Accuracies output: the average accuracy over
// queries and intervals, plus the per-query means.
func meanAccuracy(accs map[string][]float64) (avg float64, min float64, byQuery map[string]float64) {
	byQuery = map[string]float64{}
	min = 1
	n := 0
	for q, as := range accs {
		m := stats.Mean(as)
		byQuery[q] = m
		avg += m
		if m < min {
			min = m
		}
		n++
	}
	if n > 0 {
		avg /= float64(n)
	}
	return avg, min, byQuery
}

// rateSampler applies a query's preferred sampling mechanism at a fixed
// rate, used by experiments that sweep sampling rates directly.
type rateSampler struct {
	ps *sampling.PacketSampler
	fs *sampling.FlowSampler
}

func newRateSampler(seed uint64) *rateSampler {
	return &rateSampler{
		ps: sampling.NewPacketSampler(seed),
		fs: sampling.NewFlowSampler(seed + 1),
	}
}

func (r *rateSampler) startInterval() { r.fs.StartInterval() }

func (r *rateSampler) sample(q queries.Query, pkts []pkt.Packet, rate float64) []pkt.Packet {
	if q.Method() == sampling.Flow {
		return r.fs.Sample(pkts, rate)
	}
	return r.ps.Sample(pkts, rate)
}
