// Package experiments contains one runnable reproduction per table and
// figure of the thesis evaluation. Each experiment is registered under
// the identifier used in DESIGN.md ("fig4.1", "tab3.2", ...) and
// produces tables and/or series that mirror the rows and curves the
// paper reports. cmd/lsrepro renders them as text; the root benchmark
// suite wraps each one in a testing.B target.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config scales an experiment run. Zero values select defaults chosen
// so the full suite completes in minutes on a laptop; Scale and Dur can
// be raised toward the paper's native traffic rates and durations.
type Config struct {
	Seed  uint64        // base seed; defaults to 1
	Scale float64       // traffic rate multiplier vs the paper's rates (default 0.1)
	Dur   time.Duration // per-run virtual duration (default 60 s)
	Quick bool          // shrink sweeps for benchmark use
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale == 0 {
		c.Scale = 0.1
	}
	if c.Dur == 0 {
		c.Dur = 60 * time.Second
	}
	return c
}

// dur returns the configured duration, halved in quick mode and bounded
// below by min.
func (c Config) dur(min time.Duration) time.Duration {
	d := c.Dur
	if c.Quick {
		d /= 2
	}
	if d < min {
		d = min
	}
	return d
}

// Table is a paper-style table: rows of pre-formatted cells.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a paper-style figure: one or more series over a labelled
// plane.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Result is everything an experiment produced.
type Result struct {
	ID      string
	Title   string
	Tables  []Table
	Figures []Figure
	Notes   []string
}

// Runner executes one experiment.
type Runner func(Config) (*Result, error)

type entry struct {
	id     string
	title  string
	runner Runner
}

var registry []entry

// register adds an experiment; called from init functions of the
// per-chapter files.
func register(id, title string, r Runner) {
	registry = append(registry, entry{id: id, title: title, runner: r})
}

// IDs returns all experiment identifiers in registration order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Titles maps experiment IDs to their one-line descriptions.
func Titles() map[string]string {
	out := make(map[string]string, len(registry))
	for _, e := range registry {
		out[e.id] = e.title
	}
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (*Result, error) {
	for _, e := range registry {
		if e.id == id {
			res, err := e.runner(cfg.withDefaults())
			if err != nil {
				return nil, fmt.Errorf("experiment %s: %w", id, err)
			}
			res.ID = e.id
			if res.Title == "" {
				res.Title = e.title
			}
			return res, nil
		}
	}
	return nil, fmt.Errorf("unknown experiment %q (see IDs())", id)
}

// Render writes a result as aligned text.
func Render(w io.Writer, r *Result) {
	fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	for _, t := range r.Tables {
		fmt.Fprintf(w, "\n-- %s: %s --\n", t.ID, t.Title)
		renderTable(w, t)
	}
	for _, f := range r.Figures {
		fmt.Fprintf(w, "\n-- %s: %s (%s vs %s) --\n", f.ID, f.Title, f.YLabel, f.XLabel)
		renderFigure(w, f)
	}
	fmt.Fprintln(w)
}

func renderTable(w io.Writer, t Table) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	for _, row := range t.Rows {
		sb.Reset()
		for i, cell := range row {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", width, cell)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
}

// renderFigure prints each series as a compact x/y listing, downsampled
// to at most maxPoints rows so time series stay readable.
func renderFigure(w io.Writer, f Figure) {
	const maxPoints = 24
	for _, s := range f.Series {
		fmt.Fprintf(w, "series %s (%d points)\n", s.Name, len(s.X))
		n := len(s.X)
		step := 1
		if n > maxPoints {
			step = (n + maxPoints - 1) / maxPoints
		}
		for i := 0; i < n; i += step {
			fmt.Fprintf(w, "  %12.4g  %12.6g\n", s.X[i], s.Y[i])
		}
	}
}

// fmtF formats a float for table cells.
func fmtF(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// fmtPct formats a fraction as a percentage cell.
func fmtPct(v float64) string {
	return fmt.Sprintf("%.2f%%", v*100)
}

// sortedKeys returns map keys in sorted order for deterministic tables.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
