package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func quickCfg() Config {
	return Config{Seed: 1, Scale: 0.05, Dur: 8 * time.Second, Quick: true}
}

func TestRegistryNonEmpty(t *testing.T) {
	ids := IDs()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	titles := Titles()
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate experiment id %q", id)
		}
		seen[id] = true
		if titles[id] == "" {
			t.Fatalf("experiment %q has no title", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

// TestAllExperimentsRun executes every registered experiment at a small
// scale and checks the outputs are well-formed and renderable. This is
// the repository's end-to-end regression net for the whole evaluation.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, quickCfg())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(res.Tables) == 0 && len(res.Figures) == 0 {
				t.Fatal("experiment produced no tables or figures")
			}
			for _, tb := range res.Tables {
				if len(tb.Columns) == 0 {
					t.Errorf("table %s has no columns", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Errorf("table %s: row width %d != %d columns", tb.ID, len(row), len(tb.Columns))
					}
				}
			}
			for _, f := range res.Figures {
				for _, s := range f.Series {
					if len(s.X) != len(s.Y) {
						t.Errorf("figure %s series %s: x/y length mismatch", f.ID, s.Name)
					}
				}
			}
			var buf bytes.Buffer
			Render(&buf, res)
			if !strings.Contains(buf.String(), res.ID) {
				t.Error("render output missing experiment id")
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run("fig2.2", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig2.2", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	Render(&ba, a)
	Render(&bb, b)
	if ba.String() != bb.String() {
		t.Fatal("same config produced different output")
	}
}
