package detect

import (
	"math"
	"testing"

	"repro/internal/hash"
)

// noisy returns a deterministic noise stream around mean m.
func noisyStream(rng *hash.XorShift, m, sigma float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m + sigma*rng.NormFloat64()
	}
	return out
}

func TestPageHinkleyDetectsLevelShift(t *testing.T) {
	rng := hash.NewXorShift(1)
	ph := PageHinkley{Delta: 0.02, Lambda: 0.6}
	for i, x := range noisyStream(rng, 0, 0.05, 400) {
		if fired, _ := ph.Observe(x); fired {
			t.Fatalf("false alarm on stationary stream at sample %d", i)
		}
	}
	firedAt := -1
	for i, x := range noisyStream(rng, 0.3, 0.05, 100) {
		if fired, _ := ph.Observe(x); fired {
			firedAt = i
			break
		}
	}
	if firedAt < 0 {
		t.Fatal("missed a 0.3 level shift after 100 samples")
	}
	if firedAt > 30 {
		t.Fatalf("took %d samples to notice the shift, want <= 30", firedAt)
	}
}

func TestCUSUMDetectsAndReArms(t *testing.T) {
	rng := hash.NewXorShift(2)
	c := CUSUM{Delta: 0.02, Lambda: 0.6}
	for i, x := range noisyStream(rng, 1.0, 0.05, 400) {
		if fired, _ := c.Observe(x); fired {
			t.Fatalf("false alarm on stationary stream at sample %d", i)
		}
	}
	fired := false
	for _, x := range noisyStream(rng, 0.6, 0.05, 100) {
		if f, _ := c.Observe(x); f {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("missed a downward level shift")
	}
	// After a reset at the new level, the adapting baseline re-arms:
	// the new level is not forever anomalous.
	c.Reset()
	for i, x := range noisyStream(rng, 0.6, 0.05, 200) {
		if f, _ := c.Observe(x); f {
			t.Fatalf("false alarm at the new level after reset, sample %d", i)
		}
	}
}

func TestDistDetectorDetectsFeatureShift(t *testing.T) {
	const nf = 8
	rng := hash.NewXorShift(3)
	d := NewDistDetector(24, 4, nf)
	f := make([]float64, nf)
	emit := func(scale float64) (bool, float64) {
		for j := range f {
			f[j] = scale*float64(j+1) + 0.1*rng.NormFloat64()
		}
		return d.Observe(f)
	}
	for i := 0; i < 300; i++ {
		if fired, _ := emit(1.0); fired {
			t.Fatalf("false alarm on stationary features at bin %d", i)
		}
	}
	firedAt := -1
	for i := 0; i < 100; i++ {
		if fired, _ := emit(3.0); fired {
			firedAt = i
			break
		}
	}
	if firedAt < 0 {
		t.Fatal("missed a 3x feature scale shift")
	}
	if firedAt > 48 {
		t.Fatalf("took %d bins to notice the shift, want within two windows", firedAt)
	}
}

func TestDetectorVerdictAndCooldown(t *testing.T) {
	const nf = 4
	rng := hash.NewXorShift(4)
	d := New(Config{Cooldown: 10}, nf)
	f := make([]float64, nf)
	obs := func(m float64) Verdict {
		for j := range f {
			f[j] = 1 + 0.05*rng.NormFloat64()
		}
		return d.Observe(f, m+0.03*rng.NormFloat64())
	}
	for i := 0; i < 200; i++ {
		if v := obs(0); v.Change {
			t.Fatalf("false alarm at bin %d (score %.3f source %s)", i, v.Score, v.Source)
		}
	}
	firedAt := -1
	for i := 0; i < 100; i++ {
		if v := obs(0.5); v.Change {
			if v.Source == "" {
				t.Fatal("change verdict without a source")
			}
			firedAt = i
			break
		}
	}
	if firedAt < 0 {
		t.Fatal("missed a residual bias")
	}
	if d.Changes() != 1 {
		t.Fatalf("Changes() = %d, want 1", d.Changes())
	}
	// Cooldown: the next Cooldown bins stay silent even under bias.
	for i := 0; i < 10; i++ {
		if v := obs(0.5); v.Change {
			t.Fatalf("verdict during cooldown at bin %d", i)
		}
	}
}

func TestDetectorInfThresholdsNeverFire(t *testing.T) {
	const nf = 4
	d := New(Config{
		ResidualLambda: math.Inf(1),
		DistThreshold:  math.Inf(1),
	}, nf)
	f := make([]float64, nf)
	for i := 0; i < 500; i++ {
		m := 0.0
		if i > 250 {
			m = 10 // violent shift; Inf thresholds must still hold
		}
		for j := range f {
			f[j] = m + float64(j)
		}
		if v := d.Observe(f, m); v.Change {
			t.Fatalf("Inf-threshold detector fired at bin %d", i)
		}
	}
	if d.Changes() != 0 {
		t.Fatalf("Changes() = %d, want 0", d.Changes())
	}
}

func TestDetectorStateRoundTrip(t *testing.T) {
	const nf = 6
	mk := func() (*Detector, *hash.XorShift) {
		return New(Config{}, nf), hash.NewXorShift(6)
	}
	a, rngA := mk()
	f := make([]float64, nf)
	feed := func(d *Detector, rng *hash.XorShift, n int, m float64) []Verdict {
		out := make([]Verdict, 0, n)
		for i := 0; i < n; i++ {
			for j := range f {
				f[j] = m + 0.1*rng.NormFloat64()
			}
			out = append(out, d.Observe(f, 0.01*rng.NormFloat64()+m/10))
		}
		return out
	}
	feed(a, rngA, 137, 1.0)

	// Snapshot a, install into a fresh detector, then drive both with
	// identical tails (including a shift) and require identical verdicts.
	st := a.State()
	b, _ := mk()
	if err := b.SetState(st); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	rngB := hash.NewXorShift(0)
	rngB.SetState(rngA.State())
	va := feed(a, rngA, 200, 2.5)
	vb := feed(b, rngB, 200, 2.5)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("verdict %d diverged after restore: %+v vs %+v", i, va[i], vb[i])
		}
	}
	if a.Changes() != b.Changes() || a.LastChangeBin() != b.LastChangeBin() {
		t.Fatalf("counters diverged: (%d,%d) vs (%d,%d)", a.Changes(), a.LastChangeBin(), b.Changes(), b.LastChangeBin())
	}

	c, _ := mk()
	bad := a.State()
	bad.RefSum = bad.RefSum[:nf-1]
	if err := c.SetState(bad); err == nil {
		t.Fatal("SetState accepted a feature-count mismatch")
	}
}

func TestObserveAllocationFree(t *testing.T) {
	const nf = 42
	rng := hash.NewXorShift(7)
	d := New(Config{}, nf)
	f := make([]float64, nf)
	for i := 0; i < 100; i++ { // warm up past both windows
		for j := range f {
			f[j] = 1 + 0.1*rng.NormFloat64()
		}
		d.Observe(f, 0.01*rng.NormFloat64())
	}
	allocs := testing.AllocsPerRun(200, func() {
		d.Observe(f, 0.001)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f/op in steady state, want 0", allocs)
	}
}
