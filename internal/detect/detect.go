// Package detect implements online change detection over the per-bin
// signals the engine already produces: the extracted feature vector
// (features.Extractor) and the prediction residual (how far the MLR
// model's cost estimate landed from the cost actually observed).
//
// Two detector families run side by side, covering the two ways a
// traffic regime change manifests:
//
//   - Sequential tests over the residual stream (Page–Hinkley and
//     CUSUM). A drift in the feature→cost relationship shows up as a
//     persistent bias in the residuals long before the per-bin error
//     is individually alarming; PH/CUSUM accumulate that bias and fire
//     when the accumulated deviation from the running mean exceeds a
//     threshold. This catches changes the model *feels*.
//
//   - A windowed distribution-distance test over the feature vectors,
//     in the style of Rzepka & Chołda's flow-network change metrics:
//     two adjacent sliding windows (reference vs current), with the
//     distance defined as the mean standardized shift of each feature's
//     window mean. This catches changes the model might *mask* —
//     e.g. a topology shift the regression happens to absorb — because
//     it looks at the input distribution directly.
//
// Everything here follows the PR 4–5 allocation discipline: all rings
// and scratch are sized at construction, and Observe is allocation-free
// in steady state (guarded by an AllocsPerRun test).
package detect

import "math"

// Config carries the detector thresholds. The zero value of any field
// selects the default written next to it; to disable one side entirely,
// set its threshold to math.Inf(1).
type Config struct {
	// ResidualDelta is the magnitude of residual bias (in residual
	// units) that PH/CUSUM tolerate before accumulating. Default 0.02.
	ResidualDelta float64
	// ResidualLambda is the accumulated-deviation threshold at which
	// the sequential tests fire. Default 0.6.
	ResidualLambda float64
	// Window is the per-side length (in bins) of the reference and
	// current feature windows. Default 24.
	Window int
	// DistThreshold is the mean standardized feature shift (z-score
	// units) at which the distribution test fires. Default 4.
	DistThreshold float64
	// Cooldown is the number of bins after a verdict during which the
	// detector stays silent while the model refits. Default 16.
	Cooldown int
	// Warmup is the number of bins observed before the sequential
	// tests arm (the first residuals come from an unfitted model and
	// are not evidence of change). Default 12.
	Warmup int
}

func (c Config) withDefaults() Config {
	if c.ResidualDelta == 0 {
		c.ResidualDelta = 0.02
	}
	if c.ResidualLambda == 0 {
		c.ResidualLambda = 0.6
	}
	if c.Window == 0 {
		c.Window = 24
	}
	if c.DistThreshold == 0 {
		c.DistThreshold = 4
	}
	if c.Cooldown == 0 {
		c.Cooldown = 16
	}
	if c.Warmup == 0 {
		c.Warmup = 12
	}
	return c
}

// Verdict is the outcome of one Observe call.
type Verdict struct {
	Change bool    // a change fired this bin
	Score  float64 // max of the sub-detector scores, 1.0 = threshold
	Source string  // which sub-detector fired ("ph", "cusum", "dist"), "" if none
}

// PageHinkley is the classic two-sided Page–Hinkley test over a scalar
// stream: it tracks the incremental running mean and the cumulative
// deviation from it, and fires when the deviation drifts more than
// Lambda away from its historical extremum in either direction.
type PageHinkley struct {
	Delta  float64
	Lambda float64

	n    int64
	mean float64
	mUp  float64 // cumulative (x - mean - delta)
	mDn  float64 // cumulative (x - mean + delta)
	minU float64 // running min of mUp (upward drift raises mUp above it)
	maxD float64 // running max of mDn (downward drift sinks mDn below it)
}

// Reset clears all accumulated state.
func (p *PageHinkley) Reset() {
	p.n, p.mean = 0, 0
	p.mUp, p.mDn, p.minU, p.maxD = 0, 0, 0, 0
}

// Observe feeds one sample and reports whether the test fires, plus the
// test statistic normalized so that 1.0 is the firing threshold.
func (p *PageHinkley) Observe(x float64) (bool, float64) {
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.mUp += x - p.mean - p.Delta
	p.mDn += x - p.mean + p.Delta
	if p.mUp < p.minU {
		p.minU = p.mUp
	}
	if p.mDn > p.maxD {
		p.maxD = p.mDn
	}
	stat := p.mUp - p.minU
	if d := p.maxD - p.mDn; d > stat {
		stat = d
	}
	return stat > p.Lambda, stat / p.Lambda
}

// CUSUM is a two-sided cumulative-sum test against a slowly adapting
// EWMA baseline: one-sided sums accumulate deviations beyond Delta and
// clamp at zero, firing when either exceeds Lambda. Compared to
// Page–Hinkley its baseline forgets, so it re-arms after a sustained
// level shift instead of treating the new level as forever anomalous.
type CUSUM struct {
	Delta  float64
	Lambda float64
	Alpha  float64 // baseline EWMA weight, default 0.05

	seeded bool
	base   float64
	sUp    float64
	sDn    float64
}

// Reset clears accumulated state including the baseline.
func (c *CUSUM) Reset() {
	c.seeded, c.base, c.sUp, c.sDn = false, 0, 0, 0
}

// Observe feeds one sample; same contract as PageHinkley.Observe.
func (c *CUSUM) Observe(x float64) (bool, float64) {
	alpha := c.Alpha
	if alpha == 0 {
		alpha = 0.05
	}
	if !c.seeded {
		c.seeded, c.base = true, x
		return false, 0
	}
	c.sUp = math.Max(0, c.sUp+x-c.base-c.Delta)
	c.sDn = math.Max(0, c.sDn+c.base-x-c.Delta)
	c.base += alpha * (x - c.base)
	stat := math.Max(c.sUp, c.sDn)
	return stat > c.Lambda, stat / c.Lambda
}

// DistDetector compares the feature distribution of the last Window
// bins against the Window bins before them. Per-feature running sums
// and sums of squares for both windows are maintained incrementally as
// samples slide from the current window into the reference window and
// out, so each Observe is O(features) with no allocation. The distance
// is the mean over features of |mean_cur - mean_ref| / (sigma_ref + eps)
// with eps scaled to the reference mean's magnitude, which keeps
// near-constant features from dividing by ~zero.
type DistDetector struct {
	Window    int
	Threshold float64

	nf   int
	ring []float64 // 2*Window flattened vectors, oldest-first circular
	head int       // next slot to overwrite
	n    int       // samples currently held, caps at 2*Window

	refSum, refSq []float64 // sums over the older Window samples
	curSum, curSq []float64 // sums over the newer Window samples
}

// NewDistDetector sizes a detector for feature vectors of length nf.
func NewDistDetector(window int, threshold float64, nf int) *DistDetector {
	return &DistDetector{
		Window:    window,
		Threshold: threshold,
		nf:        nf,
		ring:      make([]float64, 2*window*nf),
		refSum:    make([]float64, nf),
		refSq:     make([]float64, nf),
		curSum:    make([]float64, nf),
		curSq:     make([]float64, nf),
	}
}

// Reset empties both windows.
func (d *DistDetector) Reset() {
	d.head, d.n = 0, 0
	for i := range d.refSum {
		d.refSum[i], d.refSq[i] = 0, 0
		d.curSum[i], d.curSq[i] = 0, 0
	}
}

// slot returns the flattened ring slice for logical index i back from
// the newest sample (i=0 is the newest).
func (d *DistDetector) slot(back int) []float64 {
	idx := (d.head - 1 - back + 4*d.Window) % (2 * d.Window)
	return d.ring[idx*d.nf : (idx+1)*d.nf]
}

// Observe feeds one feature vector (len nf); same contract as
// PageHinkley.Observe. The test is silent until both windows are full.
func (d *DistDetector) Observe(f []float64) (bool, float64) {
	w := d.Window
	// Retire: the sample leaving the current window (if full) moves to
	// the reference window; the sample leaving the reference window
	// (if full) leaves entirely.
	if d.n >= 2*w {
		old := d.slot(2*w - 1)
		for i, v := range old {
			d.refSum[i] -= v
			d.refSq[i] -= v * v
		}
	}
	if d.n >= w {
		mid := d.slot(w - 1)
		for i, v := range mid {
			d.curSum[i] -= v
			d.curSq[i] -= v * v
			d.refSum[i] += v
			d.refSq[i] += v * v
		}
	}
	// Admit the new sample into the current window.
	dst := d.ring[d.head*d.nf : (d.head+1)*d.nf]
	copy(dst, f)
	d.head = (d.head + 1) % (2 * w)
	if d.n < 2*w {
		d.n++
	}
	for i, v := range f {
		d.curSum[i] += v
		d.curSq[i] += v * v
	}
	if d.n < 2*w {
		return false, 0
	}
	// Mean standardized shift across features.
	fw := float64(w)
	sum := 0.0
	for i := 0; i < d.nf; i++ {
		mr := d.refSum[i] / fw
		mc := d.curSum[i] / fw
		varr := d.refSq[i]/fw - mr*mr
		if varr < 0 {
			varr = 0
		}
		eps := 1e-9 + 0.02*math.Abs(mr)
		sum += math.Abs(mc-mr) / (math.Sqrt(varr) + eps)
	}
	dist := sum / float64(d.nf)
	return dist > d.Threshold, dist / d.Threshold
}

// Detector combines the sequential residual tests with the feature
// distribution test under a shared cooldown, producing one Verdict per
// bin for the engine to act on.
type Detector struct {
	cfg   Config
	ph    PageHinkley
	cusum CUSUM
	dist  *DistDetector

	bins    int64 // bins observed since construction/restore
	cool    int   // bins of silence remaining after a verdict
	changes int64 // total verdicts fired
	lastBin int64 // bin index of the last verdict, -1 if none
}

// New builds a detector for feature vectors of length nf. The zero
// Config selects the documented defaults.
func New(cfg Config, nf int) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{
		cfg:     cfg,
		ph:      PageHinkley{Delta: cfg.ResidualDelta, Lambda: cfg.ResidualLambda},
		cusum:   CUSUM{Delta: cfg.ResidualDelta, Lambda: cfg.ResidualLambda},
		dist:    NewDistDetector(cfg.Window, cfg.DistThreshold, nf),
		lastBin: -1,
	}
}

// Changes reports how many change verdicts have fired in total.
func (d *Detector) Changes() int64 { return d.changes }

// LastChangeBin reports the observation index (0-based, counted across
// the detector's lifetime) of the most recent verdict, or -1.
func (d *Detector) LastChangeBin() int64 { return d.lastBin }

// Observe feeds one bin's feature vector and prediction residual and
// returns the combined verdict. On a change verdict the sequential
// tests reset and both feature windows clear, so the post-change regime
// becomes the new baseline; a cooldown then suppresses further verdicts
// while the predictor refits.
func (d *Detector) Observe(f []float64, residual float64) Verdict {
	d.bins++
	warm := d.bins > int64(d.cfg.Warmup)
	var v Verdict
	if warm {
		fired, score := d.ph.Observe(residual)
		if score > v.Score {
			v.Score = score
		}
		if fired {
			v.Change, v.Source = true, "ph"
		}
		fired, score = d.cusum.Observe(residual)
		if score > v.Score {
			v.Score = score
		}
		if fired && !v.Change {
			v.Change, v.Source = true, "cusum"
		}
	}
	fired, score := d.dist.Observe(f)
	if score > v.Score {
		v.Score = score
	}
	if fired && !v.Change {
		v.Change, v.Source = true, "dist"
	}
	if d.cool > 0 {
		d.cool--
		v.Change, v.Source = false, ""
		return v
	}
	if v.Change {
		d.changes++
		d.lastBin = d.bins - 1
		d.cool = d.cfg.Cooldown
		d.ph.Reset()
		d.cusum.Reset()
		d.dist.Reset()
	}
	return v
}
