package detect

import "fmt"

// State is the gob-encodable checkpoint of a Detector, captured with
// Detector.State and installed with SetState. Like predict.HistoryState
// it copies ring storage in slot order, so a restored detector replays
// the remainder of a stream bit-identically to one that never stopped.
type State struct {
	Bins    int64
	Cool    int
	Changes int64
	LastBin int64

	// Page–Hinkley accumulators.
	PHN    int64
	PHMean float64
	PHUp   float64
	PHDn   float64
	PHMinU float64
	PHMaxD float64

	// CUSUM accumulators.
	CSeeded bool
	CBase   float64
	CUp     float64
	CDn     float64

	// Distribution-distance windows.
	DistRing []float64
	DistHead int
	DistN    int
	RefSum   []float64
	RefSq    []float64
	CurSum   []float64
	CurSq    []float64
}

// State captures the detector's accumulated state.
func (d *Detector) State() State {
	st := State{
		Bins:    d.bins,
		Cool:    d.cool,
		Changes: d.changes,
		LastBin: d.lastBin,
		PHN:     d.ph.n,
		PHMean:  d.ph.mean,
		PHUp:    d.ph.mUp,
		PHDn:    d.ph.mDn,
		PHMinU:  d.ph.minU,
		PHMaxD:  d.ph.maxD,
		CSeeded: d.cusum.seeded,
		CBase:   d.cusum.base,
		CUp:     d.cusum.sUp,
		CDn:     d.cusum.sDn,
		DistRing: append([]float64(nil), d.dist.ring...),
		DistHead: d.dist.head,
		DistN:    d.dist.n,
		RefSum:   append([]float64(nil), d.dist.refSum...),
		RefSq:    append([]float64(nil), d.dist.refSq...),
		CurSum:   append([]float64(nil), d.dist.curSum...),
		CurSq:    append([]float64(nil), d.dist.curSq...),
	}
	return st
}

// SetState installs a checkpoint captured from a detector with the same
// Config and feature count; dimension mismatches are reported rather
// than installed torn.
func (d *Detector) SetState(st State) error {
	if len(st.DistRing) != len(d.dist.ring) {
		return fmt.Errorf("detect: state ring has %d floats, detector holds %d (Window or feature-count mismatch)", len(st.DistRing), len(d.dist.ring))
	}
	if len(st.RefSum) != d.dist.nf {
		return fmt.Errorf("detect: state has %d features, detector expects %d", len(st.RefSum), d.dist.nf)
	}
	d.bins, d.cool, d.changes, d.lastBin = st.Bins, st.Cool, st.Changes, st.LastBin
	d.ph.n, d.ph.mean = st.PHN, st.PHMean
	d.ph.mUp, d.ph.mDn, d.ph.minU, d.ph.maxD = st.PHUp, st.PHDn, st.PHMinU, st.PHMaxD
	d.cusum.seeded, d.cusum.base = st.CSeeded, st.CBase
	d.cusum.sUp, d.cusum.sDn = st.CUp, st.CDn
	copy(d.dist.ring, st.DistRing)
	d.dist.head, d.dist.n = st.DistHead, st.DistN
	copy(d.dist.refSum, st.RefSum)
	copy(d.dist.refSq, st.RefSq)
	copy(d.dist.curSum, st.CurSum)
	copy(d.dist.curSq, st.CurSq)
	return nil
}
