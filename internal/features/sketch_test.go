package features

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/pkt"
	"repro/internal/trace"
)

// sketchTrace records a couple of seconds of generator batches so the
// chunk-equivalence tests see real-ish key distributions, not toy rows.
func sketchTrace(t testing.TB) []pkt.Batch {
	g := trace.NewGenerator(trace.Config{Seed: 31, Duration: 2 * time.Second, PacketsPerSec: 6000})
	batches := trace.Record(g)
	if len(batches) == 0 {
		t.Fatal("generator produced no batches")
	}
	return batches
}

// inlineRun satisfies ChunkSketcher.Fill's run contract on the calling
// goroutine — the degenerate "pool" used to isolate chunking from
// concurrency.
func inlineRun(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// goRun fans fn out over real goroutines, the shape the engine's front
// stage uses.
func goRun(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(i)
	}
	wg.Wait()
}

// TestChunkSketchEquivalence is the determinism contract of the
// batch-parallel front stage: sketching a batch in k chunks and merging
// the staging sketches in index order must produce vectors bit-identical
// to the sequential single-chunk sketch, for any k and whether the
// chunks run inline or on concurrent goroutines.
func TestChunkSketchEquivalence(t *testing.T) {
	batches := sketchTrace(t)
	for _, workers := range []int{1, 2, 3, 4, 7} {
		for _, mode := range []string{"inline", "goroutines"} {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(t *testing.T) {
				run := inlineRun
				if mode == "goroutines" {
					run = goRun
				}
				seqExt := NewExtractor(9)
				parExt := NewExtractor(9)
				cs := NewChunkSketcher(parExt, workers)
				seqSk, parSk := NewSketch(), NewSketch()
				seqExt.StartInterval()
				parExt.StartInterval()
				for _, b := range batches {
					seqExt.SketchInto(seqSk, b.Pkts)
					cs.Fill(parSk, b.Pkts, run)
					if seqSk.Pkts() != parSk.Pkts() {
						t.Fatalf("chunked sketch saw %d pkts, sequential %d", parSk.Pkts(), seqSk.Pkts())
					}
					np, nb := float64(b.Packets()), float64(b.Bytes())
					seqV := append(Vector(nil), seqExt.ExtractFromSketch(seqSk, np, nb)...)
					parV := append(Vector(nil), parExt.ExtractFromSketch(parSk, np, nb)...)
					if !reflect.DeepEqual(seqV, parV) {
						t.Fatalf("vectors diverged:\nseq %v\npar %v", seqV, parV)
					}
				}
				if !reflect.DeepEqual(seqExt.IntervalEstimates(), parExt.IntervalEstimates()) {
					t.Fatal("interval estimates diverged between sequential and chunked sketching")
				}
			})
		}
	}
}

// TestSketchMatchesExtract pins the sketch/finish split to the one-shot
// Extract path: SketchInto + ExtractFromSketch on a second extractor
// with the same seed must reproduce Extract bit for bit, including the
// Ops accounting the engine charges from sk.Ops().
func TestSketchMatchesExtract(t *testing.T) {
	batches := sketchTrace(t)
	whole := NewExtractor(4)
	split := NewExtractor(4)
	sk := NewSketch()
	whole.StartInterval()
	split.StartInterval()
	for _, b := range batches {
		want := append(Vector(nil), whole.Extract(&b)...)
		split.SketchInto(sk, b.Pkts)
		split.Ops += sk.Ops()
		got := split.ExtractFromSketch(sk, float64(b.Packets()), float64(b.Bytes()))
		if !reflect.DeepEqual(want, append(Vector(nil), got...)) {
			t.Fatalf("split extraction diverged from Extract:\nwant %v\ngot  %v", want, got)
		}
	}
	if whole.Ops != split.Ops {
		t.Fatalf("Ops accounting diverged: Extract %d, sketch path %d", whole.Ops, split.Ops)
	}
}

// TestChunkSketchFillAllocFree proves a warmed ChunkSketcher fills
// without allocating — the property that lets the pipelined front stage
// keep the PR 4-5 zero-alloc steady state.
func TestChunkSketchFillAllocFree(t *testing.T) {
	batches := sketchTrace(t)
	ext := NewExtractor(2)
	cs := NewChunkSketcher(ext, 4)
	dst := NewSketch()
	ext.StartInterval()
	cs.Fill(dst, batches[0].Pkts, inlineRun) // warm hash staging buffers
	allocs := testing.AllocsPerRun(20, func() {
		for _, b := range batches {
			cs.Fill(dst, b.Pkts, inlineRun)
			ext.ExtractFromSketch(dst, float64(b.Packets()), float64(b.Bytes()))
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed ChunkSketcher fill allocated %v times per run, want 0", allocs)
	}
}
