// Package features implements the traffic-feature extraction of thesis
// §3.2.1: for every 100 ms batch it computes the packet count, the byte
// count and, for each of the ten header aggregates of Table 3.1, four
// item counters — unique items in the batch, new items relative to the
// current measurement interval, repeated items in the batch and repeated
// items relative to the interval — for a total of 42 features.
//
// Distinct counting uses multi-resolution bitmaps so the per-packet cost
// is deterministic: one H3 hash and one bitmap write per aggregate.
package features

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/hash"
	"repro/internal/pkt"
)

// Counter kinds per aggregate, in vector order.
const (
	kindUnique = iota
	kindNew
	kindRepeated    // packets in batch minus unique items
	kindIntRepeated // packets in batch minus new items
	kindsPerAgg
)

// NumFeatures is the length of a feature vector: packets, bytes, and
// four counters for each of the ten aggregates.
const NumFeatures = 2 + pkt.NumAggregates*kindsPerAgg

// Feature vector indices for the two scalar features.
const (
	IdxPackets = 0
	IdxBytes   = 1
)

// Idx returns the vector index of the given counter kind (kindUnique..
// kindIntRepeated) for aggregate a.
func idx(a pkt.Aggregate, kind int) int {
	return 2 + int(a)*kindsPerAgg + kind
}

// IdxUnique returns the index of the unique-items feature of aggregate a.
func IdxUnique(a pkt.Aggregate) int { return idx(a, kindUnique) }

// IdxNew returns the index of the new-items feature of aggregate a.
func IdxNew(a pkt.Aggregate) int { return idx(a, kindNew) }

// IdxRepeated returns the index of the batch-repeated feature of a.
func IdxRepeated(a pkt.Aggregate) int { return idx(a, kindRepeated) }

// IdxIntRepeated returns the index of the interval-repeated feature of a.
func IdxIntRepeated(a pkt.Aggregate) int { return idx(a, kindIntRepeated) }

// Vector is one batch's feature values, indexed by the Idx* helpers.
type Vector []float64

// Name returns a short human-readable name for feature index i, in the
// style the thesis uses in Table 3.2 ("new 5-tuple", "packets", ...).
func Name(i int) string {
	switch i {
	case IdxPackets:
		return "packets"
	case IdxBytes:
		return "bytes"
	}
	a := pkt.Aggregate((i - 2) / kindsPerAgg)
	switch (i - 2) % kindsPerAgg {
	case kindUnique:
		return fmt.Sprintf("unique %s", a)
	case kindNew:
		return fmt.Sprintf("new %s", a)
	case kindRepeated:
		return fmt.Sprintf("repeated %s", a)
	default:
		return fmt.Sprintf("int-repeated %s", a)
	}
}

// Names returns the names of all features in vector order.
func Names() []string {
	out := make([]string, NumFeatures)
	for i := range out {
		out[i] = Name(i)
	}
	return out
}

// Extractor computes feature vectors from batches. It keeps two bitmaps
// per aggregate: one reset per batch (unique counts) and one reset per
// measurement interval (new counts); the interval bitmap is updated by
// ORing the batch bitmap into it, exactly as described in §3.2.1.
//
// The zero value is unusable; construct with NewExtractor.
type Extractor struct {
	h3       [pkt.NumAggregates]*hash.H3
	batch    [pkt.NumAggregates]*bitmap.MultiRes
	interval [pkt.NumAggregates]*bitmap.MultiRes
	intEst   [pkt.NumAggregates]float64 // current interval-bitmap estimate
	keyBuf   []byte

	// Ops counts hash+insert operations performed, so the experiment
	// harness can charge feature extraction its deterministic cost
	// (Table 3.4).
	Ops int64
}

// NewExtractor returns an extractor whose hash functions derive from
// seed.
func NewExtractor(seed uint64) *Extractor {
	e := &Extractor{keyBuf: make([]byte, 0, 16)}
	for a := 0; a < pkt.NumAggregates; a++ {
		e.h3[a] = hash.NewH3(seed + uint64(a)*0x9e3779b97f4a7c15)
		e.batch[a] = bitmap.NewMultiRes(2048, 16)
		e.interval[a] = bitmap.NewMultiRes(2048, 16)
	}
	return e
}

// StartInterval resets the per-interval state. Call it at every
// measurement-interval boundary before extracting the interval's first
// batch.
func (e *Extractor) StartInterval() {
	for a := 0; a < pkt.NumAggregates; a++ {
		e.interval[a].Reset()
		e.intEst[a] = 0
	}
}

// IntervalEstimates returns the current distinct-count estimate of each
// aggregate's interval bitmap. A freshly rotated extractor reports all
// zeros; regression tests use this to compare an extractor's interval
// state against a fresh-extractor oracle.
func (e *Extractor) IntervalEstimates() []float64 {
	out := make([]float64, pkt.NumAggregates)
	copy(out, e.intEst[:])
	return out
}

// ExtractFromBatchOf computes a feature vector for the batch most
// recently extracted by src, relative to e's own interval state. It
// merges src's per-batch bitmaps into e's interval bitmaps instead of
// re-hashing every packet, which is exactly what a query whose sampling
// rate is 1 can do: its stream is identical to the full stream, so no
// re-extraction is needed (§4.3 — features are only re-extracted "after
// sampling"). Both extractors must share bitmap geometry (they do, by
// construction).
func (e *Extractor) ExtractFromBatchOf(src *Extractor, npkts, nbytes float64) Vector {
	v := make(Vector, NumFeatures)
	v[IdxPackets] = npkts
	v[IdxBytes] = nbytes
	for a := 0; a < pkt.NumAggregates; a++ {
		unique := src.batch[a].Estimate()
		e.interval[a].MergeFrom(src.batch[a])
		after := e.interval[a].Estimate()
		newItems := after - e.intEst[a]
		e.intEst[a] = after
		if newItems < 0 {
			newItems = 0
		}
		if unique > npkts {
			unique = npkts
		}
		if newItems > unique {
			newItems = unique
		}
		agg := pkt.Aggregate(a)
		v[IdxUnique(agg)] = unique
		v[IdxNew(agg)] = newItems
		v[IdxRepeated(agg)] = npkts - unique
		v[IdxIntRepeated(agg)] = npkts - newItems
	}
	return v
}

// Extract computes the feature vector of b.
func (e *Extractor) Extract(b *pkt.Batch) Vector {
	v := make(Vector, NumFeatures)
	v[IdxPackets] = float64(b.Packets())
	v[IdxBytes] = float64(b.Bytes())

	for a := 0; a < pkt.NumAggregates; a++ {
		e.batch[a].Reset()
	}
	for i := range b.Pkts {
		p := &b.Pkts[i]
		for a := 0; a < pkt.NumAggregates; a++ {
			e.keyBuf = p.AppendAggKey(e.keyBuf[:0], pkt.Aggregate(a))
			h := hash.Mix64(e.h3[a].Hash(e.keyBuf))
			e.batch[a].Insert(h)
			e.Ops++
		}
	}

	npkts := v[IdxPackets]
	for a := 0; a < pkt.NumAggregates; a++ {
		unique := e.batch[a].Estimate()
		e.interval[a].MergeFrom(e.batch[a])
		after := e.interval[a].Estimate()
		newItems := after - e.intEst[a]
		e.intEst[a] = after
		if newItems < 0 {
			newItems = 0
		}
		if unique > npkts {
			unique = npkts
		}
		if newItems > unique {
			newItems = unique
		}
		agg := pkt.Aggregate(a)
		v[IdxUnique(agg)] = unique
		v[IdxNew(agg)] = newItems
		v[IdxRepeated(agg)] = npkts - unique
		v[IdxIntRepeated(agg)] = npkts - newItems
	}
	return v
}
