// Package features implements the traffic-feature extraction of thesis
// §3.2.1: for every 100 ms batch it computes the packet count, the byte
// count and, for each of the ten header aggregates of Table 3.1, four
// item counters — unique items in the batch, new items relative to the
// current measurement interval, repeated items in the batch and repeated
// items relative to the interval — for a total of 42 features.
//
// Distinct counting uses multi-resolution bitmaps so the per-packet cost
// is deterministic: one H3 hash and one bitmap write per aggregate.
package features

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/hash"
	"repro/internal/pkt"
)

// Counter kinds per aggregate, in vector order.
const (
	kindUnique = iota
	kindNew
	kindRepeated    // packets in batch minus unique items
	kindIntRepeated // packets in batch minus new items
	kindsPerAgg
)

// NumFeatures is the length of a feature vector: packets, bytes, and
// four counters for each of the ten aggregates.
const NumFeatures = 2 + pkt.NumAggregates*kindsPerAgg

// Feature vector indices for the two scalar features.
const (
	IdxPackets = 0
	IdxBytes   = 1
)

// Idx returns the vector index of the given counter kind (kindUnique..
// kindIntRepeated) for aggregate a.
func idx(a pkt.Aggregate, kind int) int {
	return 2 + int(a)*kindsPerAgg + kind
}

// IdxUnique returns the index of the unique-items feature of aggregate a.
func IdxUnique(a pkt.Aggregate) int { return idx(a, kindUnique) }

// IdxNew returns the index of the new-items feature of aggregate a.
func IdxNew(a pkt.Aggregate) int { return idx(a, kindNew) }

// IdxRepeated returns the index of the batch-repeated feature of a.
func IdxRepeated(a pkt.Aggregate) int { return idx(a, kindRepeated) }

// IdxIntRepeated returns the index of the interval-repeated feature of a.
func IdxIntRepeated(a pkt.Aggregate) int { return idx(a, kindIntRepeated) }

// Vector is one batch's feature values, indexed by the Idx* helpers.
type Vector []float64

// Name returns a short human-readable name for feature index i, in the
// style the thesis uses in Table 3.2 ("new 5-tuple", "packets", ...).
func Name(i int) string {
	switch i {
	case IdxPackets:
		return "packets"
	case IdxBytes:
		return "bytes"
	}
	a := pkt.Aggregate((i - 2) / kindsPerAgg)
	switch (i - 2) % kindsPerAgg {
	case kindUnique:
		return fmt.Sprintf("unique %s", a)
	case kindNew:
		return fmt.Sprintf("new %s", a)
	case kindRepeated:
		return fmt.Sprintf("repeated %s", a)
	default:
		return fmt.Sprintf("int-repeated %s", a)
	}
}

// Names returns the names of all features in vector order.
func Names() []string {
	out := make([]string, NumFeatures)
	for i := range out {
		out[i] = Name(i)
	}
	return out
}

// Extractor computes feature vectors from batches. It keeps two bitmaps
// per aggregate: one reset per batch (unique counts) and one reset per
// measurement interval (new counts); the interval bitmap is updated by
// ORing the batch bitmap into it, exactly as described in §3.2.1.
//
// The extractor is built for the fast path: per packet it pays one
// field-wise H3 hash (hash.H3.HashAgg — no key serialization) and one
// bitmap write per aggregate, and the whole extraction allocates
// nothing after warm-up — Extract and ExtractFromBatchOf return an
// internal scratch vector that is overwritten by the next extraction
// call on the same Extractor (copy it to retain it; predict.History
// does). Use ExtractInto to supply your own destination.
//
// The zero value is unusable; construct with NewExtractor.
type Extractor struct {
	h3       [pkt.NumAggregates]*hash.H3
	batch    [pkt.NumAggregates]*bitmap.MultiRes
	interval [pkt.NumAggregates]*bitmap.MultiRes
	intEst   [pkt.NumAggregates]float64 // current interval-bitmap estimate
	scratch  Vector                     // returned by Extract/ExtractFromBatchOf
	hashBuf  []uint64                   // per-aggregate hash staging, sized to the largest batch seen

	// Ops counts hash+insert operations performed, so the experiment
	// harness can charge feature extraction its deterministic cost
	// (Table 3.4).
	Ops int64
}

// NewExtractor returns an extractor whose hash functions derive from
// seed.
func NewExtractor(seed uint64) *Extractor {
	e := &Extractor{scratch: make(Vector, NumFeatures)}
	for a := 0; a < pkt.NumAggregates; a++ {
		e.h3[a] = hash.NewH3(seed + uint64(a)*0x9e3779b97f4a7c15)
		e.batch[a] = bitmap.NewMultiRes(2048, 16)
		e.interval[a] = bitmap.NewMultiRes(2048, 16)
	}
	return e
}

// StartInterval resets the per-interval state. Call it at every
// measurement-interval boundary before extracting the interval's first
// batch.
func (e *Extractor) StartInterval() {
	for a := 0; a < pkt.NumAggregates; a++ {
		e.interval[a].Reset()
		e.intEst[a] = 0
	}
}

// IntervalEstimates returns the current distinct-count estimate of each
// aggregate's interval bitmap. A freshly rotated extractor reports all
// zeros; regression tests use this to compare an extractor's interval
// state against a fresh-extractor oracle.
func (e *Extractor) IntervalEstimates() []float64 {
	out := make([]float64, pkt.NumAggregates)
	copy(out, e.intEst[:])
	return out
}

// finishAggregate folds aggregate a's freshly filled batch bitmap of
// src into e's interval state and writes the aggregate's four counters
// into v. It is the per-aggregate tail shared by every extraction path;
// src is e itself except on the merge-only path.
func (e *Extractor) finishAggregate(v Vector, src *Extractor, a int, npkts float64) {
	unique := src.batch[a].Estimate()
	e.interval[a].MergeFrom(src.batch[a])
	after := e.interval[a].Estimate()
	newItems := after - e.intEst[a]
	e.intEst[a] = after
	if newItems < 0 {
		newItems = 0
	}
	if unique > npkts {
		unique = npkts
	}
	if newItems > unique {
		newItems = unique
	}
	agg := pkt.Aggregate(a)
	v[IdxUnique(agg)] = unique
	v[IdxNew(agg)] = newItems
	v[IdxRepeated(agg)] = npkts - unique
	v[IdxIntRepeated(agg)] = npkts - newItems
}

// ExtractFromBatchOf computes a feature vector for the batch most
// recently extracted by src, relative to e's own interval state. It
// merges src's per-batch bitmaps into e's interval bitmaps instead of
// re-hashing every packet, which is exactly what a query whose sampling
// rate is 1 can do: its stream is identical to the full stream, so no
// re-extraction is needed (§4.3 — features are only re-extracted "after
// sampling"). Both extractors must share bitmap geometry (they do, by
// construction). The returned vector is e's scratch: it is valid until
// the next extraction call on e.
func (e *Extractor) ExtractFromBatchOf(src *Extractor, npkts, nbytes float64) Vector {
	e.scratch = e.ExtractFromBatchOfInto(e.scratch, src, npkts, nbytes)
	return e.scratch
}

// ExtractFromBatchOfInto is ExtractFromBatchOf writing into v (grown if
// needed) — the allocation-free form.
func (e *Extractor) ExtractFromBatchOfInto(v Vector, src *Extractor, npkts, nbytes float64) Vector {
	v = sized(v)
	v[IdxPackets] = npkts
	v[IdxBytes] = nbytes
	for a := 0; a < pkt.NumAggregates; a++ {
		e.finishAggregate(v, src, a, npkts)
	}
	return v
}

// Extract computes the feature vector of b. The returned vector is e's
// scratch: it is valid until the next extraction call on e (copy it to
// retain it across batches).
func (e *Extractor) Extract(b *pkt.Batch) Vector {
	e.scratch = e.ExtractInto(e.scratch, b)
	return e.scratch
}

// ExtractInto computes the feature vector of b into v, growing it if
// needed, and returns it. After warm-up the extraction performs no
// allocations: hashing is field-wise (no key serialization), the batch
// bitmaps reset only the words the previous batch touched, and the
// estimates read incrementally maintained popcounts.
//
// Aggregates iterate in the outer loop, packets in the inner one, so
// each pass streams the batch through a single H3 table and a single
// bitmap — one predictable branch and a cache-resident lookup table per
// pass, instead of cycling all ten tables through the cache per packet.
// Bitmap contents are order-independent (pure ORs), so the result is
// bit-identical to per-packet order.
func (e *Extractor) ExtractInto(v Vector, b *pkt.Batch) Vector {
	v = sized(v)
	npkts := float64(b.Packets())
	v[IdxPackets] = npkts
	v[IdxBytes] = float64(b.Bytes())

	for a := 0; a < pkt.NumAggregates; a++ {
		bm := e.batch[a]
		bm.Reset()
		e.hashBuf = e.h3[a].AggHashes(e.hashBuf, b.Pkts, pkt.Aggregate(a))
		bm.InsertMany(e.hashBuf)
		e.finishAggregate(v, e, a, npkts)
	}
	e.Ops += int64(len(b.Pkts)) * pkt.NumAggregates
	return v
}

// sized returns v resized to NumFeatures, reallocating only when the
// capacity is short.
func sized(v Vector) Vector {
	if cap(v) < NumFeatures {
		return make(Vector, NumFeatures)
	}
	return v[:NumFeatures]
}
