// Package features implements the traffic-feature extraction of thesis
// §3.2.1: for every 100 ms batch it computes the packet count, the byte
// count and, for each of the ten header aggregates of Table 3.1, four
// item counters — unique items in the batch, new items relative to the
// current measurement interval, repeated items in the batch and repeated
// items relative to the interval — for a total of 42 features.
//
// Distinct counting uses multi-resolution bitmaps so the per-packet cost
// is deterministic: one H3 hash and one bitmap write per aggregate.
package features

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/hash"
	"repro/internal/pkt"
)

// Counter kinds per aggregate, in vector order.
const (
	kindUnique = iota
	kindNew
	kindRepeated    // packets in batch minus unique items
	kindIntRepeated // packets in batch minus new items
	kindsPerAgg
)

// NumFeatures is the length of a feature vector: packets, bytes, and
// four counters for each of the ten aggregates.
const NumFeatures = 2 + pkt.NumAggregates*kindsPerAgg

// Feature vector indices for the two scalar features.
const (
	IdxPackets = 0
	IdxBytes   = 1
)

// Idx returns the vector index of the given counter kind (kindUnique..
// kindIntRepeated) for aggregate a.
func idx(a pkt.Aggregate, kind int) int {
	return 2 + int(a)*kindsPerAgg + kind
}

// IdxUnique returns the index of the unique-items feature of aggregate a.
func IdxUnique(a pkt.Aggregate) int { return idx(a, kindUnique) }

// IdxNew returns the index of the new-items feature of aggregate a.
func IdxNew(a pkt.Aggregate) int { return idx(a, kindNew) }

// IdxRepeated returns the index of the batch-repeated feature of a.
func IdxRepeated(a pkt.Aggregate) int { return idx(a, kindRepeated) }

// IdxIntRepeated returns the index of the interval-repeated feature of a.
func IdxIntRepeated(a pkt.Aggregate) int { return idx(a, kindIntRepeated) }

// Vector is one batch's feature values, indexed by the Idx* helpers.
type Vector []float64

// Name returns a short human-readable name for feature index i, in the
// style the thesis uses in Table 3.2 ("new 5-tuple", "packets", ...).
func Name(i int) string {
	switch i {
	case IdxPackets:
		return "packets"
	case IdxBytes:
		return "bytes"
	}
	a := pkt.Aggregate((i - 2) / kindsPerAgg)
	switch (i - 2) % kindsPerAgg {
	case kindUnique:
		return fmt.Sprintf("unique %s", a)
	case kindNew:
		return fmt.Sprintf("new %s", a)
	case kindRepeated:
		return fmt.Sprintf("repeated %s", a)
	default:
		return fmt.Sprintf("int-repeated %s", a)
	}
}

// Names returns the names of all features in vector order.
func Names() []string {
	out := make([]string, NumFeatures)
	for i := range out {
		out[i] = Name(i)
	}
	return out
}

// Batch-bitmap geometry shared by every Sketch and every Extractor's
// interval bitmaps. MultiRes.MergeFrom requires identical geometry, and
// the sketch/finish split below merges sketches produced by one
// extractor into the interval state of another, so the dimensioning is
// a package constant rather than a per-extractor choice.
const (
	batchBits   = 2048
	batchLevels = 16
)

// Sketch is the per-batch half of feature extraction: one
// multi-resolution bitmap per header aggregate, filled with the hashes
// of a batch's packets, plus the hash staging buffer the fill uses. A
// Sketch carries no interval state, so filling one is a pure function
// of (hash seed, packet slice): it can run ahead of the bin that will
// consume it, and two sketches can be filled concurrently.
//
// The engine's pipelined runner keeps a small ring of sketches so the
// front stage can hash bin N+1 while the back stage still reads bin N's
// sketch (see pkg/loadshed DESIGN.md §10); per-worker sketches are the
// staging areas of the chunk-parallel fill (SketchChunks).
//
// The zero value is unusable; construct with NewSketch.
type Sketch struct {
	batch   [pkt.NumAggregates]*bitmap.MultiRes
	hashBuf []uint64 // hash staging, sized to the largest chunk seen
	pkts    int      // packets represented by the current contents
}

// NewSketch returns an empty sketch with the package's batch-bitmap
// geometry.
func NewSketch() *Sketch {
	sk := &Sketch{}
	for a := 0; a < pkt.NumAggregates; a++ {
		sk.batch[a] = bitmap.NewMultiRes(batchBits, batchLevels)
	}
	return sk
}

// Reset clears the sketch to empty. Like bitmap.MultiRes.Reset it costs
// O(words the previous fill touched).
func (sk *Sketch) Reset() {
	for a := 0; a < pkt.NumAggregates; a++ {
		sk.batch[a].Reset()
	}
	sk.pkts = 0
}

// Pkts reports how many packets the sketch currently represents.
func (sk *Sketch) Pkts() int { return sk.pkts }

// Ops returns the hash+insert operation count the current contents cost
// (one per packet per aggregate), the unit the engine's cost model
// charges feature extraction in.
func (sk *Sketch) Ops() int64 { return int64(sk.pkts) * pkt.NumAggregates }

// MergeFrom ORs another sketch into sk. Bitmap contents are pure unions,
// so merging per-worker chunk sketches in any fixed order reproduces the
// sequential fill bit for bit; the chunk-parallel path merges in worker
// index order to keep even the bookkeeping deterministic.
func (sk *Sketch) MergeFrom(o *Sketch) {
	for a := 0; a < pkt.NumAggregates; a++ {
		sk.batch[a].MergeFrom(o.batch[a])
	}
	sk.pkts += o.pkts
}

// Extractor computes feature vectors from batches. It keeps two bitmaps
// per aggregate: one reset per batch (unique counts, held in an internal
// Sketch) and one reset per measurement interval (new counts); the
// interval bitmap is updated by ORing the batch bitmap into it, exactly
// as described in §3.2.1.
//
// The extractor is built for the fast path: per packet it pays one
// field-wise H3 hash (hash.H3.HashAgg — no key serialization) and one
// bitmap write per aggregate, and the whole extraction allocates
// nothing after warm-up — Extract and ExtractFromBatchOf return an
// internal scratch vector that is overwritten by the next extraction
// call on the same Extractor (copy it to retain it; predict.History
// does). Use ExtractInto to supply your own destination.
//
// Extraction splits into two phases with different sharing rules:
//
//   - SketchInto fills a caller-owned Sketch from a packet slice. It
//     only reads the extractor's hash tables (fixed at construction),
//     so concurrent SketchInto calls on one extractor are safe as long
//     as each targets a distinct Sketch.
//   - FinishSketch folds a filled sketch into the extractor's interval
//     state and produces the feature vector. It mutates the extractor
//     and must stay single-threaded, like every other method.
//
// The zero value is unusable; construct with NewExtractor.
type Extractor struct {
	h3       [pkt.NumAggregates]*hash.H3
	sk       *Sketch // internal sketch used by Extract/ExtractInto
	interval [pkt.NumAggregates]*bitmap.MultiRes
	intEst   [pkt.NumAggregates]float64 // current interval-bitmap estimate
	scratch  Vector                     // returned by Extract/ExtractFromBatchOf

	// Ops counts hash+insert operations performed, so the experiment
	// harness can charge feature extraction its deterministic cost
	// (Table 3.4).
	Ops int64
}

// NewExtractor returns an extractor whose hash functions derive from
// seed.
func NewExtractor(seed uint64) *Extractor {
	e := &Extractor{scratch: make(Vector, NumFeatures), sk: NewSketch()}
	for a := 0; a < pkt.NumAggregates; a++ {
		e.h3[a] = hash.NewH3(seed + uint64(a)*0x9e3779b97f4a7c15)
		e.interval[a] = bitmap.NewMultiRes(batchBits, batchLevels)
	}
	return e
}

// Sketch returns the extractor's internal sketch: the batch bitmaps of
// the most recent Extract/ExtractInto call. The engine hands it to
// queries that merge the full-stream batch state instead of re-hashing
// (ExtractFromSketch); it is overwritten by the next extraction on e.
func (e *Extractor) Sketch() *Sketch { return e.sk }

// StartInterval resets the per-interval state. Call it at every
// measurement-interval boundary before extracting the interval's first
// batch.
func (e *Extractor) StartInterval() {
	for a := 0; a < pkt.NumAggregates; a++ {
		e.interval[a].Reset()
		e.intEst[a] = 0
	}
}

// IntervalEstimates returns the current distinct-count estimate of each
// aggregate's interval bitmap. A freshly rotated extractor reports all
// zeros; regression tests use this to compare an extractor's interval
// state against a fresh-extractor oracle.
func (e *Extractor) IntervalEstimates() []float64 {
	out := make([]float64, pkt.NumAggregates)
	copy(out, e.intEst[:])
	return out
}

// finishAggregate folds aggregate a's freshly filled batch bitmap of
// sk into e's interval state and writes the aggregate's four counters
// into v. It is the per-aggregate tail shared by every extraction path;
// sk is e's own sketch except on the merge-only paths.
func (e *Extractor) finishAggregate(v Vector, sk *Sketch, a int, npkts float64) {
	unique := sk.batch[a].Estimate()
	e.interval[a].MergeFrom(sk.batch[a])
	after := e.interval[a].Estimate()
	newItems := after - e.intEst[a]
	e.intEst[a] = after
	if newItems < 0 {
		newItems = 0
	}
	if unique > npkts {
		unique = npkts
	}
	if newItems > unique {
		newItems = unique
	}
	agg := pkt.Aggregate(a)
	v[IdxUnique(agg)] = unique
	v[IdxNew(agg)] = newItems
	v[IdxRepeated(agg)] = npkts - unique
	v[IdxIntRepeated(agg)] = npkts - newItems
}

// ExtractFromBatchOf computes a feature vector for the batch most
// recently extracted by src, relative to e's own interval state. It
// merges src's per-batch bitmaps into e's interval bitmaps instead of
// re-hashing every packet, which is exactly what a query whose sampling
// rate is 1 can do: its stream is identical to the full stream, so no
// re-extraction is needed (§4.3 — features are only re-extracted "after
// sampling"). Both extractors must share bitmap geometry (they do, by
// construction). The returned vector is e's scratch: it is valid until
// the next extraction call on e.
func (e *Extractor) ExtractFromBatchOf(src *Extractor, npkts, nbytes float64) Vector {
	return e.ExtractFromSketch(src.sk, npkts, nbytes)
}

// ExtractFromBatchOfInto is ExtractFromBatchOf writing into v (grown if
// needed) — the allocation-free form.
func (e *Extractor) ExtractFromBatchOfInto(v Vector, src *Extractor, npkts, nbytes float64) Vector {
	return e.FinishSketchInto(v, src.sk, npkts, nbytes)
}

// ExtractFromSketch is ExtractFromBatchOf taking the batch state as a
// bare Sketch — the form the pipelined engine uses, where the current
// bin's sketch lives in a ring slot rather than inside the extractor
// that would have filled it on the sequential path. The returned vector
// is e's scratch: it is valid until the next extraction call on e.
func (e *Extractor) ExtractFromSketch(sk *Sketch, npkts, nbytes float64) Vector {
	e.scratch = e.FinishSketchInto(e.scratch, sk, npkts, nbytes)
	return e.scratch
}

// FinishSketchInto folds a filled sketch into e's interval state and
// writes the full feature vector into v (grown if needed): the second,
// extractor-mutating half of extraction. npkts and nbytes are the
// scalar features of the stream the sketch summarizes — the caller's
// because on the merge-only paths (rate-1 queries, sampled queries
// reading the shared shed sketch) they describe the query's view of the
// stream, not the sketch's packet count.
func (e *Extractor) FinishSketchInto(v Vector, sk *Sketch, npkts, nbytes float64) Vector {
	v = sized(v)
	v[IdxPackets] = npkts
	v[IdxBytes] = nbytes
	for a := 0; a < pkt.NumAggregates; a++ {
		e.finishAggregate(v, sk, a, npkts)
	}
	return v
}

// Extract computes the feature vector of b. The returned vector is e's
// scratch: it is valid until the next extraction call on e (copy it to
// retain it across batches).
func (e *Extractor) Extract(b *pkt.Batch) Vector {
	e.scratch = e.ExtractInto(e.scratch, b)
	return e.scratch
}

// ExtractInto computes the feature vector of b into v, growing it if
// needed, and returns it. After warm-up the extraction performs no
// allocations: hashing is field-wise (no key serialization), the batch
// bitmaps reset only the words the previous batch touched, and the
// estimates read incrementally maintained popcounts.
//
// Aggregates iterate in the outer loop, packets in the inner one, so
// each pass streams the batch through a single H3 table and a single
// bitmap — one predictable branch and a cache-resident lookup table per
// pass, instead of cycling all ten tables through the cache per packet.
// Bitmap contents are order-independent (pure ORs), so the result is
// bit-identical to per-packet order.
func (e *Extractor) ExtractInto(v Vector, b *pkt.Batch) Vector {
	e.SketchInto(e.sk, b.Pkts)
	e.Ops += e.sk.Ops()
	return e.FinishSketchInto(v, e.sk, float64(b.Packets()), float64(b.Bytes()))
}

// SketchInto resets sk and fills it with the hashes of pkts: the first,
// batch-pure half of extraction. It reads only e's hash tables (fixed
// at construction) and writes only sk, so concurrent calls on the same
// extractor are safe when each targets a distinct sketch — the contract
// the chunk-parallel fill and the pipelined engine's read-ahead stage
// build on. It does not advance e.Ops; the consumer charges the cost
// when the sketch is folded into a bin (sk.Ops reports it).
//
// Aggregates iterate in the outer loop, packets in the inner one, for
// the cache behaviour documented on ExtractInto.
func (e *Extractor) SketchInto(sk *Sketch, pkts []pkt.Packet) {
	sk.Reset()
	for a := 0; a < pkt.NumAggregates; a++ {
		sk.hashBuf = e.h3[a].AggHashes(sk.hashBuf, pkts, pkt.Aggregate(a))
		sk.batch[a].InsertMany(sk.hashBuf)
	}
	sk.pkts = len(pkts)
}

// ChunkSketcher fills sketches from contiguous packet chunks in
// parallel: chunk w is sketched into a per-worker staging sketch (the
// per-worker H3 staging of the batch-parallel front stage), and the
// staging sketches are merged into the destination in worker index
// order. Because bitmap contents are pure unions and every packet's
// hash is independent of its neighbours, the result is bit-identical to
// a sequential SketchInto for any chunk count and any execution order —
// which is what lets the engine split a batch across cores without
// giving up bit-identical runs.
//
// The chunk closure is built once at construction and the staging
// sketches are reused across fills, so a warmed ChunkSketcher fills
// without allocating. It is owned by one producer at a time; only the
// chunk function itself runs on other goroutines.
type ChunkSketcher struct {
	e       *Extractor
	staging []*Sketch
	pkts    []pkt.Packet // current fill's input, read by fn
	chunk   int          // current fill's chunk length
	fn      func(int)    // prebuilt chunk body
}

// NewChunkSketcher returns a sketcher with `workers` staging sketches
// for extractor e (workers >= 1).
func NewChunkSketcher(e *Extractor, workers int) *ChunkSketcher {
	if workers < 1 {
		workers = 1
	}
	cs := &ChunkSketcher{e: e, staging: make([]*Sketch, workers)}
	for w := range cs.staging {
		cs.staging[w] = NewSketch()
	}
	cs.fn = func(w int) {
		lo := min(w*cs.chunk, len(cs.pkts))
		hi := min(lo+cs.chunk, len(cs.pkts))
		cs.e.SketchInto(cs.staging[w], cs.pkts[lo:hi])
	}
	return cs
}

// Workers reports the number of staging sketches (the chunk count).
func (cs *ChunkSketcher) Workers() int { return len(cs.staging) }

// Fill sketches pkts into dst using one chunk per staging sketch. run
// must invoke fn(0..n-1) exactly once each before returning, on any
// goroutines it likes — a worker pool, or nil to run the chunks inline.
// dst must be distinct from every staging sketch.
func (cs *ChunkSketcher) Fill(dst *Sketch, pkts []pkt.Packet, run func(n int, fn func(int))) {
	n := len(cs.staging)
	if n == 1 || run == nil {
		cs.e.SketchInto(dst, pkts)
		return
	}
	cs.pkts = pkts
	cs.chunk = (len(pkts) + n - 1) / n
	run(n, cs.fn)
	cs.pkts = nil
	dst.Reset()
	for _, sk := range cs.staging {
		dst.MergeFrom(sk)
	}
}

// sized returns v resized to NumFeatures, reallocating only when the
// capacity is short.
func sized(v Vector) Vector {
	if cap(v) < NumFeatures {
		return make(Vector, NumFeatures)
	}
	return v[:NumFeatures]
}
