package features

import (
	"math"
	"testing"
	"time"

	"repro/internal/hash"
	"repro/internal/pkt"
	"repro/internal/trace"
)

func mkBatch(pkts ...pkt.Packet) *pkt.Batch {
	return &pkt.Batch{Bin: 100 * time.Millisecond, Pkts: pkts}
}

func p(src, dst uint32, sp, dp uint16, size int) pkt.Packet {
	return pkt.Packet{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: pkt.ProtoTCP, Size: size}
}

func TestVectorLength(t *testing.T) {
	if NumFeatures != 42 {
		t.Fatalf("NumFeatures = %d, want 42 (thesis count)", NumFeatures)
	}
	e := NewExtractor(1)
	v := e.Extract(mkBatch(p(1, 2, 3, 4, 100)))
	if len(v) != NumFeatures {
		t.Fatalf("vector length = %d", len(v))
	}
}

func TestNamesDistinct(t *testing.T) {
	names := Names()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	if names[IdxPackets] != "packets" || names[IdxBytes] != "bytes" {
		t.Fatalf("scalar names wrong: %q %q", names[0], names[1])
	}
	if got := Name(IdxNew(pkt.Agg5Tuple)); got != "new 5-tuple" {
		t.Fatalf("Name(new 5-tuple) = %q", got)
	}
}

func TestPacketsAndBytes(t *testing.T) {
	e := NewExtractor(1)
	v := e.Extract(mkBatch(p(1, 2, 3, 4, 100), p(1, 2, 3, 4, 200)))
	if v[IdxPackets] != 2 {
		t.Errorf("packets = %v", v[IdxPackets])
	}
	if v[IdxBytes] != 300 {
		t.Errorf("bytes = %v", v[IdxBytes])
	}
}

func TestUniqueCounts(t *testing.T) {
	e := NewExtractor(1)
	// Two packets from the same flow, one from a different source.
	v := e.Extract(mkBatch(
		p(10, 2, 5, 80, 100),
		p(10, 2, 5, 80, 100),
		p(11, 2, 6, 80, 100),
	))
	if got := v[IdxUnique(pkt.AggSrcIP)]; math.Abs(got-2) > 0.2 {
		t.Errorf("unique src-ip = %v, want ~2", got)
	}
	if got := v[IdxUnique(pkt.AggDstIP)]; math.Abs(got-1) > 0.2 {
		t.Errorf("unique dst-ip = %v, want ~1", got)
	}
	if got := v[IdxUnique(pkt.Agg5Tuple)]; math.Abs(got-2) > 0.2 {
		t.Errorf("unique 5-tuple = %v, want ~2", got)
	}
	if got := v[IdxRepeated(pkt.Agg5Tuple)]; math.Abs(got-1) > 0.2 {
		t.Errorf("repeated 5-tuple = %v, want ~1", got)
	}
}

func TestNewItemsAcrossBatches(t *testing.T) {
	e := NewExtractor(1)
	e.StartInterval()
	v1 := e.Extract(mkBatch(p(10, 2, 5, 80, 100), p(11, 2, 5, 80, 100)))
	if got := v1[IdxNew(pkt.AggSrcIP)]; math.Abs(got-2) > 0.2 {
		t.Fatalf("first batch new src-ip = %v, want ~2", got)
	}
	// Second batch repeats one source and adds one more.
	v2 := e.Extract(mkBatch(p(10, 2, 5, 80, 100), p(12, 2, 5, 80, 100)))
	if got := v2[IdxNew(pkt.AggSrcIP)]; math.Abs(got-1) > 0.3 {
		t.Fatalf("second batch new src-ip = %v, want ~1", got)
	}
	if got := v2[IdxIntRepeated(pkt.AggSrcIP)]; math.Abs(got-1) > 0.3 {
		t.Fatalf("second batch int-repeated src-ip = %v, want ~1", got)
	}
}

func TestStartIntervalResetsNewCounts(t *testing.T) {
	e := NewExtractor(1)
	e.StartInterval()
	e.Extract(mkBatch(p(10, 2, 5, 80, 100)))
	v := e.Extract(mkBatch(p(10, 2, 5, 80, 100)))
	if got := v[IdxNew(pkt.AggSrcIP)]; got > 0.3 {
		t.Fatalf("repeat source counted as new: %v", got)
	}
	e.StartInterval()
	v = e.Extract(mkBatch(p(10, 2, 5, 80, 100)))
	if got := v[IdxNew(pkt.AggSrcIP)]; math.Abs(got-1) > 0.2 {
		t.Fatalf("after StartInterval new src-ip = %v, want ~1", got)
	}
}

func TestEmptyBatch(t *testing.T) {
	e := NewExtractor(1)
	v := e.Extract(mkBatch())
	for i, x := range v {
		if x != 0 {
			t.Fatalf("feature %s = %v for empty batch", Name(i), x)
		}
	}
}

func TestInvariantsOnGeneratedTraffic(t *testing.T) {
	g := trace.NewGenerator(trace.Config{Seed: 3, Duration: 2 * time.Second, PacketsPerSec: 5000})
	e := NewExtractor(7)
	e.StartInterval()
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		v := e.Extract(&b)
		npkts := v[IdxPackets]
		for a := 0; a < pkt.NumAggregates; a++ {
			agg := pkt.Aggregate(a)
			u, nw := v[IdxUnique(agg)], v[IdxNew(agg)]
			if u < 0 || nw < 0 {
				t.Fatalf("negative counter for %v", agg)
			}
			if u > npkts+0.5 {
				t.Fatalf("unique %v = %v exceeds packets %v", agg, u, npkts)
			}
			if nw > u+0.5 {
				t.Fatalf("new %v = %v exceeds unique %v", agg, nw, u)
			}
			if v[IdxRepeated(agg)] != npkts-u {
				t.Fatalf("repeated invariant broken for %v", agg)
			}
			if v[IdxIntRepeated(agg)] != npkts-nw {
				t.Fatalf("int-repeated invariant broken for %v", agg)
			}
		}
	}
}

func TestAccuracyAgainstExactCounts(t *testing.T) {
	// Compare bitmap estimates to exact distinct counts on real-ish
	// traffic; thesis dimensions the bitmaps for ~1% error, allow 5%.
	g := trace.NewGenerator(trace.Config{Seed: 5, Duration: time.Second, PacketsPerSec: 20000})
	e := NewExtractor(9)
	e.StartInterval()
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		v := e.Extract(&b)
		exact := map[pkt.FlowKey]bool{}
		srcs := map[uint32]bool{}
		for _, q := range b.Pkts {
			exact[q.FlowKey()] = true
			srcs[q.SrcIP] = true
		}
		got := v[IdxUnique(pkt.Agg5Tuple)]
		want := float64(len(exact))
		if want > 100 && math.Abs(got-want)/want > 0.05 {
			t.Fatalf("unique 5-tuple estimate %v vs exact %v", got, want)
		}
		gotS := v[IdxUnique(pkt.AggSrcIP)]
		wantS := float64(len(srcs))
		if wantS > 100 && math.Abs(gotS-wantS)/wantS > 0.05 {
			t.Fatalf("unique src-ip estimate %v vs exact %v", gotS, wantS)
		}
	}
}

func TestOpsCounting(t *testing.T) {
	e := NewExtractor(1)
	e.Extract(mkBatch(p(1, 2, 3, 4, 100), p(5, 6, 7, 8, 100)))
	if e.Ops != 2*pkt.NumAggregates {
		t.Fatalf("Ops = %d, want %d", e.Ops, 2*pkt.NumAggregates)
	}
}

// extractOracle is the pre-refactor extraction algorithm — serialize
// each aggregate key with AppendAggKey, hash the bytes, insert in
// per-packet order — kept as the equivalence oracle for the
// field-wise/flat-bitmap fast path.
func extractOracle(e *Extractor, b *pkt.Batch) Vector {
	v := make(Vector, NumFeatures)
	v[IdxPackets] = float64(b.Packets())
	v[IdxBytes] = float64(b.Bytes())

	e.sk.Reset()
	var keyBuf []byte
	for i := range b.Pkts {
		p := &b.Pkts[i]
		for a := 0; a < pkt.NumAggregates; a++ {
			keyBuf = p.AppendAggKey(keyBuf[:0], pkt.Aggregate(a))
			e.sk.batch[a].Insert(hash.Mix64(e.h3[a].Hash(keyBuf)))
		}
	}
	e.sk.pkts = b.Packets()

	npkts := v[IdxPackets]
	for a := 0; a < pkt.NumAggregates; a++ {
		e.finishAggregate(v, e.sk, a, npkts)
	}
	return v
}

func TestExtractMatchesBytePathOracle(t *testing.T) {
	// The fast path must be bit-identical to the serialize-and-hash
	// oracle on real-ish traffic, across batch and interval boundaries.
	g := trace.NewGenerator(trace.Config{Seed: 21, Duration: 2 * time.Second, PacketsPerSec: 8000})
	fast := NewExtractor(5)
	oracle := NewExtractor(5)
	fast.StartInterval()
	oracle.StartInterval()
	bin := 0
	for {
		b, ok := g.NextBatch()
		if !ok {
			break
		}
		if bin == 10 { // exercise an interval rotation mid-comparison
			fast.StartInterval()
			oracle.StartInterval()
		}
		got := fast.Extract(&b)
		want := extractOracle(oracle, &b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("bin %d, feature %s: fast = %v, oracle = %v", bin, Name(i), got[i], want[i])
			}
		}
		bin++
	}
	if bin == 0 {
		t.Fatal("no batches generated")
	}
}

func TestExtractIntoReusesBuffer(t *testing.T) {
	g := trace.NewGenerator(trace.Config{Seed: 2, Duration: time.Second, PacketsPerSec: 2000})
	b1, _ := g.NextBatch()
	b2, _ := g.NextBatch()
	e := NewExtractor(1)
	e.StartInterval()
	v := make(Vector, 0, NumFeatures)
	v = e.ExtractInto(v, &b1)
	if len(v) != NumFeatures {
		t.Fatalf("vector length = %d", len(v))
	}
	w := e.ExtractInto(v, &b2)
	if &w[0] != &v[0] {
		t.Fatal("ExtractInto reallocated a buffer with sufficient capacity")
	}
	if w[IdxPackets] != float64(b2.Packets()) {
		t.Fatalf("packets = %v, want %v", w[IdxPackets], b2.Packets())
	}
}

func TestExtractZeroAllocSteadyState(t *testing.T) {
	g := trace.NewGenerator(trace.Config{Seed: 4, Duration: time.Second, PacketsPerSec: 10000})
	batch, _ := g.NextBatch()
	e := NewExtractor(1)
	e.StartInterval()
	e.Extract(&batch) // warm-up: grows nothing but populates caches
	allocs := testing.AllocsPerRun(20, func() {
		e.Extract(&batch)
	})
	if allocs != 0 {
		t.Fatalf("Extract steady-state allocations = %v, want 0", allocs)
	}
	src := NewExtractor(2)
	src.StartInterval()
	src.Extract(&batch)
	e.ExtractFromBatchOf(src, 10, 1000)
	allocs = testing.AllocsPerRun(20, func() {
		e.ExtractFromBatchOf(src, 10, 1000)
	})
	if allocs != 0 {
		t.Fatalf("ExtractFromBatchOf steady-state allocations = %v, want 0", allocs)
	}
}

func BenchmarkExtract(b *testing.B) {
	g := trace.NewGenerator(trace.Config{Seed: 1, Duration: time.Hour, PacketsPerSec: 25000})
	batch, _ := g.NextBatch()
	e := NewExtractor(1)
	e.StartInterval()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Extract(&batch)
	}
}
