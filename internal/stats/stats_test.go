package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestVarianceConstant(t *testing.T) {
	if got := Variance([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("Variance of constant = %v, want 0", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	// Population variance of {2,4,4,4,5,5,7,9} is 4.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := Stdev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("Stdev = %v, want 2", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1.5}
	if Min(xs) != -1 {
		t.Errorf("Min = %v, want -1", Min(xs))
	}
	if Max(xs) != 4 {
		t.Errorf("Max = %v, want 4", Max(xs))
	}
	if Sum(xs) != 7.5 {
		t.Errorf("Sum = %v, want 7.5", Sum(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 || Sum(nil) != 0 {
		t.Errorf("empty-slice results should all be 0")
	}
}

func TestPercentileEdges(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("P0 = %v, want 10", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Errorf("P100 = %v, want 40", got)
	}
	if got := Percentile(xs, 50); !almostEq(got, 25, 1e-12) {
		t.Errorf("P50 = %v, want 25", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("P50(nil) = %v, want 0", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated its input: %v", xs)
	}
}

func TestMedianOdd(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Fatalf("Median = %v, want 5", got)
	}
}

func TestRelErr(t *testing.T) {
	cases := []struct {
		est, actual, want float64
	}{
		{100, 100, 0},
		{90, 100, 0.1},
		{110, 100, 0.1},
		{0, 0, 0},
		{5, 0, 1},
		{0, 100, 1},
	}
	for _, c := range cases {
		if got := RelErr(c.est, c.actual); !almostEq(got, c.want, 1e-12) {
			t.Errorf("RelErr(%v, %v) = %v, want %v", c.est, c.actual, got, c.want)
		}
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("Pearson with zero-variance input = %v, want 0", got)
	}
	if got := Pearson([]float64{1}, []float64{2}); got != 0 {
		t.Fatalf("Pearson with single point = %v, want 0", got)
	}
	if got := Pearson([]float64{1, 2}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("Pearson with mismatched lengths = %v, want 0", got)
	}
}

func TestPearsonRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(n uint8) bool {
		m := int(n%50) + 2
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r := Pearson(xs, ys)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Seeded() {
		t.Fatal("new EWMA should not be seeded")
	}
	e.Update(10)
	if e.Value() != 10 {
		t.Fatalf("first update should seed: %v", e.Value())
	}
	e.Update(20)
	if !almostEq(e.Value(), 15, 1e-12) {
		t.Fatalf("EWMA = %v, want 15", e.Value())
	}
	e.Reset()
	if e.Seeded() || e.Value() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for alpha=0")
		}
	}()
	NewEWMA(0)
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 200; i++ {
		e.Update(7)
	}
	if !almostEq(e.Value(), 7, 1e-9) {
		t.Fatalf("EWMA did not converge: %v", e.Value())
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF len = %d", len(pts))
	}
	if pts[0].X != 1 || !almostEq(pts[0].F, 1.0/3, 1e-12) {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[2].X != 3 || pts[2].F != 1 {
		t.Errorf("last point = %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Fatalf("CDFAt = %v, want 0.5", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Fatalf("CDFAt below min = %v, want 0", got)
	}
	if got := CDFAt(xs, 10); got != 1 {
		t.Fatalf("CDFAt above max = %v, want 1", got)
	}
	if got := CDFAt(nil, 1); got != 0 {
		t.Fatalf("CDFAt(nil) = %v, want 0", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].F < pts[i-1].F {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 {
		t.Error("clamp above")
	}
	if Clamp(-5, 0, 1) != 0 {
		t.Error("clamp below")
	}
	if Clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp inside")
	}
}
