// Package stats provides small numerical helpers used across the load
// shedding system: summary statistics, exponentially weighted moving
// averages, Pearson correlation, relative errors and empirical CDFs.
//
// All functions are pure and operate on float64 slices; NaN handling
// follows the convention that an empty input yields zero rather than NaN
// so callers can fold partial results without guards.
package stats

import (
	"math"
	"sort"
	"sync"
)

// sortBufs recycles the scratch slices Percentile, Median, CDF and
// Summarize sort into. The functions stay pure (inputs are never
// reordered) but repeated calls — the experiment harness summarizes
// thousands of per-bin series — stop churning the heap.
var sortBufs = sync.Pool{New: func() any { return new([]float64) }}

// sortedCopy returns a pooled sorted copy of xs; callers must hand the
// pointer back with putSorted when done reading.
func sortedCopy(xs []float64) *[]float64 {
	p := sortBufs.Get().(*[]float64)
	cp := *p
	if cap(cp) < len(xs) {
		cp = make([]float64, len(xs))
	}
	cp = cp[:len(xs)]
	copy(cp, xs)
	sort.Float64s(cp)
	*p = cp
	return p
}

func putSorted(p *[]float64) { sortBufs.Put(p) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// Stdev returns the population standard deviation of xs.
func Stdev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It sorts a pooled copy of
// the input, leaving xs untouched. An empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	buf := sortedCopy(xs)
	defer putSorted(buf)
	cp := *buf
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// RelErr returns the relative error |1 - est/actual|. When actual is
// zero the error is 0 if est is also zero and 1 otherwise, mirroring the
// thesis convention for empty measurement intervals.
func RelErr(est, actual float64) float64 {
	if actual == 0 {
		if est == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(1 - est/actual)
}

// Pearson returns the linear (Pearson) correlation coefficient between
// xs and ys (Equation 3.3 in the thesis). It returns 0 when the inputs
// have different lengths, fewer than two points, or zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// EWMA is an exponentially weighted moving average with weight Alpha
// given to the newest observation:
//
//	v' = alpha*x + (1-alpha)*v
//
// The zero value is not ready for use; construct with NewEWMA. Until the
// first observation Value reports 0 and Seeded reports false.
type EWMA struct {
	Alpha  float64
	value  float64
	seeded bool
}

// NewEWMA returns an EWMA with the given weight in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{Alpha: alpha}
}

// Update folds x into the average and returns the new value. The first
// observation seeds the average directly.
func (e *EWMA) Update(x float64) float64 {
	if !e.seeded {
		e.value = x
		e.seeded = true
		return e.value
	}
	e.value = e.Alpha*x + (1-e.Alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any update).
func (e *EWMA) Value() float64 { return e.value }

// Seeded reports whether at least one observation has been folded in.
func (e *EWMA) Seeded() bool { return e.seeded }

// Reset clears the average back to the unseeded state.
func (e *EWMA) Reset() { e.value, e.seeded = 0, false }

// Restore sets the average and seeded flag directly, so a checkpoint
// (Value, Seeded) round-trips bit-exactly through a restart.
func (e *EWMA) Restore(value float64, seeded bool) { e.value, e.seeded = value, seeded }

// CDFPoint is one point of an empirical CDF: P(X <= X) = F.
type CDFPoint struct {
	X float64
	F float64
}

// CDF returns the empirical cumulative distribution function of xs as a
// sorted sequence of (value, fraction<=value) points, one per sample.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	buf := sortedCopy(xs)
	defer putSorted(buf)
	cp := *buf
	out := make([]CDFPoint, len(cp))
	n := float64(len(cp))
	for i, x := range cp {
		out[i] = CDFPoint{X: x, F: float64(i+1) / n}
	}
	return out
}

// CDFAt evaluates the empirical CDF of xs at x.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stdev  float64
	Min    float64
	Max    float64
	Median float64
	P95    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Stdev:  Stdev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
		P95:    Percentile(xs, 95),
	}
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
