package repro

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (one Benchmark per experiment id, named after the artifact)
// plus micro-benchmarks of the hot paths the thesis prices out in Table
// 3.4. The experiment benches report the headline metric of their
// artifact via b.ReportMetric so `go test -bench .` doubles as a
// regression dashboard for the reproduction.
//
// Experiment benches run in Quick mode at a small traffic scale so the
// full suite completes in minutes; use cmd/lsrepro for full-scale runs.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/pkt"
	"repro/internal/predict"
	"repro/internal/queries"
	"repro/internal/trace"
)

func benchCfg() experiments.Config {
	return experiments.Config{Seed: 1, Scale: 0.05, Dur: 8 * time.Second, Quick: true}
}

// runExperiment executes one registered experiment b.N times and
// renders it to io.Discard so the full output path is exercised.
func runExperiment(b *testing.B, id string) *experiments.Result {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		experiments.Render(io.Discard, res)
		last = res
	}
	return last
}

// Chapter 2.

func BenchmarkFig2_2_QueryCosts(b *testing.B) { runExperiment(b, "fig2.2") }

// Chapter 3 — prediction system.

func BenchmarkFig3_1_UnknownQueryAnatomy(b *testing.B)   { runExperiment(b, "fig3.1") }
func BenchmarkFig3_3_CPUvsPacketsScatter(b *testing.B)   { runExperiment(b, "fig3.3") }
func BenchmarkFig3_4_SLRvsMLR(b *testing.B)              { runExperiment(b, "fig3.4") }
func BenchmarkFig3_5_HistoryThresholdSweep(b *testing.B) { runExperiment(b, "fig3.5") }
func BenchmarkFig3_6_PerQuerySweep(b *testing.B)         { runExperiment(b, "fig3.6") }
func BenchmarkFig3_7_ErrOverTimeCESCA(b *testing.B)      { runExperiment(b, "fig3.7") }
func BenchmarkFig3_8_ErrOverTimeBackbone(b *testing.B)   { runExperiment(b, "fig3.8") }
func BenchmarkFig3_9_EWMAvsSLR(b *testing.B)             { runExperiment(b, "fig3.9") }
func BenchmarkFig3_10_EWMAAlpha(b *testing.B)            { runExperiment(b, "fig3.10") }
func BenchmarkFig3_11_BaselineErrOverTime(b *testing.B)  { runExperiment(b, "fig3.11") }
func BenchmarkFig3_12_MLRErrTails(b *testing.B)          { runExperiment(b, "fig3.12") }
func BenchmarkFig3_13_15_PredictorsUnderDDoS(b *testing.B) {
	runExperiment(b, "fig3.13-15")
}
func BenchmarkTable3_2_ErrByQueryAndTrace(b *testing.B) { runExperiment(b, "tab3.2") }
func BenchmarkTable3_3_MethodErrStats(b *testing.B)     { runExperiment(b, "tab3.3") }
func BenchmarkTable3_4_PredictionOverhead(b *testing.B) { runExperiment(b, "tab3.4") }

// Chapter 4 — load shedding system.

func BenchmarkFig4_1_CPUUsageCDF(b *testing.B)       { runExperiment(b, "fig4.1") }
func BenchmarkFig4_2_DropsAndUnsampled(b *testing.B) { runExperiment(b, "fig4.2") }
func BenchmarkFig4_3_AvgErrorPerScheme(b *testing.B) { runExperiment(b, "fig4.3") }
func BenchmarkFig4_4_StackedCPU(b *testing.B)        { runExperiment(b, "fig4.4") }
func BenchmarkFig4_5_6_SYNFlood(b *testing.B)        { runExperiment(b, "fig4.5-6") }
func BenchmarkTable4_1_ErrBreakdown(b *testing.B)    { runExperiment(b, "tab4.1") }

// Chapter 5 — fairness and Nash equilibrium.

func BenchmarkFig5_1_SimulatedSurface(b *testing.B)  { runExperiment(b, "fig5.1") }
func BenchmarkFig5_2_MeasuredSurface(b *testing.B)   { runExperiment(b, "fig5.2") }
func BenchmarkFig5_3_AccuracyVsRate(b *testing.B)    { runExperiment(b, "fig5.3") }
func BenchmarkFig5_4_StrategiesVsK(b *testing.B)     { runExperiment(b, "fig5.4") }
func BenchmarkFig5_5_AutofocusTimeline(b *testing.B) { runExperiment(b, "fig5.5") }
func BenchmarkTable5_2_AccuracyAtK05(b *testing.B)   { runExperiment(b, "tab5.2") }
func BenchmarkNashEquilibrium(b *testing.B)          { runExperiment(b, "nash") }

// Chapter 6 — custom load shedding.

func BenchmarkFig6_1_2_P2PSheddingMethods(b *testing.B) { runExperiment(b, "fig6.1-2") }
func BenchmarkFig6_3_ExpectedVsActual(b *testing.B)     { runExperiment(b, "fig6.3") }
func BenchmarkFig6_4_AccuracyVsSamplingRate(b *testing.B) {
	runExperiment(b, "fig6.4")
}
func BenchmarkFig6_5_CustomVsSamplingOverK(b *testing.B) { runExperiment(b, "fig6.5") }
func BenchmarkFig6_6_7_Timelines(b *testing.B)           { runExperiment(b, "fig6.6-7") }
func BenchmarkFig6_8_MassiveDDoS(b *testing.B)           { runExperiment(b, "fig6.8") }
func BenchmarkFig6_9_QueryArrivals(b *testing.B)         { runExperiment(b, "fig6.9") }
func BenchmarkFig6_10_SelfishClones(b *testing.B)        { runExperiment(b, "fig6.10") }
func BenchmarkFig6_11_BuggyClones(b *testing.B)          { runExperiment(b, "fig6.11") }
func BenchmarkFig6_12_14_OnlineExecution(b *testing.B)   { runExperiment(b, "fig6.12-14") }
func BenchmarkTable6_2_OnlineAccuracy(b *testing.B)      { runExperiment(b, "tab6.2") }

// Ablations (DESIGN.md §5): design choices isolated with the rest of
// the system fixed.

func BenchmarkAblationPredictor(b *testing.B) { runExperiment(b, "ablation-predictor") }
func BenchmarkAblationStrategy(b *testing.B)  { runExperiment(b, "ablation-strategy") }

// Micro-benchmarks: the hot-path costs Table 3.4 prices out, measured
// for real on this machine.

func benchBatch(payload bool) *trace.Generator {
	return trace.NewGenerator(trace.Config{
		Seed: 1, Duration: time.Hour, PacketsPerSec: 25000, Payload: payload,
	})
}

func BenchmarkMicroFeatureExtraction(b *testing.B) {
	g := benchBatch(false)
	batch, _ := g.NextBatch()
	ext := features.NewExtractor(1)
	ext.StartInterval()
	ext.Extract(&batch) // warm up the scratch vector: steady state is zero-alloc
	b.SetBytes(int64(batch.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext.Extract(&batch)
	}
	b.ReportMetric(float64(batch.Packets()), "pkts/batch")
	b.ReportMetric(float64(batch.Packets())*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

func BenchmarkMicroMLRFitAndPredict(b *testing.B) {
	g := benchBatch(false)
	ext := features.NewExtractor(1)
	ext.StartInterval()
	m := predict.NewMLR(predict.DefaultHistory, predict.DefaultThreshold)
	var fv features.Vector
	for i := 0; i < predict.DefaultHistory; i++ {
		batch, _ := g.NextBatch()
		fv = ext.Extract(&batch)
		m.Observe(fv, float64(batch.Packets()*1000))
	}
	m.Predict(fv) // warm up the fit scratch: steady state is zero-alloc
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(fv)
	}
}

func BenchmarkMicroQuerySetOnBatch(b *testing.B) {
	g := benchBatch(true)
	batch, _ := g.NextBatch()
	qs := queries.FullSet(queries.Config{})
	// Warm up tables and pools: the steady-state per-batch path is
	// allocation-free, and that is what the benchmark prices.
	for _, q := range qs {
		q.Process(&batch, 1)
	}
	b.SetBytes(int64(batch.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			q.Process(&batch, 1)
		}
	}
}

func BenchmarkMicroChangeDetector(b *testing.B) {
	// One armed detector observation: residual tests plus the windowed
	// feature-distribution distance. The detector runs on the bin path
	// of every predictive step when Config.ChangeDetection is on, so it
	// must stay allocation-free in steady state — asserted here, not
	// just reported.
	g := benchBatch(false)
	ext := features.NewExtractor(1)
	ext.StartInterval()
	batch, _ := g.NextBatch()
	fv := ext.Extract(&batch)
	det := detect.New(detect.Config{}, features.NumFeatures)
	// Prime past warmup so the residual tests are armed and both
	// distance windows are full.
	for i := 0; i < 64; i++ {
		det.Observe(fv, 0.01)
	}
	if allocs := testing.AllocsPerRun(100, func() { det.Observe(fv, 0.01) }); allocs != 0 {
		b.Fatalf("armed Observe allocates %v/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Observe(fv, 0.01)
	}
}

func BenchmarkMicroMonitorBinChangeDetect(b *testing.B) {
	// BenchmarkMicroMonitorBin with the drift detector enabled; the
	// delta between the two prices the full detectChange stage per bin
	// (feature snapshot, residual tests, distance windows).
	const window = 100
	src := NewGenerator(TraceConfig{Seed: 1, Duration: time.Hour, PacketsPerSec: 25000, Payload: true})
	batches := nextBatches(src, window)
	b.ReportAllocs()
	b.ResetTimer()
	bins, pkts := 0, 0
	for bins < b.N {
		res := NewMonitor(MonitorConfig{
			Scheme: Predictive, Capacity: 3e8, Strategy: MMFSPkt(), Seed: 1,
			ChangeDetection: true,
		}, StandardQueries(QueryConfig{})).Run(trace.NewMemorySource(batches[:min(b.N-bins, window)], src.TimeBin()))
		bins += len(res.Bins)
		for i := range res.Bins {
			pkts += res.Bins[i].WirePkts
		}
	}
	b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
}

func BenchmarkMicroMonitorBin(b *testing.B) {
	// One full predictive pipeline step per iteration (amortized over a
	// trace replay). The traffic is generated once, outside the timer:
	// the benchmark prices the monitor's steady-state bin loop, not the
	// synthetic trace generator.
	const window = 100
	src := NewGenerator(TraceConfig{Seed: 1, Duration: time.Hour, PacketsPerSec: 25000, Payload: true})
	batches := nextBatches(src, window)
	b.ReportAllocs()
	b.ResetTimer()
	// Run b.N bins by replaying slices of the recorded window.
	bins, pkts := 0, 0
	for bins < b.N {
		res := NewMonitor(MonitorConfig{
			Scheme: Predictive, Capacity: 3e8, Strategy: MMFSPkt(), Seed: 1,
		}, StandardQueries(QueryConfig{})).Run(trace.NewMemorySource(batches[:min(b.N-bins, window)], src.TimeBin()))
		bins += len(res.Bins)
		for i := range res.Bins {
			pkts += res.Bins[i].WirePkts
		}
	}
	b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
}

func BenchmarkPipelineSaturation(b *testing.B) {
	// Steady-state wire throughput of the bin loop at increasing worker
	// counts (DESIGN.md §10): one warmed Monitor per sub-benchmark
	// streams the recorded window repeatedly into a discarding sink, so
	// the metric prices exactly the pipelined engine — extraction for
	// bin N+1 overlapped with execution for bin N — and nothing else.
	// workers=1 is the strictly sequential engine; the pkts/s trajectory
	// in README.md comes from this benchmark.
	const window = 100
	src := NewGenerator(TraceConfig{Seed: 1, Duration: time.Hour, PacketsPerSec: 25000, Payload: true})
	batches := nextBatches(src, window)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			mon := NewMonitor(MonitorConfig{
				Scheme: Predictive, Capacity: 3e8, Strategy: MMFSPkt(), Seed: 1, Workers: workers,
			}, StandardQueries(QueryConfig{}))
			// Warm the scratch buffers, the slot ring and the worker
			// pools; the timed region then measures steady state only.
			mon.Stream(trace.NewMemorySource(batches, src.TimeBin()), nil)
			b.ReportAllocs()
			b.ResetTimer()
			bins, pkts := 0, 0
			for bins < b.N {
				n := min(b.N-bins, window)
				mon.Stream(trace.NewMemorySource(batches[:n], src.TimeBin()), nil)
				bins += n
				for i := 0; i < n; i++ {
					pkts += batches[i].Packets()
				}
			}
			b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

func nextBatches(src *trace.Generator, n int) []pkt.Batch {
	out := make([]pkt.Batch, 0, n)
	for i := 0; i < n; i++ {
		batch, ok := src.NextBatch()
		if !ok {
			src.Reset()
			batch, _ = src.NextBatch()
		}
		out = append(out, batch)
	}
	return out
}
