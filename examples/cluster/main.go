// Multi-link cluster with a global budget coordinator: the scenario no
// per-link shedder can handle. Three links share one machine; a spoofed
// on/off DDoS swamps link 0 for the middle half of the run while the
// other links idle along. A static equal split strands two thirds of
// the machine on the calm links and forces the attacked link to shed
// hard; the coordinator watches per-link demand every bin and moves the
// idle links' cycles to where the overload actually lands, so the
// aggregate answers stay accurate through the attack.
package main

import (
	"fmt"
	"time"

	"repro/internal/stats"
	"repro/pkg/loadshed"
)

const (
	dur    = 30 * time.Second
	nLinks = 3
	seed   = 7
)

func mkShards() []loadshed.Shard {
	links := loadshed.AsymmetricMix(seed, dur, 0.08, nLinks)
	shards := make([]loadshed.Shard, len(links))
	for i, l := range links {
		shards[i] = loadshed.Shard{
			Name:   l.Name,
			Source: loadshed.NewGenerator(l.Config),
			Queries: []loadshed.Query{
				loadshed.NewFlows(loadshed.QueryConfig{Seed: uint64(i)}),
				loadshed.NewCounter(loadshed.QueryConfig{Seed: uint64(i)}),
			},
		}
	}
	return shards
}

func main() {
	// Size the machine so the calm links fit with headroom but the
	// attacked link's flood does not: absorbing it takes cycles that
	// only exist on the other links.
	var total float64
	for i, sh := range mkShards() {
		c := loadshed.MeasureCapacity(sh.Source, sh.Queries, 99)
		if i == 0 {
			c *= 0.6
		}
		total += c
	}
	fmt.Printf("machine capacity: %.3g cycles/bin shared by %d links\n\n", total, nLinks)

	run := func(policy loadshed.Strategy, label string) float64 {
		res := loadshed.NewCluster(loadshed.ClusterConfig{
			Base:          loadshed.Config{Scheme: loadshed.Predictive, Strategy: loadshed.MMFSPkt(), Seed: 42},
			TotalCapacity: total,
			ShardPolicy:   policy,
		}, mkShards()).Run()

		fmt.Printf("%s:\n", label)
		refs := mkShards()
		var errSum float64
		n := 0
		for i, sh := range res.Shards {
			ref := loadshed.Reference(refs[i].Source, refs[i].Queries, 99)
			errs := loadshed.Errors(refs[i].Queries, sh.Result, ref)["flows"]
			var rate float64
			for _, b := range sh.Result.Bins {
				rate += stats.Mean(b.Rates)
			}
			fmt.Printf("  %-11s flow error mean %5.2f%% max %5.2f%%, mean rate %.2f, drops %d\n",
				sh.Name, 100*stats.Mean(errs), 100*stats.Max(errs),
				rate/float64(len(sh.Result.Bins)), sh.Result.TotalDrops())
			for _, e := range loadshed.MeanErrors(refs[i].Queries, sh.Result, ref) {
				errSum += e
				n++
			}
		}
		agg := errSum / float64(n)
		fmt.Printf("  aggregate mean error %.2f%%\n\n", 100*agg)
		return agg
	}

	static := run(nil, "static equal split (isolated per-link shedders)")
	coord := run(loadshed.MMFSCPU(), "coordinated (global mmfs_cpu budget)")

	fmt.Printf("coordinator improves aggregate accuracy %.2f%% -> %.2f%%\n", 100*static, 100*coord)
	fmt.Println("\nexpected shape: under the static split the DDoS link sheds to tiny")
	fmt.Println("rates while the calm links sit on spare budget; the coordinator")
	fmt.Println("moves that budget to the attacked link, so its flow counts stay")
	fmt.Println("accurate and aggregate error drops strictly below the static split.")
}
