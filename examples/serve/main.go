// The service deployment in one process: live ingest over a datagram
// socket, a cancellable stream, and the dynamic query registry — the
// pieces `lsd -serve` wires behind its HTTP admin plane, driven here
// directly so the walkthrough fits in a page. A feeder goroutine plays
// a generated trace into a loopback UDP listener paced by wall clock
// (the probe's role); the engine streams from the listener with
// wall-clock bins; mid-run a p2p-detector is added and the flows query
// removed, both taking effect at measurement-interval boundaries; a
// signal-style cancel ends the run, and the rolling snapshot prints as
// the Prometheus exposition /metrics would serve.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/pkg/loadshed"
)

const (
	seed = 21
	dur  = 4 * time.Second
)

func main() {
	// Live listener: the engine's Source is a socket, not a file. Bins
	// close on wall clock, so a silent link still advances trace time.
	live, err := loadshed.ListenLive("udp", "127.0.0.1:0", loadshed.LiveConfig{})
	check(err)

	// Feeder: generated traffic sent to the listener at its trace-time
	// pace — what `lsd -feed` does from another process.
	cfg := loadshed.CESCA2(seed, dur, 0.05)
	go func() {
		snd, err := loadshed.DialLive("udp", live.Addr().String())
		check(err)
		defer snd.Close()
		src := loadshed.NewGenerator(cfg)
		start := time.Now()
		for {
			b, ok := src.NextBatch()
			if !ok {
				return
			}
			if d := time.Until(start.Add(b.Start)); d > 0 {
				time.Sleep(d)
			}
			check(snd.SendBatch(&b))
		}
	}()

	qs := loadshed.StandardQueries(loadshed.QueryConfig{Seed: seed})
	ovh, demand := loadshed.MeasureLoad(loadshed.NewGenerator(cfg), qs, seed+1)
	sys := loadshed.New(loadshed.Config{
		Scheme:   loadshed.Predictive,
		Strategy: loadshed.MMFSPkt(),
		Capacity: ovh + demand/2, // 2x overload
		Seed:     seed + 2,
	}, loadshed.StandardQueries(loadshed.QueryConfig{Seed: seed}))

	// The run ends when this cancels — the role SIGTERM plays in the
	// daemon. Closing the source on cancel wakes a NextBatch blocked on
	// a silent socket so the engine can stop at the bin boundary.
	ctx, cancel := context.WithCancel(context.Background())
	stopIngest := context.AfterFunc(ctx, func() { live.Close() })
	defer stopIngest()
	time.AfterFunc(dur+time.Second, cancel)

	roll := loadshed.NewRollingStats(0)
	bins := 0
	admin := loadshed.SinkFuncs{Bin: func(*loadshed.BinStats) {
		bins++
		switch bins {
		case 20: // interval boundary at bin 30: the detector joins there
			q, err := loadshed.QueryByName("p2p-detector", loadshed.QueryConfig{Seed: seed})
			check(err)
			check(sys.AddQuery(q))
			fmt.Println("bin 20: p2p-detector registered (joins at next interval boundary)")
		case 40: // flows retires after its interval-4 flush
			check(sys.RemoveQuery("flows"))
			fmt.Println("bin 40: flows removal queued (retires at next interval boundary)")
		}
	}}

	fmt.Printf("streaming from %s ...\n", live.Addr())
	streamErr := sys.StreamContext(ctx, live, loadshed.Tee(roll, admin))
	live.Close()
	check(loadshed.SourceErr(live))
	fmt.Printf("stream ended (%v) after %d bins\n\n", streamErr, bins)

	snap := roll.Snapshot()
	for i, q := range snap.Queries {
		state := "active"
		if !snap.Active[i] {
			state = "removed"
		}
		fmt.Printf("  %-16s %-8s mean rate %.3f\n", q, state, snap.MeanRates[i])
	}
	fmt.Println("\n/metrics would serve:")
	check(snap.WritePrometheus(os.Stdout))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve example:", err)
		os.Exit(1)
	}
}
