// Fair sharing: nine competing queries under 2x overload, comparing the
// Chapter 5 strategies. mmfs_pkt keeps even the most demanding queries
// above their minimum sampling rates; eq_srates starves them.
package main

import (
	"fmt"
	"time"

	"repro/pkg/loadshed"
)

func main() {
	const dur = 20 * time.Second
	mkSrc := func() loadshed.Source {
		return loadshed.NewGenerator(loadshed.CESCA2(5, dur, 0.1))
	}
	mkQs := func() []loadshed.Query { return loadshed.AllQueries(loadshed.QueryConfig{Seed: 5}) }

	capacity := loadshed.CapacityForOverload(mkSrc(), mkQs(), 11, 2)
	ref := loadshed.Reference(mkSrc(), mkQs(), 11)

	strategies := []struct {
		name  string
		strat loadshed.Strategy
	}{
		{"eq_srates", loadshed.EqualRates(true)},
		{"mmfs_cpu", loadshed.MMFSCPU()},
		{"mmfs_pkt", loadshed.MMFSPkt()},
	}

	fmt.Printf("%-12s", "query")
	for _, s := range strategies {
		fmt.Printf("  %-10s", s.name)
	}
	fmt.Println("   (accuracy per strategy, K=0.5)")

	acc := map[string]map[string]float64{}
	for _, s := range strategies {
		mon := loadshed.New(loadshed.Config{
			Scheme:         loadshed.Predictive,
			Capacity:       capacity,
			Strategy:       s.strat,
			Seed:           11,
			CustomShedding: true,
		}, mkQs())
		res := mon.Run(mkSrc())
		accs := loadshed.Accuracies(mkQs(), res, ref, 10)
		acc[s.name] = map[string]float64{}
		for q, as := range accs {
			var sum float64
			for _, a := range as {
				sum += a
			}
			acc[s.name][q] = sum / float64(len(as))
		}
	}
	for _, q := range mkQs() {
		fmt.Printf("%-12s", q.Name())
		for _, s := range strategies {
			fmt.Printf("  %-10.2f", acc[s.name][q.Name()])
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape: mmfs strategies keep the expensive queries")
	fmt.Println("(autofocus, super-sources) alive where eq_srates disables them.")
}
