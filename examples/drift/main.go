// Drift robustness: what happens to predictive load shedding when the
// traffic mix changes under the model. A gradual drift joins the trace
// mid-run, built to mimic the base traffic's address pools, port mix
// and packet sizes while carrying no payload — collinear with the base
// in feature space, so the regression cannot isolate it with one
// coefficient, and the bytes→cost relation it learned is silently
// wrong. With plain history forgetting the stale regime poisons the
// fit for a full history window; with the online change detector
// (Config.ChangeDetection) a verdict truncates the stale history and
// the model refits on the new regime within a few dozen bins.
package main

import (
	"fmt"
	"math"
	"time"

	"repro/pkg/loadshed"
)

func main() {
	const (
		dur        = 20 * time.Second
		driftStart = 8 * time.Second
	)

	mkSrc := func() loadshed.Source {
		cfg := loadshed.CESCA2(31, dur, 0.2)
		cfg.Anomalies = []loadshed.Anomaly{
			// Ramp up over the first quarter of its span to 1.5x the
			// base packet rate, all of it payload-free.
			loadshed.NewGradualDrift(driftStart, dur-driftStart, 1.5*cfg.PacketsPerSec),
		}
		return loadshed.NewGenerator(cfg)
	}
	mkQs := func() []loadshed.Query {
		var qs []loadshed.Query
		// pattern-search is the victim: its cost is linear in payload
		// bytes, which the drift decouples from the header features.
		for _, kind := range []string{"pattern-search", "counter", "flows"} {
			q, err := loadshed.QueryByName(kind, loadshed.QueryConfig{Seed: 7})
			if err != nil {
				panic(err)
			}
			qs = append(qs, q)
		}
		return qs
	}

	run := func(detectOn bool) *loadshed.RunResult {
		return loadshed.New(loadshed.Config{
			Scheme:   loadshed.Predictive,
			Strategy: loadshed.MMFSPkt(),
			Seed:     99,
			// Unlimited capacity and no measurement noise: per-bin
			// prediction error is exactly model error.
			Capacity:        math.Inf(1),
			NoiseSigma:      -1,
			Workers:         1,
			HistoryLen:      120,
			ChangeDetection: detectOn,
			// Small-trace tuning (see DESIGN.md §13): residual tests
			// arbitrate, distribution distance backstops gross shifts,
			// truncate on a verdict so feature selection re-runs on
			// the new regime only.
			Detect: loadshed.DetectConfig{
				ResidualDelta:  0.05,
				ResidualLambda: 1.5,
				DistThreshold:  12,
				Cooldown:       40,
			},
			ChangeDiscount: -1,
		}, mkQs()).Run(mkSrc())
	}

	errAt := func(res *loadshed.RunResult, lo, hi int) float64 {
		var s float64
		for _, b := range res.Bins[lo:hi] {
			used := math.Max(b.QueryUsed[0], 1)
			s += math.Abs(b.QueryPred[0]-used) / used
		}
		return s / float64(hi-lo)
	}

	off := run(false)
	on := run(true)
	startBin := int(driftStart / (100 * time.Millisecond))
	rampEnd := startBin + int((dur-driftStart)/4/(100*time.Millisecond))
	n := len(on.Bins)

	fmt.Printf("pattern-search prediction error (drift enters at bin %d, settles at bin %d):\n\n", startBin, rampEnd)
	fmt.Printf("%-22s %12s %12s\n", "phase", "detector off", "detector on")
	for _, ph := range []struct {
		name   string
		lo, hi int
	}{
		{"before the drift", startBin / 2, startBin},
		{"through the ramp", startBin, rampEnd},
		{"first 40 bins after", rampEnd, rampEnd + 40},
		{"rest of the run", rampEnd + 40, n},
	} {
		fmt.Printf("%-22s %11.1f%% %11.1f%%\n",
			ph.name, 100*errAt(off, ph.lo, ph.hi), 100*errAt(on, ph.lo, ph.hi))
	}

	fmt.Println()
	for i, b := range on.Bins {
		if b.Change {
			fmt.Printf("change verdict at bin %d (score %.2f): stale history truncated, model refits\n", i, b.ChangeScore)
		}
	}
	fmt.Println("\nexpected shape: identical error until the drift; then the detector-off run")
	fmt.Println("carries the stale regime for a full history window while the detector-on run")
	fmt.Println("recovers within a few dozen bins of its verdict (>= 2x faster, pinned by")
	fmt.Println("TestDriftDetectorRecovery; the 'robust' experiment reports the full catalog).")
}
