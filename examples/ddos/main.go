// DDoS resilience: the §4.5.5 scenario. A spoofed SYN flood doubles the
// flow-state workload mid-run; predictive shedding absorbs it by
// sampling, while the unmodified system drops packets without control.
package main

import (
	"fmt"
	"time"

	"repro/internal/stats"
	"repro/pkg/loadshed"
)

func main() {
	const dur = 30 * time.Second
	target := loadshed.IPv4(147, 83, 1, 1)

	mkSrc := func() loadshed.Source {
		cfg := loadshed.CESCA1(3, dur, 0.1)
		cfg.Anomalies = []loadshed.Anomaly{
			// Flood for the middle third of the run at 3x the base rate.
			loadshed.NewSYNFlood(dur/3, dur/3, 3*cfg.PacketsPerSec, target, 80),
		}
		return loadshed.NewGenerator(cfg)
	}
	mkQs := func() []loadshed.Query {
		return []loadshed.Query{loadshed.NewFlows(loadshed.QueryConfig{})}
	}

	// Capacity fits normal traffic with 30% headroom; the flood exceeds
	// it. Platform overhead (capture + feature extraction) scales with
	// the packet rate and cannot be shed, so the budget reserves room
	// for it at flood rates — the thesis experiment (§4.5.5) likewise
	// set the availability threshold well above the platform floor.
	normalSrc := loadshed.NewGenerator(loadshed.CESCA1(3, dur, 0.1))
	ovh, demand := loadshed.MeasureLoad(normalSrc, mkQs(), 9)
	capacity := 4*ovh + 1.3*demand
	ref := loadshed.Reference(mkSrc(), mkQs(), 9)

	for _, scheme := range []loadshed.Scheme{loadshed.Predictive, loadshed.Original} {
		mon := loadshed.New(loadshed.Config{
			Scheme:     scheme,
			Capacity:   capacity,
			Seed:       9,
			BufferBins: 2, // a 200 ms capture buffer, like the paper's emulation
		}, mkQs())
		res := mon.Run(mkSrc())
		errs := loadshed.Errors(mkQs(), res, ref)["flows"]
		fmt.Printf("%-11s flow-count error mean %5.2f%% max %5.2f%%, drops %d\n",
			scheme, 100*stats.Mean(errs), 100*stats.Max(errs), res.TotalDrops())
	}
	fmt.Println("\nexpected shape: predictive keeps the error within a few percent and")
	fmt.Println("drops nothing; the original system loses packets exactly during the attack.")
}
