// Quickstart: build a monitor with three queries, overload it 2x, and
// watch predictive load shedding keep the answers accurate.
package main

import (
	"fmt"
	"time"

	"repro/pkg/loadshed"
)

func main() {
	// A deterministic 20 s synthetic trace shaped like the paper's
	// CESCA-II capture at a tenth of its rate.
	mkSrc := func() loadshed.Source {
		return loadshed.NewGenerator(loadshed.CESCA2(1, 20*time.Second, 0.1))
	}
	mkQs := func() []loadshed.Query {
		return []loadshed.Query{
			loadshed.NewCounter(loadshed.QueryConfig{}),
			loadshed.NewFlows(loadshed.QueryConfig{}),
			loadshed.NewTopK(loadshed.QueryConfig{}, 10),
		}
	}

	// Size the CPU budget so the queries need twice the cycles left
	// after the platform pays for itself: a sustained 2x overload.
	capacity := loadshed.CapacityForOverload(mkSrc(), mkQs(), 7, 2)
	fmt.Printf("capacity: %.3g cycles per 100ms bin (queries need 2x the remainder)\n", capacity)

	mon := loadshed.New(loadshed.Config{
		Scheme:   loadshed.Predictive,
		Capacity: capacity,
		Strategy: loadshed.MMFSPkt(),
		Seed:     7,
	}, mkQs())
	res := mon.Run(mkSrc())

	// Accuracy against a lossless reference run.
	ref := loadshed.Reference(mkSrc(), mkQs(), 7)
	errs := loadshed.MeanErrors(mkQs(), res, ref)

	fmt.Printf("uncontrolled drops: %d of %d packets\n", res.TotalDrops(), res.TotalWirePkts())
	fmt.Println("mean accuracy error under 2x overload:")
	for _, q := range mkQs() {
		fmt.Printf("  %-10s %6.2f%%\n", q.Name(), errs[q.Name()]*100)
	}
	var rates float64
	for _, b := range res.Bins {
		rates += b.GlobalRate
	}
	fmt.Printf("mean sampling rate: %.2f (the other ~half of the traffic was shed, not dropped)\n",
		rates/float64(len(res.Bins)))
}
