// Custom load shedding: the Chapter 6 story in one run. A p2p-detector
// sheds its own load (degrading to a port heuristic instead of losing
// packets), while a selfish clone that ignores shed requests is
// contained by the enforcement policy.
package main

import (
	"fmt"
	"time"

	"repro/pkg/loadshed"
)

func main() {
	const dur = 20 * time.Second
	mkSrc := func() loadshed.Source {
		cfg := loadshed.UPC2(13, dur, 0.1)
		cfg.P2PFrac = 0.15
		return loadshed.NewGenerator(cfg)
	}
	mkQs := func(selfish bool) func() []loadshed.Query {
		return func() []loadshed.Query {
			first := loadshed.Query(loadshed.NewP2PDetector(loadshed.QueryConfig{Seed: 13}))
			if selfish {
				first = loadshed.NewSelfishP2P(loadshed.QueryConfig{Seed: 13})
			}
			return []loadshed.Query{
				first,
				loadshed.NewCounter(loadshed.QueryConfig{Seed: 13}),
				loadshed.NewFlows(loadshed.QueryConfig{Seed: 13}),
			}
		}
	}

	capacity := loadshed.CapacityForOverload(mkSrc(), mkQs(false)(), 17, 2)
	ref := loadshed.Reference(mkSrc(), mkQs(false)(), 17)

	run := func(label string, selfish bool, mk func() []loadshed.Query) {
		mon := loadshed.New(loadshed.Config{
			Scheme:         loadshed.Predictive,
			Capacity:       capacity,
			Strategy:       loadshed.MMFSPkt(),
			Seed:           17,
			CustomShedding: true,
		}, mk())
		res := mon.Run(mkSrc())
		errs := loadshed.MeanErrors(mkQs(false)(), res, ref)
		fmt.Printf("%s:\n", label)
		if selfish {
			// The clone's answers are not comparable (different query);
			// what matters is how many cycles it managed to grab.
			var clone, total float64
			for _, b := range res.Bins {
				clone += b.QueryUsed[0]
				total += b.Used
			}
			fmt.Printf("  selfish clone consumed %.1f%% of query cycles\n", 100*clone/total)
		} else {
			fmt.Printf("  p2p-detector error %5.2f%%\n", 100*errs["p2p-detector"])
		}
		fmt.Printf("  counter error %5.2f%%  flows error %5.2f%%  drops %d\n",
			100*errs["counter"], 100*errs["flows"], res.TotalDrops())
		for _, st := range mon.CustomStates() {
			fmt.Printf("  enforcement: %s -> mode %v (correction factor %.2f)\n",
				st.Name(), st.Mode(), st.Corr())
		}
	}

	run("compliant p2p-detector with custom shedding", false, mkQs(false))
	fmt.Println()
	run("selfish clone that ignores shed requests", true, mkQs(true))
	fmt.Println("\nexpected shape: the compliant detector keeps good accuracy at half the")
	fmt.Println("cycles; the selfish clone is starved or policed and the bystander")
	fmt.Println("queries keep their accuracy either way.")
}
