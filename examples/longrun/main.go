// Longrun: the streaming runtime on an effectively endless trace. A
// MaxBins-capped generator stands in for days of live traffic; the
// monitor streams it through a rolling aggregator instead of
// accumulating a RunResult, so resident memory stays flat no matter how
// long the run — the regime where an online monitor actually lives.
//
// Watch the heap column: it settles after the window fills and stays
// put, while the legacy Run path would grow by one BinStats (plus three
// per-query slices) every 100 ms forever.
package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/pkg/loadshed"
)

func main() {
	const bins = 6000 // 10 minutes of 100 ms bins; set -1 to truly run forever

	mkQs := func() []loadshed.Query {
		return []loadshed.Query{
			loadshed.NewCounter(loadshed.QueryConfig{}),
			loadshed.NewFlows(loadshed.QueryConfig{}),
			loadshed.NewTopK(loadshed.QueryConfig{}, 10),
		}
	}

	// Size the budget on a bounded probe of the same traffic, then
	// stream an unbounded continuation of it.
	cfg := loadshed.CESCA2(1, 30*time.Second, 0.05)
	capacity := loadshed.CapacityForOverload(loadshed.NewGenerator(cfg), mkQs(), 7, 2)
	fmt.Printf("capacity %.3g cycles/bin (sustained 2x overload)\n\n", capacity)
	cfg.MaxBins = bins

	mon := loadshed.New(loadshed.Config{
		Scheme:   loadshed.Predictive,
		Capacity: capacity,
		Strategy: loadshed.MMFSPkt(),
		Seed:     7,
	}, mkQs())

	roll := loadshed.NewRollingStats(600) // one minute of bins
	fmt.Printf("%-12s %-9s %-8s %-10s %-6s %-9s\n",
		"trace-time", "pkts/s", "drop%", "unsampled%", "rate", "heap-KiB")
	nbins := 0
	report := func(b *loadshed.BinStats) {
		// Snapshot scans the window; only pay for it once a minute.
		if nbins++; nbins%600 != 0 {
			return
		}
		s := roll.Snapshot()
		var m runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m)
		fmt.Printf("%-12v %-9.0f %-8.3f %-10.3f %-6.3f %-9d\n",
			b.Start+100*time.Millisecond, 10*s.PktsPerBin, 100*s.DropFrac,
			100*s.UnsampledFrac, s.MeanGlobalRate, m.HeapAlloc/1024)
	}
	mon.Stream(loadshed.NewGenerator(cfg), loadshed.Tee(roll, loadshed.SinkFuncs{Bin: report}))

	s := roll.Snapshot()
	dropPct := 0.0
	if s.WirePkts > 0 {
		dropPct = 100 * float64(s.DropPkts) / float64(s.WirePkts)
	}
	fmt.Printf("\n%d bins, %d intervals streamed; %d packets offered, %.3f%% dropped uncontrolled\n",
		s.Bins, s.Intervals, s.WirePkts, dropPct)
}
