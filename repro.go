// Package repro is the historical facade of this reproduction of "Load
// Shedding in Network Monitoring Applications" (Barlet-Ros, Iannaccone,
// Sanjuàs-Cuxart, Amores-López, Solé-Pareta; USENIX ATC 2007).
//
// The monitoring engine now lives in the public package
// repro/pkg/loadshed; this package remains as a thin alias layer for
// existing embedders and keeps the original names working:
//
//	src := repro.NewGenerator(repro.CESCA2(1, 30*time.Second, 0.1))
//	qs := repro.StandardQueries(repro.QueryConfig{})
//	mon := repro.NewMonitor(repro.MonitorConfig{
//		Scheme:   repro.Predictive,
//		Capacity: 3e8, // cycles per 100 ms bin ("3 GHz")
//		Strategy: repro.MMFSPkt(),
//	}, qs)
//	res := mon.Run(src)
//
// New code should import repro/pkg/loadshed directly. The experiment
// harness behind every table and figure of the paper lives in
// internal/experiments and is driven by cmd/lsrepro.
package repro

import (
	"repro/pkg/loadshed"
)

// Core monitoring types.
type (
	// Monitor is the CoMo-like monitoring system with load shedding.
	Monitor = loadshed.System
	// MonitorConfig parameterizes a Monitor.
	MonitorConfig = loadshed.Config
	// RunResult is everything a monitoring run recorded.
	RunResult = loadshed.RunResult
	// BinStats records one time bin of a run.
	BinStats = loadshed.BinStats
	// Scheme selects the load shedding scheme.
	Scheme = loadshed.Scheme
	// Query is a black-box monitoring application.
	Query = loadshed.Query
	// QueryConfig carries query construction tunables.
	QueryConfig = loadshed.QueryConfig
	// Strategy decides per-query sampling rates under overload.
	Strategy = loadshed.Strategy
	// TraceConfig parameterizes the synthetic traffic generator.
	TraceConfig = loadshed.TraceConfig
	// TraceSource produces batches of packets.
	TraceSource = loadshed.Source
	// Anomaly injects attack traffic into a generated trace.
	Anomaly = loadshed.Anomaly
)

// Load shedding schemes.
const (
	// Predictive is the paper's scheme (Algorithm 1).
	Predictive = loadshed.Predictive
	// Reactive sheds based on the previous batch's cost (Eq. 4.1).
	Reactive = loadshed.Reactive
	// Original drops packets at the capture buffer, like unmodified CoMo.
	Original = loadshed.Original
	// NoShed processes everything the buffer admits.
	NoShed = loadshed.NoShed
)

// NewMonitor builds a monitoring system around fresh query instances.
func NewMonitor(cfg MonitorConfig, qs []Query) *Monitor {
	return loadshed.New(cfg, qs)
}

// Reference produces the ground-truth run used for accuracy evaluation.
func Reference(src TraceSource, qs []Query, seed uint64) *RunResult {
	return loadshed.Reference(src, qs, seed)
}

// MeasureDemand returns the mean per-bin cycles the queries need at
// full rate (query work only; see MeasureCapacity for the full budget).
func MeasureDemand(src TraceSource, qs []Query, seed uint64) float64 {
	return loadshed.MeasureDemand(src, qs, seed)
}

// MeasureCapacity returns the minimum per-bin capacity at which the
// predictive system sheds nothing: platform and prediction overhead
// plus full-rate query demand. Overload experiments use
// capacity = MeasureCapacity × (1 − K).
func MeasureCapacity(src TraceSource, qs []Query, seed uint64) float64 {
	return loadshed.MeasureCapacity(src, qs, seed)
}

// CapacityForOverload returns a capacity putting the query demand at
// `factor` times the cycles left after overhead.
func CapacityForOverload(src TraceSource, qs []Query, seed uint64, factor float64) float64 {
	return loadshed.CapacityForOverload(src, qs, seed, factor)
}

// Errors computes per-query, per-interval accuracy errors of a run
// against a reference run.
func Errors(metric []Query, got, ref *RunResult) map[string][]float64 {
	return loadshed.Errors(metric, got, ref)
}

// MeanErrors averages Errors per query.
func MeanErrors(metric []Query, got, ref *RunResult) map[string]float64 {
	return loadshed.MeanErrors(metric, got, ref)
}

// Strategies.

// EqualRates returns the Chapter 4 strategy: one global sampling rate.
// With respectMinRates it becomes the eq_srates baseline of Chapter 5.
func EqualRates(respectMinRates bool) Strategy { return loadshed.EqualRates(respectMinRates) }

// MMFSCPU returns max-min fair share in CPU cycles (§5.2.1).
func MMFSCPU() Strategy { return loadshed.MMFSCPU() }

// MMFSPkt returns max-min fair share in packet access (§5.2.2), the
// paper's preferred strategy.
func MMFSPkt() Strategy { return loadshed.MMFSPkt() }

// Queries.

// StandardQueries returns the seven-query set of the Chapter 3/4
// evaluation.
func StandardQueries(cfg QueryConfig) []Query { return loadshed.StandardQueries(cfg) }

// AllQueries returns all ten Table 2.2 queries.
func AllQueries(cfg QueryConfig) []Query { return loadshed.AllQueries(cfg) }

// NewSelfishP2P returns a p2p-detector that ignores custom shed
// requests — the adversary the enforcement policy must contain (§6.3.4).
func NewSelfishP2P(cfg QueryConfig) Query { return loadshed.NewSelfishP2P(cfg) }

// NewBuggyP2P returns a p2p-detector whose shedding implementation is
// broken (§6.3.5).
func NewBuggyP2P(cfg QueryConfig) Query { return loadshed.NewBuggyP2P(cfg) }

// Traffic generation.

// NewGenerator builds a deterministic synthetic traffic source.
func NewGenerator(cfg TraceConfig) *loadshed.Generator { return loadshed.NewGenerator(cfg) }

// Dataset presets approximating the paper's traces (Table 2.3).
var (
	CESCA1  = loadshed.CESCA1
	CESCA2  = loadshed.CESCA2
	Abilene = loadshed.Abilene
	CENIC   = loadshed.CENIC
	UPC1    = loadshed.UPC1
	UPC2    = loadshed.UPC2
)

// Anomaly constructors.
var (
	// NewSYNFlood builds the spoofed SYN flood of §4.5.5.
	NewSYNFlood = loadshed.NewSYNFlood
	// NewOnOffDDoS builds the 1 s on / 1 s off spoofed DDoS of §3.4.3.
	NewOnOffDDoS = loadshed.NewOnOffDDoS
)
