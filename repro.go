// Package repro is the public face of this reproduction of "Load
// Shedding in Network Monitoring Applications" (Barlet-Ros, Iannaccone,
// Sanjuàs-Cuxart, Amores-López, Solé-Pareta; USENIX ATC 2007).
//
// The package re-exports the pieces a downstream user needs to build a
// monitoring pipeline with predictive load shedding:
//
//	src := repro.NewGenerator(repro.CESCA2(1, 30*time.Second, 0.1))
//	qs := repro.StandardQueries(repro.QueryConfig{})
//	mon := repro.NewMonitor(repro.MonitorConfig{
//		Scheme:   repro.Predictive,
//		Capacity: 3e8, // cycles per 100 ms bin ("3 GHz")
//		Strategy: repro.MMFSPkt(),
//	}, qs)
//	res := mon.Run(src)
//
// Results carry per-bin controller state (predictions, sampling rates,
// buffer occupancy, drops) and per-interval query answers; compare
// against repro.Reference to obtain accuracy numbers. The experiment
// harness behind every table and figure of the paper lives in
// internal/experiments and is driven by cmd/lsrepro.
package repro

import (
	"repro/internal/custom"
	"repro/internal/queries"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

// Core monitoring types.
type (
	// Monitor is the CoMo-like monitoring system with load shedding.
	Monitor = system.System
	// MonitorConfig parameterizes a Monitor.
	MonitorConfig = system.Config
	// RunResult is everything a monitoring run recorded.
	RunResult = system.RunResult
	// Scheme selects the load shedding scheme.
	Scheme = system.Scheme
	// Query is a black-box monitoring application.
	Query = queries.Query
	// QueryConfig carries query construction tunables.
	QueryConfig = queries.Config
	// Strategy decides per-query sampling rates under overload.
	Strategy = sched.Strategy
	// TraceConfig parameterizes the synthetic traffic generator.
	TraceConfig = trace.Config
	// TraceSource produces batches of packets.
	TraceSource = trace.Source
	// Anomaly injects attack traffic into a generated trace.
	Anomaly = trace.Anomaly
)

// Load shedding schemes.
const (
	// Predictive is the paper's scheme (Algorithm 1).
	Predictive = system.Predictive
	// Reactive sheds based on the previous batch's cost (Eq. 4.1).
	Reactive = system.Reactive
	// Original drops packets at the capture buffer, like unmodified CoMo.
	Original = system.Original
	// NoShed processes everything the buffer admits.
	NoShed = system.NoShed
)

// NewMonitor builds a monitoring system around fresh query instances.
func NewMonitor(cfg MonitorConfig, qs []Query) *Monitor {
	return system.New(cfg, qs)
}

// Reference produces the ground-truth run used for accuracy evaluation.
func Reference(src TraceSource, qs []Query, seed uint64) *RunResult {
	return system.Reference(src, qs, seed)
}

// MeasureDemand returns the mean per-bin cycles the queries need at
// full rate (query work only; see MeasureCapacity for the full budget).
func MeasureDemand(src TraceSource, qs []Query, seed uint64) float64 {
	return system.MeasureDemand(src, qs, seed)
}

// MeasureCapacity returns the minimum per-bin capacity at which the
// predictive system sheds nothing: platform and prediction overhead
// plus full-rate query demand. Overload experiments use
// capacity = MeasureCapacity × (1 − K).
func MeasureCapacity(src TraceSource, qs []Query, seed uint64) float64 {
	return system.MeasureCapacity(src, qs, seed)
}

// CapacityForOverload returns a capacity putting the query demand at
// `factor` times the cycles left after overhead.
func CapacityForOverload(src TraceSource, qs []Query, seed uint64, factor float64) float64 {
	return system.CapacityForOverload(src, qs, seed, factor)
}

// Errors computes per-query, per-interval accuracy errors of a run
// against a reference run.
func Errors(metric []Query, got, ref *RunResult) map[string][]float64 {
	return system.Errors(metric, got, ref)
}

// MeanErrors averages Errors per query.
func MeanErrors(metric []Query, got, ref *RunResult) map[string]float64 {
	return system.MeanErrors(metric, got, ref)
}

// Strategies.

// EqualRates returns the Chapter 4 strategy: one global sampling rate.
// With respectMinRates it becomes the eq_srates baseline of Chapter 5.
func EqualRates(respectMinRates bool) Strategy {
	return sched.EqualRates{RespectMinRates: respectMinRates}
}

// MMFSCPU returns max-min fair share in CPU cycles (§5.2.1).
func MMFSCPU() Strategy { return sched.MMFSCPU{} }

// MMFSPkt returns max-min fair share in packet access (§5.2.2), the
// paper's preferred strategy.
func MMFSPkt() Strategy { return sched.MMFSPkt{} }

// Queries.

// StandardQueries returns the seven-query set of the Chapter 3/4
// evaluation.
func StandardQueries(cfg QueryConfig) []Query { return queries.StandardSet(cfg) }

// AllQueries returns all ten Table 2.2 queries.
func AllQueries(cfg QueryConfig) []Query { return queries.FullSet(cfg) }

// NewSelfishP2P returns a p2p-detector that ignores custom shed
// requests — the adversary the enforcement policy must contain (§6.3.4).
func NewSelfishP2P(cfg QueryConfig) Query {
	return custom.NewSelfish(queries.NewP2PDetector(cfg))
}

// NewBuggyP2P returns a p2p-detector whose shedding implementation is
// broken (§6.3.5).
func NewBuggyP2P(cfg QueryConfig) Query {
	return custom.NewBuggy(queries.NewP2PDetector(cfg))
}

// Traffic generation.

// NewGenerator builds a deterministic synthetic traffic source.
func NewGenerator(cfg TraceConfig) *trace.Generator { return trace.NewGenerator(cfg) }

// Dataset presets approximating the paper's traces (Table 2.3).
var (
	CESCA1  = trace.CESCA1
	CESCA2  = trace.CESCA2
	Abilene = trace.Abilene
	CENIC   = trace.CENIC
	UPC1    = trace.UPC1
	UPC2    = trace.UPC2
)

// Anomaly constructors.
var (
	// NewSYNFlood builds the spoofed SYN flood of §4.5.5.
	NewSYNFlood = trace.NewSYNFlood
	// NewOnOffDDoS builds the 1 s on / 1 s off spoofed DDoS of §3.4.3.
	NewOnOffDDoS = trace.NewOnOffDDoS
)
