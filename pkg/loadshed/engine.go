// Package loadshed is the public monitoring engine of this reproduction
// of "Load Shedding in Network Monitoring Applications" (Barlet-Ros et
// al., USENIX ATC 2007): the CoMo-like batch pipeline that captures
// traffic, extracts features, predicts per-query cost, decides and
// applies load shedding, runs the queries on a bounded worker pool, and
// feeds measurements back into the controller.
//
// Each captured batch flows through six explicit stages (see
// DESIGN.md §2 and stages.go): admit → platformOverhead →
// extractPredict → decideShedding → execute → feedback, with a
// BinContext threading state between them. The execute stage fans the
// queries out over Config.Workers goroutines; runs are bit-identical
// for any worker count because every query owns its RNG streams and
// results merge in index order.
//
// It implements the four schemes the thesis evaluates against each
// other (§4.5.1, §5.5.3):
//
//   - Predictive: Chapter 4's Algorithm 1, optionally with a Chapter 5
//     per-query strategy (mmfs_cpu / mmfs_pkt / eq_srates) and Chapter
//     6 custom shedding.
//   - Reactive: sampling driven by the previous batch's cost (Eq. 4.1,
//     SEDA-style).
//   - Original: unmodified CoMo — no sampling, packets drop when the
//     capture buffer fills.
//   - NoShed: process everything; with infinite capacity this produces
//     the reference (ground-truth) run.
//
// The paper measures cycles with the TSC; here query cost comes from
// the instrumented cost model (see queries.CostModel and DESIGN.md),
// with optional multiplicative measurement noise and rare spikes that
// stand in for cache misses and context switches (§3.2.4).
package loadshed

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/custom"
	"repro/internal/detect"
	"repro/internal/features"
	"repro/internal/hash"
	"repro/internal/pkt"
	"repro/internal/predict"
	"repro/internal/queries"
	"repro/internal/sampling"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Scheme selects the load shedding behaviour of a run.
type Scheme int

// The four schemes of the evaluation.
const (
	Predictive Scheme = iota
	Reactive
	Original
	NoShed
)

// String returns the scheme name used in figures.
func (s Scheme) String() string {
	switch s {
	case Predictive:
		return "predictive"
	case Reactive:
		return "reactive"
	case Original:
		return "original"
	case NoShed:
		return "no_lshed"
	default:
		return "unknown"
	}
}

// Cost coefficients of the platform itself (the "como_cycles" and
// prediction-subsystem costs of Algorithm 1). Values are cycles.
const (
	comoPerBin       = 1e5   // fixed platform work per batch
	comoPerPkt       = 40    // capture/filter cost per admitted packet
	feCostPerOp      = 25    // feature extraction, per hash+insert op
	fcbfCostPerOp    = 4     // FCBF, per correlation multiply-accumulate
	mlrCostPerOp     = 6     // OLS solve, per scalar multiply
	sampleCostPerPkt = 10    // sampling decision per packet
	diskSpikeProb    = 0.004 // rare platform spikes (disk, kernel)
	diskSpikeFactor  = 20.0  // spike size, × comoPerBin
)

// Config parameterizes a run.
type Config struct {
	Scheme   Scheme
	Capacity float64        // cycles per time bin; <= 0 or +Inf means unlimited
	Strategy sched.Strategy // per-query strategy; nil = single global rate (Ch. 4)
	Cost     queries.CostModel
	Seed     uint64

	HistoryLen    int     // MLR history length; predict.DefaultHistory if 0
	FCBFThreshold float64 // predict.DefaultThreshold if 0
	PredictorKind string  // "mlr" (default), "slr", "ewma"

	NoiseSigma  float64 // lognormal sigma of cost measurement noise (default 0.01)
	SpikeProb   float64 // probability of a cost spike per query-bin (default 0)
	SpikeFactor float64 // spike multiplier (default 2.5)

	// Workers bounds the engine's total concurrency. 0 selects
	// runtime.GOMAXPROCS(0); 1 runs the strictly sequential bin loop
	// with every query inline on the run goroutine. Workers >= 2 (unless
	// NoPipeline is set) additionally enables the two-deep bin pipeline:
	// the count splits between the front-stage sketch pool and the
	// back-stage execute pool per splitWorkers (front = ⌊Workers/2⌋, at
	// least 1; execute = the rest — see the table in DESIGN.md §10).
	// Results are bit-identical for any value: sketching is a pure
	// function of the batch merged in index order, each query owns its
	// RNG streams, and per-bin results merge in query-index order.
	Workers int

	// NoPipeline forces the sequential bin loop even when Workers >= 2,
	// keeping the whole Workers count for the execute pool. Output is
	// identical either way; the switch exists for measurement (pipelined
	// vs sequential at equal Workers) and as an escape hatch.
	NoPipeline bool

	BufferBins      float64 // capture buffer size in bins of traffic (default 50 ≈ 5 s, a 256 MB DAG buffer at evaluation rates; Ch. 5's no-shedding emulation sets 2 ≈ 200 ms)
	ReactiveMinRate float64 // α of Eq. 4.1 (default 0.01)

	CustomShedding bool           // enable the Chapter 6 custom-shedding protocol
	CustomPolicy   *custom.Policy // enforcement tunables; defaults if nil

	// Arrivals registers queries that join the system mid-run (§6.3.3):
	// each Make is invoked when the run reaches AtBin. Early interval
	// results of late queries are nil.
	Arrivals []Arrival

	// Probe, when set, is invoked after every processed bin; experiment
	// harnesses use it to sample internal state (e.g. the custom
	// shedding audit pairs of Figure 6.3).
	Probe func(bin int)

	// ChangeDetection enables the online drift detector (internal/
	// detect): every bin it observes the extracted feature vector and
	// the aggregate prediction residual, and on a change verdict every
	// MLR predictor discounts its pre-change history (NotifyChange) so
	// the model refits on the new regime instead of averaging both.
	// Predictive scheme only. Default off — and when off, runs are
	// bit-identical to an engine built without the detector at all
	// (pinned by TestChangeDetectionOffBitIdentical).
	ChangeDetection bool
	// Detect tunes the detector; zero fields select the defaults
	// documented in the detect package.
	Detect detect.Config
	// ChangeDiscount is the weight NotifyChange leaves on pre-change
	// history rows: 0 selects predict.DefaultChangeDiscount, a
	// negative value truncates the old regime outright. Truncation is
	// the stronger medicine — FCBF selects features on raw columns, so
	// down-weighted rows still steer selection even though the fit
	// ignores them; dropping them re-selects purely on the new regime.
	ChangeDiscount float64
}

// Arrival schedules a query to join a running system.
type Arrival struct {
	AtBin int
	Make  func() queries.Query
}

func (c Config) withDefaults() Config {
	if c.Cost == (queries.CostModel{}) {
		c.Cost = queries.DefaultCostModel()
	}
	if c.HistoryLen == 0 {
		c.HistoryLen = predict.DefaultHistory
	}
	if c.FCBFThreshold == 0 {
		c.FCBFThreshold = predict.DefaultThreshold
	}
	if c.PredictorKind == "" {
		c.PredictorKind = "mlr"
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.01
	}
	if c.SpikeFactor == 0 {
		c.SpikeFactor = 2.5
	}
	if c.BufferBins == 0 {
		c.BufferBins = 50
	}
	if c.ReactiveMinRate == 0 {
		c.ReactiveMinRate = 0.01
	}
	if c.Capacity <= 0 {
		c.Capacity = math.Inf(1)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// BinStats records one time bin of a run — the raw material of the
// Chapter 4 and 6 time-series figures.
type BinStats struct {
	Start time.Duration

	// Capacity is the cycle budget the bin ran under (+Inf when
	// unlimited). Under a Cluster coordinator it varies bin to bin.
	Capacity float64

	WirePkts  int // packets on the wire this bin
	DropPkts  int // uncontrolled capture-buffer ("DAG") drops
	AdmitPkts int // packets entering the system
	WireBytes int

	Predicted float64 // Σ per-query predicted cycles at full rate
	Alloc     float64 // Σ per-query predicted cycles at applied rates
	Used      float64 // Σ per-query measured cycles
	Overhead  float64 // platform + prediction subsystem cycles
	Shed      float64 // sampling + re-extraction cycles
	Avail     float64 // the availability used for the decision

	GlobalRate float64   // min across queries (1 when not shedding)
	Rates      []float64 // per-query applied rates
	QueryUsed  []float64 // per-query measured cycles
	QueryPred  []float64 // per-query predictions at full rate

	BufferBins float64 // buffer occupancy, in bins of delay

	// Change detection (zero unless Config.ChangeDetection): the
	// detector's combined score for this bin (1.0 = firing threshold)
	// and whether a change verdict fired here.
	ChangeScore float64
	Change      bool
}

// IntervalResults records every query's flushed result for one
// measurement interval.
type IntervalResults struct {
	Index   int
	Results []queries.Result // index-aligned with RunResult.Queries
	// ExportCycles is the cost of flushing interval state to the export
	// process. CoMo handles it outside the capture loop (§2.1.2), so it
	// is reported but not charged against the real-time bin budget.
	ExportCycles float64
}

// RunResult is everything a run produced.
type RunResult struct {
	Scheme    Scheme
	Queries   []string
	Bins      []BinStats
	Intervals []IntervalResults
}

// runQuery is the per-query runtime state. Everything here is owned by
// whichever worker runs the query within a bin; nothing is shared
// between queries, which is what lets the execute stage fan out.
type runQuery struct {
	q     queries.Query
	pred  predict.Predictor
	mlr   *predict.MLR // non-nil when PredictorKind == "mlr"
	ext   *features.Extractor
	fsamp *sampling.FlowSampler
	psamp *sampling.PacketSampler
	noise *hash.XorShift // measurement-noise stream, private per query
	shed  *custom.State  // non-nil when the query supports custom shedding

	// sampBuf is the query's sampling scratch: SampleInto fills it with
	// the shed stream each bin (worker-pool safe — the owning worker is
	// the only writer, and the slice is dead once Process returns).
	sampBuf []pkt.Packet
	// qbatch is the batch view handed to Process. It lives on the
	// runQuery because &qbatch escapes through the Query interface;
	// keeping it here makes that escape a one-time cost instead of a
	// per-bin heap allocation.
	qbatch pkt.Batch
}

// System runs monitoring experiments. Construct with New, call Run.
type System struct {
	cfg Config
	qs  []*runQuery
	gov *core.Governor

	globalExt *features.Extractor
	shedExt   *features.Extractor // shared re-extraction of the sampled stream (§5.5.4)
	shedSamp  *sampling.PacketSampler
	noise     *hash.XorShift
	manager   *custom.Manager
	// det is the online change detector, non-nil only when
	// Config.ChangeDetection is set under the Predictive scheme; the
	// detect stage (stages.go) feeds it between execute and feedback.
	det *detect.Detector

	interval      time.Duration
	reactiveRate  float64
	reactiveDelay float64 // previous bin's overshoot (Eq. 4.1's delay)
	lastConsumed  float64

	// recycle is set per run when the sink is transient (see
	// TransientSink): the engine then reuses per-bin Stats slices and
	// per-interval result storage instead of allocating fresh ones.
	recycle bool

	// Per-bin scratch, written only by the pipeline goroutine between
	// worker-pool drains: the reused BinContext, the predictive demand
	// vector and the shed-stream re-extraction sample. execFn is the
	// worker-pool closure over the reused context, built once instead of
	// per bin.
	bc        BinContext
	execFn    func(int)
	demandBuf []sched.Demand
	schedWs   sched.Workspace
	shedBuf   []pkt.Packet
	// prevIvr recycles the interval result storage when the sink is
	// transient; index-aligned with qs.
	prevIvr []queries.Result

	// execWk is the execute stage's pool size: Workers under the
	// sequential loop, the back-stage half of splitWorkers when
	// pipelined.
	execWk int
	// execPool is the execute stage's persistent worker pool (execWk-1
	// helpers; the run goroutine is the pool's remaining worker),
	// per-run like the pipeline's front pool: newRunner spawns it,
	// finish releases it, an idle System holds no goroutines. nil when
	// execWk == 1 — the execute fan-out then runs inline.
	execPool *staticPool
	// pipe is the two-deep bin pipeline's persistent state (slots,
	// channels, chunk sketcher), built lazily on the first pipelined run
	// and reused after; see pipeline.go.
	pipe *pipeline
	// specSketch, when non-nil, is the front stage's speculative sketch
	// of the current bin's wire batch. extractPredict validates it
	// against the admitted batch; nil selects the sequential
	// sketch-in-place path.
	specSketch *features.Sketch

	// Dynamic query registry (AddQuery/RemoveQuery). Callers queue ops
	// under regMu from any goroutine; the run goroutine drains the queue
	// at measurement-interval boundaries (and at run start), which is the
	// quiesce point where no bin is in flight, every flush has been
	// delivered and every extractor has just rotated. regNames counts the
	// active instances of each query name — initial queries, applied and
	// queued adds, Arrivals — so AddQuery can refuse duplicates and
	// RemoveQuery unknown names without touching run-goroutine state.
	regMu    sync.Mutex
	regOps   []registryOp
	regNames map[string]int
}

// registryOp is one queued registry mutation: an add (add != nil) or a
// removal by name.
type registryOp struct {
	add    queries.Query
	remove string
}

// New builds a system around the given fresh query instances. All
// queries must share the same measurement interval.
func New(cfg Config, qs []queries.Query) *System {
	cfg = cfg.withDefaults()
	if len(qs) == 0 {
		panic("system: no queries")
	}
	s := &System{
		cfg:          cfg,
		gov:          newGovernor(cfg),
		globalExt:    features.NewExtractor(cfg.Seed + 0xfea7),
		shedExt:      features.NewExtractor(cfg.Seed + 0xfea7),
		shedSamp:     sampling.NewPacketSampler(cfg.Seed + 0x5a3d),
		noise:        hash.NewXorShift(cfg.Seed + 0x4015e),
		interval:     qs[0].Interval(),
		reactiveRate: 1,
	}
	s.execWk = cfg.Workers
	if cfg.pipelined() {
		_, s.execWk = splitWorkers(cfg.Workers)
	}
	if cfg.CustomShedding {
		s.manager = custom.NewManager(cfg.CustomPolicy)
	}
	if cfg.ChangeDetection && cfg.Scheme == Predictive {
		s.det = detect.New(cfg.Detect, features.NumFeatures)
	}
	for _, q := range qs {
		s.addQuery(q)
		s.trackName(q.Name(), +1)
	}
	return s
}

// trackName adjusts the registry's active-instance count for a query
// name. addQuery itself does not touch the count: registry adds are
// counted when queued (so a duplicate AddQuery fails immediately), while
// construction and Arrivals count here at wiring time.
func (s *System) trackName(name string, delta int) {
	s.regMu.Lock()
	if s.regNames == nil {
		s.regNames = make(map[string]int)
	}
	s.regNames[name] += delta
	s.regMu.Unlock()
}

// AddQuery queues a fresh query instance to join the stream at the next
// measurement-interval boundary (or at the start of the next run if the
// system is idle). It is safe to call from any goroutine — the admin
// plane of a serving deployment calls it from HTTP handlers — and
// returns an error, never panics, because the input is operator data:
// a duplicate active name or a mismatched measurement interval is
// refused. The join point makes live registration deterministic: the
// query sees exactly the bins a restart with it registered from that
// interval would have shown it (see TestLiveAddMatchesArrivalRestart).
func (s *System) AddQuery(q queries.Query) error {
	if q == nil {
		return errors.New("loadshed: AddQuery: nil query")
	}
	if q.Interval() != s.interval {
		return fmt.Errorf("loadshed: query %s interval %v differs from system interval %v", q.Name(), q.Interval(), s.interval)
	}
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.regNames == nil {
		s.regNames = make(map[string]int)
	}
	if s.regNames[q.Name()] > 0 {
		return fmt.Errorf("loadshed: query %q already registered", q.Name())
	}
	s.regNames[q.Name()]++
	s.regOps = append(s.regOps, registryOp{add: q})
	return nil
}

// RemoveQuery queues the removal of the active query with the given
// name, applied at the next measurement-interval boundary — after its
// final flush has been delivered. Mid-run the slot is tombstoned rather
// than compacted, so sink indices stay aligned: the removed column
// reports zero rates and nil results until the next run starts and the
// slot is reclaimed. Safe to call from any goroutine.
func (s *System) RemoveQuery(name string) error {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.regNames[name] <= 0 {
		return fmt.Errorf("loadshed: no active query %q", name)
	}
	s.regNames[name]--
	s.regOps = append(s.regOps, registryOp{remove: name})
	return nil
}

// applyRegistry drains the queued registry ops, in queue order. It runs
// only on the run goroutine at quiesce points — interval boundaries
// (after startInterval, mirroring where Arrivals join) and run start —
// so an added query's first bin opens a fresh interval and a removed
// query's last interval has already flushed. sink receives OnQuery for
// each add and, if it implements QueryRemovalSink, OnQueryRemove for
// each tombstoned slot.
func (s *System) applyRegistry(sink Sink) {
	s.regMu.Lock()
	ops := s.regOps
	s.regOps = nil
	s.regMu.Unlock()
	for _, op := range ops {
		if op.add != nil {
			s.addQuery(op.add)
			sink.OnQuery(len(s.qs)-1, op.add.Name())
			continue
		}
		for i, rq := range s.qs {
			if rq != nil && rq.q.Name() == op.remove {
				s.qs[i] = nil
				if rs, ok := sink.(QueryRemovalSink); ok {
					rs.OnQueryRemove(i, op.remove)
				}
				break
			}
		}
	}
}

// compactQueries reclaims tombstoned slots between runs. Mid-run a
// removal must leave a nil slot so sink indices stay aligned; at run
// start no sink has seen an index yet and every per-query seed was
// fixed at addQuery time, so the survivors slide down keeping their RNG
// streams, predictors and recycled result storage (prevIvr compacts in
// lockstep — each surviving query keeps its own storage).
func (s *System) compactQueries() {
	n := 0
	for i, rq := range s.qs {
		if rq == nil {
			continue
		}
		if i < len(s.prevIvr) {
			s.prevIvr[n] = s.prevIvr[i]
		} else if n < len(s.prevIvr) {
			// This query never had recycled storage; don't hand it a
			// removed query's.
			s.prevIvr[n] = nil
		}
		s.qs[n] = rq
		n++
	}
	if n == len(s.qs) {
		return
	}
	clear(s.qs[n:])
	s.qs = s.qs[:n]
	if len(s.prevIvr) > n {
		clear(s.prevIvr[n:])
		s.prevIvr = s.prevIvr[:n]
	}
}

// addQuery wires a query into the running system (used at construction
// and by mid-run arrivals). A query whose measurement interval differs
// from the system's would silently misalign every flush, so the check
// New applies to the initial set also guards mid-run Arrivals.
func (s *System) addQuery(q queries.Query) {
	if q.Interval() != s.interval {
		panic(fmt.Sprintf("system: query %s interval %v differs from %v", q.Name(), q.Interval(), s.interval))
	}
	i := len(s.qs)
	rq := &runQuery{
		q:     q,
		ext:   features.NewExtractor(s.cfg.Seed + uint64(i)*0x10001 + 0x9fe),
		fsamp: sampling.NewFlowSampler(s.cfg.Seed + uint64(i)*31 + 7),
		psamp: sampling.NewPacketSampler(s.cfg.Seed + uint64(i)*17 + 3),
		noise: hash.NewXorShift(s.cfg.Seed + uint64(i)*0x2b5ad + 0x6e01),
	}
	switch s.cfg.PredictorKind {
	case "slr":
		rq.pred = predict.NewSLR(s.cfg.HistoryLen, features.IdxPackets)
	case "ewma":
		rq.pred = predict.NewEWMA(predict.DefaultEWMAAlpha)
	default:
		m := predict.NewMLR(s.cfg.HistoryLen, s.cfg.FCBFThreshold)
		m.ChangeDiscount = s.cfg.ChangeDiscount
		rq.pred = m
		rq.mlr = m
	}
	if s.manager != nil {
		if sh, ok := q.(custom.Shedder); ok && q.Method() == sampling.Custom {
			rq.shed = s.manager.Register(q.Name(), sh, q.MinRate())
		}
	}
	s.qs = append(s.qs, rq)
}

func newGovernor(cfg Config) *core.Governor {
	g := core.NewGovernor(cfg.Capacity)
	applyRTTCap(g, cfg.BufferBins, cfg.Capacity)
	return g
}

// applyRTTCap bounds the discovered delay allowance by a fraction of
// the capture buffer: §4.1 resets rtthresh when buffer occupancy
// exceeds a predefined value, well before packets drop. Construction
// and mid-run rebudgeting share it so the bound cannot drift.
func applyRTTCap(g *core.Governor, bufferBins, capacity float64) {
	if !math.IsInf(capacity, 1) {
		g.SetRTTCap(math.Min(2*capacity, 0.4*bufferBins*capacity))
	}
}

// Governor exposes the controller, mainly for tests and experiments.
func (s *System) Governor() *core.Governor { return s.gov }

// ChangeDetector exposes the online change detector, nil unless
// Config.ChangeDetection is enabled under the Predictive scheme.
func (s *System) ChangeDetector() *detect.Detector { return s.det }

// SetCapacity rebudgets the system mid-run: the Cluster coordinator
// calls it every bin to move cycles between shards. Unlike touching the
// governor directly it re-derives the buffer-bounded delay allowance,
// so a shard whose budget shrinks cannot keep an rtthresh discovered
// under a larger one and walk itself into the drop region.
func (s *System) SetCapacity(c float64) {
	s.gov.SetCapacity(c)
	applyRTTCap(s.gov, s.cfg.BufferBins, c)
}

// runner drives a System through a trace one batch at a time, delivering
// every record to a Sink. Stream wraps it for single-link use; the
// Cluster steps many runners in lockstep so the budget coordinator can
// rebalance capacity between bins. The runner itself retains only the
// last bin's record, so memory stays constant for any trace length —
// accumulation, if wanted, is the sink's choice.
type runner struct {
	s    *System
	src  trace.Source
	sink Sink
	pipe *pipeline // non-nil: the front stage owns src (pipeline.go)
	// done, when non-nil, cancels the run: step returns false at the
	// next bin boundary once it is closed. nil (the Stream/Run path)
	// never fires, so the select degenerates to the plain receive.
	done <-chan struct{}
	// boundary, when non-nil, runs at every measurement-interval
	// boundary before the closing interval flushes — the quiesce point
	// where System.Snapshot is valid (nothing interval-scoped survives
	// the boundary, and extractors have not yet rotated). Returning
	// false stops the run before the flush: finish() then performs the
	// single final flush, so a drained run is bin-for-bin identical to
	// a run over the same prefix of the trace. Node uses the hook for
	// periodic checkpoints and coordinator-ordered drains.
	boundary        func(bin, interval int) bool
	binsPerInterval int
	curInterval     int
	bin             int
	lastBin         BinStats // most recent bin, read by the cluster coordinator
	batch           pkt.Batch
	lastIvr         IntervalResults // most recent flush; here because &lastIvr escapes to the sink
}

// newRunner resets the source and queries, announces the initial query
// set to the sink and opens the first measurement interval. A nil sink
// discards.
func (s *System) newRunner(src trace.Source, sink Sink) *runner {
	src.Reset()
	if sink == nil {
		sink = DiscardSink{}
	}
	if !s.recycle {
		// The previous run of this System (if any) retained its records:
		// the last BinStats it delivered still references bc.Stats'
		// slices, so they must not be harvested for reuse by a
		// transient-sink run that follows on the same System.
		s.bc.Stats.Rates, s.bc.Stats.QueryUsed, s.bc.Stats.QueryPred = nil, nil, nil
	}
	s.recycle = sinkIsTransient(sink)
	// Quiesce point: apply registry ops queued while idle (silently —
	// the announcement loop below covers every slot) and reclaim
	// tombstones left by the previous run's removals.
	s.applyRegistry(DiscardSink{})
	s.compactQueries()
	for i, rq := range s.qs {
		rq.q.Reset()
		sink.OnQuery(i, rq.q.Name())
	}
	binsPerInterval := int(s.interval / src.TimeBin())
	if binsPerInterval < 1 {
		binsPerInterval = 1
	}
	s.startInterval()
	r := &runner{s: s, src: src, sink: sink, binsPerInterval: binsPerInterval}
	if s.execWk > 1 {
		s.execPool = newStaticPool(s.execWk - 1)
	}
	if s.cfg.pipelined() {
		r.pipe = s.ensurePipeline()
		r.pipe.begin(src, s.cfg.Scheme == Predictive)
	}
	return r
}

// step processes the next batch — arrivals, interval boundary, the
// six-stage pipeline — and reports false at end of trace. Under the bin
// pipeline the batch (and its speculative sketch) comes from the front
// stage's ready ring instead of the source directly; everything else —
// flushes, arrivals, the stage chain, sink delivery — runs in strict
// bin order on this goroutine either way.
func (r *runner) step() bool {
	s := r.s
	if r.pipe != nil {
		var slot *binSlot
		select {
		case slot = <-r.pipe.ready:
		case <-r.done:
			// Cancelled mid-run: stop consuming the ring. finish()
			// tears the front stage down via the pipeline's quit
			// channel, so the slot in flight is simply abandoned.
			return false
		}
		if !slot.ok {
			r.pipe.free <- slot
			return false
		}
		r.batch = slot.batch
		if !r.advance() {
			// Drained at the boundary: the slot's batch was read from
			// the source but not processed — the checkpoint records the
			// bin, and the resumed run re-reads it from a repositioned
			// source (ResumeSource).
			r.pipe.free <- slot
			return false
		}
		if slot.sketched {
			s.specSketch = slot.sketch
		}
		r.lastBin = s.step(r.bin, &slot.batch)
		s.specSketch = nil
		// The bin is done with the slot: BinStats carries no references
		// into the batch or sketch, so the front may refill it now.
		r.pipe.free <- slot
	} else {
		select {
		case <-r.done:
			return false
		default:
		}
		b, ok := r.src.NextBatch()
		if !ok {
			return false
		}
		r.batch = b
		if !r.advance() {
			return false
		}
		r.lastBin = s.step(r.bin, &r.batch)
	}
	r.sink.OnBin(&r.lastBin)
	if s.cfg.Probe != nil {
		s.cfg.Probe(r.bin)
	}
	r.bin++
	return true
}

// advance handles the work that precedes a bin's stage chain. It
// reports false when a boundary hook stopped the run.
func (r *runner) advance() bool {
	s := r.s
	// Measurement interval boundary: flush results, rotate hashes. This
	// must happen before mid-run arrivals join — a query arriving exactly
	// at a boundary bin belongs to the interval that starts with its
	// first bin, not to the closing one (where it would be flushed with a
	// spurious empty report it never saw traffic for).
	if iv := r.bin / r.binsPerInterval; iv != r.curInterval {
		if r.boundary != nil && !r.boundary(r.bin, iv) {
			return false
		}
		r.lastIvr = s.flush(r.curInterval)
		r.sink.OnInterval(&r.lastIvr)
		r.curInterval = iv
		s.startInterval()
		// Quiesce point: registry ops join/leave here, before the
		// config's scripted Arrivals, so a live-added query's first bin
		// is the first bin of a fresh interval — the precondition of
		// the restart-equivalence oracle.
		s.applyRegistry(r.sink)
	}
	for _, a := range s.cfg.Arrivals {
		if a.AtBin == r.bin {
			q := a.Make()
			s.addQuery(q)
			s.trackName(q.Name(), +1)
			r.sink.OnQuery(len(s.qs)-1, q.Name())
		}
	}
	return true
}

// finish flushes the last open interval into the sink and releases the
// run's pool goroutines.
func (r *runner) finish() {
	if r.pipe != nil {
		r.pipe.stop()
	}
	if r.s.execPool != nil {
		r.s.execPool.close()
		r.s.execPool = nil
	}
	r.lastIvr = r.s.flush(r.curInterval)
	r.sink.OnInterval(&r.lastIvr)
}

// Stream replays src through the system, delivering every BinStats and
// IntervalResults to sink as it is produced. Unlike Run it accumulates
// nothing: with a bounded sink (RollingStats, DiscardSink) a System
// runs indefinitely — an unbounded source included — in constant
// memory. A nil sink discards all records.
func (s *System) Stream(src trace.Source, sink Sink) {
	s.StreamContext(context.Background(), src, sink)
}

// StreamContext is Stream with cancellation: when ctx is cancelled the
// run stops at the next bin boundary — the bin in flight completes, the
// open measurement interval flushes to the sink, and every pipeline and
// worker goroutine is torn down before StreamContext returns (no leaks;
// see TestStreamContextCancelReleasesGoroutines). It returns ctx.Err()
// after a cancellation and nil after a natural end of trace.
//
// Cancellation is polled between bins, so a source whose NextBatch
// blocks indefinitely (a live listener on a silent link) must also be
// closed to unblock it; cmd/lsd's serve mode wires that up with
// context.AfterFunc.
func (s *System) StreamContext(ctx context.Context, src trace.Source, sink Sink) error {
	r := s.newRunner(src, sink)
	r.done = ctx.Done()
	for r.step() {
	}
	r.finish()
	return ctx.Err()
}

// Run replays src through the system and returns the full record. It is
// Stream into slices: every bin and interval is retained, which is what
// the accuracy comparisons of the experiments need, and what a
// long-running deployment must avoid (use Stream there).
func (s *System) Run(src trace.Source) *RunResult {
	rs := newResultSink(s.cfg.Scheme)
	s.Stream(src, rs)
	return rs.res
}

// RunContext is Run with cancellation: the returned record covers every
// bin processed before ctx fired (final partial interval included), and
// err is ctx.Err() if the run was cut short.
func (s *System) RunContext(ctx context.Context, src trace.Source) (*RunResult, error) {
	rs := newResultSink(s.cfg.Scheme)
	err := s.StreamContext(ctx, src, rs)
	return rs.res, err
}

// CustomStates exposes the custom-shedding audit state (nil when custom
// shedding is disabled).
func (s *System) CustomStates() []*custom.State {
	if s.manager == nil {
		return nil
	}
	return s.manager.States()
}

func (s *System) startInterval() {
	s.globalExt.StartInterval()
	// The shared shed-stream extractor (§5.5.4) carries the same
	// interval-grained bitmaps as every other extractor; without this
	// rotation its stale interval state leaks across measurement
	// intervals and corrupts the new-item counts of every sampled query.
	s.shedExt.StartInterval()
	for _, rq := range s.qs {
		if rq == nil { // tombstoned by RemoveQuery
			continue
		}
		rq.ext.StartInterval()
		rq.fsamp.StartInterval()
	}
	if s.manager != nil {
		s.manager.StartInterval()
	}
}

// flush ends a measurement interval: every query reports. Flush work
// happens in CoMo's export process, outside the capture loop's budget,
// so its cost is recorded for reporting but not charged to a bin.
//
// With a transient sink the previous interval's results are dead by
// now, so their storage is handed back to each recycling query via
// FlushInto and the Results slice itself is reused; otherwise every
// flush allocates fresh results the consumer may keep forever.
func (s *System) flush(idx int) IntervalResults {
	nq := len(s.qs)
	out := IntervalResults{Index: idx}
	if s.recycle {
		for len(s.prevIvr) < nq {
			s.prevIvr = append(s.prevIvr, nil)
		}
		out.Results = s.prevIvr[:nq]
	} else {
		out.Results = make([]queries.Result, nq)
	}
	for i, rq := range s.qs {
		if rq == nil {
			// Tombstoned slot: the recycle path would otherwise leave the
			// removed query's last results visible forever.
			out.Results[i] = nil
			continue
		}
		var r queries.Result
		var ops queries.Ops
		if rec, ok := rq.q.(queries.ResultRecycler); ok && s.recycle {
			r, ops = rec.FlushInto(out.Results[i])
		} else {
			r, ops = rq.q.Flush()
		}
		out.Results[i] = r
		out.ExportCycles += s.cfg.Cost.Cycles(ops)
	}
	return out
}
