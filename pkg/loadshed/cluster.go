package loadshed

// cluster.go shards the engine across links: a Cluster runs one System
// per monitored link, all in lockstep, with a global budget coordinator
// that redistributes the machine's total cycle capacity across shards
// every bin. A local shedder can only react to overload on its own
// link; the coordinator sees all links at once and steals budget from
// idle ones to absorb a localized surge (e.g. a DDoS swamping a single
// link), which is the rebalancing argument of "Grand Perspective: Load
// Shedding in Distributed CEP Applications" transplanted to per-link
// monitors.
//
// The coordinator reuses the Chapter 5 allocators (internal/sched)
// with shards in place of queries: each shard presents an observed
// cycle demand and an optional guaranteed share, and mmfs_cpu /
// eq_srates / mmfs_pkt become cross-shard policies. A nil policy is
// the isolated baseline: a static equal split, exactly N independent
// shedders.

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"repro/internal/queries"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Shard describes one link's monitor inside a Cluster.
type Shard struct {
	// Name labels the shard in results ("link0", "uplink", ...).
	Name string
	// Source is the link's traffic. Each shard must own its source:
	// shards step concurrently and Source implementations are not safe
	// for shared use.
	Source trace.Source
	// Queries are the shard's fresh query instances.
	Queries []queries.Query
	// MinShare is the fraction of the shard's observed demand the
	// coordinator must cover before surplus moves elsewhere — the
	// cross-shard analogue of a query's minimum sampling rate m_q.
	// Zero means no guarantee.
	MinShare float64
}

// ClusterConfig parameterizes a multi-link run.
type ClusterConfig struct {
	// Base is the per-shard engine template. Capacity is ignored (the
	// coordinator owns the budget); Seed is offset per shard so every
	// link draws independent streams. Probe and Arrival.Make closures,
	// if set, are invoked concurrently from shard runners (every shard
	// reaches a given bin in the same round) and must not mutate shared
	// state.
	Base Config

	// TotalCapacity is the machine's cycle budget per bin, shared by
	// all shards. <= 0 means unlimited (no coordination possible).
	TotalCapacity float64

	// ShardPolicy splits TotalCapacity across shards each bin from
	// their observed demands. nil selects the static equal split — no
	// coordination, the isolated-shedders baseline.
	ShardPolicy sched.Strategy

	// Runners bounds the goroutines stepping shards within a bin.
	// 0 selects runtime.GOMAXPROCS(0); 1 steps every shard inline.
	// Results are bit-identical for any value: each shard owns all of
	// its state and the coordinator runs at a barrier between bins,
	// reading shards in index order.
	Runners int

	// DemandAlpha is the EWMA weight of the per-shard demand estimate
	// the coordinator allocates from (default 0.5): high enough to
	// chase a flash surge within a few bins, low enough that one noisy
	// bin does not slosh the whole budget around.
	DemandAlpha float64
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.TotalCapacity <= 0 {
		c.TotalCapacity = math.Inf(1)
	}
	if c.Runners <= 0 {
		c.Runners = runtime.GOMAXPROCS(0)
	}
	if c.DemandAlpha == 0 {
		c.DemandAlpha = 0.5
	}
	return c
}

// ShardRun is one shard's record in a ClusterResult.
type ShardRun struct {
	Name   string
	Result *RunResult
	// Capacities is the per-bin cycle budget the coordinator granted,
	// index-aligned with Result.Bins.
	Capacities []float64
}

// ClusterResult merges a cluster run: every shard's full record plus
// the per-bin aggregate across shards.
type ClusterResult struct {
	Shards []ShardRun
	// Aggregate sums the machine-level counters (packets, drops,
	// cycles) across shards per bin; GlobalRate is the minimum across
	// shards and BufferBins the maximum. Per-query slices are nil —
	// they live in the shard records.
	Aggregate []BinStats
}

// TotalDrops sums the uncontrolled capture drops across all shards.
func (r *ClusterResult) TotalDrops() int {
	n := 0
	for i := range r.Shards {
		n += r.Shards[i].Result.TotalDrops()
	}
	return n
}

// TotalWirePkts sums the packets offered across all shards.
func (r *ClusterResult) TotalWirePkts() int {
	n := 0
	for i := range r.Shards {
		n += r.Shards[i].Result.TotalWirePkts()
	}
	return n
}

// clusterShard is the runtime state of one shard.
type clusterShard struct {
	name     string
	minShare float64
	sys      *System
	src      trace.Source
	run      *runner
	caps     []float64
	demand   float64 // EWMA of observed full-rate demand, cycles/bin
	seeded   bool
	done     bool
}

// Cluster runs N per-link Systems under one budget coordinator.
// Construct with NewCluster, call Run.
type Cluster struct {
	cfg    ClusterConfig
	shards []*clusterShard

	// Per-bin coordination scratch (cluster goroutine only).
	activeBuf []*clusterShard
	demandBuf []sched.Demand
	schedWs   sched.Workspace
}

// NewCluster builds a cluster of fresh Systems, one per shard. Each
// shard starts with an equal split of TotalCapacity and a seed offset
// from Base.Seed by its index.
func NewCluster(cfg ClusterConfig, shards []Shard) *Cluster {
	cfg = cfg.withDefaults()
	if len(shards) == 0 {
		panic("cluster: no shards")
	}
	c := &Cluster{cfg: cfg}
	for i, sh := range shards {
		scfg := cfg.Base
		scfg.Capacity = cfg.TotalCapacity / float64(len(shards))
		scfg.Seed = cfg.Base.Seed + uint64(i)*0x9e3779b97f4a7c15
		if cfg.Base.Workers == 0 {
			// Shards already run concurrently; default each shard's
			// query pool to inline execution instead of letting every
			// shard claim all cores.
			scfg.Workers = 1
		}
		name := sh.Name
		if name == "" {
			name = fmt.Sprintf("link%d", i)
		}
		c.shards = append(c.shards, &clusterShard{
			name:     name,
			minShare: sh.MinShare,
			sys:      New(scfg, sh.Queries),
			src:      sh.Source,
		})
	}
	return c
}

// Shards exposes the per-shard Systems, mainly for tests.
func (c *Cluster) Shards() []*System {
	out := make([]*System, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.sys
	}
	return out
}

// Stream steps every shard through its trace in lockstep, coordinating
// the budget between bins and delivering each shard's records to the
// sink mk returns for it (mk itself is called once per shard, in index
// order, before the first bin; a nil mk or nil sink discards). Shards
// whose traces end early drop out; their budget is redistributed among
// the survivors. Like System.Stream it accumulates nothing, so a
// cluster with bounded sinks runs indefinitely in constant memory.
//
// Within a bin, sinks are invoked from the shard-runner pool: each
// shard's sink only ever sees that shard's stream (in order), but
// different shards' sinks run concurrently — a sink instance shared
// between shards must be safe for concurrent use.
func (c *Cluster) Stream(mk func(shard int, name string) Sink) {
	c.StreamContext(context.Background(), mk)
}

// StreamContext is Stream with cancellation: when ctx fires, every
// shard stops at its next bin boundary (each runner polls the same done
// channel System.StreamContext uses), the open intervals flush to their
// sinks, and all shard pipelines and pools are torn down before the
// call returns. It returns ctx.Err() after a cancellation and nil after
// every trace ends naturally.
func (c *Cluster) StreamContext(ctx context.Context, mk func(shard int, name string) Sink) error {
	done := ctx.Done()
	for i, sh := range c.shards {
		var sink Sink
		if mk != nil {
			sink = mk(i, sh.name)
		}
		sh.run = sh.sys.newRunner(sh.src, sink)
		sh.run.done = done
		sh.done = false
	}
	for c.stepAll() {
		c.coordinate()
	}
	for _, sh := range c.shards {
		sh.run.finish()
	}
	return ctx.Err()
}

// Run steps every shard through its trace in lockstep, coordinating the
// budget between bins, and returns the merged record. It is Stream into
// slices; long-running deployments should call Stream with bounded
// sinks instead.
func (c *Cluster) Run() *ClusterResult {
	res, _ := c.RunContext(context.Background())
	return res
}

// RunContext is Run with cancellation: the returned record covers every
// bin processed before ctx fired, and err is ctx.Err() if the run was
// cut short.
func (c *Cluster) RunContext(ctx context.Context) (*ClusterResult, error) {
	sinks := make([]*resultSink, len(c.shards))
	err := c.StreamContext(ctx, func(i int, _ string) Sink {
		sinks[i] = newResultSink(c.shards[i].sys.cfg.Scheme)
		return sinks[i]
	})
	res := &ClusterResult{}
	for i, sh := range c.shards {
		res.Shards = append(res.Shards, ShardRun{
			Name:       sh.name,
			Result:     sinks[i].res,
			Capacities: sh.caps,
		})
	}
	res.Aggregate = aggregateBins(res.Shards)
	return res, err
}

// stepAll advances every live shard by one bin, fanning the shards out
// over the runner pool, and reports whether any shard is still running.
// Determinism holds for any runner count for the same reasons as the
// execute stage's pool: each shard's step touches only shard-owned
// state, and everything cross-shard (coordination, aggregation) happens
// at the barrier afterwards, in shard-index order. Pipelined shards
// (Base.Workers >= 2, DESIGN.md §10) compose with this: each shard
// owns its front goroutine and slot ring, the coordinator's
// SetCapacity still lands between that shard's bins exactly as in a
// sequential shard, and a shard's front exits at end of trace before
// run.finish tears its pools down
// (TestClusterPipelinedShardsDeterminism).
func (c *Cluster) stepAll() bool {
	parallelIndexed(len(c.shards), c.cfg.Runners, func(i int) {
		sh := c.shards[i]
		if sh.done {
			return
		}
		capacity := sh.sys.gov.Capacity()
		if sh.run.step() {
			sh.caps = append(sh.caps, capacity)
		} else {
			sh.done = true
		}
	})
	for _, sh := range c.shards {
		if !sh.done {
			return true
		}
	}
	return false
}

// coordinate redistributes TotalCapacity across the live shards from
// their observed demands. It runs between bins on the cluster
// goroutine, after the step barrier.
func (c *Cluster) coordinate() {
	if c.cfg.ShardPolicy == nil || math.IsInf(c.cfg.TotalCapacity, 1) {
		return // static split: initial equal capacities stand
	}
	active := c.activeBuf[:0]
	for _, sh := range c.shards {
		if sh.done {
			continue
		}
		sh.observeDemand(c.cfg.DemandAlpha)
		active = append(active, sh)
	}
	c.activeBuf = active
	if len(active) == 0 {
		return
	}
	total := c.cfg.TotalCapacity
	if cap(c.demandBuf) < len(active) {
		c.demandBuf = make([]sched.Demand, len(active))
	}
	demands := c.demandBuf[:len(active)]
	for i, sh := range active {
		demands[i] = sched.Demand{Name: sh.name, Cycles: sh.demand, MinRate: sh.minShare}
	}
	allocs := sched.AllocateInto(c.cfg.ShardPolicy, demands, total, &c.schedWs)
	// Floor at 1% of an equal share: a shard the policy zeroed out
	// (disabled largest-first under extreme pressure) must still drain
	// its backlog accounting rather than divide by nothing. Floors are
	// reserved before the surplus is spread, so the grants sum to
	// TotalCapacity and under-loaded shards keep headroom for the next
	// surge (the only overshoot, bounded by the floors themselves,
	// happens when the floors alone exceed the machine).
	floor := 0.01 * total / float64(len(active))
	var used float64
	for _, a := range allocs {
		used += math.Max(a.Cycles, floor)
	}
	surplus := math.Max(0, total-used) / float64(len(active))
	for i, sh := range active {
		sh.sys.SetCapacity(math.Max(allocs[i].Cycles, floor) + surplus)
	}
}

// observeDemand folds the shard's last bin into its demand EWMA. The
// observation is the full-rate cost of the bin: unsheddable platform
// and shedding overhead plus the predictor's full-rate estimate. Bins
// without a prediction (the reactive and original schemes) fall back
// to the measured query cycles rescaled by the applied global rate;
// that rescaling is only meaningful there, where a single rate exists —
// under a per-query strategy the minimum rate would grossly inflate
// the estimate of queries that ran near full rate.
func (sh *clusterShard) observeDemand(alpha float64) {
	if sh.run.bin == 0 {
		return
	}
	b := &sh.run.lastBin
	queryCost := b.Predicted
	if queryCost <= 0 {
		rate := b.GlobalRate
		if rate <= 0 {
			rate = 1 // a fully-withheld bin carries no rescaling signal
		}
		queryCost = b.Used / math.Max(rate, 0.01)
	}
	obs := b.Overhead + b.Shed + queryCost
	if !sh.seeded {
		sh.demand = obs
		sh.seeded = true
		return
	}
	sh.demand = alpha*obs + (1-alpha)*sh.demand
}

// aggregateBins merges per-shard bin records into machine-level bins.
func aggregateBins(shards []ShardRun) []BinStats {
	maxBins := 0
	for _, sh := range shards {
		if n := len(sh.Result.Bins); n > maxBins {
			maxBins = n
		}
	}
	out := make([]BinStats, maxBins)
	for i := range out {
		agg := &out[i]
		agg.GlobalRate = 1
		first := true
		for _, sh := range shards {
			if i >= len(sh.Result.Bins) {
				continue
			}
			b := &sh.Result.Bins[i]
			if first {
				agg.Start = b.Start
				first = false
			}
			agg.Capacity += b.Capacity
			agg.WirePkts += b.WirePkts
			agg.DropPkts += b.DropPkts
			agg.AdmitPkts += b.AdmitPkts
			agg.WireBytes += b.WireBytes
			agg.Predicted += b.Predicted
			agg.Alloc += b.Alloc
			agg.Used += b.Used
			agg.Overhead += b.Overhead
			agg.Shed += b.Shed
			agg.Avail += b.Avail
			if b.GlobalRate < agg.GlobalRate {
				agg.GlobalRate = b.GlobalRate
			}
			if b.BufferBins > agg.BufferBins {
				agg.BufferBins = b.BufferBins
			}
		}
	}
	return out
}

// ShardPolicyByName maps the cross-shard coordinator policies exposed
// on command lines — "static" (no coordination), or any StrategyByName
// name ("mmfs_cpu", "mmfs_pkt", "eq_srates", "equal") — to a strategy.
func ShardPolicyByName(name string) (sched.Strategy, error) {
	if name == "static" {
		return nil, nil
	}
	s, err := StrategyByName(name)
	if err != nil {
		return nil, fmt.Errorf("loadshed: unknown shard policy %q", name)
	}
	return s, nil
}
