package loadshed

// cluster.go shards the engine across links: a Cluster runs one System
// per monitored link, all in lockstep, with a global budget coordinator
// that redistributes the machine's total cycle capacity across shards
// every bin. A local shedder can only react to overload on its own
// link; the coordinator sees all links at once and steals budget from
// idle ones to absorb a localized surge (e.g. a DDoS swamping a single
// link), which is the rebalancing argument of "Grand Perspective: Load
// Shedding in Distributed CEP Applications" transplanted to per-link
// monitors.
//
// The coordinator reuses the Chapter 5 allocators (internal/sched)
// with shards in place of queries: each shard presents an observed
// cycle demand and an optional guaranteed share, and mmfs_cpu /
// eq_srates / mmfs_pkt become cross-shard policies. A nil policy is
// the isolated baseline: a static equal split, exactly N independent
// shedders.
//
// Since the coordinator split (coord.go, transport.go), Cluster is a
// thin composition: a Coordinator plus one Node per shard, wired over
// the synchronous loopback transport. The lockstep loop is unchanged —
// step all shards at the barrier, then run one coordination round
// (reports in shard-index order, allocate, grants back) — so results
// are bit-identical to the pre-split Cluster, and the same Coordinator
// served over TCP (ServeCoordinator) runs the identical protocol across
// processes.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"

	"repro/internal/queries"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Shard describes one link's monitor inside a Cluster.
type Shard struct {
	// Name labels the shard in results ("link0", "uplink", ...).
	Name string
	// Source is the link's traffic. Each shard must own its source:
	// shards step concurrently and Source implementations are not safe
	// for shared use.
	Source trace.Source
	// Queries are the shard's fresh query instances.
	Queries []queries.Query
	// MinShare is the fraction of the shard's observed demand the
	// coordinator must cover before surplus moves elsewhere — the
	// cross-shard analogue of a query's minimum sampling rate m_q.
	// Zero means no guarantee.
	MinShare float64
}

// ClusterConfig parameterizes a multi-link run.
type ClusterConfig struct {
	// Base is the per-shard engine template. Capacity is ignored (the
	// coordinator owns the budget); Seed is offset per shard so every
	// link draws independent streams. Probe and Arrival.Make closures,
	// if set, are invoked concurrently from shard runners (every shard
	// reaches a given bin in the same round) and must not mutate shared
	// state.
	Base Config

	// TotalCapacity is the machine's cycle budget per bin, shared by
	// all shards. <= 0 means unlimited (no coordination possible).
	TotalCapacity float64

	// ShardPolicy splits TotalCapacity across shards each bin from
	// their observed demands. nil selects the static equal split — no
	// coordination, the isolated-shedders baseline.
	ShardPolicy sched.Strategy

	// Runners bounds the goroutines stepping shards within a bin.
	// 0 selects runtime.GOMAXPROCS(0); 1 steps every shard inline.
	// Results are bit-identical for any value: each shard owns all of
	// its state and the coordinator runs at a barrier between bins,
	// reading shards in index order.
	Runners int

	// DemandAlpha is the EWMA weight of the per-shard demand estimate
	// the coordinator allocates from (default 0.5): high enough to
	// chase a flash surge within a few bins, low enough that one noisy
	// bin does not slosh the whole budget around.
	DemandAlpha float64
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.TotalCapacity <= 0 {
		c.TotalCapacity = math.Inf(1)
	}
	if c.Runners <= 0 {
		c.Runners = runtime.GOMAXPROCS(0)
	}
	if c.DemandAlpha == 0 {
		c.DemandAlpha = 0.5
	}
	return c
}

// coordinated reports whether the config calls for an actual budget
// coordinator; without a policy or a finite budget the initial equal
// split stands and shards run isolated.
func (c ClusterConfig) coordinated() bool {
	return c.ShardPolicy != nil && !math.IsInf(c.TotalCapacity, 1)
}

// ShardRun is one shard's record in a ClusterResult.
type ShardRun struct {
	Name   string
	Result *RunResult
	// Capacities is the per-bin cycle budget the coordinator granted,
	// index-aligned with Result.Bins.
	Capacities []float64
}

// ClusterResult merges a cluster run: every shard's full record plus
// the per-bin aggregate across shards.
type ClusterResult struct {
	Shards []ShardRun
	// Aggregate sums the machine-level counters (packets, drops,
	// cycles) across shards per bin; GlobalRate is the minimum across
	// shards and BufferBins the maximum. Per-query slices are nil —
	// they live in the shard records.
	Aggregate []BinStats
}

// TotalDrops sums the uncontrolled capture drops across all shards.
// Shards without a record (a worker that never joined a distributed
// run) count zero.
func (r *ClusterResult) TotalDrops() int {
	n := 0
	for i := range r.Shards {
		if r.Shards[i].Result == nil {
			continue
		}
		n += r.Shards[i].Result.TotalDrops()
	}
	return n
}

// TotalWirePkts sums the packets offered across all shards. Shards
// without a record count zero.
func (r *ClusterResult) TotalWirePkts() int {
	n := 0
	for i := range r.Shards {
		if r.Shards[i].Result == nil {
			continue
		}
		n += r.Shards[i].Result.TotalWirePkts()
	}
	return n
}

// Cluster runs N per-link Systems under one budget coordinator.
// Construct with NewCluster, call Run.
type Cluster struct {
	cfg   ClusterConfig
	nodes []*Node
	// coord is the budget coordinator, non-nil iff cfg.coordinated();
	// every node reaches it through a loopback transport.
	coord *Coordinator
}

// NewCluster builds a cluster of fresh Systems, one per shard. Each
// shard starts with an equal split of TotalCapacity and a seed offset
// from Base.Seed by its index.
func NewCluster(cfg ClusterConfig, shards []Shard) *Cluster {
	cfg = cfg.withDefaults()
	if len(shards) == 0 {
		panic("cluster: no shards")
	}
	c := &Cluster{cfg: cfg}
	if cfg.coordinated() {
		c.coord = NewCoordinator(cfg.ShardPolicy, cfg.TotalCapacity)
	}
	for i, sh := range shards {
		scfg := cfg.Base
		scfg.Capacity = cfg.TotalCapacity / float64(len(shards))
		scfg.Seed = cfg.Base.Seed + uint64(i)*0x9e3779b97f4a7c15
		if cfg.Base.Workers == 0 {
			// Shards already run concurrently; default each shard's
			// query pool to inline execution instead of letting every
			// shard claim all cores.
			scfg.Workers = 1
		}
		name := sh.Name
		if name == "" {
			name = fmt.Sprintf("link%d", i)
		}
		n := NewNode(New(scfg, sh.Queries), nil, NodeConfig{
			Name:        name,
			MinShare:    sh.MinShare,
			DemandAlpha: cfg.DemandAlpha,
		})
		n.src = sh.Source
		if c.coord != nil {
			n.tr = NewLoopback(c.coord, name, sh.MinShare)
		}
		c.nodes = append(c.nodes, n)
	}
	return c
}

// Shards exposes the per-shard Systems, mainly for tests.
func (c *Cluster) Shards() []*System {
	out := make([]*System, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.sys
	}
	return out
}

// Coordinator exposes the budget coordinator (nil for a static split),
// for status planes and tests.
func (c *Cluster) Coordinator() *Coordinator { return c.coord }

// Stream steps every shard through its trace in lockstep, coordinating
// the budget between bins and delivering each shard's records to the
// sink mk returns for it (mk itself is called once per shard, in index
// order, before the first bin; a nil mk or nil sink discards). Shards
// whose traces end early drop out; their budget is redistributed among
// the survivors. Like System.Stream it accumulates nothing, so a
// cluster with bounded sinks runs indefinitely in constant memory.
//
// Within a bin, sinks are invoked from the shard-runner pool: each
// shard's sink only ever sees that shard's stream (in order), but
// different shards' sinks run concurrently — a sink instance shared
// between shards must be safe for concurrent use.
func (c *Cluster) Stream(mk func(shard int, name string) Sink) {
	c.StreamContext(context.Background(), mk)
}

// StreamContext is Stream with cancellation: when ctx fires, every
// shard stops at its next bin boundary (each runner polls the same done
// channel System.StreamContext uses), the open intervals flush to their
// sinks, and all shard pipelines and pools are torn down before the
// call returns. It returns ctx.Err() after a cancellation and nil after
// every trace ends naturally.
func (c *Cluster) StreamContext(ctx context.Context, mk func(shard int, name string) Sink) error {
	done := ctx.Done()
	for i, n := range c.nodes {
		var sink Sink
		if mk != nil {
			sink = mk(i, n.name)
		}
		n.run = n.sys.newRunner(n.src, sink)
		n.run.done = done
		n.done = false
		n.doneSent = false
	}
	for c.stepAll() {
		c.coordinate()
	}
	for _, n := range c.nodes {
		n.run.finish()
	}
	return ctx.Err()
}

// Run steps every shard through its trace in lockstep, coordinating the
// budget between bins, and returns the merged record. It is Stream into
// slices; long-running deployments should call Stream with bounded
// sinks instead.
func (c *Cluster) Run() *ClusterResult {
	res, _ := c.RunContext(context.Background())
	return res
}

// RunContext is Run with cancellation: the returned record covers every
// bin processed before ctx fired, and err is ctx.Err() if the run was
// cut short.
func (c *Cluster) RunContext(ctx context.Context) (*ClusterResult, error) {
	sinks := make([]*resultSink, len(c.nodes))
	err := c.StreamContext(ctx, func(i int, _ string) Sink {
		sinks[i] = newResultSink(c.nodes[i].sys.cfg.Scheme)
		return sinks[i]
	})
	res := &ClusterResult{}
	for i, n := range c.nodes {
		res.Shards = append(res.Shards, ShardRun{
			Name:       n.name,
			Result:     sinks[i].res,
			Capacities: n.caps,
		})
	}
	res.Aggregate = aggregateBins(res.Shards)
	return res, err
}

// stepAll advances every live shard by one bin, fanning the shards out
// over the runner pool, and reports whether any shard is still running.
// Determinism holds for any runner count for the same reasons as the
// execute stage's pool: each shard's step touches only shard-owned
// state, and everything cross-shard (coordination, aggregation) happens
// at the barrier afterwards, in shard-index order. Pipelined shards
// (Base.Workers >= 2, DESIGN.md §10) compose with this: each shard
// owns its front goroutine and slot ring, the coordinator's
// SetCapacity still lands between that shard's bins exactly as in a
// sequential shard, and a shard's front exits at end of trace before
// run.finish tears its pools down
// (TestClusterPipelinedShardsDeterminism).
func (c *Cluster) stepAll() bool {
	parallelIndexed(len(c.nodes), c.cfg.Runners, func(i int) {
		c.nodes[i].step()
	})
	for _, n := range c.nodes {
		if !n.done {
			return true
		}
	}
	return false
}

// coordinate runs one loopback coordination round between bins, on the
// cluster goroutine after the step barrier: every node reports its
// demand (in shard-index order — the order every floating-point sum in
// the allocators runs in), the coordinator allocates over the nodes
// that reported, and every live node applies its grant. Nodes whose
// traces ended send a single done report and drop out; their budget
// redistributes to the survivors.
func (c *Cluster) coordinate() {
	if c.coord == nil {
		return // static split: initial equal capacities stand
	}
	for _, n := range c.nodes {
		n.report()
	}
	c.coord.AllocateRound()
	for _, n := range c.nodes {
		n.applyGrant()
	}
}

// aggregateBins merges per-shard bin records into machine-level bins.
// Shards need not have the same bin count — traces of different
// lengths, a cancelled run, or a worker that never produced a record
// (nil Result) all aggregate over whatever bins exist.
func aggregateBins(shards []ShardRun) []BinStats {
	maxBins := 0
	for _, sh := range shards {
		if sh.Result == nil {
			continue
		}
		if n := len(sh.Result.Bins); n > maxBins {
			maxBins = n
		}
	}
	out := make([]BinStats, maxBins)
	for i := range out {
		agg := &out[i]
		agg.GlobalRate = 1
		first := true
		for _, sh := range shards {
			if sh.Result == nil || i >= len(sh.Result.Bins) {
				continue
			}
			b := &sh.Result.Bins[i]
			if first {
				agg.Start = b.Start
				first = false
			}
			agg.Capacity += b.Capacity
			agg.WirePkts += b.WirePkts
			agg.DropPkts += b.DropPkts
			agg.AdmitPkts += b.AdmitPkts
			agg.WireBytes += b.WireBytes
			agg.Predicted += b.Predicted
			agg.Alloc += b.Alloc
			agg.Used += b.Used
			agg.Overhead += b.Overhead
			agg.Shed += b.Shed
			agg.Avail += b.Avail
			if b.GlobalRate < agg.GlobalRate {
				agg.GlobalRate = b.GlobalRate
			}
			if b.BufferBins > agg.BufferBins {
				agg.BufferBins = b.BufferBins
			}
		}
	}
	return out
}

// ShardPolicyNames lists the names ShardPolicyByName accepts.
func ShardPolicyNames() []string {
	return []string{"static", "equal", "eq_srates", "mmfs_cpu", "mmfs_pkt"}
}

// ShardPolicyByName maps the cross-shard coordinator policies exposed
// on command lines — "static" (no coordination), or any StrategyByName
// name ("mmfs_cpu", "mmfs_pkt", "eq_srates", "equal") — to a strategy.
func ShardPolicyByName(name string) (sched.Strategy, error) {
	if name == "static" {
		return nil, nil
	}
	s, err := StrategyByName(name)
	if err != nil {
		return nil, fmt.Errorf("loadshed: unknown shard policy %q (have %s)",
			name, strings.Join(ShardPolicyNames(), ", "))
	}
	return s, nil
}
