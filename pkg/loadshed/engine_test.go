package loadshed

import (
	"math"
	"testing"
	"time"

	"repro/internal/pkt"
	"repro/internal/queries"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

// testSource returns a payload-bearing source sized for quick tests.
func testSource(seed uint64, dur time.Duration) *trace.Generator {
	return trace.NewGenerator(trace.Config{
		Seed:          seed,
		Duration:      dur,
		PacketsPerSec: 6000,
		Payload:       true,
	})
}

func stdQueries() []queries.Query {
	return queries.StandardSet(queries.Config{Seed: 11})
}

func TestReferenceRunNoDropsNoShedding(t *testing.T) {
	src := testSource(1, 5*time.Second)
	res := Reference(src, stdQueries(), 1)
	if res.TotalDrops() != 0 {
		t.Fatalf("reference run dropped %d packets", res.TotalDrops())
	}
	for _, b := range res.Bins {
		if b.GlobalRate != 1 {
			t.Fatalf("reference run sampled at %v", b.GlobalRate)
		}
	}
	if len(res.Intervals) != 5 {
		t.Fatalf("intervals = %d, want 5", len(res.Intervals))
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Scheme: Predictive, Capacity: 3e7, Seed: 5}
	a := New(cfg, stdQueries()).Run(testSource(2, 3*time.Second))
	b := New(cfg, stdQueries()).Run(testSource(2, 3*time.Second))
	if len(a.Bins) != len(b.Bins) {
		t.Fatal("bin counts differ")
	}
	for i := range a.Bins {
		if a.Bins[i].Used != b.Bins[i].Used || a.Bins[i].GlobalRate != b.Bins[i].GlobalRate {
			t.Fatalf("bin %d diverged between identical runs", i)
		}
	}
}

// overloadCapacity returns a capacity that puts the demand at roughly
// demand/capacity = factor.
func overloadCapacity(t *testing.T, seed uint64, dur time.Duration, factor float64) float64 {
	t.Helper()
	demand := MeasureDemand(testSource(seed, dur), stdQueries(), 99)
	if demand <= 0 {
		t.Fatal("no demand measured")
	}
	return demand / factor
}

func TestPredictiveAvoidsUncontrolledDrops(t *testing.T) {
	const dur = 20 * time.Second
	capacity := overloadCapacity(t, 3, dur, 2) // demand ≈ 2× capacity
	res := New(Config{Scheme: Predictive, Capacity: capacity, Seed: 7}, stdQueries()).
		Run(testSource(3, dur))
	drops := res.TotalDrops()
	if frac := float64(drops) / float64(res.TotalWirePkts()); frac > 0.001 {
		t.Fatalf("predictive run dropped %.3f%% of packets uncontrolled", frac*100)
	}
	// It must actually shed: overall sampling rate well below 1.
	var rates []float64
	for _, b := range res.Bins {
		rates = append(rates, b.GlobalRate)
	}
	if m := stats.Mean(rates); m > 0.9 {
		t.Fatalf("mean sampling rate %v — not shedding under 2x overload", m)
	}
}

func TestOriginalDropsUncontrolled(t *testing.T) {
	const dur = 10 * time.Second
	capacity := overloadCapacity(t, 3, dur, 2)
	res := New(Config{Scheme: Original, Capacity: capacity, Seed: 7}, stdQueries()).
		Run(testSource(3, dur))
	if frac := float64(res.TotalDrops()) / float64(res.TotalWirePkts()); frac < 0.1 {
		t.Fatalf("original scheme dropped only %.3f%% under 2x overload", frac*100)
	}
}

func TestPredictiveKeepsCPUNearBudget(t *testing.T) {
	const dur = 20 * time.Second
	capacity := overloadCapacity(t, 4, dur, 2)
	res := New(Config{Scheme: Predictive, Capacity: capacity, Seed: 9}, stdQueries()).
		Run(testSource(4, dur))
	// After warmup, total consumption should hug the capacity: the CDF
	// of Figure 4.1. Allow the rtthresh allowance plus margin.
	over := 0
	for _, b := range res.Bins[20:] {
		if b.Used+b.Overhead+b.Shed > capacity*1.3 {
			over++
		}
	}
	if frac := float64(over) / float64(len(res.Bins)-20); frac > 0.05 {
		t.Fatalf("%.1f%% of bins exceeded 1.3x capacity", frac*100)
	}
}

func TestPredictiveAccuracyBeatsBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("full accuracy comparison is slow")
	}
	const dur = 30 * time.Second
	capacity := overloadCapacity(t, 5, dur, 2)
	metric := stdQueries()

	ref := Reference(testSource(5, dur), stdQueries(), 50)
	run := func(s Scheme) map[string]float64 {
		res := New(Config{Scheme: s, Capacity: capacity, Seed: 51}, stdQueries()).
			Run(testSource(5, dur))
		return MeanErrors(metric, res, ref)
	}
	pred := run(Predictive)
	orig := run(Original)

	// Headline Table 4.1 claims, in relaxed form: predictive keeps
	// counter/flows errors small; original is far worse.
	if pred["counter"] > 0.05 {
		t.Errorf("predictive counter error = %v, want < 0.05", pred["counter"])
	}
	if pred["flows"] > 0.15 {
		t.Errorf("predictive flows error = %v, want < 0.15", pred["flows"])
	}
	for _, q := range []string{"counter", "application", "flows"} {
		if pred[q] >= orig[q] {
			t.Errorf("%s: predictive error %v not better than original %v", q, pred[q], orig[q])
		}
	}
}

// ddosSource recreates the adverse conditions of §4.5.5/§6.3.2: bursty
// base traffic plus a massive spoofed on/off DDoS.
func ddosSource(seed uint64, dur time.Duration) *trace.Generator {
	return trace.NewGenerator(trace.Config{
		Seed: seed, Duration: dur, PacketsPerSec: 6000, Payload: true,
		NoiseSigma: 0.35,
		Anomalies: []trace.Anomaly{
			trace.NewOnOffDDoS(dur/4, dur/2, 60000, pkt.IPv4(147, 83, 1, 1)),
		},
	})
}

func TestReactiveWorseThanPredictiveUnderDDoS(t *testing.T) {
	// The Figure 4.1/4.2 comparison point: with the thesis' 200 ms
	// buffer emulation and a massive spoofed DDoS, the reactive system
	// drops packets without control while the predictive one sheds by
	// sampling and never loses a packet.
	if testing.Short() {
		t.Skip("DDoS scheme comparison is slow")
	}
	const dur = 40 * time.Second
	demand := MeasureDemand(ddosSource(6, dur), stdQueries(), 60)
	capacity := demand / 2.5
	metric := stdQueries()
	ref := Reference(ddosSource(6, dur), stdQueries(), 60)

	pres := New(Config{Scheme: Predictive, Capacity: capacity, Seed: 61, BufferBins: 2}, stdQueries()).
		Run(ddosSource(6, dur))
	rres := New(Config{Scheme: Reactive, Capacity: capacity, Seed: 61, BufferBins: 2}, stdQueries()).
		Run(ddosSource(6, dur))

	if got := pres.TotalDrops(); got > pres.TotalWirePkts()/1000 {
		t.Errorf("predictive dropped %d packets uncontrolled", got)
	}
	if got := rres.TotalDrops(); got < rres.TotalWirePkts()/100 {
		t.Errorf("reactive dropped only %d/%d packets; expected substantial uncontrolled loss",
			got, rres.TotalWirePkts())
	}

	// On the queries whose output is estimable (error is not simply
	// 1 - processed fraction), predictive must win.
	pErr := MeanErrors(metric, pres, ref)
	rErr := MeanErrors(metric, rres, ref)
	var pAvg, rAvg float64
	metricQueries := []string{"application", "counter", "flows", "high-watermark", "top-k"}
	for _, q := range metricQueries {
		pAvg += pErr[q]
		rAvg += rErr[q]
	}
	if pAvg >= rAvg {
		t.Fatalf("predictive metric-query error %v not better than reactive %v", pAvg/5, rAvg/5)
	}
}

func TestStrategiesRespectMinRates(t *testing.T) {
	const dur = 10 * time.Second
	qs := queries.FullSet(queries.Config{Seed: 3})
	demand := MeasureDemand(testSource(7, dur), qs, 70)
	capacity := demand / 2

	for _, strat := range []sched.Strategy{sched.MMFSCPU{}, sched.MMFSPkt{}} {
		res := New(Config{
			Scheme: Predictive, Capacity: capacity, Seed: 71,
			Strategy: strat, CustomShedding: true,
		}, queries.FullSet(queries.Config{Seed: 3})).Run(testSource(7, dur))
		minRates := map[string]float64{}
		for _, q := range qs {
			minRates[q.Name()] = q.MinRate()
		}
		for _, b := range res.Bins[20:] {
			for qi, r := range b.Rates {
				name := res.Queries[qi]
				if r > 0 && r < minRates[name]-1e-9 && name != "p2p-detector" {
					t.Fatalf("%s: %s ran at %v below its minimum %v", strat.Name(), name, r, minRates[name])
				}
			}
		}
	}
}

func TestIntervalCountsMatchBetweenRuns(t *testing.T) {
	const dur = 7 * time.Second
	ref := Reference(testSource(8, dur), stdQueries(), 80)
	res := New(Config{Scheme: Predictive, Capacity: 3e7, Seed: 81}, stdQueries()).
		Run(testSource(8, dur))
	if len(ref.Intervals) != len(res.Intervals) {
		t.Fatalf("interval counts differ: %d vs %d", len(ref.Intervals), len(res.Intervals))
	}
}

func TestAccuraciesGateOnMinRate(t *testing.T) {
	const dur = 10 * time.Second
	qs := queries.FullSet(queries.Config{Seed: 4})
	demand := MeasureDemand(testSource(9, dur), qs, 90)
	ref := Reference(testSource(9, dur), queries.FullSet(queries.Config{Seed: 4}), 90)
	res := New(Config{
		Scheme: Predictive, Capacity: demand / 4, Seed: 91,
		Strategy: sched.EqualRates{RespectMinRates: true}, CustomShedding: true,
	}, queries.FullSet(queries.Config{Seed: 4})).Run(testSource(9, dur))
	accs := Accuracies(qs, res, ref, 10)
	for name, as := range accs {
		for _, a := range as {
			if a < 0 || a > 1 {
				t.Fatalf("%s accuracy %v out of [0,1]", name, a)
			}
		}
	}
	// super-sources has mq=0.93: under 4x overload with eq_srates it is
	// usually disabled, so its accuracy collapses to 0 in most intervals.
	if m := stats.Mean(accs["super-sources"]); m > 0.5 {
		t.Logf("note: super-sources mean accuracy %v (expected low under 4x eq_srates)", m)
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{Predictive: "predictive", Reactive: "reactive", Original: "original", NoShed: "no_lshed", Scheme(9): "unknown"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestNewPanicsOnEmptyQueries(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{}, nil)
}

func TestNewPanicsOnMismatchedIntervals(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := queries.NewCounter(queries.Config{Interval: time.Second})
	b := queries.NewCounter(queries.Config{Interval: 2 * time.Second})
	New(Config{}, []queries.Query{a, b})
}

func TestMeasureDemandPositive(t *testing.T) {
	d := MeasureDemand(testSource(10, 2*time.Second), stdQueries(), 100)
	if d <= 0 || math.IsInf(d, 0) {
		t.Fatalf("demand = %v", d)
	}
}
