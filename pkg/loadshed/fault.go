package loadshed

// fault.go — deterministic fault injection for the coordination link.
//
// FaultTransport wraps any NodeTransport and perturbs the message flow
// the way a lossy network would: reports get dropped, held back a few
// bins, or duplicated; grant reads come up empty as if the frame never
// arrived. Faults are drawn from a seeded generator, so a given seed
// produces the same fault schedule on every run — the robustness suite
// leans on that to make its partition scenarios reproducible.
//
// The wrapper exists to pin the coordination layer's failure contract:
// coordination is advisory, never load-bearing (NodeTransport doc), so
// a node behind an arbitrarily lossy link must degrade to local-only
// shedding and keep producing the exact bins it would produce with no
// transport at all. TestNodeFailOpenUnderGrantLoss and
// TestCoordinatorLeaseLivenessUnderReportLoss hold it to that.

import (
	"sync"

	"repro/internal/hash"
)

// FaultConfig sets per-message fault probabilities, each in [0, 1].
// Fates are drawn in the order drop, delay, duplicate — a report is
// subject to at most one fault. The zero value injects nothing.
type FaultConfig struct {
	Seed uint64 // fault-schedule seed; same seed, same schedule

	ReportDrop  float64 // report vanishes
	ReportDelay float64 // report held back 1..MaxDelay Report calls
	ReportDup   float64 // report delivered twice
	GrantDrop   float64 // Grant() observes no fresh grant

	// CheckpointDrop loses a checkpoint frame in flight: the node
	// counts it sent, the coordinator never stores it. Failover then
	// resumes from an older checkpoint — more bins replayed, same
	// correctness.
	CheckpointDrop float64
	// AdoptDrop loses an adoption offer before the would-be adopter
	// sees it; the coordinator re-offers after its offer timeout,
	// rotating candidates — the adopt-race schedule the robustness
	// suite pins.
	AdoptDrop float64

	// MaxDelay bounds how many subsequent Report calls a delayed
	// report is held across. Default 3.
	MaxDelay int
}

func (c FaultConfig) withDefaults() FaultConfig {
	if c.MaxDelay <= 0 {
		c.MaxDelay = 3
	}
	return c
}

// FaultStats counts the faults injected so far.
type FaultStats struct {
	ReportsDropped     int64
	ReportsDelayed     int64
	ReportsDuplicated  int64
	GrantsDropped      int64
	CheckpointsDropped int64
	AdoptionsDropped   int64
}

// heldReport is a delayed report counting down to re-injection.
type heldReport struct {
	r    DemandReport
	left int // remaining Report calls before delivery
}

// FaultTransport wraps inner with seeded drop/delay/duplicate faults.
// Safe for concurrent use to the same degree as the wrapped transport.
type FaultTransport struct {
	mu    sync.Mutex
	inner NodeTransport
	cfg   FaultConfig
	rng   *hash.XorShift
	held  []heldReport
	stats FaultStats
}

// NewFaultTransport wraps inner under cfg's fault schedule.
func NewFaultTransport(inner NodeTransport, cfg FaultConfig) *FaultTransport {
	cfg = cfg.withDefaults()
	return &FaultTransport{
		inner: inner,
		cfg:   cfg,
		rng:   hash.NewXorShift(cfg.Seed ^ 0xfa017),
	}
}

// SetConfig swaps the fault probabilities mid-run (the fault schedule
// generator keeps its state), so a test or experiment can script loss
// episodes: lossless, then a full partition, then healed.
func (f *FaultTransport) SetConfig(cfg FaultConfig) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg = cfg.withDefaults()
}

// Stats returns the fault counters so far.
func (f *FaultTransport) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Report applies the report fate — deliver, drop, hold, or duplicate —
// and re-injects any previously held reports whose delay expired.
// Delivery errors from the wrapped transport surface unchanged; faults
// themselves never error (a dropped report looks like success, exactly
// as UDP-style loss would).
func (f *FaultTransport) Report(r DemandReport) error {
	f.mu.Lock()
	// Count down held reports first: one Report call = one bin of
	// delay, and an expiring report is delivered before the current
	// one to keep it the older of the two at the coordinator.
	var due []DemandReport
	kept := f.held[:0]
	for _, h := range f.held {
		h.left--
		if h.left <= 0 {
			due = append(due, h.r)
		} else {
			kept = append(kept, h)
		}
	}
	f.held = kept

	u := f.rng.Float64()
	c := f.cfg
	fate := 0 // 0 deliver, 1 drop, 2 delay, 3 duplicate
	switch {
	case u < c.ReportDrop:
		fate = 1
		f.stats.ReportsDropped++
	case u < c.ReportDrop+c.ReportDelay:
		fate = 2
		f.stats.ReportsDelayed++
		f.held = append(f.held, heldReport{r: r, left: 1 + f.rng.Intn(c.MaxDelay)})
	case u < c.ReportDrop+c.ReportDelay+c.ReportDup:
		fate = 3
		f.stats.ReportsDuplicated++
	}
	f.mu.Unlock()

	var err error
	for _, d := range due {
		if e := f.inner.Report(d); e != nil && err == nil {
			err = e
		}
	}
	switch fate {
	case 1, 2: // dropped or held: nothing crosses this bin
	case 3:
		if e := f.inner.Report(r); e != nil && err == nil {
			err = e
		}
		fallthrough
	default:
		if e := f.inner.Report(r); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Grant reads the wrapped grant unless the fault schedule eats it, in
// which case the node observes "no fresh grant" and fails open to its
// current local capacity.
func (f *FaultTransport) Grant() (BudgetGrant, bool) {
	f.mu.Lock()
	dropped := f.rng.Float64() < f.cfg.GrantDrop
	if dropped {
		f.stats.GrantsDropped++
	}
	f.mu.Unlock()
	if dropped {
		return BudgetGrant{}, false
	}
	return f.inner.Grant()
}

// Checkpoint applies the checkpoint fate: delivered to the wrapped
// transport (when it can carry one) or lost in flight. Loss looks like
// success to the node, exactly as a frame dropped mid-link would.
func (f *FaultTransport) Checkpoint(cp *ShardCheckpoint) error {
	f.mu.Lock()
	dropped := f.rng.Float64() < f.cfg.CheckpointDrop
	if dropped {
		f.stats.CheckpointsDropped++
	}
	f.mu.Unlock()
	if dropped {
		return nil
	}
	cs, ok := f.inner.(CheckpointSender)
	if !ok {
		return nil
	}
	return cs.Checkpoint(cp)
}

// DrainRequested passes the coordinator's drain signal through
// unfaulted: the drain is re-signaled every poll anyway, so dropping it
// would only test the retry we already rely on for checkpoints.
func (f *FaultTransport) DrainRequested() bool {
	ds, ok := f.inner.(DrainSignaler)
	return ok && ds.DrainRequested()
}

// Adoption applies the adopt fate: an offer read from the wrapped
// transport may vanish before the host sees it. The offer was consumed
// — the coordinator believes it delivered — so recovery is its offer
// timeout and re-offer rotation, which is the race this fault exists to
// exercise.
func (f *FaultTransport) Adoption() (AdoptOffer, bool) {
	ar, ok := f.inner.(AdoptionReceiver)
	if !ok {
		return AdoptOffer{}, false
	}
	o, ok := ar.Adoption()
	if !ok {
		return AdoptOffer{}, false
	}
	f.mu.Lock()
	dropped := f.rng.Float64() < f.cfg.AdoptDrop
	if dropped {
		f.stats.AdoptionsDropped++
	}
	f.mu.Unlock()
	if dropped {
		return AdoptOffer{}, false
	}
	return o, true
}

// Close closes the wrapped transport; held reports are discarded, as
// in-flight frames are when a link dies.
func (f *FaultTransport) Close() error { return f.inner.Close() }
