package loadshed

// pipeline.go — the two-deep bin pipeline (DESIGN.md §10).
//
// The sequential runner leaves cores idle between execute fan-outs:
// extraction for bin N+1 cannot start until feedback for bin N has run.
// The stages are not independent, though — admit(N+1) reads the
// governor delay that feedback(N) wrote, and Predict(N+1) reads the MLR
// history that execute(N)'s Observe calls appended to — so the pipeline
// overlaps only the one half of the bin that is a pure function of the
// captured batch: sketching (hashing every packet's aggregate keys into
// the batch bitmaps). A front goroutine pulls batches from the source
// and speculatively sketches each wire batch, chunk-parallel across the
// front half of Config.Workers; the back stage (the caller's goroutine)
// then runs admit → … → feedback for bin N in strict bin order, exactly
// as the sequential engine does, while the front works on bin N+1.
//
// Speculation: the front sketches the wire batch, but extraction is
// defined over the admitted batch. Admission is a prefix — tail drop
// loses the newest packets — so the back stage validates the sketch by
// packet count and, on the rare mis-speculation (a DAG-drop bin),
// re-sketches the admitted prefix in place. Everything downstream of
// the sketch therefore sees bit-identical state for any worker count.
//
// Ring ownership: two binSlots cycle between a free and a ready
// channel. A slot is owned by the front goroutine from free-receive to
// ready-send, and by the back stage from ready-receive to free-send;
// the channel operations carry the happens-before edges, so neither
// side ever reads the other's generation of batch or sketch. Each slot
// owns one Sketch (the two ping-ponged scratch generations); the
// extractor's own internal sketch is untouched in pipelined runs, and
// every consumer reads the bin's sketch through BinContext.sketch,
// which points at whichever generation carried the bin.

import (
	"sync"
	"sync/atomic"

	"repro/internal/features"
	"repro/internal/pkt"
	"repro/internal/trace"
)

// pipelined reports whether a run under this config uses the two-deep
// bin pipeline. Workers == 1 (or NoPipeline) selects the strictly
// sequential loop; the two paths are bit-identical, so the choice is
// purely about throughput.
func (c Config) pipelined() bool { return c.Workers >= 2 && !c.NoPipeline }

// splitWorkers divides Config.Workers between the front-stage sketch
// pool and the back-stage execute pool: the front gets the floor half
// (at least one — the front goroutine itself), execute the rest. The
// split keeps both halves busy because sketching and query execution
// cost the same order of work per packet; see the table in DESIGN.md
// §10.
func splitWorkers(w int) (front, execute int) {
	front = w / 2
	if front < 1 {
		front = 1
	}
	return front, w - front
}

// binSlot is one generation of the pipeline ring: a captured batch and
// the speculative sketch of its wire packets.
type binSlot struct {
	batch    pkt.Batch
	ok       bool // false: end of trace, batch/sketch are meaningless
	sketched bool // front sketched the wire batch (predictive runs only)
	sketch   *features.Sketch
}

// pipeline is the ring and the front stage's machinery. Slots, channels
// and the chunk sketcher persist on the System across runs; the worker
// pool and front goroutine are per-run, so an idle System holds no
// goroutines.
type pipeline struct {
	slots [2]binSlot
	free  chan *binSlot
	ready chan *binSlot

	// quit/frontDone are per-run teardown channels: stop closes quit so
	// a front goroutine whose back stage was cancelled (and therefore
	// stopped freeing slots) unblocks from its free-receive, and waits on
	// frontDone before releasing the pool. On a natural end of trace the
	// front has already returned and the wait is immediate.
	quit      chan struct{}
	frontDone chan struct{}

	frontWorkers int
	cs           *features.ChunkSketcher
	pool         *staticPool          // per-run; nil while idle or when frontWorkers == 1
	runFn        func(int, func(int)) // p.pool.run, bound once per run
}

// ensurePipeline lazily builds the persistent half of the pipeline.
func (s *System) ensurePipeline() *pipeline {
	if s.pipe == nil {
		front, _ := splitWorkers(s.cfg.Workers)
		p := &pipeline{
			free:         make(chan *binSlot, 2),
			ready:        make(chan *binSlot, 2),
			frontWorkers: front,
			cs:           features.NewChunkSketcher(s.globalExt, front),
		}
		for i := range p.slots {
			p.slots[i].sketch = features.NewSketch()
		}
		s.pipe = p
	}
	return s.pipe
}

// begin arms the ring for one run and starts the front stage: both
// slots on free (draining whatever a cancelled previous run left in the
// channels), a fresh helper pool (the front goroutine is the pool's
// missing worker), and the front goroutine pulling from src. The front
// exits on its own when the source is exhausted, after handing the back
// stage an ok=false slot; a cancelled run instead tears it down through
// the quit channel.
func (p *pipeline) begin(src trace.Source, sketch bool) {
	for len(p.free) > 0 {
		<-p.free
	}
	for len(p.ready) > 0 {
		<-p.ready
	}
	p.free <- &p.slots[0]
	p.free <- &p.slots[1]
	p.quit = make(chan struct{})
	p.frontDone = make(chan struct{})
	if p.frontWorkers > 1 {
		p.pool = newStaticPool(p.frontWorkers - 1)
		p.runFn = p.pool.run
	}
	go p.front(src, sketch)
}

// stop tears down the per-run machinery: it quits the front stage, waits
// for it to return, then releases the pool. After a natural end of trace
// the front has already exited and stop returns immediately; after a
// cancellation it returns as soon as the front observes quit — at its
// next free-receive, or after its in-flight src.NextBatch/sketch
// completes (bounded for every Source; live listeners are additionally
// closed by the caller to unblock a silent link).
func (p *pipeline) stop() {
	close(p.quit)
	<-p.frontDone
	if p.pool != nil {
		p.pool.close()
		p.pool, p.runFn = nil, nil
	}
}

// front is the pipeline's producer loop: capture the next batch,
// speculatively sketch its wire packets (predictive runs), hand the
// slot over. It is the source's only consumer, so batch order — and
// with it every downstream RNG and history stream — is exactly the
// sequential engine's. Sources hand off stable batches (see
// trace.Source), so the slot holds the batch without copying.
func (p *pipeline) front(src trace.Source, sketch bool) {
	defer close(p.frontDone)
	for {
		// Only the free-receive can block indefinitely (a cancelled back
		// stage stops freeing slots), so it is the quit point. The
		// ready-sends below never block: the channel's buffer equals the
		// slot count, so there is always room for every slot in existence.
		var slot *binSlot
		select {
		case slot = <-p.free:
		case <-p.quit:
			return
		}
		b, ok := src.NextBatch()
		if !ok {
			slot.ok = false
			p.ready <- slot
			return
		}
		slot.batch, slot.ok, slot.sketched = b, true, sketch
		if sketch {
			p.cs.Fill(slot.sketch, b.Pkts, p.runFn)
		}
		p.ready <- slot
	}
}

// staticPool is a persistent fixed-size worker pool with the same
// index-handout contract as parallelIndexed, for call sites on the
// per-bin hot path: parallelIndexed spawns goroutines per call, which
// is fine once per bin for the execute fan-out but would double the
// per-bin goroutine churn if the front stage did it too. run is
// zero-alloc when fn is prebuilt (the ChunkSketcher's chunk body is).
type staticPool struct {
	workers int
	fn      func(int)
	n       int
	next    atomic.Int64
	start   chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
}

func newStaticPool(workers int) *staticPool {
	p := &staticPool{
		workers: workers,
		start:   make(chan struct{}),
		done:    make(chan struct{}),
	}
	for k := 0; k < workers; k++ {
		go p.worker()
	}
	return p
}

func (p *staticPool) worker() {
	for {
		select {
		case <-p.start:
		case <-p.done:
			return
		}
		for {
			i := int(p.next.Add(1)) - 1
			if i >= p.n {
				break
			}
			p.fn(i)
		}
		p.wg.Done()
	}
}

// run executes fn(0) … fn(n-1) across the pool's workers and the
// calling goroutine, returning when all have finished. One run at a
// time; the caller owns the pool.
func (p *staticPool) run(n int, fn func(int)) {
	p.fn, p.n = fn, n
	p.next.Store(0)
	p.wg.Add(p.workers)
	for k := 0; k < p.workers; k++ {
		p.start <- struct{}{}
	}
	for {
		i := int(p.next.Add(1)) - 1
		if i >= n {
			break
		}
		fn(i)
	}
	p.wg.Wait()
}

// close releases the pool's goroutines. The pool must be idle.
func (p *staticPool) close() { close(p.done) }
