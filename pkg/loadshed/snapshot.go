package loadshed

// snapshot.go — checkpointing a System between runs, so a shard can be
// drained on one process and resumed on another (or later) without
// perturbing a single decision. The snapshot is taken at the idle
// quiesce point after a run finishes — every bin flushed, every
// extractor rotated — which is why it is small: interval-scoped state
// (bitmaps, sketches, per-interval query accumulators) is rebuilt from
// scratch at the next interval start and carries nothing across the
// boundary. What does carry across, and is therefore captured, is:
//
//   - the Governor's controller state (error/overhead EWMAs, delay,
//     rtthresh, ssthr — Algorithm 1's memory),
//   - every RNG stream position (measurement noise, packet samplers)
//     and every flow sampler's interval counter (its hash function is
//     a pure function of seed and counter),
//   - every predictor's history ring, in ring-slot order — the
//     regressions iterate storage order, so preserving slot order
//     preserves every floating-point sum bit for bit,
//   - cumulative operation counters (extractor ops, MLR FCBF/fit ops)
//     and the reactive scheme's rate/delay memory.
//
// A restored System resumed on the remainder of a trace produces
// bit-identical bins to one that never stopped (see
// TestSnapshotRestoreBitIdentical).

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/predict"
)

// SnapshotFormatVersion is the format version Encode stamps into every
// snapshot. DecodeSnapshot refuses any other version: a checkpoint
// written by a different build of the format must fail loudly at decode
// time, not as a torn Restore deep inside the engine.
const SnapshotFormatVersion = 1

// Sentinel errors of the snapshot/checkpoint codec, matched with
// errors.Is. Both wrap the underlying detail.
var (
	// ErrSnapshotVersion marks a snapshot or checkpoint whose format
	// version this build does not read.
	ErrSnapshotVersion = errors.New("unsupported snapshot format version")
	// ErrSnapshotCorrupt marks a truncated or corrupt snapshot or
	// checkpoint stream.
	ErrSnapshotCorrupt = errors.New("corrupt or truncated snapshot")
)

// QuerySnapshot is the cross-interval state of one registered query.
type QuerySnapshot struct {
	Name          string
	ExtOps        int64  // cumulative feature-extraction op counter
	NoiseState    uint64 // per-query measurement-noise RNG position
	PSampState    uint64 // per-query packet-sampler RNG position
	FSampInterval uint64 // per-query flow-sampler interval counter

	// Predictor state, populated according to the system's
	// PredictorKind: Hist for mlr and slr (plus the MLR op counters),
	// the EWMA pair for ewma.
	Hist       *predict.HistoryState
	FCBFOps    int64
	FitOps     int64
	EWMAValue  float64
	EWMASeeded bool
}

// SystemSnapshot is a complete between-runs checkpoint of a System.
// Produce with System.Snapshot, persist with Encode/DecodeSnapshot
// (gob — the governor's slow-start threshold is +Inf until the first
// buffer loss, which JSON cannot carry), and install into a freshly
// constructed System with the same Config and query set via Restore.
type SystemSnapshot struct {
	// Version is stamped by Encode with SnapshotFormatVersion and
	// checked by DecodeSnapshot. A snapshot built in memory and passed
	// straight to Restore may leave it zero.
	Version int

	Seed          uint64
	PredictorKind string

	Governor      core.State
	NoiseState    uint64
	ShedSampState uint64
	GlobalExtOps  int64
	ShedExtOps    int64
	ReactiveRate  float64
	ReactiveDelay float64
	LastConsumed  float64

	// Detect is the drift detector's state, non-nil exactly when the
	// snapshotted system ran with Config.ChangeDetection under the
	// Predictive scheme. The predictors' discounted-history weights
	// travel inside each query's Hist, so a restored mid-drift system
	// resumes bit-identically (TestSnapshotCarriesDetectorState).
	Detect *detect.State

	Queries []QuerySnapshot
}

// Encode writes the snapshot to w in gob encoding, stamping the current
// SnapshotFormatVersion.
func (snap *SystemSnapshot) Encode(w io.Writer) error {
	snap.Version = SnapshotFormatVersion
	return gob.NewEncoder(w).Encode(snap)
}

// DecodeSnapshot reads a snapshot written by Encode. A truncated or
// otherwise undecodable stream reports ErrSnapshotCorrupt; a decodable
// stream from an unknown format version reports ErrSnapshotVersion.
// Both are wrapped, so callers match with errors.Is.
func DecodeSnapshot(r io.Reader) (*SystemSnapshot, error) {
	snap := new(SystemSnapshot)
	if err := gob.NewDecoder(r).Decode(snap); err != nil {
		return nil, fmt.Errorf("loadshed: decode snapshot: %w (%v)", ErrSnapshotCorrupt, err)
	}
	if snap.Version != SnapshotFormatVersion {
		return nil, fmt.Errorf("loadshed: decode snapshot: %w (stream has v%d, this build reads v%d)",
			ErrSnapshotVersion, snap.Version, SnapshotFormatVersion)
	}
	return snap, nil
}

// Snapshot checkpoints the system's cross-interval state. It must be
// called at a quiesce point: between runs, or from a runner boundary
// hook at a measurement-interval boundary — the two points where every
// bin of the closing interval is flushed and interval-scoped state
// carries nothing forward (the hook fires before startInterval rotates
// extractors, matching the between-runs shape exactly). Custom-shedding
// systems are not snapshottable — their per-query shedding state lives
// inside the query implementations, outside the engine's reach — and
// neither is a system with registry ops still queued (apply them with a
// run, or snapshot before queuing).
func (s *System) Snapshot() (*SystemSnapshot, error) {
	if s.manager != nil {
		return nil, fmt.Errorf("loadshed: snapshot: custom shedding state is query-owned and not snapshottable")
	}
	s.regMu.Lock()
	pending := len(s.regOps)
	s.regMu.Unlock()
	if pending > 0 {
		return nil, fmt.Errorf("loadshed: snapshot: %d registry ops still queued; they would be lost", pending)
	}
	snap := &SystemSnapshot{
		Seed:          s.cfg.Seed,
		PredictorKind: s.cfg.PredictorKind,
		Governor:      s.gov.Snapshot(),
		NoiseState:    s.noise.State(),
		ShedSampState: s.shedSamp.State(),
		GlobalExtOps:  s.globalExt.Ops,
		ShedExtOps:    s.shedExt.Ops,
		ReactiveRate:  s.reactiveRate,
		ReactiveDelay: s.reactiveDelay,
		LastConsumed:  s.lastConsumed,
	}
	if s.det != nil {
		st := s.det.State()
		snap.Detect = &st
	}
	for _, rq := range s.qs {
		if rq == nil {
			continue // tombstoned by a mid-run removal; gone semantically
		}
		qs := QuerySnapshot{
			Name:          rq.q.Name(),
			ExtOps:        rq.ext.Ops,
			NoiseState:    rq.noise.State(),
			PSampState:    rq.psamp.State(),
			FSampInterval: rq.fsamp.Interval(),
		}
		switch p := rq.pred.(type) {
		case *predict.MLR:
			st := p.History().State()
			qs.Hist = &st
			qs.FCBFOps = p.FCBFOps
			qs.FitOps = p.FitOps
		case *predict.SLR:
			st := p.History().State()
			qs.Hist = &st
		case *predict.EWMA:
			qs.EWMAValue, qs.EWMASeeded = p.State()
		default:
			return nil, fmt.Errorf("loadshed: snapshot: unsupported predictor %T for query %q", rq.pred, qs.Name)
		}
		snap.Queries = append(snap.Queries, qs)
	}
	return snap, nil
}

// Restore installs a snapshot into the system. The receiver must be
// freshly constructed (or idle between runs) with the same Config and
// the same query set, in the same order, as the snapshotted system —
// query instances themselves need no restoring, because their state is
// interval-scoped and resets at the next interval start. Restore
// verifies what it can (predictor kind, query names and order, history
// capacity) and reports mismatches rather than installing a torn state.
func (s *System) Restore(snap *SystemSnapshot) error {
	if snap.PredictorKind != s.cfg.PredictorKind {
		return fmt.Errorf("loadshed: restore: predictor kind %q, snapshot has %q", s.cfg.PredictorKind, snap.PredictorKind)
	}
	if s.manager != nil {
		return fmt.Errorf("loadshed: restore: custom shedding systems are not snapshottable")
	}
	if (snap.Detect != nil) != (s.det != nil) {
		return fmt.Errorf("loadshed: restore: change detection is %v on the system but %v in the snapshot",
			s.det != nil, snap.Detect != nil)
	}
	live := 0
	for _, rq := range s.qs {
		if rq != nil {
			live++
		}
	}
	if live != len(snap.Queries) {
		return fmt.Errorf("loadshed: restore: system has %d queries, snapshot has %d", live, len(snap.Queries))
	}
	i := 0
	for _, rq := range s.qs {
		if rq == nil {
			continue
		}
		qs := &snap.Queries[i]
		i++
		if got := rq.q.Name(); got != qs.Name {
			return fmt.Errorf("loadshed: restore: query %d is %q, snapshot has %q", i-1, got, qs.Name)
		}
		switch p := rq.pred.(type) {
		case *predict.MLR:
			if qs.Hist == nil {
				return fmt.Errorf("loadshed: restore: snapshot for %q carries no history", qs.Name)
			}
			if err := p.History().SetState(*qs.Hist); err != nil {
				return fmt.Errorf("loadshed: restore %q: %w (HistoryLen mismatch?)", qs.Name, err)
			}
			p.FCBFOps = qs.FCBFOps
			p.FitOps = qs.FitOps
		case *predict.SLR:
			if qs.Hist == nil {
				return fmt.Errorf("loadshed: restore: snapshot for %q carries no history", qs.Name)
			}
			if err := p.History().SetState(*qs.Hist); err != nil {
				return fmt.Errorf("loadshed: restore %q: %w (HistoryLen mismatch?)", qs.Name, err)
			}
		case *predict.EWMA:
			p.Restore(qs.EWMAValue, qs.EWMASeeded)
		default:
			return fmt.Errorf("loadshed: restore: unsupported predictor %T for query %q", rq.pred, qs.Name)
		}
		rq.ext.Ops = qs.ExtOps
		rq.noise.SetState(qs.NoiseState)
		rq.psamp.SetState(qs.PSampState)
		rq.fsamp.SetInterval(qs.FSampInterval)
	}
	s.gov.Restore(snap.Governor)
	s.noise.SetState(snap.NoiseState)
	s.shedSamp.SetState(snap.ShedSampState)
	s.globalExt.Ops = snap.GlobalExtOps
	s.shedExt.Ops = snap.ShedExtOps
	s.reactiveRate = snap.ReactiveRate
	s.reactiveDelay = snap.ReactiveDelay
	s.lastConsumed = snap.LastConsumed
	if snap.Detect != nil {
		if err := s.det.SetState(*snap.Detect); err != nil {
			return fmt.Errorf("loadshed: restore: %w", err)
		}
	}
	return nil
}
