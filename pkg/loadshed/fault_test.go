package loadshed

// fault_test.go pins the coordination layer's failure contract under
// the seeded fault injector (fault.go): the fault schedule is
// reproducible, a node behind a fully grant-lossy link fails open to
// bins bit-identical to an uncoordinated run, and the coordinator's
// lease liveness partitions a report-lossy node and rejoins it the
// moment reports flow again.

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/queries"
	"repro/internal/sched"
	"repro/internal/trace"
)

// recordingTransport captures delivered reports and serves a fixed
// always-fresh grant.
type recordingTransport struct {
	reports  []DemandReport
	capacity float64
}

func (r *recordingTransport) Report(d DemandReport) error {
	r.reports = append(r.reports, d)
	return nil
}

func (r *recordingTransport) Grant() (BudgetGrant, bool) {
	if r.capacity <= 0 {
		return BudgetGrant{}, false
	}
	return BudgetGrant{Round: 1, Capacity: r.capacity}, true
}

func (r *recordingTransport) Close() error { return nil }

func TestFaultTransportDeterministicSchedule(t *testing.T) {
	const n = 400
	cfg := FaultConfig{Seed: 5, ReportDrop: 0.2, ReportDelay: 0.2, ReportDup: 0.1, GrantDrop: 0.3}
	run := func() ([]DemandReport, int, FaultStats) {
		inner := &recordingTransport{capacity: 100}
		ft := NewFaultTransport(inner, cfg)
		grants := 0
		for i := 0; i < n; i++ {
			ft.Report(DemandReport{Node: "w", Bin: int64(i), Demand: float64(i)})
			if _, ok := ft.Grant(); ok {
				grants++
			}
		}
		return inner.reports, grants, ft.Stats()
	}

	rep1, grants1, st1 := run()
	rep2, grants2, st2 := run()
	if !reflect.DeepEqual(rep1, rep2) || grants1 != grants2 || st1 != st2 {
		t.Fatal("same seed produced different fault schedules")
	}

	if st1.ReportsDropped == 0 || st1.ReportsDelayed == 0 || st1.ReportsDuplicated == 0 || st1.GrantsDropped == 0 {
		t.Fatalf("fault mix did not exercise every fate: %+v", st1)
	}
	// Conservation: every report fed in is dropped, still held back, or
	// delivered — with duplicates delivered twice.
	held := int64(n) - int64(len(rep1)) - st1.ReportsDropped + st1.ReportsDuplicated
	if held < 0 || held > st1.ReportsDelayed {
		t.Fatalf("report conservation broken: %d delivered, stats %+v", len(rep1), st1)
	}
	// Delayed reports arrive out of order but intact: every delivered
	// bin appears at most 1+dup times and at most MaxDelay calls after
	// its own. The feeding call is identifiable because Bin tracks it:
	// an in-order delivery pins the current call, and nothing may trail
	// it by more than the delay bound.
	maxDelay := int64(FaultConfig{}.withDefaults().MaxDelay)
	seen := map[int64]int{}
	call := int64(0)
	for _, r := range rep1 {
		seen[r.Bin]++
		if r.Bin > call {
			call = r.Bin
		}
		if r.Bin < call-maxDelay {
			t.Fatalf("bin %d delivered during call %d, outside the delay bound", r.Bin, call)
		}
	}
	for bin, k := range seen {
		if k > 2 {
			t.Fatalf("bin %d delivered %d times, want at most 2 (one duplicate)", bin, k)
		}
	}
	if grants1 >= n || grants1 == 0 {
		t.Fatalf("grant drop at 0.3 passed %d/%d grants", grants1, n)
	}
}

// TestNodeFailOpenUnderGrantLoss: a node whose link delivers reports
// but loses every grant must produce bins bit-identical to a node with
// no transport at all — coordination is advisory, never load-bearing.
// The control run (same link, no faults) must diverge, proving the
// grants would have changed the run had the fault layer not eaten them.
func TestNodeFailOpenUnderGrantLoss(t *testing.T) {
	g := trace.NewGenerator(trace.CESCA2(3, 2*time.Second, 0.3))
	batches := trace.Record(g)
	bin := g.TimeBin()
	mkQueries := func() []queries.Query {
		return []queries.Query{
			queries.NewFlows(queries.Config{Seed: 5}),
			queries.NewCounter(queries.Config{Seed: 5}),
		}
	}
	runNode := func(tr NodeTransport) (*RunResult, []float64) {
		sys := New(Config{Scheme: Predictive, Strategy: MMFSPkt(), Seed: 7, Capacity: 5e6, Workers: 1}, mkQueries())
		node := NewNode(sys, tr, NodeConfig{Name: "w0"})
		sink := newResultSink(Predictive)
		if err := node.StreamContext(context.Background(), trace.NewMemorySource(batches, bin), sink); err != nil {
			t.Fatalf("stream: %v", err)
		}
		return sink.res, append([]float64(nil), node.Capacities()...)
	}

	baseline, baseCaps := runNode(nil)

	lossy := &recordingTransport{capacity: 2e6}
	faulted := NewFaultTransport(lossy, FaultConfig{Seed: 11, GrantDrop: 1})
	got, gotCaps := runNode(faulted)

	if !reflect.DeepEqual(got.Bins, baseline.Bins) {
		t.Fatal("grant-lossy node diverged from the uncoordinated baseline")
	}
	if !reflect.DeepEqual(gotCaps, baseCaps) {
		t.Fatal("grant-lossy node ran under different capacities than the uncoordinated baseline")
	}
	if len(lossy.reports) == 0 {
		t.Fatal("report path should still deliver under grant-only loss")
	}
	if st := faulted.Stats(); st.GrantsDropped == 0 {
		t.Fatalf("no grants dropped: %+v", st)
	}

	control := &recordingTransport{capacity: 2e6}
	ctrlRes, _ := runNode(control)
	if reflect.DeepEqual(ctrlRes.Bins, baseline.Bins) {
		t.Fatal("control run with live grants matched the uncoordinated baseline; grant loss is untestable here")
	}
}

// TestCoordinatorLeaseLivenessUnderReportLoss scripts a loss episode on
// the report path of one of two loopback nodes: while reports flow the
// node holds its share; under total report loss the lease expires, the
// coordinator marks it partitioned and hands its budget to the
// survivor; when the link heals, the first delivered report rejoins it.
func TestCoordinatorLeaseLivenessUnderReportLoss(t *testing.T) {
	const total = 1000.0
	const lease = 50 * time.Millisecond
	coord := NewCoordinator(sched.MMFSCPU{}, total)
	alpha := NewLoopback(coord, "alpha", 0)
	beta := NewFaultTransport(NewLoopback(coord, "beta", 0), FaultConfig{Seed: 3})

	status := func(name string) CoordNodeStatus {
		for _, n := range coord.Status() {
			if n.Name == name {
				return n
			}
		}
		t.Fatalf("node %q not in status", name)
		return CoordNodeStatus{}
	}
	round := func(binIdx int64) {
		alpha.Report(DemandReport{Node: "alpha", Bin: binIdx, Demand: 600})
		beta.Report(DemandReport{Node: "beta", Bin: binIdx, Demand: 600})
		coord.AllocateLease(lease)
	}

	// Phase 1: lossless. Both nodes hold grants splitting the budget.
	round(1)
	ga, aok := alpha.Grant()
	gb, bok := beta.Grant()
	if !aok || !bok {
		t.Fatal("phase 1: both nodes should hold grants")
	}
	if sum := ga.Capacity + gb.Capacity; math.Abs(sum-total) > 1e-6*total {
		t.Fatalf("phase 1: grants sum to %v, want %v", sum, total)
	}

	// Phase 2: beta's report path goes fully lossy. Once its lease
	// expires the coordinator partitions it, the survivor absorbs the
	// whole budget, and beta observes no fresh grant — it fails open on
	// its local capacity rather than stalling.
	beta.SetConfig(FaultConfig{Seed: 3, ReportDrop: 1})
	time.Sleep(lease + 20*time.Millisecond)
	round(2)
	if !status("beta").Partitioned {
		t.Fatal("phase 2: beta not partitioned after silent lease")
	}
	if ga, ok := alpha.Grant(); !ok || math.Abs(ga.Capacity-total) > 1e-6*total {
		t.Fatalf("phase 2: survivor holds %v of %v", ga.Capacity, total)
	}
	if _, ok := beta.Grant(); ok {
		t.Fatal("phase 2: partitioned node still observes a fresh grant")
	}
	if st := beta.Stats(); st.ReportsDropped == 0 {
		t.Fatalf("phase 2: no reports dropped: %+v", st)
	}

	// Phase 3: the link heals; the first delivered report clears the
	// partition and the next round splits the budget again.
	beta.SetConfig(FaultConfig{Seed: 3})
	round(3)
	if status("beta").Partitioned {
		t.Fatal("phase 3: beta still partitioned after reporting again")
	}
	ga, aok = alpha.Grant()
	gb, bok = beta.Grant()
	if !aok || !bok || ga.Capacity >= total || gb.Capacity <= 0 {
		t.Fatalf("phase 3: rejoin grants alpha=%v beta=%v", ga.Capacity, gb.Capacity)
	}
}
