package loadshed

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/trace"
)

// runWithWorkers executes one predictive run with the given worker-pool
// size; everything else (seed, trace, queries, capacity) is held fixed.
func runWithWorkers(workers int) *RunResult {
	cfg := Config{
		Scheme:         Predictive,
		Capacity:       3e7,
		Strategy:       MMFSPkt(),
		Seed:           42,
		SpikeProb:      0.02, // exercise the per-query RNG spike path too
		CustomShedding: true,
		Workers:        workers,
	}
	qs := AllQueries(QueryConfig{Seed: 42})
	return New(cfg, qs).Run(testSource(12, 8*time.Second))
}

// TestWorkerPoolDeterminism is the contract of the execute stage's
// worker pool: a run fanned out over many workers is bit-identical to
// the same run on a single worker, because every query owns its RNG
// streams and per-bin results merge in query-index order.
func TestWorkerPoolDeterminism(t *testing.T) {
	seq := runWithWorkers(1)
	for _, workers := range []int{2, 8} {
		par := runWithWorkers(workers)
		if len(par.Bins) != len(seq.Bins) {
			t.Fatalf("workers=%d: %d bins vs %d sequential", workers, len(par.Bins), len(seq.Bins))
		}
		for i := range seq.Bins {
			if !reflect.DeepEqual(seq.Bins[i], par.Bins[i]) {
				t.Fatalf("workers=%d: bin %d diverged\nseq: %+v\npar: %+v",
					workers, i, seq.Bins[i], par.Bins[i])
			}
		}
		if !reflect.DeepEqual(seq.Intervals, par.Intervals) {
			t.Fatalf("workers=%d: interval query results diverged", workers)
		}
	}
}

// TestWorkerPoolDeterminismReference covers the unlimited-capacity
// (NoShed) path, whose bins skip the decide and feedback stages.
func TestWorkerPoolDeterminismReference(t *testing.T) {
	run := func(workers int) *RunResult {
		sys := New(Config{Scheme: NoShed, Seed: 5, Workers: workers},
			StandardQueries(QueryConfig{Seed: 5}))
		return sys.Run(testSource(13, 5*time.Second))
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq.Bins, par.Bins) {
		t.Fatal("reference bins diverged between 1 and 8 workers")
	}
	if !reflect.DeepEqual(seq.Intervals, par.Intervals) {
		t.Fatal("reference interval results diverged between 1 and 8 workers")
	}
}

// BenchmarkParallelExecute measures the execute stage's worker-pool
// speedup on the full ten-query workload. The trace is recorded once so
// the benchmark prices the pipeline, not the generator, and the run is
// unconstrained so every query processes the whole stream (the
// worst-case execute load). Compare e.g.:
//
//	go test -bench ParallelExecute -benchtime 10x ./pkg/loadshed
//
// On a single-CPU machine the series comes out flat, which is itself
// the other half of the contract: the pool adds no measurable overhead
// over the inline loop.
func BenchmarkParallelExecute(b *testing.B) {
	gen := trace.NewGenerator(trace.Config{
		Seed: 12, Duration: 4 * time.Second, PacketsPerSec: 25000, Payload: true,
	})
	src := trace.NewMemorySource(trace.Record(gen), gen.TimeBin())
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := New(Config{Scheme: Predictive, Seed: 42, Workers: workers},
					AllQueries(QueryConfig{Seed: 42}))
				sys.Run(src)
			}
		})
	}
}
