package loadshed

// checkpoint.go — the transferable form of a shard. A SystemSnapshot
// alone is not enough to adopt a shard on another process: the adopter
// also has to rebuild an equivalent System (same scheme, strategy,
// predictor, seeds, query set in order) and reopen the shard's traffic
// source positioned at the right batch. ShardCheckpoint bundles all
// three — a self-describing ShardSpec, the snapshot, and the bin to
// resume from — into one gob blob that travels over the coordinator
// link (transport.go checkpoint/adopt frames) and spills to the
// coordinator's -state-dir.
//
// The resume contract mirrors TestSnapshotRestoreBitIdentical: the
// checkpoint is cut at a measurement-interval boundary (the runner's
// boundary hook), Bin is the first unprocessed bin, and a restored
// System streaming ResumeSource(src, Bin) produces bit-identical bins
// to the original system had it never stopped.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/pkt"
	"repro/internal/trace"
)

// CheckpointFormatVersion is the ShardCheckpoint wire version; it moves
// independently of SnapshotFormatVersion (the envelope can grow fields
// without the snapshot body changing).
const CheckpointFormatVersion = 1

// QuerySpec names one query of a shard's set, with the construction
// parameters QueryByName needs to rebuild it.
type QuerySpec struct {
	Kind     string        // the query's Name() string, as QueryByName accepts
	Seed     uint64        // QueryConfig.Seed the original was built with
	Interval time.Duration // QueryConfig.Interval; 0 = the 1 s default
}

// ShardSpec describes how to rebuild a shard's System and traffic
// source from nothing — the part of a checkpoint that is configuration
// rather than state. Only spec-constructible shards are adoptable:
// queries must come from QueryByName (custom instances cannot be
// serialized) and custom shedding must be off (Snapshot refuses it
// anyway).
type ShardSpec struct {
	// System configuration.
	Scheme          string // ParseScheme name
	Strategy        string // StrategyByName name; "" = single global rate
	PredictorKind   string // "" selects the default (mlr)
	Seed            uint64
	Capacity        float64
	Workers         int
	NoPipeline      bool
	HistoryLen      int
	ChangeDetection bool
	Queries         []QuerySpec

	// Cluster identity.
	MinShare float64 // the shard's guaranteed budget fraction

	// Traffic source. Ingest uses cmd/lsd's -ingest syntax ("gen",
	// "udp://...", "unix://...", "tail:path"); the Preset/TraceSeed/
	// TraceDur/Scale fields parameterize the generator when Ingest is
	// "gen". Deterministic sources (gen, tail, trace files) resume
	// exactly via ResumeSource; a live socket ingest cannot be
	// repositioned and resumes best-effort from the live stream.
	Ingest    string
	Preset    string
	TraceSeed uint64
	TraceDur  time.Duration
	Scale     float64
}

// NewSystem rebuilds the shard's System from the spec. The result is
// fresh (no history); install the checkpointed state with Restore.
func (sp *ShardSpec) NewSystem() (*System, error) {
	scheme, err := ParseScheme(sp.Scheme)
	if err != nil {
		return nil, fmt.Errorf("loadshed: shard spec: %w", err)
	}
	cfg := Config{
		Scheme:          scheme,
		Capacity:        sp.Capacity,
		Seed:            sp.Seed,
		Workers:         sp.Workers,
		NoPipeline:      sp.NoPipeline,
		PredictorKind:   sp.PredictorKind,
		HistoryLen:      sp.HistoryLen,
		ChangeDetection: sp.ChangeDetection,
	}
	if sp.Strategy != "" {
		if cfg.Strategy, err = StrategyByName(sp.Strategy); err != nil {
			return nil, fmt.Errorf("loadshed: shard spec: %w", err)
		}
	}
	if len(sp.Queries) == 0 {
		return nil, fmt.Errorf("loadshed: shard spec: no queries")
	}
	qs := make([]Query, len(sp.Queries))
	for i, q := range sp.Queries {
		qs[i], err = QueryByName(q.Kind, QueryConfig{Seed: q.Seed, Interval: q.Interval})
		if err != nil {
			return nil, fmt.Errorf("loadshed: shard spec: %w", err)
		}
	}
	return New(cfg, qs), nil
}

// ShardCheckpoint is one shard frozen at a measurement-interval
// boundary, ready to resume anywhere: spec to rebuild, snapshot to
// restore, bin to reposition the source at.
type ShardCheckpoint struct {
	// Version is stamped by Encode with CheckpointFormatVersion.
	Version int

	Node  string // the shard's cluster name
	Bin   int64  // first unprocessed bin; resume the source here
	Final bool   // set on the drain checkpoint that ends a migration
	Spec  ShardSpec
	Snap  *SystemSnapshot
}

// Encode writes the checkpoint to w in gob encoding, stamping the
// current format versions.
func (cp *ShardCheckpoint) Encode(w io.Writer) error {
	cp.Version = CheckpointFormatVersion
	if cp.Snap != nil {
		cp.Snap.Version = SnapshotFormatVersion
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("loadshed: encode checkpoint: %w", err)
	}
	return nil
}

// EncodeBytes is Encode into a fresh byte slice — the form the
// transport frames and the coordinator's retention store carry.
func (cp *ShardCheckpoint) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeShardCheckpoint reads a checkpoint written by Encode, with the
// same sentinel discipline as DecodeSnapshot: undecodable streams
// report ErrSnapshotCorrupt, decodable streams from an unknown format
// report ErrSnapshotVersion.
func DecodeShardCheckpoint(r io.Reader) (*ShardCheckpoint, error) {
	cp := new(ShardCheckpoint)
	if err := gob.NewDecoder(r).Decode(cp); err != nil {
		return nil, fmt.Errorf("loadshed: decode checkpoint: %w (%v)", ErrSnapshotCorrupt, err)
	}
	if cp.Version != CheckpointFormatVersion {
		return nil, fmt.Errorf("loadshed: decode checkpoint: %w (stream has v%d, this build reads v%d)",
			ErrSnapshotVersion, cp.Version, CheckpointFormatVersion)
	}
	if cp.Snap == nil {
		return nil, fmt.Errorf("loadshed: decode checkpoint: %w (no snapshot body)", ErrSnapshotCorrupt)
	}
	if cp.Snap.Version != SnapshotFormatVersion {
		return nil, fmt.Errorf("loadshed: decode checkpoint: %w (snapshot has v%d, this build reads v%d)",
			ErrSnapshotVersion, cp.Snap.Version, SnapshotFormatVersion)
	}
	return cp, nil
}

// resumedSource positions a source at a batch offset: every Reset
// rewinds the inner source and then discards skip batches, so a run
// started on it begins at the checkpoint bin. The discarded prefix
// keeps its original Start offsets, which is what makes resumed bins
// line up bit-for-bit with the uninterrupted run's.
type resumedSource struct {
	inner trace.Source
	skip  int64
	err   error
}

// ResumeSource wraps src so runs start at batch index skip — the shape
// an adopted shard hands to Stream: the engine's run setup calls Reset,
// and the wrapper re-skips the already-processed prefix afterwards. A
// source that ends inside the prefix poisons the wrapper: NextBatch
// reports end-of-trace and Err explains.
func ResumeSource(src trace.Source, skip int64) trace.Source {
	if skip <= 0 {
		return src
	}
	return &resumedSource{inner: src, skip: skip}
}

func (r *resumedSource) Reset() {
	r.inner.Reset()
	r.err = nil
	for i := int64(0); i < r.skip; i++ {
		if _, ok := r.inner.NextBatch(); !ok {
			r.err = fmt.Errorf("loadshed: resume: source ended at batch %d while skipping to %d", i, r.skip)
			if e := SourceErr(r.inner); e != nil {
				r.err = fmt.Errorf("%v: %w", r.err, e)
			}
			return
		}
	}
}

func (r *resumedSource) NextBatch() (pkt.Batch, bool) {
	if r.err != nil {
		return pkt.Batch{}, false
	}
	return r.inner.NextBatch()
}

func (r *resumedSource) TimeBin() time.Duration { return r.inner.TimeBin() }

// Err surfaces a failed skip, or the inner source's own stream error.
func (r *resumedSource) Err() error {
	if r.err != nil {
		return r.err
	}
	return SourceErr(r.inner)
}
