package loadshed

// snapshot_test.go pins the checkpoint contract: a System snapshotted
// at an interval boundary and restored into a fresh System resumes the
// trace bit-identically to one that never stopped.

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/queries"
	"repro/internal/trace"
)

// snapshotTestQueries returns the fresh query set every system in these
// tests runs.
func snapshotTestQueries() []queries.Query {
	return []queries.Query{
		queries.NewFlows(queries.Config{Seed: 11}),
		queries.NewCounter(queries.Config{Seed: 11}),
		queries.NewTopK(queries.Config{Seed: 11}, 0),
	}
}

// TestSnapshotRestoreBitIdentical: run 4 intervals straight through;
// separately run 2 intervals, snapshot (through an encode/decode round
// trip), restore into a fresh System, run the remaining 2. Bins and
// interval results must match the uninterrupted run bit for bit.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	for _, kind := range []string{"mlr", "slr", "ewma"} {
		t.Run(kind, func(t *testing.T) {
			const dur = 4 * time.Second // 4 measurement intervals
			g := trace.NewGenerator(trace.CESCA2(9, dur, 0.4))
			batches := trace.Record(g)
			bin := g.TimeBin()
			perInterval := int(time.Second / bin)
			cut := 2 * perInterval // exact interval boundary
			if cut <= 0 || cut >= len(batches) {
				t.Fatalf("bad cut %d of %d batches", cut, len(batches))
			}

			qs := snapshotTestQueries()
			capacity := MeasureCapacity(trace.NewMemorySource(batches, bin), qs, 77) * 0.7
			mkSys := func() *System {
				return New(Config{
					Scheme:        Predictive,
					Strategy:      MMFSPkt(),
					Seed:          99,
					Capacity:      capacity,
					Workers:       1,
					PredictorKind: kind,
				}, snapshotTestQueries())
			}

			ref := mkSys().Run(trace.NewMemorySource(batches, bin))

			s1 := mkSys()
			r1 := s1.Run(trace.NewMemorySource(batches[:cut], bin))
			snap, err := s1.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			var buf bytes.Buffer
			if err := snap.Encode(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			decoded, err := DecodeSnapshot(&buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			s2 := mkSys()
			if err := s2.Restore(decoded); err != nil {
				t.Fatalf("restore: %v", err)
			}
			r2 := s2.Run(trace.NewMemorySource(batches[cut:], bin))

			if got, want := len(r1.Bins)+len(r2.Bins), len(ref.Bins); got != want {
				t.Fatalf("split runs produced %d bins, uninterrupted %d", got, want)
			}
			for i := range r1.Bins {
				if !reflect.DeepEqual(r1.Bins[i], ref.Bins[i]) {
					t.Fatalf("pre-snapshot bin %d diverged:\n got %+v\nwant %+v", i, r1.Bins[i], ref.Bins[i])
				}
			}
			for i := range r2.Bins {
				if !reflect.DeepEqual(r2.Bins[i], ref.Bins[len(r1.Bins)+i]) {
					t.Fatalf("resumed bin %d diverged from uninterrupted bin %d:\n got %+v\nwant %+v",
						i, len(r1.Bins)+i, r2.Bins[i], ref.Bins[len(r1.Bins)+i])
				}
			}

			// Interval results: the resumed run restarts its interval
			// numbering at 0; everything else must match bit for bit.
			if got, want := len(r1.Intervals)+len(r2.Intervals), len(ref.Intervals); got != want {
				t.Fatalf("split runs produced %d intervals, uninterrupted %d", got, want)
			}
			for i := range r1.Intervals {
				if !reflect.DeepEqual(r1.Intervals[i], ref.Intervals[i]) {
					t.Fatalf("pre-snapshot interval %d diverged", i)
				}
			}
			for i := range r2.Intervals {
				got := r2.Intervals[i]
				want := ref.Intervals[len(r1.Intervals)+i]
				got.Index = want.Index // numbering restarts; content must not
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("resumed interval %d diverged from uninterrupted interval %d", i, want.Index)
				}
			}
		})
	}
}

// TestSnapshotRestoreErrors pins the refusal paths: snapshots refuse
// queued registry ops, and Restore refuses mismatched predictor kinds
// and query sets instead of installing a torn state.
func TestSnapshotRestoreErrors(t *testing.T) {
	mk := func(kind string, qs []queries.Query) *System {
		return New(Config{
			Scheme:        Predictive,
			Strategy:      MMFSPkt(),
			Seed:          99,
			Capacity:      1e6,
			Workers:       1,
			PredictorKind: kind,
		}, qs)
	}

	s := mk("mlr", snapshotTestQueries())
	if err := s.AddQuery(queries.NewHighWatermark(queries.Config{Seed: 3})); err != nil {
		t.Fatalf("queue add: %v", err)
	}
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot with queued registry ops must fail")
	}

	donor := mk("mlr", snapshotTestQueries())
	snap, err := donor.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := mk("ewma", snapshotTestQueries()).Restore(snap); err == nil {
		t.Fatal("restore across predictor kinds must fail")
	}
	short := mk("mlr", snapshotTestQueries()[:2])
	if err := short.Restore(snap); err == nil {
		t.Fatal("restore with a smaller query set must fail")
	}
	reordered := snapshotTestQueries()
	reordered[0], reordered[1] = reordered[1], reordered[0]
	if err := mk("mlr", reordered).Restore(snap); err == nil {
		t.Fatal("restore with reordered queries must fail")
	}
}
