package loadshed

// metrics.go renders a RollingSnapshot in the Prometheus text exposition
// format, hand-written against the stdlib so the admin plane of a
// serving deployment (cmd/lsd -serve) has no dependencies. The mapping
// from the thesis' quantities to metric names:
//
//	lsd_window_drop_fraction        uncontrolled capture ("DAG") drops / offered
//	lsd_window_unsampled_fraction   the online accuracy-error proxy (§2.2.1)
//	lsd_window_mean_global_rate     min sampling rate across queries
//	lsd_query_rate{query=...}       per-query applied rate (Ch. 5 strategies)
//	lsd_window_mean_delay_bins      capture-buffer occupancy, in bins (§4.1)
//	lsd_window_budget_utilization   (used+overhead+shed)/capacity
//
// Lifetime counters carry the _total suffix per Prometheus conventions;
// windowed gauges say so in their name because their value is a mean
// over the last lsd_window_bins bins, not an instantaneous reading.

import (
	"fmt"
	"io"
	"strings"
)

// promEscape escapes a label value per the text exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus writes the snapshot as Prometheus text-format metrics.
// Per-query series are labelled query="name"; a removed query keeps
// reporting with lsd_query_active 0 until the stream restarts, so
// dashboards see the removal instead of a vanishing series.
func (s RollingSnapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("lsd_bins_total", "Time bins processed since start.", float64(s.Bins))
	counter("lsd_intervals_total", "Measurement intervals flushed since start.", float64(s.Intervals))
	counter("lsd_wire_packets_total", "Packets offered on the wire since start.", float64(s.WirePkts))
	counter("lsd_drop_packets_total", "Uncontrolled capture-buffer drops since start.", float64(s.DropPkts))
	counter("lsd_admit_packets_total", "Packets admitted into the system since start.", float64(s.AdmitPkts))
	counter("lsd_export_cycles_total", "Cycles spent flushing interval results since start.", s.ExportCycles)

	gauge("lsd_window_bins", "Bins covered by the windowed metrics below.", float64(s.WindowBins))
	gauge("lsd_window_packets_per_bin", "Mean offered load over the window, packets per bin.", s.PktsPerBin)
	gauge("lsd_window_drop_fraction", "Uncontrolled drops / offered packets over the window.", s.DropFrac)
	gauge("lsd_window_unsampled_fraction", "Fraction of admitted packets not processed at the applied rate (accuracy-error proxy).", s.UnsampledFrac)
	gauge("lsd_window_mean_global_rate", "Mean of the per-bin minimum sampling rate over the window.", s.MeanGlobalRate)
	gauge("lsd_window_mean_delay_bins", "Mean capture-buffer occupancy over the window, in bins.", s.MeanDelay)
	gauge("lsd_window_max_delay_bins", "Max capture-buffer occupancy over the window, in bins.", s.MaxDelay)
	gauge("lsd_window_mean_used_cycles", "Mean measured query cycles per bin over the window.", s.MeanUsed)
	gauge("lsd_window_mean_overhead_cycles", "Mean platform+prediction cycles per bin over the window.", s.MeanOverhead)
	gauge("lsd_window_mean_shed_cycles", "Mean sampling+re-extraction cycles per bin over the window.", s.MeanShed)
	gauge("lsd_window_budget_utilization", "(used+overhead+shed)/capacity averaged over finite-capacity bins of the window.", s.MeanUtil)

	counter("lsd_change_events_total", "Traffic-change verdicts raised by the drift detector since start.", float64(s.ChangesTotal))
	gauge("lsd_change_last_bin", "Bin index of the latest change verdict (-1 when none).", float64(s.LastChangeBin))
	gauge("lsd_change_window_events", "Change verdicts inside the window.", float64(s.WindowChanges))
	gauge("lsd_change_window_mean_score", "Mean detector score over the window (1 = firing threshold).", s.MeanChangeScore)

	if len(s.Queries) > 0 {
		fmt.Fprintf(&b, "# HELP lsd_query_rate Mean applied sampling rate per query over the window.\n# TYPE lsd_query_rate gauge\n")
		for i, q := range s.Queries {
			var rate float64
			if i < len(s.MeanRates) {
				rate = s.MeanRates[i]
			}
			fmt.Fprintf(&b, "lsd_query_rate{query=\"%s\"} %g\n", promEscape(q), rate)
		}
		fmt.Fprintf(&b, "# HELP lsd_query_active Whether the query is currently registered (0 after RemoveQuery).\n# TYPE lsd_query_active gauge\n")
		for i, q := range s.Queries {
			active := 1
			if i < len(s.Active) && !s.Active[i] {
				active = 0
			}
			fmt.Fprintf(&b, "lsd_query_active{query=\"%s\"} %d\n", promEscape(q), active)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}
