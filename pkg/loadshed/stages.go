package loadshed

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/custom"
	"repro/internal/features"
	"repro/internal/hash"
	"repro/internal/pkt"
	"repro/internal/sampling"
	"repro/internal/sched"
)

// coldStartRate is the sampling rate applied before the predictor has
// any history at all.
const coldStartRate = 0.05

// parallelIndexed runs fn(0) … fn(n-1) on a bounded pool of workers
// goroutines (inline when the pool would be size 1), handing indices
// out through an atomic counter, and returns once every call finished.
// Both the execute stage's query pool and the Cluster's shard-runner
// pool build on it; determinism is the caller's contract — fn(i) must
// touch only index-owned state.
func parallelIndexed(n, workers int, fn func(int)) {
	w := min(workers, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// BinContext threads one batch's state through the pipeline stages. A
// fresh context is built per bin by newBinContext; each stage reads the
// fields of the stages before it and fills in its own. The final
// per-bin record accumulates in Stats.
type BinContext struct {
	// Bin is the batch's index in the run.
	Bin int
	// Wire is the batch as captured on the wire, before admission.
	Wire *pkt.Batch
	// Admitted is the traffic that survived the capture buffer (admit).
	Admitted pkt.Batch
	// Stats is the per-bin record under construction.
	Stats BinStats

	// Controller inputs resolved at construction.
	capacity  float64
	unlimited bool

	// Stage outputs.
	bufferLoss bool            // admit: §4.1 soft buffer-occupancy signal
	overhead   float64         // platformOverhead + extractPredict cycles
	fv         features.Vector // extractPredict: full-stream features
	// sketch is the admitted batch's bitmap sketch (extractPredict):
	// the front stage's validated speculative sketch under the bin
	// pipeline, the global extractor's internal sketch otherwise.
	// Full-rate queries merge it instead of re-hashing in executeQuery.
	sketch     *features.Sketch
	rates      []float64    // decideShedding: per-query sampling rates
	shedCycles float64      // execute: sampling + re-extraction cycles
	exec       []execResult // execute: per-query slots, merged in index order
}

// execResult is one query's contribution to the bin, written by exactly
// one worker and merged deterministically after the pool drains.
type execResult struct {
	used  float64 // measured query cycles
	alloc float64 // predicted cycles × applied rate
}

// newBinContext starts the pipeline for one captured batch. The context
// itself and its internal slices live on the System and are reused
// every bin (bins are strictly sequential; the worker pool drains
// before the next bin starts). The public Stats slices are also reused
// when the run's sink is transient; otherwise they are fresh per bin,
// because a retaining sink keeps them forever.
func (s *System) newBinContext(bin int, b *pkt.Batch) *BinContext {
	capacity := s.gov.Capacity()
	nq := len(s.qs)
	bc := &s.bc
	rates, exec := bc.rates, bc.exec
	var sRates, sUsed, sPred []float64
	if s.recycle {
		sRates, sUsed, sPred = bc.Stats.Rates, bc.Stats.QueryUsed, bc.Stats.QueryPred
	}
	*bc = BinContext{
		Bin:  bin,
		Wire: b,
		Stats: BinStats{
			Start:     b.Start,
			Capacity:  capacity,
			WirePkts:  b.Packets(),
			WireBytes: b.Bytes(),
			Rates:     resizeZeroed(sRates, nq),
			QueryUsed: resizeZeroed(sUsed, nq),
			QueryPred: resizeZeroed(sPred, nq),
		},
		capacity:  capacity,
		unlimited: math.IsInf(capacity, 1),
		rates:     resizeZeroed(rates, nq),
	}
	if cap(exec) < nq {
		exec = make([]execResult, nq)
	}
	bc.exec = exec[:nq]
	clear(bc.exec)
	for i := range bc.rates {
		bc.rates[i] = 1
	}
	return bc
}

// resizeZeroed returns s resized to n with every element zero, reusing
// capacity when possible (a nil s always allocates — the retain-mode
// path hands fresh slices to the sink).
func resizeZeroed(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// step processes one batch through the full pipeline (Algorithm 1):
// capture-buffer admission, platform overhead, feature extraction and
// prediction, the shedding decision, per-query sampling and execution,
// and controller feedback.
func (s *System) step(bin int, b *pkt.Batch) BinStats {
	bc := s.newBinContext(bin, b)
	s.admit(bc)
	s.platformOverhead(bc)
	s.extractPredict(bc)
	s.decideShedding(bc)
	s.execute(bc)
	s.detectChange(bc)
	s.feedback(bc)
	return bc.Stats
}

// admit models the capture buffer: when the system lags more than the
// buffer can hold, incoming packets are dropped without control before
// the system ever sees them ("DAG drops").
func (s *System) admit(bc *BinContext) {
	admitted := bc.Wire.Pkts
	if !bc.unlimited {
		occ := s.gov.Delay() / bc.capacity
		bc.Stats.BufferBins = occ
		// Soft signal at 75% occupancy: the §4.1 "predefined value"
		// that resets rtthresh before any packet is lost.
		if occ > 0.75*s.cfg.BufferBins {
			bc.bufferLoss = true
		}
		if excess := occ - s.cfg.BufferBins; excess > 0 {
			dropFrac := math.Min(1, excess)
			nDrop := int(dropFrac * float64(len(admitted)))
			bc.Stats.DropPkts = nDrop
			// Tail drop: a full DAG buffer loses the packets that
			// arrive while it is full — the newest ones (§4.1). The
			// already-buffered head of the bin survives.
			admitted = admitted[:len(admitted)-nDrop]
		}
	}
	bc.Stats.AdmitPkts = len(admitted)
	bc.Admitted = pkt.Batch{Start: bc.Wire.Start, Bin: bc.Wire.Bin, Pkts: admitted}
}

// platformOverhead charges the platform's own work (como_cycles):
// capture, filtering, memory and storage management, with rare spikes
// for disk interference.
func (s *System) platformOverhead(bc *BinContext) {
	bc.overhead = comoPerBin + comoPerPkt*float64(len(bc.Admitted.Pkts))
	if s.noise.Float64() < diskSpikeProb {
		bc.overhead += comoPerBin * diskSpikeFactor
	}
}

// extractPredict runs feature extraction over the admitted stream and
// asks every query's predictor for its full-rate cost (predictive
// scheme only), charging the prediction subsystem's cycles.
func (s *System) extractPredict(bc *BinContext) {
	if s.cfg.Scheme != Predictive {
		return
	}
	var predSum float64
	// Resolve the admitted batch's sketch. Under the bin pipeline the
	// front stage speculatively sketched the wire batch; admission only
	// ever truncates the batch's tail, so an equal packet count means
	// the sketch is exactly the admitted batch's and the expensive
	// hashing already happened off this goroutine. A mismatch (a rare
	// DAG-drop bin) re-sketches the admitted prefix in place, restoring
	// sequential semantics at sequential cost.
	sk := s.specSketch
	if sk == nil {
		sk = s.globalExt.Sketch()
		s.globalExt.SketchInto(sk, bc.Admitted.Pkts)
	} else if sk.Pkts() != len(bc.Admitted.Pkts) {
		s.globalExt.SketchInto(sk, bc.Admitted.Pkts)
	}
	bc.sketch = sk
	s.globalExt.Ops += sk.Ops()
	bc.overhead += feCostPerOp * float64(sk.Ops())
	// FinishSketchInto writes the extractor's scratch vector — no
	// per-bin allocation. It stays valid for the whole bin (workers read
	// it in execute) because the next write to it is the next bin's
	// extractPredict, on this goroutine, after the pool has drained.
	bc.fv = s.globalExt.ExtractFromSketch(sk, float64(bc.Admitted.Packets()), float64(bc.Admitted.Bytes()))
	for i, rq := range s.qs {
		if rq == nil { // tombstoned: predicts 0, contributes nothing
			continue
		}
		var fit, fcbf int64
		if rq.mlr != nil {
			fcbf, fit = rq.mlr.FCBFOps, rq.mlr.FitOps
		}
		p := rq.pred.Predict(bc.fv)
		if rq.mlr != nil {
			bc.overhead += fcbfCostPerOp*float64(rq.mlr.FCBFOps-fcbf) + mlrCostPerOp*float64(rq.mlr.FitOps-fit)
		}
		bc.Stats.QueryPred[i] = p
		predSum += p
	}
	bc.Stats.Predicted = predSum
}

// decideShedding turns availability and predictions into per-query
// sampling rates, according to the configured scheme.
func (s *System) decideShedding(bc *BinContext) {
	avail := s.gov.Avail(bc.overhead)
	bc.Stats.Avail = avail
	switch s.cfg.Scheme {
	case Predictive:
		if !bc.unlimited {
			s.decidePredictive(avail, bc.Stats.QueryPred, bc.rates)
		}
	case Reactive:
		if !bc.unlimited {
			// Eq. 4.1: srate_t = min(1, max(α, srate_{t-1} ·
			// (avail_t − delay)/consumed_{t-1})), where avail is just
			// capacity minus overhead and delay is only the previous
			// bin's overshoot — the reactive baseline has no notion of
			// accumulated backlog, which is exactly why it overruns its
			// buffers under sustained overload (Fig. 4.2c).
			rAvail := bc.capacity - bc.overhead - s.reactiveDelay
			r := 1.0
			if s.lastConsumed > 0 {
				r = s.reactiveRate * rAvail / s.lastConsumed
			}
			r = math.Min(1, math.Max(s.cfg.ReactiveMinRate, r))
			s.reactiveRate = r
			for i := range bc.rates {
				bc.rates[i] = r
			}
		}
	case Original, NoShed:
		// No sampling: the buffer is the only defence.
	}
}

// decidePredictive fills rates according to the configured strategy (or
// the Chapter 4 single global rate when no strategy is set).
func (s *System) decidePredictive(avail float64, preds []float64, rates []float64) {
	var predSum float64
	for _, p := range preds {
		predSum += p
	}
	if predSum <= 0 {
		// Cold start: no model yet (first batch ever). Processing blind
		// at full rate can cost many times the bin budget before the
		// first observation lands; admit a conservative trickle instead
		// so the first history points are cheap and informative.
		for i := range rates {
			rates[i] = coldStartRate
		}
		return
	}
	if s.cfg.Strategy == nil {
		rate := 1.0
		if s.gov.NeedShed(avail, predSum) {
			rate = s.gov.Rate(avail, predSum)
		}
		for i := range rates {
			rates[i] = rate
		}
		return
	}
	budget := s.gov.QueryBudget(avail)
	if cap(s.demandBuf) < len(s.qs) {
		s.demandBuf = make([]sched.Demand, len(s.qs))
	}
	demands := s.demandBuf[:len(s.qs)]
	for i, rq := range s.qs {
		if rq == nil {
			// Tombstoned slot: a zero Demand is neutral under every
			// strategy (no cycles, no minimum rate), so the allocation
			// the live queries see is unchanged by the slot's presence.
			demands[i] = sched.Demand{}
			continue
		}
		demand := preds[i]
		if rq.shed != nil {
			// The custom manager's correction factor converts the
			// (shed-regime) prediction into a demand estimate.
			demand = s.manager.Demand(rq.shed, preds[i])
		}
		demands[i] = sched.Demand{
			Name:    rq.q.Name(),
			Cycles:  demand,
			MinRate: rq.q.MinRate(),
		}
	}
	for i, a := range sched.AllocateInto(s.cfg.Strategy, demands, budget, &s.schedWs) {
		rates[i] = a.Rate
	}
}

// execute sheds and runs every query. The shared shed-stream
// re-extraction happens once, sequentially; the per-query work then
// fans out over a bounded worker pool (Config.Workers). Every worker
// touches only its query's state and per-index result slots, and the
// slots are merged in index order afterwards, so the bin record is
// bit-identical for any worker count.
func (s *System) execute(bc *BinContext) {
	// Re-extract features of the shed stream once, shared across
	// queries (§5.5.4: "the traffic features could be recomputed just
	// once"). The shared vector approximates every sampled query's
	// stream; per-query interval state is maintained by merging the
	// shared batch bitmaps, which costs no re-hashing.
	if s.cfg.Scheme == Predictive {
		repRate, nSampled := 0.0, 0
		for i, r := range bc.rates {
			if s.qs[i] == nil {
				continue
			}
			if r < 1 && !(s.qs[i].shed != nil && s.qs[i].shed.Mode() == custom.ModeCustom) {
				repRate += r
				nSampled++
			}
		}
		if nSampled > 0 {
			repRate /= float64(nSampled)
			sampled := s.shedSamp.SampleInto(s.shedBuf, bc.Admitted.Pkts, repRate)
			if repRate < 1 {
				// Keep the (possibly grown) scratch — but only when it was
				// actually filled: the mean of rates < 1 can round to
				// exactly 1, and then SampleInto returned the admitted
				// batch itself, which must never become the scratch a
				// later bin writes into.
				s.shedBuf = sampled[:0]
			}
			sb := pkt.Batch{Start: bc.Admitted.Start, Bin: bc.Admitted.Bin, Pkts: sampled}
			opsBefore := s.shedExt.Ops
			// Only the side effect matters here — shedExt's batch bitmaps,
			// which sampled queries merge from in executeQuery — so the
			// scratch vector Extract fills is deliberately unused.
			s.shedExt.Extract(&sb)
			bc.shedCycles += feCostPerOp * float64(s.shedExt.Ops-opsBefore)
			bc.shedCycles += sampleCostPerPkt * float64(len(bc.Admitted.Pkts))
		}
	}

	if s.execFn == nil {
		// bc is always the System's reused context, so one closure serves
		// every bin.
		s.execFn = func(i int) { s.executeQuery(&s.bc, i) }
	}
	if s.execPool != nil {
		// The persistent pool replaces parallelIndexed's per-bin
		// goroutine spawns on the hot path; same index-handout contract,
		// with the run goroutine as the pool's remaining worker.
		s.execPool.run(len(s.qs), s.execFn)
	} else {
		parallelIndexed(len(s.qs), s.execWk, s.execFn)
	}

	// Deterministic merge: index order fixes the floating-point
	// summation order regardless of which worker ran which query.
	// Tombstoned slots are skipped: their exec slots are zero, but their
	// never-written Rates entry (0) would otherwise pin GlobalRate to 0
	// for the rest of the run.
	usedSum, allocSum, minRate := 0.0, 0.0, 1.0
	for i := range s.qs {
		if s.qs[i] == nil {
			continue
		}
		usedSum += bc.exec[i].used
		allocSum += bc.exec[i].alloc
		if r := bc.Stats.Rates[i]; r < minRate {
			minRate = r
		}
	}
	bc.Stats.Used = usedSum
	bc.Stats.Shed = bc.shedCycles
	bc.Stats.Overhead = bc.overhead
	bc.Stats.Alloc = allocSum
	bc.Stats.GlobalRate = minRate
}

// executeQuery sheds, runs, measures and observes one query. It runs on
// a worker goroutine: it may read shared state frozen by the earlier
// stages (the admitted batch, the global and shed extractors' batch
// bitmaps) but writes only query-local state (samplers, predictor,
// extractor, custom-shedding record, its own RNG stream) and the
// per-index slots of bc.
func (s *System) executeQuery(bc *BinContext, i int) {
	rq := s.qs[i]
	if rq == nil { // tombstoned slot: zero rate, zero cycles, no result
		return
	}
	rate := bc.rates[i]
	qb := &rq.qbatch
	*qb = bc.Admitted
	effRate := rate // the rate the query is told was applied

	if rq.shed != nil && s.cfg.Scheme == Predictive {
		switch rq.shed.Mode() {
		case custom.ModeCustom:
			// Custom shedding: the query sheds internally; the
			// batch is delivered whole and the query assumes no
			// packet loss. A zero allocation withholds the batch
			// entirely (the query is disabled for this bin).
			s.manager.Apply(rq.shed, rate)
			effRate = 1
			if rate <= 0 {
				qb.Pkts = nil
			}
		case custom.ModePoliced:
			// The system took shedding away: enforced packet
			// sampling (§6.1.1).
			s.manager.Apply(rq.shed, rate)
			if rate < 1 {
				rq.sampBuf = rq.psamp.SampleInto(rq.sampBuf, bc.Admitted.Pkts, rate)
				qb.Pkts = rq.sampBuf
			}
		case custom.ModeDisabled:
			s.manager.Apply(rq.shed, 0)
			rate = 0
			qb.Pkts = nil
			effRate = 1
		}
	} else if rate < 1 {
		// Shed into the query's scratch slice: the sampled view only has
		// to live until Process and the feature merge below return, so
		// one buffer per query replaces a fresh allocation per bin.
		switch rq.q.Method() {
		case sampling.Flow:
			rq.sampBuf = rq.fsamp.SampleInto(rq.sampBuf, bc.Admitted.Pkts, rate)
		default:
			rq.sampBuf = rq.psamp.SampleInto(rq.sampBuf, bc.Admitted.Pkts, rate)
		}
		qb.Pkts = rq.sampBuf
	}
	bc.Stats.Rates[i] = rate

	// Run the query.
	ops := rq.q.Process(qb, effRate)
	base := s.cfg.Cost.Cycles(ops)
	measured, spiked := s.measure(rq.noise, base)
	bc.Stats.QueryUsed[i] = measured
	bc.exec[i] = execResult{used: measured, alloc: bc.Stats.QueryPred[i] * rate}

	// Update the query's prediction history with the features of
	// its (possibly shed) stream (Algorithm 1 lines 12, 16). The
	// distinct counts come from the shared extractors; the scalar
	// packet/byte features are the query's own. A custom-shedding
	// query whose batch was withheld (rate 0) processed nothing and
	// contributes no observation — pairing full-batch features with
	// its residual cost would poison the model. The same holds for a
	// ModeDisabled query: it saw an empty batch and cost only the
	// per-batch residual, so observing it would fill the MLR history
	// with (empty features, near-zero cost) pairs.
	if s.cfg.Scheme == Predictive {
		customMode := rq.shed != nil && rq.shed.Mode() == custom.ModeCustom
		disabled := rq.shed != nil && rq.shed.Mode() == custom.ModeDisabled
		if !(customMode && rate <= 0) && !disabled {
			// ExtractFromSketch returns rq.ext's scratch vector without
			// allocating; it only has to live until Observe copies it into
			// the predictor's history just below. Safe on the worker pool:
			// rq.ext is query-owned, and the source sketches are only read
			// (bc.sketch and the shed extractor's batch state are frozen by
			// the earlier stages; under the bin pipeline the front stage
			// writes only the other ring generation's sketch).
			var qf features.Vector
			if rate >= 1 || customMode {
				// Stream identical to the full batch: merge, don't rescan.
				qf = rq.ext.ExtractFromSketch(bc.sketch, bc.fv[features.IdxPackets], bc.fv[features.IdxBytes])
			} else {
				qf = rq.ext.ExtractFromSketch(s.shedExt.Sketch(), float64(len(qb.Pkts)), float64(qb.Bytes()))
			}
			if spiked {
				// §3.2.4: measurements corrupted by context switches
				// are replaced with the prediction in the MLR history.
				rq.pred.Observe(qf, bc.Stats.QueryPred[i]*rate)
			} else {
				rq.pred.Observe(qf, measured)
			}
		}
		if rq.shed != nil {
			s.manager.Audit(rq.shed, measured, bc.Stats.QueryPred[i])
		}
	}
}

// detectChange feeds the online drift detector with this bin's feature
// vector and aggregate prediction residual, and on a change verdict
// tells every MLR predictor to discount its pre-change history. The
// residual is a log-ratio so over- and under-prediction are symmetric
// and the detector's thresholds are scale-free. Runs after execute so
// Used/Alloc are final, and unlike feedback it also runs under
// unlimited capacity — drift experiments measure raw accuracy without
// a cycle budget. The detector's own cost (O(features) per bin) is
// not charged to platform overhead; see DESIGN.md §13.
func (s *System) detectChange(bc *BinContext) {
	if s.det == nil || bc.fv == nil {
		return
	}
	residual := math.Log((bc.Stats.Used + 1) / (bc.Stats.Alloc + 1))
	v := s.det.Observe(bc.fv, residual)
	bc.Stats.ChangeScore = v.Score
	bc.Stats.Change = v.Change
	if !v.Change {
		return
	}
	for _, rq := range s.qs {
		if rq != nil && rq.mlr != nil {
			rq.mlr.NotifyChange()
		}
	}
}

// feedback closes the control loop: the governor observes what the bin
// actually cost against what it allocated.
func (s *System) feedback(bc *BinContext) {
	if bc.unlimited {
		return
	}
	s.reactiveDelay = math.Max(0, bc.Stats.Used+bc.overhead+bc.shedCycles-bc.capacity)
	s.gov.Observe(core.Feedback{
		Predicted:   bc.Stats.Predicted,
		AllocCycles: bc.Stats.Alloc,
		UsedCycles:  bc.Stats.Used,
		ShedCycles:  bc.shedCycles,
		Overhead:    bc.overhead,
		QueryAvail:  bc.Stats.Avail,
		BufferLoss:  bc.bufferLoss,
	})
	s.lastConsumed = bc.Stats.Used
}

// measure converts true cycles into a measured value, adding the noise
// and occasional spikes of TSC-based measurement (§3.2.4). Each query
// draws from its own RNG stream so that measurements are independent of
// the order in which the worker pool runs the queries.
func (s *System) measure(rng *hash.XorShift, base float64) (measured float64, spiked bool) {
	m := base
	if s.cfg.NoiseSigma > 0 {
		m *= math.Exp(s.cfg.NoiseSigma*rng.NormFloat64() - s.cfg.NoiseSigma*s.cfg.NoiseSigma/2)
	}
	if s.cfg.SpikeProb > 0 && rng.Float64() < s.cfg.SpikeProb {
		m *= s.cfg.SpikeFactor
		return m, true
	}
	return m, false
}
