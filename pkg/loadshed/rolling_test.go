package loadshed

import (
	"math"
	"strings"
	"testing"
)

// synthBin builds a BinStats with enough fields set for RollingStats:
// traffic counters proportional to v, a global rate, and per-query
// rates (one per element of rates).
func synthBin(v int, global float64, rates ...float64) *BinStats {
	return &BinStats{
		WirePkts:   10 * v,
		DropPkts:   v,
		AdmitPkts:  9 * v,
		Used:       float64(100 * v),
		Overhead:   float64(10 * v),
		Shed:       float64(v),
		Capacity:   1000,
		GlobalRate: global,
		BufferBins: float64(v),
		Rates:      rates,
	}
}

// TestRollingPartialWindow pins Snapshot on a window that has not
// filled yet: windowed means cover exactly the bins seen, not the
// configured window, and lifetime counters match them.
func TestRollingPartialWindow(t *testing.T) {
	r := NewRollingStats(10)
	r.OnQuery(0, "a")
	for v := 1; v <= 4; v++ {
		r.OnBin(synthBin(v, 0.5, 0.25))
	}
	s := r.Snapshot()
	if s.WindowBins != 4 {
		t.Fatalf("WindowBins = %d, want 4", s.WindowBins)
	}
	if s.Bins != 4 {
		t.Fatalf("Bins = %d, want 4", s.Bins)
	}
	// 1+2+3+4 = 10 units: wire 100 pkts over 4 bins.
	if s.PktsPerBin != 25 {
		t.Fatalf("PktsPerBin = %v, want 25", s.PktsPerBin)
	}
	if s.WirePkts != 100 || s.DropPkts != 10 || s.AdmitPkts != 90 {
		t.Fatalf("lifetime counters %d/%d/%d, want 100/10/90", s.WirePkts, s.DropPkts, s.AdmitPkts)
	}
	if s.DropFrac != 0.1 {
		t.Fatalf("DropFrac = %v, want 0.1", s.DropFrac)
	}
	if s.MeanGlobalRate != 0.5 {
		t.Fatalf("MeanGlobalRate = %v, want 0.5", s.MeanGlobalRate)
	}
	if len(s.MeanRates) != 1 || s.MeanRates[0] != 0.25 {
		t.Fatalf("MeanRates = %v, want [0.25]", s.MeanRates)
	}
	if s.MaxDelay != 4 {
		t.Fatalf("MaxDelay = %v, want 4", s.MaxDelay)
	}
	// (used+overhead+shed)/capacity averaged: sum over v of 111v/1000 / 4.
	wantUtil := 111.0 * 10 / 1000 / 4
	if math.Abs(s.MeanUtil-wantUtil) > 1e-12 {
		t.Fatalf("MeanUtil = %v, want %v", s.MeanUtil, wantUtil)
	}
}

// TestRollingWrapAround pins the ring after more bins than the window:
// windowed means cover only the last window bins while lifetime
// counters keep the whole history.
func TestRollingWrapAround(t *testing.T) {
	r := NewRollingStats(4)
	r.OnQuery(0, "a")
	for v := 1; v <= 10; v++ {
		r.OnBin(synthBin(v, float64(v)/10, float64(v)/100))
	}
	s := r.Snapshot()
	if s.WindowBins != 4 || s.Bins != 10 {
		t.Fatalf("WindowBins/Bins = %d/%d, want 4/10", s.WindowBins, s.Bins)
	}
	// Window holds v = 7..10: 34 units, wire 340 over 4 bins.
	if s.PktsPerBin != 85 {
		t.Fatalf("PktsPerBin = %v, want 85 (last 4 bins only)", s.PktsPerBin)
	}
	// Lifetime: sum v = 55 units.
	if s.WirePkts != 550 || s.DropPkts != 55 {
		t.Fatalf("lifetime wire/drop = %d/%d, want 550/55", s.WirePkts, s.DropPkts)
	}
	if want := (0.7 + 0.8 + 0.9 + 1.0) / 4; math.Abs(s.MeanGlobalRate-want) > 1e-12 {
		t.Fatalf("MeanGlobalRate = %v, want %v", s.MeanGlobalRate, want)
	}
	if want := (0.07 + 0.08 + 0.09 + 0.10) / 4; math.Abs(s.MeanRates[0]-want) > 1e-12 {
		t.Fatalf("MeanRates[0] = %v, want %v", s.MeanRates[0], want)
	}
	if s.MaxDelay != 10 {
		t.Fatalf("MaxDelay = %v, want 10", s.MaxDelay)
	}
}

// TestRollingRatesAcrossArrival pins per-query aggregation when a query
// joins mid-stream (an interval-boundary Arrival or AddQuery): its mean
// rate averages only the bins it existed, earlier queries average all
// their bins, and indices stay aligned.
func TestRollingRatesAcrossArrival(t *testing.T) {
	r := NewRollingStats(8)
	r.OnQuery(0, "old")
	for i := 0; i < 4; i++ {
		r.OnBin(synthBin(1, 1, 0.4))
	}
	// Interval boundary: a second query joins; bins now carry two rates.
	r.OnQuery(1, "new")
	for i := 0; i < 2; i++ {
		r.OnBin(synthBin(1, 1, 0.4, 0.8))
	}
	s := r.Snapshot()
	if len(s.Queries) != 2 || s.Queries[0] != "old" || s.Queries[1] != "new" {
		t.Fatalf("Queries = %v", s.Queries)
	}
	if len(s.MeanRates) != 2 {
		t.Fatalf("MeanRates has %d entries, want 2", len(s.MeanRates))
	}
	if math.Abs(s.MeanRates[0]-0.4) > 1e-12 {
		t.Fatalf("old query mean rate = %v, want 0.4 over all 6 bins", s.MeanRates[0])
	}
	if math.Abs(s.MeanRates[1]-0.8) > 1e-12 {
		t.Fatalf("new query mean rate = %v, want 0.8 over its 2 bins", s.MeanRates[1])
	}
	if len(s.Active) != 2 || !s.Active[0] || !s.Active[1] {
		t.Fatalf("Active = %v, want both true", s.Active)
	}
}

// TestWritePrometheus pins the exposition format the admin plane
// serves: every advertised metric name appears with HELP/TYPE lines,
// per-query series carry the query label, and label values escape
// quotes and backslashes.
func TestWritePrometheus(t *testing.T) {
	r := NewRollingStats(4)
	r.OnQuery(0, "flows")
	r.OnQuery(1, `we"ird\name`)
	r.OnBin(synthBin(2, 0.5, 0.25, 0.75))
	r.OnInterval(&IntervalResults{})
	r.OnQueryRemove(1, `we"ird\name`)

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"lsd_bins_total 1",
		"lsd_intervals_total 1",
		"lsd_wire_packets_total 20",
		"lsd_drop_packets_total 2",
		"lsd_admit_packets_total 18",
		"lsd_export_cycles_total",
		"lsd_window_bins 1",
		"lsd_window_packets_per_bin 20",
		"lsd_window_drop_fraction 0.1",
		"lsd_window_unsampled_fraction",
		"lsd_window_mean_global_rate 0.5",
		"lsd_window_mean_delay_bins 2",
		"lsd_window_max_delay_bins 2",
		"lsd_window_mean_used_cycles 200",
		"lsd_window_mean_overhead_cycles 20",
		"lsd_window_mean_shed_cycles 2",
		"lsd_window_budget_utilization",
		`lsd_query_rate{query="flows"} 0.25`,
		`lsd_query_active{query="flows"} 1`,
		`lsd_query_rate{query="we\"ird\\name"} 0.75`,
		`lsd_query_active{query="we\"ird\\name"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "lsd_") {
			name := line[:strings.IndexAny(line, "{ ")]
			if !strings.Contains(out, "# HELP "+name+" ") || !strings.Contains(out, "# TYPE "+name+" ") {
				t.Errorf("metric %s lacks HELP/TYPE lines", name)
			}
		}
	}
}
