package loadshed

// coord.go — the budget coordinator and the node wrapper it governs,
// split out of the Cluster so coordination is a protocol rather than a
// method call. A Coordinator owns the cross-shard allocation state
// machine: it collects per-node DemandReports, runs the Chapter 5
// allocators (internal/sched) over the live nodes, and computes per-
// node BudgetGrants. A Node wraps one System as a cluster member: it
// steps the engine, folds each bin's observed demand into an EWMA,
// reports through its NodeTransport, and applies granted capacity at
// bin boundaries.
//
// The split supports two deployments with the same arithmetic:
//
//   - loopback (transport.go): the in-process Cluster, where reports,
//     allocation and grants happen synchronously at the lockstep
//     barrier between bins. AllocateRound treats exactly the nodes
//     that reported since the previous round as live, which reproduces
//     the pre-split Cluster bit for bit (nodes are visited in join ==
//     shard-index order, so every floating-point sum runs in the same
//     order as before).
//   - TCP (transport.go): coordinator and workers as separate
//     processes. Liveness is lease-based — AllocateLease marks nodes
//     silent for longer than the lease as partitioned and allocates
//     over the rest; a partitioned node keeps shedding on its last
//     local capacity (graceful degradation) and rejoins the allocation
//     the moment a fresh report arrives.

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/trace"
)

// grantFloorFrac is the fraction of an equal share every live node is
// guaranteed per round (see sched.GrantsWithFloor).
const grantFloorFrac = 0.01

// coordNode is the coordinator's record of one cluster member.
type coordNode struct {
	name       string
	minShare   float64
	demand     float64 // latest reported EWMA demand, cycles/bin
	bin        int64   // latest reported bin index
	done       bool    // node finished its trace
	partitioned bool   // lease expired without a report (TCP mode)
	reported   bool    // report received since the last AllocateRound
	ever       bool    // at least one demand report received
	lastReport time.Time
	grant      float64
	grantRound uint64

	// Failover state (coord.go PlanFailover / transport.go heartbeat).
	partitionedAt time.Time // when the partitioned flag last rose
	ckptBin       int64     // latest checkpoint's resume bin
	ckptFinal     bool      // latest checkpoint ended a drain
	ckptBlob      []byte    // latest gob ShardCheckpoint; nil = none
	ckptAt        time.Time
	offeredTo     string    // live node the shard is currently offered to
	offeredAt     time.Time
	offerTaken    bool // offer consumed by a polling (loopback) adopter
	offerAttempts int  // rotates the adopter choice across re-offers
	migrateTo     string // planned-migration target; directs the offer
	drainReq      bool   // coordinator wants this shard to drain
}

// CoordNodeStatus is one node's row in Coordinator.Status, the record
// behind cmd/lsd's /cluster endpoint and per-node metrics.
type CoordNodeStatus struct {
	Name        string    `json:"name"`
	MinShare    float64   `json:"min_share,omitempty"`
	Demand      float64   `json:"demand"`
	Grant       float64   `json:"grant"`
	Bin         int64     `json:"bin"`
	Done        bool      `json:"done"`
	Partitioned bool      `json:"partitioned"`
	LastReport  time.Time `json:"last_report"`

	// Failover fields: the latest retained checkpoint's resume bin (-1
	// when no checkpoint is held), whether it was a drain checkpoint,
	// and any in-flight adoption offer or migration target.
	CheckpointBin   int64  `json:"checkpoint_bin"`
	CheckpointFinal bool   `json:"checkpoint_final,omitempty"`
	OfferedTo       string `json:"offered_to,omitempty"`
	MigrateTo       string `json:"migrate_to,omitempty"`
}

// Coordinator is the cross-shard budget allocator, detached from any
// particular transport. All methods are safe for concurrent use: the
// TCP server calls Report from per-connection readers while the
// heartbeat loop allocates and the admin plane reads Status.
type Coordinator struct {
	mu     sync.Mutex
	policy sched.Strategy
	total  float64
	nodes  []*coordNode // join order; allocation iterates this order
	byName map[string]*coordNode
	round  uint64

	// Per-round scratch, reused so a per-bin loopback round allocates
	// nothing in steady state.
	liveBuf   []*coordNode
	demandBuf []sched.Demand
	grantBuf  []float64
	ws        sched.Workspace

	// Failover bookkeeping. stateDir, when set, receives a write-through
	// copy of every retained checkpoint (one file per shard). The
	// counters back the lsd_cluster_* metrics. None of this is touched
	// by allocateLocked, which keeps steady-state rounds at 0 allocs.
	stateDir     string
	ckptsStored  int64
	offersIssued int64
}

// NewCoordinator returns a coordinator distributing total cycles per
// bin across its nodes with the given policy. The policy must be
// non-nil and total finite — a static split needs no coordinator.
func NewCoordinator(policy sched.Strategy, total float64) *Coordinator {
	if policy == nil {
		panic("loadshed: NewCoordinator with nil policy (static split needs no coordinator)")
	}
	if math.IsInf(total, 1) || total <= 0 {
		panic("loadshed: NewCoordinator needs a finite positive total capacity")
	}
	return &Coordinator{policy: policy, total: total, byName: make(map[string]*coordNode)}
}

// Total returns the machine budget the coordinator distributes.
func (c *Coordinator) Total() float64 { return c.total }

// PolicyName returns the allocation policy's name.
func (c *Coordinator) PolicyName() string { return c.policy.Name() }

// join appends a fresh membership record without touching the name
// index — the loopback transport addresses its node by handle, so two
// in-process shards may even share a name.
func (c *Coordinator) join(name string, minShare float64) *coordNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := &coordNode{name: name, minShare: minShare}
	c.nodes = append(c.nodes, n)
	return n
}

// Join registers (or re-registers) a node by name, the keyed form the
// TCP server uses: a worker that reconnects after a partition or a
// restart lands on its existing record, clearing the partitioned and
// done flags so the next report re-enters it into the allocation.
func (c *Coordinator) Join(name string, minShare float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.byName[name]
	if n == nil {
		n = &coordNode{name: name}
		c.nodes = append(c.nodes, n)
		c.byName[name] = n
	}
	n.minShare = minShare
	n.partitioned = false
	n.done = false
	n.reported = false
	// A hello settles any in-flight adoption: either the adopter dialed
	// in under the shard's name (offer consummated) or the original came
	// back (offer moot). Either way the shard is live again.
	n.offeredTo = ""
	n.offerTaken = false
	n.offerAttempts = 0
	n.migrateTo = ""
}

// Report folds a node's demand report in by name (TCP path). Reports
// from unknown nodes are dropped — the hello/Join handshake precedes
// them on every conforming transport.
func (c *Coordinator) Report(r DemandReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.byName[r.Node]
	if n == nil {
		return
	}
	c.reportLocked(n, r)
}

// reportNode is Report addressed by handle (loopback path).
func (c *Coordinator) reportNode(n *coordNode, r DemandReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reportLocked(n, r)
}

func (c *Coordinator) reportLocked(n *coordNode, r DemandReport) {
	n.bin = r.Bin
	n.done = r.Done
	n.lastReport = time.Now()
	if r.Done {
		n.reported = false
		return
	}
	n.demand = r.Demand
	n.reported = true
	n.ever = true
	// Any report proves liveness: a partitioned node that reaches the
	// coordinator again rejoins the next allocation.
	n.partitioned = false
	// A live report while an offer is outstanding settles the adoption
	// the same way Join does (reports during a pre-offer drain leave
	// migrateTo standing — the directed offer still has to happen).
	if n.offeredTo != "" {
		n.offeredTo = ""
		n.offerTaken = false
		n.offerAttempts = 0
		n.migrateTo = ""
	}
}

// AllocateRound runs one lockstep coordination round: the nodes that
// reported since the previous round are live, everyone else (done,
// never-joined-in) keeps its stale grant, which Grant() then refuses
// to hand out. This is the loopback Cluster's per-bin path, and its
// arithmetic — demand order, allocator, floor, surplus — is the
// pre-split Cluster.coordinate verbatim.
func (c *Coordinator) AllocateRound() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.allocateLocked(func(n *coordNode) bool { return n.reported && !n.done })
}

// AllocateLease runs one heartbeat coordination round under lease-based
// liveness: nodes whose last report is older than the lease are marked
// partitioned and excluded (their budget redistributes to the
// survivors); nodes that have ever reported and are neither done nor
// partitioned are allocated to, whether or not a report arrived this
// exact heartbeat. The TCP server calls this on its heartbeat ticker.
func (c *Coordinator) AllocateLease(lease time.Duration) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.ever && !n.done && now.Sub(n.lastReport) > lease {
			if !n.partitioned {
				n.partitioned = true
				n.partitionedAt = now // starts the failover grace window
			}
		}
	}
	c.allocateLocked(func(n *coordNode) bool { return n.ever && !n.done && !n.partitioned })
}

// allocateLocked computes grants for the nodes live deems in, in join
// order. Caller holds c.mu.
func (c *Coordinator) allocateLocked(live func(*coordNode) bool) {
	act := c.liveBuf[:0]
	for _, n := range c.nodes {
		if live(n) {
			act = append(act, n)
		}
		n.reported = false
	}
	c.liveBuf = act
	if len(act) == 0 {
		return
	}
	if cap(c.demandBuf) < len(act) {
		c.demandBuf = make([]sched.Demand, len(act))
	}
	demands := c.demandBuf[:len(act)]
	for i, n := range act {
		demands[i] = sched.Demand{Name: n.name, Cycles: n.demand, MinRate: n.minShare}
	}
	allocs := sched.AllocateInto(c.policy, demands, c.total, &c.ws)
	c.grantBuf = sched.GrantsWithFloor(c.grantBuf, allocs, c.total, grantFloorFrac)
	c.round++
	for i, n := range act {
		n.grant = c.grantBuf[i]
		n.grantRound = c.round
	}
}

// grantFor returns the node's grant if it was part of the most recent
// allocation round; ok=false otherwise (done, partitioned, or no round
// yet), in which case the node keeps its current local capacity.
func (c *Coordinator) grantFor(n *coordNode) (BudgetGrant, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n.grantRound == 0 || n.grantRound != c.round {
		return BudgetGrant{}, false
	}
	return BudgetGrant{Node: n.name, Round: n.grantRound, Capacity: n.grant}, true
}

// grantsLocked appends every node's latest grant stamped with the
// current round, for the TCP server's push loop. Caller holds c.mu.
func (c *Coordinator) currentGrants(dst []BudgetGrant) []BudgetGrant {
	c.mu.Lock()
	defer c.mu.Unlock()
	dst = dst[:0]
	for _, n := range c.nodes {
		if n.grantRound == 0 || n.grantRound != c.round {
			continue
		}
		dst = append(dst, BudgetGrant{Node: n.name, Round: n.grantRound, Capacity: n.grant})
	}
	return dst
}

// Status snapshots every node's membership record, in join order.
func (c *Coordinator) Status() []CoordNodeStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CoordNodeStatus, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = CoordNodeStatus{
			Name:        n.name,
			MinShare:    n.minShare,
			Demand:      n.demand,
			Grant:       n.grant,
			Bin:         n.bin,
			Done:        n.done,
			Partitioned: n.partitioned,
			LastReport:  n.lastReport,

			CheckpointBin:   -1,
			CheckpointFinal: n.ckptFinal,
			OfferedTo:       n.offeredTo,
			MigrateTo:       n.migrateTo,
		}
		if n.ckptBlob != nil {
			out[i].CheckpointBin = n.ckptBin
		}
	}
	return out
}

// Node wraps one System as a cluster member. Inside a Cluster the
// cluster loop drives it (step at the barrier, report/apply at the
// coordination point); as a standalone TCP worker its own
// StreamContext drives the same methods against a remote coordinator.
type Node struct {
	name     string
	minShare float64
	alpha    float64
	sys      *System
	src      trace.Source
	tr       NodeTransport

	run      *runner
	caps     []float64
	demand   float64 // EWMA of observed full-rate demand, cycles/bin
	seeded   bool
	done     bool
	doneSent bool

	// Checkpoint/drain state (see the boundary method). drainReq may be
	// raised from any goroutine; the rest belongs to the run goroutine
	// except the atomic counters, which metrics read concurrently.
	ckptEvery int
	spec      ShardSpec
	binOffset int64
	drainReq  atomic.Bool
	drained   bool
	ckptsSent atomic.Int64
	ckptErrs  atomic.Int64
}

// NodeConfig parameterizes a standalone cluster member.
type NodeConfig struct {
	// Name identifies the node to the coordinator; it must be unique
	// across the cluster (the coordinator keys membership on it).
	Name string
	// MinShare is the demand fraction the coordinator must cover before
	// surplus moves elsewhere (see Shard.MinShare).
	MinShare float64
	// DemandAlpha is the EWMA weight of the reported demand estimate
	// (default 0.5, see ClusterConfig.DemandAlpha).
	DemandAlpha float64

	// CheckpointEvery ships a ShardCheckpoint to the coordinator every
	// K measurement intervals (through the transport, which must
	// implement CheckpointSender for any to flow). 0 disables
	// checkpointing entirely: the boundary hook then never snapshots and
	// the node's bins and transport traffic are identical to a build
	// without the failover layer.
	CheckpointEvery int
	// Spec describes how to rebuild this shard elsewhere; it travels
	// inside every checkpoint. Required (non-empty Queries) when
	// CheckpointEvery > 0 or drains are expected, ignored otherwise.
	Spec ShardSpec
	// BinOffset is the shard's absolute bin at which this run starts —
	// the checkpoint bin a resumed shard was restored from. The runner
	// counts bins from zero each run, so reports and checkpoints add
	// this offset to keep the shard's bin coordinates absolute across
	// adoptions; a second migration then repositions the source
	// correctly instead of at a run-relative bin.
	BinOffset int64
}

// NewNode wraps sys as a cluster member reporting through tr. The
// transport may be nil, in which case the node runs exactly like a
// standalone System (no reports, no grants) — the shape of a worker
// that lost its coordinator before ever reaching it.
func NewNode(sys *System, tr NodeTransport, cfg NodeConfig) *Node {
	if cfg.DemandAlpha == 0 {
		cfg.DemandAlpha = 0.5
	}
	return &Node{
		name: cfg.Name, minShare: cfg.MinShare, alpha: cfg.DemandAlpha,
		sys: sys, tr: tr,
		ckptEvery: cfg.CheckpointEvery, spec: cfg.Spec,
		binOffset: cfg.BinOffset,
	}
}

// System returns the wrapped engine.
func (n *Node) System() *System { return n.sys }

// Capacities returns the per-bin cycle budget the node ran under,
// index-aligned with the bins it produced this run.
func (n *Node) Capacities() []float64 { return n.caps }

// Demand returns the node's current demand EWMA.
func (n *Node) Demand() float64 { return n.demand }

// step advances the node one bin, recording the capacity the bin ran
// under (captured before the step, like the pre-split Cluster).
func (n *Node) step() {
	if n.done {
		return
	}
	capacity := n.sys.gov.Capacity()
	if n.run.step() {
		n.caps = append(n.caps, capacity)
	} else {
		n.done = true
	}
}

// observe folds the node's last bin into its demand EWMA. The
// observation is the full-rate cost of the bin: unsheddable platform
// and shedding overhead plus the predictor's full-rate estimate. Bins
// without a prediction (the reactive and original schemes) fall back
// to the measured query cycles rescaled by the applied global rate;
// that rescaling is only meaningful there, where a single rate exists —
// under a per-query strategy the minimum rate would grossly inflate
// the estimate of queries that ran near full rate.
func (n *Node) observe() {
	if n.run.bin == 0 {
		return
	}
	b := &n.run.lastBin
	queryCost := b.Predicted
	if queryCost <= 0 {
		rate := b.GlobalRate
		if rate <= 0 {
			rate = 1 // a fully-withheld bin carries no rescaling signal
		}
		queryCost = b.Used / math.Max(rate, 0.01)
	}
	obs := b.Overhead + b.Shed + queryCost
	if !n.seeded {
		n.demand = obs
		n.seeded = true
		return
	}
	n.demand = n.alpha*obs + (1-n.alpha)*n.demand
}

// report sends the node's per-bin demand report (or, once, a final
// done report after its trace ends, so the coordinator stops counting
// it and its budget redistributes).
func (n *Node) report() {
	if n.tr == nil {
		return
	}
	if n.done {
		if n.drained {
			// A drained shard is not done — it resumes elsewhere. The
			// final checkpoint announced the handoff; a done report here
			// would strip the shard from the membership for good.
			return
		}
		if !n.doneSent {
			n.doneSent = true
			n.tr.Report(DemandReport{Node: n.name, Bin: n.binOffset + int64(n.bin()), Done: true})
		}
		return
	}
	n.observe()
	n.tr.Report(DemandReport{Node: n.name, Bin: n.binOffset + int64(n.run.bin), Demand: n.demand, MinShare: n.minShare})
}

// applyGrant installs the coordinator's latest capacity decision, if a
// fresh one exists. No fresh grant — coordinator partitioned away,
// static split, or the node already done — leaves the current local
// capacity standing: the node degrades to an isolated local shedder
// rather than stalling, and picks fresh grants back up when they
// resume.
func (n *Node) applyGrant() {
	if n.done || n.tr == nil {
		return
	}
	g, ok := n.tr.Grant()
	if !ok {
		return
	}
	n.sys.SetCapacity(g.Capacity)
}

// RequestDrain asks the node to stop at its next measurement-interval
// boundary, shipping a final checkpoint first — the local half of a
// planned migration. Safe from any goroutine; the transport's drain
// relay (DrainSignaler) triggers the same path remotely.
func (n *Node) RequestDrain() { n.drainReq.Store(true) }

// Drained reports whether the node stopped for a drain (as opposed to
// exhausting its trace). Valid after StreamContext returns.
func (n *Node) Drained() bool { return n.drained }

// CheckpointsSent returns how many checkpoints this node has shipped.
func (n *Node) CheckpointsSent() int64 { return n.ckptsSent.Load() }

// CheckpointErrors returns how many checkpoint attempts failed (send
// error or unsnapshottable state). Checkpointing is advisory, so these
// never stop the run — they only surface in metrics.
func (n *Node) CheckpointErrors() int64 { return n.ckptErrs.Load() }

// boundary is the node's runner hook, called at every measurement-
// interval boundary — the quiesce point where System.Snapshot is valid.
// It ships a periodic checkpoint every CheckpointEvery intervals, and
// answers a drain request (local RequestDrain or the coordinator's
// relayed drain) with a final checkpoint followed by stopping the run.
// With CheckpointEvery zero and no drain pending it does nothing, so
// the run is untouched by the failover layer.
func (n *Node) boundary(bin, interval int) bool {
	drain := n.drainReq.Load()
	if !drain {
		if ds, ok := n.tr.(DrainSignaler); ok && ds.DrainRequested() {
			drain = true
		}
	}
	periodic := n.ckptEvery > 0 && interval%n.ckptEvery == 0
	if !drain && !periodic {
		return true
	}
	n.sys.regMu.Lock()
	pending := len(n.sys.regOps)
	n.sys.regMu.Unlock()
	if pending > 0 {
		// Registry ops join at this boundary, after the hook; a snapshot
		// now would lose them. Defer to the next boundary, by which time
		// they have applied.
		return true
	}
	cs, ok := n.tr.(CheckpointSender)
	if !ok || n.tr == nil {
		// No checkpoint path. A drain still stops the run (the caller
		// asked for quiesce), it just cannot hand the state anywhere.
		if drain {
			n.drained = true
			return false
		}
		return true
	}
	snap, err := n.sys.Snapshot()
	if err != nil {
		n.ckptErrs.Add(1)
		return true // unsnapshottable (custom shedding): keep running
	}
	cp := &ShardCheckpoint{Node: n.name, Bin: n.binOffset + int64(bin), Final: drain, Spec: n.spec, Snap: snap}
	if err := cs.Checkpoint(cp); err != nil {
		// Advisory either way: a failed periodic checkpoint just waits
		// for the next one, and a drain whose handoff failed keeps
		// serving rather than stopping with the state nowhere.
		n.ckptErrs.Add(1)
		return true
	}
	n.ckptsSent.Add(1)
	if drain {
		n.drained = true
		return false
	}
	return true
}

// bin returns the node's current bin index (0 before any step).
func (n *Node) bin() int {
	if n.run == nil {
		return 0
	}
	return n.run.bin
}

// StreamContext runs the node standalone — the TCP worker's main loop:
// step a bin, report demand, apply the freshest grant, repeat until the
// source ends or ctx fires. Records stream to sink exactly as in
// System.StreamContext; coordination failures never stop the run (see
// applyGrant).
func (n *Node) StreamContext(ctx context.Context, src trace.Source, sink Sink) error {
	n.src = src
	n.run = n.sys.newRunner(src, sink)
	n.run.done = ctx.Done()
	n.run.boundary = n.boundary
	n.done = false
	n.doneSent = false
	n.drained = false
	n.caps = n.caps[:0]
	for {
		n.step()
		if n.done {
			n.report() // the final done notice
			break
		}
		n.report()
		n.applyGrant()
	}
	n.run.finish()
	return ctx.Err()
}
