package loadshed

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/queries"
)

// TestLiveAddMatchesArrivalRestart is the tentpole determinism oracle:
// a query registered with AddQuery mid-run — here from a sink callback,
// the way an HTTP admin handler registers one — joins at the next
// measurement-interval boundary and from then on the run is
// bit-identical to a restart that had the query scheduled (via
// Arrivals) from that same boundary. Bins before the join are identical
// too, because a queued op touches nothing until applied. Checked
// sequentially and under the bin pipeline.
func TestLiveAddMatchesArrivalRestart(t *testing.T) {
	const joinBin = 20 // bin 13's AddQuery applies at the interval-2 boundary
	mk := func() queries.Query { return queries.NewP2PDetector(queries.Config{Seed: 77}) }

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := streamCfg(31)
			cfg.Workers = workers
			cfg.Arrivals = []Arrival{{AtBin: joinBin, Make: mk}}
			want := New(cfg, stdQueries()).Run(testSource(3, 5*time.Second))

			cfg = streamCfg(31)
			cfg.Workers = workers
			sys := New(cfg, stdQueries())
			rs := newResultSink(cfg.Scheme)
			bin := 0
			trigger := SinkFuncs{Bin: func(*BinStats) {
				if bin == 13 {
					if err := sys.AddQuery(mk()); err != nil {
						t.Errorf("AddQuery: %v", err)
					}
				}
				bin++
			}}
			sys.Stream(testSource(3, 5*time.Second), Tee(rs, trigger))
			got := rs.res

			if !reflect.DeepEqual(want.Queries, got.Queries) {
				t.Fatalf("query sets diverged: %v vs %v", want.Queries, got.Queries)
			}
			if len(got.Bins) != len(want.Bins) {
				t.Fatalf("%d bins vs %d", len(got.Bins), len(want.Bins))
			}
			for i := range want.Bins {
				if !reflect.DeepEqual(want.Bins[i], got.Bins[i]) {
					t.Fatalf("bin %d diverged\nrestart: %+v\nlive:    %+v", i, want.Bins[i], got.Bins[i])
				}
			}
			if !reflect.DeepEqual(want.Intervals, got.Intervals) {
				t.Fatal("interval results diverged between live add and restart")
			}
		})
	}
}

// TestAddQueryValidation pins the admin-plane error contract: AddQuery
// and RemoveQuery return errors for operator mistakes instead of
// panicking inside a serving process.
func TestAddQueryValidation(t *testing.T) {
	sys := New(streamCfg(1), stdQueries())
	if err := sys.AddQuery(nil); err == nil {
		t.Fatal("nil query accepted")
	}
	if err := sys.AddQuery(queries.NewCounter(queries.Config{Seed: 2})); err == nil {
		t.Fatal("duplicate active name accepted")
	}
	if err := sys.AddQuery(queries.NewTopK(queries.Config{Seed: 2, Interval: 2 * time.Second}, 10)); err == nil {
		t.Fatal("mismatched interval accepted")
	}
	if err := sys.RemoveQuery("no-such-query"); err == nil {
		t.Fatal("unknown removal accepted")
	}
	if err := sys.RemoveQuery("counter"); err != nil {
		t.Fatalf("removing an active query: %v", err)
	}
	if err := sys.RemoveQuery("counter"); err == nil {
		t.Fatal("double removal accepted")
	}
	// The freed name is reusable immediately.
	if err := sys.AddQuery(queries.NewCounter(queries.Config{Seed: 3})); err != nil {
		t.Fatalf("re-adding a removed name: %v", err)
	}
}

// TestRemoveQueryTombstone removes one query mid-run under unlimited
// capacity and requires: the removal takes effect at the interval
// boundary after its final flush; the removed column reads zero rates
// and nil results from then on without dragging GlobalRate to 0; and
// every surviving query's column is bit-identical to a run that never
// removed anything (with no shedding, queries are independent).
func TestRemoveQueryTombstone(t *testing.T) {
	const victim = "flows"
	mkCfg := func() Config {
		return Config{Scheme: Predictive, Seed: 9, BufferBins: 2, Workers: 1}
	}
	src := func() Source { return testSource(6, 4*time.Second) }

	base := New(mkCfg(), stdQueries()).Run(src())
	vic := -1
	for i, name := range base.Queries {
		if name == victim {
			vic = i
		}
	}
	if vic < 0 {
		t.Fatalf("query %q not in the standard set", victim)
	}

	sys := New(mkCfg(), stdQueries())
	rs := newResultSink(sys.cfg.Scheme)
	roll := NewRollingStats(40)
	bin := 0
	trigger := SinkFuncs{Bin: func(*BinStats) {
		if bin == 13 {
			if err := sys.RemoveQuery(victim); err != nil {
				t.Errorf("RemoveQuery: %v", err)
			}
		}
		bin++
	}}
	sys.Stream(src(), Tee(rs, roll, trigger))
	got := rs.res

	const boundary = 20 // the op queued at bin 13 applies here
	if len(got.Bins) != len(base.Bins) {
		t.Fatalf("%d bins vs %d", len(got.Bins), len(base.Bins))
	}
	for i := range base.Bins {
		b, g := &base.Bins[i], &got.Bins[i]
		if i < boundary {
			if !reflect.DeepEqual(*b, *g) {
				t.Fatalf("bin %d diverged before the removal applied", i)
			}
			continue
		}
		if g.GlobalRate != 1 {
			t.Fatalf("bin %d: tombstone dragged GlobalRate to %v", i, g.GlobalRate)
		}
		if g.Rates[vic] != 0 || g.QueryUsed[vic] != 0 || g.QueryPred[vic] != 0 {
			t.Fatalf("bin %d: removed column still live: rate %v used %v pred %v",
				i, g.Rates[vic], g.QueryUsed[vic], g.QueryPred[vic])
		}
		for q := range b.QueryUsed {
			if q == vic {
				continue
			}
			if b.QueryUsed[q] != g.QueryUsed[q] || b.QueryPred[q] != g.QueryPred[q] || b.Rates[q] != g.Rates[q] {
				t.Fatalf("bin %d query %d: survivor column diverged", i, q)
			}
		}
	}
	for _, iv := range got.Intervals {
		// Interval 0 and 1 flushed before/at the boundary with the query
		// still live; later flushes must carry nil for the tombstone.
		if iv.Index >= 2 && iv.Results[vic] != nil {
			t.Fatalf("interval %d: removed query still reporting", iv.Index)
		}
		if iv.Index < 2 && iv.Results[vic] == nil {
			t.Fatalf("interval %d: removal applied before its boundary", iv.Index)
		}
	}
	snap := roll.Snapshot()
	if snap.Active[vic] {
		t.Fatal("RollingStats did not mark the removed query inactive")
	}
	for q, a := range snap.Active {
		if q != vic && !a {
			t.Fatalf("survivor %d marked inactive", q)
		}
	}

	// The next run reclaims the tombstone: one fewer query announced,
	// indices compacted.
	rs2 := newResultSink(sys.cfg.Scheme)
	sys.Stream(src(), rs2)
	if len(rs2.res.Queries) != len(base.Queries)-1 {
		t.Fatalf("restarted run announces %d queries, want %d", len(rs2.res.Queries), len(base.Queries)-1)
	}
	for _, name := range rs2.res.Queries {
		if name == victim {
			t.Fatal("removed query came back after restart")
		}
	}
}

// waitGoroutines polls until the goroutine count returns to the
// baseline; workers unwind asynchronously after their channels close.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	var after int
	for i := 0; i < 100; i++ {
		if after = runtime.NumGoroutine(); after <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after cancelled streams", before, after)
}

// TestStreamContextCancelReleasesGoroutines is the cancellation half of
// the tentpole: cancelling mid-run stops the stream at a bin boundary,
// still flushes the open interval, and tears down the front goroutine
// and both worker pools — no leaks, sequential or pipelined, proven
// under -race by the CI race job.
func TestStreamContextCancelReleasesGoroutines(t *testing.T) {
	for _, workers := range []int{1, 6} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			before := runtime.NumGoroutine()
			cfg := streamCfg(41)
			cfg.Workers = workers
			sys := New(cfg, stdQueries())
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			bins, intervals := 0, 0
			sink := SinkFuncs{
				Bin: func(*BinStats) {
					bins++
					if bins == 10 {
						cancel()
					}
				},
				Interval: func(*IntervalResults) { intervals++ },
			}
			err := sys.StreamContext(ctx, testSource(8, 60*time.Second), sink)
			if err != context.Canceled {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if bins >= 600 {
				t.Fatal("cancelled stream ran to end of trace")
			}
			if intervals == 0 {
				t.Fatal("cancelled stream did not flush its open interval")
			}
			waitGoroutines(t, before)

			// The System is reusable after a cancelled run.
			res := sys.Run(testSource(8, 2*time.Second))
			if len(res.Bins) != 20 {
				t.Fatalf("post-cancel run produced %d bins, want 20", len(res.Bins))
			}
			waitGoroutines(t, before)
		})
	}
}

// TestClusterStreamContextCancel extends the cancellation contract to
// the sharded engine: every shard stops at its next bin, open intervals
// flush, and all shard pipelines and the runner pool wind down.
func TestClusterStreamContextCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	links := SplitFlows(testSource(4, 60*time.Second), 2, 5)
	shards := make([]Shard, len(links))
	for i, l := range links {
		shards[i] = Shard{Source: l, Queries: stdQueries()}
	}
	c := NewCluster(ClusterConfig{
		Base:          Config{Scheme: Predictive, Seed: 8, Strategy: MMFSPkt(), Workers: 2},
		TotalCapacity: 6e6,
		ShardPolicy:   MMFSCPU(),
		Runners:       2,
	}, shards)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var bins atomic.Int64
	err := c.StreamContext(ctx, func(int, string) Sink {
		return SinkFuncs{Bin: func(*BinStats) {
			if bins.Add(1) == 10 {
				cancel()
			}
		}}
	})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := bins.Load(); n >= 1200 {
		t.Fatalf("cancelled cluster processed %d shard-bins (ran to completion)", n)
	}
	waitGoroutines(t, before)
}
