package loadshed

// sink.go is the streaming result path: a Sink observes a run's records
// as they are produced instead of accumulating them in a RunResult. The
// thesis system is an online monitor that runs for days against live
// links (§2.1); with a sink that discards or aggregates, a System or
// Cluster runs indefinitely in constant memory. System.Run is a thin
// wrapper that streams into slices, so both paths share one run loop.

import (
	"math"
)

// Sink receives a run's records as they are produced. System.Stream and
// Cluster.Stream call it from the run loop:
//
//   - OnQuery fires when a query joins the stream — every initial query
//     before the first bin, then each mid-run Arrival. index is the
//     query's slot in the per-query slices of BinStats and
//     IntervalResults.
//   - OnBin fires after every processed time bin.
//   - OnInterval fires at every measurement-interval flush, including
//     the final partial interval at end of trace.
//
// The pointed-to records are owned by the sink during the call; a sink
// may retain them (nothing else references them afterwards). Within one
// stream, calls are sequential and ordered, but a Cluster delivers each
// shard's stream from the shard-runner pool, so a sink shared between
// shards must be safe for concurrent use (per-shard sinks need not be).
//
// The bin pipeline (DESIGN.md §10) does not weaken either contract:
// sinks are always called from the back stage, in bin order, after the
// bin's ring slot has been handed back to the front — BinStats and
// IntervalResults never reference the slot's batch or sketch, so the
// records a sink sees (and may retain, or must not retain, per the
// TransientSink rules below) are untouched by the front goroutine.
type Sink interface {
	OnQuery(index int, name string)
	OnBin(b *BinStats)
	OnInterval(iv *IntervalResults)
}

// QueryRemovalSink is an optional Sink capability: OnQueryRemove fires
// when RemoveQuery tombstones a query at a measurement-interval
// boundary, after the query's final OnInterval. The slot index stays
// allocated — per-bin slices keep their width, with the removed column
// reading zero rates and nil results for the rest of the run — so a
// sink that tracks per-query state should mark the index inactive, not
// shift its bookkeeping. Sinks that don't implement the interface just
// see the column go quiet.
type QueryRemovalSink interface {
	OnQueryRemove(index int, name string)
}

// TransientSink is an optional Sink capability: a transient sink
// promises that when its callbacks return it retains nothing reachable
// from the records — no slice, map or pointer, only copied values. When
// a run's sink is transient the engine recycles the per-bin slices of
// BinStats and the per-interval result storage (via
// queries.ResultRecycler) instead of allocating fresh ones each time,
// which is what makes an indefinite Stream allocation-free in steady
// state. A sink that does retain records (the Run path's collector, any
// ad-hoc SinkFuncs) simply does not implement the interface and the
// engine allocates as before.
type TransientSink interface {
	Sink
	// SinkTransient reports whether the sink is currently transient. A
	// Tee is transient only when every member is.
	SinkTransient() bool
}

// sinkIsTransient reports whether the engine may recycle record storage
// delivered to s.
func sinkIsTransient(s Sink) bool {
	t, ok := s.(TransientSink)
	return ok && t.SinkTransient()
}

// DiscardSink drops every record: Stream with a DiscardSink runs the
// engine purely for its side effects (probes, custom-shedding audits).
type DiscardSink struct{}

func (DiscardSink) OnQuery(int, string)         {}
func (DiscardSink) OnBin(*BinStats)             {}
func (DiscardSink) OnInterval(*IntervalResults) {}

// SinkTransient implements TransientSink: nothing is retained at all.
func (DiscardSink) SinkTransient() bool { return true }

// SinkFuncs adapts bare functions to a Sink; nil fields are skipped.
type SinkFuncs struct {
	Query    func(index int, name string)
	Bin      func(b *BinStats)
	Interval func(iv *IntervalResults)
}

// OnQuery implements Sink.
func (s SinkFuncs) OnQuery(index int, name string) {
	if s.Query != nil {
		s.Query(index, name)
	}
}

// OnBin implements Sink.
func (s SinkFuncs) OnBin(b *BinStats) {
	if s.Bin != nil {
		s.Bin(b)
	}
}

// OnInterval implements Sink.
func (s SinkFuncs) OnInterval(iv *IntervalResults) {
	if s.Interval != nil {
		s.Interval(iv)
	}
}

// Tee returns a Sink that forwards every record to each sink in order.
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (t teeSink) OnQuery(i int, name string) {
	for _, s := range t {
		s.OnQuery(i, name)
	}
}

func (t teeSink) OnBin(b *BinStats) {
	for _, s := range t {
		s.OnBin(b)
	}
}

func (t teeSink) OnInterval(iv *IntervalResults) {
	for _, s := range t {
		s.OnInterval(iv)
	}
}

// OnQueryRemove implements QueryRemovalSink, forwarding to the members
// that care.
func (t teeSink) OnQueryRemove(i int, name string) {
	for _, s := range t {
		if rs, ok := s.(QueryRemovalSink); ok {
			rs.OnQueryRemove(i, name)
		}
	}
}

// SinkTransient implements TransientSink: a Tee is transient only when
// every member is.
func (t teeSink) SinkTransient() bool {
	for _, s := range t {
		if !sinkIsTransient(s) {
			return false
		}
	}
	return true
}

// resultSink accumulates the full record — the legacy Run path.
type resultSink struct{ res *RunResult }

func newResultSink(scheme Scheme) *resultSink {
	return &resultSink{res: &RunResult{Scheme: scheme}}
}

func (rs *resultSink) OnQuery(_ int, name string) {
	rs.res.Queries = append(rs.res.Queries, name)
}
func (rs *resultSink) OnBin(b *BinStats) { rs.res.Bins = append(rs.res.Bins, *b) }
func (rs *resultSink) OnInterval(iv *IntervalResults) {
	rs.res.Intervals = append(rs.res.Intervals, *iv)
}

// rollingBin is one bin's footprint inside the RollingStats window.
type rollingBin struct {
	wire, drop, admit      int
	used, overhead, shed   float64
	capacity               float64
	globalRate, bufferBins float64
	changeScore            float64
	change                 bool
	rates                  []float64 // per query; reused in place across evictions
}

// RollingStats is a Sink that maintains windowed summaries of a stream
// in memory bounded by the window size, no matter how long the run: the
// constant-memory replacement for RunResult.Bins on long-running
// deployments. Construct with NewRollingStats; read with Snapshot.
type RollingStats struct {
	window int

	queries []string
	// active[i] is false once query i was removed (OnQueryRemove); its
	// name and ring columns stay so indices never shift mid-run.
	active []bool

	ring   []rollingBin
	head   int // next ring slot to overwrite
	filled int

	bins, intervals               int
	wirePkts, dropPkts, admitPkts int64
	exportCycles                  float64
	changes                       int64
	lastChangeBin                 int64 // lifetime bin index of the latest change verdict, -1 when none
}

// NewRollingStats returns a rolling aggregator over the last window
// bins (at the thesis' 100 ms bins, 600 covers a minute). window <= 0
// selects 600.
func NewRollingStats(window int) *RollingStats {
	if window <= 0 {
		window = 600
	}
	return &RollingStats{window: window, ring: make([]rollingBin, window), lastChangeBin: -1}
}

// OnQuery implements Sink.
func (r *RollingStats) OnQuery(_ int, name string) {
	r.queries = append(r.queries, name)
	r.active = append(r.active, true)
}

// OnQueryRemove implements QueryRemovalSink: the slot is marked
// inactive but keeps its index, matching the engine's tombstoning.
func (r *RollingStats) OnQueryRemove(i int, _ string) {
	if i >= 0 && i < len(r.active) {
		r.active[i] = false
	}
}

// OnBin implements Sink. It copies the scalars and per-query rates it
// aggregates into the ring and retains nothing else from the record.
func (r *RollingStats) OnBin(b *BinStats) {
	slot := &r.ring[r.head]
	slot.wire, slot.drop, slot.admit = b.WirePkts, b.DropPkts, b.AdmitPkts
	slot.used, slot.overhead, slot.shed = b.Used, b.Overhead, b.Shed
	slot.capacity = b.Capacity
	slot.globalRate, slot.bufferBins = b.GlobalRate, b.BufferBins
	slot.changeScore, slot.change = b.ChangeScore, b.Change
	slot.rates = append(slot.rates[:0], b.Rates...)
	r.head = (r.head + 1) % r.window
	if r.filled < r.window {
		r.filled++
	}
	if b.Change {
		r.changes++
		r.lastChangeBin = int64(r.bins)
	}
	r.bins++
	r.wirePkts += int64(b.WirePkts)
	r.dropPkts += int64(b.DropPkts)
	r.admitPkts += int64(b.AdmitPkts)
}

// OnInterval implements Sink. Interval results themselves are the
// queries' business (they already summarize an interval); the rolling
// view only counts them and the export cost.
func (r *RollingStats) OnInterval(iv *IntervalResults) {
	r.intervals++
	r.exportCycles += iv.ExportCycles
}

// SinkTransient implements TransientSink: OnBin copies the scalars and
// rates it aggregates and OnInterval reads only value fields, so
// nothing from the records outlives the callbacks.
func (r *RollingStats) SinkTransient() bool { return true }

// RollingSnapshot is a point-in-time summary of a stream: lifetime
// totals plus means over the last WindowBins bins.
type RollingSnapshot struct {
	// Lifetime counters.
	Bins      int
	Intervals int
	Queries   []string
	// Active is index-aligned with Queries: false marks a query removed
	// by RemoveQuery (its MeanRates entry decays to 0 as its bins leave
	// the window).
	Active                        []bool
	WirePkts, DropPkts, AdmitPkts int64
	ExportCycles                  float64

	// WindowBins is how many bins the windowed fields cover — the
	// configured window, or fewer early in a run.
	WindowBins int

	// Windowed traffic and loss.
	PktsPerBin float64 // offered load
	DropFrac   float64 // uncontrolled capture drops / offered
	// UnsampledFrac is the fraction of admitted packets not processed
	// at the applied global rate — the online proxy for accuracy error
	// (the true error of §2.2.1 needs a lossless reference run, which
	// an indefinite stream does not have).
	UnsampledFrac float64

	// Windowed controller state.
	MeanGlobalRate                   float64
	MeanRates                        []float64 // per query, averaged over the bins it existed
	MeanDelay                        float64   // capture-buffer occupancy, in bins
	MaxDelay                         float64
	MeanUsed, MeanOverhead, MeanShed float64 // cycles/bin
	// MeanUtil is (used+overhead+shed)/capacity averaged over the
	// finite-capacity bins of the window; 0 when capacity is unlimited.
	MeanUtil float64

	// Change detection (all zero / -1 unless the engine runs with
	// Config.ChangeDetection).
	ChangesTotal    int64   // lifetime change verdicts
	LastChangeBin   int64   // lifetime bin index of the latest verdict, -1 when none
	WindowChanges   int     // verdicts inside the window
	MeanChangeScore float64 // detector score averaged over the window
}

// Snapshot summarizes the stream so far. It scans the window (not the
// history), so it is cheap enough to call every reporting tick.
func (r *RollingStats) Snapshot() RollingSnapshot {
	s := RollingSnapshot{
		Bins:         r.bins,
		Intervals:    r.intervals,
		Queries:      append([]string(nil), r.queries...),
		Active:       append([]bool(nil), r.active...),
		WirePkts:     r.wirePkts,
		DropPkts:     r.dropPkts,
		AdmitPkts:    r.admitPkts,
		ExportCycles:  r.exportCycles,
		WindowBins:    r.filled,
		ChangesTotal:  r.changes,
		LastChangeBin: r.lastChangeBin,
	}
	if r.filled == 0 {
		return s
	}
	var wire, drop, admit int
	var unsampled float64
	var utilSum float64
	utilBins := 0
	rateSum := make([]float64, len(r.queries))
	rateN := make([]int, len(r.queries))
	for i := 0; i < r.filled; i++ {
		b := &r.ring[(r.head-1-i+2*r.window)%r.window]
		wire += b.wire
		drop += b.drop
		admit += b.admit
		unsampled += (1 - b.globalRate) * float64(b.admit)
		s.MeanGlobalRate += b.globalRate
		s.MeanDelay += b.bufferBins
		if b.bufferBins > s.MaxDelay {
			s.MaxDelay = b.bufferBins
		}
		s.MeanUsed += b.used
		s.MeanOverhead += b.overhead
		s.MeanShed += b.shed
		s.MeanChangeScore += b.changeScore
		if b.change {
			s.WindowChanges++
		}
		if !math.IsInf(b.capacity, 1) && b.capacity > 0 {
			utilSum += (b.used + b.overhead + b.shed) / b.capacity
			utilBins++
		}
		for q, rate := range b.rates {
			rateSum[q] += rate
			rateN[q]++
		}
	}
	n := float64(r.filled)
	s.PktsPerBin = float64(wire) / n
	if wire > 0 {
		s.DropFrac = float64(drop) / float64(wire)
	}
	if admit > 0 {
		s.UnsampledFrac = unsampled / float64(admit)
	}
	s.MeanGlobalRate /= n
	s.MeanDelay /= n
	s.MeanUsed /= n
	s.MeanOverhead /= n
	s.MeanShed /= n
	s.MeanChangeScore /= n
	if utilBins > 0 {
		s.MeanUtil = utilSum / float64(utilBins)
	}
	s.MeanRates = make([]float64, len(r.queries))
	for q := range rateSum {
		if rateN[q] > 0 {
			s.MeanRates[q] = rateSum[q] / float64(rateN[q])
		}
	}
	return s
}
