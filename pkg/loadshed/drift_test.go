package loadshed

// drift_test.go pins the drift-robustness contract of the change
// detector (Config.ChangeDetection):
//
//   - under an injected gradual traffic drift, a detector-enabled
//     system recovers its MLR prediction accuracy at least twice as
//     fast (in bins) as the detector-off baseline;
//   - with ChangeDetection off the detect stage is a no-op, and even
//     enabled-but-never-firing detection perturbs no engine output;
//   - Snapshot/Restore carries the detector and discounted-history
//     state, so a system interrupted mid-drift resumes bit-identically.

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/queries"
	"repro/internal/trace"
)

// encodeDecode round-trips a snapshot through its gob encoding.
func encodeDecode(t *testing.T, snap *SystemSnapshot) *SystemSnapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return decoded
}

// driftQueries builds the query set the drift tests run. PatternSearch
// is the drift victim: its cost is linear in payload bytes, and the
// injected drift is header-heavy (large packets, no payload), which
// silently breaks the bytes→cost relation the MLR learned.
func driftQueries() []queries.Query {
	return []queries.Query{
		queries.NewPatternSearch(queries.Config{Seed: 7}, nil),
		queries.NewCounter(queries.Config{Seed: 7}),
		queries.NewFlows(queries.Config{Seed: 7}),
	}
}

// driftConfig is the shared engine config: predictive scheme, unlimited
// capacity and no measurement noise, so per-bin prediction error is
// exactly model error.
func driftConfig(detectOn bool) Config {
	return Config{
		Scheme:          Predictive,
		Strategy:        MMFSPkt(),
		Seed:            99,
		Capacity:        math.Inf(1),
		NoiseSigma:      -1,
		Workers:         1,
		HistoryLen:      120, // a long fitting window makes stale-history contamination visible
		ChangeDetection: detectOn,
		// The default thresholds are tuned for production window sizes;
		// at this small trace scale legitimate volume bursts shift
		// feature means by several sigma and the post-refit model is
		// noisy, so the tests are made deliberately less trigger-happy:
		// the residual tests arbitrate (with a higher bar and a longer
		// refit grace period) and the distance test is only a backstop
		// for gross shifts.
		Detect: detect.Config{
			ResidualDelta:  0.05,
			ResidualLambda: 1.5,
			DistThreshold:  12,
			Cooldown:       40,
		},
		ChangeDiscount: -1, // truncate: re-select features on the new regime only
	}
}

// TestDriftDetectorRecovery injects a gradual drift into a payload
// trace and compares how many bins the MLR needs — with and without the
// detector — to shake off the stale regime. The drift mimics the base
// traffic's address pools, port mix and size distribution but carries
// no payload, so it is collinear with the base in feature space and
// breaks the bytes→cost relation the model learned; the broken regime
// also has an intrinsically higher noise floor (drift bytes fluctuate
// with zero cost), so "recovered" is calibrated against the damage, not
// the pre-drift error: a run has recovered once its mean error since
// the end of the ramp stays at half the error level the detector-off
// run sustained through the drift onset. The detector truncates the
// stale history on its change verdict, so the enabled run recovers
// while the disabled run carries the contamination for a full history
// window; the test requires at least a 2x speedup in bins.
func TestDriftDetectorRecovery(t *testing.T) {
	const (
		dur        = 20 * time.Second
		driftStart = 8 * time.Second
		driftPPS   = 8000
	)
	tc := trace.CESCA2(31, dur, 0.2)
	tc.Anomalies = []trace.Anomaly{trace.NewGradualDrift(driftStart, dur-driftStart, driftPPS)}
	g := trace.NewGenerator(tc)
	batches := trace.Record(g)
	bin := g.TimeBin()
	startBin := int(driftStart / bin)
	rampEnd := startBin + int((dur-driftStart)/4/bin) // NewGradualDrift ramps over a quarter of its duration

	run := func(detectOn bool) *RunResult {
		return New(driftConfig(detectOn), driftQueries()).Run(trace.NewMemorySource(batches, bin))
	}

	// Per-bin relative prediction error of the pattern-search query.
	relErr := func(res *RunResult) []float64 {
		e := make([]float64, len(res.Bins))
		for i, b := range res.Bins {
			used := b.QueryUsed[0]
			if used < 1 {
				used = 1
			}
			e[i] = math.Abs(b.QueryPred[0]-used) / used
		}
		return e
	}
	mean := func(e []float64, lo, hi int) float64 {
		var s float64
		for _, v := range e[lo:hi] {
			s += v
		}
		return s / float64(hi-lo)
	}
	on := run(true)
	off := run(false)
	eOn, eOff := relErr(on), relErr(off)
	baseOff := mean(eOff, startBin/2, startBin)

	// The contamination level: what the detector-off run suffers from
	// drift onset through the end of the ramp. The scenario must
	// actually hurt — well above the pre-drift baseline — or recovery
	// speed means nothing.
	contamination := mean(eOff, startBin, rampEnd+10)
	if contamination < 5*baseOff {
		t.Fatalf("drift too mild to test recovery: contaminated err %.3f vs baseline %.3f", contamination, baseOff)
	}

	// recoveryBins: how many bins after drift onset the running mean
	// error since the end of the ramp (the regime keeps moving until
	// then) first drops to half the contamination level. At least 10
	// bins must have accumulated, so single quiet bins cannot fake a
	// recovery; a run that never recovers scores the full span.
	recoveryBins := func(e []float64) int {
		for b := rampEnd + 10; b < len(e); b++ {
			if mean(e, rampEnd, b+1) <= contamination/2 {
				return b - startBin
			}
		}
		return len(e) - startBin
	}

	// The detector must have fired, and near the drift, not before it.
	fired := 0
	firstFire := -1
	for i, b := range on.Bins {
		if b.Change {
			fired++
			if firstFire < 0 {
				firstFire = i
			}
		}
	}
	if fired == 0 {
		t.Fatal("detector never fired on the drift")
	}
	if firstFire < startBin || firstFire > rampEnd+20 {
		t.Fatalf("first change verdict at bin %d, want within [%d, %d]", firstFire, startBin, rampEnd+20)
	}
	for _, b := range off.Bins {
		if b.Change || b.ChangeScore != 0 {
			t.Fatal("detector-off run reports change state")
		}
	}

	recOn := recoveryBins(eOn)
	recOff := recoveryBins(eOff)
	if recOn >= len(eOn)-startBin {
		t.Fatalf("detector-on run never recovered (contamination %.4f, post-ramp err %.4f)",
			contamination, mean(eOn, rampEnd, len(eOn)))
	}
	if recOff < 2*recOn {
		t.Fatalf("recovery speedup < 2x: detector-on %d bins, detector-off %d bins", recOn, recOff)
	}
	t.Logf("recovery: on=%d bins, off=%d bins (%.1fx), %d change verdicts, first at bin %d",
		recOn, recOff, float64(recOff)/float64(recOn), fired, firstFire)
}

// TestChangeDetectionOffBitIdentical pins the disabled-path contract
// from two sides: with ChangeDetection off no bin carries change state
// (the stage is a nil-check no-op, so the run is the exact HEAD code
// path), and an enabled detector that never fires (+Inf thresholds)
// leaves every engine output bit-identical to the disabled run — the
// observe path reads engine state but writes none back.
func TestChangeDetectionOffBitIdentical(t *testing.T) {
	const dur = 8 * time.Second
	tc := trace.CESCA2(17, dur, 0.2)
	tc.Anomalies = []trace.Anomaly{trace.NewGradualDrift(4*time.Second, 4*time.Second, 8000)}
	g := trace.NewGenerator(tc)
	batches := trace.Record(g)
	bin := g.TimeBin()
	capacity := MeasureCapacity(trace.NewMemorySource(batches, bin), driftQueries(), 77) * 0.7

	run := func(detectOn bool, dc detect.Config) *RunResult {
		cfg := driftConfig(detectOn)
		cfg.Capacity = capacity // finite: exercise the shedding path too
		cfg.Detect = dc
		return New(cfg, driftQueries()).Run(trace.NewMemorySource(batches, bin))
	}

	off := run(false, detect.Config{})
	on := run(true, detect.Config{
		ResidualLambda: math.Inf(1),
		DistThreshold:  math.Inf(1),
	})

	if len(off.Bins) != len(on.Bins) {
		t.Fatalf("bin counts differ: %d vs %d", len(off.Bins), len(on.Bins))
	}
	for i := range off.Bins {
		if off.Bins[i].Change || off.Bins[i].ChangeScore != 0 {
			t.Fatalf("bin %d: detector-off run carries change state", i)
		}
		got := on.Bins[i]
		if got.Change {
			t.Fatalf("bin %d: +Inf thresholds fired", i)
		}
		got.ChangeScore = off.Bins[i].ChangeScore // the only field allowed to differ
		if !reflect.DeepEqual(got, off.Bins[i]) {
			t.Fatalf("bin %d diverged:\n got %+v\nwant %+v", i, got, off.Bins[i])
		}
	}
	if !reflect.DeepEqual(off.Intervals, on.Intervals) {
		t.Fatal("interval results diverged between detector-off and never-firing detector")
	}
}

// TestSnapshotCarriesDetectorState interrupts a drift run after the
// detector has fired, round-trips the snapshot through encode/decode,
// and requires the resumed run to match the uninterrupted one bit for
// bit — which only holds if the detector's rings/sums and the
// discounted history weights both travel. It also pins the
// presence-mismatch refusals both ways.
func TestSnapshotCarriesDetectorState(t *testing.T) {
	const (
		dur        = 14 * time.Second
		driftStart = 6 * time.Second
	)
	tc := trace.CESCA2(43, dur, 0.2)
	tc.Anomalies = []trace.Anomaly{trace.NewGradualDrift(driftStart, dur-driftStart, 8000)}
	g := trace.NewGenerator(tc)
	batches := trace.Record(g)
	bin := g.TimeBin()
	perInterval := int(time.Second / bin)
	cut := 9 * perInterval // interval boundary mid-drift

	mkSys := func(detectOn bool) *System {
		return New(driftConfig(detectOn), driftQueries())
	}

	ref := mkSys(true).Run(trace.NewMemorySource(batches, bin))
	firedBefore := false
	for _, b := range ref.Bins[:cut] {
		if b.Change {
			firedBefore = true
			break
		}
	}
	if !firedBefore {
		t.Fatal("scenario too tame: no change verdict before the cut, snapshot would carry a cold detector")
	}

	s1 := mkSys(true)
	r1 := s1.Run(trace.NewMemorySource(batches[:cut], bin))
	snap, err := s1.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if snap.Detect == nil {
		t.Fatal("snapshot of a detector-enabled system carries no detector state")
	}
	roundTrip := encodeDecode(t, snap)

	// Presence mismatch refusals, both directions.
	if err := mkSys(false).Restore(roundTrip); err == nil {
		t.Fatal("restoring a detector snapshot into a detector-off system must fail")
	}
	offSnap, err := mkSys(false).Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := mkSys(true).Restore(offSnap); err == nil {
		t.Fatal("restoring a detector-less snapshot into a detector-on system must fail")
	}

	s2 := mkSys(true)
	if err := s2.Restore(roundTrip); err != nil {
		t.Fatalf("restore: %v", err)
	}
	r2 := s2.Run(trace.NewMemorySource(batches[cut:], bin))

	if got, want := len(r1.Bins)+len(r2.Bins), len(ref.Bins); got != want {
		t.Fatalf("split runs produced %d bins, uninterrupted %d", got, want)
	}
	for i := range r1.Bins {
		if !reflect.DeepEqual(r1.Bins[i], ref.Bins[i]) {
			t.Fatalf("pre-snapshot bin %d diverged:\n got %+v\nwant %+v", i, r1.Bins[i], ref.Bins[i])
		}
	}
	for i := range r2.Bins {
		if !reflect.DeepEqual(r2.Bins[i], ref.Bins[len(r1.Bins)+i]) {
			t.Fatalf("resumed bin %d diverged from uninterrupted bin %d:\n got %+v\nwant %+v",
				i, len(r1.Bins)+i, r2.Bins[i], ref.Bins[len(r1.Bins)+i])
		}
	}
	for i := range r2.Intervals {
		got := r2.Intervals[i]
		want := ref.Intervals[len(r1.Intervals)+i]
		got.Index = want.Index // numbering restarts; content must not
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("resumed interval %d diverged from uninterrupted interval %d", i, want.Index)
		}
	}
}
