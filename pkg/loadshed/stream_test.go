package loadshed

import (
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/pkt"
	"repro/internal/queries"
	"repro/internal/trace"
)

// streamCfg is a predictive setup overloaded enough to exercise
// sampling, re-extraction and the buffer model.
func streamCfg(seed uint64) Config {
	return Config{Scheme: Predictive, Capacity: 4e6, BufferBins: 2, Seed: seed, Strategy: MMFSPkt()}
}

// TestStreamMatchesRun pins the tentpole invariant: Run is Stream into
// slices. A hand-rolled collecting sink must reproduce Run's record
// bit for bit, mid-run arrivals included.
func TestStreamMatchesRun(t *testing.T) {
	mkSys := func() *System {
		cfg := streamCfg(6)
		cfg.Arrivals = []Arrival{{AtBin: 7, Make: func() queries.Query {
			return queries.NewCounter(queries.Config{Seed: 99})
		}}}
		return New(cfg, stdQueries())
	}
	want := mkSys().Run(testSource(3, 4*time.Second))

	got := &RunResult{Scheme: Predictive}
	mkSys().Stream(testSource(3, 4*time.Second), SinkFuncs{
		Query:    func(_ int, name string) { got.Queries = append(got.Queries, name) },
		Bin:      func(b *BinStats) { got.Bins = append(got.Bins, *b) },
		Interval: func(iv *IntervalResults) { got.Intervals = append(got.Intervals, *iv) },
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Stream with a collecting sink diverged from Run")
	}
	if len(want.Queries) != len(stdQueries())+1 {
		t.Fatalf("arrival missing from query list: %v", want.Queries)
	}
}

// TestClusterStreamMatchesRun does the same for the sharded engine,
// coordinator active.
func TestClusterStreamMatchesRun(t *testing.T) {
	mkCluster := func() *Cluster {
		links := SplitFlows(testSource(4, 3*time.Second), 2, 5)
		shards := make([]Shard, len(links))
		for i, l := range links {
			shards[i] = Shard{Source: l, Queries: stdQueries()}
		}
		return NewCluster(ClusterConfig{
			Base:          Config{Scheme: Predictive, Seed: 8, Strategy: MMFSPkt()},
			TotalCapacity: 6e6,
			ShardPolicy:   MMFSCPU(),
		}, shards)
	}
	want := mkCluster().Run()

	got := make([]*RunResult, 2)
	mkCluster().Stream(func(i int, _ string) Sink {
		got[i] = &RunResult{Scheme: Predictive}
		return SinkFuncs{
			Query:    func(_ int, name string) { got[i].Queries = append(got[i].Queries, name) },
			Bin:      func(b *BinStats) { got[i].Bins = append(got[i].Bins, *b) },
			Interval: func(iv *IntervalResults) { got[i].Intervals = append(got[i].Intervals, *iv) },
		}
	})
	for i := range got {
		if !reflect.DeepEqual(got[i], want.Shards[i].Result) {
			t.Fatalf("shard %d: Stream diverged from Run", i)
		}
	}
}

// TestArrivalAtIntervalBoundary is the regression test for the
// boundary-flush ordering bug: a query arriving exactly at an interval
// boundary used to be added before the previous interval was flushed,
// so that interval's results grew a spurious empty report from a query
// that saw none of its traffic. The arrival must belong to the interval
// that starts at its bin.
func TestArrivalAtIntervalBoundary(t *testing.T) {
	nq := len(stdQueries())
	cfg := Config{Scheme: NoShed, Seed: 3, Arrivals: []Arrival{
		// Default query interval is 1 s = 10 bins: bin 10 is the first
		// bin of interval 1, i.e. exactly an interval boundary.
		{AtBin: 10, Make: func() queries.Query { return queries.NewCounter(queries.Config{Seed: 4}) }},
	}}
	res := New(cfg, stdQueries()).Run(testSource(6, 3*time.Second))

	if got := len(res.Intervals[0].Results); got != nq {
		t.Fatalf("interval 0 flushed %d results, want %d: a boundary arrival leaked into the closing interval", got, nq)
	}
	if got := len(res.Intervals[1].Results); got != nq+1 {
		t.Fatalf("interval 1 flushed %d results, want %d", got, nq+1)
	}
	if res.Intervals[1].Results[nq] == nil {
		t.Fatal("boundary arrival's first real interval reported nil")
	}
}

// TestRunDoesNotMutateSource enforces the consumer half of the Source
// ownership contract on the whole engine: a full overloaded run
// (sampling, flow sampling, custom shedding, buffer drops) over a
// MemorySource must leave the stored batches untouched, because
// NextBatch aliases them.
func TestRunDoesNotMutateSource(t *testing.T) {
	batches := trace.Record(testSource(7, 3*time.Second))
	copies := make([]pkt.Batch, len(batches))
	for i, b := range batches {
		copies[i] = pkt.Batch{Start: b.Start, Bin: b.Bin, Pkts: append([]pkt.Packet(nil), b.Pkts...)}
		for j := range b.Pkts {
			copies[i].Pkts[j].Payload = append([]byte(nil), b.Pkts[j].Payload...)
		}
	}
	src := trace.NewMemorySource(batches, trace.DefaultTimeBin)

	cfg := streamCfg(9)
	cfg.CustomShedding = true
	New(cfg, stdQueries()).Run(src)

	for i := range batches {
		if len(batches[i].Pkts) != len(copies[i].Pkts) {
			t.Fatalf("batch %d length changed", i)
		}
		for j := range batches[i].Pkts {
			a, b := batches[i].Pkts[j], copies[i].Pkts[j]
			pa, pb := a.Payload, b.Payload
			a.Payload, b.Payload = nil, nil
			if !reflect.DeepEqual(a, b) || string(pa) != string(pb) {
				t.Fatalf("batch %d packet %d was mutated by the run", i, j)
			}
		}
	}
}

// TestRollingStatsWindow checks the windowed aggregation arithmetic on
// a hand-built stream, including a query that joins mid-stream.
func TestRollingStatsWindow(t *testing.T) {
	r := NewRollingStats(3)
	r.OnQuery(0, "a")
	mkBin := func(wire, drop int, rate float64, rates ...float64) *BinStats {
		return &BinStats{
			Capacity: 100, WirePkts: wire, DropPkts: drop, AdmitPkts: wire - drop,
			Used: 40, Overhead: 10, Shed: 5, GlobalRate: rate, Rates: rates, BufferBins: 1.5,
		}
	}
	r.OnBin(mkBin(100, 50, 0.1, 0.1)) // will fall out of the window
	r.OnQuery(1, "b")
	r.OnBin(mkBin(100, 0, 0.2, 0.2, 1.0))
	r.OnBin(mkBin(200, 20, 0.4, 0.4, 1.0))
	r.OnBin(mkBin(300, 40, 0.6, 0.6, 1.0))
	r.OnInterval(&IntervalResults{ExportCycles: 7})

	s := r.Snapshot()
	if s.Bins != 4 || s.WindowBins != 3 || s.Intervals != 1 {
		t.Fatalf("counters: %+v", s)
	}
	if s.WirePkts != 700 || s.DropPkts != 110 {
		t.Fatalf("lifetime totals: wire %d drops %d", s.WirePkts, s.DropPkts)
	}
	if want := float64(600) / 3; s.PktsPerBin != want {
		t.Fatalf("PktsPerBin = %v, want %v", s.PktsPerBin, want)
	}
	if want := float64(60) / 600; s.DropFrac != want {
		t.Fatalf("DropFrac = %v, want %v", s.DropFrac, want)
	}
	if want := (0.2 + 0.4 + 0.6) / 3; math.Abs(s.MeanGlobalRate-want) > 1e-12 {
		t.Fatalf("MeanGlobalRate = %v, want %v", s.MeanGlobalRate, want)
	}
	// Unsampled: Σ (1-rate)*admit / Σ admit over the window.
	admits := []float64{100, 180, 260}
	wantUn := (0.8*admits[0] + 0.6*admits[1] + 0.4*admits[2]) / (admits[0] + admits[1] + admits[2])
	if math.Abs(s.UnsampledFrac-wantUn) > 1e-12 {
		t.Fatalf("UnsampledFrac = %v, want %v", s.UnsampledFrac, wantUn)
	}
	if want := 55.0 / 100; math.Abs(s.MeanUtil-want) > 1e-12 {
		t.Fatalf("MeanUtil = %v, want %v", s.MeanUtil, want)
	}
	if len(s.MeanRates) != 2 || math.Abs(s.MeanRates[0]-0.4) > 1e-12 || math.Abs(s.MeanRates[1]-1.0) > 1e-12 {
		t.Fatalf("MeanRates = %v", s.MeanRates)
	}
	if s.ExportCycles != 7 {
		t.Fatalf("ExportCycles = %v", s.ExportCycles)
	}
}

// retainedBytes reports how much live heap a run leaves behind,
// measured with the run's product kept reachable.
func retainedBytes(run func() any) int64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&m0)
	keep := run()
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	runtime.KeepAlive(keep)
	return int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
}

// TestStreamBoundedMemory is the tentpole acceptance check: growing the
// run 8x grows the legacy Run path's retained memory roughly linearly,
// while Stream into a RollingStats sink stays flat.
func TestStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory growth measurement")
	}
	gen := func(bins int) *trace.Generator {
		return trace.NewGenerator(trace.Config{Seed: 12, MaxBins: bins, PacketsPerSec: 2000})
	}
	mkSys := func() *System {
		cfg := streamCfg(13)
		cfg.Workers = 1 // keep pool goroutines out of the heap measurement
		return New(cfg, stdQueries())
	}
	const short, long = 200, 1600

	legacyShort := retainedBytes(func() any { return mkSys().Run(gen(short)) })
	legacyLong := retainedBytes(func() any { return mkSys().Run(gen(long)) })
	streamShort := retainedBytes(func() any {
		roll := NewRollingStats(100)
		mkSys().Stream(gen(short), roll)
		return roll
	})
	streamLong := retainedBytes(func() any {
		roll := NewRollingStats(100)
		mkSys().Stream(gen(long), roll)
		return roll
	})
	t.Logf("retained bytes: legacy %d -> %d, stream %d -> %d", legacyShort, legacyLong, streamShort, streamLong)

	if legacyLong < 4*legacyShort {
		t.Errorf("legacy path retained %d then %d bytes; expected roughly linear growth (the baseline this PR escapes)", legacyShort, legacyLong)
	}
	// The streaming path must not grow with the run. Allow generous
	// absolute slack for GC noise; the legacy path at the same length
	// retains hundreds of KB more.
	const slack = 64 << 10
	if streamLong > streamShort+slack {
		t.Errorf("stream path grew from %d to %d retained bytes over an 8x longer run", streamShort, streamLong)
	}
	if streamLong > legacyLong/4 {
		t.Errorf("stream path retained %d bytes, legacy %d; expected at least 4x separation", streamLong, legacyLong)
	}
}

// TestStreamUnboundedSourceStops sanity-checks that a Stream over an
// unbounded generator is driven by the consumer: we stop it by capping
// the source, not by trusting Duration.
func TestStreamUnboundedSourceStops(t *testing.T) {
	cfg := trace.Config{Seed: 14, MaxBins: 25, PacketsPerSec: 1000, Duration: time.Second}
	bins := 0
	New(Config{Scheme: NoShed, Seed: 1}, stdQueries()).
		Stream(trace.NewGenerator(cfg), SinkFuncs{Bin: func(*BinStats) { bins++ }})
	if bins != 25 {
		t.Fatalf("streamed %d bins, want 25 (MaxBins must override Duration)", bins)
	}
}

// BenchmarkStreamLongRun and BenchmarkRunLongRun expose the hot-path
// allocation difference under -benchmem: the streaming path's
// allocations per bin stay constant while the legacy path's grow with
// everything it retains.
func BenchmarkStreamLongRun(b *testing.B) {
	bins := 600
	if testing.Short() {
		bins = 100
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		roll := NewRollingStats(100)
		cfg := streamCfg(15)
		cfg.Workers = 1
		New(cfg, stdQueries()).Stream(trace.NewGenerator(trace.Config{Seed: 16, MaxBins: bins, PacketsPerSec: 2000}), roll)
	}
}

func BenchmarkRunLongRun(b *testing.B) {
	bins := 600
	if testing.Short() {
		bins = 100
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := streamCfg(15)
		cfg.Workers = 1
		_ = New(cfg, stdQueries()).Run(trace.NewGenerator(trace.Config{Seed: 16, MaxBins: bins, PacketsPerSec: 2000}))
	}
}

// digestSink is a TransientSink that folds every record into running
// digests without retaining anything — the harness for proving that the
// recycling fast path (FlushInto, reused BinStats slices) delivers
// exactly the values the allocating Run path does.
type digestSink struct {
	bins      float64
	intervals float64
}

func (d *digestSink) OnQuery(int, string) {}

func (d *digestSink) OnBin(b *BinStats) {
	d.bins += b.Used + b.Alloc + b.Predicted + b.Overhead + b.Shed + float64(b.AdmitPkts+b.DropPkts)
	for i, r := range b.Rates {
		d.bins += r * float64(i+1)
		d.bins += b.QueryUsed[i]*0.5 + b.QueryPred[i]*0.25
	}
}

func (d *digestSink) OnInterval(iv *IntervalResults) {
	d.intervals += iv.ExportCycles
	for qi, r := range iv.Results {
		d.intervals += resultDigest(r) * float64(qi+1)
	}
}

func (*digestSink) SinkTransient() bool { return true }

// resultDigest reduces a query result to an order-independent number.
func resultDigest(r queries.Result) float64 {
	switch v := r.(type) {
	case nil:
		return -1
	case queries.FlowsResult:
		return v.Flows
	case queries.CounterResult:
		return v.Packets + v.Bytes
	case queries.HighWatermarkResult:
		return v.WatermarkBytes
	case queries.TraceResult:
		return v.Packets + v.Bytes
	case queries.PatternResult:
		return v.Processed + v.Matches
	case queries.ApplicationResult:
		var s float64
		for _, c := range v.Apps {
			s += c.Packets + c.Bytes
		}
		return s
	case queries.TopKResult:
		var s float64
		for i, e := range v.List {
			s += float64(i+1) * (float64(e.IP) + e.Bytes)
		}
		s += float64(len(v.All))
		return s
	case queries.AutofocusResult:
		var s float64
		for i, c := range v.Clusters {
			s += float64(i+1) * (float64(c.Prefix) + float64(c.Len) + c.Bytes)
		}
		return s + v.Total
	case queries.SuperSourcesResult:
		var s float64
		for i, e := range v.Top {
			s += float64(i+1) * (float64(e.IP) + e.FanOut)
		}
		s += float64(len(v.All))
		return s
	case queries.P2PResult:
		var s float64
		for k := range v.Detected {
			s += float64(k[0]) + float64(k[5]) + float64(k[12])
		}
		return s + v.Count
	default:
		return math.NaN()
	}
}

// digestRun folds an already-collected RunResult through the same
// digests as digestSink.
func digestRun(res *RunResult) (bins, intervals float64) {
	var d digestSink
	for i := range res.Bins {
		d.OnBin(&res.Bins[i])
	}
	for i := range res.Intervals {
		d.OnInterval(&res.Intervals[i])
	}
	return d.bins, d.intervals
}

// TestTransientStreamMatchesRun pins the recycling fast path: a Stream
// into a transient sink — which makes the engine reuse Stats slices and
// recycle interval results through FlushInto — must produce exactly the
// per-bin and per-interval values of the allocating Run path, custom
// shedding and mid-run arrivals included.
func TestTransientStreamMatchesRun(t *testing.T) {
	mkSys := func() *System {
		cfg := streamCfg(21)
		cfg.CustomShedding = true
		cfg.Arrivals = []Arrival{{AtBin: 13, Make: func() queries.Query {
			return queries.NewCounter(queries.Config{Seed: 4})
		}}}
		return New(cfg, queries.FullSet(queries.Config{Seed: 21}))
	}
	want := mkSys().Run(testSource(5, 5*time.Second))
	wantBins, wantIvs := digestRun(want)

	var got digestSink
	mkSys().Stream(testSource(5, 5*time.Second), &got)
	if got.bins != wantBins || got.intervals != wantIvs {
		t.Fatalf("transient stream diverged from Run: bins %v vs %v, intervals %v vs %v",
			got.bins, wantBins, got.intervals, wantIvs)
	}
}

// TestRunResultSurvivesLaterTransientStream is the regression test for
// the slice-harvest bug: a RunResult returned by a System must stay
// intact when the same System later streams into a transient sink,
// whose runs recycle the per-bin Stats slices. Before the fix the
// recycling pass harvested the slices the retained last bin still
// referenced and overwrote them in place.
func TestRunResultSurvivesLaterTransientStream(t *testing.T) {
	sys := New(streamCfg(31), stdQueries())
	res := sys.Run(testSource(8, 3*time.Second))
	last := res.Bins[len(res.Bins)-1]
	rates := append([]float64(nil), last.Rates...)
	used := append([]float64(nil), last.QueryUsed...)
	pred := append([]float64(nil), last.QueryPred...)

	sys.Stream(testSource(9, 3*time.Second), NewRollingStats(50))

	if !reflect.DeepEqual(last.Rates, rates) ||
		!reflect.DeepEqual(last.QueryUsed, used) ||
		!reflect.DeepEqual(last.QueryPred, pred) {
		t.Fatal("a later transient-sink Stream mutated the retained RunResult's per-bin slices")
	}
}
