package loadshed

import (
	"math"

	"repro/internal/queries"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Reference produces the ground-truth run: unlimited capacity, no
// shedding, no measurement noise. Accuracy of every other run is
// measured against it (§2.2.1 — "the actual value in our experiments is
// obtained from a complete packet trace").
func Reference(src trace.Source, qs []queries.Query, seed uint64) *RunResult {
	sys := New(Config{
		Scheme:     NoShed,
		Capacity:   math.Inf(1),
		Seed:       seed,
		NoiseSigma: -1, // sentinel: withDefaults leaves negative alone
	}, qs)
	return sys.Run(src)
}

// Errors computes per-query, per-interval accuracy errors of run got
// against run ref. The metric queries supply the Error implementations;
// they are matched to result columns by name.
func Errors(metric []queries.Query, got, ref *RunResult) map[string][]float64 {
	byName := make(map[string]queries.Query, len(metric))
	for _, q := range metric {
		byName[q.Name()] = q
	}
	n := len(got.Intervals)
	if len(ref.Intervals) < n {
		n = len(ref.Intervals)
	}
	// Compare the common prefix of the two query sets: runs with
	// mid-run arrivals carry extra trailing queries that the reference
	// run (and often the metric set) does not know about.
	nq := len(got.Queries)
	if len(ref.Queries) < nq {
		nq = len(ref.Queries)
	}
	out := make(map[string][]float64, nq)
	for qi := 0; qi < nq; qi++ {
		name := got.Queries[qi]
		if name != ref.Queries[qi] {
			continue // different query at this slot (e.g. a wrapped clone)
		}
		mq, ok := byName[name]
		if !ok {
			continue // no metric registered (e.g. a misbehaving clone)
		}
		errs := make([]float64, 0, n)
		for iv := 0; iv < n; iv++ {
			gr := got.Intervals[iv].Results
			rr := ref.Intervals[iv].Results
			if qi >= len(gr) || qi >= len(rr) || gr[qi] == nil || rr[qi] == nil {
				continue // query not yet present in this interval
			}
			e := mq.Error(gr[qi], rr[qi])
			errs = append(errs, stats.Clamp(e, 0, 1))
		}
		out[name] = errs
	}
	return out
}

// MeanErrors averages the per-interval errors of Errors.
func MeanErrors(metric []queries.Query, got, ref *RunResult) map[string]float64 {
	out := map[string]float64{}
	for name, errs := range Errors(metric, got, ref) {
		out[name] = stats.Mean(errs)
	}
	return out
}

// Accuracies converts per-interval errors into the accuracy model of
// Figure 5.3: accuracy is 1−ε when the query ran at or above its
// minimum sampling rate for the whole interval, and 0 otherwise
// (a disabled or starved query returns worthless results).
func Accuracies(metric []queries.Query, got, ref *RunResult, binsPerInterval int) map[string][]float64 {
	errs := Errors(metric, got, ref)
	minRates := map[string]float64{}
	for _, q := range metric {
		minRates[q.Name()] = q.MinRate()
	}
	out := make(map[string][]float64, len(errs))
	for qi, name := range got.Queries {
		es := errs[name]
		accs := make([]float64, len(es))
		for iv := range es {
			acc := 1 - es[iv]
			// Check the applied rates across the interval's bins.
			lo, hi := iv*binsPerInterval, (iv+1)*binsPerInterval
			if hi > len(got.Bins) {
				hi = len(got.Bins)
			}
			for b := lo; b < hi; b++ {
				if got.Bins[b].Rates[qi] < minRates[name] {
					acc = 0
					break
				}
			}
			accs[iv] = stats.Clamp(acc, 0, 1)
		}
		out[name] = accs
	}
	return out
}

// MeasureDemand replays src against fresh queries with unlimited
// capacity and returns the mean per-bin full-rate query cycles.
func MeasureDemand(src trace.Source, qs []queries.Query, seed uint64) float64 {
	_, d := MeasureLoad(src, qs, seed)
	return d
}

// MeasureLoad runs a lossless predictive probe and returns the mean
// per-bin platform+prediction overhead and the mean per-bin query
// demand at full rate. Capacity budgets must cover both: the thesis'
// "C" (the minimum capacity at which no sampling occurs, §5.5.3) is
// their sum.
func MeasureLoad(src trace.Source, qs []queries.Query, seed uint64) (overhead, demand float64) {
	sys := New(Config{
		Scheme:     Predictive,
		Capacity:   math.Inf(1),
		Seed:       seed,
		NoiseSigma: -1,
	}, qs)
	// The probe only needs two running sums, so it streams instead of
	// accumulating a RunResult: measuring a multi-hour trace costs the
	// same memory as measuring a ten-second one.
	var n int
	sys.Stream(src, SinkFuncs{Bin: func(b *BinStats) {
		overhead += b.Overhead
		demand += b.Used
		n++
	}})
	if n == 0 {
		return 0, 0
	}
	return overhead / float64(n), demand / float64(n)
}

// MeasureCapacity returns the thesis' C: the minimum per-bin capacity
// at which the predictive system sheds nothing. Overload-level
// experiments use capacity = C × (1 − K).
func MeasureCapacity(src trace.Source, qs []queries.Query, seed uint64) float64 {
	o, d := MeasureLoad(src, qs, seed)
	return o + d
}

// CapacityForOverload returns a capacity at which the query demand is
// `factor` times the cycles left after overhead — "2x overload" with
// the platform costs properly paid for.
func CapacityForOverload(src trace.Source, qs []queries.Query, seed uint64, factor float64) float64 {
	o, d := MeasureLoad(src, qs, seed)
	return o + d/factor
}

// TotalDrops sums the uncontrolled capture drops of a run.
func (r *RunResult) TotalDrops() int {
	n := 0
	for i := range r.Bins {
		n += r.Bins[i].DropPkts
	}
	return n
}

// TotalWirePkts sums the packets offered to the system.
func (r *RunResult) TotalWirePkts() int {
	n := 0
	for i := range r.Bins {
		n += r.Bins[i].WirePkts
	}
	return n
}

// UsedPerBin returns the per-bin total query cycles, the series behind
// the Figure 4.1 CDF.
func (r *RunResult) UsedPerBin() []float64 {
	out := make([]float64, len(r.Bins))
	for i := range r.Bins {
		out[i] = r.Bins[i].Used
	}
	return out
}
