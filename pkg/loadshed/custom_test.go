package loadshed

import (
	"testing"
	"time"

	"repro/internal/custom"
	"repro/internal/queries"
	"repro/internal/sched"
	"repro/internal/trace"
)

// p2pSource produces payload traffic with plenty of P2P flows.
func p2pSource(seed uint64, dur time.Duration) *trace.Generator {
	return trace.NewGenerator(trace.Config{
		Seed: seed, Duration: dur, PacketsPerSec: 6000,
		Payload: true, P2PFrac: 0.15,
	})
}

// p2pWith runs the p2p-detector alongside a counter under overload and
// returns the detector's mean accuracy error.
func p2pWith(t *testing.T, dur time.Duration, customShed bool, method func(queries.Query) queries.Query) float64 {
	t.Helper()
	mk := func() []queries.Query {
		qs := []queries.Query{
			queries.NewP2PDetector(queries.Config{Seed: 2}),
			queries.NewCounter(queries.Config{Seed: 2}),
		}
		if method != nil {
			qs[0] = method(qs[0])
		}
		return qs
	}
	demand := MeasureDemand(p2pSource(21, dur), mk(), 12)
	ref := Reference(p2pSource(21, dur), mk(), 12)
	res := New(Config{
		Scheme:         Predictive,
		Capacity:       demand / 2,
		Seed:           13,
		Strategy:       sched.MMFSPkt{},
		CustomShedding: customShed,
	}, mk()).Run(p2pSource(21, dur))
	name := res.Queries[0]
	metric := queries.NewP2PDetector(queries.Config{Seed: 2})
	byName := map[string][]float64{}
	for qi, n := range res.Queries {
		if n != name {
			continue
		}
		for iv := range res.Intervals {
			e := metric.Error(res.Intervals[iv].Results[qi], ref.Intervals[iv].Results[0])
			byName[n] = append(byName[n], e)
		}
	}
	var sum float64
	for _, e := range byName[name] {
		sum += e
	}
	return sum / float64(len(byName[name]))
}

func TestCustomSheddingBeatsPacketSamplingForP2P(t *testing.T) {
	if testing.Short() {
		t.Skip("custom-shedding comparison is slow")
	}
	const dur = 20 * time.Second
	// With custom shedding: the detector degrades to the port heuristic
	// for uninspected flows.
	customErr := p2pWith(t, dur, true, nil)
	// Without custom shedding support the system falls back to packet
	// sampling (Method()==Custom uses the packet sampler path).
	sampledErr := p2pWith(t, dur, false, nil)
	if customErr >= sampledErr {
		t.Fatalf("custom shedding error %v not better than packet sampling %v", customErr, sampledErr)
	}
	if customErr > 0.5 {
		t.Errorf("custom shedding error %v unexpectedly high", customErr)
	}
}

func TestSelfishQueryGetsContained(t *testing.T) {
	const dur = 20 * time.Second
	mk := func() []queries.Query {
		return []queries.Query{
			custom.NewSelfish(queries.NewP2PDetector(queries.Config{Seed: 3})),
			queries.NewCounter(queries.Config{Seed: 3}),
			queries.NewFlows(queries.Config{Seed: 3}),
		}
	}
	demand := MeasureDemand(p2pSource(31, dur), mk(), 14)
	sys := New(Config{
		Scheme:         Predictive,
		Capacity:       demand / 2.5,
		Seed:           15,
		Strategy:       sched.MMFSPkt{},
		CustomShedding: true,
	}, mk())
	res := sys.Run(p2pSource(31, dur))

	// The selfish clone must be contained: either explicitly policed
	// (audit violations) or starved by the scheduler (its inflated
	// demand makes it first in line for disabling, the §5.2.1 rule that
	// underpins the Nash equilibrium). Either way it may not keep
	// consuming the CPU.
	selfIdx := 0
	var selfCycles, totalCycles float64
	for _, b := range res.Bins[20:] {
		selfCycles += b.QueryUsed[selfIdx]
		totalCycles += b.Used
	}
	policed := sys.qs[selfIdx].shed.Mode() != custom.ModeCustom
	starved := selfCycles < 0.1*totalCycles
	if !policed && !starved {
		t.Fatalf("selfish query neither policed nor starved: %.0f of %.0f cycles",
			selfCycles, totalCycles)
	}

	// And the compliant queries must still be served: counter accuracy
	// stays high despite the selfish neighbour.
	ref := Reference(p2pSource(31, dur), mk(), 14)
	metric := []queries.Query{
		custom.NewSelfish(queries.NewP2PDetector(queries.Config{Seed: 3})),
		queries.NewCounter(queries.Config{Seed: 3}),
		queries.NewFlows(queries.Config{Seed: 3}),
	}
	errs := MeanErrors(metric, res, ref)
	if errs["counter"] > 0.1 {
		t.Errorf("counter error %v with selfish neighbour, want < 0.1", errs["counter"])
	}
}

func TestBuggyQueryGetsContained(t *testing.T) {
	const dur = 20 * time.Second
	mk := func() []queries.Query {
		return []queries.Query{
			custom.NewBuggy(queries.NewP2PDetector(queries.Config{Seed: 4})),
			queries.NewCounter(queries.Config{Seed: 4}),
		}
	}
	demand := MeasureDemand(p2pSource(41, dur), mk(), 16)
	sys := New(Config{
		Scheme:         Predictive,
		Capacity:       demand / 3,
		Seed:           17,
		Strategy:       sched.MMFSPkt{},
		CustomShedding: true,
	}, mk())
	res := sys.Run(p2pSource(41, dur))
	// Contained like the selfish clone: policed or starved.
	var buggyCycles, totalCycles float64
	for _, b := range res.Bins[20:] {
		buggyCycles += b.QueryUsed[0]
		totalCycles += b.Used
	}
	policed := sys.qs[0].shed.Mode() != custom.ModeCustom
	starved := buggyCycles < 0.15*totalCycles
	if !policed && !starved {
		t.Fatalf("buggy query neither policed nor starved: %.0f of %.0f cycles",
			buggyCycles, totalCycles)
	}
}

func TestCompliantCustomQueryStaysCustomInSystem(t *testing.T) {
	const dur = 20 * time.Second
	mk := func() []queries.Query {
		return []queries.Query{
			queries.NewP2PDetector(queries.Config{Seed: 5}),
			queries.NewCounter(queries.Config{Seed: 5}),
		}
	}
	demand := MeasureDemand(p2pSource(51, dur), mk(), 18)
	sys := New(Config{
		Scheme:         Predictive,
		Capacity:       demand / 2,
		Seed:           19,
		Strategy:       sched.MMFSPkt{},
		CustomShedding: true,
	}, mk())
	sys.Run(p2pSource(51, dur))
	for _, rq := range sys.qs {
		if rq.shed != nil && rq.shed.Mode() != custom.ModeCustom {
			t.Fatalf("compliant p2p-detector was policed: %v", rq.shed.Mode())
		}
	}
}
