package loadshed

// failover_test.go pins the crash-tolerance layer: planned migration
// must be bit-identical (the drained prefix plus the resumed suffix
// reproduce an uninterrupted run, digest for digest), periodic
// checkpoints must resume exactly from the coordinator's retained blob,
// the CheckpointEvery=0 path must leave runs untouched, failover
// offers must rotate deterministically under loss, and the PSK auth
// handshake must reject key mismatches while counting them.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/hash"
	"repro/internal/trace"
)

// migrationSpec is the spec-constructible shard the failover tests run:
// the same query set as snapshot_test, buildable via QueryByName so an
// adopter can rebuild it from the checkpoint alone.
func migrationSpec(workers int, capacity float64) ShardSpec {
	return ShardSpec{
		Scheme:   "predictive",
		Strategy: "mmfs_pkt",
		Seed:     99,
		Capacity: capacity,
		Workers:  workers,
		Queries: []QuerySpec{
			{Kind: "flows", Seed: 11},
			{Kind: "counter", Seed: 11},
			{Kind: "top-k", Seed: 11},
		},
	}
}

// captureTransport is a NodeTransport that swallows reports, grants
// nothing, records every checkpoint as its encoded blob, and raises the
// drain signal once the node has reported past drainAfterBin — the
// deterministic stand-in for a coordinator-relayed drain frame.
type captureTransport struct {
	mu            sync.Mutex
	drainAfterBin int64 // >0: drain once a report reaches this bin
	lastBin       int64
	blobs         [][]byte
}

func (t *captureTransport) Report(r DemandReport) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r.Bin > t.lastBin {
		t.lastBin = r.Bin
	}
	return nil
}

func (t *captureTransport) Grant() (BudgetGrant, bool) { return BudgetGrant{}, false }
func (t *captureTransport) Close() error               { return nil }

func (t *captureTransport) Checkpoint(cp *ShardCheckpoint) error {
	blob, err := cp.EncodeBytes()
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.blobs = append(t.blobs, blob)
	return nil
}

func (t *captureTransport) DrainRequested() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drainAfterBin > 0 && t.lastBin >= t.drainAfterBin
}

func (t *captureTransport) checkpoints() [][]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([][]byte(nil), t.blobs...)
}

// binDigests hashes each bin's full stats record; two runs are
// bit-identical exactly when their digest sequences match.
func binDigests(t *testing.T, bins []BinStats) [][sha256.Size]byte {
	t.Helper()
	out := make([][sha256.Size]byte, len(bins))
	for i := range bins {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&bins[i]); err != nil {
			t.Fatalf("digest bin %d: %v", i, err)
		}
		out[i] = sha256.Sum256(buf.Bytes())
	}
	return out
}

// TestPlannedMigrationBitIdentical is the migration acceptance gate: a
// shard drained at a measurement-interval boundary, checkpointed
// through the full encode/decode round trip, rebuilt from its spec on
// the other side and resumed on a repositioned source must produce —
// prefix plus suffix — the exact per-bin sha256 digests of a run that
// never migrated. Sequential and pipelined engines both.
func TestPlannedMigrationBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"pipelined", 4}} {
		t.Run(tc.name, func(t *testing.T) {
			const dur = 4 * time.Second // 4 measurement intervals
			g := trace.NewGenerator(trace.CESCA2(9, dur, 0.4))
			batches := trace.Record(g)
			bin := g.TimeBin()
			perInterval := int(time.Second / bin)
			cut := 2 * perInterval
			if cut <= 0 || cut >= len(batches) {
				t.Fatalf("bad cut %d of %d batches", cut, len(batches))
			}
			capacity := MeasureCapacity(trace.NewMemorySource(batches, bin), snapshotTestQueries(), 77) * 0.7
			spec := migrationSpec(tc.workers, capacity)
			mkSys := func() *System {
				s, err := spec.NewSystem()
				if err != nil {
					t.Fatalf("spec system: %v", err)
				}
				return s
			}

			ref := mkSys().Run(trace.NewMemorySource(batches, bin))
			want := binDigests(t, ref.Bins)

			// The migrating run: a Node whose transport raises the drain
			// signal at the second interval boundary (the coordinator's
			// relayed drain frame, made deterministic).
			tr := &captureTransport{drainAfterBin: int64(cut)}
			sink := newResultSink(Predictive)
			node := NewNode(mkSys(), tr, NodeConfig{Name: "mig", Spec: spec})
			if err := node.StreamContext(context.Background(), trace.NewMemorySource(batches, bin), sink); err != nil {
				t.Fatalf("drained stream: %v", err)
			}
			if !node.Drained() {
				t.Fatal("node ran to completion instead of draining")
			}
			blobs := tr.checkpoints()
			if len(blobs) != 1 {
				t.Fatalf("%d checkpoints shipped, want exactly the final one", len(blobs))
			}
			cp, err := DecodeShardCheckpoint(bytes.NewReader(blobs[0]))
			if err != nil {
				t.Fatalf("decode checkpoint: %v", err)
			}
			if !cp.Final || cp.Node != "mig" || cp.Bin != int64(cut) {
				t.Fatalf("final checkpoint = {node %q, bin %d, final %v}, want {mig, %d, true}",
					cp.Node, cp.Bin, cp.Final, cut)
			}
			if len(sink.res.Bins) != cut {
				t.Fatalf("drained run produced %d bins, want %d", len(sink.res.Bins), cut)
			}

			// The adopting side: rebuild purely from the checkpoint —
			// spec-built system, restored snapshot, repositioned source.
			sys2, err := cp.Spec.NewSystem()
			if err != nil {
				t.Fatalf("rebuild from spec: %v", err)
			}
			if err := sys2.Restore(cp.Snap); err != nil {
				t.Fatalf("restore: %v", err)
			}
			r2 := sys2.Run(ResumeSource(trace.NewMemorySource(batches, bin), cp.Bin))

			got := append(binDigests(t, sink.res.Bins), binDigests(t, r2.Bins)...)
			if len(got) != len(want) {
				t.Fatalf("migrated run produced %d bins, uninterrupted %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					side := "pre-drain"
					if i >= cut {
						side = "resumed"
					}
					t.Fatalf("bin %d (%s) digest diverged from the uninterrupted run", i, side)
				}
			}
		})
	}
}

// TestPeriodicCheckpointResumeLoopback drives the periodic path end to
// end over the loopback transport: a Node with CheckpointEvery=1 ships
// a checkpoint at every interval boundary, the coordinator retains the
// latest, and a fresh system resumed from that retained blob reproduces
// the original run's remaining bins exactly.
func TestPeriodicCheckpointResumeLoopback(t *testing.T) {
	const dur = 4 * time.Second
	g := trace.NewGenerator(trace.CESCA2(9, dur, 0.4))
	batches := trace.Record(g)
	bin := g.TimeBin()
	perInterval := int(time.Second / bin)
	capacity := MeasureCapacity(trace.NewMemorySource(batches, bin), snapshotTestQueries(), 77) * 0.7
	spec := migrationSpec(1, capacity)

	coord := NewCoordinator(MMFSCPU(), capacity)
	tr := NewLoopback(coord, "w0", 0)
	sys, err := spec.NewSystem()
	if err != nil {
		t.Fatalf("spec system: %v", err)
	}
	node := NewNode(sys, tr, NodeConfig{Name: "w0", CheckpointEvery: 1, Spec: spec})
	sink := newResultSink(Predictive)
	if err := node.StreamContext(context.Background(), trace.NewMemorySource(batches, bin), sink); err != nil {
		t.Fatalf("stream: %v", err)
	}
	// 4 intervals cross 3 interior boundaries; every one checkpoints.
	if got := node.CheckpointsSent(); got != 3 {
		t.Fatalf("node sent %d checkpoints, want 3", got)
	}
	if got := coord.CheckpointsStored(); got != 3 {
		t.Fatalf("coordinator stored %d checkpoints, want 3", got)
	}
	if got := node.CheckpointErrors(); got != 0 {
		t.Fatalf("%d checkpoint errors", got)
	}

	// The loopback transport registers by handle, not name, so read the
	// retained blob off the membership record directly.
	var blob []byte
	coord.mu.Lock()
	for _, n := range coord.nodes {
		if n.name == "w0" {
			blob = append([]byte(nil), n.ckptBlob...)
		}
	}
	coord.mu.Unlock()
	if blob == nil {
		t.Fatal("coordinator retained no checkpoint")
	}
	cp, err := DecodeShardCheckpoint(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("decode retained checkpoint: %v", err)
	}
	if want := int64(3 * perInterval); cp.Bin != want {
		t.Fatalf("latest checkpoint at bin %d, want %d", cp.Bin, want)
	}
	if cp.Final {
		t.Fatal("periodic checkpoint marked final")
	}

	sys2, err := cp.Spec.NewSystem()
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if err := sys2.Restore(cp.Snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	r2 := sys2.Run(ResumeSource(trace.NewMemorySource(batches, bin), cp.Bin))
	tail := sink.res.Bins[cp.Bin:]
	if len(r2.Bins) != len(tail) {
		t.Fatalf("resumed run produced %d bins, original tail has %d", len(r2.Bins), len(tail))
	}
	for i := range tail {
		if !reflect.DeepEqual(r2.Bins[i], tail[i]) {
			t.Fatalf("resumed bin %d diverged from original bin %d", i, int(cp.Bin)+i)
		}
	}
}

// TestCheckpointEveryZeroUntouched pins the off-switch: with
// CheckpointEvery=0 and no drain, the boundary hook must neither
// snapshot nor touch the transport, and the bins must be identical to a
// plain System run — the failover layer costs nothing when unused.
func TestCheckpointEveryZeroUntouched(t *testing.T) {
	const dur = 2 * time.Second
	g := trace.NewGenerator(trace.CESCA2(9, dur, 0.4))
	batches := trace.Record(g)
	bin := g.TimeBin()
	capacity := MeasureCapacity(trace.NewMemorySource(batches, bin), snapshotTestQueries(), 77) * 0.7
	spec := migrationSpec(1, capacity)

	plain, err := spec.NewSystem()
	if err != nil {
		t.Fatalf("spec system: %v", err)
	}
	want := plain.Run(trace.NewMemorySource(batches, bin))

	tr := &captureTransport{}
	sys, _ := spec.NewSystem()
	node := NewNode(sys, tr, NodeConfig{Name: "off", Spec: spec})
	sink := newResultSink(Predictive)
	if err := node.StreamContext(context.Background(), trace.NewMemorySource(batches, bin), sink); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if n := len(tr.checkpoints()); n != 0 {
		t.Fatalf("%d checkpoints shipped with CheckpointEvery=0", n)
	}
	if n := node.CheckpointsSent(); n != 0 {
		t.Fatalf("checkpoint counter at %d with CheckpointEvery=0", n)
	}
	if !reflect.DeepEqual(sink.res.Bins, want.Bins) {
		t.Fatal("bins diverged from a plain System run with checkpointing off")
	}
}

// TestTCPAdoptionFailover runs the crash half of failover over real TCP:
// worker alpha ships a checkpoint and dies; past the lease plus grace
// the coordinator offers alpha's shard to the surviving worker, whose
// client surfaces a decodable adoption offer.
func TestTCPAdoptionFailover(t *testing.T) {
	coord := NewCoordinator(MMFSCPU(), 1000)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := ServeCoordinator(ln, coord, CoordServerConfig{
		Heartbeat:    10 * time.Millisecond,
		Lease:        60 * time.Millisecond,
		Grace:        50 * time.Millisecond,
		OfferTimeout: 100 * time.Millisecond,
	})
	defer srv.Close()

	ccfg := CoordClientConfig{
		Lease:    60 * time.Millisecond,
		RetryMin: 5 * time.Millisecond,
		RetryMax: 20 * time.Millisecond,
	}
	alpha, err := DialCoordinator(srv.Addr().String(), "alpha", ccfg)
	if err != nil {
		t.Fatalf("dial alpha: %v", err)
	}
	beta, err := DialCoordinator(srv.Addr().String(), "beta", ccfg)
	if err != nil {
		t.Fatalf("dial beta: %v", err)
	}
	defer beta.Close()

	// Alpha's shard state: a fresh spec-built system, snapshotted at the
	// between-runs quiesce point.
	spec := migrationSpec(1, 500)
	sys, err := spec.NewSystem()
	if err != nil {
		t.Fatalf("spec system: %v", err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	cp := &ShardCheckpoint{Node: "alpha", Bin: 0, Spec: spec, Snap: snap}

	alpha.Report(DemandReport{Node: "alpha", Bin: 1, Demand: 400})
	beta.Report(DemandReport{Node: "beta", Bin: 1, Demand: 400})
	if err := alpha.Checkpoint(cp); err != nil {
		t.Fatalf("ship checkpoint: %v", err)
	}
	waitFor(t, 5*time.Second, "checkpoint retained", func() bool {
		return coord.CheckpointsStored() >= 1
	})

	// Alpha dies. Beta keeps reporting (it must stay live to adopt) and
	// polls for the offer the coordinator pushes after lease + grace.
	alpha.Close()
	var offer AdoptOffer
	waitFor(t, 5*time.Second, "adoption offer delivered to the survivor", func() bool {
		beta.Report(DemandReport{Node: "beta", Bin: 2, Demand: 400})
		o, ok := beta.Adoption()
		if ok {
			offer = o
		}
		return ok
	})
	if offer.Shard != "alpha" {
		t.Fatalf("offered shard %q, want alpha", offer.Shard)
	}
	got, err := DecodeShardCheckpoint(bytes.NewReader(offer.Checkpoint))
	if err != nil {
		t.Fatalf("offered blob undecodable: %v", err)
	}
	if got.Node != "alpha" || got.Bin != offer.Bin {
		t.Fatalf("offer carries {node %q, bin %d}, frame says bin %d", got.Node, got.Bin, offer.Bin)
	}
	if coord.FailoverOffers() == 0 {
		t.Fatal("offer counter never moved")
	}
}

// TestCoordinatorAuthPSK pins the pre-shared-key handshake: the right
// key joins and is granted, a wrong key and a keyless hello are both
// rejected and counted, and a keyed client against a keyless
// coordinator fails its dial with a diagnosable error.
func TestCoordinatorAuthPSK(t *testing.T) {
	coord := NewCoordinator(MMFSCPU(), 1000)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := ServeCoordinator(ln, coord, CoordServerConfig{
		Heartbeat: 10 * time.Millisecond,
		Lease:     60 * time.Millisecond,
		Key:       "sesame",
	})
	defer srv.Close()

	good, err := DialCoordinator(srv.Addr().String(), "good", CoordClientConfig{
		Lease: 60 * time.Millisecond, Key: "sesame",
	})
	if err != nil {
		t.Fatalf("dial with the right key: %v", err)
	}
	defer good.Close()
	waitFor(t, 5*time.Second, "authenticated worker granted", func() bool {
		good.Report(DemandReport{Node: "good", Bin: 1, Demand: 500})
		_, ok := good.Grant()
		return ok
	})
	if n := srv.AuthFailures(); n != 0 {
		t.Fatalf("%d auth failures before any bad client", n)
	}

	bad, _ := DialCoordinator(srv.Addr().String(), "bad", CoordClientConfig{
		Lease: 60 * time.Millisecond, Key: "wrong",
		RetryMin: 5 * time.Millisecond, RetryMax: 20 * time.Millisecond,
	})
	waitFor(t, 5*time.Second, "wrong key rejected and counted", func() bool {
		return srv.AuthFailures() >= 1
	})
	bad.Close()

	failsBefore := srv.AuthFailures()
	plain, _ := DialCoordinator(srv.Addr().String(), "plain", CoordClientConfig{
		Lease: 60 * time.Millisecond,
		RetryMin: 5 * time.Millisecond, RetryMax: 20 * time.Millisecond,
	})
	waitFor(t, 5*time.Second, "keyless hello to a keyed coordinator rejected", func() bool {
		return srv.AuthFailures() > failsBefore
	})
	plain.Close()

	// The impostors never made it into the membership.
	for _, n := range coord.Status() {
		if n.Name != "good" {
			t.Fatalf("unauthenticated node %q joined the cluster", n.Name)
		}
	}

	// Keyed client, keyless coordinator: the dial must fail up front
	// (no challenge ever arrives) rather than silently downgrade.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	open := ServeCoordinator(ln2, NewCoordinator(MMFSCPU(), 1000), CoordServerConfig{
		Heartbeat: 10 * time.Millisecond,
	})
	defer open.Close()
	c, err := DialCoordinator(open.Addr().String(), "keyed", CoordClientConfig{
		Key: "sesame", DialTimeout: 200 * time.Millisecond,
		RetryMin: 50 * time.Millisecond, RetryMax: 100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("keyed dial of a keyless coordinator succeeded")
	}
	if c != nil {
		c.Close()
	}
}

// TestReconnectJitterDeterministic pins the reconnect backoff contract:
// the jitter stream is seeded from the worker name, so a given worker
// waits the same schedule every run (reproducibility) while different
// workers desynchronize (no thundering herd), and every wait stays
// inside [d/2, d).
func TestReconnectJitterDeterministic(t *testing.T) {
	if fnv64a("alpha") == fnv64a("beta") {
		t.Fatal("distinct names hash alike")
	}
	if fnv64a("alpha") != fnv64a("alpha") {
		t.Fatal("name hash is unstable")
	}
	const d = 800 * time.Millisecond
	seq := func(name string) []time.Duration {
		rng := hash.NewXorShift(fnv64a(name))
		out := make([]time.Duration, 32)
		for i := range out {
			out[i] = backoffJitter(rng, d)
		}
		return out
	}
	a1, a2, b := seq("alpha"), seq("alpha"), seq("beta")
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same name, different jitter schedule")
	}
	if reflect.DeepEqual(a1, b) {
		t.Fatal("different names, identical jitter schedule")
	}
	for i, w := range a1 {
		if w < d/2 || w >= d {
			t.Fatalf("wait %d = %v outside [%v, %v)", i, w, d/2, d)
		}
	}
	// Degenerate durations pass through unjittered.
	rng := hash.NewXorShift(1)
	if got := backoffJitter(rng, 1); got != 1 {
		t.Fatalf("sub-divisible duration jittered to %v", got)
	}
}

// TestCheckpointCodecVersioning pins the snapshot/checkpoint codec's
// sentinel discipline: undecodable streams are ErrSnapshotCorrupt,
// decodable streams from unknown format versions are ErrSnapshotVersion,
// and both match through errors.Is after wrapping.
func TestCheckpointCodecVersioning(t *testing.T) {
	if _, err := DecodeSnapshot(bytes.NewReader([]byte("garbage"))); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("garbage snapshot: %v, want ErrSnapshotCorrupt", err)
	}
	if _, err := DecodeShardCheckpoint(bytes.NewReader([]byte("garbage"))); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("garbage checkpoint: %v, want ErrSnapshotCorrupt", err)
	}

	encode := func(v any) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}
	if _, err := DecodeSnapshot(bytes.NewReader(encode(&SystemSnapshot{Version: 99}))); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future snapshot version: %v, want ErrSnapshotVersion", err)
	}
	future := &ShardCheckpoint{Version: 99, Snap: &SystemSnapshot{Version: SnapshotFormatVersion}}
	if _, err := DecodeShardCheckpoint(bytes.NewReader(encode(future))); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future checkpoint version: %v, want ErrSnapshotVersion", err)
	}
	mixed := &ShardCheckpoint{Version: CheckpointFormatVersion, Snap: &SystemSnapshot{Version: 99}}
	if _, err := DecodeShardCheckpoint(bytes.NewReader(encode(mixed))); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future snapshot inside checkpoint: %v, want ErrSnapshotVersion", err)
	}
	headless := &ShardCheckpoint{Version: CheckpointFormatVersion}
	if _, err := DecodeShardCheckpoint(bytes.NewReader(encode(headless))); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("snapshotless checkpoint: %v, want ErrSnapshotCorrupt", err)
	}

	// A real blob survives the round trip; its truncation does not.
	spec := migrationSpec(1, 100)
	sys, err := spec.NewSystem()
	if err != nil {
		t.Fatalf("spec system: %v", err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	blob, err := (&ShardCheckpoint{Node: "n", Bin: 7, Spec: spec, Snap: snap}).EncodeBytes()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	cp, err := DecodeShardCheckpoint(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if cp.Version != CheckpointFormatVersion || cp.Snap.Version != SnapshotFormatVersion {
		t.Fatalf("round trip versions %d/%d", cp.Version, cp.Snap.Version)
	}
	if _, err := DecodeShardCheckpoint(bytes.NewReader(blob[:len(blob)/2])); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("truncated checkpoint: %v, want ErrSnapshotCorrupt", err)
	}
}

// TestFaultCheckpointLossDeterministic pins the chaos schedule: a given
// fault seed loses the same checkpoints every run (stored plus dropped
// always totals sent), so checkpoint-loss scenarios replay exactly.
func TestFaultCheckpointLossDeterministic(t *testing.T) {
	run := func(seed uint64) (stored, dropped int64) {
		coord := NewCoordinator(MMFSCPU(), 1000)
		ft := NewFaultTransport(NewLoopback(coord, "w", 0), FaultConfig{
			Seed: seed, CheckpointDrop: 0.5,
		})
		spec := migrationSpec(1, 100)
		sys, err := spec.NewSystem()
		if err != nil {
			t.Fatalf("spec system: %v", err)
		}
		snap, err := sys.Snapshot()
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		for i := 0; i < 40; i++ {
			cp := &ShardCheckpoint{Node: "w", Bin: int64(i), Spec: spec, Snap: snap}
			if err := ft.Checkpoint(cp); err != nil {
				t.Fatalf("checkpoint %d: %v", i, err)
			}
		}
		return coord.CheckpointsStored(), ft.Stats().CheckpointsDropped
	}
	s1, d1 := run(7)
	s2, d2 := run(7)
	if s1 != s2 || d1 != d2 {
		t.Fatalf("same seed diverged: stored %d/%d, dropped %d/%d", s1, s2, d1, d2)
	}
	if s1+d1 != 40 {
		t.Fatalf("stored %d + dropped %d != 40 sent", s1, d1)
	}
	if s1 == 0 || d1 == 0 {
		t.Fatalf("degenerate schedule at 50%% loss: stored %d, dropped %d", s1, d1)
	}
	if s3, d3 := run(8); s3 == s1 && d3 == d1 {
		// Not impossible, but at 40 draws it means the schedule ignores
		// the seed; the per-call fates would still differ, counts first.
		t.Logf("seeds 7 and 8 produced identical counts (%d/%d); verify fate streams differ", s3, d3)
	}
}

// TestAdoptOfferRotationAndRace drives planFailover on a synthetic
// clock: no offer inside the grace window, one offer past it, re-offer
// suppression while in flight, deterministic rotation to the next live
// candidate after expiry, deliver-once loopback semantics, and
// settlement when a worker dials in under the shard's name.
func TestAdoptOfferRotationAndRace(t *testing.T) {
	coord := NewCoordinator(MMFSCPU(), 1000)
	for _, n := range []string{"s", "a", "b"} {
		coord.Join(n, 0)
		coord.Report(DemandReport{Node: n, Bin: 1, Demand: 100})
	}
	coord.StoreCheckpoint("s", 5, false, []byte("blob"))

	t0 := time.Now()
	coord.mu.Lock()
	ns := coord.byName["s"]
	ns.partitioned = true
	ns.partitionedAt = t0
	adopterB := coord.byName["b"]
	coord.mu.Unlock()
	const (
		grace = 100 * time.Millisecond
		ot    = 200 * time.Millisecond
	)

	if offers := coord.planFailover(t0.Add(grace/2), grace, ot); len(offers) != 0 {
		t.Fatalf("offer inside the grace window: %+v", offers)
	}
	offers := coord.planFailover(t0.Add(grace), grace, ot)
	if len(offers) != 1 || offers[0].Shard != "s" || offers[0].Adopter != "a" {
		t.Fatalf("first offer %+v, want shard s to adopter a", offers)
	}
	if offers[0].Bin != 5 || !bytes.Equal(offers[0].Blob, []byte("blob")) {
		t.Fatalf("offer carries bin %d blob %q", offers[0].Bin, offers[0].Blob)
	}
	issued := t0.Add(grace)
	if offers := coord.planFailover(issued.Add(ot/2), grace, ot); len(offers) != 0 {
		t.Fatalf("re-offer while one is in flight: %+v", offers)
	}
	offers = coord.planFailover(issued.Add(ot), grace, ot)
	if len(offers) != 1 || offers[0].Adopter != "b" {
		t.Fatalf("expired offer re-issued to %+v, want rotation to b", offers)
	}
	if got := coord.FailoverOffers(); got != 2 {
		t.Fatalf("offer counter %d, want 2", got)
	}

	// Loopback delivery is at-most-once per issued offer.
	if _, ok := coord.takeOfferFor(adopterB); !ok {
		t.Fatal("adopter b sees no offer")
	}
	if _, ok := coord.takeOfferFor(adopterB); ok {
		t.Fatal("offer delivered twice")
	}

	// The adopter dials in under the shard's name: the offer settles and
	// the shard is live again — no further offers.
	coord.Join("s", 0)
	coord.Report(DemandReport{Node: "s", Bin: 6, Demand: 100})
	if offers := coord.planFailover(issued.Add(10*ot), grace, ot); len(offers) != 0 {
		t.Fatalf("settled shard re-offered: %+v", offers)
	}
}

// TestMigrateDirectedOffer pins the planned-migration state machine:
// Migrate validates its endpoints, raises the drain flag the transport
// relays, and once the final checkpoint lands the shard is offered to
// the directed target immediately — no grace window, no rotation.
func TestMigrateDirectedOffer(t *testing.T) {
	coord := NewCoordinator(MMFSCPU(), 1000)
	for _, n := range []string{"s", "a", "b"} {
		coord.Join(n, 0)
		coord.Report(DemandReport{Node: n, Bin: 1, Demand: 100})
	}
	coord.Join("ghost", 0) // joined but never reported: not live

	if err := coord.Migrate("nope", "a"); err == nil {
		t.Fatal("migrate from an unknown shard")
	}
	if err := coord.Migrate("s", "nope"); err == nil {
		t.Fatal("migrate to an unknown target")
	}
	if err := coord.Migrate("s", "s"); err == nil {
		t.Fatal("migrate onto itself")
	}
	if err := coord.Migrate("s", "ghost"); err == nil {
		t.Fatal("migrate to a never-live target")
	}
	if err := coord.Migrate("s", "b"); err != nil {
		t.Fatalf("migrate s -> b: %v", err)
	}
	if d := coord.drainTargets(nil); len(d) != 1 || d[0] != "s" {
		t.Fatalf("drain targets %v, want [s]", d)
	}

	// A non-final checkpoint (a periodic one racing the drain) does not
	// trigger the directed offer; the final one does, instantly.
	coord.StoreCheckpoint("s", 7, false, []byte("periodic"))
	now := time.Now()
	if offers := coord.planFailover(now, time.Hour, time.Hour); len(offers) != 0 {
		t.Fatalf("offer before the final checkpoint: %+v", offers)
	}
	coord.StoreCheckpoint("s", 8, true, []byte("final"))
	if d := coord.drainTargets(nil); len(d) != 0 {
		t.Fatalf("drain still pending after the final checkpoint: %v", d)
	}
	offers := coord.planFailover(now, time.Hour, time.Hour)
	if len(offers) != 1 || offers[0].Adopter != "b" || offers[0].Bin != 8 {
		t.Fatalf("directed offer %+v, want shard s to b at bin 8", offers)
	}
	if !bytes.Equal(offers[0].Blob, []byte("final")) {
		t.Fatalf("directed offer carries %q, want the final blob", offers[0].Blob)
	}

	// Target resumes under the shard's name: migration complete.
	coord.Join("s", 0)
	coord.Report(DemandReport{Node: "s", Bin: 9, Demand: 100})
	if offers := coord.planFailover(now.Add(time.Hour), time.Hour, time.Minute); len(offers) != 0 {
		t.Fatalf("completed migration re-offered: %+v", offers)
	}
}

// TestStateDirSpillReload pins coordinator-restart durability: retained
// checkpoints spill to the state directory, a fresh coordinator reloads
// them as partitioned-pending shards, and the reloaded blob is the
// retained one bit for bit.
func TestStateDirSpillReload(t *testing.T) {
	dir := t.TempDir()
	spec := migrationSpec(1, 100)
	sys, err := spec.NewSystem()
	if err != nil {
		t.Fatalf("spec system: %v", err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	blob, err := (&ShardCheckpoint{Node: "shard-1", Bin: 12, Spec: spec, Snap: snap}).EncodeBytes()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	first := NewCoordinator(MMFSCPU(), 1000)
	if err := first.SetStateDir(dir); err != nil {
		t.Fatalf("state dir: %v", err)
	}
	first.StoreCheckpoint("shard-1", 12, false, blob)

	second := NewCoordinator(MMFSCPU(), 1000)
	if err := second.SetStateDir(dir); err != nil {
		t.Fatalf("reload: %v", err)
	}
	got, bin, ok := second.Checkpoint("shard-1")
	if !ok || bin != 12 || !bytes.Equal(got, blob) {
		t.Fatalf("reloaded checkpoint ok=%v bin=%d, %d bytes vs %d", ok, bin, len(got), len(blob))
	}
	st := second.Status()
	if len(st) != 1 || st[0].Name != "shard-1" || !st[0].Partitioned {
		t.Fatalf("reloaded shard status %+v, want a partitioned shard-1", st)
	}
	// With a live adopter present the reloaded shard becomes offerable
	// once the grace window passes.
	second.Join("helper", 0)
	second.Report(DemandReport{Node: "helper", Bin: 1, Demand: 10})
	waitFor(t, 5*time.Second, "reloaded shard offered", func() bool {
		return len(second.PlanFailover(0, 0)) == 1
	})
}

// TestChainedMigrationAbsoluteBins pins the bin coordinate system
// across hops: a resumed Node counts its own run from zero, so without
// BinOffset the second hop's checkpoint would carry a run-relative bin
// and the third host would reposition the source wrongly. Two drains
// deep, the digests must still match the uninterrupted run.
func TestChainedMigrationAbsoluteBins(t *testing.T) {
	const dur = 4 * time.Second
	g := trace.NewGenerator(trace.CESCA2(9, dur, 0.4))
	batches := trace.Record(g)
	bin := g.TimeBin()
	perInterval := int(time.Second / bin)
	cut1, cut2 := perInterval, 3*perInterval
	capacity := MeasureCapacity(trace.NewMemorySource(batches, bin), snapshotTestQueries(), 77) * 0.7
	spec := migrationSpec(1, capacity)

	sysRef, err := spec.NewSystem()
	if err != nil {
		t.Fatalf("spec system: %v", err)
	}
	want := binDigests(t, sysRef.Run(trace.NewMemorySource(batches, bin)).Bins)

	// Hop 1: drain the original shard at the first interval boundary.
	drain := func(sys *System, offset int64, drainAt int) *ShardCheckpoint {
		t.Helper()
		tr := &captureTransport{drainAfterBin: int64(drainAt)}
		node := NewNode(sys, tr, NodeConfig{Name: "hop", Spec: spec, BinOffset: offset})
		sink := newResultSink(Predictive)
		src := trace.Source(trace.NewMemorySource(batches, bin))
		if offset > 0 {
			src = ResumeSource(src, offset)
		}
		if err := node.StreamContext(context.Background(), src, sink); err != nil {
			t.Fatalf("stream: %v", err)
		}
		if !node.Drained() {
			t.Fatal("node finished instead of draining")
		}
		blobs := tr.checkpoints()
		cp, err := DecodeShardCheckpoint(bytes.NewReader(blobs[len(blobs)-1]))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		want := want[offset:int64(drainAt)]
		if got := binDigests(t, sink.res.Bins); !reflect.DeepEqual(got, want) {
			t.Fatalf("hop bins [%d, %d) diverged", offset, drainAt)
		}
		return cp
	}

	sys1, _ := spec.NewSystem()
	cp1 := drain(sys1, 0, cut1)
	if cp1.Bin != int64(cut1) {
		t.Fatalf("hop-1 checkpoint at bin %d, want %d", cp1.Bin, cut1)
	}

	// Hop 2: adopt, run to the next boundary, drain again. The drain
	// threshold and the resulting checkpoint are both absolute bins —
	// this is exactly what breaks without BinOffset.
	sys2, err := cp1.Spec.NewSystem()
	if err != nil {
		t.Fatalf("rebuild hop 2: %v", err)
	}
	if err := sys2.Restore(cp1.Snap); err != nil {
		t.Fatalf("restore hop 2: %v", err)
	}
	cp2 := drain(sys2, cp1.Bin, cut2)
	if cp2.Bin != int64(cut2) {
		t.Fatalf("hop-2 checkpoint at bin %d, want absolute %d", cp2.Bin, cut2)
	}

	// Hop 3: resume at the hop-2 checkpoint and finish the trace.
	sys3, err := cp2.Spec.NewSystem()
	if err != nil {
		t.Fatalf("rebuild hop 3: %v", err)
	}
	if err := sys3.Restore(cp2.Snap); err != nil {
		t.Fatalf("restore hop 3: %v", err)
	}
	r3 := sys3.Run(ResumeSource(trace.NewMemorySource(batches, bin), cp2.Bin))
	if got := binDigests(t, r3.Bins); !reflect.DeepEqual(got, want[cut2:]) {
		t.Fatalf("hop-3 bins [%d, %d) diverged", cut2, len(want))
	}
}
