package loadshed

// transport.go — how a Node talks to the Coordinator. Two message
// types cross the boundary in either deployment:
//
//	DemandReport  node → coordinator, once per bin
//	BudgetGrant   coordinator → node, once per allocation round
//
// The loopback transport hands both to a Coordinator in the same
// process, synchronously — this is what Cluster wires up, and it makes
// the split refactor observationally invisible (bit-identical results,
// no goroutines, no copies beyond the small report struct).
//
// The TCP transport runs the same protocol over length-prefixed binary
// frames (the framing idiom of internal/trace/live.go: little-endian
// uint16 payload length, then the payload). A connection starts with a
// hello frame naming the worker; the worker then streams report frames
// and the coordinator pushes grant frames on its heartbeat. Workers
// reconnect with backoff after any failure, re-helloing on each attempt
// — which is exactly the rejoin path, since Coordinator.Join clears the
// partitioned flag.
//
// Wire format (all integers little-endian, floats IEEE-754 bits):
//
//	frame      := u16 payloadLen | payload
//	hello      := u8 0x01 | u8 nameLen | name | f64 minShare
//	report     := u8 0x02 | i64 bin | f64 demand | f64 minShare | u8 flags   (flags bit0 = done)
//	grant      := u8 0x03 | u64 round | f64 capacity
//	checkpoint := u8 0x04 | i64 bin | u8 flags | u32 blobLen                 (flags bit0 = final)
//	adopt      := u8 0x05 | u8 nameLen | name | i64 bin | u32 blobLen
//	helloAuth  := u8 0x06 | u8 nameLen | name | f64 minShare | mac[32]
//	drain      := u8 0x07
//	challenge  := u8 0x08 | nonce[16]
//
// Reports and grants never carry the node name: the hello binds the
// connection to a name and everything after inherits it. Checkpoint and
// adopt frames are headers only — the gob ShardCheckpoint blob follows
// raw on the stream, blobLen bytes, because a snapshot does not fit the
// u16 frame cap.
//
// Authentication is a pre-shared-key challenge: a keyed coordinator
// sends a challenge frame on accept and requires the hello in helloAuth
// form, mac = HMAC-SHA256(key, nonce || helloPayload[:len-32]). Keyless
// deployments keep the original byte stream exactly (plain hello, no
// challenge). A mismatch on either side rejects the connection and
// bumps the server's auth-failure counter.

import (
	"bufio"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	ihash "repro/internal/hash"
)

// DemandReport is a node's per-bin message to the coordinator: the
// EWMA-smoothed full-rate demand it would consume without shedding,
// plus the minimum share it negotiated. Done marks the node's final
// report, after its trace ended.
type DemandReport struct {
	Node     string
	Bin      int64
	Demand   float64 // cycles per bin at full rate
	MinShare float64
	Done     bool
}

// BudgetGrant is the coordinator's capacity decision for one node:
// the cycle budget it may burn per bin until the next round.
type BudgetGrant struct {
	Node     string
	Round    uint64
	Capacity float64
}

// NodeTransport is a node's link to the budget coordinator. Report
// sends the node's per-bin demand; Grant returns the most recent
// capacity decision, with ok=false when no sufficiently fresh grant
// exists (coordinator unreachable, no allocation round yet) — the node
// then keeps shedding on its current local capacity. Implementations
// must tolerate Report errors being ignored: coordination is advisory,
// never load-bearing for the node's own run.
type NodeTransport interface {
	Report(r DemandReport) error
	Grant() (BudgetGrant, bool)
	Close() error
}

// CheckpointSender is the optional transport extension a Node uses to
// ship shard checkpoints to the coordinator. Checkpointing is as
// advisory as reporting: errors count, nothing stops.
type CheckpointSender interface {
	Checkpoint(cp *ShardCheckpoint) error
}

// DrainSignaler is the optional transport extension relaying the
// coordinator's drain request (planned migration): when it reports
// true, the Node checkpoints with Final set at its next interval
// boundary and stops.
type DrainSignaler interface {
	DrainRequested() bool
}

// AdoptionReceiver is the optional transport extension surfacing
// adoption offers to the hosting process (not the Node — adopting means
// building a new System next to the existing one, which is the host's
// job; see cmd/lsd). Adoption returns a pending offer at most once.
type AdoptionReceiver interface {
	Adoption() (AdoptOffer, bool)
}

// loopbackTransport binds a node to an in-process Coordinator by
// membership handle, so delivery is a method call and two shards may
// even share a display name without colliding.
type loopbackTransport struct {
	coord *Coordinator
	node  *coordNode
}

// NewLoopback joins a node named name to coord and returns its
// synchronous in-process transport. Grants are fresh for exactly one
// allocation round, mirroring the lockstep cluster loop where every
// round is consumed at the bin barrier that produced it.
func NewLoopback(coord *Coordinator, name string, minShare float64) NodeTransport {
	return &loopbackTransport{coord: coord, node: coord.join(name, minShare)}
}

func (t *loopbackTransport) Report(r DemandReport) error {
	t.coord.reportNode(t.node, r)
	return nil
}

func (t *loopbackTransport) Grant() (BudgetGrant, bool) { return t.coord.grantFor(t.node) }

// Checkpoint retains the encoded checkpoint directly on the in-process
// coordinator (addressed by handle, like reports).
func (t *loopbackTransport) Checkpoint(cp *ShardCheckpoint) error {
	blob, err := cp.EncodeBytes()
	if err != nil {
		return err
	}
	t.coord.storeCheckpointNode(t.node, cp.Bin, cp.Final, blob)
	return nil
}

// DrainRequested polls the coordinator's drain flag for this node.
func (t *loopbackTransport) DrainRequested() bool {
	return t.coord.drainRequestedNode(t.node)
}

// Adoption polls the coordinator for an offer addressed to this node —
// the in-process delivery of what the TCP server pushes as adopt frames.
func (t *loopbackTransport) Adoption() (AdoptOffer, bool) {
	return t.coord.takeOfferFor(t.node)
}

func (t *loopbackTransport) Close() error { return nil }

// --- wire encoding ---

const (
	coordMsgHello      = 0x01
	coordMsgReport     = 0x02
	coordMsgGrant      = 0x03
	coordMsgCheckpoint = 0x04
	coordMsgAdopt      = 0x05
	coordMsgHelloAuth  = 0x06
	coordMsgDrain      = 0x07
	coordMsgChallenge  = 0x08

	reportFlagDone = 0x01
	ckptFlagFinal  = 0x01

	// coordMaxName bounds worker names on the wire (u8 length).
	coordMaxName = 255

	// coordNonceLen/coordMACLen size the auth challenge and its
	// HMAC-SHA256 response.
	coordNonceLen = 16
	coordMACLen   = sha256.Size

	// maxCheckpointBytes bounds the raw blob a checkpoint or adopt
	// header may announce; anything larger is a protocol violation and
	// the connection dies.
	maxCheckpointBytes = 64 << 20

	// ckptRecvTimeout bounds reading a checkpoint blob once its header
	// arrived (the header promised blobLen bytes are already in flight).
	ckptRecvTimeout = 30 * time.Second
)

// ErrCoordinatorUnreachable is returned by CoordClient.Report while no
// connection to the coordinator is up; the caller sheds locally and
// retries next bin while the client redials in the background.
var ErrCoordinatorUnreachable = errors.New("loadshed: coordinator unreachable")

func appendU16Frame(dst []byte, payload func(dst []byte) []byte) []byte {
	off := len(dst)
	dst = append(dst, 0, 0)
	dst = payload(dst)
	binary.LittleEndian.PutUint16(dst[off:], uint16(len(dst)-off-2))
	return dst
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendHelloFrame(dst []byte, name string, minShare float64) []byte {
	return appendU16Frame(dst, func(dst []byte) []byte {
		dst = append(dst, coordMsgHello, byte(len(name)))
		dst = append(dst, name...)
		return appendF64(dst, minShare)
	})
}

func appendReportFrame(dst []byte, r DemandReport) []byte {
	return appendU16Frame(dst, func(dst []byte) []byte {
		dst = append(dst, coordMsgReport)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Bin))
		dst = appendF64(dst, r.Demand)
		dst = appendF64(dst, r.MinShare)
		var flags byte
		if r.Done {
			flags |= reportFlagDone
		}
		return append(dst, flags)
	})
}

func appendGrantFrame(dst []byte, g BudgetGrant) []byte {
	return appendU16Frame(dst, func(dst []byte) []byte {
		dst = append(dst, coordMsgGrant)
		dst = binary.LittleEndian.AppendUint64(dst, g.Round)
		return appendF64(dst, g.Capacity)
	})
}

// appendCheckpointFrame builds the checkpoint header; the caller writes
// blobLen raw blob bytes right after the frame.
func appendCheckpointFrame(dst []byte, bin int64, final bool, blobLen int) []byte {
	return appendU16Frame(dst, func(dst []byte) []byte {
		dst = append(dst, coordMsgCheckpoint)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(bin))
		var flags byte
		if final {
			flags |= ckptFlagFinal
		}
		dst = append(dst, flags)
		return binary.LittleEndian.AppendUint32(dst, uint32(blobLen))
	})
}

// appendAdoptFrame builds the adopt header; the caller appends blobLen
// raw blob bytes right after the frame (one write, so grant pushes
// cannot interleave).
func appendAdoptFrame(dst []byte, shard string, bin int64, blobLen int) []byte {
	return appendU16Frame(dst, func(dst []byte) []byte {
		dst = append(dst, coordMsgAdopt, byte(len(shard)))
		dst = append(dst, shard...)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(bin))
		return binary.LittleEndian.AppendUint32(dst, uint32(blobLen))
	})
}

func appendDrainFrame(dst []byte) []byte {
	return appendU16Frame(dst, func(dst []byte) []byte {
		return append(dst, coordMsgDrain)
	})
}

func appendChallengeFrame(dst []byte, nonce []byte) []byte {
	return appendU16Frame(dst, func(dst []byte) []byte {
		dst = append(dst, coordMsgChallenge)
		return append(dst, nonce...)
	})
}

// appendHelloAuthFrame is the hello in authenticated form: the plain
// hello payload followed by HMAC-SHA256(key, nonce || payload).
func appendHelloAuthFrame(dst []byte, name string, minShare float64, key string, nonce []byte) []byte {
	return appendU16Frame(dst, func(dst []byte) []byte {
		start := len(dst)
		dst = append(dst, coordMsgHelloAuth, byte(len(name)))
		dst = append(dst, name...)
		dst = appendF64(dst, minShare)
		mac := helloMAC(key, nonce, dst[start:])
		return append(dst, mac...)
	})
}

// helloMAC computes HMAC-SHA256(key, nonce || payload).
func helloMAC(key string, nonce, payload []byte) []byte {
	h := hmac.New(sha256.New, []byte(key))
	h.Write(nonce)
	h.Write(payload)
	return h.Sum(nil)
}

// readCoordFrame reads one length-prefixed frame into buf (grown as
// needed) and returns the payload; the payload is only valid until the
// next call with the same buf.
func readCoordFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint16(hdr[:]))
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func decodeHello(p []byte) (name string, minShare float64, ok bool) {
	if len(p) < 2 {
		return "", 0, false
	}
	nl := int(p[1])
	if len(p) != 2+nl+8 {
		return "", 0, false
	}
	name = string(p[2 : 2+nl])
	minShare = math.Float64frombits(binary.LittleEndian.Uint64(p[2+nl:]))
	return name, minShare, name != ""
}

func decodeReport(p []byte) (DemandReport, bool) {
	if len(p) != 1+8+8+8+1 {
		return DemandReport{}, false
	}
	return DemandReport{
		Bin:      int64(binary.LittleEndian.Uint64(p[1:])),
		Demand:   math.Float64frombits(binary.LittleEndian.Uint64(p[9:])),
		MinShare: math.Float64frombits(binary.LittleEndian.Uint64(p[17:])),
		Done:     p[25]&reportFlagDone != 0,
	}, true
}

func decodeGrant(p []byte) (BudgetGrant, bool) {
	if len(p) != 1+8+8 {
		return BudgetGrant{}, false
	}
	return BudgetGrant{
		Round:    binary.LittleEndian.Uint64(p[1:]),
		Capacity: math.Float64frombits(binary.LittleEndian.Uint64(p[9:])),
	}, true
}

// decodeHelloAuth verifies and decodes an authenticated hello against
// the server's key and the nonce it challenged with.
func decodeHelloAuth(p []byte, key string, nonce []byte) (name string, minShare float64, ok bool) {
	if len(p) < 2+8+coordMACLen {
		return "", 0, false
	}
	nl := int(p[1])
	if len(p) != 2+nl+8+coordMACLen {
		return "", 0, false
	}
	body, mac := p[:len(p)-coordMACLen], p[len(p)-coordMACLen:]
	if !hmac.Equal(mac, helloMAC(key, nonce, body)) {
		return "", 0, false
	}
	name = string(p[2 : 2+nl])
	minShare = math.Float64frombits(binary.LittleEndian.Uint64(p[2+nl:]))
	return name, minShare, name != ""
}

func decodeCheckpointHdr(p []byte) (bin int64, final bool, blobLen int, ok bool) {
	if len(p) != 1+8+1+4 {
		return 0, false, 0, false
	}
	bin = int64(binary.LittleEndian.Uint64(p[1:]))
	final = p[9]&ckptFlagFinal != 0
	blobLen = int(binary.LittleEndian.Uint32(p[10:]))
	return bin, final, blobLen, blobLen <= maxCheckpointBytes
}

func decodeAdoptHdr(p []byte) (shard string, bin int64, blobLen int, ok bool) {
	if len(p) < 2+8+4 {
		return "", 0, 0, false
	}
	nl := int(p[1])
	if len(p) != 2+nl+8+4 {
		return "", 0, 0, false
	}
	shard = string(p[2 : 2+nl])
	bin = int64(binary.LittleEndian.Uint64(p[2+nl:]))
	blobLen = int(binary.LittleEndian.Uint32(p[2+nl+8:]))
	return shard, bin, blobLen, shard != "" && blobLen <= maxCheckpointBytes
}

// --- TCP server (coordinator side) ---

// CoordServerConfig tunes the coordinator's heartbeat state machine.
type CoordServerConfig struct {
	// Heartbeat is the allocation cadence: every tick the coordinator
	// runs AllocateLease over the reports received so far and pushes
	// fresh grants to every connected worker. Default 500ms.
	Heartbeat time.Duration
	// Lease is how long a silent worker stays in the allocation before
	// being marked partitioned (its budget then redistributes to the
	// survivors). Default 3×Heartbeat. Workers use the same value to
	// judge grant freshness, so keep the two sides configured alike.
	Lease time.Duration
	// Grace is how long past the lease a partitioned shard waits before
	// its checkpoint is offered for adoption — the window in which a
	// transient stall rejoins without a failover. Default 2×Lease.
	Grace time.Duration
	// OfferTimeout is how long an issued adoption offer suppresses
	// re-offering; past it the shard re-offers to the next live
	// candidate. Default 2×Lease.
	OfferTimeout time.Duration
	// Key enables pre-shared-key authentication: connections must answer
	// the HMAC-SHA256 challenge or are rejected (and counted). Empty
	// keeps the unauthenticated protocol byte-for-byte.
	Key string
}

func (c CoordServerConfig) withDefaults() CoordServerConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.Lease <= 0 {
		c.Lease = 3 * c.Heartbeat
	}
	if c.Grace <= 0 {
		c.Grace = 2 * c.Lease
	}
	if c.OfferTimeout <= 0 {
		c.OfferTimeout = 2 * c.Lease
	}
	return c
}

// CoordServer exposes a Coordinator over TCP: it accepts worker
// connections, folds their report streams into the coordinator, and on
// every heartbeat allocates and pushes grants back. Close stops the
// listener, the heartbeat, and every worker connection.
type CoordServer struct {
	coord *Coordinator
	cfg   CoordServerConfig
	ln    net.Listener

	mu    sync.Mutex
	conns map[string]*coordConn

	quit    chan struct{}
	wg      sync.WaitGroup
	closing atomic.Bool

	authFailures atomic.Int64
}

// AuthFailures returns how many connections failed the pre-shared-key
// handshake (lsd_coord_auth_failures_total).
func (s *CoordServer) AuthFailures() int64 { return s.authFailures.Load() }

// coordConn serializes grant pushes to one worker connection.
type coordConn struct {
	mu sync.Mutex
	c  net.Conn
}

func (cc *coordConn) send(frame []byte, timeout time.Duration) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.c.SetWriteDeadline(time.Now().Add(timeout))
	_, err := cc.c.Write(frame)
	cc.c.SetWriteDeadline(time.Time{})
	return err
}

// ServeCoordinator serves coord on ln until Close. The listener is
// adopted: Close closes it.
func ServeCoordinator(ln net.Listener, coord *Coordinator, cfg CoordServerConfig) *CoordServer {
	s := &CoordServer{
		coord: coord,
		cfg:   cfg.withDefaults(),
		ln:    ln,
		conns: make(map[string]*coordConn),
		quit:  make(chan struct{}),
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.heartbeatLoop()
	return s
}

// Addr returns the listening address.
func (s *CoordServer) Addr() net.Addr { return s.ln.Addr() }

// Coordinator returns the coordinator being served (for status planes).
func (s *CoordServer) Coordinator() *Coordinator { return s.coord }

// Close shuts the server down: no new connections, no more heartbeats,
// all worker connections closed.
func (s *CoordServer) Close() error {
	if s.closing.Swap(true) {
		return nil
	}
	close(s.quit)
	err := s.ln.Close()
	s.mu.Lock()
	for _, cc := range s.conns {
		cc.c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *CoordServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

func (s *CoordServer) handleConn(c net.Conn) {
	defer s.wg.Done()
	br := bufio.NewReaderSize(c, 512)

	// A keyed server opens with a challenge; the hello must then arrive
	// in authenticated form. Keyless servers never write the challenge,
	// keeping the original byte stream exactly.
	var nonce []byte
	if s.cfg.Key != "" {
		nonce = make([]byte, coordNonceLen)
		if _, err := rand.Read(nonce); err != nil {
			c.Close()
			return
		}
		c.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Write(appendChallengeFrame(nil, nonce)); err != nil {
			c.Close()
			return
		}
		c.SetWriteDeadline(time.Time{})
	}

	// The hello must arrive promptly; everything after is paced by the
	// worker's bins, so no deadline applies to the report stream.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := readCoordFrame(br, nil)
	if err != nil || len(frame) < 1 {
		c.Close()
		return
	}
	var (
		name     string
		minShare float64
		ok       bool
	)
	switch {
	case s.cfg.Key == "" && frame[0] == coordMsgHello:
		name, minShare, ok = decodeHello(frame)
	case s.cfg.Key != "" && frame[0] == coordMsgHelloAuth:
		name, minShare, ok = decodeHelloAuth(frame, s.cfg.Key, nonce)
		if !ok {
			s.authFailures.Add(1) // bad MAC: wrong key
		}
	case frame[0] == coordMsgHello || frame[0] == coordMsgHelloAuth:
		// Keyed server got a plain hello, or keyless got an authenticated
		// one: a key mismatch between the two sides either way.
		s.authFailures.Add(1)
	}
	if !ok {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	s.coord.Join(name, minShare)

	cc := &coordConn{c: c}
	s.mu.Lock()
	if old := s.conns[name]; old != nil {
		old.c.Close() // a reconnecting worker supersedes its stale conn
	}
	s.conns[name] = cc
	s.mu.Unlock()

readLoop:
	for {
		frame, err = readCoordFrame(br, frame)
		if err != nil {
			break
		}
		if len(frame) < 1 {
			continue
		}
		switch frame[0] {
		case coordMsgReport:
			if r, ok := decodeReport(frame); ok {
				r.Node = name
				s.coord.Report(r)
			}
		case coordMsgCheckpoint:
			bin, final, blobLen, ok := decodeCheckpointHdr(frame)
			if !ok {
				break readLoop // oversized or malformed header: protocol violation
			}
			// The blob follows raw; it was fully serialized before the
			// header was sent, so a bounded deadline is safe.
			blob := make([]byte, blobLen)
			c.SetReadDeadline(time.Now().Add(ckptRecvTimeout))
			if _, err = io.ReadFull(br, blob); err != nil {
				break readLoop
			}
			c.SetReadDeadline(time.Time{})
			s.coord.StoreCheckpoint(name, bin, final, blob)
		}
	}

	s.mu.Lock()
	if s.conns[name] == cc {
		delete(s.conns, name)
	}
	s.mu.Unlock()
	c.Close()
}

func (s *CoordServer) heartbeatLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.Heartbeat)
	defer ticker.Stop()
	var grants []BudgetGrant
	var frame []byte
	var drains []string
	for {
		select {
		case <-s.quit:
			return
		case <-ticker.C:
		}
		s.coord.AllocateLease(s.cfg.Lease)
		grants = s.coord.currentGrants(grants)
		for _, g := range grants {
			s.mu.Lock()
			cc := s.conns[g.Node]
			s.mu.Unlock()
			if cc == nil {
				continue
			}
			frame = appendGrantFrame(frame[:0], g)
			if cc.send(frame, s.cfg.Heartbeat) != nil {
				cc.c.Close() // reader notices and unregisters
			}
		}
		// Relay pending drains. The frame re-sends every heartbeat until
		// the final checkpoint lands (idempotent on the worker side), so
		// a lost frame only delays the drain one heartbeat.
		drains = s.coord.drainTargets(drains)
		for _, name := range drains {
			s.mu.Lock()
			cc := s.conns[name]
			s.mu.Unlock()
			if cc == nil {
				continue
			}
			frame = appendDrainFrame(frame[:0])
			if cc.send(frame, s.cfg.Heartbeat) != nil {
				cc.c.Close()
			}
		}
		// Push adoption offers for orphaned shards. Header and blob go
		// in one send so grant pushes cannot interleave mid-blob. A
		// failed or undeliverable push withdraws the offer, so the next
		// heartbeat re-plans instead of waiting out the offer timeout.
		for _, o := range s.coord.PlanFailover(s.cfg.Grace, s.cfg.OfferTimeout) {
			s.mu.Lock()
			cc := s.conns[o.Adopter]
			s.mu.Unlock()
			if cc == nil {
				s.coord.clearOffer(o.Shard)
				continue
			}
			buf := appendAdoptFrame(nil, o.Shard, o.Bin, len(o.Blob))
			buf = append(buf, o.Blob...)
			timeout := s.cfg.Heartbeat
			if timeout < 2*time.Second {
				timeout = 2 * time.Second // blobs outweigh grant frames
			}
			if cc.send(buf, timeout) != nil {
				cc.c.Close()
				s.coord.clearOffer(o.Shard)
			}
		}
	}
}

// --- TCP client (worker side) ---

// CoordClientConfig tunes a worker's coordinator link.
type CoordClientConfig struct {
	// MinShare is the demand fraction announced in the hello (see
	// Shard.MinShare).
	MinShare float64
	// Lease bounds grant freshness: a grant older than this is ignored
	// and the worker degrades to local-only shedding. Default 1.5s —
	// 3× the default server heartbeat; match it to the server's Lease.
	Lease time.Duration
	// DialTimeout bounds each (re)connection attempt and each report
	// write. Default 2s.
	DialTimeout time.Duration
	// RetryMin/RetryMax bound the reconnect backoff. Defaults 100ms/2s.
	// Each wait is jittered to [backoff/2, backoff), with the jitter
	// stream seeded from the worker name, so a fleet that lost its
	// coordinator does not redial in lockstep yet every run of a given
	// worker waits the same deterministic schedule.
	RetryMin time.Duration
	RetryMax time.Duration
	// Key must match the coordinator's -cluster-key when it has one:
	// the client then answers the server's HMAC-SHA256 challenge in its
	// hello. Empty speaks the unauthenticated protocol.
	Key string
}

func (c CoordClientConfig) withDefaults() CoordClientConfig {
	if c.Lease <= 0 {
		c.Lease = 1500 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	return c
}

// CoordClient is a worker's NodeTransport over TCP. It maintains the
// connection in the background — dialing, re-helloing after every
// reconnect (the rejoin path), and folding pushed grants into a leased
// local copy — so Report and Grant never block on the network beyond a
// single bounded write.
type CoordClient struct {
	addr string
	name string
	cfg  CoordClientConfig

	mu      sync.Mutex
	conn    net.Conn
	grant   BudgetGrant
	grantAt time.Time
	wbuf    []byte

	quit       chan struct{}
	wg         sync.WaitGroup
	closed     atomic.Bool
	connected  atomic.Bool
	reconnects atomic.Int64

	// Failover surface: pushed adoption offers queue here for the host
	// process; drainReq latches a pushed drain frame for the Node's
	// boundary hook. rng drives the reconnect jitter.
	adoptCh      chan AdoptOffer
	adoptDropped atomic.Int64
	drainReq     atomic.Bool
	rng          *ihash.XorShift
}

// DialCoordinator connects a worker named name to the coordinator at
// addr. The first dial happens synchronously so configuration errors
// surface immediately; if it fails, the returned client is still live
// and keeps retrying in the background (the worker starts degraded and
// joins when the coordinator appears), so a non-nil error with a
// non-nil client is a warning, not a failure. Only an invalid name
// returns a nil client.
func DialCoordinator(addr, name string, cfg CoordClientConfig) (*CoordClient, error) {
	if name == "" || len(name) > coordMaxName {
		return nil, fmt.Errorf("loadshed: worker name must be 1..%d bytes, got %d", coordMaxName, len(name))
	}
	c := &CoordClient{
		addr: addr, name: name, cfg: cfg.withDefaults(), quit: make(chan struct{}),
		adoptCh: make(chan AdoptOffer, 8),
		rng:     ihash.NewXorShift(fnv64a(name)),
	}
	err := c.connect()
	c.wg.Add(1)
	go c.maintain()
	return c, err
}

// fnv64a hashes a worker name into its jitter seed (FNV-1a).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// backoffJitter spreads a backoff wait over [d/2, d), drawn from the
// client's name-seeded stream: deterministic per worker, decorrelated
// across a fleet.
func backoffJitter(rng *ihash.XorShift, d time.Duration) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Float64()*float64(d-half))
}

// Name returns the worker name announced to the coordinator.
func (c *CoordClient) Name() string { return c.name }

// Connected reports whether a coordinator connection is currently up.
func (c *CoordClient) Connected() bool { return c.connected.Load() }

// Degraded reports whether the worker is currently shedding on local
// capacity only, i.e. holds no grant fresher than the lease.
func (c *CoordClient) Degraded() bool {
	_, ok := c.Grant()
	return !ok
}

// Reconnects returns how many times the background loop re-established
// the connection after a loss (or an initially unreachable coordinator).
func (c *CoordClient) Reconnects() int64 { return c.reconnects.Load() }

func (c *CoordClient) connect() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	var hello []byte
	if c.cfg.Key != "" {
		// A keyed client expects the challenge before anything else. The
		// frame is read with exact reads straight off the conn — no
		// bufio, so no read-ahead swallows bytes that belong to the
		// grant stream readGrants will own.
		nonce, err := readChallengeConn(conn, c.cfg.DialTimeout)
		if err != nil {
			conn.Close()
			return fmt.Errorf("loadshed: coordinator auth: %w (keyless coordinator or wrong address?)", err)
		}
		hello = appendHelloAuthFrame(nil, c.name, c.cfg.MinShare, c.cfg.Key, nonce)
	} else {
		hello = appendHelloFrame(nil, c.name, c.cfg.MinShare)
	}
	conn.SetWriteDeadline(time.Now().Add(c.cfg.DialTimeout))
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return err
	}
	conn.SetWriteDeadline(time.Time{})
	c.mu.Lock()
	c.conn = conn
	c.mu.Unlock()
	c.connected.Store(true)
	return nil
}

// readChallengeConn reads the server's challenge frame with exact reads
// on the bare connection and returns the nonce.
func readChallengeConn(conn net.Conn, timeout time.Duration) ([]byte, error) {
	conn.SetReadDeadline(time.Now().Add(timeout))
	defer conn.SetReadDeadline(time.Time{})
	var hdr [2]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, fmt.Errorf("no challenge: %w", err)
	}
	n := int(binary.LittleEndian.Uint16(hdr[:]))
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, fmt.Errorf("truncated challenge: %w", err)
	}
	if n != 1+coordNonceLen || payload[0] != coordMsgChallenge {
		return nil, errors.New("unexpected frame where challenge expected")
	}
	return payload[1:], nil
}

func (c *CoordClient) current() net.Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn
}

func (c *CoordClient) drop(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
		c.connected.Store(false)
	}
	c.mu.Unlock()
}

func (c *CoordClient) maintain() {
	defer c.wg.Done()
	backoff := c.cfg.RetryMin
	for !c.closed.Load() {
		conn := c.current()
		if conn == nil {
			select {
			case <-c.quit:
				return
			case <-time.After(backoffJitter(c.rng, backoff)):
			}
			backoff *= 2
			if backoff > c.cfg.RetryMax {
				backoff = c.cfg.RetryMax
			}
			if c.connect() == nil {
				c.reconnects.Add(1)
				backoff = c.cfg.RetryMin
			}
			continue
		}
		c.readGrants(conn) // blocks until the connection dies
		c.drop(conn)
	}
}

// readGrants drains coordinator pushes from conn: grants into the
// leased local copy, drain requests into the latch, adoption offers
// (header + raw blob) into the host's queue.
func (c *CoordClient) readGrants(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 256)
	var buf []byte
	for {
		frame, err := readCoordFrame(br, buf)
		if err != nil {
			return
		}
		buf = frame
		if len(frame) < 1 {
			continue
		}
		switch frame[0] {
		case coordMsgGrant:
			if g, ok := decodeGrant(frame); ok {
				g.Node = c.name
				c.mu.Lock()
				c.grant = g
				c.grantAt = time.Now()
				c.mu.Unlock()
			}
		case coordMsgDrain:
			c.drainReq.Store(true)
		case coordMsgAdopt:
			shard, bin, blobLen, ok := decodeAdoptHdr(frame)
			if !ok {
				return // malformed push: drop the conn, redial clean
			}
			blob := make([]byte, blobLen)
			if _, err := io.ReadFull(br, blob); err != nil {
				return
			}
			select {
			case c.adoptCh <- AdoptOffer{Shard: shard, Bin: bin, Checkpoint: blob}:
			default:
				// Queue full: drop; the coordinator re-offers after its
				// offer timeout, and likely elsewhere.
				c.adoptDropped.Add(1)
			}
		}
	}
}

// Report sends a demand report; while disconnected it returns
// ErrCoordinatorUnreachable and the caller proceeds on local capacity.
func (c *CoordClient) Report(r DemandReport) error {
	c.mu.Lock()
	conn := c.conn
	if conn == nil {
		c.mu.Unlock()
		return ErrCoordinatorUnreachable
	}
	c.wbuf = appendReportFrame(c.wbuf[:0], r)
	conn.SetWriteDeadline(time.Now().Add(c.cfg.DialTimeout))
	_, err := conn.Write(c.wbuf)
	conn.SetWriteDeadline(time.Time{})
	c.mu.Unlock()
	if err != nil {
		c.drop(conn) // the maintain loop redials and re-joins
	}
	return err
}

// Checkpoint ships a shard checkpoint to the coordinator: the header
// frame and the gob blob in one locked write, so report frames cannot
// interleave. While disconnected it returns ErrCoordinatorUnreachable
// — checkpointing is advisory and the next boundary retries.
func (c *CoordClient) Checkpoint(cp *ShardCheckpoint) error {
	blob, err := cp.EncodeBytes()
	if err != nil {
		return err
	}
	if len(blob) > maxCheckpointBytes {
		return fmt.Errorf("loadshed: checkpoint blob %d bytes exceeds the %d wire cap", len(blob), maxCheckpointBytes)
	}
	c.mu.Lock()
	conn := c.conn
	if conn == nil {
		c.mu.Unlock()
		return ErrCoordinatorUnreachable
	}
	c.wbuf = appendCheckpointFrame(c.wbuf[:0], cp.Bin, cp.Final, len(blob))
	c.wbuf = append(c.wbuf, blob...)
	conn.SetWriteDeadline(time.Now().Add(ckptRecvTimeout))
	_, err = conn.Write(c.wbuf)
	conn.SetWriteDeadline(time.Time{})
	c.mu.Unlock()
	if err != nil {
		c.drop(conn)
	}
	return err
}

// DrainRequested reports whether the coordinator pushed a drain frame
// on this link (it latches; the worker process is expected to act once
// and exit the shard).
func (c *CoordClient) DrainRequested() bool { return c.drainReq.Load() }

// Adoption returns a pending adoption offer, if any (non-blocking; each
// offer is returned once).
func (c *CoordClient) Adoption() (AdoptOffer, bool) {
	select {
	case o := <-c.adoptCh:
		return o, true
	default:
		return AdoptOffer{}, false
	}
}

// Adoptions exposes the offer queue for select-based hosts (cmd/lsd's
// adoption loop); Adoption and Adoptions drain the same queue.
func (c *CoordClient) Adoptions() <-chan AdoptOffer { return c.adoptCh }

// Grant returns the latest pushed grant while it is lease-fresh.
func (c *CoordClient) Grant() (BudgetGrant, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.grantAt.IsZero() || time.Since(c.grantAt) > c.cfg.Lease {
		return BudgetGrant{}, false
	}
	return c.grant, true
}

// Close stops the background loop and closes any live connection.
func (c *CoordClient) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.quit)
	if conn := c.current(); conn != nil {
		c.drop(conn)
	}
	c.wg.Wait()
	return nil
}
