package loadshed

// transport.go — how a Node talks to the Coordinator. Two message
// types cross the boundary in either deployment:
//
//	DemandReport  node → coordinator, once per bin
//	BudgetGrant   coordinator → node, once per allocation round
//
// The loopback transport hands both to a Coordinator in the same
// process, synchronously — this is what Cluster wires up, and it makes
// the split refactor observationally invisible (bit-identical results,
// no goroutines, no copies beyond the small report struct).
//
// The TCP transport runs the same protocol over length-prefixed binary
// frames (the framing idiom of internal/trace/live.go: little-endian
// uint16 payload length, then the payload). A connection starts with a
// hello frame naming the worker; the worker then streams report frames
// and the coordinator pushes grant frames on its heartbeat. Workers
// reconnect with backoff after any failure, re-helloing on each attempt
// — which is exactly the rejoin path, since Coordinator.Join clears the
// partitioned flag.
//
// Wire format (all integers little-endian, floats IEEE-754 bits):
//
//	frame   := u16 payloadLen | payload
//	hello   := u8 0x01 | u8 nameLen | name | f64 minShare
//	report  := u8 0x02 | i64 bin | f64 demand | f64 minShare | u8 flags   (flags bit0 = done)
//	grant   := u8 0x03 | u64 round | f64 capacity
//
// Reports and grants never carry the node name: the hello binds the
// connection to a name and everything after inherits it.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// DemandReport is a node's per-bin message to the coordinator: the
// EWMA-smoothed full-rate demand it would consume without shedding,
// plus the minimum share it negotiated. Done marks the node's final
// report, after its trace ended.
type DemandReport struct {
	Node     string
	Bin      int64
	Demand   float64 // cycles per bin at full rate
	MinShare float64
	Done     bool
}

// BudgetGrant is the coordinator's capacity decision for one node:
// the cycle budget it may burn per bin until the next round.
type BudgetGrant struct {
	Node     string
	Round    uint64
	Capacity float64
}

// NodeTransport is a node's link to the budget coordinator. Report
// sends the node's per-bin demand; Grant returns the most recent
// capacity decision, with ok=false when no sufficiently fresh grant
// exists (coordinator unreachable, no allocation round yet) — the node
// then keeps shedding on its current local capacity. Implementations
// must tolerate Report errors being ignored: coordination is advisory,
// never load-bearing for the node's own run.
type NodeTransport interface {
	Report(r DemandReport) error
	Grant() (BudgetGrant, bool)
	Close() error
}

// loopbackTransport binds a node to an in-process Coordinator by
// membership handle, so delivery is a method call and two shards may
// even share a display name without colliding.
type loopbackTransport struct {
	coord *Coordinator
	node  *coordNode
}

// NewLoopback joins a node named name to coord and returns its
// synchronous in-process transport. Grants are fresh for exactly one
// allocation round, mirroring the lockstep cluster loop where every
// round is consumed at the bin barrier that produced it.
func NewLoopback(coord *Coordinator, name string, minShare float64) NodeTransport {
	return &loopbackTransport{coord: coord, node: coord.join(name, minShare)}
}

func (t *loopbackTransport) Report(r DemandReport) error {
	t.coord.reportNode(t.node, r)
	return nil
}

func (t *loopbackTransport) Grant() (BudgetGrant, bool) { return t.coord.grantFor(t.node) }

func (t *loopbackTransport) Close() error { return nil }

// --- wire encoding ---

const (
	coordMsgHello  = 0x01
	coordMsgReport = 0x02
	coordMsgGrant  = 0x03

	reportFlagDone = 0x01

	// coordMaxName bounds worker names on the wire (u8 length).
	coordMaxName = 255
)

// ErrCoordinatorUnreachable is returned by CoordClient.Report while no
// connection to the coordinator is up; the caller sheds locally and
// retries next bin while the client redials in the background.
var ErrCoordinatorUnreachable = errors.New("loadshed: coordinator unreachable")

func appendU16Frame(dst []byte, payload func(dst []byte) []byte) []byte {
	off := len(dst)
	dst = append(dst, 0, 0)
	dst = payload(dst)
	binary.LittleEndian.PutUint16(dst[off:], uint16(len(dst)-off-2))
	return dst
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendHelloFrame(dst []byte, name string, minShare float64) []byte {
	return appendU16Frame(dst, func(dst []byte) []byte {
		dst = append(dst, coordMsgHello, byte(len(name)))
		dst = append(dst, name...)
		return appendF64(dst, minShare)
	})
}

func appendReportFrame(dst []byte, r DemandReport) []byte {
	return appendU16Frame(dst, func(dst []byte) []byte {
		dst = append(dst, coordMsgReport)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Bin))
		dst = appendF64(dst, r.Demand)
		dst = appendF64(dst, r.MinShare)
		var flags byte
		if r.Done {
			flags |= reportFlagDone
		}
		return append(dst, flags)
	})
}

func appendGrantFrame(dst []byte, g BudgetGrant) []byte {
	return appendU16Frame(dst, func(dst []byte) []byte {
		dst = append(dst, coordMsgGrant)
		dst = binary.LittleEndian.AppendUint64(dst, g.Round)
		return appendF64(dst, g.Capacity)
	})
}

// readCoordFrame reads one length-prefixed frame into buf (grown as
// needed) and returns the payload; the payload is only valid until the
// next call with the same buf.
func readCoordFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint16(hdr[:]))
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func decodeHello(p []byte) (name string, minShare float64, ok bool) {
	if len(p) < 2 {
		return "", 0, false
	}
	nl := int(p[1])
	if len(p) != 2+nl+8 {
		return "", 0, false
	}
	name = string(p[2 : 2+nl])
	minShare = math.Float64frombits(binary.LittleEndian.Uint64(p[2+nl:]))
	return name, minShare, name != ""
}

func decodeReport(p []byte) (DemandReport, bool) {
	if len(p) != 1+8+8+8+1 {
		return DemandReport{}, false
	}
	return DemandReport{
		Bin:      int64(binary.LittleEndian.Uint64(p[1:])),
		Demand:   math.Float64frombits(binary.LittleEndian.Uint64(p[9:])),
		MinShare: math.Float64frombits(binary.LittleEndian.Uint64(p[17:])),
		Done:     p[25]&reportFlagDone != 0,
	}, true
}

func decodeGrant(p []byte) (BudgetGrant, bool) {
	if len(p) != 1+8+8 {
		return BudgetGrant{}, false
	}
	return BudgetGrant{
		Round:    binary.LittleEndian.Uint64(p[1:]),
		Capacity: math.Float64frombits(binary.LittleEndian.Uint64(p[9:])),
	}, true
}

// --- TCP server (coordinator side) ---

// CoordServerConfig tunes the coordinator's heartbeat state machine.
type CoordServerConfig struct {
	// Heartbeat is the allocation cadence: every tick the coordinator
	// runs AllocateLease over the reports received so far and pushes
	// fresh grants to every connected worker. Default 500ms.
	Heartbeat time.Duration
	// Lease is how long a silent worker stays in the allocation before
	// being marked partitioned (its budget then redistributes to the
	// survivors). Default 3×Heartbeat. Workers use the same value to
	// judge grant freshness, so keep the two sides configured alike.
	Lease time.Duration
}

func (c CoordServerConfig) withDefaults() CoordServerConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.Lease <= 0 {
		c.Lease = 3 * c.Heartbeat
	}
	return c
}

// CoordServer exposes a Coordinator over TCP: it accepts worker
// connections, folds their report streams into the coordinator, and on
// every heartbeat allocates and pushes grants back. Close stops the
// listener, the heartbeat, and every worker connection.
type CoordServer struct {
	coord *Coordinator
	cfg   CoordServerConfig
	ln    net.Listener

	mu    sync.Mutex
	conns map[string]*coordConn

	quit    chan struct{}
	wg      sync.WaitGroup
	closing atomic.Bool
}

// coordConn serializes grant pushes to one worker connection.
type coordConn struct {
	mu sync.Mutex
	c  net.Conn
}

func (cc *coordConn) send(frame []byte, timeout time.Duration) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.c.SetWriteDeadline(time.Now().Add(timeout))
	_, err := cc.c.Write(frame)
	cc.c.SetWriteDeadline(time.Time{})
	return err
}

// ServeCoordinator serves coord on ln until Close. The listener is
// adopted: Close closes it.
func ServeCoordinator(ln net.Listener, coord *Coordinator, cfg CoordServerConfig) *CoordServer {
	s := &CoordServer{
		coord: coord,
		cfg:   cfg.withDefaults(),
		ln:    ln,
		conns: make(map[string]*coordConn),
		quit:  make(chan struct{}),
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.heartbeatLoop()
	return s
}

// Addr returns the listening address.
func (s *CoordServer) Addr() net.Addr { return s.ln.Addr() }

// Coordinator returns the coordinator being served (for status planes).
func (s *CoordServer) Coordinator() *Coordinator { return s.coord }

// Close shuts the server down: no new connections, no more heartbeats,
// all worker connections closed.
func (s *CoordServer) Close() error {
	if s.closing.Swap(true) {
		return nil
	}
	close(s.quit)
	err := s.ln.Close()
	s.mu.Lock()
	for _, cc := range s.conns {
		cc.c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *CoordServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

func (s *CoordServer) handleConn(c net.Conn) {
	defer s.wg.Done()
	br := bufio.NewReaderSize(c, 512)

	// The hello must arrive promptly; everything after is paced by the
	// worker's bins, so no deadline applies to the report stream.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := readCoordFrame(br, nil)
	if err != nil || len(frame) < 1 || frame[0] != coordMsgHello {
		c.Close()
		return
	}
	name, minShare, ok := decodeHello(frame)
	if !ok {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	s.coord.Join(name, minShare)

	cc := &coordConn{c: c}
	s.mu.Lock()
	if old := s.conns[name]; old != nil {
		old.c.Close() // a reconnecting worker supersedes its stale conn
	}
	s.conns[name] = cc
	s.mu.Unlock()

	for {
		frame, err = readCoordFrame(br, frame)
		if err != nil {
			break
		}
		if len(frame) >= 1 && frame[0] == coordMsgReport {
			if r, ok := decodeReport(frame); ok {
				r.Node = name
				s.coord.Report(r)
			}
		}
	}

	s.mu.Lock()
	if s.conns[name] == cc {
		delete(s.conns, name)
	}
	s.mu.Unlock()
	c.Close()
}

func (s *CoordServer) heartbeatLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.Heartbeat)
	defer ticker.Stop()
	var grants []BudgetGrant
	var frame []byte
	for {
		select {
		case <-s.quit:
			return
		case <-ticker.C:
		}
		s.coord.AllocateLease(s.cfg.Lease)
		grants = s.coord.currentGrants(grants)
		for _, g := range grants {
			s.mu.Lock()
			cc := s.conns[g.Node]
			s.mu.Unlock()
			if cc == nil {
				continue
			}
			frame = appendGrantFrame(frame[:0], g)
			if cc.send(frame, s.cfg.Heartbeat) != nil {
				cc.c.Close() // reader notices and unregisters
			}
		}
	}
}

// --- TCP client (worker side) ---

// CoordClientConfig tunes a worker's coordinator link.
type CoordClientConfig struct {
	// MinShare is the demand fraction announced in the hello (see
	// Shard.MinShare).
	MinShare float64
	// Lease bounds grant freshness: a grant older than this is ignored
	// and the worker degrades to local-only shedding. Default 1.5s —
	// 3× the default server heartbeat; match it to the server's Lease.
	Lease time.Duration
	// DialTimeout bounds each (re)connection attempt and each report
	// write. Default 2s.
	DialTimeout time.Duration
	// RetryMin/RetryMax bound the reconnect backoff. Defaults 100ms/2s.
	RetryMin time.Duration
	RetryMax time.Duration
}

func (c CoordClientConfig) withDefaults() CoordClientConfig {
	if c.Lease <= 0 {
		c.Lease = 1500 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	return c
}

// CoordClient is a worker's NodeTransport over TCP. It maintains the
// connection in the background — dialing, re-helloing after every
// reconnect (the rejoin path), and folding pushed grants into a leased
// local copy — so Report and Grant never block on the network beyond a
// single bounded write.
type CoordClient struct {
	addr string
	name string
	cfg  CoordClientConfig

	mu      sync.Mutex
	conn    net.Conn
	grant   BudgetGrant
	grantAt time.Time
	wbuf    []byte

	quit       chan struct{}
	wg         sync.WaitGroup
	closed     atomic.Bool
	connected  atomic.Bool
	reconnects atomic.Int64
}

// DialCoordinator connects a worker named name to the coordinator at
// addr. The first dial happens synchronously so configuration errors
// surface immediately; if it fails, the returned client is still live
// and keeps retrying in the background (the worker starts degraded and
// joins when the coordinator appears), so a non-nil error with a
// non-nil client is a warning, not a failure. Only an invalid name
// returns a nil client.
func DialCoordinator(addr, name string, cfg CoordClientConfig) (*CoordClient, error) {
	if name == "" || len(name) > coordMaxName {
		return nil, fmt.Errorf("loadshed: worker name must be 1..%d bytes, got %d", coordMaxName, len(name))
	}
	c := &CoordClient{addr: addr, name: name, cfg: cfg.withDefaults(), quit: make(chan struct{})}
	err := c.connect()
	c.wg.Add(1)
	go c.maintain()
	return c, err
}

// Name returns the worker name announced to the coordinator.
func (c *CoordClient) Name() string { return c.name }

// Connected reports whether a coordinator connection is currently up.
func (c *CoordClient) Connected() bool { return c.connected.Load() }

// Degraded reports whether the worker is currently shedding on local
// capacity only, i.e. holds no grant fresher than the lease.
func (c *CoordClient) Degraded() bool {
	_, ok := c.Grant()
	return !ok
}

// Reconnects returns how many times the background loop re-established
// the connection after a loss (or an initially unreachable coordinator).
func (c *CoordClient) Reconnects() int64 { return c.reconnects.Load() }

func (c *CoordClient) connect() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	hello := appendHelloFrame(nil, c.name, c.cfg.MinShare)
	conn.SetWriteDeadline(time.Now().Add(c.cfg.DialTimeout))
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return err
	}
	conn.SetWriteDeadline(time.Time{})
	c.mu.Lock()
	c.conn = conn
	c.mu.Unlock()
	c.connected.Store(true)
	return nil
}

func (c *CoordClient) current() net.Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn
}

func (c *CoordClient) drop(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
		c.connected.Store(false)
	}
	c.mu.Unlock()
}

func (c *CoordClient) maintain() {
	defer c.wg.Done()
	backoff := c.cfg.RetryMin
	for !c.closed.Load() {
		conn := c.current()
		if conn == nil {
			select {
			case <-c.quit:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > c.cfg.RetryMax {
				backoff = c.cfg.RetryMax
			}
			if c.connect() == nil {
				c.reconnects.Add(1)
				backoff = c.cfg.RetryMin
			}
			continue
		}
		c.readGrants(conn) // blocks until the connection dies
		c.drop(conn)
	}
}

// readGrants drains grant frames from conn into the leased local copy.
func (c *CoordClient) readGrants(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 256)
	var buf []byte
	for {
		frame, err := readCoordFrame(br, buf)
		if err != nil {
			return
		}
		buf = frame
		if len(frame) >= 1 && frame[0] == coordMsgGrant {
			if g, ok := decodeGrant(frame); ok {
				g.Node = c.name
				c.mu.Lock()
				c.grant = g
				c.grantAt = time.Now()
				c.mu.Unlock()
			}
		}
	}
}

// Report sends a demand report; while disconnected it returns
// ErrCoordinatorUnreachable and the caller proceeds on local capacity.
func (c *CoordClient) Report(r DemandReport) error {
	c.mu.Lock()
	conn := c.conn
	if conn == nil {
		c.mu.Unlock()
		return ErrCoordinatorUnreachable
	}
	c.wbuf = appendReportFrame(c.wbuf[:0], r)
	conn.SetWriteDeadline(time.Now().Add(c.cfg.DialTimeout))
	_, err := conn.Write(c.wbuf)
	conn.SetWriteDeadline(time.Time{})
	c.mu.Unlock()
	if err != nil {
		c.drop(conn) // the maintain loop redials and re-joins
	}
	return err
}

// Grant returns the latest pushed grant while it is lease-fresh.
func (c *CoordClient) Grant() (BudgetGrant, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.grantAt.IsZero() || time.Since(c.grantAt) > c.cfg.Lease {
		return BudgetGrant{}, false
	}
	return c.grant, true
}

// Close stops the background loop and closes any live connection.
func (c *CoordClient) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.quit)
	if conn := c.current(); conn != nil {
		c.drop(conn)
	}
	c.wg.Wait()
	return nil
}
