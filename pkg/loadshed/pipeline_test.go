package loadshed

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/queries"
	"repro/internal/trace"
)

// pipeCfg is an overloaded predictive setup whose runs include DAG-drop
// bins, so pipelined runs exercise the mis-speculation path (the front
// stage's wire-batch sketch is invalidated by tail drop and the back
// stage re-sketches the admitted prefix).
func pipeCfg(workers int) Config {
	return Config{
		Scheme:         Predictive,
		Capacity:       2e6,
		BufferBins:     1,
		Strategy:       MMFSPkt(),
		Seed:           42,
		SpikeProb:      0.02,
		CustomShedding: true,
		Workers:        workers,
	}
}

func pipeRun(cfg Config) *RunResult {
	return New(cfg, AllQueries(QueryConfig{Seed: 42})).Run(testSource(12, 6*time.Second))
}

// TestPipelineMatchesSequential is the tentpole contract: for any
// Workers count the two-deep bin pipeline produces a RunResult
// bit-identical to the strictly sequential engine — bins, intervals,
// RNG-dependent spikes and all — because the front stage only ever
// computes the pure sketch half of extraction and everything stateful
// stays in bin order. The config is overloaded enough to tail-drop, so
// the speculative sketch's fallback path is proven too, and the run is
// checked against NoPipeline at the same Workers count to pin the
// escape hatch.
func TestPipelineMatchesSequential(t *testing.T) {
	seq := pipeRun(pipeCfg(1))
	if seq.TotalDrops() == 0 {
		t.Fatal("config produced no DAG drops; the mis-speculation path is not exercised")
	}
	for _, workers := range []int{2, 4, 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			par := pipeRun(pipeCfg(workers))
			if len(par.Bins) != len(seq.Bins) {
				t.Fatalf("%d bins vs %d sequential", len(par.Bins), len(seq.Bins))
			}
			for i := range seq.Bins {
				if !reflect.DeepEqual(seq.Bins[i], par.Bins[i]) {
					t.Fatalf("bin %d diverged\nseq: %+v\npip: %+v", i, seq.Bins[i], par.Bins[i])
				}
			}
			if !reflect.DeepEqual(seq.Intervals, par.Intervals) {
				t.Fatal("interval query results diverged")
			}
			cfg := pipeCfg(workers)
			cfg.NoPipeline = true
			noPipe := pipeRun(cfg)
			if !reflect.DeepEqual(seq.Bins, noPipe.Bins) || !reflect.DeepEqual(seq.Intervals, noPipe.Intervals) {
				t.Fatal("NoPipeline run diverged from the sequential engine")
			}
		})
	}
}

// TestTransientStreamMatchesRunPipelined extends the recycling-fast-path
// proof to the bin pipeline: a pipelined Stream into a transient sink —
// reused Stats slices, recycled interval results AND the double-buffered
// slot ring — must deliver exactly the values of the sequential
// allocating Run, mid-run arrivals included.
func TestTransientStreamMatchesRunPipelined(t *testing.T) {
	mkSys := func(workers int) *System {
		cfg := streamCfg(21)
		cfg.Workers = workers
		cfg.CustomShedding = true
		cfg.Arrivals = []Arrival{{AtBin: 13, Make: func() queries.Query {
			return queries.NewCounter(queries.Config{Seed: 4})
		}}}
		return New(cfg, queries.FullSet(queries.Config{Seed: 21}))
	}
	want := mkSys(1).Run(testSource(5, 5*time.Second))
	wantBins, wantIvs := digestRun(want)

	for _, workers := range []int{2, 4} {
		var got digestSink
		mkSys(workers).Stream(testSource(5, 5*time.Second), &got)
		if got.bins != wantBins || got.intervals != wantIvs {
			t.Fatalf("workers=%d: pipelined transient stream diverged from sequential Run: bins %v vs %v, intervals %v vs %v",
				workers, got.bins, wantBins, got.intervals, wantIvs)
		}
	}
}

// TestRollingStatsPipelinedStream consumes a pipelined stream through
// RollingStats — the transient sink whose window still references the
// last delivered records when the ring hands a slot back to the front
// stage — and requires the snapshot to match a sequential stream's.
func TestRollingStatsPipelinedStream(t *testing.T) {
	snap := func(workers int) RollingSnapshot {
		cfg := streamCfg(17)
		cfg.Workers = workers
		roll := NewRollingStats(40)
		New(cfg, stdQueries()).Stream(testSource(11, 5*time.Second), roll)
		return roll.Snapshot()
	}
	want := snap(1)
	for _, workers := range []int{2, 4} {
		if got := snap(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: rolling snapshot diverged\nseq: %+v\npip: %+v", workers, want, got)
		}
	}
}

// TestPipelineSteadyStateAllocs proves the slot ring adds no per-bin
// allocations: with warmed Systems streaming into a transient sink from
// a recorded source, the allocation growth from doubling the trace
// length must be the same pipelined as sequential. (The growth itself
// is not zero — interval flushes cost a few allocations per flush on
// both paths — so the guard compares marginal cost, which isolates
// exactly what the ring, the staging sketches and the pools add: it
// must be nothing.)
func TestPipelineSteadyStateAllocs(t *testing.T) {
	batches := trace.Record(testSource(19, 6*time.Second))
	long := trace.NewMemorySource(batches, trace.DefaultTimeBin)
	short := trace.NewMemorySource(batches[:len(batches)/2], trace.DefaultTimeBin)

	growth := func(workers int) float64 {
		cfg := streamCfg(23)
		cfg.Workers = workers
		sys := New(cfg, stdQueries())
		sink := NewRollingStats(30)
		// Warm every scratch buffer, the ring, and the predictors'
		// history rings — an overloaded run skips Observe on withheld
		// bins, so one pass does not fill all 60 history slots.
		for i := 0; i < 3; i++ {
			sys.Stream(long, sink)
		}
		aShort := testing.AllocsPerRun(5, func() { sys.Stream(short, sink) })
		aLong := testing.AllocsPerRun(5, func() { sys.Stream(long, sink) })
		return aLong - aShort
	}

	seq := growth(1)
	// Workers=4: slots, staging sketches, staticPool and the exec pool
	// are all in play. Allow one alloc of jitter — AllocsPerRun rounds
	// an occasional background-GC hiccup into the count.
	if pipe := growth(4); pipe > seq+1 {
		t.Fatalf("pipelined stream allocates in steady state: growth %v allocs vs sequential %v over %d extra bins",
			pipe, seq, len(batches)-len(batches)/2)
	}
}

// TestClusterPipelinedShardsDeterminism runs the sharded engine with
// pipelined shards — every shard gets its own front goroutine and slot
// ring — against fully sequential shards. The coordinator must see
// identical per-bin records either way, because each shard's SetCapacity
// lands between that shard's bins exactly as before.
func TestClusterPipelinedShardsDeterminism(t *testing.T) {
	mkCluster := func(shardWorkers int) *Cluster {
		links := SplitFlows(testSource(4, 3*time.Second), 2, 5)
		shards := make([]Shard, len(links))
		for i, l := range links {
			shards[i] = Shard{Source: l, Queries: stdQueries()}
		}
		return NewCluster(ClusterConfig{
			Base:          Config{Scheme: Predictive, Seed: 8, Strategy: MMFSPkt(), Workers: shardWorkers},
			TotalCapacity: 6e6,
			ShardPolicy:   MMFSCPU(),
			Runners:       2,
		}, shards)
	}
	want := mkCluster(1).Run()
	got := mkCluster(2).Run()
	for i := range want.Shards {
		if !reflect.DeepEqual(want.Shards[i].Result, got.Shards[i].Result) {
			t.Fatalf("shard %d diverged between sequential and pipelined shards", i)
		}
		if !reflect.DeepEqual(want.Shards[i].Capacities, got.Shards[i].Capacities) {
			t.Fatalf("shard %d: coordinator grants diverged", i)
		}
	}
}

// TestPipelineReleasesGoroutines pins the per-run lifecycle: the front
// goroutine exits with the trace and finish() releases the sketch pool,
// so a System that has finished streaming holds no goroutines — Systems
// are created in bulk by benchmarks and experiments, and a persistent
// pool would leak with each one.
func TestPipelineReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := streamCfg(27)
	cfg.Workers = 7 // front pool of 2 helpers plus the front goroutine
	sys := New(cfg, stdQueries())
	for i := 0; i < 3; i++ {
		sys.Stream(testSource(7, 2*time.Second), nil)
	}
	var after int
	for i := 0; i < 50; i++ { // workers unwind asynchronously after close
		if after = runtime.NumGoroutine(); after <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after pipelined streams finished", before, after)
}
