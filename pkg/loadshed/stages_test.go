package loadshed

// Stage-level tests: the admit stage's capture-buffer model, the
// reactive Eq. 4.1 update, the shed-stream interval rotation and the
// ModeDisabled observation guard — all white-box against a System
// driven one stage or one bin at a time.

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/custom"
	"repro/internal/features"
	"repro/internal/pkt"
	"repro/internal/queries"
)

// nPktBatch builds a synthetic batch of n identical-size packets.
func nPktBatch(n int) pkt.Batch {
	pkts := make([]pkt.Packet, n)
	for i := range pkts {
		pkts[i] = pkt.Packet{Ts: int64(i), SrcIP: uint32(i), Size: 100, Proto: pkt.ProtoTCP}
	}
	return pkt.Batch{Bin: 100 * time.Millisecond, Pkts: pkts}
}

func counterOnly() []queries.Query {
	return []queries.Query{queries.NewCounter(queries.Config{Seed: 1})}
}

// TestAdmitBufferModel drives the admit stage directly: a delay is
// injected into the governor, and the stage must produce the §4.1 soft
// occupancy signal at 75% of the buffer and the uncontrolled DAG drop
// fraction min(1, occupancy − BufferBins) beyond it.
func TestAdmitBufferModel(t *testing.T) {
	const (
		capacity   = 1000.0
		bufferBins = 10.0
		npkts      = 200
	)
	cases := []struct {
		name      string
		delay     float64 // injected backlog, cycles
		wantDrops int
		wantLoss  bool
		wantAdmit int
		unlimited bool
	}{
		{name: "empty buffer", delay: 0, wantDrops: 0, wantLoss: false, wantAdmit: npkts},
		{name: "half full", delay: 5000, wantDrops: 0, wantLoss: false, wantAdmit: npkts},
		{name: "soft signal above 75%", delay: 8000, wantDrops: 0, wantLoss: true, wantAdmit: npkts},
		{name: "overflow drops the excess fraction", delay: 10500, wantDrops: 100, wantLoss: true, wantAdmit: 100},
		{name: "deep overflow drops everything", delay: 13000, wantDrops: 200, wantLoss: true, wantAdmit: 0},
		{name: "unlimited capacity never drops", delay: 13000, wantDrops: 0, wantLoss: false, wantAdmit: npkts, unlimited: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Scheme: Predictive, Capacity: capacity, BufferBins: bufferBins, Seed: 1}
			if tc.unlimited {
				cfg.Capacity = math.Inf(1)
			}
			s := New(cfg, counterOnly())
			// Inject the backlog: an overhead-only bin leaves exactly
			// delay cycles pending (QueryAvail < 0 keeps rtthresh at 0).
			s.gov.Observe(core.Feedback{Overhead: capacity + tc.delay, QueryAvail: -1})
			if !tc.unlimited && s.gov.Delay() != tc.delay {
				t.Fatalf("injected delay %v, governor holds %v", tc.delay, s.gov.Delay())
			}
			b := nPktBatch(npkts)
			bc := s.newBinContext(0, &b)
			s.admit(bc)
			if bc.Stats.DropPkts != tc.wantDrops {
				t.Errorf("DropPkts = %d, want %d", bc.Stats.DropPkts, tc.wantDrops)
			}
			if bc.Stats.AdmitPkts != tc.wantAdmit {
				t.Errorf("AdmitPkts = %d, want %d", bc.Stats.AdmitPkts, tc.wantAdmit)
			}
			if bc.bufferLoss != tc.wantLoss {
				t.Errorf("bufferLoss = %v, want %v", bc.bufferLoss, tc.wantLoss)
			}
			if !tc.unlimited {
				if wantOcc := tc.delay / capacity; bc.Stats.BufferBins != wantOcc {
					t.Errorf("BufferBins = %v, want %v", bc.Stats.BufferBins, wantOcc)
				}
			}
		})
	}
}

// TestAdmitTailDrop is the regression test for the drop-direction bug:
// the admit stage modelled buffer overflow as admitted[nDrop:], i.e.
// dropping the *oldest* packets, but a full DAG buffer loses the newest
// arrivals — the ones that find it full (§4.1). The surviving packets
// must be the head of the bin, in order, and the dropped ones its tail.
func TestAdmitTailDrop(t *testing.T) {
	const (
		capacity   = 1000.0
		bufferBins = 10.0
		npkts      = 200
	)
	s := New(Config{Scheme: Predictive, Capacity: capacity, BufferBins: bufferBins, Seed: 1}, counterOnly())
	// 10.5 bins of backlog: 0.5 bins beyond the buffer, so half the
	// batch drops.
	s.gov.Observe(core.Feedback{Overhead: capacity + 10500, QueryAvail: -1})
	b := nPktBatch(npkts)
	bc := s.newBinContext(0, &b)
	s.admit(bc)

	if bc.Stats.DropPkts != npkts/2 {
		t.Fatalf("DropPkts = %d, want %d", bc.Stats.DropPkts, npkts/2)
	}
	admitted := bc.Admitted.Pkts
	if len(admitted) != npkts/2 {
		t.Fatalf("admitted %d packets, want %d", len(admitted), npkts/2)
	}
	for i := range admitted {
		// nPktBatch stamps Ts = arrival order: survivors must be the
		// earliest packets, not the latest.
		if admitted[i].Ts != int64(i) {
			t.Fatalf("admitted[%d].Ts = %d: buffer overflow dropped buffered packets instead of new arrivals", i, admitted[i].Ts)
		}
	}
}

// TestReactiveRateUpdate pins the Eq. 4.1 update:
// srate_t = min(1, max(α, srate_{t-1} · (capacity − overhead − delay) / consumed_{t-1})).
func TestReactiveRateUpdate(t *testing.T) {
	const capacity = 1000.0
	const alpha = 0.01
	cases := []struct {
		name     string
		prevRate float64
		consumed float64
		delay    float64
		overhead float64
		want     float64
	}{
		{name: "cold start runs full rate", prevRate: 1, consumed: 0, overhead: 200, want: 1},
		{name: "overrun halves the rate", prevRate: 1, consumed: 1600, overhead: 200, want: 0.5},
		{name: "recovery caps at 1", prevRate: 0.5, consumed: 250, overhead: 200, delay: 300, want: 1},
		{name: "negative availability floors at alpha", prevRate: 0.5, consumed: 1000, overhead: 900, delay: 200, want: alpha},
		{name: "growth from deep shed", prevRate: 0.2, consumed: 100, overhead: 0, want: 1},
		{name: "proportional shrink with delay", prevRate: 0.8, consumed: 1000, overhead: 100, delay: 400, want: 0.8 * 500 / 1000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{Scheme: Reactive, Capacity: capacity, ReactiveMinRate: alpha, Seed: 1}, counterOnly())
			s.reactiveRate = tc.prevRate
			s.lastConsumed = tc.consumed
			s.reactiveDelay = tc.delay
			b := nPktBatch(10)
			bc := s.newBinContext(0, &b)
			bc.overhead = tc.overhead
			s.decideShedding(bc)
			for i, r := range bc.rates {
				if math.Abs(r-tc.want) > 1e-12 {
					t.Fatalf("rates[%d] = %v, want %v", i, r, tc.want)
				}
			}
			if math.Abs(s.reactiveRate-tc.want) > 1e-12 {
				t.Fatalf("reactiveRate = %v, want %v", s.reactiveRate, tc.want)
			}
		})
	}
}

// TestShedStreamIntervalRotation is the regression test for the stale
// shed-stream state bug: System.startInterval rotated the global and
// per-query extractors but not the shared shed-stream extractor, so its
// interval bitmaps accumulated across measurement intervals and every
// sampled query's new-item features were computed against stale state.
// After two intervals of overloaded (sampling) operation, an interval
// boundary must leave the shed extractor bit-identical to a fresh
// extractor — the oracle.
func TestShedStreamIntervalRotation(t *testing.T) {
	const dur = 3 * time.Second
	demand := MeasureDemand(testSource(21, dur), stdQueries(), 99)
	sys := New(Config{Scheme: Predictive, Capacity: demand / 3, Seed: 7}, stdQueries())
	r := sys.newRunner(testSource(21, dur), nil)
	for i := 0; i < 2*r.binsPerInterval; i++ {
		if !r.step() {
			t.Fatalf("trace ended at bin %d", i)
		}
	}
	if sys.shedExt.Ops == 0 {
		t.Fatal("shed-stream re-extraction never ran; the run is not overloaded enough to test rotation")
	}
	dirty := false
	for _, e := range sys.shedExt.IntervalEstimates() {
		if e > 0 {
			dirty = true
		}
	}
	if !dirty {
		t.Fatal("shed extractor carries no interval state; test is vacuous")
	}
	sys.startInterval()
	oracle := features.NewExtractor(123).IntervalEstimates()
	if got := sys.shedExt.IntervalEstimates(); !reflect.DeepEqual(got, oracle) {
		t.Fatalf("stale shed-stream interval state survived the boundary:\ngot  %v\nwant %v", got, oracle)
	}
}

// escalateToDisabled walks a custom-shedding query down the enforcement
// ladder by feeding the manager bins that massively overuse their
// allocation: ViolationLimit violations reach ModePoliced, another
// round reaches ModeDisabled.
func escalateToDisabled(t *testing.T, sys *System, st *custom.State) {
	t.Helper()
	for i := 0; st.Mode() != custom.ModeDisabled; i++ {
		if i > 100 {
			t.Fatalf("query never reached ModeDisabled (mode %v after %d audits)", st.Mode(), i)
		}
		sys.manager.Demand(st, 1000)
		sys.manager.Apply(st, 0.5)
		sys.manager.Audit(st, 1e9, 1000)
	}
}

// TestDisabledQuerySkipsObservation: a ModeDisabled query processes an
// empty batch at residual cost; feeding that (empty features, near-zero
// cost) pair to the predictor would poison the MLR history exactly like
// the rate-0 custom case the code already guards.
func TestDisabledQuerySkipsObservation(t *testing.T) {
	qs := []queries.Query{
		queries.NewP2PDetector(queries.Config{Seed: 1}),
		queries.NewCounter(queries.Config{Seed: 1}),
	}
	sys := New(Config{
		Scheme: Predictive, Capacity: 1e7, Seed: 1,
		CustomShedding: true, Strategy: MMFSPkt(),
	}, qs)
	p2p := sys.qs[0]
	if p2p.shed == nil {
		t.Fatal("p2p-detector did not register for custom shedding")
	}
	escalateToDisabled(t, sys, p2p.shed)

	p2pBefore := p2p.mlr.History().Len()
	counterBefore := sys.qs[1].mlr.History().Len()
	b := nPktBatch(50)
	stats := sys.step(0, &b)

	if got := p2p.mlr.History().Len(); got != p2pBefore {
		t.Fatalf("disabled query's MLR history grew %d -> %d: empty-batch observation poisoned the model", p2pBefore, got)
	}
	if stats.Rates[0] != 0 {
		t.Fatalf("disabled query ran at rate %v, want 0", stats.Rates[0])
	}
	// The healthy neighbour must still learn.
	if got := sys.qs[1].mlr.History().Len(); got != counterBefore+1 {
		t.Fatalf("counter history %d -> %d, want one new observation", counterBefore, got)
	}
}

// TestArrivalRejectsMismatchedInterval: mid-run Arrivals must face the
// same interval-equality check New applies, at arrival time.
func TestArrivalRejectsMismatchedInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched arrival interval")
		}
	}()
	cfg := Config{
		Scheme: NoShed, Seed: 1,
		Arrivals: []Arrival{{AtBin: 2, Make: func() queries.Query {
			return queries.NewCounter(queries.Config{Interval: 2 * time.Second})
		}}},
	}
	New(cfg, stdQueries()).Run(testSource(1, 2*time.Second))
}
