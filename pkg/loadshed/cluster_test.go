package loadshed

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/queries"
	"repro/internal/sched"
	"repro/internal/trace"
)

// testClusterShards builds a small asymmetric 3-link cluster: link 0
// swamped by an on/off DDoS for the middle half of the run, the other
// two calm.
func testClusterShards(dur time.Duration) []Shard {
	links := AsymmetricMix(3, dur, 0.05, 3)
	shards := make([]Shard, len(links))
	for i, l := range links {
		shards[i] = Shard{
			Name:   l.Name,
			Source: trace.NewGenerator(l.Config),
			Queries: []queries.Query{
				queries.NewFlows(queries.Config{Seed: uint64(i)}),
				queries.NewCounter(queries.Config{Seed: uint64(i)}),
			},
		}
	}
	return shards
}

// clusterCapacity sizes the machine for the headline scenario: the calm
// links fit comfortably, the attacked link's full (attack-inclusive)
// demand does not — only budget moved off the calm links can absorb it.
func clusterCapacity(tb testing.TB, dur time.Duration) float64 {
	tb.Helper()
	var total float64
	for i, sh := range testClusterShards(dur) {
		c := MeasureCapacity(sh.Source, sh.Queries, 77)
		if i == 0 {
			c *= 0.6
		}
		total += c
	}
	return total
}

func runTestCluster(policy sched.Strategy, runners int, total float64, dur time.Duration) *ClusterResult {
	return NewCluster(ClusterConfig{
		Base:          Config{Scheme: Predictive, Strategy: MMFSPkt(), Seed: 42},
		TotalCapacity: total,
		ShardPolicy:   policy,
		Runners:       runners,
	}, testClusterShards(dur)).Run()
}

// TestClusterDeterminism is the shard-runner contract: a cluster run is
// bit-identical whether shards step on one goroutine or many, because
// every shard owns all of its state and the coordinator runs at a
// barrier between bins, reading shards in index order.
func TestClusterDeterminism(t *testing.T) {
	const dur = 5 * time.Second
	total := clusterCapacity(t, dur)
	seq := runTestCluster(MMFSCPU(), 1, total, dur)
	for _, runners := range []int{2, 8} {
		par := runTestCluster(MMFSCPU(), runners, total, dur)
		if len(par.Shards) != len(seq.Shards) {
			t.Fatalf("runners=%d: shard count diverged", runners)
		}
		for i := range seq.Shards {
			if !reflect.DeepEqual(seq.Shards[i], par.Shards[i]) {
				t.Fatalf("runners=%d: shard %s diverged from sequential run", runners, seq.Shards[i].Name)
			}
		}
		if !reflect.DeepEqual(seq.Aggregate, par.Aggregate) {
			t.Fatalf("runners=%d: aggregate bins diverged", runners)
		}
	}
}

// TestClusterStaticSplitMatchesIsolatedSystems: with a nil policy the
// cluster is exactly N independent shedders — each shard's record must
// be bit-identical to a standalone System run at 1/N of the budget.
func TestClusterStaticSplitMatchesIsolatedSystems(t *testing.T) {
	const dur = 4 * time.Second
	total := clusterCapacity(t, dur)
	res := runTestCluster(nil, 4, total, dur)
	shards := testClusterShards(dur)
	for i, sh := range shards {
		solo := New(Config{
			Scheme:   Predictive,
			Strategy: MMFSPkt(),
			Seed:     42 + uint64(i)*0x9e3779b97f4a7c15,
			Capacity: total / float64(len(shards)),
			Workers:  1,
		}, sh.Queries).Run(sh.Source)
		if !reflect.DeepEqual(res.Shards[i].Result, solo) {
			t.Fatalf("shard %s under static split diverged from an isolated System", res.Shards[i].Name)
		}
	}
}

// TestClusterCoordinatorAbsorbsAsymmetricOverload is the headline
// scenario: a DDoS swamps one link while the others idle. The
// coordinator steals budget from the idle links, so aggregate accuracy
// must beat the static equal split, and the attacked link must receive
// more than its 1/N share during the attack.
func TestClusterCoordinatorAbsorbsAsymmetricOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster accuracy comparison is slow")
	}
	const dur = 12 * time.Second
	total := clusterCapacity(t, dur)
	coord := runTestCluster(MMFSCPU(), 4, total, dur)
	static := runTestCluster(nil, 4, total, dur)

	aggErr := func(res *ClusterResult) float64 {
		shards := testClusterShards(dur) // fresh sources and metric queries
		var sum float64
		n := 0
		for i, sh := range res.Shards {
			ref := Reference(shards[i].Source, shards[i].Queries, 77)
			for _, e := range MeanErrors(shards[i].Queries, sh.Result, ref) {
				sum += e
				n++
			}
		}
		return sum / float64(n)
	}
	ce, se := aggErr(coord), aggErr(static)
	t.Logf("aggregate mean error: coordinated %.4f, static %.4f", ce, se)
	if ce >= se {
		t.Fatalf("coordinated error %.4f not better than static split %.4f", ce, se)
	}

	// During the attack window the hot shard must hold more than its
	// equal share of the machine.
	hot := coord.Shards[0]
	nBins := len(hot.Capacities)
	var peak float64
	for _, c := range hot.Capacities[nBins/4 : nBins*3/4] {
		if c > peak {
			peak = c
		}
	}
	if equal := total / 3; peak <= equal {
		t.Fatalf("coordinator never granted the attacked link more than its equal share (peak %.3g <= %.3g)", peak, equal)
	}
}

// BenchmarkCluster prices the cluster loop itself: four pre-recorded
// links stepped in lockstep, swept over runner counts. On one CPU the
// series is flat (no pool overhead); otherwise it scales with cores.
//
//	go test -bench Cluster -benchtime 5x ./pkg/loadshed
func BenchmarkCluster(b *testing.B) {
	const dur = 3 * time.Second
	links := AsymmetricMix(3, dur, 0.05, 4)
	batches := make([]*trace.MemorySource, len(links))
	var total float64
	for i, l := range links {
		g := trace.NewGenerator(l.Config)
		batches[i] = trace.NewMemorySource(trace.Record(g), g.TimeBin())
		total += MeasureCapacity(batches[i], []queries.Query{
			queries.NewFlows(queries.Config{Seed: uint64(i)}),
			queries.NewCounter(queries.Config{Seed: uint64(i)}),
		}, 77)
	}
	total /= 2
	for _, runners := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("runners=%d", runners), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				shards := make([]Shard, len(links))
				for j := range links {
					shards[j] = Shard{
						Name:   links[j].Name,
						Source: batches[j],
						Queries: []queries.Query{
							queries.NewFlows(queries.Config{Seed: uint64(j)}),
							queries.NewCounter(queries.Config{Seed: uint64(j)}),
						},
					}
				}
				NewCluster(ClusterConfig{
					Base:          Config{Scheme: Predictive, Strategy: MMFSPkt(), Seed: 42},
					TotalCapacity: total,
					ShardPolicy:   MMFSCPU(),
					Runners:       runners,
				}, shards).Run()
			}
		})
	}
}
