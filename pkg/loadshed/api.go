package loadshed

// api.go re-exports the pieces of the internal packages an embedder
// needs next to the engine — queries, strategies, traffic sources and
// trace files — so that cmd/, examples/ and downstream users build
// whole pipelines against this package alone without reaching into
// internal/.

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/custom"
	"repro/internal/detect"
	"repro/internal/pkt"
	"repro/internal/queries"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Core re-exported types.
type (
	// Query is a black-box monitoring application (Table 2.2).
	Query = queries.Query
	// QueryConfig carries query construction tunables.
	QueryConfig = queries.Config
	// Result is one query's answer for a measurement interval.
	Result = queries.Result
	// CostModel converts a query's counted operations into cycles.
	CostModel = queries.CostModel
	// Strategy decides per-query sampling rates under overload (Ch. 5).
	Strategy = sched.Strategy
	// Source produces a trace one batch at a time.
	Source = trace.Source
	// TraceConfig parameterizes the synthetic traffic generator.
	TraceConfig = trace.Config
	// Generator is the deterministic synthetic traffic source.
	Generator = trace.Generator
	// TraceStats summarizes a trace like Table 2.3 reports its datasets.
	TraceStats = trace.Stats
	// Anomaly injects attack traffic into a generated trace.
	Anomaly = trace.Anomaly
	// ShedderMode is a custom-shedding query's enforcement mode (§6.1.1).
	ShedderMode = custom.Mode
	// DetectConfig tunes the online drift detector (Config.Detect).
	DetectConfig = detect.Config
)

// Strategies.

// EqualRates returns the Chapter 4 strategy: one global sampling rate.
// With respectMinRates it becomes the eq_srates baseline of Chapter 5.
func EqualRates(respectMinRates bool) Strategy {
	return sched.EqualRates{RespectMinRates: respectMinRates}
}

// MMFSCPU returns max-min fair share in CPU cycles (§5.2.1).
func MMFSCPU() Strategy { return sched.MMFSCPU{} }

// MMFSPkt returns max-min fair share in packet access (§5.2.2), the
// paper's preferred strategy.
func MMFSPkt() Strategy { return sched.MMFSPkt{} }

// StrategyByName maps the names used in figures and on command lines —
// "equal", "eq_srates", "mmfs_cpu", "mmfs_pkt" — to strategies.
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "equal":
		return sched.EqualRates{}, nil
	case "eq_srates":
		return sched.EqualRates{RespectMinRates: true}, nil
	case "mmfs_cpu":
		return sched.MMFSCPU{}, nil
	case "mmfs_pkt":
		return sched.MMFSPkt{}, nil
	default:
		return nil, fmt.Errorf("loadshed: unknown strategy %q", name)
	}
}

// ParseScheme maps a scheme name — "predictive", "reactive",
// "original", "none"/"no_lshed" — to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	switch strings.ToLower(name) {
	case "predictive":
		return Predictive, nil
	case "reactive":
		return Reactive, nil
	case "original":
		return Original, nil
	case "none", "noshed", "no_lshed":
		return NoShed, nil
	default:
		return 0, fmt.Errorf("loadshed: unknown scheme %q", name)
	}
}

// Queries.

// StandardQueries returns the seven-query set of the Chapter 3/4
// evaluation.
func StandardQueries(cfg QueryConfig) []Query { return queries.StandardSet(cfg) }

// AllQueries returns all ten Table 2.2 queries.
func AllQueries(cfg QueryConfig) []Query { return queries.FullSet(cfg) }

// Individual query constructors, for building custom sets.
var (
	// NewCounter counts packets and bytes.
	NewCounter = queries.NewCounter
	// NewFlows counts distinct 5-tuple flows.
	NewFlows = queries.NewFlows
	// NewTopK tracks the k busiest destinations.
	NewTopK = queries.NewTopK
	// NewP2PDetector classifies p2p traffic and can shed its own load
	// (Chapter 6).
	NewP2PDetector = queries.NewP2PDetector
)

// NewSelfishP2P returns a p2p-detector that ignores custom shed
// requests — the adversary the enforcement policy must contain (§6.3.4).
func NewSelfishP2P(cfg QueryConfig) Query {
	return custom.NewSelfish(queries.NewP2PDetector(cfg))
}

// NewBuggyP2P returns a p2p-detector whose shedding implementation is
// broken (§6.3.5).
func NewBuggyP2P(cfg QueryConfig) Query {
	return custom.NewBuggy(queries.NewP2PDetector(cfg))
}

// Traffic generation.

// NewGenerator builds a deterministic synthetic traffic source.
func NewGenerator(cfg TraceConfig) *Generator { return trace.NewGenerator(cfg) }

// IPv4 packs four octets into the packed address form packets use.
func IPv4(a, b, c, d byte) uint32 { return pkt.IPv4(a, b, c, d) }

// Dataset presets approximating the paper's traces (Table 2.3).
var (
	CESCA1  = trace.CESCA1
	CESCA2  = trace.CESCA2
	Abilene = trace.Abilene
	CENIC   = trace.CENIC
	UPC1    = trace.UPC1
	UPC2    = trace.UPC2
)

// presets is the single source of the dataset-preset names, in the
// order Table 2.3 lists the captures.
var presets = []struct {
	name string
	mk   func(seed uint64, dur time.Duration, scale float64) TraceConfig
}{
	{"cesca1", trace.CESCA1},
	{"cesca2", trace.CESCA2},
	{"abilene", trace.Abilene},
	{"cenic", trace.CENIC},
	{"upc1", trace.UPC1},
	{"upc2", trace.UPC2},
}

// PresetNames lists the dataset presets PresetConfig accepts.
func PresetNames() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.name
	}
	return out
}

// PresetConfig returns the named dataset preset's generator config.
func PresetConfig(name string, seed uint64, dur time.Duration, scale float64) (TraceConfig, error) {
	for _, p := range presets {
		if p.name == strings.ToLower(name) {
			return p.mk(seed, dur, scale), nil
		}
	}
	return TraceConfig{}, fmt.Errorf("loadshed: unknown preset %q", name)
}

// Anomaly constructors.
var (
	// NewSYNFlood builds the spoofed SYN flood of §4.5.5.
	NewSYNFlood = trace.NewSYNFlood
	// NewOnOffDDoS builds the 1 s on / 1 s off spoofed DDoS of §3.4.3.
	NewOnOffDDoS = trace.NewOnOffDDoS
	// NewGradualDrift builds a slow traffic-mix drift that shifts the
	// relation between header features and query cost (no step change).
	NewGradualDrift = trace.NewGradualDrift
	// NewFlashCrowd builds a legitimate-traffic surge onto one server.
	NewFlashCrowd = trace.NewFlashCrowd
	// NewTopologyShift builds a routing-style shift onto fresh address
	// space (RFC 2544/benchmark prefixes).
	NewTopologyShift = trace.NewTopologyShift
)

// Multi-link helpers (see cluster.go for the Cluster itself).

// LinkPreset pairs a link name with a traffic profile for cluster runs.
type LinkPreset = trace.LinkPreset

// AsymmetricMix returns n link profiles with all the overload on link 0
// (a DDoS-swamped link among calm ones), the headline Cluster scenario.
var AsymmetricMix = trace.AsymmetricMix

// SplitFlows partitions src into n per-link sources by flow hash —
// deterministic per seed and flow-consistent, like a flow-aware load
// balancer feeding a bank of monitors. The trace is materialized, so
// the returned sources are independent and safe for concurrent shards.
func SplitFlows(src Source, n int, seed uint64) []Source {
	parts := trace.SplitFlows(src, n, seed)
	out := make([]Source, len(parts))
	for i, p := range parts {
		out[i] = p
	}
	return out
}

// Trace files.

// TraceFile is a streaming trace-file source: batches are read from
// disk incrementally, so a file of any size replays in memory bounded
// by its largest batch. Obtain one with OpenTraceFile or StreamTrace;
// check Err when the stream ends if the file is untrusted.
type TraceFile = trace.FileSource

// OpenTraceFile opens a recorded trace for streaming replay. Close it
// when done.
func OpenTraceFile(path string) (*TraceFile, error) { return trace.OpenFile(path) }

// StreamTrace wraps an open reader as a streaming trace source (Reset
// seeks back to the first batch).
func StreamTrace(r io.ReadSeeker) (*TraceFile, error) { return trace.NewFileSource(r) }

// ReadTrace loads a recorded trace fully into memory; it replays
// byte-identically everywhere. Prefer it for small traces replayed many
// times; use OpenTraceFile for large files and long-running streams.
func ReadTrace(r io.Reader) (Source, error) { return trace.ReadAll(r) }

// WriteTrace drains src into w in the trace file format.
func WriteTrace(w io.Writer, src Source) error { return trace.WriteAll(w, src) }

// MeasureTrace drains src and summarizes it, resetting it afterwards.
func MeasureTrace(src Source) TraceStats { return trace.Measure(src) }

// Live ingest and tail-follow sources, for serving deployments.

type (
	// LiveConfig parameterizes a live ingest listener.
	LiveConfig = trace.LiveConfig
	// LiveSource is a Source fed by a datagram socket (UDP or unixgram).
	LiveSource = trace.LiveSource
	// LiveSender forwards batches to a live listener in its wire framing.
	LiveSender = trace.LiveSender
	// TailSource follows a growing trace file as a writer appends to it.
	TailSource = trace.TailSource
)

// ListenLive opens a live ingest listener on network ("udp", "udp4",
// "udp6" or "unixgram") and address. Close it to end the stream.
func ListenLive(network, address string, cfg LiveConfig) (*LiveSource, error) {
	return trace.ListenLive(network, address, cfg)
}

// DialLive connects a sender to a live listener.
func DialLive(network, address string) (*LiveSender, error) {
	return trace.DialLive(network, address)
}

// TailFile opens a growing trace file for tail-follow replay; poll <= 0
// selects the default poll interval.
func TailFile(path string, poll time.Duration) (*TailSource, error) {
	return trace.TailFile(path, poll)
}

// SourceErr reports the error that ended src's stream, for sources that
// track one (trace files, live listeners, tails); nil for sources that
// cannot fail mid-stream, and nil after a stream that ended cleanly.
// Callers that stream untrusted or unreliable input should check it
// when NextBatch reports the end.
func SourceErr(src Source) error {
	if e, ok := src.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// Dynamic query construction, for the admin plane.

// queryKinds maps each Table 2.2 query name to its constructor with
// default tunables, the form a serving process's registration API uses.
var queryKinds = []struct {
	name string
	mk   func(cfg QueryConfig) Query
}{
	{"application", func(cfg QueryConfig) Query { return queries.NewApplication(cfg) }},
	{"autofocus", func(cfg QueryConfig) Query { return queries.NewAutofocus(cfg, 0) }},
	{"counter", func(cfg QueryConfig) Query { return queries.NewCounter(cfg) }},
	{"flows", func(cfg QueryConfig) Query { return queries.NewFlows(cfg) }},
	{"high-watermark", func(cfg QueryConfig) Query { return queries.NewHighWatermark(cfg) }},
	{"p2p-detector", func(cfg QueryConfig) Query { return queries.NewP2PDetector(cfg) }},
	{"pattern-search", func(cfg QueryConfig) Query { return queries.NewPatternSearch(cfg, nil) }},
	{"super-sources", func(cfg QueryConfig) Query { return queries.NewSuperSources(cfg, 0) }},
	{"top-k", func(cfg QueryConfig) Query { return queries.NewTopK(cfg, 0) }},
	{"trace", func(cfg QueryConfig) Query { return queries.NewTraceQuery(cfg) }},
}

// QueryKinds lists the query names QueryByName accepts, sorted.
func QueryKinds() []string {
	out := make([]string, len(queryKinds))
	for i, k := range queryKinds {
		out[i] = k.name
	}
	return out
}

// QueryByName constructs a fresh instance of the named Table 2.2 query
// with default tunables. The name is the query's own Name() string —
// what result sinks and the /queries admin endpoint report.
func QueryByName(name string, cfg QueryConfig) (Query, error) {
	for _, k := range queryKinds {
		if k.name == strings.ToLower(name) {
			return k.mk(cfg), nil
		}
	}
	return nil, fmt.Errorf("loadshed: unknown query kind %q (have %s)",
		name, strings.Join(QueryKinds(), ", "))
}
