package loadshed

// coord_test.go pins the coordinator split (coord.go, transport.go):
// the loopback cluster must be bit-identical to the pre-split inline
// coordination, the TCP transport must run the same protocol with
// lease-based partition and rejoin, and the aggregation layer must
// tolerate shards that never produced a record.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math"
	"net"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/pkt"
	"repro/internal/queries"
	"repro/internal/sched"
	"repro/internal/trace"
)

// minShareClusterShards is testClusterShards with a guaranteed share on
// the attacked link, so the oracle comparison exercises the MinRate
// path through the allocators too.
func minShareClusterShards(dur time.Duration) []Shard {
	shards := testClusterShards(dur)
	shards[0].MinShare = 0.2
	return shards
}

// oracleClusterRun re-implements the pre-split Cluster loop inline —
// lockstep sequential stepping with the coordinator arithmetic
// (demand EWMA, allocator, 1% floor, surplus spread) exactly as
// Cluster.coordinate performed it before the Coordinator/Node/transport
// decomposition. It is the ground truth TestLoopbackClusterMatchesInProcess
// holds the refactored Cluster to.
func oracleClusterRun(cfg ClusterConfig, shards []Shard) *ClusterResult {
	cfg = cfg.withDefaults()
	type oshard struct {
		name     string
		minShare float64
		sys      *System
		run      *runner
		sink     *resultSink
		caps     []float64
		demand   float64
		seeded   bool
		done     bool
	}
	var os []*oshard
	for i, sh := range shards {
		scfg := cfg.Base
		scfg.Capacity = cfg.TotalCapacity / float64(len(shards))
		scfg.Seed = cfg.Base.Seed + uint64(i)*0x9e3779b97f4a7c15
		if cfg.Base.Workers == 0 {
			scfg.Workers = 1
		}
		name := sh.Name
		if name == "" {
			name = fmt.Sprintf("link%d", i)
		}
		o := &oshard{name: name, minShare: sh.MinShare, sys: New(scfg, sh.Queries)}
		o.sink = newResultSink(o.sys.cfg.Scheme)
		o.run = o.sys.newRunner(sh.Source, o.sink)
		os = append(os, o)
	}
	var ws sched.Workspace
	var demands []sched.Demand
	coordinated := cfg.ShardPolicy != nil && !math.IsInf(cfg.TotalCapacity, 1)
	for {
		for _, o := range os {
			if o.done {
				continue
			}
			capacity := o.sys.gov.Capacity()
			if o.run.step() {
				o.caps = append(o.caps, capacity)
			} else {
				o.done = true
			}
		}
		live := false
		for _, o := range os {
			if !o.done {
				live = true
			}
		}
		if !live {
			break
		}
		if !coordinated {
			continue
		}
		var active []*oshard
		for _, o := range os {
			if o.done {
				continue
			}
			if o.run.bin != 0 {
				b := &o.run.lastBin
				queryCost := b.Predicted
				if queryCost <= 0 {
					rate := b.GlobalRate
					if rate <= 0 {
						rate = 1
					}
					queryCost = b.Used / math.Max(rate, 0.01)
				}
				obs := b.Overhead + b.Shed + queryCost
				if !o.seeded {
					o.demand, o.seeded = obs, true
				} else {
					o.demand = cfg.DemandAlpha*obs + (1-cfg.DemandAlpha)*o.demand
				}
			}
			active = append(active, o)
		}
		if len(active) == 0 {
			continue
		}
		total := cfg.TotalCapacity
		demands = demands[:0]
		for _, o := range active {
			demands = append(demands, sched.Demand{Name: o.name, Cycles: o.demand, MinRate: o.minShare})
		}
		allocs := sched.AllocateInto(cfg.ShardPolicy, demands, total, &ws)
		floor := 0.01 * total / float64(len(active))
		var used float64
		for _, a := range allocs {
			used += math.Max(a.Cycles, floor)
		}
		surplus := math.Max(0, total-used) / float64(len(active))
		for i, o := range active {
			o.sys.SetCapacity(math.Max(allocs[i].Cycles, floor) + surplus)
		}
	}
	for _, o := range os {
		o.run.finish()
	}
	res := &ClusterResult{}
	for _, o := range os {
		res.Shards = append(res.Shards, ShardRun{Name: o.name, Result: o.sink.res, Capacities: o.caps})
	}
	res.Aggregate = aggregateBins(res.Shards)
	return res
}

// TestLoopbackClusterMatchesInProcess is the refactor's bit-identity
// contract: the Cluster — now a Coordinator plus Nodes over the
// loopback transport — must reproduce the pre-split inline coordination
// exactly, for any runner count and for pipelined shards.
func TestLoopbackClusterMatchesInProcess(t *testing.T) {
	const dur = 3 * time.Second
	total := clusterCapacity(t, dur)
	for _, tc := range []struct {
		name    string
		policy  sched.Strategy
		runners int
		workers int
	}{
		{"mmfs_cpu/seq", MMFSCPU(), 1, 0},
		{"mmfs_cpu/runners4", MMFSCPU(), 4, 0},
		{"mmfs_cpu/pipelined", MMFSCPU(), 2, 3},
		{"eq_srates/runners2", EqualRates(true), 2, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ClusterConfig{
				Base:          Config{Scheme: Predictive, Strategy: MMFSPkt(), Seed: 42, Workers: tc.workers},
				TotalCapacity: total,
				ShardPolicy:   tc.policy,
				Runners:       tc.runners,
			}
			want := oracleClusterRun(cfg, minShareClusterShards(dur))
			got := NewCluster(cfg, minShareClusterShards(dur)).Run()
			if len(got.Shards) != len(want.Shards) {
				t.Fatalf("shard count %d, oracle %d", len(got.Shards), len(want.Shards))
			}
			for i := range want.Shards {
				if !reflect.DeepEqual(got.Shards[i], want.Shards[i]) {
					t.Fatalf("shard %s diverged from the pre-split coordination", want.Shards[i].Name)
				}
			}
			if !reflect.DeepEqual(got.Aggregate, want.Aggregate) {
				t.Fatal("aggregate bins diverged from the pre-split coordination")
			}
		})
	}
}

// TestAggregateBinsNilShardResult: a shard without a record — a worker
// that never joined a distributed run — must aggregate as zero, not
// panic (regression: aggregateBins and the ClusterResult totals used to
// dereference Result unconditionally).
func TestAggregateBinsNilShardResult(t *testing.T) {
	live := &RunResult{Bins: []BinStats{
		{WirePkts: 5, DropPkts: 2, Capacity: 10, GlobalRate: 0.5},
		{WirePkts: 7, DropPkts: 1, Capacity: 10, GlobalRate: 1},
	}}
	shards := []ShardRun{
		{Name: "w0", Result: live},
		{Name: "w1", Result: nil},
	}
	agg := aggregateBins(shards)
	if len(agg) != 2 {
		t.Fatalf("aggregate has %d bins, want 2", len(agg))
	}
	if agg[0].WirePkts != 5 || agg[1].WirePkts != 7 {
		t.Fatalf("aggregate wire packets %d/%d, want 5/7", agg[0].WirePkts, agg[1].WirePkts)
	}
	if agg[0].GlobalRate != 0.5 {
		t.Fatalf("aggregate global rate %v, want 0.5", agg[0].GlobalRate)
	}
	res := &ClusterResult{Shards: shards, Aggregate: agg}
	if got := res.TotalWirePkts(); got != 12 {
		t.Fatalf("TotalWirePkts %d, want 12", got)
	}
	if got := res.TotalDrops(); got != 3 {
		t.Fatalf("TotalDrops %d, want 3", got)
	}
	if all := aggregateBins([]ShardRun{{Name: "w1"}}); len(all) != 0 {
		t.Fatalf("all-nil aggregate has %d bins, want 0", len(all))
	}
}

// cancelAfterSource cancels a context after its wrapped source has
// served n batches, landing the cancellation between a step barrier and
// the next coordination round.
type cancelAfterSource struct {
	trace.Source
	n      int
	count  int
	cancel context.CancelFunc
}

func (s *cancelAfterSource) NextBatch() (pkt.Batch, bool) {
	s.count++
	if s.count == s.n {
		s.cancel()
	}
	return s.Source.NextBatch()
}

// TestClusterStreamContextCancelMidCoordinate cancels a coordinated
// cluster mid-run from inside a shard's source and verifies the
// teardown contract: ctx.Err() comes back, every shard's capacities
// stay aligned with its bins, the partial aggregate is well-formed, and
// no shard pipeline or pool goroutine outlives the call.
func TestClusterStreamContextCancelMidCoordinate(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, workers := range []int{0, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const dur = 5 * time.Second
			total := clusterCapacity(t, dur)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			shards := minShareClusterShards(dur)
			shards[1].Source = &cancelAfterSource{Source: shards[1].Source, n: 13, cancel: cancel}
			c := NewCluster(ClusterConfig{
				Base:          Config{Scheme: Predictive, Strategy: MMFSPkt(), Seed: 42, Workers: workers},
				TotalCapacity: total,
				ShardPolicy:   MMFSCPU(),
				Runners:       3,
			}, shards)
			res, err := c.RunContext(ctx)
			if err != context.Canceled {
				t.Fatalf("RunContext error %v, want context.Canceled", err)
			}
			maxBins := 0
			for _, sh := range res.Shards {
				if sh.Result == nil {
					t.Fatalf("shard %s has no record after cancellation", sh.Name)
				}
				if len(sh.Capacities) != len(sh.Result.Bins) {
					t.Fatalf("shard %s: %d capacities vs %d bins", sh.Name, len(sh.Capacities), len(sh.Result.Bins))
				}
				if len(sh.Result.Bins) == 0 {
					t.Fatalf("shard %s processed no bins before the cancel at batch 13", sh.Name)
				}
				if n := len(sh.Result.Bins); n > maxBins {
					maxBins = n
				}
			}
			if len(res.Aggregate) != maxBins {
				t.Fatalf("aggregate has %d bins, want %d", len(res.Aggregate), maxBins)
			}
		})
	}
	// Every pipeline, worker pool and runner must be torn down; give
	// exiting goroutines a moment to unwind before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak after cancelled cluster runs: %d before, %d after", before, g)
	}
}

// TestCoordWireRoundTrip pins the TCP frame format: hello, report (with
// and without the done flag) and grant survive an encode/decode round
// trip, and truncated payloads are rejected rather than misparsed.
func TestCoordWireRoundTrip(t *testing.T) {
	var buf []byte
	buf = appendHelloFrame(buf, "uplink-7", 0.25)
	buf = appendReportFrame(buf, DemandReport{Bin: 42, Demand: 1.5e6, MinShare: 0.25})
	buf = appendReportFrame(buf, DemandReport{Bin: 43, Done: true})
	buf = appendGrantFrame(buf, BudgetGrant{Round: 9, Capacity: 7.25e6})

	br := bufio.NewReader(bytes.NewReader(buf))
	p, err := readCoordFrame(br, nil)
	if err != nil {
		t.Fatalf("read hello frame: %v", err)
	}
	name, minShare, ok := decodeHello(p)
	if !ok || name != "uplink-7" || minShare != 0.25 {
		t.Fatalf("hello decoded as (%q, %v, %v)", name, minShare, ok)
	}
	p, err = readCoordFrame(br, p)
	if err != nil {
		t.Fatalf("read report frame: %v", err)
	}
	r, ok := decodeReport(p)
	if !ok || r.Bin != 42 || r.Demand != 1.5e6 || r.MinShare != 0.25 || r.Done {
		t.Fatalf("report decoded as %+v (%v)", r, ok)
	}
	p, err = readCoordFrame(br, p)
	if err != nil {
		t.Fatalf("read done-report frame: %v", err)
	}
	if r, ok = decodeReport(p); !ok || !r.Done || r.Bin != 43 {
		t.Fatalf("done report decoded as %+v (%v)", r, ok)
	}
	p, err = readCoordFrame(br, p)
	if err != nil {
		t.Fatalf("read grant frame: %v", err)
	}
	g, ok := decodeGrant(p)
	if !ok || g.Round != 9 || g.Capacity != 7.25e6 {
		t.Fatalf("grant decoded as %+v (%v)", g, ok)
	}

	if _, _, ok := decodeHello([]byte{coordMsgHello, 5, 'a'}); ok {
		t.Fatal("truncated hello decoded")
	}
	if _, ok := decodeReport([]byte{coordMsgReport, 1, 2, 3}); ok {
		t.Fatal("truncated report decoded")
	}
	if _, ok := decodeGrant([]byte{coordMsgGrant}); ok {
		t.Fatal("truncated grant decoded")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTCPCoordinationPartitionRejoin drives the full TCP state machine
// in-process: two workers join and split the budget; one goes silent
// past the lease and is marked partitioned while its budget moves to
// the survivor and its own grant goes stale (local-only degradation);
// it then reports again and rejoins the allocation.
func TestTCPCoordinationPartitionRejoin(t *testing.T) {
	const total = 1000.0
	coord := NewCoordinator(sched.MMFSCPU{}, total)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := ServeCoordinator(ln, coord, CoordServerConfig{
		Heartbeat: 10 * time.Millisecond,
		Lease:     60 * time.Millisecond,
	})
	defer srv.Close()

	ccfg := CoordClientConfig{
		Lease:    60 * time.Millisecond,
		RetryMin: 5 * time.Millisecond,
		RetryMax: 20 * time.Millisecond,
	}
	alpha, err := DialCoordinator(srv.Addr().String(), "alpha", ccfg)
	if err != nil {
		t.Fatalf("dial alpha: %v", err)
	}
	defer alpha.Close()
	beta, err := DialCoordinator(srv.Addr().String(), "beta", ccfg)
	if err != nil {
		t.Fatalf("dial beta: %v", err)
	}
	defer beta.Close()

	report := func(c *CoordClient, demand float64) {
		c.Report(DemandReport{Node: c.Name(), Bin: 1, Demand: demand})
	}
	partitioned := func(name string) bool {
		for _, n := range coord.Status() {
			if n.Name == name {
				return n.Partitioned
			}
		}
		return false
	}

	// Phase 1: both report, both must hold grants summing to the budget.
	waitFor(t, 5*time.Second, "both workers granted", func() bool {
		report(alpha, 600)
		report(beta, 600)
		_, aok := alpha.Grant()
		_, bok := beta.Grant()
		return aok && bok
	})
	ga, _ := alpha.Grant()
	gb, _ := beta.Grant()
	if sum := ga.Capacity + gb.Capacity; math.Abs(sum-total) > 1e-6*total {
		t.Fatalf("grants sum to %v, want %v", sum, total)
	}

	// Phase 2: beta goes silent. Past the lease the coordinator marks it
	// partitioned, the survivor absorbs the whole budget, and beta's own
	// grant goes stale — it degrades to local-only shedding.
	waitFor(t, 5*time.Second, "beta partitioned and alpha absorbing the budget", func() bool {
		report(alpha, 600)
		g, ok := alpha.Grant()
		return partitioned("beta") && ok && math.Abs(g.Capacity-total) < 1e-6*total
	})
	waitFor(t, 5*time.Second, "beta degraded to local-only", func() bool {
		return beta.Degraded()
	})

	// Phase 3: beta reports again and must rejoin the allocation.
	waitFor(t, 5*time.Second, "beta rejoined", func() bool {
		report(alpha, 600)
		report(beta, 600)
		g, ok := beta.Grant()
		return !partitioned("beta") && ok && g.Capacity < total
	})
}

// TestNodeStreamContextTCPWorker runs a standalone worker Node against
// a TCP coordinator end to end: the trace completes, per-bin capacities
// stay aligned, and the coordinator sees the node's reports and its
// final done notice.
func TestNodeStreamContextTCPWorker(t *testing.T) {
	coord := NewCoordinator(sched.MMFSCPU{}, 5e6)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := ServeCoordinator(ln, coord, CoordServerConfig{
		Heartbeat: 5 * time.Millisecond,
		Lease:     50 * time.Millisecond,
	})
	defer srv.Close()

	client, err := DialCoordinator(srv.Addr().String(), "w0", CoordClientConfig{Lease: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	qs := []queries.Query{
		queries.NewFlows(queries.Config{Seed: 5}),
		queries.NewCounter(queries.Config{Seed: 5}),
	}
	sys := New(Config{Scheme: Predictive, Strategy: MMFSPkt(), Seed: 7, Capacity: 5e6, Workers: 1}, qs)
	node := NewNode(sys, client, NodeConfig{Name: "w0"})
	sink := newResultSink(Predictive)
	src := trace.NewGenerator(trace.CESCA2(3, 2*time.Second, 0.3))
	if err := node.StreamContext(context.Background(), src, sink); err != nil {
		t.Fatalf("worker stream: %v", err)
	}
	if n := len(sink.res.Bins); n == 0 {
		t.Fatal("worker produced no bins")
	}
	if len(node.Capacities()) != len(sink.res.Bins) {
		t.Fatalf("%d capacities vs %d bins", len(node.Capacities()), len(sink.res.Bins))
	}
	waitFor(t, 5*time.Second, "coordinator saw the done report", func() bool {
		st := coord.Status()
		return len(st) == 1 && st[0].Name == "w0" && st[0].Done && st[0].Bin > 0
	})
}

// BenchmarkLoopbackCoordination prices the coordination layer the split
// introduced. roundN is the pure per-bin cost of one loopback
// coordination round over N nodes — report, allocate, read grants —
// which is the overhead every coordinated bin pays on top of shard
// execution; it runs on scratch buffers and must stay allocation-free.
// static and coordinated price a full 3-shard cluster run with
// coordination off and on; the ns/bin delta between them is the
// end-to-end overhead including the demand EWMAs and grant
// application.
//
//	go test -bench LoopbackCoordination -benchtime 100x ./pkg/loadshed
func BenchmarkLoopbackCoordination(b *testing.B) {
	for _, nodes := range []int{2, 8, 32} {
		// No dashes in sub-benchmark names: benchjson strips a trailing
		// -N as the go-test cpus suffix.
		b.Run(fmt.Sprintf("round%d", nodes), func(b *testing.B) {
			coord := NewCoordinator(MMFSCPU(), 3e6)
			trs := make([]NodeTransport, nodes)
			demands := make([]float64, nodes)
			for j := range trs {
				trs[j] = NewLoopback(coord, fmt.Sprintf("n%d", j), 0)
				demands[j] = 1e6 * float64(j+1) / float64(nodes)
			}
			round := func(bin int64) {
				for j, tr := range trs {
					tr.Report(DemandReport{Bin: bin, Demand: demands[j]})
				}
				coord.AllocateRound()
				for _, tr := range trs {
					tr.Grant()
				}
			}
			round(0) // grow the coordinator's scratch buffers once
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round(int64(i) + 1)
			}
		})
	}

	const dur = 2 * time.Second
	links := AsymmetricMix(3, dur, 0.05, 4)
	batches := make([]*trace.MemorySource, len(links))
	var total float64
	for i, l := range links {
		g := trace.NewGenerator(l.Config)
		batches[i] = trace.NewMemorySource(trace.Record(g), g.TimeBin())
		total += MeasureCapacity(batches[i], []queries.Query{
			queries.NewFlows(queries.Config{Seed: uint64(i)}),
			queries.NewCounter(queries.Config{Seed: uint64(i)}),
		}, 77)
	}
	total /= 2
	for _, mode := range []struct {
		name   string
		policy sched.Strategy
	}{{"static", nil}, {"coordinated", MMFSCPU()}} {
		b.Run(mode.name, func(b *testing.B) {
			bins := 0
			for i := 0; i < b.N; i++ {
				shards := make([]Shard, len(links))
				for j := range links {
					shards[j] = Shard{
						Name:   links[j].Name,
						Source: batches[j],
						Queries: []queries.Query{
							queries.NewFlows(queries.Config{Seed: uint64(j)}),
							queries.NewCounter(queries.Config{Seed: uint64(j)}),
						},
					}
				}
				res := NewCluster(ClusterConfig{
					Base:          Config{Scheme: Predictive, Strategy: MMFSPkt(), Seed: 42},
					TotalCapacity: total,
					ShardPolicy:   mode.policy,
					Runners:       1,
				}, shards).Run()
				bins = len(res.Shards[0].Result.Bins)
			}
			if bins > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*bins), "ns/bin")
			}
		})
	}
}
