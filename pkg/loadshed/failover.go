package loadshed

// failover.go — the coordinator's crash-recovery and migration side.
// The budget allocator (coord.go) decides who gets cycles; this file
// decides who gets orphaned shards. Three mechanisms share one state
// machine on coordNode:
//
//   - Retention: StoreCheckpoint keeps the latest gob ShardCheckpoint
//     per shard (bounded — one blob per shard), optionally written
//     through to a state directory so a restarted coordinator still
//     holds every shard's last known state.
//   - Failover: planFailover turns "partitioned longer than the grace
//     window, with a checkpoint on file" into an adoption offer to a
//     live node. Offers expire and re-issue with the adopter choice
//     rotating through the live membership, so a refused or lost offer
//     does not wedge the shard. An offer is settled by a hello or live
//     report under the shard's name — the adopter dialing in, or the
//     original coming back (coord.go clears the offer on both paths).
//     If both happen, the ordinary reconnect rule applies: the last
//     hello owns the connection, and the shard keeps exactly one grant
//     stream — the race is benign by the same supersede rule that
//     covers any worker reconnect.
//   - Migration: Migrate marks a shard drain-requested with a directed
//     target. The transport relays the drain; the shard checkpoints
//     with Final set at its next interval boundary and stops; the final
//     checkpoint makes the shard offerable immediately (no grace — the
//     source stopped deliberately) and the offer goes to the requested
//     target only.
//
// None of this runs inside allocateLocked: failover planning is
// heartbeat-path work, and the steady-state allocation round stays at
// 0 allocs/op.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// AdoptOrder instructs the transport layer to offer an orphaned shard
// to a live node. Blob is the retained gob ShardCheckpoint.
type AdoptOrder struct {
	Shard   string
	Adopter string
	Bin     int64
	Blob    []byte
}

// AdoptOffer is the worker-side view of an adoption offer, as surfaced
// by a transport's Adoption method: the shard to take over and its
// checkpoint blob (decode with DecodeShardCheckpoint).
type AdoptOffer struct {
	Shard      string
	Bin        int64
	Checkpoint []byte
}

// StoreCheckpoint retains a shard's latest checkpoint by name (the TCP
// path). Checkpoints for unknown names register a membership record, so
// state reloaded from disk is offerable even before the shard's worker
// reconnects.
func (c *Coordinator) StoreCheckpoint(name string, bin int64, final bool, blob []byte) {
	c.mu.Lock()
	n := c.byName[name]
	if n == nil {
		n = &coordNode{name: name}
		c.nodes = append(c.nodes, n)
		c.byName[name] = n
	}
	c.storeCheckpointLocked(n, bin, final, blob)
}

// storeCheckpointNode is StoreCheckpoint addressed by handle (loopback
// path, where records are not name-keyed).
func (c *Coordinator) storeCheckpointNode(n *coordNode, bin int64, final bool, blob []byte) {
	c.mu.Lock()
	c.storeCheckpointLocked(n, bin, final, blob)
}

// storeCheckpointLocked takes c.mu held and releases it — the disk
// write-through happens outside the lock.
func (c *Coordinator) storeCheckpointLocked(n *coordNode, bin int64, final bool, blob []byte) {
	n.ckptBin = bin
	n.ckptFinal = final
	n.ckptAt = time.Now()
	n.ckptBlob = append(n.ckptBlob[:0], blob...) // latest only: bounded
	if final {
		n.drainReq = false // the drain this checkpoint answers is over
	}
	c.ckptsStored++
	dir, name := c.stateDir, n.name
	c.mu.Unlock()
	if dir != "" {
		// Best-effort write-through; retention in memory is what
		// failover reads, the file only survives coordinator restarts.
		spillCheckpoint(dir, name, blob)
	}
}

// Checkpoint returns a copy of the shard's retained checkpoint blob and
// its resume bin; ok=false when none is held.
func (c *Coordinator) Checkpoint(name string) (blob []byte, bin int64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.byName[name]
	if n == nil || n.ckptBlob == nil {
		return nil, 0, false
	}
	return append([]byte(nil), n.ckptBlob...), n.ckptBin, true
}

// CheckpointsStored returns how many checkpoints have been retained
// (lsd_cluster_checkpoints_total).
func (c *Coordinator) CheckpointsStored() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ckptsStored
}

// FailoverOffers returns how many adoption offers have been issued,
// re-offers included (lsd_cluster_failover_offers_total).
func (c *Coordinator) FailoverOffers() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.offersIssued
}

// ckptFileName maps a shard name to its spill file, replacing anything
// path-hostile. Distinct names could collide after sanitizing; the blob
// itself carries the authoritative shard name, which reloads use.
func ckptFileName(name string) string {
	b := []byte(name)
	for i, ch := range b {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z',
			ch >= '0' && ch <= '9', ch == '.', ch == '_', ch == '-':
		default:
			b[i] = '_'
		}
	}
	return string(b) + ".ckpt"
}

// spillCheckpoint writes blob to dir atomically (temp file + rename).
func spillCheckpoint(dir, name string, blob []byte) error {
	path := filepath.Join(dir, ckptFileName(name))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// SetStateDir enables checkpoint spill to dir (created if missing) and
// reloads any checkpoints already there — the coordinator-restart path.
// A reloaded shard with no live worker is marked partitioned as of now,
// so it becomes adoptable once the grace window passes and a live
// adopter exists; if its worker is merely slow to reconnect, the hello
// clears the mark as usual. Unreadable or stale-format files are
// skipped (reported in the error after all files are tried).
func (c *Coordinator) SetStateDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("loadshed: state dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("loadshed: state dir: %w", err)
	}
	var firstErr error
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".ckpt" {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err == nil {
			var cp *ShardCheckpoint
			cp, err = DecodeShardCheckpoint(bytes.NewReader(blob))
			if err == nil {
				c.StoreCheckpoint(cp.Node, cp.Bin, cp.Final, blob)
				c.mu.Lock()
				n := c.byName[cp.Node]
				if !n.ever {
					// No worker has spoken for this shard yet: treat it
					// as partitioned since the reload, pending a hello.
					n.ever = true
					n.partitioned = true
					n.partitionedAt = time.Now()
				}
				c.mu.Unlock()
			}
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("loadshed: state dir: reload %s: %w", e.Name(), err)
		}
	}
	c.mu.Lock()
	c.stateDir = dir
	c.mu.Unlock()
	return firstErr
}

// PlanFailover issues adoption offers for orphaned shards: partitioned
// past the grace window with a checkpoint on file, or drained with a
// directed migration target. An issued offer suppresses re-offers for
// offerTimeout; after that the shard re-offers with the adopter
// rotating through the live membership. The TCP server calls this each
// heartbeat and pushes the returned orders as adopt frames; loopback
// adopters poll the offers off the coordinator instead.
func (c *Coordinator) PlanFailover(grace, offerTimeout time.Duration) []AdoptOrder {
	return c.planFailover(time.Now(), grace, offerTimeout)
}

func (c *Coordinator) planFailover(now time.Time, grace, offerTimeout time.Duration) []AdoptOrder {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []AdoptOrder
	for _, n := range c.nodes {
		if n.done || n.ckptBlob == nil {
			continue
		}
		crashed := n.partitioned && now.Sub(n.partitionedAt) >= grace
		migrating := n.migrateTo != "" && n.ckptFinal
		if !crashed && !migrating {
			continue
		}
		if n.offeredTo != "" && now.Sub(n.offeredAt) < offerTimeout {
			continue // an offer is in flight; give it time
		}
		adopter := c.pickAdopterLocked(n)
		if adopter == nil {
			continue // no live candidate this round; retry next heartbeat
		}
		n.offeredTo = adopter.name
		n.offeredAt = now
		n.offerTaken = false
		n.offerAttempts++
		c.offersIssued++
		out = append(out, AdoptOrder{Shard: n.name, Adopter: adopter.name, Bin: n.ckptBin, Blob: n.ckptBlob})
	}
	return out
}

// pickAdopterLocked chooses who to offer n's shard to: the directed
// migration target if one is set (and live), else the live nodes in
// join order, rotated by how many offers this shard has already had —
// a lost or ignored offer moves on to the next candidate.
func (c *Coordinator) pickAdopterLocked(n *coordNode) *coordNode {
	live := func(m *coordNode) bool {
		return m != n && m.ever && !m.done && !m.partitioned
	}
	if n.migrateTo != "" {
		if m := c.byName[n.migrateTo]; m != nil && live(m) {
			return m
		}
		return nil // directed target gone; hold rather than misdeliver
	}
	var candidates []*coordNode
	for _, m := range c.nodes {
		if live(m) {
			candidates = append(candidates, m)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[n.offerAttempts%len(candidates)]
}

// clearOffer withdraws an in-flight offer (the transport failed to
// deliver it), so the next planning round re-offers immediately.
func (c *Coordinator) clearOffer(shard string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.byName[shard]; n != nil {
		n.offeredTo = ""
	}
}

// takeOfferFor returns (at most once per issued offer) an offer
// addressed to the polling node — the loopback delivery path, matching
// the TCP client's Adoption method.
func (c *Coordinator) takeOfferFor(adopter *coordNode) (AdoptOffer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.offeredTo == adopter.name && !n.offerTaken && n.ckptBlob != nil {
			n.offerTaken = true
			return AdoptOffer{
				Shard:      n.name,
				Bin:        n.ckptBin,
				Checkpoint: append([]byte(nil), n.ckptBlob...),
			}, true
		}
	}
	return AdoptOffer{}, false
}

// Migrate requests a planned migration: shard from drains at its next
// interval boundary and its final checkpoint is offered to shard to's
// worker. Both must be known; the target must be live; a shard cannot
// migrate onto itself.
func (c *Coordinator) Migrate(from, to string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.byName[from]
	if f == nil {
		return fmt.Errorf("loadshed: migrate: unknown shard %q", from)
	}
	if f.done {
		return fmt.Errorf("loadshed: migrate: shard %q already finished", from)
	}
	t := c.byName[to]
	if t == nil {
		return fmt.Errorf("loadshed: migrate: unknown target %q", to)
	}
	if from == to {
		return fmt.Errorf("loadshed: migrate: shard %q cannot migrate onto itself", from)
	}
	if !t.ever || t.done || t.partitioned {
		return fmt.Errorf("loadshed: migrate: target %q is not live", to)
	}
	f.drainReq = true
	f.migrateTo = to
	return nil
}

// drainTargets appends the names of shards with a drain outstanding;
// the TCP server relays a drain frame to each connected one every
// heartbeat until the final checkpoint lands (which clears the flag).
func (c *Coordinator) drainTargets(dst []string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	dst = dst[:0]
	for _, n := range c.nodes {
		if n.drainReq {
			dst = append(dst, n.name)
		}
	}
	return dst
}

// drainRequestedNode reports whether a drain is pending for the handle
// (loopback path).
func (c *Coordinator) drainRequestedNode(n *coordNode) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return n.drainReq
}
