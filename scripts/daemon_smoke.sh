#!/usr/bin/env bash
# Daemon lifecycle smoke: boot `lsd -serve` against live UDP ingest,
# feed it generated traffic, probe every admin endpoint, register and
# remove a query through the API, then SIGTERM and require a clean exit
# within a deadline. Run from the repository root.
set -euo pipefail

BIN=${BIN:-/tmp/lsd-smoke}
ADMIN=127.0.0.1:19191
INGEST=127.0.0.1:19190

go build -o "$BIN" ./cmd/lsd

"$BIN" -serve "$ADMIN" -ingest "udp://$INGEST" -dur 5s -window 10s &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# The admin plane must come up.
for _ in $(seq 1 50); do
  curl -sf "http://$ADMIN/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$ADMIN/healthz" | grep -q ok

# Feed real traffic over the ingest socket; readiness follows the
# first processed bin.
"$BIN" -feed "udp://$INGEST" -dur 3s
for _ in $(seq 1 50); do
  curl -sf "http://$ADMIN/readyz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$ADMIN/readyz" >/dev/null

# The exposition must carry the advertised metric families.
METRICS=$(curl -sf "http://$ADMIN/metrics")
for m in lsd_up lsd_bins_total lsd_wire_packets_total \
         lsd_window_drop_fraction lsd_window_unsampled_fraction \
         lsd_window_budget_utilization lsd_query_rate \
         lsd_ingest_bad_frames_total lsd_ingest_dropped_bins_total; do
  grep -q "^$m" <<<"$METRICS" || { echo "FAIL: missing metric $m"; exit 1; }
done
grep -q '^lsd_wire_packets_total [1-9]' <<<"$METRICS" \
  || { echo "FAIL: no packets counted after feeding"; exit 1; }

# Dynamic registry over the API: p2p-detector is not in the standard
# set, so registration must be accepted, applied at the next interval
# boundary, and removable again.
curl -sf -X POST "http://$ADMIN/queries?kind=p2p-detector" | grep -q accepted
sleep 1.5 # > one measurement interval (1 s): the op lands at the boundary
curl -sf "http://$ADMIN/queries" | grep -q '"name":"p2p-detector","active":true'
curl -sf "http://$ADMIN/metrics" | grep -q 'lsd_query_active{query="p2p-detector"} 1'
curl -sf -X DELETE "http://$ADMIN/queries/p2p-detector" | grep -q accepted
sleep 1.5
curl -sf "http://$ADMIN/queries" | grep -q '"name":"p2p-detector","active":false'

# Graceful shutdown: SIGTERM finishes the bin, flushes, exits 0.
kill -TERM "$SERVE_PID"
for _ in $(seq 1 50); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "FAIL: daemon still running 10 s after SIGTERM"
  kill -9 "$SERVE_PID"
  exit 1
fi
wait "$SERVE_PID"
echo "daemon smoke OK"
