#!/usr/bin/env bash
# Failover smoke: boot a PSK-authenticated coordinator with a state
# directory and two checkpointing workers, wait for durable checkpoints
# to land, kill -9 one worker and require the survivor to adopt its
# shard from the last checkpoint, then live-migrate the adopted shard
# onto a third worker via POST /cluster/migrate, reject a keyless rogue
# worker, require -join-timeout to fail fast against a dead
# coordinator, and finally SIGTERM everything and require clean exits.
# Run from the repository root.
set -euo pipefail

BIN=${BIN:-/tmp/lsd-failover-smoke}
COORD=127.0.0.1:19900
ADMIN_C=127.0.0.1:19901
ADMIN_A=127.0.0.1:19902
ADMIN_B=127.0.0.1:19903
ADMIN_G=127.0.0.1:19904
ADMIN_R=127.0.0.1:19905
KEY=smoke-secret
TOTAL=2e6
STATE_DIR=$(mktemp -d /tmp/lsd-failover-state.XXXXXX)

go build -o "$BIN" ./cmd/lsd

wait_http() { # url
  for _ in $(seq 1 50); do
    curl -sf "$1" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "FAIL: $1 never came up"
  return 1
}

wait_cluster() { # grep pattern over the /cluster JSON
  for _ in $(seq 1 75); do
    curl -sf "http://$ADMIN_C/cluster" 2>/dev/null | grep -q "$1" && return 0
    sleep 0.2
  done
  echo "FAIL: /cluster never showed $1; last state:"
  curl -sf "http://$ADMIN_C/cluster" || true
  return 1
}

metric() { # admin addr, exact metric name -> value (empty if absent)
  curl -sf "http://$1/metrics" | awk -v n="$2" '$1 == n { print $2 }'
}

wait_metric_ge() { # admin addr, metric name, threshold
  local v=""
  for _ in $(seq 1 75); do
    v=$(metric "$1" "$2")
    if [ -n "$v" ] && awk -v a="$v" -v b="$3" 'BEGIN { exit !(a >= b) }'; then
      return 0
    fi
    sleep 0.2
  done
  echo "FAIL: $2 on $1 never reached $3 (last: ${v:-absent})"
  return 1
}

# Coordinator: PSK-authenticated, fast heartbeat so partition detection
# and the 1s failover grace stay inside the polling deadlines, durable
# checkpoints spilled to a state directory.
"$BIN" -coordinator "$COORD" -shard-policy mmfs_cpu -capacity "$TOTAL" \
  -heartbeat 100ms -grace 1s -cluster-key "$KEY" -state-dir "$STATE_DIR" \
  -serve "$ADMIN_C" &
COORD_PID=$!
A_PID=""; B_PID=""; G_PID=""; R_PID=""
trap 'kill "$COORD_PID" $A_PID $B_PID $G_PID $R_PID 2>/dev/null || true; rm -rf "$STATE_DIR"' EXIT
wait_http "http://$ADMIN_C/healthz"

# Two checkpointing workers. Checkpoints require the base shedding
# plane (-custom=false): custom-query state lives outside the snapshot.
worker() { # node name, admin addr
  "$BIN" -worker "$COORD" -node "$1" -capacity 60000 -cluster-key "$KEY" \
    -checkpoint-every 2 -custom=false -serve "$2" &
}
worker alpha "$ADMIN_A"; A_PID=$!
worker beta "$ADMIN_B"; B_PID=$!
wait_http "http://$ADMIN_A/readyz"
wait_http "http://$ADMIN_B/readyz"
wait_cluster '"name":"alpha"'
wait_cluster '"name":"beta"'

# Durable checkpoints land: shipped by the workers, retained by the
# coordinator, spilled to the state directory.
wait_metric_ge "$ADMIN_A" lsd_checkpoints_total 1
wait_metric_ge "$ADMIN_C" lsd_cluster_checkpoints_total 2
wait_metric_ge "$ADMIN_C" 'lsd_node_checkpoint_bin{node="beta"}' 0
ls "$STATE_DIR"/*.ckpt >/dev/null 2>&1 \
  || { echo "FAIL: no checkpoint spilled to $STATE_DIR"; exit 1; }

# Crash failover: hard-kill beta. Past lease + grace the coordinator
# offers beta's shard (checkpoint included) to the survivor, which
# resumes it under the dead shard's name — beta reports live again
# without its process existing.
kill -9 "$B_PID"; wait "$B_PID" 2>/dev/null || true; B_PID=""
wait_cluster '"name":"beta"[^}]*"partitioned":true'
wait_metric_ge "$ADMIN_A" lsd_adopted_shards 1
wait_metric_ge "$ADMIN_C" lsd_cluster_failover_offers_total 1
wait_cluster '"name":"beta"[^}]*"partitioned":false'

# Planned migration: a third worker joins, then /cluster/migrate moves
# the adopted beta shard onto it — source drains at a bin boundary,
# final checkpoint transfers, target resumes.
worker gamma "$ADMIN_G"; G_PID=$!
wait_http "http://$ADMIN_G/readyz"
wait_cluster '"name":"gamma"'
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d "from=beta&to=gamma" "http://$ADMIN_C/cluster/migrate")
[ "$code" = 202 ] || { echo "FAIL: /cluster/migrate returned $code"; exit 1; }
wait_metric_ge "$ADMIN_G" lsd_adopted_shards 1
for _ in $(seq 1 75); do
  [ "$(metric "$ADMIN_A" lsd_adopted_shards)" = 0 ] && break
  sleep 0.2
done
[ "$(metric "$ADMIN_A" lsd_adopted_shards)" = 0 ] \
  || { echo "FAIL: source never released the migrated shard"; exit 1; }
wait_cluster '"name":"beta"[^}]*"partitioned":false'

# Bad migrations are rejected up front.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d "from=beta&to=beta" "http://$ADMIN_C/cluster/migrate")
[ "$code" = 400 ] || { echo "FAIL: self-migration accepted ($code)"; exit 1; }

# Auth: a keyless rogue worker is rejected and counted; it never joins.
"$BIN" -worker "$COORD" -node rogue -capacity 60000 -serve "$ADMIN_R" &
R_PID=$!
wait_metric_ge "$ADMIN_C" lsd_coord_auth_failures_total 1
curl -sf "http://$ADMIN_C/cluster" | grep -q '"name":"rogue"' \
  && { echo "FAIL: unauthenticated worker joined the cluster"; exit 1; }
kill -9 "$R_PID"; wait "$R_PID" 2>/dev/null || true; R_PID=""

# Join timeout: a worker aimed at a dead coordinator must exit nonzero
# within its -join-timeout instead of redialing forever.
if "$BIN" -worker 127.0.0.1:9 -node lost -capacity 60000 \
    -join-timeout 1s -serve 127.0.0.1:19906 >/dev/null 2>&1; then
  echo "FAIL: worker with a dead coordinator exited zero"
  exit 1
fi

# Clean shutdown: SIGTERM each worker (alpha waits out its adopted
# shards), then the coordinator; every process must exit 0 in time.
kill -TERM "$A_PID" "$G_PID"
for pid in "$A_PID" "$G_PID"; do
  for _ in $(seq 1 50); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.2
  done
  if kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: worker $pid still running 10 s after SIGTERM"
    exit 1
  fi
  wait "$pid" || { echo "FAIL: worker $pid exited nonzero"; exit 1; }
done
A_PID=""; G_PID=""
kill -TERM "$COORD_PID"
for _ in $(seq 1 50); do
  kill -0 "$COORD_PID" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$COORD_PID" 2>/dev/null; then
  echo "FAIL: coordinator still running 10 s after SIGTERM"
  exit 1
fi
wait "$COORD_PID" || { echo "FAIL: coordinator exited nonzero"; exit 1; }
echo "failover smoke OK"
