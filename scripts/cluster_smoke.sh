#!/usr/bin/env bash
# Distributed cluster smoke: boot the budget coordinator and two TCP
# worker monitors, assert budget grants flow through /cluster and
# /metrics, hard-kill one worker and require the coordinator to mark it
# partitioned while the survivor absorbs the whole budget, restart it
# and require a rejoin, then SIGTERM everything and require clean exits.
# Run from the repository root.
set -euo pipefail

BIN=${BIN:-/tmp/lsd-cluster-smoke}
COORD=127.0.0.1:19800
ADMIN_C=127.0.0.1:19801
ADMIN_A=127.0.0.1:19802
ADMIN_B=127.0.0.1:19803
TOTAL=2e6

go build -o "$BIN" ./cmd/lsd

wait_http() { # url
  for _ in $(seq 1 50); do
    curl -sf "$1" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "FAIL: $1 never came up"
  return 1
}

wait_cluster() { # grep pattern over the /cluster JSON
  for _ in $(seq 1 50); do
    curl -sf "http://$ADMIN_C/cluster" 2>/dev/null | grep -q "$1" && return 0
    sleep 0.2
  done
  echo "FAIL: /cluster never showed $1; last state:"
  curl -sf "http://$ADMIN_C/cluster" || true
  return 1
}

node_budget() { # node name -> granted budget from the coordinator metrics
  curl -sf "http://$ADMIN_C/metrics" | awk -v n="lsd_node_budget{node=\"$1\"}" '$1 == n { print $2 }'
}

# The coordinator owns the policy and the total budget; a fast heartbeat
# keeps partition detection inside the polling deadlines below.
"$BIN" -coordinator "$COORD" -shard-policy mmfs_cpu -capacity "$TOTAL" \
  -heartbeat 100ms -serve "$ADMIN_C" &
COORD_PID=$!
A_PID=""
B_PID=""
trap 'kill "$COORD_PID" $A_PID $B_PID 2>/dev/null || true' EXIT
wait_http "http://$ADMIN_C/healthz"

# Two workers on generated ingest. The explicit -capacity is only the
# pre-join budget: the first grant replaces it.
"$BIN" -worker "$COORD" -node alpha -capacity 60000 -serve "$ADMIN_A" &
A_PID=$!
"$BIN" -worker "$COORD" -node beta -capacity 60000 -serve "$ADMIN_B" &
B_PID=$!
wait_http "http://$ADMIN_A/readyz"
wait_http "http://$ADMIN_B/readyz"

# Both nodes join and report demand; neither is partitioned.
wait_cluster '"name":"alpha"'
wait_cluster '"name":"beta"'
curl -sf "http://$ADMIN_C/cluster" | grep -q '"partitioned":true' \
  && { echo "FAIL: a node is partitioned before any failure"; exit 1; }

# Budget-grant gauges: the coordinator exposes per-node budget, demand
# and partition state; both grants are live and sum to the total.
METRICS=$(curl -sf "http://$ADMIN_C/metrics")
for m in lsd_cluster_nodes lsd_cluster_total_capacity \
         'lsd_node_budget{node="alpha"}' 'lsd_node_budget{node="beta"}' \
         'lsd_node_demand{node="alpha"}' 'lsd_node_partitioned{node="beta"}'; do
  grep -qF "$m" <<<"$METRICS" || { echo "FAIL: missing metric $m"; exit 1; }
done
grep -q '^lsd_cluster_nodes 2' <<<"$METRICS" || { echo "FAIL: expected 2 nodes"; exit 1; }
for _ in $(seq 1 50); do
  A=$(node_budget alpha); B=$(node_budget beta)
  ok=$(awk -v a="${A:-0}" -v b="${B:-0}" -v t="$TOTAL" \
    'BEGIN { print (a > 0 && b > 0 && a + b > 0.99 * t && a + b < 1.01 * t) ? 1 : 0 }')
  [ "$ok" = 1 ] && break
  sleep 0.2
done
[ "$ok" = 1 ] || { echo "FAIL: grants never summed to the total (alpha=$A beta=$B)"; exit 1; }

# The workers see the same picture from their side of the link.
curl -sf "http://$ADMIN_A/metrics" | grep -q '^lsd_coord_connected 1' \
  || { echo "FAIL: alpha not connected to the coordinator"; exit 1; }
curl -sf "http://$ADMIN_A/metrics" | grep -q '^lsd_coord_degraded 0' \
  || { echo "FAIL: alpha degraded despite a live coordinator"; exit 1; }

# Partition: hard-kill beta. The coordinator must mark it partitioned
# once its lease expires, and the survivor keeps shedding — now under
# (almost) the whole machine budget.
kill -9 "$B_PID"; wait "$B_PID" 2>/dev/null || true; B_PID=""
wait_cluster '"name":"beta"[^}]*"partitioned":true'
curl -sf "http://$ADMIN_A/healthz" | grep -q ok \
  || { echo "FAIL: survivor died with the partitioned worker"; exit 1; }
for _ in $(seq 1 50); do
  A=$(node_budget alpha)
  ok=$(awk -v a="${A:-0}" -v t="$TOTAL" 'BEGIN { print (a > 0.99 * t) ? 1 : 0 }')
  [ "$ok" = 1 ] && break
  sleep 0.2
done
[ "$ok" = 1 ] || { echo "FAIL: survivor never absorbed the budget (alpha=$A)"; exit 1; }

# Rejoin: a worker reconnecting under the same node name clears the
# partition and wins back a share of the budget.
"$BIN" -worker "$COORD" -node beta -capacity 60000 -serve "$ADMIN_B" &
B_PID=$!
wait_cluster '"name":"beta"[^}]*"partitioned":false'
for _ in $(seq 1 50); do
  B=$(node_budget beta)
  ok=$(awk -v b="${B:-0}" 'BEGIN { print (b > 0) ? 1 : 0 }')
  [ "$ok" = 1 ] && break
  sleep 0.2
done
[ "$ok" = 1 ] || { echo "FAIL: rejoined worker never regained a grant"; exit 1; }

# Clean shutdown: SIGTERM each worker, then the coordinator; every
# process must exit 0 within the deadline.
kill -TERM "$A_PID" "$B_PID"
for pid in "$A_PID" "$B_PID"; do
  for _ in $(seq 1 50); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.2
  done
  if kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: worker $pid still running 10 s after SIGTERM"
    exit 1
  fi
  wait "$pid" || { echo "FAIL: worker $pid exited nonzero"; exit 1; }
done
A_PID=""; B_PID=""
kill -TERM "$COORD_PID"
for _ in $(seq 1 50); do
  kill -0 "$COORD_PID" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$COORD_PID" 2>/dev/null; then
  echo "FAIL: coordinator still running 10 s after SIGTERM"
  exit 1
fi
wait "$COORD_PID" || { echo "FAIL: coordinator exited nonzero"; exit 1; }
echo "cluster smoke OK"
