package repro

import (
	"testing"
	"time"
)

// TestFacadeEndToEnd exercises the public API the README advertises:
// generate traffic, size a budget, run the monitor, compare against a
// reference.
func TestFacadeEndToEnd(t *testing.T) {
	mkSrc := func() TraceSource {
		return NewGenerator(CESCA2(1, 5*time.Second, 0.05))
	}
	mkQs := func() []Query { return StandardQueries(QueryConfig{Seed: 1}) }

	capacity := CapacityForOverload(mkSrc(), mkQs(), 2, 2)
	if capacity <= 0 {
		t.Fatalf("capacity = %v", capacity)
	}
	mon := NewMonitor(MonitorConfig{
		Scheme:   Predictive,
		Capacity: capacity,
		Strategy: MMFSPkt(),
		Seed:     2,
	}, mkQs())
	res := mon.Run(mkSrc())
	if len(res.Bins) != 50 {
		t.Fatalf("bins = %d, want 50", len(res.Bins))
	}
	ref := Reference(mkSrc(), mkQs(), 2)
	errs := MeanErrors(mkQs(), res, ref)
	if len(errs) != 7 {
		t.Fatalf("errors for %d queries, want 7", len(errs))
	}
	if errs["counter"] > 0.25 {
		t.Errorf("counter error %v implausibly high for 2x overload", errs["counter"])
	}
	if res.TotalDrops() > res.TotalWirePkts()/100 {
		t.Errorf("facade run dropped %d packets", res.TotalDrops())
	}
}

func TestFacadeStrategiesAndQueries(t *testing.T) {
	for _, s := range []Strategy{EqualRates(false), EqualRates(true), MMFSCPU(), MMFSPkt()} {
		if s.Name() == "" {
			t.Error("strategy with empty name")
		}
	}
	if len(AllQueries(QueryConfig{})) != 10 {
		t.Error("AllQueries should return ten queries")
	}
	if NewSelfishP2P(QueryConfig{}).Name() != "p2p-detector-selfish" {
		t.Error("selfish wrapper name wrong")
	}
	if NewBuggyP2P(QueryConfig{}).Name() != "p2p-detector-buggy" {
		t.Error("buggy wrapper name wrong")
	}
}

func TestFacadeMeasureHelpers(t *testing.T) {
	src := NewGenerator(TraceConfig{Seed: 3, Duration: 2 * time.Second, PacketsPerSec: 3000})
	qs := StandardQueries(QueryConfig{Seed: 3})
	d := MeasureDemand(src, qs, 4)
	c := MeasureCapacity(src, qs, 4)
	if !(c > d && d > 0) {
		t.Fatalf("capacity %v should exceed demand %v > 0", c, d)
	}
}
