// Command tracegen generates, inspects and converts synthetic packet
// traces:
//
//	tracegen -preset cesca2 -dur 30s -scale 0.1 -o trace.bin
//	tracegen -info trace.bin
//
// Traces written once replay byte-identically everywhere, mirroring the
// paper's use of captured traces "for the sake of reproducibility".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/pkg/loadshed"
)

func main() {
	var (
		preset = flag.String("preset", "cesca2", "dataset preset: "+strings.Join(loadshed.PresetNames(), ", "))
		dur    = flag.Duration("dur", 30*time.Second, "trace duration")
		scale  = flag.Float64("scale", 0.1, "rate scale vs the paper's capture")
		seed   = flag.Uint64("seed", 1, "generator seed")
		out    = flag.String("o", "", "write the trace to this file")
		info   = flag.String("info", "", "print statistics of an existing trace file and exit")
	)
	flag.Parse()

	if *info != "" {
		f, err := os.Open(*info)
		die(err)
		defer f.Close()
		src, err := loadshed.ReadTrace(f)
		die(err)
		printStats(*info, loadshed.MeasureTrace(src))
		return
	}

	cfg, err := loadshed.PresetConfig(*preset, *seed, *dur, *scale)
	die(err)
	gen := loadshed.NewGenerator(cfg)
	if *out == "" {
		printStats(*preset+" (not written; use -o)", loadshed.MeasureTrace(gen))
		return
	}
	f, err := os.Create(*out)
	die(err)
	defer f.Close()
	die(loadshed.WriteTrace(f, gen))
	printStats(*out, loadshed.MeasureTrace(gen))
}

func printStats(name string, st loadshed.TraceStats) {
	fmt.Printf("%s:\n", name)
	fmt.Printf("  duration  %v (%d batches)\n", st.Duration, st.Batches)
	fmt.Printf("  packets   %d (%.1f kpps)\n", st.Packets, st.AvgPPS/1000)
	fmt.Printf("  bytes     %d\n", st.Bytes)
	fmt.Printf("  load Mbps avg %.1f / max %.1f / min %.1f\n", st.AvgMbps, st.MaxMbps, st.MinMbps)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
