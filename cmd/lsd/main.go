// Command lsd ("load shedding daemon") runs the monitoring system over
// a generated or recorded trace and reports how the load shedding
// scheme behaved: per-second controller state while running, then
// per-query accuracy against a lossless reference.
//
//	lsd -preset cesca2 -dur 30s -overload 2 -scheme predictive -strategy mmfs_pkt
//	lsd -trace trace.bin -overload 2.5 -scheme reactive
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/stats"
	"repro/pkg/loadshed"
)

func main() {
	var (
		preset    = flag.String("preset", "cesca2", "dataset preset (ignored with -trace)")
		traceFile = flag.String("trace", "", "replay this trace file instead of generating")
		dur       = flag.Duration("dur", 30*time.Second, "generated trace duration")
		scale     = flag.Float64("scale", 0.1, "generated trace rate scale")
		seed      = flag.Uint64("seed", 1, "seed")
		overload  = flag.Float64("overload", 2, "demand/capacity ratio to impose")
		scheme    = flag.String("scheme", "predictive", "predictive | reactive | original | none")
		strategy  = flag.String("strategy", "mmfs_pkt", "equal | eq_srates | mmfs_cpu | mmfs_pkt (predictive only)")
		full      = flag.Bool("full", false, "run all ten queries instead of the standard seven")
		customOn  = flag.Bool("custom", true, "enable custom load shedding (Chapter 6)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "query execution worker pool size")
	)
	flag.Parse()

	src, err := openSource(*traceFile, *preset, *seed, *dur, *scale)
	die(err)

	mkQs := func() []loadshed.Query {
		if *full {
			return loadshed.AllQueries(loadshed.QueryConfig{Seed: *seed})
		}
		return loadshed.StandardQueries(loadshed.QueryConfig{Seed: *seed})
	}

	fmt.Println("measuring full-rate demand ...")
	ovh, demand := loadshed.MeasureLoad(src, mkQs(), *seed+1)
	capacity := ovh + demand / *overload
	fmt.Printf("demand %.3g cycles/bin (+%.3g overhead), capacity %.3g (overload %.2fx)\n",
		demand, ovh, capacity, *overload)

	cfg := loadshed.Config{
		Capacity:       capacity,
		Seed:           *seed + 2,
		CustomShedding: *customOn,
		Workers:        *workers,
	}
	cfg.Scheme, err = loadshed.ParseScheme(*scheme)
	die(err)
	if cfg.Scheme == loadshed.Predictive {
		cfg.Strategy, err = loadshed.StrategyByName(*strategy)
		die(err)
	}

	fmt.Println("running reference (lossless) ...")
	ref := loadshed.Reference(src, mkQs(), *seed+1)

	fmt.Printf("running %s ...\n", *scheme)
	res := loadshed.New(cfg, mkQs()).Run(src)

	fmt.Printf("\n%-6s %-9s %-9s %-8s %-6s %-6s\n", "sec", "pkts/s", "drops/s", "rate", "occ", "cpu%")
	for i := 0; i < len(res.Bins); i += 10 {
		var pkts, drops, rate, occ, cpu float64
		n := 0
		for j := i; j < i+10 && j < len(res.Bins); j++ {
			b := res.Bins[j]
			pkts += float64(b.WirePkts)
			drops += float64(b.DropPkts)
			rate += stats.Mean(b.Rates)
			occ += b.BufferBins
			cpu += (b.Used + b.Overhead + b.Shed) / capacity
			n++
		}
		fmt.Printf("%-6d %-9.0f %-9.0f %-8.3f %-6.2f %-6.1f\n",
			i/10, pkts, drops, rate/float64(n), occ/float64(n), 100*cpu/float64(n))
	}

	errs := loadshed.MeanErrors(mkQs(), res, ref)
	fmt.Printf("\nper-query mean accuracy error vs lossless reference:\n")
	for _, q := range mkQs() {
		fmt.Printf("  %-16s %6.2f%%\n", q.Name(), errs[q.Name()]*100)
	}
	fmt.Printf("\nuncontrolled drops: %d of %d packets (%.3f%%)\n",
		res.TotalDrops(), res.TotalWirePkts(),
		100*float64(res.TotalDrops())/float64(res.TotalWirePkts()))
}

func openSource(traceFile, preset string, seed uint64, dur time.Duration, scale float64) (loadshed.Source, error) {
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return loadshed.ReadTrace(f)
	}
	cfg, err := loadshed.PresetConfig(preset, seed, dur, scale)
	if err != nil {
		return nil, err
	}
	return loadshed.NewGenerator(cfg), nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsd:", err)
		os.Exit(1)
	}
}
